(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section XI). Absolute rates depend on this machine; the
   claims under test are the *shapes*: variant orderings within each
   figure, the orders-of-magnitude gaps between language tiers, the
   >100x interpreted-to-compiled sweep speedup, and Table I's improvement
   factors. Paper-vs-measured is recorded in EXPERIMENTS.md.

   Run with: dune exec bench/main.exe            (full, a few minutes)
             BEAST_BENCH_FAST=1 dune exec bench/main.exe   (reduced) *)

open Bechamel
open Toolkit
open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_lang
open Beast_autotune
open Beast_obs

(* BEAST_BENCH_QUICK=1: the CI smoke configuration — reduced scales AND
   only the cheap ablations, so the job finishes in well under a minute
   while still emitting the machine-readable BENCH_*.json artifacts. *)
let quick = Sys.getenv_opt "BEAST_BENCH_QUICK" <> None
let fast = quick || Sys.getenv_opt "BEAST_BENCH_FAST" <> None
let scale n = if fast then n / 10 else n

(* Version of the BENCH_*.json field layout. Stamped into every artifact
   this harness writes; the gate refuses a --baseline whose version
   differs (an absent field reads as 0, covering pre-versioning
   baselines) instead of failing one field at a time with misleading
   diffs. Bump it when a bench record's fields change shape. *)
let bench_schema_version = 1

let line () = print_endline (String.make 72 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Bechamel helper: nanoseconds per run of a thunk.                    *)
(* ------------------------------------------------------------------ *)

let ns_per_run ?(quota = 0.5) name fn =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with
      | Some (e :: _) -> e
      | _ -> acc)
    results nan

let time_once fn =
  let t0 = Unix.gettimeofday () in
  let r = fn () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Figures 17/18/19: loop-nest rates per language tier.                *)
(* ------------------------------------------------------------------ *)

let figure_loopnest ~title ~total ~variants ~run =
  header title;
  Printf.printf "%-14s" "variant";
  for d = 1 to 4 do
    Printf.printf "%14s" (Printf.sprintf "depth %d" d)
  done;
  Printf.printf "%s\n" "   (iterations/second)";
  List.iter
    (fun (vname, v) ->
      Printf.printf "%-14s" vname;
      for depth = 1 to 4 do
        let nest = Loopnest.make ~depth ~total in
        let iters = float_of_int (Loopnest.iterations nest) in
        let ns = ns_per_run (Printf.sprintf "%s-d%d" vname depth)
                   (fun () -> ignore (run v nest)) in
        let rate = iters /. (ns *. 1e-9) in
        Printf.printf "%14s" (Printf.sprintf "%.3g" rate)
      done;
      print_newline ())
    variants

let fig17 () =
  figure_loopnest
    ~title:
      "Figure 17: scripting-tier (Python-like AST walker), boxed values,\n\
       hashtable scopes. Paper: xrange > range > while (~30% gap)."
    ~total:(scale 300_000)
    ~variants:
      (List.map
         (fun v -> (Interp_python.variant_name v, v))
         Interp_python.all_variants)
    ~run:Interp_python.run

let fig18 () =
  figure_loopnest
    ~title:
      "Figure 18: VM tier (Lua-like register bytecode). Paper ordering:\n\
       for > repeat-until > while; ~5x over the Python tier."
    ~total:(scale 3_000_000)
    ~variants:
      (List.map (fun v -> (Interp_lua.variant_name v, v)) Interp_lua.all_variants)
    ~run:Interp_lua.run

let fig19 () =
  figure_loopnest
    ~title:
      "Figure 19: compiled tier (native loops; C / Java / Fortran\n\
       flavours). Paper: Fortran fastest by a hair, Java slowest."
    ~total:(scale 30_000_000)
    ~variants:
      (List.map (fun v -> (Native.flavour_name v, v)) Native.all_flavours)
    ~run:Native.run

(* ------------------------------------------------------------------ *)
(* Section XI-B/D: the GEMM space sweep across engines + generated C.  *)
(* ------------------------------------------------------------------ *)

let in_temp_dir files =
  let dir = Filename.temp_file "beast_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  List.iter
    (fun (name, contents) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc contents;
      close_out oc)
    files;
  dir

let time_command cmd =
  let t0 = Unix.gettimeofday () in
  let rc = Sys.command cmd in
  let dt = Unix.gettimeofday () -. t0 in
  if rc = 0 then Some dt else None

let runtime_available cmd =
  Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" cmd) = 0

(* Generate, build and time every language backend we have a runtime
   for - the paper's actual experiment: the same declarative space
   translated and executed per backend. *)
let time_generated_c plan =
  match Codegen_c.generate plan with
  | Error _ -> None
  | Ok source ->
    let dir = in_temp_dir [ ("sweep.c", source) ] in
    let exe = Filename.concat dir "sweep" in
    if
      Sys.command
        (Printf.sprintf "cc -O2 -std=c99 -o %s %s 2>/dev/null"
           (Filename.quote exe)
           (Filename.quote (Filename.concat dir "sweep.c")))
      <> 0
    then None
    else time_command (Filename.quote exe ^ " > /dev/null")

let time_generated_python plan =
  if not (runtime_available "python3") then None
  else
    match Codegen.generate Codegen.Python plan with
    | Error _ -> None
    | Ok source ->
      let dir = in_temp_dir [ ("sweep.py", source) ] in
      time_command
        (Printf.sprintf "python3 %s > /dev/null"
           (Filename.quote (Filename.concat dir "sweep.py")))

let time_generated_java plan =
  if not (runtime_available "javac" && runtime_available "java") then None
  else
    match Codegen.generate Codegen.Java plan with
    | Error _ -> None
    | Ok source ->
      let dir = in_temp_dir [ ("BeastSweep.java", source) ] in
      if
        Sys.command
          (Printf.sprintf "javac -d %s %s 2>/dev/null" (Filename.quote dir)
             (Filename.quote (Filename.concat dir "BeastSweep.java")))
        <> 0
      then None
      else
        time_command
          (Printf.sprintf "java -cp %s BeastSweep > /dev/null"
             (Filename.quote dir))

let sweep_speedup () =
  header
    "Section XI-B/D: GEMM space sweep across language backends.\n\
     Paper: Python 66948 s vs generated C 264 s (253x) on the full K40c\n\
     space; here the space is device-scaled so every tier finishes, and\n\
     the generated Python/Java programs really run under CPython/HotSpot.";
  let max_dim = if fast then 32 else 64 in
  let max_threads = if fast then 128 else 256 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let plan = Plan.make_exn sp in
  (* Reference sweep for iteration count (and to warm the page cache). *)
  let stats, staged_dt = time_once (fun () -> Engine_staged.run plan) in
  let iters = float_of_int stats.Engine.loop_iterations in
  let rows : (string * float) list ref = ref [] in
  let record name dt =
    rows := (name, dt) :: !rows;
    Printf.printf "%-34s %10.3f s  %12.3g loop-iterations/s\n" name dt
      (iters /. dt)
  in
  (* In-process tiers. *)
  let vm_prog = Engine_vm.compile plan in
  let _, dt = time_once (fun () -> Engine_vm.run vm_prog) in
  record "in-process bytecode VM (Lua tier)" dt;
  record "in-process staged closures" staged_dt;
  (* Generated programs under real runtimes. *)
  (match time_generated_python plan with
  | Some dt -> record "generated Python under CPython" dt
  | None -> print_endline "generated Python: no python3 available");
  (match time_generated_java plan with
  | Some dt -> record "generated Java under the JVM" dt
  | None -> print_endline "generated Java: no JDK available");
  (match time_generated_c plan with
  | Some dt -> record "generated C (cc -O2)" dt
  | None -> print_endline "generated C: no C compiler available");
  (* The paper's ratio: interpreted Python over generated C. *)
  (match
     ( List.assoc_opt "generated Python under CPython" !rows,
       List.assoc_opt "generated C (cc -O2)" !rows )
   with
  | Some py, Some c ->
    Printf.printf
      "generated Python / generated C: %.0fx (paper, CPython 2.7 vs gcc: 253x)\n"
      (py /. c)
  | _ -> ());
  (* The interpreted engine on a smaller cut, for the in-process view
     (it is the scripting-cost tier; the full space would take minutes). *)
  let small_device = Device.scale ~max_dim:24 ~max_threads:96 Device.tesla_k40c in
  let small = Gemm.space ~settings:{ settings with Gemm.device = small_device } () in
  let small_plan = Plan.make_exn small in
  let s_interp, t_interp =
    time_once (fun () -> Engine_interp.run ~variant:`Hoisted small)
  in
  let _, t_staged = time_once (fun () -> Engine_staged.run small_plan) in
  Printf.printf
    "in-process AST-walking interpreter vs staged (24-dim cut): %.0fx on %d iterations\n"
    (t_interp /. t_staged) s_interp.Engine.loop_iterations;
  Printf.printf "survivors %d; cross-engine agreement is enforced by the test suite\n"
    stats.Engine.survivors

(* ------------------------------------------------------------------ *)
(* Table I: improvement factors from the autotuner.                    *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header
    "Table I: performance levels achieved with the BEAST autotuner\n\
     (device model standing in for the K40c; see DESIGN.md).";
  (* Row 1: GEMM, % of peak. *)
  let device = Device.scale ~max_dim:(if fast then 32 else 64)
                 ~max_threads:256 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let r, dt =
    time_once (fun () ->
        Tuner.tune ~objective:(Gemm.objective settings) (Gemm.space ~settings ()))
  in
  let peak = Device.peak_gflops device Device.Double in
  (match r.Tuner.best with
  | Some best ->
    Printf.printf
      "GEMM (dgemm-nn)             %5.1f%% of peak   (paper: 80%% of peak)  [%.1fs, %d survivors]\n"
      (100.0 *. best.Tuner.score /. peak)
      dt r.Tuner.evaluated
  | None -> print_endline "GEMM: no survivors");
  (* Row 2: batched factorizations, small sizes. *)
  let small_ratios =
    List.map
      (fun n ->
        let w =
          { Cholesky_batched.default_workload with Cholesky_batched.n;
            batch = 10_000 }
        in
        let r =
          Tuner.tune ~objective:(Cholesky_batched.objective w)
            (Cholesky_batched.space ~workload:w ())
        in
        Option.value ~default:0.0
          (Tuner.improvement r ~baseline:(Cholesky_batched.baseline_gflops w)))
      [ 8; 16; 24; 32 ]
  in
  Printf.printf
    "Batched Cholesky (small)    up to %3.0f%%       (paper: up to 1000%%)   [n=8..32]\n"
    (100.0 *. List.fold_left Float.max 0.0 small_ratios);
  (* Row 3: medium sizes. *)
  let medium_ratios =
    List.map
      (fun n ->
        let w =
          { Cholesky_batched.default_workload with Cholesky_batched.n;
            batch = 2_000 }
        in
        let r =
          Tuner.tune ~objective:(Cholesky_batched.objective w)
            (Cholesky_batched.space ~workload:w ())
        in
        Option.value ~default:0.0
          (Tuner.improvement r ~baseline:(Cholesky_batched.baseline_gflops w)))
      [ 128; 192; 256 ]
  in
  Printf.printf
    "Batched Cholesky (medium)   up to %3.0f%%       (paper: up to 300%%)    [n=128..256]\n"
    (100.0 *. List.fold_left Float.max 0.0 medium_ratios);
  (* Companion: batched TRSM. *)
  let trsm_ratio n batch =
    let w = { Trsm_batched.default_workload with Trsm_batched.n; batch } in
    let r =
      Tuner.tune ~objective:(Trsm_batched.objective w)
        (Trsm_batched.space ~workload:w ())
    in
    Option.value ~default:0.0
      (Tuner.improvement r ~baseline:(Trsm_batched.baseline_gflops w))
  in
  Printf.printf
    "Batched TRSM                %.1fx small / %.1fx medium (ref [5] companion kernel)\n"
    (trsm_ratio 16 10_000) (trsm_ratio 128 2_000);
  (* LU joins the batched-factorization family (refs [34]-[36]). *)
  let lu_ratio n batch =
    let w = { Lu_batched.default_workload with Lu_batched.n; batch } in
    let r =
      Tuner.tune ~objective:(Lu_batched.objective w)
        (Lu_batched.space ~workload:w ())
    in
    Option.value ~default:0.0
      (Tuner.improvement r ~baseline:(Lu_batched.baseline_gflops w))
  in
  Printf.printf
    "Batched LU                  %.1fx small / %.1fx medium (refs [34]-[36])\n"
    (lu_ratio 16 10_000) (lu_ratio 128 2_000);
  (* ALS vs a CPU baseline (ref [6]). *)
  let w = Als.default_workload in
  let r = Tuner.tune ~objective:(Als.objective w) (Als.space ~workload:w ()) in
  (match Tuner.improvement r ~baseline:(Als.cpu_baseline_gflops w) with
  | Some ratio ->
    Printf.printf
      "ALS (rank %d) vs CPU        %.1fx             (ref [6]: 'significant speedups')\n"
      w.Als.rank ratio
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Section VI: pruning funnel ("sometimes by as much as 99%").         *)
(* ------------------------------------------------------------------ *)

let funnel () =
  header
    "Section VI: constraint pruning funnel on the GEMM space\n\
     (paper: constraints prune 'sometimes by as much as 99%').\n\
     Measured on the divisor-iterator variant so the exact per-prefix\n\
     sweeps stay tractable (the reshape constraints are absorbed into\n\
     the read-grid iterators; the ten explicit constraints remain).";
  let max_dim = if fast then 14 else 16 in
  let device = Device.scale ~max_dim ~max_threads:64 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let f = Stats.funnel (Gemm.space_divisor_opt ~settings ()) in
  Format.printf "%a" Stats.pp f;
  Printf.printf "pruned fraction: %.4f%%\n" (100.0 *. Stats.pruned_fraction f);
  (* And the single-sweep funnel of the plain space at a larger scale:
     firing counts only, with the unconstrained cardinality bounded. *)
  let device = Device.scale ~max_dim:16 ~max_threads:64 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let stats = Engine_staged.run_space sp in
  let total =
    match Sweep.cardinality ~budget:2_000_000 sp with
    | `Exact n -> n
    | `At_least n -> n
  in
  Printf.printf
    "plain space at 16-dim scale: %d survivors of > %d raw points; top firing constraints:\n"
    stats.Engine.survivors total;
  Array.to_list stats.Engine.pruned
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun (n, _, k) -> Printf.printf "  %-24s fired %d\n" n k)

(* ------------------------------------------------------------------ *)
(* Figure 16: the dependency DAG's level sets.                         *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  header
    "Figure 16: dependency DAG of the GEMM space (level sets shown here;\n\
     `beast dot gemm | dot -Tsvg` renders the graph itself).";
  let sp = Gemm.space () in
  match Space.dag sp with
  | Error e -> Format.printf "error: %a@." Space.pp_error e
  | Ok dag ->
    List.iteri
      (fun i set ->
        Printf.printf "L%d: %s\n" i (String.concat " " set))
      (Dag.level_sets dag)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4).                                    *)
(* ------------------------------------------------------------------ *)

let ablation_hoisting () =
  header
    "Ablation: DAG hoisting of derived variables and constraints\n\
     (Section X's placement vs everything at the innermost level).";
  let max_dim = if fast then 6 else 8 in
  let device = Device.scale ~max_dim ~max_threads:32 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let hoisted = Plan.make_exn ~hoist:true sp in
  let flat = Plan.make_exn ~hoist:false sp in
  let s1, t1 = time_once (fun () -> Engine_staged.run hoisted) in
  let s2, t2 = time_once (fun () -> Engine_staged.run flat) in
  Printf.printf "hoisted:     %10d loop iterations, %8.3f s\n"
    s1.Engine.loop_iterations t1;
  Printf.printf "no hoisting: %10d loop iterations, %8.3f s\n"
    s2.Engine.loop_iterations t2;
  Printf.printf "iteration inflation without hoisting: %.1fx; slowdown %.1fx\n"
    (float_of_int s2.Engine.loop_iterations /. float_of_int s1.Engine.loop_iterations)
    (t2 /. t1);
  Printf.printf "survivors agree: %b\n" (s1.Engine.survivors = s2.Engine.survivors)

let ablation_loop_order () =
  header
    "Ablation: loop interchange within DAG level sets (Section X-B).\n\
     Moving the four binary variant dimensions outward delays every\n\
     constraint by a factor 16 of subtree width.";
  let device = Device.scale ~max_dim:24 ~max_threads:96 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let default_plan = Plan.make_exn sp in
  let bad_order =
    [ "tex_a"; "tex_b"; "shmem_l1"; "shmem_banks" ]
    @ List.filter
        (fun n -> not (List.mem n [ "tex_a"; "tex_b"; "shmem_l1"; "shmem_banks" ]))
        default_plan.Plan.iter_order
  in
  let bad_plan = Plan.make_exn ~order:bad_order sp in
  let s1, t1 = time_once (fun () -> Engine_staged.run default_plan) in
  let s2, t2 = time_once (fun () -> Engine_staged.run bad_plan) in
  Printf.printf "dependency order:     %10d iterations, %8.3f s\n"
    s1.Engine.loop_iterations t1;
  Printf.printf "variants outermost:   %10d iterations, %8.3f s\n"
    s2.Engine.loop_iterations t2;
  Printf.printf "penalty: %.1fx iterations, %.1fx time; survivors agree: %b\n"
    (float_of_int s2.Engine.loop_iterations /. float_of_int s1.Engine.loop_iterations)
    (t2 /. t1)
    (s1.Engine.survivors = s2.Engine.survivors)

let ablation_divisor_iterator () =
  header
    "Ablation: closure iterators carrying search knowledge. The plain\n\
     space scans the full read-grid cross products and lets\n\
     cant_reshape_a1/b1 reject non-factorizations point by point (the\n\
     paper's most-fired constraints); a divisor-pair closure iterator\n\
     skips them - same survivors, ~4x fewer loop iterations. Whether\n\
     that wins wall-clock depends on the tier: the AST-walking\n\
     interpreter pays per iteration and gains; the staged engine's\n\
     iterations are so cheap that dynamic materialization costs more\n\
     than the scans it avoids - the same economics that justify the\n\
     paper's code generator.";
  let device = Device.scale ~max_dim:(if fast then 24 else 48)
                 ~max_threads:192 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plain = Gemm.space ~settings () in
  let opt = Gemm.space_divisor_opt ~settings () in
  let s1, staged_plain = time_once (fun () -> Engine_staged.run_space plain) in
  let s2, staged_opt = time_once (fun () -> Engine_staged.run_space opt) in
  let _, interp_plain = time_once (fun () -> Engine_interp.run plain) in
  let _, interp_opt = time_once (fun () -> Engine_interp.run opt) in
  Printf.printf "%-28s %14s %14s\n" "" "grid scans" "divisor iter";
  Printf.printf "%-28s %14d %14d\n" "loop iterations"
    s1.Engine.loop_iterations s2.Engine.loop_iterations;
  Printf.printf "%-28s %13.3fs %13.3fs\n" "staged engine" staged_plain
    staged_opt;
  Printf.printf "%-28s %13.3fs %13.3fs\n" "AST-walking interpreter" interp_plain
    interp_opt;
  Printf.printf
    "survivors agree: %b (%d); interpreter speedup %.1fx, staged slowdown %.1fx\n"
    (s1.Engine.survivors = s2.Engine.survivors)
    s1.Engine.survivors (interp_plain /. interp_opt) (staged_opt /. staged_plain)

let ablation_parallel () =
  header
    "Ablation: multithreaded sweep (outermost level-set decomposition).\n\
     This container exposes a single core, so this validates the\n\
     decomposition, not the scaling.";
  let device = Device.scale ~max_dim:20 ~max_threads:96 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  (* Engines are selected the way the CLI does it: by registry spec. *)
  List.iter
    (fun spec ->
      match Engine_registry.find spec with
      | Error msg -> Printf.printf "%s: %s\n" spec msg
      | Ok (module E : Engine_intf.S) ->
        let s, t = time_once (fun () -> E.run (Engine_intf.Plan plan)) in
        Printf.printf "%-12s %8.3f s, survivors %d\n" E.name t
          s.Engine.survivors)
    [ "parallel:1"; "parallel:2"; "parallel:4" ]

let ablation_checkpoint () =
  header
    "Ablation: checkpointing overhead and resume equivalence. The\n\
     resumable scheduler is the plain work-stealing sweep plus a chunk\n\
     ledger; the pathological configuration below flushes the ledger to\n\
     disk after every chunk (a real deployment writes every few\n\
     seconds, amortizing to ~zero).";
  let max_dim = if fast then 20 else 32 in
  let max_threads = if fast then 96 else 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  let domains = 4 in
  let finished = function
    | Engine_intf.Finished stats -> stats
    | Engine_intf.Interrupted _ -> failwith "bench: unexpected interruption"
  in
  ignore (Engine_parallel.run ~domains plan) (* warm up domain spawning *);
  let s_plain, t_plain =
    time_once (fun () -> Engine_parallel.run ~domains plan)
  in
  let s_ledger, t_ledger =
    time_once (fun () ->
        finished (Engine_parallel.run_resumable ~domains plan))
  in
  let ck_path = Filename.temp_file "beast_bench_ck" ".json" in
  let sink =
    {
      Engine_intf.ck_path;
      ck_every_s = 0.0 (* flush after every chunk: worst case *);
      ck_run_id = None;
      ck_shard = Stats_io.unsharded;
      ck_base_metrics = None;
    }
  in
  let s_ck, t_ck =
    time_once (fun () ->
        finished
          (Engine_parallel.run_resumable ~checkpoint:sink ~domains plan))
  in
  Printf.printf "plain work stealing:          %8.3f s\n" t_plain;
  Printf.printf "resumable, no checkpoint:     %8.3f s  (+%.1f%%)\n" t_ledger
    (100.0 *. ((t_ledger /. t_plain) -. 1.0));
  Printf.printf "checkpoint after every chunk: %8.3f s  (+%.1f%%)\n" t_ck
    (100.0 *. ((t_ck /. t_plain) -. 1.0));
  Printf.printf "stats agree across all three: %b\n"
    (s_plain = s_ledger && s_plain = s_ck);
  (* Resume equivalence: interrupt partway, resume from the flushed
     ledger, compare the stats files byte for byte. *)
  let hits = ref 0 in
  let target = s_plain.Engine.survivors / 2 in
  let on_hit _ =
    incr hits;
    if !hits = target then Engine_parallel.interrupt ()
  in
  (match
     Engine_parallel.run_resumable ~on_hit ~checkpoint:sink ~domains plan
   with
  | Engine_intf.Interrupted { completed; total } ->
    let resumed =
      match Checkpoint.of_file ck_path with
      | Error msg -> failwith ("bench: checkpoint unreadable: " ^ msg)
      | Ok ck ->
        finished (Engine_parallel.run_resumable ~resume:ck ~domains plan)
    in
    let json stats = Stats_io.to_json (Stats_io.of_stats ~plan stats) in
    Printf.printf
      "interrupted at %d/%d chunks; resumed stats byte-identical: %b\n"
      completed total
      (json resumed = json s_plain)
  | Engine_intf.Finished _ ->
    print_endline "interrupt landed after the sweep finished; nothing to resume");
  Sys.remove ck_path

(* Static round-robin split vs chunked work stealing on a skewed space.
   The skew is the natural one: a hoisted divisibility constraint on the
   outermost iterator (dim_m mod 4 = 0 — exactly the shape of a
   blocking-factor constraint) prunes three quarters of the outer
   subtrees instantly, and every surviving position lands in the same
   round-robin residue class, so the static split gives one domain all
   the work. Work stealing hands out many contiguous chunks from a
   shared cursor, so no domain holds more than one chunk of the skew.
   Wall-clock gains need real cores (this container may expose one);
   the per-slice iteration shares are machine-independent evidence. *)
let ablation_stealing () =
  header
    "Ablation: static split vs chunked work stealing on a skewed GEMM\n\
     space (dim_m divisibility constraint; survivors cluster in one\n\
     round-robin residue class). BENCH_parallel.json records the result.";
  let max_dim = if fast then 20 else 32 in
  let max_threads = if fast then 96 else 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let open Expr.Infix in
  Space.constrain sp ~cls:Space.Hard "skew_blocking"
    (Expr.var "dim_m" %: Expr.int 4 <>: Expr.int 0);
  let plan = Plan.make_exn sp in
  let domains = 4 in
  let seq = Engine_staged.run plan in
  (* Machine-independent skew: each static slice's share of the loop
     iterations vs the largest single chunk of the stealing split. *)
  let total = float_of_int seq.Engine.loop_iterations in
  let share iters = 100.0 *. float_of_int iters /. total in
  let slice_shares =
    List.init domains (fun index ->
        share
          (Engine_staged.run (Plan.slice_outer plan ~index ~of_:domains))
            .Engine.loop_iterations)
  in
  let n_chunks = domains * Engine_parallel.default_chunks_per_domain in
  let max_chunk_share =
    List.fold_left Float.max 0.0
      (List.init n_chunks (fun index ->
           share
             (Engine_staged.run (Plan.chunk_outer plan ~index ~of_:n_chunks))
               .Engine.loop_iterations))
  in
  ignore (Engine_parallel.run ~domains plan) (* warm up domain spawning *);
  let s_static, t_static =
    time_once (fun () -> Engine_parallel.run_static ~domains plan)
  in
  let s_steal, t_steal = time_once (fun () -> Engine_parallel.run ~domains plan) in
  let agree = s_static = seq && s_steal = seq in
  Printf.printf "survivors %d, loop iterations %d, %d domains\n"
    seq.Engine.survivors seq.Engine.loop_iterations domains;
  Printf.printf "static slice shares of the work: %s\n"
    (String.concat " "
       (List.map (fun s -> Printf.sprintf "%.1f%%" s) slice_shares));
  Printf.printf "largest stolen chunk (%d chunks): %.1f%% of the work\n"
    n_chunks max_chunk_share;
  Printf.printf "static split:  %8.3f s\n" t_static;
  Printf.printf "work stealing: %8.3f s  (%.2fx)\n" t_steal
    (t_static /. t_steal);
  Printf.printf "stats match the sequential sweep: %b\n" agree;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"ablation-stealing\",\n\
    \  \"bench_schema\": %d,\n\
    \  \"space\": \"gemm+skew_blocking\",\n\
    \  \"max_dim\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"chunks\": %d,\n\
    \  \"survivors\": %d,\n\
    \  \"loop_iterations\": %d,\n\
    \  \"static_slice_shares_pct\": [%s],\n\
    \  \"max_chunk_share_pct\": %.2f,\n\
    \  \"static_s\": %.6f,\n\
    \  \"stealing_s\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"stats_match_sequential\": %b\n\
     }\n"
    bench_schema_version max_dim domains n_chunks seq.Engine.survivors
    seq.Engine.loop_iterations
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%.2f" s) slice_shares))
    max_chunk_share t_static t_steal (t_static /. t_steal) agree;
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* The full engine ladder of the paper's Figures 17-19: interpreted
   enumeration, bytecode, staged closures, multicore, and finally the
   generated C compiled and run as a subprocess — the headline
   scripting-to-compiled trajectory (264 s vs 66 948 s in the paper,
   ~253x). Native's time includes fork+exec and stats parsing; its
   first run (reported separately) also includes the C compile, which
   the binary cache amortizes away for every later sweep of the same
   space. BENCH_native.json feeds the regression gate. *)
let ablation_native () =
  header
    "Ablation: the engine ladder on GEMM (Figures 17-19 trajectory).\n\
     interp -> vm -> staged -> parallel -> native (generated C, compiled,\n\
     run as a subprocess). BENCH_native.json records the result.";
  let max_dim = 32 and max_threads = 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let specs = [ "interp"; "vm"; "staged"; "parallel:4"; "native" ] in
  let native_cold = ref 0.0 in
  let results =
    List.map
      (fun spec ->
        match Engine_registry.find spec with
        | Error msg -> failwith ("bench: " ^ spec ^ ": " ^ msg)
        | Ok (module E : Engine_intf.S) ->
          (* Warm-up run: native pays its one-time C compile here (kept
             as the cold figure), parallel its domain spawn; then time
             the steady state every later sweep sees. *)
          let _, t_cold =
            time_once (fun () -> E.run (Engine_intf.Space sp))
          in
          if spec = "native" then native_cold := t_cold;
          let stats, t =
            time_once (fun () -> E.run (Engine_intf.Space sp))
          in
          Printf.printf "%-12s %8.3f s, survivors %d\n" spec t
            stats.Engine.survivors;
          (spec, stats, t))
      specs
  in
  let _, ref_stats, _ = List.hd results in
  let engines_agree =
    List.for_all (fun (_, s, _) -> s = ref_stats) results
  in
  let time_of spec =
    let _, _, t = List.find (fun (s, _, _) -> s = spec) results in
    t
  in
  let native_s = time_of "native" in
  let native_fastest =
    List.for_all
      (fun (spec, _, t) -> spec = "native" || native_s < t)
      results
  in
  Printf.printf "native first run (includes the C compile): %8.3f s\n"
    !native_cold;
  Printf.printf "all five engines agree: %b; native strictly fastest: %b\n"
    engines_agree native_fastest;
  let oc = open_out "BENCH_native.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"ablation-native\",\n\
    \  \"bench_schema\": %d,\n\
    \  \"space\": \"gemm\",\n\
    \  \"max_dim\": %d,\n\
    \  \"max_threads\": %d,\n\
    \  \"survivors\": %d,\n\
    \  \"loop_iterations\": %d,\n\
    \  \"engines_agree\": %b,\n\
    \  \"native_fastest\": %b,\n\
    \  \"interp_s\": %.6f,\n\
    \  \"vm_s\": %.6f,\n\
    \  \"staged_s\": %.6f,\n\
    \  \"parallel_s\": %.6f,\n\
    \  \"native_s\": %.6f,\n\
    \  \"native_cold_s\": %.6f\n\
     }\n"
    bench_schema_version max_dim max_threads ref_stats.Engine.survivors
    ref_stats.Engine.loop_iterations engines_agree native_fastest
    (time_of "interp") (time_of "vm") (time_of "staged")
    (time_of "parallel:4") native_s !native_cold;
  close_out oc;
  print_endline "wrote BENCH_native.json"

let ablation_obs_overhead () =
  header
    "Ablation: observability overhead on the staged GEMM sweep.\n\
     Tracing is a compile-time choice inside each engine, so the\n\
     budget is <3% when disabled; the instrumented run pays for the\n\
     extra clock reads and the per-domain event buffers.";
  let max_dim = if fast then 24 else 32 in
  let device = Device.scale ~max_dim ~max_threads:128 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  ignore (Engine_staged.run plan) (* warm up *);
  let off = ns_per_run "staged-obs-off" (fun () -> ignore (Engine_staged.run plan)) in
  let recorder = Recorder.create () in
  Obs.set_sink (Recorder.sink recorder);
  let on = ns_per_run "staged-obs-on" (fun () -> ignore (Engine_staged.run plan)) in
  Obs.clear_sink ();
  Printf.printf "tracing disabled: %10.3f ms/run\n" (off *. 1e-6);
  Printf.printf "tracing enabled:  %10.3f ms/run  (%d events recorded)\n"
    (on *. 1e-6) (Recorder.event_count recorder);
  Printf.printf "instrumented-run overhead: %.1f%%\n"
    (100.0 *. ((on /. off) -. 1.0));
  Printf.printf
    "disabled-vs-seed is the <3%% acceptance budget: the uninstrumented\n\
     closures are the ones the seed build compiled, so the only cost is\n\
     one flag check per run.\n"

(* The provenance companion to the obs ablation: the same sweep with
   and without a pruning-provenance collector installed. Attribution
   compiles to per-constraint counting programs, so the instrumented
   sweep pays one closure call per firing plus the slot mirror; with no
   collector the uninstrumented closures run and the cost is zero. The
   deterministic outputs (survivors, total attributed removals,
   exactness) feed the regression gate via BENCH_provenance.json. *)
let ablation_provenance () =
  header
    "Ablation: single-pass pruning provenance on the staged GEMM sweep\n\
     (provenance off vs on; BENCH_provenance.json records the result).";
  let max_dim = if fast then 20 else 32 in
  let max_threads = if fast then 96 else 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  ignore (Engine_staged.run plan) (* warm up *);
  let off =
    ns_per_run "staged-prov-off" (fun () -> ignore (Engine_staged.run plan))
  in
  let on =
    ns_per_run "staged-prov-on" (fun () ->
        ignore (Provenance.with_collector (fun () -> Engine_staged.run plan)))
  in
  let stats, summary =
    Provenance.with_collector (fun () -> Engine_staged.run plan)
  in
  let removed, exact =
    match Provenance.total_removed summary with
    | Some n -> (n, true)
    | None -> (0, false)
  in
  let overhead_pct = 100.0 *. ((on /. off) -. 1.0) in
  Printf.printf "provenance disabled: %10.3f ms/run\n" (off *. 1e-6);
  Printf.printf "provenance enabled:  %10.3f ms/run  (+%.1f%%)\n" (on *. 1e-6)
    overhead_pct;
  Printf.printf "%d survivors; %d removed points attributed; exact: %b\n"
    stats.Engine.survivors removed exact;
  let oc = open_out "BENCH_provenance.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"ablation-provenance\",\n\
    \  \"bench_schema\": %d,\n\
    \  \"space\": \"gemm\",\n\
    \  \"max_dim\": %d,\n\
    \  \"survivors\": %d,\n\
    \  \"total_removed\": %d,\n\
    \  \"exact\": %b,\n\
    \  \"off_ms\": %.3f,\n\
    \  \"on_ms\": %.3f,\n\
    \  \"overhead_pct\": %.1f\n\
     }\n"
    bench_schema_version max_dim stats.Engine.survivors removed exact
    (off *. 1e-6) (on *. 1e-6) overhead_pct;
  close_out oc;
  print_endline "wrote BENCH_provenance.json"

(* The constraint-propagation ablation: the interval pre-pass must keep
   the staged sweep's statistics byte-identical (dead values are
   replayed as bookkeeping) while the feasible-set diagram counts a
   billion-point constrained space exactly without enumerating it.
   BENCH_propagate.json feeds the regression gate. *)
let ablation_propagate () =
  header
    "Ablation: constraint-propagation pre-pass on the staged GEMM sweep\n\
     (propagation off vs on; statistics must match exactly), plus exact\n\
     feasible-set counting of a ~1.5e9-point constrained space.\n\
     BENCH_propagate.json records the result.";
  let max_dim = if fast then 20 else 32 in
  let max_threads = if fast then 96 else 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  let propagated = Plan.optimize ~passes:[ Propagate.pass ] plan in
  ignore (Engine_staged.run plan) (* warm up *);
  let off =
    ns_per_run "staged-prop-off" (fun () -> ignore (Engine_staged.run plan))
  in
  let on =
    ns_per_run "staged-prop-on" (fun () ->
        ignore (Engine_staged.run propagated))
  in
  let s_off = Engine_staged.run plan in
  let s_on = Engine_staged.run propagated in
  let identical = s_off = s_on in
  let delta_pct = 100.0 *. ((on /. off) -. 1.0) in
  Printf.printf "propagation off: %10.3f ms/run\n" (off *. 1e-6);
  Printf.printf "propagation on:  %10.3f ms/run  (%+.1f%%)\n" (on *. 1e-6)
    delta_pct;
  Printf.printf "%d survivors; statistics identical: %b\n"
    s_off.Engine.survivors identical;
  let synth_plan =
    Plan.optimize ~passes:[ Propagate.pass ]
      (Plan.make_exn (Synth.space ()))
  in
  let feas, count_s =
    time_once (fun () ->
        match Feasible.build synth_plan with
        | Ok f -> f
        | Error msg -> failwith ("bench: feasible build failed: " ^ msg))
  in
  let synth_count = Feasible.count feas in
  let synth_count_ok = synth_count = Synth.expected_survivors () in
  Printf.printf "synth feasible count: %d in %.3f ms (expected: %b)\n"
    synth_count (count_s *. 1e3) synth_count_ok;
  let oc = open_out "BENCH_propagate.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"ablation-propagate\",\n\
    \  \"bench_schema\": %d,\n\
    \  \"space\": \"gemm\",\n\
    \  \"max_dim\": %d,\n\
    \  \"survivors\": %d,\n\
    \  \"stats_identical\": %b,\n\
    \  \"off_ms\": %.3f,\n\
    \  \"on_ms\": %.3f,\n\
    \  \"delta_pct\": %.1f,\n\
    \  \"synth_count\": %d,\n\
    \  \"synth_count_ok\": %b,\n\
    \  \"synth_count_ms\": %.3f\n\
     }\n"
    bench_schema_version max_dim s_off.Engine.survivors identical
    (off *. 1e-6) (on *. 1e-6) delta_pct synth_count synth_count_ok
    (count_s *. 1e3);
  close_out oc;
  print_endline "wrote BENCH_propagate.json"

(* The live-introspection companion: the same staged sweep with the
   heartbeat status file and the flight recorder installed vs plain.
   The status writer is throttled (at most one temp-then-rename per
   interval) and the flight ring is a per-domain array store, so the
   dominant cost is the same one the obs ablation measures: the
   engines pick their instrumented compiled path once any sink is
   live. BENCH_status.json feeds the regression gate; the checks that
   must hold everywhere (status file parses, flight dump non-empty)
   are deterministic, the overhead is reported and gated only behind
   --gate-timing like every other timing field. *)
let ablation_status () =
  header
    "Ablation: heartbeat status + flight recorder on the staged GEMM\n\
     sweep (introspection off vs on; BENCH_status.json records the\n\
     result).";
  let max_dim = if fast then 20 else 32 in
  let max_threads = if fast then 96 else 128 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  let stats = Engine_staged.run plan (* warm up + reference counts *) in
  let off =
    ns_per_run "staged-status-off" (fun () -> ignore (Engine_staged.run plan))
  in
  let status_file = "BENCH_status.heartbeat.json" in
  let flight_file = "BENCH_status.flight.jsonl" in
  let cfg =
    {
      Run_config.default with
      Run_config.status = Some status_file;
      status_every_s = 0.1;
      flight = Some flight_file;
    }
  in
  let on =
    Run_config.with_instrumentation ~run_id:"bench-status" ~space:"gemm" cfg
      (fun () ->
        ns_per_run "staged-status-on" (fun () ->
            ignore (Engine_staged.run plan)))
  in
  let status_parses =
    match Status.of_file status_file with
    | Ok v -> v.Status.v_state = "completed"
    | Error _ -> false
  in
  let flight_nonempty =
    match Sink_jsonl.read_file flight_file with
    | Ok events -> Array.length events > 0
    | Error _ -> false
  in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ status_file; flight_file ];
  let overhead_pct = 100.0 *. ((on /. off) -. 1.0) in
  Printf.printf "introspection disabled: %10.3f ms/run\n" (off *. 1e-6);
  Printf.printf "status + flight on:     %10.3f ms/run  (+%.1f%%)\n"
    (on *. 1e-6) overhead_pct;
  Printf.printf "final status parses: %b; flight dump non-empty: %b\n"
    status_parses flight_nonempty;
  let oc = open_out "BENCH_status.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"ablation-status\",\n\
    \  \"bench_schema\": %d,\n\
    \  \"space\": \"gemm\",\n\
    \  \"max_dim\": %d,\n\
    \  \"survivors\": %d,\n\
    \  \"status_parses\": %b,\n\
    \  \"flight_nonempty\": %b,\n\
    \  \"off_ms\": %.3f,\n\
    \  \"on_ms\": %.3f,\n\
    \  \"overhead_pct\": %.1f\n\
     }\n"
    bench_schema_version max_dim stats.Engine.survivors status_parses
    flight_nonempty (off *. 1e-6) (on *. 1e-6) overhead_pct;
  close_out oc;
  print_endline "wrote BENCH_status.json"

(* ------------------------------------------------------------------ *)
(* Regression gate: compare BENCH_parallel.json (or any other BENCH_*   *)
(* artifact, dispatched on its "bench" field) against a committed       *)
(* baseline.                                                            *)
(* ------------------------------------------------------------------ *)

(* Two classes of field. The deterministic ones (survivor and iteration
   counts, split arity, work-share percentages) are machine-independent:
   any drift is a real behaviour change and fails the gate. The timing
   fields vary across machines and CI neighbours, so they are reported
   but only gated behind --gate-timing (with --threshold slack). *)
let load_bench_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> Jsonx.parse text

let compare_baseline ~baseline_file ~current_file ~threshold_pct ~gate_timing =
  let load what path =
    match load_bench_json path with
    | Ok json -> json
    | Error msg ->
      Printf.eprintf "bench gate: cannot read %s file %s: %s\n" what path msg;
      exit 1
  in
  let base = load "baseline" baseline_file in
  let cur = load "current" current_file in
  (* Refuse a baseline from a different field layout outright: gating
     current fields against a stale shape fails one field at a time with
     misleading diffs. An absent field reads as version 0 (pre-versioning
     files). *)
  let base_schema =
    match Jsonx.member_opt "bench_schema" base with
    | None -> 0
    | Some v -> ( try Jsonx.to_int "bench_schema" v with Jsonx.Error _ -> 0)
  in
  if base_schema <> bench_schema_version then begin
    Printf.eprintf
      "bench gate: baseline %s has bench_schema %d but this harness writes \
       %d; regenerate it with --write-baseline\n"
      baseline_file base_schema bench_schema_version;
    exit 1
  end;
  header
    (Printf.sprintf "Regression gate: %s vs baseline %s" current_file
       baseline_file);
  let failures = ref 0 in
  let check name ok detail =
    Printf.printf "  %-28s %s  %s\n" name (if ok then "ok  " else "FAIL") detail;
    if not ok then incr failures
  in
  let exact_int name =
    let b = Jsonx.to_int name (Jsonx.member name base)
    and c = Jsonx.to_int name (Jsonx.member name cur) in
    check name (b = c) (Printf.sprintf "baseline %d, current %d" b c)
  in
  let exact_str name =
    let b = Jsonx.to_str name (Jsonx.member name base)
    and c = Jsonx.to_str name (Jsonx.member name cur) in
    check name (b = c) (Printf.sprintf "baseline %s, current %s" b c)
  in
  (* Shares are deterministic up to the %.2f rounding in the file. *)
  let near_float name =
    let b = Jsonx.to_float name (Jsonx.member name base)
    and c = Jsonx.to_float name (Jsonx.member name cur) in
    check name
      (Float.abs (b -. c) <= 0.05)
      (Printf.sprintf "baseline %.2f, current %.2f" b c)
  in
  let bench_kind =
    try Jsonx.to_str "bench" (Jsonx.member "bench" base)
    with Jsonx.Error _ -> "ablation-stealing"
  in
  (try
     if bench_kind = "ablation-status" then begin
       exact_str "bench";
       exact_str "space";
       exact_int "max_dim";
       exact_int "survivors";
       check "status_parses"
         (Jsonx.to_bool "status_parses" (Jsonx.member "status_parses" cur))
         "final heartbeat snapshot must be parseable and completed";
       check "flight_nonempty"
         (Jsonx.to_bool "flight_nonempty" (Jsonx.member "flight_nonempty" cur))
         "flight recorder must dump at least one event";
       let b_over =
         Jsonx.to_float "overhead_pct" (Jsonx.member "overhead_pct" base)
       and c_over =
         Jsonx.to_float "overhead_pct" (Jsonx.member "overhead_pct" cur)
       in
       if gate_timing then
         check "overhead_pct"
           (c_over <= b_over +. threshold_pct)
           (Printf.sprintf
              "baseline +%.1f%%, current +%.1f%% (threshold +%.0f points)"
              b_over c_over threshold_pct)
       else
         Printf.printf
           "  %-28s info  baseline +%.1f%%, current +%.1f%% (not gated; pass \
            --gate-timing)\n"
           "overhead_pct" b_over c_over;
       raise Exit
     end;
     if bench_kind = "ablation-native" then begin
       exact_str "bench";
       exact_str "space";
       exact_int "max_dim";
       exact_int "max_threads";
       exact_int "survivors";
       exact_int "loop_iterations";
       check "engines_agree"
         (Jsonx.to_bool "engines_agree" (Jsonx.member "engines_agree" cur))
         "all five engines must produce identical statistics";
       check "native_fastest"
         (Jsonx.to_bool "native_fastest" (Jsonx.member "native_fastest" cur))
         "the compiled tier must be strictly fastest of the five engines";
       let b_native = Jsonx.to_float "native_s" (Jsonx.member "native_s" base)
       and c_native = Jsonx.to_float "native_s" (Jsonx.member "native_s" cur)
       and c_staged = Jsonx.to_float "staged_s" (Jsonx.member "staged_s" cur)
       and c_interp = Jsonx.to_float "interp_s" (Jsonx.member "interp_s" cur) in
       if gate_timing then
         check "native_s"
           (c_native <= b_native *. (1.0 +. (threshold_pct /. 100.0)))
           (Printf.sprintf "baseline %.4fs, current %.4fs (threshold +%.0f%%)"
              b_native c_native threshold_pct)
       else
         Printf.printf
           "  %-28s info  native %.4fs vs staged %.4fs vs interp %.4fs (not \
            gated; pass --gate-timing)\n"
           "native_s" c_native c_staged c_interp;
       raise Exit
     end;
     if bench_kind = "ablation-propagate" then begin
       exact_str "bench";
       exact_str "space";
       exact_int "max_dim";
       exact_int "survivors";
       exact_int "synth_count";
       check "stats_identical"
         (Jsonx.to_bool "stats_identical" (Jsonx.member "stats_identical" cur))
         "the propagated plan's statistics must match the plain plan's \
          exactly";
       check "synth_count_ok"
         (Jsonx.to_bool "synth_count_ok" (Jsonx.member "synth_count_ok" cur))
         "the feasible-set count of the synthetic billion-point space must \
          equal the closed form";
       let b_delta = Jsonx.to_float "delta_pct" (Jsonx.member "delta_pct" base)
       and c_delta = Jsonx.to_float "delta_pct" (Jsonx.member "delta_pct" cur) in
       if gate_timing then
         check "delta_pct"
           (c_delta <= b_delta +. threshold_pct)
           (Printf.sprintf
              "baseline %+.1f%%, current %+.1f%% (threshold +%.0f points)"
              b_delta c_delta threshold_pct)
       else
         Printf.printf
           "  %-28s info  baseline %+.1f%%, current %+.1f%% (not gated; pass \
            --gate-timing)\n"
           "delta_pct" b_delta c_delta;
       raise Exit
     end;
     if bench_kind = "ablation-provenance" then begin
       exact_str "bench";
       exact_str "space";
       exact_int "max_dim";
       exact_int "survivors";
       exact_int "total_removed";
       check "exact"
         (Jsonx.to_bool "exact" (Jsonx.member "exact" cur))
         "attribution must stay exact on the plain gemm space";
       let b_over =
         Jsonx.to_float "overhead_pct" (Jsonx.member "overhead_pct" base)
       and c_over =
         Jsonx.to_float "overhead_pct" (Jsonx.member "overhead_pct" cur)
       in
       if gate_timing then
         check "overhead_pct"
           (c_over <= b_over +. threshold_pct)
           (Printf.sprintf
              "baseline +%.1f%%, current +%.1f%% (threshold +%.0f points)"
              b_over c_over threshold_pct)
       else
         Printf.printf
           "  %-28s info  baseline +%.1f%%, current +%.1f%% (not gated; pass \
            --gate-timing)\n"
           "overhead_pct" b_over c_over;
       raise Exit
     end;
     exact_str "bench";
     exact_str "space";
     exact_int "max_dim";
     exact_int "domains";
     exact_int "chunks";
     exact_int "survivors";
     exact_int "loop_iterations";
     let b_shares =
       List.map
         (Jsonx.to_float "share")
         (Jsonx.to_list "static_slice_shares_pct"
            (Jsonx.member "static_slice_shares_pct" base))
     and c_shares =
       List.map
         (Jsonx.to_float "share")
         (Jsonx.to_list "static_slice_shares_pct"
            (Jsonx.member "static_slice_shares_pct" cur))
     in
     check "static_slice_shares_pct"
       (List.length b_shares = List.length c_shares
       && List.for_all2 (fun b c -> Float.abs (b -. c) <= 0.05) b_shares
            c_shares)
       (Printf.sprintf "baseline [%s], current [%s]"
          (String.concat " " (List.map (Printf.sprintf "%.2f") b_shares))
          (String.concat " " (List.map (Printf.sprintf "%.2f") c_shares)));
     near_float "max_chunk_share_pct";
     check "stats_match_sequential"
       (Jsonx.to_bool "stats_match_sequential"
          (Jsonx.member "stats_match_sequential" cur))
       "current run must agree with the sequential sweep";
     let b_steal = Jsonx.to_float "stealing_s" (Jsonx.member "stealing_s" base)
     and c_steal = Jsonx.to_float "stealing_s" (Jsonx.member "stealing_s" cur)
     and b_speedup = Jsonx.to_float "speedup" (Jsonx.member "speedup" base)
     and c_speedup = Jsonx.to_float "speedup" (Jsonx.member "speedup" cur) in
     if gate_timing then begin
       check "stealing_s"
         (c_steal <= b_steal *. (1.0 +. (threshold_pct /. 100.0)))
         (Printf.sprintf "baseline %.3fs, current %.3fs (threshold +%.0f%%)"
            b_steal c_steal threshold_pct);
       check "speedup"
         (c_speedup >= b_speedup *. (1.0 -. (threshold_pct /. 100.0)))
         (Printf.sprintf "baseline %.2fx, current %.2fx (threshold -%.0f%%)"
            b_speedup c_speedup threshold_pct)
     end
     else
       Printf.printf
         "  %-28s info  baseline %.3fs/%.2fx, current %.3fs/%.2fx (not gated; \
          pass --gate-timing)\n"
         "stealing_s/speedup" b_steal b_speedup c_steal c_speedup
   with
  | Exit -> ()
  | Jsonx.Error msg ->
    Printf.eprintf "bench gate: malformed bench json: %s\n" msg;
    exit 1);
  if !failures > 0 then begin
    Printf.printf "bench gate: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else print_endline "bench gate: all checks passed"

(* Canonicalize a bench artifact into a committed baseline: parse,
   stamp the current bench_schema right after the dispatch field, and
   re-emit through the deterministic Jsonx printer, so regenerated
   baselines differ only where the measurements did. *)
let write_baseline_file ~current_file ~out_file =
  match load_bench_json current_file with
  | Error msg ->
    Printf.eprintf "bench: cannot read %s: %s\n" current_file msg;
    exit 1
  | Ok json ->
    let json =
      match json with
      | Jsonx.Obj members ->
        let members =
          List.filter (fun (k, _) -> k <> "bench_schema") members
        in
        let stamp = ("bench_schema", Jsonx.Int bench_schema_version) in
        Jsonx.Obj
          (match members with
          | ("bench", v) :: rest -> ("bench", v) :: stamp :: rest
          | rest -> stamp :: rest)
      | other -> other
    in
    let oc = open_out_bin out_file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Jsonx.pretty json));
    Printf.printf "wrote baseline %s (bench_schema %d)\n" out_file
      bench_schema_version

(* Append the ablation artifacts to the cross-run archive, so
   [beast trends] sees the bench timeline alongside sweep records. *)
let archive_bench_results dir =
  let commit = Archive.commit_from_env () in
  let host = Unix.gethostname () in
  List.iter
    (fun file ->
      if Sys.file_exists file then
        match load_bench_json file with
        | Error msg ->
          Printf.eprintf "bench: archive: %s: %s\n" file msg;
          exit 1
        | Ok payload -> (
          match Archive.ingest ~dir ?commit ~host payload with
          | Ok (r, true) ->
            Printf.printf "archived %s as %s (seq %d)\n" file
              r.Archive.meta.Archive.a_id r.Archive.meta.Archive.a_seq
          | Ok (r, false) ->
            Printf.printf "%s already archived as %s\n" file
              r.Archive.meta.Archive.a_id
          | Error msg ->
            Printf.eprintf "bench: archive: %s: %s\n" file msg;
            exit 1))
    [
      "BENCH_parallel.json"; "BENCH_native.json"; "BENCH_provenance.json";
      "BENCH_status.json"; "BENCH_propagate.json";
    ]

let () =
  let baseline = ref None in
  let threshold = ref 25.0 in
  let compare_only = ref false in
  let gate_timing = ref false in
  let current_file = ref "BENCH_parallel.json" in
  let write_baseline = ref None in
  let archive_dir = ref None in
  let usage () =
    prerr_endline
      "usage: main.exe [--baseline FILE] [--current FILE] [--threshold PCT] \
       [--gate-timing] [--compare-only] [--write-baseline FILE] \
       [--archive DIR]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: f :: rest ->
      baseline := Some f;
      parse rest
    | "--current" :: f :: rest ->
      current_file := f;
      parse rest
    | "--threshold" :: p :: rest -> (
      match float_of_string_opt p with
      | Some v ->
        threshold := v;
        parse rest
      | None -> usage ())
    | "--compare-only" :: rest ->
      compare_only := true;
      parse rest
    | "--gate-timing" :: rest ->
      gate_timing := true;
      parse rest
    | "--write-baseline" :: f :: rest ->
      write_baseline := Some f;
      parse rest
    | "--archive" :: d :: rest ->
      archive_dir := Some d;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !compare_only then begin
    (match !write_baseline with
    | Some out -> write_baseline_file ~current_file:!current_file ~out_file:out
    | None -> ());
    (match !archive_dir with
    | Some dir -> archive_bench_results dir
    | None -> ());
    match !baseline with
    | None ->
      if !write_baseline = None && !archive_dir = None then begin
        prerr_endline
          "bench gate: --compare-only needs --baseline, --write-baseline or \
           --archive";
        exit 2
      end
      else exit 0
    | Some baseline_file ->
      compare_baseline ~baseline_file ~current_file:!current_file
        ~threshold_pct:!threshold ~gate_timing:!gate_timing;
      exit 0
  end;
  Printf.printf "BEAST reproduction benchmarks%s\n"
    (if quick then " (QUICK smoke mode)" else if fast then " (FAST mode)" else "");
  (* BEAST_BENCH_TRACE=FILE records the whole harness run and writes a
     Chrome trace at the end (obs-overhead ablation excepted: it manages
     its own sink, so its instrumented timings stay self-contained). *)
  let trace =
    Option.map
      (fun file ->
        let r = Recorder.create () in
        Obs.set_sink (Recorder.sink r);
        (file, r))
      (Sys.getenv_opt "BEAST_BENCH_TRACE")
  in
  if not quick then begin
    fig17 ();
    fig18 ();
    fig19 ();
    sweep_speedup ();
    table1 ();
    funnel ()
  end;
  fig16 ();
  ablation_hoisting ();
  if not quick then begin
    ablation_loop_order ();
    ablation_divisor_iterator ()
  end;
  ablation_parallel ();
  ablation_stealing ();
  ablation_provenance ();
  ablation_propagate ();
  ablation_checkpoint ();
  ablation_status ();
  ablation_native ();
  (match trace with
  | None -> ()
  | Some _ -> Obs.clear_sink ());
  if not quick then ablation_obs_overhead ();
  (match trace with
  | None -> ()
  | Some (file, r) ->
    let oc = open_out file in
    Sink_chrome.write ~start_ns:(Recorder.start_ns r) oc (Recorder.events r);
    close_out oc;
    Printf.printf "wrote %d trace events to %s\n" (Recorder.event_count r) file);
  line ();
  print_endline "done; see EXPERIMENTS.md for paper-vs-measured discussion.";
  (match !write_baseline with
  | Some out -> write_baseline_file ~current_file:!current_file ~out_file:out
  | None -> ());
  (match !archive_dir with
  | Some dir -> archive_bench_results dir
  | None -> ());
  match !baseline with
  | None -> ()
  | Some baseline_file ->
    compare_baseline ~baseline_file ~current_file:!current_file
      ~threshold_pct:!threshold ~gate_timing:!gate_timing
