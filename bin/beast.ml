(* The beast command-line tool: sweep, visualize, translate and tune the
   bundled search spaces. *)

open Cmdliner
open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_autotune
open Beast_dsl
open Beast_obs

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let device_arg =
  let doc = "Device preset: k40c, gtx680, c2050 or gtx750ti." in
  Arg.(value & opt string "k40c" & info [ "device" ] ~docv:"NAME" ~doc)

let max_dim_arg =
  let doc =
    "Scale the device's thread-grid dimensions down to $(docv) so the sweep \
     is tractable (the unscaled K40c GEMM space is astronomically large)."
  in
  Arg.(value & opt int 32 & info [ "max-dim" ] ~docv:"N" ~doc)

let max_threads_arg =
  let doc = "Scale the device's threads-per-block limit down to $(docv)." in
  Arg.(value & opt int 128 & info [ "max-threads" ] ~docv:"N" ~doc)

let engine_arg =
  (* Engines resolve by name through the registry — the CLI no longer
     keeps its own list of what exists. *)
  let parse s =
    match Engine_registry.find s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (module E : Engine_intf.S) = Format.pp_print_string ppf E.name in
  let doc =
    Printf.sprintf "Evaluation engine: %s."
      (String.concat ", " Engine_registry.names)
  in
  Arg.(
    value
    & opt (conv (parse, print)) (module Engine_registry.Staged : Engine_intf.S)
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let trace_arg =
  let doc = "Write a trace of planning and enumeration to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let fmts =
    [
      ("jsonl", Run_config.Jsonl);
      ("chrome", Run_config.Chrome);
      ("summary", Run_config.Summary);
    ]
  in
  let doc =
    "Trace format: $(b,jsonl) (one event per line), $(b,chrome) \
     (trace-event JSON, loadable in Perfetto or chrome://tracing), or \
     $(b,summary) (human-readable aggregates)."
  in
  Arg.(
    value
    & opt (enum fmts) Run_config.Chrome
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let progress_arg =
  let doc = "Report live progress (points, survivors, ETA) on stderr." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let shard_arg =
  (* Syntax only: the bounds (0 <= I < N, N > 0) are checked by
     Run_config.validate so programmatic configs get the same errors. *)
  let parse s =
    match String.index_opt s '/' with
    | Some k -> (
      match
        ( int_of_string_opt (String.sub s 0 k),
          int_of_string_opt (String.sub s (k + 1) (String.length s - k - 1)) )
      with
      | Some i, Some n -> Ok (i, n)
      | _ -> Error (`Msg "shard: expected I/N with integer I and N"))
    | None -> Error (`Msg "shard: expected I/N, e.g. --shard 0/3")
  in
  let print ppf (i, n) = Format.fprintf ppf "%d/%d" i n in
  let doc =
    "Enumerate only shard $(docv) (0-based index I of an N-way contiguous \
     block split of the outermost loop). The N shards partition the space: \
     run each on its own machine or CI job with --stats-out and recombine \
     the files with $(b,beast merge)."
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "shard" ] ~docv:"I/N" ~doc)

let checkpoint_arg =
  let doc =
    "Periodically snapshot the sweep's completed-chunk ledger to $(docv) \
     (written atomically), so a killed run can continue with --resume. \
     Needs the parallel engine."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Seconds between checkpoint snapshots (default 5)." in
  Arg.(
    value & opt float 5.0 & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)

let resume_arg =
  let doc =
    "Resume from the checkpoint in $(docv): chunks it records as complete \
     are skipped and the final output is byte-identical to an \
     uninterrupted run. Checkpointing continues into the same file unless \
     --checkpoint names another."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let fault_arg =
  (* Test hooks: chunk-crash proves crash recovery (failed attempts are
     retried); chunk-fatal takes the whole run down, exercising the
     flight-recorder and manifest crash paths. *)
  let parse s =
    let bad () =
      Error
        (`Msg
           "fault-inject: expected chunk-crash:P (crash probability, \
            optionally chunk-crash:P:SEED) or chunk-fatal:K (unrecoverable \
            crash when chunk K runs)")
    in
    match String.split_on_char ':' s with
    | [ "chunk-crash"; p ] -> (
      match float_of_string_opt p with
      | Some prob -> Ok (Run_config.Chunk_crash { prob; seed = 42 })
      | None -> bad ())
    | [ "chunk-crash"; p; seed ] -> (
      match (float_of_string_opt p, int_of_string_opt seed) with
      | Some prob, Some seed -> Ok (Run_config.Chunk_crash { prob; seed })
      | _ -> bad ())
    | [ "chunk-fatal"; k ] -> (
      match int_of_string_opt k with
      | Some chunk -> Ok (Run_config.Chunk_fatal { chunk })
      | None -> bad ())
    | _ -> bad ()
  in
  let print ppf = function
    | Run_config.Chunk_crash { prob; seed } ->
      Format.fprintf ppf "chunk-crash:%g:%d" prob seed
    | Run_config.Chunk_fatal { chunk } ->
      Format.fprintf ppf "chunk-fatal:%d" chunk
  in
  let doc =
    "Fault-injection test hook: $(b,chunk-crash:P) makes each chunk \
     attempt crash with probability P (deterministic in the optional \
     SEED, default 42; crashed chunks are retried until they complete, \
     so the final statistics are unaffected); $(b,chunk-fatal:K) raises \
     an unrecoverable error when chunk K runs, taking the run down — \
     use with --flight to exercise post-mortem dumps."
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "fault-inject" ] ~docv:"KIND:P" ~doc)

let explain_out_arg =
  let doc =
    "Collect single-pass pruning provenance during the sweep (exact \
     per-constraint removal counts, per-depth survival, survivor density \
     over the outermost iterator) and write it with the sweep statistics \
     to $(docv). Render with $(b,beast explain); shard files merge with \
     $(b,beast merge) into exactly the unsharded file. Incompatible with \
     --resume."
  in
  Arg.(
    value & opt (some string) None & info [ "explain-out" ] ~docv:"FILE" ~doc)

let stats_out_arg =
  let doc =
    "Write the sweep statistics (survivor and loop-iteration totals, \
     per-constraint pruned counts) to $(docv) as deterministic JSON, \
     mergeable across shards with $(b,beast merge). With --metrics the \
     file also carries the run's histogram state, recombinable into \
     exact fleet-level percentiles."
  in
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Record runtime metrics (per-constraint evaluation-latency \
     histograms, per-depth loop-entry counts, scheduler chunk \
     durations, planning phases). View with $(b,beast report) on the \
     --stats-out file."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the recorded metrics to $(docv) in Prometheus text \
     exposition format (implies --metrics)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let progress_every_arg =
  let doc =
    "Seconds between progress redraws (default 0.2 on a tty, 2 \
     otherwise). Raise it so long sweeps don't flood non-tty CI logs \
     with throttled plain lines."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "progress-every" ] ~docv:"SECONDS" ~doc)

let status_arg =
  let doc =
    "Atomically rewrite a small JSON heartbeat snapshot of the run \
     (chunks done/total, per-domain throughput, survivor rate, \
     pruning-aware ETA, checkpoint age) to $(docv); attach to it with \
     $(b,beast top)."
  in
  Arg.(value & opt (some string) None & info [ "status" ] ~docv:"FILE" ~doc)

let status_every_arg =
  let doc = "Seconds between status-file rewrites (default 1)." in
  Arg.(value & opt float 1.0 & info [ "status-every" ] ~docv:"SECONDS" ~doc)

let flight_arg =
  let doc =
    "Keep a fixed-size flight-recorder ring of recent events per domain \
     and dump it to $(docv) as JSONL when the run exits — cleanly, \
     interrupted or crashed — so post-mortems get the last moments \
     without full --trace cost."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let flight_size_arg =
  let doc = "Flight-recorder ring capacity per domain (default 512 events)." in
  Arg.(
    value
    & opt int Flight.default_capacity
    & info [ "flight-size" ] ~docv:"N" ~doc)

let runs_dir_arg =
  let doc =
    "Write a run manifest into $(docv) at start (status \"running\") \
     and finalize it at exit (completed/interrupted/crashed, exit code, \
     wall time); inspect with $(b,beast runs)."
  in
  Arg.(value & opt (some string) None & info [ "runs" ] ~docv:"DIR" ~doc)

let run_id_arg =
  let doc =
    "Use $(docv) as the run id instead of minting one, and also stamp \
     it into the --stats-out file (minted ids never are, so stats stay \
     byte-identical across instrumentation settings)."
  in
  Arg.(value & opt (some string) None & info [ "run-id" ] ~docv:"ID" ~doc)

let archive_flag_arg =
  let doc =
    "On clean completion, ingest the run's statistics (funnel, \
     per-constraint fired counts, metrics and provenance when recorded) \
     into the cross-run performance archive; compare runs with \
     $(b,beast diff) and watch the timeline with $(b,beast trends)."
  in
  Arg.(value & flag & info [ "archive" ] ~doc)

let archive_dir_arg =
  let doc =
    "Archive directory for --archive (default: $(b,\\$BEAST_ARCHIVE) or \
     $(b,.beast/archive))."
  in
  Arg.(
    value & opt (some string) None & info [ "archive-dir" ] ~docv:"DIR" ~doc)

(* The observability settings shared by every instrumented subcommand,
   assembled into one Run_config record instead of a dozen loose values
   threaded through each term. *)
let obs_config_term =
  let build trace trace_format progress progress_every_s metrics metrics_out
      status status_every_s flight flight_capacity runs_dir run_id =
    {
      Run_config.default with
      Run_config.trace;
      trace_format;
      progress;
      progress_every_s;
      metrics;
      metrics_out;
      status;
      status_every_s;
      flight;
      flight_capacity;
      runs_dir;
      run_id;
    }
  in
  Term.(
    const build $ trace_arg $ trace_format_arg $ progress_arg
    $ progress_every_arg $ metrics_arg $ metrics_out_arg $ status_arg
    $ status_every_arg $ flight_arg $ flight_size_arg $ runs_dir_arg
    $ run_id_arg)

let propagate_arg =
  let doc =
    "Constraint-propagation pre-pass: $(b,on) removes statically-dead \
     iterator values from the loop nest before enumeration (statistics \
     stay byte-identical — the dead values are replayed as bookkeeping), \
     $(b,off) runs the plan as built. The default comes from the \
     engine's registry entry: on everywhere except interp-naive, whose \
     unoptimized cost model is the point."
  in
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "propagate" ] ~docv:"on|off" ~doc)

(* Sweep adds sharding, propagation, the checkpoint/resume/fault
   settings and the provenance collector on top. *)
let sweep_config_term =
  let build cfg shard propagate checkpoint checkpoint_every_s resume fault
      explain_out archive archive_dir =
    {
      cfg with
      Run_config.shard;
      propagate;
      checkpoint;
      checkpoint_every_s;
      resume;
      fault;
      explain_out;
      archive;
      archive_dir;
    }
  in
  Term.(
    const build $ obs_config_term $ shard_arg $ propagate_arg
    $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ fault_arg
    $ explain_out_arg $ archive_flag_arg $ archive_dir_arg)

(* Validate the config, then run [f] under its instrumentation. [f]
   receives the effective run id (explicit --run-id, or freshly minted
   when any introspection surface wants one) and returns the process
   exit code rather than calling [exit] itself, so the Fun.protect
   finalizers inside with_instrumentation (trace, flight and metrics
   writes, status finalization) always run before the process ends.

   When --runs names a directory, a manifest is written before the work
   starts and finalized on every exit path — normal return, Sys_error,
   or a crash unwinding past us — so `beast runs` can always tell how a
   run ended. *)
let with_config ?space ?engine cfg f =
  (match Run_config.validate cfg with
  | Ok () -> ()
  | Error msg ->
    Format.eprintf "beast: %s@." msg;
    exit 2);
  let run_id =
    match cfg.Run_config.run_id with
    | Some id -> Some id
    | None ->
      if Run_config.introspected cfg then
        let seed =
          Printf.sprintf "%s|%s"
            (Option.value space ~default:"beast")
            (match cfg.Run_config.shard with
            | None -> "0/1"
            | Some (i, n) -> Printf.sprintf "%d/%d" i n)
        in
        Some (Run_meta.fresh_id ~seed ())
      else None
  in
  let manifest =
    match (cfg.Run_config.runs_dir, run_id) with
    | Some dir, Some id ->
      let m =
        Run_meta.make ~run_id:id
          ~space:(Option.value space ~default:"?")
          ?shard:cfg.Run_config.shard
          ~engine:(Option.value engine ~default:"-")
          ()
      in
      Run_meta.save ~dir m;
      Some (dir, m)
    | _ -> None
  in
  let t0 = Clock.now_ns () in
  let finalize_manifest code =
    match manifest with
    | None -> ()
    | Some (dir, m) ->
      let status =
        match code with
        | 0 -> Run_meta.Completed
        | 3 -> Run_meta.Interrupted
        | _ -> Run_meta.Crashed
      in
      ignore
        (Run_meta.finalize ~dir m ~status ~exit_code:code
           ~wall_s:(Clock.elapsed_s ~since:t0))
  in
  match
    Run_config.with_instrumentation ?run_id ?space cfg (fun () -> f run_id)
  with
  | code ->
    finalize_manifest code;
    if code <> 0 then exit code
  | exception Sys_error msg ->
    finalize_manifest 1;
    Format.eprintf "beast: %s@." msg;
    exit 1
  | exception Engine_native.Error msg ->
    (* Graceful degradation for the compiled tier: untranslatable space,
       missing compiler, failed compile — one actionable line, exit 2,
       never an exception trace. *)
    finalize_manifest 2;
    Format.eprintf "beast: %s@." msg;
    exit 2
  | exception e ->
    (* Cmdliner maps an uncaught exception to its internal-error code. *)
    finalize_manifest 125;
    raise e

let resolve_device name max_dim max_threads =
  match Device.find name with
  | Some d -> Device.scale ~max_dim ~max_threads d
  | None ->
    Format.eprintf "unknown device %s (try: %s)@." name
      (String.concat ", " (List.map fst Device.presets));
    exit 2

let resolve_space name device =
  if Filename.check_suffix name ".beast" then
    match Parse.space_of_file name with
    | Ok sp -> sp
    | Error e ->
      Format.eprintf "%s: %a@." name Parse.pp_error e;
      exit 2
  else
  match name with
  | "gemm" ->
    Gemm.space ~settings:{ Gemm.default_settings with Gemm.device } ()
  | "cholesky" ->
    Cholesky_batched.space
      ~workload:{ Cholesky_batched.default_workload with Cholesky_batched.device }
      ()
  | "trsm" ->
    Trsm_batched.space
      ~workload:{ Trsm_batched.default_workload with Trsm_batched.device }
      ()
  | "lu" ->
    Lu_batched.space
      ~workload:{ Lu_batched.default_workload with Lu_batched.device }
      ()
  | "als" ->
    Als.space ~workload:{ Als.default_workload with Als.device } ()
  | "conv2d" ->
    Conv2d.space ~workload:{ Conv2d.default_workload with Conv2d.device } ()
  | "gemm-opt" ->
    Gemm.space_divisor_opt ~settings:{ Gemm.default_settings with Gemm.device } ()
  | "fft" -> Fft.space ~max_size:64 ()
  | "synth" -> Synth.space ()
  | other ->
    Format.eprintf
      "unknown space %s (try: gemm, gemm-opt, cholesky, trsm, lu, als, conv2d, \
       fft, synth)@."
      other;
    exit 2

let space_arg =
  let doc = "Search space: gemm, gemm-opt, cholesky, trsm, lu, als, fft, synth (a billion-point constrained chain for exercising count/sample), or a \\.beast file written in the textual notation (see doc/LANGUAGE.md)." in
  Arg.(value & pos 0 string "gemm" & info [] ~docv:"SPACE" ~doc)

let objective_for space_name device =
  match space_name with
  | "gemm" | "gemm-opt" ->
    let settings = { Gemm.default_settings with Gemm.device } in
    ( Gemm.objective settings,
      Some (Device.peak_gflops device Device.Double),
      None )
  | "cholesky" ->
    let w = { Cholesky_batched.default_workload with Cholesky_batched.device } in
    ( Cholesky_batched.objective w,
      Some (Device.peak_gflops device Device.Double),
      Some (Cholesky_batched.baseline_gflops w) )
  | "trsm" ->
    let w = { Trsm_batched.default_workload with Trsm_batched.device } in
    ( Trsm_batched.objective w,
      Some (Device.peak_gflops device Device.Double),
      Some (Trsm_batched.baseline_gflops w) )
  | "lu" ->
    let w = { Lu_batched.default_workload with Lu_batched.device } in
    ( Lu_batched.objective w,
      Some (Device.peak_gflops device Device.Double),
      Some (Lu_batched.baseline_gflops w) )
  | "als" ->
    let w = { Als.default_workload with Als.device } in
    ( Als.objective w,
      Some (Device.peak_gflops device w.Als.precision),
      Some (Als.cpu_baseline_gflops w) )
  | "conv2d" ->
    let w = { Conv2d.default_workload with Conv2d.device } in
    ( Conv2d.objective w,
      Some (Device.peak_gflops device w.Conv2d.precision),
      None )
  | "fft" -> (Fft.objective, None, None)
  | other ->
    Format.eprintf
      "no benchmark objective is bundled for %s; tune/search need one of the \
       built-in spaces (use sweep/dot/codegen/funnel for .beast files)@."
      other;
    exit 2

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

(* Pool the metrics a resumed checkpoint carried over with what the live
   registry recorded after the resume, so the final stats file describes
   the whole logical run. *)
let pooled_metrics resume_ck =
  let live = Option.map Metrics.snapshot (Metrics.current ()) in
  let base = Option.bind resume_ck (fun ck -> ck.Checkpoint.metrics) in
  match (base, live) with
  | None, live -> live
  | Some base, None -> Some base
  | Some base, Some live ->
    Some (Result.value ~default:live (Metrics.Snapshot.merge [ base; live ]))

let sweep_term =
  let run space_name device max_dim max_threads (module E : Engine_intf.S)
      stats_out cfg =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    (* Whether the propagation pre-pass runs: --propagate wins, else
       the engine's catalog entry decides (off only for the
       deliberately-unoptimized interp-naive baseline). *)
    let propagate =
      match cfg.Run_config.propagate with
      | Some b -> b
      | None -> (
        match Engine_registry.entry_of E.name with
        | Some e -> e.Engine_registry.e_propagate_default
        | None -> true)
    in
    let wants_resumable =
      cfg.Run_config.checkpoint <> None
      || cfg.Run_config.resume <> None
      || cfg.Run_config.fault <> None
    in
    if wants_resumable && Option.is_none E.resumable then begin
      let ledgered =
        List.filter_map
          (fun e ->
            if e.Engine_registry.e_resumable then
              Some e.Engine_registry.e_spec
            else None)
          Engine_registry.catalog
      in
      Format.eprintf
        "beast: --checkpoint, --resume and --fault-inject need an engine \
         with a chunk ledger (use --engine %s)@."
        (String.concat " or " ledgered);
      exit 2
    end;
    (* The checkpoint file is read before instrumentation starts: a
       corrupt or mismatched file must fail before any work happens. *)
    let resume_ck =
      Option.map
        (fun path ->
          match Checkpoint.of_file path with
          | Ok ck -> ck
          | Error msg ->
            Format.eprintf "beast: %s: %s@." path msg;
            exit 1)
        cfg.Run_config.resume
    in
    with_config ~space:space_name ~engine:E.name cfg (fun run_id ->
        let t0 = Clock.now_ns () in
        (* The unchunked plan carries the constraint metadata --stats-out
           serializes; sharding restricts a copy of it. *)
        let plan = Plan.make_exn sp in
        let sharded, shard_info =
          match cfg.Run_config.shard with
          | None -> (plan, Stats_io.unsharded)
          | Some (index, of_) ->
            ( Plan.chunk_outer plan ~index ~of_,
              { Stats_io.shard_index = index; shard_of = of_ } )
        in
        (* Chunk BEFORE propagating: each shard tightens its own block,
           so its statistics stay byte-identical to the unpropagated
           shard's (the pinned safety rail). *)
        let run_plan =
          if propagate then
            Plan.optimize ~passes:[ Propagate.pass ] sharded
          else sharded
        in
        let resume_check =
          match resume_ck with
          | None -> Ok ()
          | Some ck -> Checkpoint.validate ~plan:run_plan ~shard:shard_info ck
        in
        match resume_check with
        | Error msg ->
          Format.eprintf "beast: %s@." msg;
          Run_config.set_exit_state "crashed";
          1
        | Ok () -> (
          let outcome =
            match E.resumable with
            | Some resumable ->
              (* The resumable scheduler also handles the plain case, so
                 every parallel sweep gets graceful SIGINT/SIGTERM
                 draining, checkpointed or not. *)
              let sink =
                (* Keep checkpointing into the resumed file unless
                   --checkpoint redirects it. *)
                match
                  (cfg.Run_config.checkpoint, cfg.Run_config.resume)
                with
                | Some path, _ | None, Some path ->
                  Some
                    {
                      Engine_intf.ck_path = path;
                      ck_every_s = cfg.Run_config.checkpoint_every_s;
                      ck_run_id = run_id;
                      ck_shard = shard_info;
                      ck_base_metrics =
                        Option.bind resume_ck (fun ck ->
                            ck.Checkpoint.metrics);
                    }
                | None, None -> None
              in
              let handler =
                Sys.Signal_handle (fun _ -> Engine_parallel.interrupt ())
              in
              Sys.set_signal Sys.sigint handler;
              Sys.set_signal Sys.sigterm handler;
              resumable ?checkpoint:sink ?resume:resume_ck
                ?fault:cfg.Run_config.fault run_plan
            | None ->
              (* Untouched full-space runs keep the Space target so the
                 interpreters plan (naive or hoisted) themselves; any
                 chunked or propagated nest must be executed as given. *)
              Engine_intf.Finished
                (if propagate || cfg.Run_config.shard <> None then
                   E.run (Engine_intf.Plan run_plan)
                 else E.run (Engine_intf.Space sp))
          in
          match outcome with
          | Engine_intf.Interrupted { completed; total } ->
            Format.eprintf "beast: interrupted after %d of %d chunks@."
              completed total;
            (match (cfg.Run_config.checkpoint, cfg.Run_config.resume) with
            | Some path, _ | None, Some path ->
              Format.eprintf
                "beast: checkpoint saved; continue with --resume %s@." path
            | None, None ->
              Format.eprintf
                "beast: progress lost (run with --checkpoint FILE to make \
                 sweeps resumable)@.");
            Run_config.set_exit_state "interrupted";
            3
          | Engine_intf.Finished stats ->
            let dt = Clock.elapsed_s ~since:t0 in
            Format.printf "space %s on %s, engine %s%s: %.3fs@." space_name
              device.Device.name E.name
              (match cfg.Run_config.shard with
              | None -> ""
              | Some (i, n) -> Printf.sprintf ", shard %d/%d" i n)
              dt;
            Format.printf "%a" Engine.pp_stats stats;
            (* A checkpoint that survived to the end is stale: the run
               completed, so resuming from it would be wrong. *)
            (match (cfg.Run_config.checkpoint, cfg.Run_config.resume) with
            | Some path, _ | None, Some path ->
              if Sys.file_exists path then begin
                (try Sys.remove path with Sys_error _ -> ());
                Format.eprintf "beast: removed checkpoint %s (run complete)@."
                  path
              end
            | None, None -> ());
            (match stats_out with
            | None -> ()
            | Some file ->
              Stats_io.write_file file
                (Stats_io.of_stats ~plan ?run_id:cfg.Run_config.run_id
                   ~shard:shard_info
                   ?metrics:(pooled_metrics resume_ck) stats);
              Format.eprintf "wrote sweep statistics to %s@." file);
            (match (cfg.Run_config.explain_out, Provenance.current ()) with
            | Some file, Some collector ->
              (* The explain file is the stats file plus the provenance
                 section (and the metrics, when recorded), so beast
                 merge/report/explain all read it. *)
              Stats_io.write_file file
                (Stats_io.of_stats ~plan ?run_id:cfg.Run_config.run_id
                   ~shard:shard_info
                   ?metrics:(pooled_metrics resume_ck)
                   ~provenance:(Provenance.summary collector)
                   stats);
              Format.eprintf "wrote pruning provenance to %s@." file
            | _ -> ());
            (* Archive ingestion happens last and never fails the run: a
               completed sweep's exit code should not depend on the
               history store. The payload carries the minted run id, so
               repeated identical sweeps archive as distinct records and
               the trends timeline actually accumulates. *)
            (if cfg.Run_config.archive then begin
               let dir =
                 match cfg.Run_config.archive_dir with
                 | Some d -> d
                 | None -> Archive.default_dir ()
               in
               let record =
                 Stats_io.of_stats ~plan ?run_id ~shard:shard_info
                   ?metrics:(pooled_metrics resume_ck)
                   ?provenance:
                     (Option.map Provenance.summary (Provenance.current ()))
                   stats
               in
               match
                 Archive.ingest ~dir ~engine:E.name
                   ?commit:(Archive.commit_from_env ())
                   ~host:(Unix.gethostname ())
                   (Stats_io.to_jsonx record)
               with
               | Ok (r, true) ->
                 Format.eprintf "archived run as %s (seq %d) in %s@."
                   r.Archive.meta.Archive.a_id r.Archive.meta.Archive.a_seq
                   dir
               | Ok (r, false) ->
                 Format.eprintf "run already archived as %s in %s@."
                   r.Archive.meta.Archive.a_id dir
               | Error msg -> Format.eprintf "beast: archive: %s@." msg
             end);
            0))
  in
  Term.(
    const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
    $ engine_arg $ stats_out_arg $ sweep_config_term)

let sweep_cmd =
  Cmd.v (Cmd.info "sweep" ~doc:"Enumerate and prune a search space") sweep_term

let enumerate_cmd =
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Enumerate and prune a search space (alias of sweep)")
    sweep_term

let dot_cmd =
  let run space_name device max_dim max_threads =
    let device = resolve_device device max_dim max_threads in
    print_string (Space.to_dot (resolve_space space_name device))
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Print the dependency DAG (iterators, derived variables, \
          constraints) as GraphViz - Figure 16 of the paper")
    Term.(const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg)

let codegen_cmd =
  let lang_arg =
    let lang_conv =
      Arg.enum (List.map (fun l -> (Codegen.lang_name l, l)) Codegen.all_langs)
    in
    Arg.(value & opt lang_conv Codegen.C & info [ "lang" ] ~docv:"LANG"
           ~doc:"Backend: c, python, lua, fortran or java.")
  in
  let threads_arg =
    Arg.(value & opt int 1 & info [ "threads" ] ~docv:"N"
           ~doc:"pthread fan-out (C backend only).")
  in
  let run space_name device max_dim max_threads lang threads =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    match Codegen.generate ~threads lang (Plan.make_exn sp) with
    | Ok source -> print_string source
    | Error e ->
      Format.eprintf "cannot translate: %a@." Codegen_c.pp_error e;
      exit 1
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Translate a space to a standalone enumeration program")
    Term.(
      const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
      $ lang_arg $ threads_arg)

let tune_cmd =
  let top_arg =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Show the N best.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Abort any single benchmark call running longer than $(docv) \
             and count it as a failure (reliable with the sequential \
             engines).")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failing benchmark up to N times with exponential \
             backoff before skipping the configuration.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:"Initial retry backoff; doubles on every further attempt.")
  in
  let run space_name device max_dim max_threads engine top timeout_s retries
      backoff_s cfg =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    let objective, peak, baseline = objective_for space_name device in
    with_config ~space:space_name ~engine:"tune" cfg (fun _run_id ->
        let r =
          Tuner.tune ~engine ~top_n:top ?timeout_s ~retries ~backoff_s
            ~objective sp
        in
        Format.printf "%a" (Tuner.pp_result ?peak) r;
        (match baseline with
        | Some b -> (
          match Tuner.improvement r ~baseline:b with
          | Some ratio ->
            Format.printf "improvement over the cuBLAS model: %.2fx@." ratio
          | None -> ())
        | None -> ());
        0)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Enumerate, prune, benchmark on the device model, and rank")
    Term.(
      const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
      $ engine_arg $ top_arg $ timeout_arg $ retries_arg $ backoff_arg
      $ obs_config_term)

let occupancy_cmd =
  let threads = Arg.(required & pos 0 (some int) None & info [] ~docv:"THREADS") in
  let regs = Arg.(required & pos 1 (some int) None & info [] ~docv:"REGS") in
  let shmem = Arg.(required & pos 2 (some int) None & info [] ~docv:"SHMEM") in
  let run device threads regs shmem =
    let d =
      match Device.find device with
      | Some d -> d
      | None -> exit 2
    in
    let usage =
      {
        Occupancy.threads_per_block = threads;
        regs_per_thread = regs;
        shmem_per_block = shmem;
      }
    in
    match Occupancy.calculate d usage with
    | Error e -> Format.printf "infeasible: %s@." (Occupancy.infeasible_name e)
    | Ok r ->
      Format.printf
        "active blocks %d (warps %d, regs %d, shmem %d, hw %d)@.occupancy %.2f, limited by %s@."
        r.Occupancy.active_blocks r.Occupancy.blocks_by_warps
        r.Occupancy.blocks_by_regs r.Occupancy.blocks_by_shmem
        r.Occupancy.blocks_hw_limit r.Occupancy.occupancy
        (Occupancy.limiting_factor r)
  in
  Cmd.v
    (Cmd.info "occupancy"
       ~doc:"The automated occupancy calculator (paper Section II)")
    Term.(const run $ device_arg $ threads $ regs $ shmem)

let funnel_cmd =
  let svg_arg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE"
           ~doc:"Also write the radial visualization (paper ref. [7]).")
  in
  let prefix_sweeps_arg =
    Arg.(
      value & flag
      & info [ "prefix-sweeps" ]
          ~doc:
            "Measure with the reference n+1 prefix-sweep method instead \
             of the single provenance-instrumented sweep (the two agree \
             exactly; this is the independent cross-check).")
  in
  let run space_name device max_dim max_threads svg prefix_sweeps cfg =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    with_config ~space:space_name ~engine:"funnel" cfg (fun _run_id ->
        let f =
          if prefix_sweeps then Stats.funnel sp
          else Stats.funnel_single_pass sp
        in
        Format.printf "%a" Stats.pp f;
        (match svg with
        | Some file ->
          let oc = open_out file in
          output_string oc (Visualize.svg f);
          close_out oc;
          Format.printf "wrote %s@." file
        | None -> ());
        0)
  in
  Cmd.v
    (Cmd.info "funnel"
       ~doc:
         "Measure how much of the space each constraint removes (one \
          provenance-instrumented sweep; --prefix-sweeps for the n+1 \
          reference method)")
    Term.(const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
          $ svg_arg $ prefix_sweeps_arg $ obs_config_term)

(* ------------------------------------------------------------------ *)
(* count / sample — the compact feasible-set queries                    *)
(* ------------------------------------------------------------------ *)

(* Both commands run the propagation pre-pass unconditionally: it never
   changes the feasible set (the identity tests pin that), it only
   shrinks the diagram construction, and the --bound path reads the
   Static_prune records it leaves behind. *)
let feasible_of space_name sp =
  let plan = Plan.optimize ~passes:[ Propagate.pass ] (Plan.make_exn sp) in
  (plan, fun () ->
    match Feasible.build plan with
    | Ok f -> f
    | Error msg ->
      Format.eprintf
        "%s: cannot build a feasible set: %s@.(opaque computes, dynamic \
         iterators and post-loop steps defeat the decision diagram; use \
         'beast sweep' to enumerate instead)@."
        space_name msg;
      exit 2)

let count_cmd =
  let bound_arg =
    Arg.(
      value & flag
      & info [ "bound" ]
          ~doc:
            "Print the propagation upper bound — the product of the \
             per-iterator live ranges left by the interval pre-pass — \
             instead of building the diagram. Cheaper, never below the \
             exact count.")
  in
  let run space_name device max_dim max_threads bound =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    let plan, build = feasible_of space_name sp in
    if bound then (
      match Feasible.of_propagation plan with
      | Ok f -> Format.printf "%d@." (Feasible.count f)
      | Error msg ->
        Format.eprintf "%s: cannot bound: %s@." space_name msg;
        exit 2)
    else Format.printf "%d@." (Feasible.count (build ()))
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:
         "Exact number of surviving points, computed over the compact \
          feasible-set decision diagram instead of full enumeration \
          (counts billion-point spaces in milliseconds); --bound for the \
          cheaper propagation-only upper bound")
    Term.(
      const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
      $ bound_arg)

let sample_cmd =
  let n_arg =
    Arg.(
      value & opt int 1
      & info [ "n" ] ~docv:"N" ~doc:"Number of points to draw.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed; omitted, a fixed default state is used.")
  in
  let run space_name device max_dim max_threads n seed =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    let _, build = feasible_of space_name sp in
    let f = build () in
    let rng = Option.map (fun s -> Random.State.make [| s |]) seed in
    let ok = ref 0 in
    for _ = 1 to n do
      match Feasible.sample ?rng f with
      | Some point ->
        incr ok;
        Format.printf "%s@."
          (String.concat " "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) point))
      | None -> ()
    done;
    if !ok = 0 && n > 0 then (
      Format.eprintf "%s: no feasible points@." space_name;
      exit 1)
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Draw uniform random points from the feasible set — every draw \
          is a survivor, however sparse the constraints, via exact \
          indexing of the feasible-set diagram (no rejection loop)")
    Term.(
      const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
      $ n_arg $ seed_arg)

let search_cmd =
  let method_arg =
    Arg.(value & opt (enum [ ("random", `Random); ("hill", `Hill) ]) `Random
         & info [ "method" ] ~docv:"METHOD"
             ~doc:"random (budgeted sampling) or hill (stochastic climbing).")
  in
  let budget_arg =
    Arg.(value & opt int 500 & info [ "budget" ] ~docv:"N"
           ~doc:"Objective evaluations (random) or restarts x steps (hill).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let run space_name device max_dim max_threads method_ budget seed cfg =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    let objective, peak, _ = objective_for space_name device in
    with_config ~space:space_name ~engine:"search" cfg (fun _run_id ->
        let plan = Plan.make_exn sp in
        let rng = Random.State.make [| seed |] in
        Search.reset_counters ();
        let result =
          match method_ with
          | `Random -> Search.random_search ~rng ~budget ~objective plan
          | `Hill ->
            Search.hill_climb ~rng ~restarts:(max 1 (budget / 100))
              ~steps:100 ~objective plan
        in
        (match result with
        | None -> Format.printf "no feasible point found@."
        | Some c ->
          Format.printf "best score %.2f" c.Search.score;
          (match peak with
          | Some p when p > 0.0 ->
            Format.printf " (%.1f%% of peak)" (100.0 *. c.Search.score /. p)
          | _ -> ());
          Format.printf " after %d evaluations@." (Search.evaluations ());
          List.iter
            (fun (n, v) -> Format.printf "  %s = %s@." n (Value.to_string v))
            c.Search.bindings);
        0)
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Statistical search instead of exhaustive sweeping (the paper's           future-work direction)")
    Term.(
      const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg
      $ method_arg $ budget_arg $ seed_arg $ obs_config_term)

(* Cross-shard trace correlation: stitch the per-shard JSONL traces of a
   sharded sweep into one Chrome trace, with each shard rendered as a
   process (named after its file) and each domain as a thread inside it.
   Per-shard timestamps are rebased to the shard's own first event, so
   shards that ran at different wall times (different CI jobs) still
   line up for side-by-side comparison. *)
let merge_traces files trace_out =
  (* Each shard's [run:meta] instant (emitted at sink install) carries
     its real coordinates; when every file has one with a distinct
     shard index, processes get pid = index + 1 and a self-describing
     name, so the stitched trace is correct whatever order the files
     were listed in. Traces without metadata (old files, unsharded
     runs) fall back to positional pids named after the file. *)
  let shard_meta events =
    Array.fold_left
      (fun acc ev ->
        if acc <> None || ev.Obs.ev_name <> "run:meta" then acc
        else
          let str k =
            match List.assoc_opt k ev.Obs.ev_args with
            | Some (Obs.Str s) -> Some s
            | _ -> None
          in
          let int k =
            match List.assoc_opt k ev.Obs.ev_args with
            | Some (Obs.Int i) -> Some i
            | _ -> None
          in
          match (int "shard_index", int "shard_of") with
          | Some i, Some n -> Some (i, n, str "run_id")
          | _ -> None)
      None events
  in
  let shards =
    List.map
      (fun f ->
        match Sink_jsonl.read_file f with
        | Error msg ->
          Format.eprintf "%s: %s@." f msg;
          exit 1
        | Ok events ->
          let start_ns =
            Array.fold_left
              (fun acc ev -> min acc ev.Obs.ev_ts_ns)
              max_int events
          in
          let start_ns = if start_ns = max_int then 0 else start_ns in
          (f, shard_meta events, start_ns, events))
      files
  in
  let metas = List.filter_map (fun (_, m, _, _) -> m) shards in
  let indices = List.sort_uniq compare (List.map (fun (i, _, _) -> i) metas) in
  let use_meta =
    List.length metas = List.length shards
    && List.length indices = List.length shards
  in
  let processes =
    List.mapi
      (fun pos (f, meta, start_ns, events) ->
        match (use_meta, meta) with
        | true, Some (i, n, run_id) ->
          let name =
            Printf.sprintf "shard %d/%d%s" i n
              (match run_id with
              | None -> ""
              | Some id -> Printf.sprintf " run %s" id)
          in
          (i + 1, name, start_ns, events)
        | _ ->
          ( pos + 1,
            Filename.remove_extension (Filename.basename f),
            start_ns,
            events ))
      shards
  in
  let rendered = Sink_chrome.render_processes processes in
  (match trace_out with
  | None -> print_string rendered
  | Some file ->
    let oc = open_out file in
    output_string oc rendered;
    close_out oc;
    Format.eprintf "wrote merged trace (%d shard%s) to %s@."
      (List.length files)
      (if List.length files = 1 then "" else "s")
      file)

let merge_cmd =
  let files_arg =
    let doc =
      "Shard statistics files written by sweep --stats-out (or, with \
       --traces, JSONL trace files written by sweep --trace FILE \
       --trace-format jsonl)."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES" ~doc)
  in
  let traces_arg =
    let doc =
      "Treat $(i,FILES) as per-shard JSONL traces and stitch them into \
       one Chrome trace (shard as process, domain as thread) instead of \
       merging statistics."
    in
    Arg.(value & flag & info [ "traces" ] ~doc)
  in
  let trace_out_arg =
    let doc = "With --traces: write the merged Chrome trace to $(docv) \
               (default: stdout)." in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run files stats_out traces trace_out =
    if traces then merge_traces files trace_out
    else begin
      let shards =
        List.map
          (fun f ->
            match Stats_io.of_file f with
            | Ok r -> r
            | Error msg ->
              Format.eprintf "%s: %s@." f msg;
              exit 1)
          files
      in
      match Stats_io.merge shards with
      | Error msg ->
        Format.eprintf "merge: %s@." msg;
        exit 1
      | Ok merged ->
        Format.printf "space %s: merged %d shard%s@." merged.Stats_io.space
          (List.length files)
          (if List.length files = 1 then "" else "s");
        Format.printf "%a" Engine.pp_stats (Stats_io.to_stats merged);
        (match stats_out with
        | None -> ()
        | Some file ->
          Stats_io.write_file file merged;
          Format.eprintf "wrote merged statistics to %s@." file)
    end
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Recombine the statistics of a sharded sweep (sweep --shard I/N \
          --stats-out) into the numbers an unsharded sweep would report; \
          with --stats-out, the merged file is byte-identical to the \
          unsharded one. With --traces, stitch per-shard JSONL traces \
          into one Chrome trace instead")
    Term.(const run $ files_arg $ stats_out_arg $ traces_arg $ trace_out_arg)

let report_cmd =
  let files_arg =
    let doc =
      "Statistics files written by sweep --metrics --stats-out; several \
       shard files are merged before reporting."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES" ~doc)
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Show the K hottest constraints.")
  in
  let run files top =
    let shards =
      List.map
        (fun f ->
          match Stats_io.of_file f with
          | Ok r -> r
          | Error msg ->
            Format.eprintf "%s: %s@." f msg;
            exit 1)
        files
    in
    let merged =
      match shards with
      | [ one ] -> one
      | several -> (
        match Stats_io.merge several with
        | Ok m -> m
        | Error msg ->
          Format.eprintf "merge: %s@." msg;
          exit 1)
    in
    let snap =
      match merged.Stats_io.metrics with
      | Some snap -> snap
      | None ->
        Format.eprintf
          "beast report: no \"metrics\" section in %s (sweep with \
           --metrics --stats-out)@."
          (String.concat ", " files);
        exit 1
    in
    Format.printf "space %s: %d survivors of %d points@."
      merged.Stats_io.space merged.Stats_io.survivors
      merged.Stats_io.loop_iterations;
    Report.write ~top Format.std_formatter snap;
    Format.pp_print_flush Format.std_formatter ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the metrics of one or more sweep statistics files \
          (percentile tables per constraint, loop-entry counts, \
          scheduler chunk skew); multiple shard files are merged into \
          exact fleet-level percentiles first")
    Term.(const run $ files_arg $ top_arg)

let explain_cmd =
  let files_arg =
    let doc =
      "Statistics files written by sweep --explain-out; several shard \
       files are merged (exactly, bucket for bucket) before rendering."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES" ~doc)
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Show the K largest dead outer-coordinate ranges.")
  in
  let run files top =
    let shards =
      List.map
        (fun f ->
          match Stats_io.of_file f with
          | Ok r -> r
          | Error msg ->
            Format.eprintf "%s: %s@." f msg;
            exit 1)
        files
    in
    let merged =
      match shards with
      | [ one ] -> one
      | several -> (
        match Stats_io.merge several with
        | Ok m -> m
        | Error msg ->
          Format.eprintf "merge: %s@." msg;
          exit 1)
    in
    match Explain.write ~top Format.std_formatter merged with
    | Ok () -> Format.pp_print_flush Format.std_formatter ()
    | Error msg ->
      Format.eprintf "beast explain: %s@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render the pruning provenance of an instrumented sweep (sweep \
          --explain-out): the exact constraint waterfall in evaluation \
          order, evaluation cost against selectivity with misplaced \
          constraints flagged, the largest dead outer-coordinate ranges, \
          and the per-depth survival funnel; multiple shard files are \
          merged exactly first")
    Term.(const run $ files_arg $ top_arg)

let export_cmd =
  let run space_name device max_dim max_threads =
    let device = resolve_device device max_dim max_threads in
    let sp = resolve_space space_name device in
    match Print.space_to_string sp with
    | Ok text -> print_string text
    | Error e ->
      Format.eprintf "cannot serialize: %a@." Print.pp_error e;
      exit 1
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Serialize a space to the textual notation (the inverse of \
          loading a .beast file); closure-backed spaces cannot be \
          serialized")
    Term.(const run $ space_arg $ device_arg $ max_dim_arg $ max_threads_arg)

(* ------------------------------------------------------------------ *)
(* Live introspection: beast top (heartbeat viewer), beast runs        *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let status_file_arg =
    let doc = "Heartbeat status file written by sweep --status $(docv)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let once_arg =
    let doc = "Print one snapshot and exit instead of following." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval_arg =
    let doc = "Seconds between redraws when following (default 1)." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let fmt_eta = function
    | None -> "-"
    | Some s when s < 0.0 -> "-"
    | Some s -> Printf.sprintf "%.0fs" s
  in
  let render ppf (v : Status.view) =
    let open Status in
    let lines = ref 0 in
    let line fmt =
      Format.kfprintf
        (fun ppf ->
          incr lines;
          Format.fprintf ppf "@.")
        ppf fmt
    in
    line "%s  %s%s  pid %d  %s"
      (match v.v_run_id with None -> "run -" | Some id -> "run " ^ id)
      (match v.v_space with None -> "?" | Some sp -> sp)
      (match v.v_shard with
      | None -> ""
      | Some (i, n) -> Printf.sprintf " shard %d/%d" i n)
      v.v_pid v.v_state;
    line "chunks %d/%d  points %s (%s/s)  survivors %s (%.2f%%)"
      v.v_chunks_done v.v_chunks_total
      (Units.si_int v.v_points)
      (Units.si_int (int_of_float v.v_points_per_s))
      (Units.si_int v.v_survivors)
      (100.0 *. v.v_survivor_rate);
    line "elapsed %.1fs  eta %s  checkpoint %s" v.v_elapsed_s
      (fmt_eta v.v_eta_s)
      (match v.v_checkpoint_age_s with
      | None -> "-"
      | Some age -> Printf.sprintf "%.1fs ago" age);
    List.iter
      (fun (dom, points, survivors) ->
        line "  dom %d: %s points, %s survivors" dom (Units.si_int points)
          (Units.si_int survivors))
      v.v_domains;
    !lines
  in
  let run file once interval =
    if interval <= 0.0 then begin
      Format.eprintf "beast top: --interval must be positive@.";
      exit 2
    end;
    let tty = Unix.isatty Unix.stdout in
    let read_view () = Status.of_file file in
    if once || not tty then begin
      (* One plain snapshot (or, when following off-tty, a snapshot
         line block per interval — greppable, no control codes). *)
      let rec loop first =
        match read_view () with
        | Error msg ->
          if first then begin
            Format.eprintf "beast top: %s: %s@." file msg;
            exit 1
          end
          else begin
            Unix.sleepf interval;
            loop false
          end
        | Ok v ->
          ignore (render Format.std_formatter v);
          Format.pp_print_flush Format.std_formatter ();
          if not (once || v.Status.v_state <> "running") then begin
            Unix.sleepf interval;
            loop false
          end
      in
      loop true
    end
    else begin
      (* Full-redraw follow mode: repaint in place with cursor-up, so
         the terminal shows one live panel instead of a scrolling log. *)
      let prev_lines = ref 0 in
      let rec loop first =
        (match read_view () with
        | Error msg ->
          if first then begin
            Format.eprintf "beast top: %s: %s (waiting)@." file msg;
            Format.pp_print_flush Format.err_formatter ()
          end
        | Ok v ->
          if !prev_lines > 0 then
            print_string (Printf.sprintf "\027[%dA" !prev_lines);
          let buf = Buffer.create 512 in
          let ppf = Format.formatter_of_buffer buf in
          let n = render ppf v in
          Format.pp_print_flush ppf ();
          (* Clear each repainted line before writing over it, so a
             shrinking field never leaves stale characters behind. *)
          String.split_on_char '\n' (Buffer.contents buf)
          |> List.iter (fun l ->
                 if l <> "" then print_string ("\027[2K" ^ l ^ "\n"));
          prev_lines := n;
          flush stdout;
          if v.Status.v_state <> "running" then raise Exit);
        Unix.sleepf interval;
        loop false
      in
      try loop true with Exit -> ()
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Follow the heartbeat status file of a running sweep (sweep \
          --status FILE): chunk progress, throughput, survivor rate, \
          pruning-aware ETA, checkpoint age and per-domain utilization. \
          Redraws in place on a tty; plain snapshots with --once or \
          when piped")
    Term.(const run $ status_file_arg $ once_arg $ interval_arg)

let runs_cmd =
  let target_arg =
    let doc =
      "Runs directory written by sweep --runs (default $(b,runs)), or a \
       single manifest file to inspect."
    in
    Arg.(value & pos 0 string "runs" & info [] ~docv:"DIR|FILE" ~doc)
  in
  let describe (m : Run_meta.t) =
    Format.printf "%-12s  %-14s  %-7s  %-10s  %-11s  %-4s  %s@." m.Run_meta.run_id
      m.Run_meta.space
      (match m.Run_meta.shard with
      | None -> "-"
      | Some (i, n) -> Printf.sprintf "%d/%d" i n)
      m.Run_meta.engine
      (Run_meta.status_name m.Run_meta.status)
      (match m.Run_meta.exit_code with
      | None -> "-"
      | Some c -> string_of_int c)
      (match m.Run_meta.wall_s with
      | None -> "-"
      | Some w -> Printf.sprintf "%.1fs" w)
  in
  let header () =
    Format.printf "%-12s  %-14s  %-7s  %-10s  %-11s  %-4s  %s@." "run" "space"
      "shard" "engine" "status" "exit" "wall"
  in
  let prune_arg =
    let doc =
      "Remove finished and unreadable manifests from the directory \
       (running manifests whose process is still alive are always \
       kept); restrict with --keep/--older-than, preview with \
       --dry-run."
    in
    Arg.(value & flag & info [ "prune" ] ~doc)
  in
  let keep_arg =
    let doc = "With --prune: keep the $(docv) most recently written manifests." in
    Arg.(value & opt (some int) None & info [ "keep" ] ~docv:"N" ~doc)
  in
  let older_than_arg =
    let doc =
      "With --prune: only remove manifests last written more than \
       $(docv) seconds ago."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "older-than" ] ~docv:"SECONDS" ~doc)
  in
  let dry_run_arg =
    let doc = "With --prune: print what would be removed, remove nothing." in
    Arg.(value & flag & info [ "dry-run" ] ~doc)
  in
  (* A "running" manifest may belong to a process that died without
     finalizing (SIGKILL, power loss); signal 0 probes liveness. EPERM
     means the pid exists under another user — treat it as alive. *)
  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true
  in
  let prune_dir dir ~keep ~older_than ~dry_run =
    let now = Unix.gettimeofday () in
    let entries =
      Run_meta.entries ~dir
      |> List.map (fun (file, r) ->
             let mtime =
               match Unix.stat file with
               | st -> st.Unix.st_mtime
               | exception Unix.Unix_error _ -> 0.0
             in
             (file, r, mtime))
      (* Newest first, so --keep N protects the N most recent. *)
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    let keep_n = Option.value keep ~default:0 in
    let victims =
      List.filteri
        (fun pos (_, r, mtime) ->
          pos >= keep_n
          && (match older_than with
             | Some s -> now -. mtime > s
             | None -> true)
          &&
          match r with
          | Error _ -> true (* unreadable: prune *)
          | Ok m ->
            not (m.Run_meta.status = Run_meta.Running && pid_alive m.Run_meta.pid))
        entries
    in
    List.iter
      (fun (file, r, _) ->
        let why =
          match r with
          | Error _ -> "unreadable"
          | Ok m -> Run_meta.status_name m.Run_meta.status
        in
        if dry_run then Format.printf "would remove %s (%s)@." file why
        else begin
          (try Sys.remove file with Sys_error _ -> ());
          Format.printf "removed %s (%s)@." file why
        end)
      victims;
    Format.printf "%s %d of %d manifest file%s in %s@."
      (if dry_run then "would prune" else "pruned")
      (List.length victims) (List.length entries)
      (if List.length entries = 1 then "" else "s")
      dir
  in
  let run target prune keep older_than dry_run =
    if (keep <> None || older_than <> None || dry_run) && not prune then begin
      Format.eprintf
        "beast runs: --keep, --older-than and --dry-run need --prune@.";
      exit 2
    end;
    (match keep with
    | Some n when n < 0 ->
      Format.eprintf "beast runs: --keep must be non-negative@.";
      exit 2
    | _ -> ());
    (match older_than with
    | Some s when s < 0.0 ->
      Format.eprintf "beast runs: --older-than must be non-negative@.";
      exit 2
    | _ -> ());
    if Sys.file_exists target && not (Sys.is_directory target) then begin
      if prune then begin
        Format.eprintf
          "beast runs: --prune needs a runs directory, not a file@.";
        exit 2
      end;
      match Run_meta.of_file target with
      | Error msg ->
        Format.eprintf "beast runs: %s: %s@." target msg;
        exit 1
      | Ok m ->
        header ();
        describe m
    end
    else if prune then prune_dir target ~keep ~older_than ~dry_run
    else begin
      let entries = Run_meta.entries ~dir:target in
      List.iter
        (fun (file, r) ->
          match r with
          | Error msg ->
            Format.eprintf "beast runs: skipping %s: %s@." file msg
          | Ok _ -> ())
        entries;
      match
        List.filter_map (fun (_, r) -> Result.to_option r) entries
      with
      | [] ->
        Format.eprintf "beast runs: no readable manifests in %s@." target;
        exit 1
      | manifests ->
        header ();
        List.iter describe manifests
    end
  in
  Cmd.v
    (Cmd.info "runs"
       ~doc:
         "List the run manifests in a runs directory (sweep --runs DIR): \
          run id, space, shard, engine, outcome, exit code and wall \
          time — or inspect a single manifest file. With --prune, \
          remove finished and unreadable manifests (never a live run's)")
    Term.(
      const run $ target_arg $ prune_arg $ keep_arg $ older_than_arg
      $ dry_run_arg)

(* ------------------------------------------------------------------ *)
(* Cross-run archive: beast archive / diff / trends                    *)
(* ------------------------------------------------------------------ *)

let archive_store_arg =
  let doc =
    "Archive directory (default: $(b,\\$BEAST_ARCHIVE) or \
     $(b,.beast/archive))."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let resolve_archive_dir = function
  | Some d -> d
  | None -> Archive.default_dir ()

let read_text file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> Ok text

let describe_record (r : Archive.record) =
  let m = r.Archive.meta in
  Printf.sprintf "%s %s%s%s" m.Archive.a_kind m.Archive.a_label
    (match m.Archive.a_engine with
    | None -> ""
    | Some e -> " · engine " ^ e)
    (if m.Archive.a_seq > 0 then
       Printf.sprintf " · %s (seq %d)" m.Archive.a_id m.Archive.a_seq
     else "")

let archive_ingest_cmd =
  let files_arg =
    let doc =
      "Sweep statistics files (sweep --stats-out/--explain-out) or \
       BENCH_*.json ablation results to append to the archive."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILES" ~doc)
  in
  let engine_override_arg =
    let doc = "Record $(docv) as the producing engine spec." in
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"NAME" ~doc)
  in
  let run_id_override_arg =
    let doc =
      "Record $(docv) as the run id when the payload carries none \
       (distinct run ids keep otherwise-identical payloads as separate \
       timeline points)."
    in
    Arg.(value & opt (some string) None & info [ "run-id" ] ~docv:"ID" ~doc)
  in
  let commit_override_arg =
    let doc =
      "Record $(docv) as the producing git commit (default: \
       $(b,\\$BEAST_COMMIT), then $(b,\\$GITHUB_SHA))."
    in
    Arg.(value & opt (some string) None & info [ "commit" ] ~docv:"SHA" ~doc)
  in
  let host_override_arg =
    let doc = "Record $(docv) as the producing host (default: this host)." in
    Arg.(value & opt (some string) None & info [ "host" ] ~docv:"NAME" ~doc)
  in
  let run files dir engine run_id commit host =
    let dir = resolve_archive_dir dir in
    let commit =
      match commit with Some _ as c -> c | None -> Archive.commit_from_env ()
    in
    let host =
      match host with Some _ as h -> h | None -> Some (Unix.gethostname ())
    in
    let failed = ref false in
    List.iter
      (fun file ->
        let outcome =
          match read_text file with
          | Error msg -> Error msg
          | Ok text -> (
            match Jsonx.parse text with
            | Error msg -> Error msg
            | Ok payload ->
              Archive.ingest ~dir ?engine ?run_id ?commit ?host payload)
        in
        match outcome with
        | Ok (r, true) ->
          Format.printf "archived %s as %s (seq %d)@." file
            r.Archive.meta.Archive.a_id r.Archive.meta.Archive.a_seq
        | Ok (r, false) ->
          Format.printf "%s already archived as %s@." file
            r.Archive.meta.Archive.a_id
        | Error msg ->
          Format.eprintf "beast archive: %s: %s@." file msg;
          failed := true)
      files;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Append run results to the archive: one content-addressed \
          record per file, deduplicated by content, tagged with engine, \
          commit and host")
    Term.(
      const run $ files_arg $ archive_store_arg $ engine_override_arg
      $ run_id_override_arg $ commit_override_arg $ host_override_arg)

let archive_list_cmd =
  let space_filter_arg =
    let doc = "Only records of this space (or bench name)." in
    Arg.(value & opt (some string) None & info [ "space" ] ~docv:"NAME" ~doc)
  in
  let engine_filter_arg =
    let doc = "Only records produced by this engine spec." in
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"NAME" ~doc)
  in
  let commit_filter_arg =
    let doc = "Only records produced at this git commit." in
    Arg.(value & opt (some string) None & info [ "commit" ] ~docv:"SHA" ~doc)
  in
  let run dir space engine commit =
    let dir = resolve_archive_dir dir in
    let records, errors = Archive.load ~dir in
    List.iter
      (fun (file, msg) ->
        Format.eprintf "beast archive: skipping %s: %s@." file msg)
      errors;
    let keep (r : Archive.record) =
      let m = r.Archive.meta in
      (match space with None -> true | Some s -> m.Archive.a_label = s)
      && (match engine with
         | None -> true
         | Some e -> m.Archive.a_engine = Some e)
      && match commit with
         | None -> true
         | Some c -> m.Archive.a_commit = Some c
    in
    match List.filter keep records with
    | [] ->
      Format.eprintf "beast archive: no matching records in %s@." dir;
      exit 1
    | records ->
      Format.printf "%-4s  %-12s  %-6s  %-18s  %-12s  %-12s  %-8s  %s@." "seq"
        "id" "kind" "label" "engine" "run" "commit" "host";
      List.iter
        (fun (r : Archive.record) ->
          let m = r.Archive.meta in
          let opt = Option.value ~default:"-" in
          let commit8 =
            match m.Archive.a_commit with
            | None -> "-"
            | Some c -> if String.length c > 8 then String.sub c 0 8 else c
          in
          Format.printf "%-4d  %-12s  %-6s  %-18s  %-12s  %-12s  %-8s  %s@."
            m.Archive.a_seq m.Archive.a_id m.Archive.a_kind m.Archive.a_label
            (opt m.Archive.a_engine) (opt m.Archive.a_run_id) commit8
            (opt m.Archive.a_host))
        records
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List archive records, filterable by space, engine and commit")
    Term.(
      const run $ archive_store_arg $ space_filter_arg $ engine_filter_arg
      $ commit_filter_arg)

let archive_show_cmd =
  let id_arg =
    let doc = "Record id (a unique prefix suffices)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run dir id =
    let dir = resolve_archive_dir dir in
    match Archive.find ~dir id with
    | Error msg ->
      Format.eprintf "beast archive: %s@." msg;
      exit 1
    | Ok r ->
      let m = r.Archive.meta in
      let opt = Option.value ~default:"-" in
      Format.printf "id      %s  (seq %d)@." m.Archive.a_id m.Archive.a_seq;
      Format.printf "kind    %s@." m.Archive.a_kind;
      Format.printf "label   %s@." m.Archive.a_label;
      Format.printf "engine  %s@." (opt m.Archive.a_engine);
      Format.printf "run     %s@." (opt m.Archive.a_run_id);
      Format.printf "commit  %s@." (opt m.Archive.a_commit);
      Format.printf "host    %s@." (opt m.Archive.a_host);
      Format.printf "series  (%d)@." (List.length r.Archive.series);
      List.iter
        (fun (name, value) ->
          Format.printf "  %-52s %14s@." name (Units.float_g value))
        r.Archive.series
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:
         "Show one archive record: identity metadata and every extracted \
          series value (a tampered record is rejected, not shown)")
    Term.(const run $ archive_store_arg $ id_arg)

let archive_cmd =
  Cmd.group
    (Cmd.info "archive"
       ~doc:
         "The cross-run performance archive: append-only, \
          content-addressed records of sweep statistics and bench \
          results under \\$BEAST_ARCHIVE (default .beast/archive)")
    [ archive_ingest_cmd; archive_list_cmd; archive_show_cmd ]

let flag_name = function
  | Archive.Same -> "same"
  | Archive.Changed -> "changed"
  | Archive.Regressed -> "regressed"
  | Archive.Only_a -> "only A"
  | Archive.Only_b -> "only B"

let diff_cmd =
  let a_arg =
    let doc =
      "Baseline run: a stats/bench/record file, or an archive id prefix."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc =
      "Candidate run: a stats/bench/record file, or an archive id prefix."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let threshold_arg =
    let doc =
      "Allowed growth of a timing series from A to B, in percent; \
       count series flag on any change."
    in
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let json_arg =
    let doc = "Emit the machine-readable verdict as JSON on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  (* An operand that names an existing file is loaded directly (an
     archive record file revalidates; anything else ingests transiently
     without touching the store); otherwise it resolves as an id prefix
     in the archive directory. *)
  let resolve dir spec =
    if Sys.file_exists spec && not (Sys.is_directory spec) then
      match read_text spec with
      | Error msg -> Error (Printf.sprintf "%s: %s" spec msg)
      | Ok text -> (
        match Jsonx.parse text with
        | Error msg -> Error (Printf.sprintf "%s: %s" spec msg)
        | Ok json ->
          if Jsonx.member_opt "beast_archive" json <> None then
            Result.map_error
              (fun msg -> Printf.sprintf "%s: %s" spec msg)
              (Archive.of_json text)
          else
            Result.map_error
              (fun msg -> Printf.sprintf "%s: %s" spec msg)
              (Archive.make ~seq:0 json))
    else Archive.find ~dir spec
  in
  let run a b dir threshold json =
    let dir = resolve_archive_dir dir in
    let get spec =
      match resolve dir spec with
      | Ok r -> r
      | Error msg ->
        Format.eprintf "beast diff: %s@." msg;
        exit 1
    in
    let ra = get a and rb = get b in
    let deltas = Archive.diff ~threshold_pct:threshold ra rb in
    let flagged = Archive.regressions deltas in
    if json then begin
      let num = function
        | None -> Jsonx.Null
        | Some v -> Jsonx.Float v
      in
      let delta_json (d : Archive.delta) =
        Jsonx.Obj
          [
            ("name", Jsonx.Str d.Archive.d_name);
            ( "class",
              Jsonx.Str (if d.Archive.d_timing then "timing" else "count") );
            ("a", num d.Archive.d_a);
            ("b", num d.Archive.d_b);
            ("flag", Jsonx.Str (flag_name d.Archive.d_flag));
          ]
      in
      print_string
        (Jsonx.pretty
           (Jsonx.Obj
              [
                ("beast_diff", Jsonx.Int 1);
                ("a", Jsonx.Str (describe_record ra));
                ("b", Jsonx.Str (describe_record rb));
                ("threshold_pct", Jsonx.Float threshold);
                ("compared", Jsonx.Int (List.length deltas));
                ("deltas", Jsonx.Arr (List.map delta_json deltas));
                ( "regressions",
                  Jsonx.Arr
                    (List.map
                       (fun (d : Archive.delta) -> Jsonx.Str d.Archive.d_name)
                       flagged) );
                ( "verdict",
                  Jsonx.Str (if flagged = [] then "ok" else "regression") );
              ]))
    end
    else begin
      Format.printf "A: %s@." (describe_record ra);
      Format.printf "B: %s@." (describe_record rb);
      Format.printf "%-52s %14s %14s %10s  %s@." "series" "A" "B" "delta"
        "flag";
      List.iter
        (fun (d : Archive.delta) ->
          let fmt = function
            | None -> "-"
            | Some v -> Units.float_g v
          in
          let rel =
            match (d.Archive.d_a, d.Archive.d_b) with
            | Some x, Some y when x <> 0.0 ->
              Units.signed_pct (100.0 *. (y -. x) /. x)
            | _ -> "n/a"
          in
          Format.printf "%-52s %14s %14s %10s  %s@." d.Archive.d_name
            (fmt d.Archive.d_a) (fmt d.Archive.d_b) rel
            (if d.Archive.d_flag = Archive.Same then ""
             else flag_name d.Archive.d_flag))
        deltas;
      Format.printf "compared %d series: %d identical, %d flagged@."
        (List.length deltas)
        (List.length deltas - List.length flagged)
        (List.length flagged);
      if flagged = [] then
        Format.printf "verdict: OK (no regressions at threshold %g%%)@."
          threshold
      else
        Format.printf "verdict: REGRESSION (%s)@."
          (String.concat ", "
             (List.map (fun (d : Archive.delta) -> d.Archive.d_name) flagged))
    end;
    if flagged <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two archived (or on-disk) run results series by \
          series: funnel counts and per-constraint fired counts flag on \
          any change, timing series (bench timings, histogram \
          percentiles) on growth beyond --threshold. Exit 0 when clean, \
          4 on regression")
    Term.(
      const run $ a_arg $ b_arg $ archive_store_arg $ threshold_arg $ json_arg)

let trends_cmd =
  let space_filter_arg =
    let doc = "Only timelines of this space (or bench name)." in
    Arg.(value & opt (some string) None & info [ "space" ] ~docv:"NAME" ~doc)
  in
  let engine_filter_arg =
    let doc = "Only timelines produced by this engine spec." in
    Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"NAME" ~doc)
  in
  let series_filter_arg =
    let doc = "Only series whose name starts with $(docv)." in
    Arg.(value & opt (some string) None & info [ "series" ] ~docv:"PREFIX" ~doc)
  in
  let gate_arg =
    let doc =
      "Exit 4 if any timing series' detected shift is an active upward \
       regression beyond --threshold — the trajectory-aware CI gate."
    in
    Arg.(value & flag & info [ "gate" ] ~doc)
  in
  let threshold_arg =
    let doc = "Allowed upward shift of a timing series, in percent." in
    Arg.(value & opt float 25.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let run dir space engine series gate threshold =
    let dir = resolve_archive_dir dir in
    let records, errors = Archive.load ~dir in
    List.iter
      (fun (file, msg) ->
        Format.eprintf "beast trends: skipping %s: %s@." file msg)
      errors;
    let records =
      List.filter
        (fun (r : Archive.record) ->
          let m = r.Archive.meta in
          (match space with None -> true | Some s -> m.Archive.a_label = s)
          && match engine with
             | None -> true
             | Some e -> m.Archive.a_engine = Some e)
        records
    in
    if records = [] then begin
      Format.eprintf
        "beast trends: no archive records in %s (archive runs with sweep \
         --archive or beast archive ingest)@."
        dir;
      exit 1
    end;
    let groups = Archive.trends ?series_prefix:series records in
    List.iter
      (fun (g : Archive.group) ->
        Format.printf "%s · %s%s  (%d record%s)@." g.Archive.g_label
          g.Archive.g_kind
          (match g.Archive.g_engine with
          | None -> ""
          | Some e -> " · engine " ^ e)
          g.Archive.g_records
          (if g.Archive.g_records = 1 then "" else "s");
        Format.printf "  %-46s %3s  %-14s %12s %10s %12s  %s@." "series" "n"
          "trend" "median" "mad" "last" "shift";
        List.iter
          (fun (t : Archive.trend) ->
            let values =
              Array.of_list
                (List.map (fun (p : Archive.point) -> p.Archive.p_value)
                   t.Archive.t_points)
            in
            let n = Array.length values in
            let window =
              if n <= 14 then values else Array.sub values (n - 14) 14
            in
            let shift =
              match t.Archive.t_shift with
              | None -> "-"
              | Some s ->
                let p = List.nth t.Archive.t_points s.Archive.c_index in
                Printf.sprintf "%s -> %s @seq %d%s"
                  (Units.float_g s.Archive.c_before)
                  (Units.float_g s.Archive.c_after)
                  p.Archive.p_seq
                  (match p.Archive.p_commit with
                  | None -> ""
                  | Some c ->
                    Printf.sprintf " (commit %s)"
                      (if String.length c > 8 then String.sub c 0 8 else c))
            in
            Format.printf "  %-46s %3d  %-14s %12s %10s %12s  %s@."
              t.Archive.t_name n
              (Report.sparkline window)
              (Units.float_g t.Archive.t_median)
              (Units.float_g t.Archive.t_mad)
              (if n = 0 then "-" else Units.float_g values.(n - 1))
              shift)
          g.Archive.g_trends;
        Format.printf "@.")
      groups;
    if gate then begin
      (* The gate only fires on timing series whose shift is still the
         current regime: the change-point grew past the threshold AND
         the latest point is still above it. A regression that was since
         fixed keeps its historical shift in the table but stops failing
         CI. Count drift is the deterministic baseline gate's job. *)
      let failures =
        List.concat_map
          (fun (g : Archive.group) ->
            List.filter_map
              (fun (t : Archive.trend) ->
                match t.Archive.t_shift with
                | Some s when t.Archive.t_timing ->
                  let limit =
                    s.Archive.c_before *. (1.0 +. (threshold /. 100.0))
                  in
                  let last =
                    match List.rev t.Archive.t_points with
                    | p :: _ -> p.Archive.p_value
                    | [] -> 0.0
                  in
                  if s.Archive.c_after > limit && last > limit then
                    Some
                      (Printf.sprintf "%s %s: %s -> %s (last %s)"
                         g.Archive.g_label t.Archive.t_name
                         (Units.float_g s.Archive.c_before)
                         (Units.float_g s.Archive.c_after)
                         (Units.float_g last))
                  else None
                | _ -> None)
              g.Archive.g_trends)
          groups
      in
      if failures = [] then
        Format.printf
          "trends gate: trajectory clean (threshold %g%%, %d record%s)@."
          threshold (List.length records)
          (if List.length records = 1 then "" else "s")
      else begin
        List.iter
          (fun f -> Format.eprintf "trends gate: regression: %s@." f)
          failures;
        exit 4
      end
    end
  in
  Cmd.v
    (Cmd.info "trends"
       ~doc:
         "Render the archived timeline of every series as a sparkline \
          table with robust (median/MAD) change-point detection, \
          flagging the first record — and commit — where a series \
          shifted; with --gate, exit 4 when a timing series' active \
          regime is an upward regression beyond --threshold")
    Term.(
      const run $ archive_store_arg $ space_filter_arg $ engine_filter_arg
      $ series_filter_arg $ gate_arg $ threshold_arg)

(* ------------------------------------------------------------------ *)
(* engines                                                             *)
(* ------------------------------------------------------------------ *)

let engines_cmd =
  (* Generated from the registry's catalog, so this listing (and the
     --engine help text above) can never drift from what [find]
     accepts. *)
  let run () =
    List.iter
      (fun e ->
        let caps =
          List.filter_map
            (fun (flag, label) -> if flag then Some label else None)
            [
              (e.Engine_registry.e_propagate_default, "propagate");
              (e.Engine_registry.e_opaque, "opaque");
              (e.Engine_registry.e_resumable, "resumable");
            ]
        in
        Format.printf "%-18s  [%s]  %s@." e.Engine_registry.e_spec
          (String.concat "," caps)
          e.Engine_registry.e_descr)
      Engine_registry.catalog
  in
  Cmd.v
    (Cmd.info "engines"
       ~doc:
         "List the evaluation engines accepted by --engine, with their \
          parameters and one-line descriptions (generated from the engine \
          registry)")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "beast" ~version:"1.0.0"
       ~doc:
         "Search space generation and pruning for autotuners (IPDPSW'16 \
          reproduction)")
    [ sweep_cmd; enumerate_cmd; count_cmd; sample_cmd; dot_cmd; codegen_cmd;
      tune_cmd; occupancy_cmd; funnel_cmd; search_cmd; merge_cmd; report_cmd;
      explain_cmd; export_cmd; top_cmd; runs_cmd; archive_cmd; diff_cmd;
      trends_cmd; engines_cmd ]

let () = exit (Cmd.eval main)
