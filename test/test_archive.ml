(* The cross-run performance archive: content-addressed ingest with
   dedupe, tamper rejection on read-back, series-wise diff with the
   timing/count split, and median/MAD change-point detection — the
   machinery behind [beast archive], [beast diff] and
   [beast trends]. *)

open Beast_obs

let temp_dir () =
  let dir = Filename.temp_file "beast_archive" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let parse_exn what text =
  match Jsonx.parse text with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* A minimal stats payload, shaped like Stats_io.to_json output. *)
let stats_payload ?run_id ?(survivors = 100) ?(fired = 7) () =
  let run_id_field =
    match run_id with
    | None -> ""
    | Some id -> Printf.sprintf "  \"run_id\": \"%s\",\n" id
  in
  parse_exn "stats payload"
    (Printf.sprintf
       "{\n\
       \  \"space\": \"triangle\",\n\
        %s\
       \  \"shard\": { \"index\": 0, \"of\": 1 },\n\
       \  \"survivors\": %d,\n\
       \  \"loop_iterations\": 5000,\n\
       \  \"constraints\": [\n\
       \    { \"name\": \"diag\", \"class\": \"hard\", \"depth0\": false, \
        \"fired\": %d }\n\
       \  ]\n\
        }\n"
       run_id_field survivors fired)

let bench_payload ?(elapsed = 1.0) ?(survivors = 100) () =
  parse_exn "bench payload"
    (Printf.sprintf
       "{ \"bench\": \"synthetic\", \"elapsed_s\": %g, \"survivors\": %d }"
       elapsed survivors)

let ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* ------------------------------------------------------------------ *)
(* Ingest                                                              *)
(* ------------------------------------------------------------------ *)

let test_ingest_round_trip () =
  with_dir (fun dir ->
      let r, fresh =
        ok "ingest"
          (Archive.ingest ~dir ~engine:"staged" ~commit:"deadbeef"
             ~host:"testhost"
             (stats_payload ~run_id:"run-1" ()))
      in
      Alcotest.(check bool) "fresh" true fresh;
      Alcotest.(check int) "seq" 1 r.Archive.meta.Archive.a_seq;
      Alcotest.(check string) "kind" "stats" r.Archive.meta.Archive.a_kind;
      Alcotest.(check string) "label" "triangle" r.Archive.meta.Archive.a_label;
      Alcotest.(check (option string))
        "run id from payload" (Some "run-1") r.Archive.meta.Archive.a_run_id;
      let file = Filename.concat dir (r.Archive.meta.Archive.a_id ^ ".json") in
      Alcotest.(check bool) "record file exists" true (Sys.file_exists file);
      (* Read-back revalidates and reproduces the exact record, and
         re-serializing it reproduces the file bytes (the writer is a
         fixed point of the parser). *)
      let text = In_channel.with_open_bin file In_channel.input_all in
      let r' = ok "of_file" (Archive.of_file file) in
      Alcotest.(check string)
        "byte round trip" text (Archive.to_json r');
      Alcotest.(check bool) "records equal" true (r = r');
      (* Series extraction covers the funnel and the constraint. *)
      let value name =
        match List.assoc_opt name r.Archive.series with
        | Some v -> v
        | None -> Alcotest.failf "series %s missing" name
      in
      Alcotest.(check (float 0.0)) "survivors" 100.0 (value "survivors");
      Alcotest.(check (float 0.0)) "fired" 7.0 (value "constraint/diag/fired"))

let test_ingest_dedupes_and_sequences () =
  with_dir (fun dir ->
      let r1, fresh1 =
        ok "first" (Archive.ingest ~dir (stats_payload ~run_id:"a" ()))
      in
      let r2, fresh2 =
        ok "same again" (Archive.ingest ~dir (stats_payload ~run_id:"a" ()))
      in
      let r3, fresh3 =
        ok "different run" (Archive.ingest ~dir (stats_payload ~run_id:"b" ()))
      in
      Alcotest.(check bool) "first is fresh" true fresh1;
      Alcotest.(check bool) "identical content dedupes" false fresh2;
      Alcotest.(check string)
        "dedupe returns the stored record" r1.Archive.meta.Archive.a_id
        r2.Archive.meta.Archive.a_id;
      Alcotest.(check bool) "distinct run id is fresh" true fresh3;
      Alcotest.(check int) "sequence advances" 2 r3.Archive.meta.Archive.a_seq;
      let records, errors = Archive.load ~dir in
      Alcotest.(check int) "two records" 2 (List.length records);
      Alcotest.(check int) "no errors" 0 (List.length errors))

let test_corrupt_records_rejected () =
  with_dir (fun dir ->
      let r, _ = ok "ingest" (Archive.ingest ~dir (bench_payload ())) in
      let file = Filename.concat dir (r.Archive.meta.Archive.a_id ^ ".json") in
      let text = In_channel.with_open_bin file In_channel.input_all in
      let rejects what text' =
        match Archive.of_json text' with
        | Ok _ -> Alcotest.failf "%s was accepted" what
        | Error _ -> ()
      in
      rejects "truncated" (String.sub text 0 (String.length text / 2));
      rejects "not an archive record" "{ \"bench\": \"x\", \"elapsed_s\": 1 }";
      (* Tampering with a payload value breaks the content id. *)
      let tampered =
        let sub = "\"elapsed_s\": 1" and by = "\"elapsed_s\": 9" in
        let n = String.length text and m = String.length sub in
        let rec splice i =
          if i + m > n then text
          else if String.sub text i m = sub then
            String.sub text 0 i ^ by ^ String.sub text (i + m) (n - i - m)
          else splice (i + 1)
        in
        splice 0
      in
      Alcotest.(check bool)
        "tamper changed the text" true (tampered <> text);
      rejects "tampered payload" tampered;
      (* And load surfaces the broken file as an error, not a record. *)
      let out = open_out_bin file in
      output_string out tampered;
      close_out out;
      let records, errors = Archive.load ~dir in
      Alcotest.(check int) "no records" 0 (List.length records);
      Alcotest.(check int) "one error" 1 (List.length errors))

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let test_diff_identical_is_clean () =
  let r1 = ok "make a" (Archive.make ~seq:1 (stats_payload ())) in
  let r2 = ok "make b" (Archive.make ~seq:2 (stats_payload ())) in
  let deltas = Archive.diff r1 r2 in
  Alcotest.(check bool) "compared something" true (deltas <> []);
  Alcotest.(check int)
    "zero regressions" 0
    (List.length (Archive.regressions deltas))

let test_diff_flags_slowdown_by_name () =
  let fast = ok "fast" (Archive.make ~seq:1 (bench_payload ~elapsed:1.0 ())) in
  let slow = ok "slow" (Archive.make ~seq:2 (bench_payload ~elapsed:2.0 ())) in
  (match Archive.regressions (Archive.diff fast slow) with
  | [ d ] ->
    Alcotest.(check string) "named series" "elapsed_s" d.Archive.d_name;
    Alcotest.(check bool) "timing class" true d.Archive.d_timing;
    Alcotest.(check bool)
      "regressed flag" true
      (d.Archive.d_flag = Archive.Regressed)
  | ds -> Alcotest.failf "expected exactly the slowdown, got %d" (List.length ds));
  (* Within the threshold the same pair is clean... *)
  let slight = ok "slight" (Archive.make ~seq:2 (bench_payload ~elapsed:1.05 ())) in
  Alcotest.(check int)
    "5% growth under 10% threshold" 0
    (List.length (Archive.regressions (Archive.diff fast slight)));
  (* ...and a count change of any size always flags. *)
  let drifted =
    ok "drifted" (Archive.make ~seq:2 (bench_payload ~survivors:101 ()))
  in
  match Archive.regressions (Archive.diff fast drifted) with
  | [ d ] ->
    Alcotest.(check string) "count series" "survivors" d.Archive.d_name;
    Alcotest.(check bool)
      "changed flag" true
      (d.Archive.d_flag = Archive.Changed)
  | ds -> Alcotest.failf "expected exactly the drift, got %d" (List.length ds)

let test_diff_one_sided_series_flag () =
  let a = ok "a" (Archive.make ~seq:1 (bench_payload ())) in
  let b =
    ok "b"
      (Archive.make ~seq:2
         (parse_exn "extra"
            "{ \"bench\": \"synthetic\", \"elapsed_s\": 1, \"survivors\": \
             100, \"extra_metric\": 3 }"))
  in
  match Archive.regressions (Archive.diff a b) with
  | [ d ] ->
    Alcotest.(check string) "the extra series" "extra_metric" d.Archive.d_name;
    Alcotest.(check bool)
      "only-b flag" true
      (d.Archive.d_flag = Archive.Only_b)
  | ds -> Alcotest.failf "expected one one-sided delta, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Change-point detection and trends                                   *)
(* ------------------------------------------------------------------ *)

let test_change_point_on_step () =
  (match
     Archive.change_point [| 10.; 10.; 10.; 10.; 20.; 20.; 20.; 20. |]
   with
  | None -> Alcotest.fail "clean step not detected"
  | Some s ->
    Alcotest.(check int) "split index" 4 s.Archive.c_index;
    Alcotest.(check (float 0.0)) "before" 10.0 s.Archive.c_before;
    Alcotest.(check (float 0.0)) "after" 20.0 s.Archive.c_after);
  (* No-signal series must stay quiet. *)
  Alcotest.(check bool)
    "constant" true
    (Archive.change_point [| 5.; 5.; 5.; 5.; 5. |] = None);
  Alcotest.(check bool)
    "alternating noise" true
    (Archive.change_point [| 1.; 2.; 1.; 2.; 1.; 2.; 1.; 2. |] = None);
  Alcotest.(check bool)
    "too short" true
    (Archive.change_point [| 1.; 100.; 100. |] = None)

let test_trends_groups_and_flags_shift () =
  with_dir (fun dir ->
      (* Four fast points then four slow ones, as distinct bench runs
         (content differs through elapsed_s). *)
      List.iter
        (fun e ->
          ignore (ok "ingest" (Archive.ingest ~dir (bench_payload ~elapsed:e ()))))
        [ 1.0; 1.01; 0.99; 1.02; 2.0; 2.01; 1.99; 2.02 ];
      let records, errors = Archive.load ~dir in
      Alcotest.(check int) "no load errors" 0 (List.length errors);
      Alcotest.(check int) "eight records" 8 (List.length records);
      match Archive.trends records with
      | [ g ] -> (
        Alcotest.(check string) "group label" "synthetic" g.Archive.g_label;
        Alcotest.(check int) "group size" 8 g.Archive.g_records;
        let t =
          List.find
            (fun (t : Archive.trend) -> t.Archive.t_name = "elapsed_s")
            g.Archive.g_trends
        in
        Alcotest.(check int) "eight points" 8 (List.length t.Archive.t_points);
        match t.Archive.t_shift with
        | None -> Alcotest.fail "injected slowdown not flagged"
        | Some s ->
          Alcotest.(check int) "shift at the fifth point" 4 s.Archive.c_index;
          Alcotest.(check bool) "regime grew" true
            (s.Archive.c_after > s.Archive.c_before);
          (* The constant survivors series must not shift. *)
          let surv =
            List.find
              (fun (t : Archive.trend) -> t.Archive.t_name = "survivors")
              g.Archive.g_trends
          in
          Alcotest.(check bool)
            "constant series quiet" true
            (surv.Archive.t_shift = None))
      | gs -> Alcotest.failf "expected one group, got %d" (List.length gs))

let () =
  Alcotest.run "archive"
    [
      ( "ingest",
        [
          Alcotest.test_case "round trip" `Quick test_ingest_round_trip;
          Alcotest.test_case "dedupe and sequencing" `Quick
            test_ingest_dedupes_and_sequences;
          Alcotest.test_case "corrupt records rejected" `Quick
            test_corrupt_records_rejected;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical runs are clean" `Quick
            test_diff_identical_is_clean;
          Alcotest.test_case "slowdown flagged by name" `Quick
            test_diff_flags_slowdown_by_name;
          Alcotest.test_case "one-sided series flagged" `Quick
            test_diff_one_sided_series_flag;
        ] );
      ( "trends",
        [
          Alcotest.test_case "change point on a step" `Quick
            test_change_point_on_step;
          Alcotest.test_case "grouping and shift detection" `Quick
            test_trends_groups_and_flags_shift;
        ] );
    ]
