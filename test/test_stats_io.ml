open Beast_core

let result_testable =
  Alcotest.testable
    (fun ppf t -> Format.pp_print_string ppf (Stats_io.to_json t))
    ( = )

let full_result sp =
  let plan = Plan.make_exn sp in
  (plan, Stats_io.of_stats ~plan (Engine_staged.run plan))

let shard_results plan ~of_ =
  List.init of_ (fun index ->
      let stats = Engine_staged.run (Plan.chunk_outer plan ~index ~of_) in
      Stats_io.of_stats ~plan
        ~shard:{ Stats_io.shard_index = index; shard_of = of_ }
        stats)

let test_json_roundtrip () =
  let _, r = full_result (Support.mixed_space ()) in
  match Stats_io.of_json (Stats_io.to_json r) with
  | Error msg -> Alcotest.fail msg
  | Ok r' -> Alcotest.check result_testable "roundtrip" r r'

let test_json_roundtrip_escapes () =
  let r =
    {
      Stats_io.space = "we\"ird\\name\n\ttab";
      run_id = None;
      shard = { Stats_io.shard_index = 2; shard_of = 5 };
      survivors = 0;
      loop_iterations = 0;
      constraints =
        [
          {
            Stats_io.cr_name = "a \"quoted\" one";
            cr_class = Space.Correctness;
            cr_depth0 = true;
            cr_fired = 7;
          };
        ];
      metrics = None;
      provenance = None;
    }
  in
  match Stats_io.of_json (Stats_io.to_json r) with
  | Error msg -> Alcotest.fail msg
  | Ok r' -> Alcotest.check result_testable "escaped roundtrip" r r'

let test_merge_reproduces_unsharded_bytes () =
  (* The tentpole guarantee: merging any N-way split writes the same
     bytes as the unsharded sweep. *)
  List.iter
    (fun sp ->
      let plan, full = full_result sp in
      List.iter
        (fun of_ ->
          match Stats_io.merge (shard_results plan ~of_) with
          | Error msg -> Alcotest.fail msg
          | Ok merged ->
            Alcotest.(check string)
              (Printf.sprintf "%s, %d-way" (Space.name sp) of_)
              (Stats_io.to_json full) (Stats_io.to_json merged))
        [ 1; 2; 3; 7 ])
    [ Support.triangle_space (); Support.mixed_space () ]

let test_merge_order_independent () =
  let plan, full = full_result (Support.triangle_space ()) in
  let shards = shard_results plan ~of_:3 in
  List.iter
    (fun shards ->
      match Stats_io.merge shards with
      | Error msg -> Alcotest.fail msg
      | Ok merged -> Alcotest.check result_testable "permuted" full merged)
    [ List.rev shards; (match shards with [ a; b; c ] -> [ b; c; a ] | l -> l) ]

let test_merge_depth0_dedup () =
  (* A firing depth-0 constraint is counted once per shard but reported
     once after the merge. *)
  let sp = Support.triangle_space () in
  let open Expr.Infix in
  Space.constrain sp ~cls:Space.Hard "d0_always" (Expr.int 8 <: Expr.int 9);
  let plan, full = full_result sp in
  let fired r name =
    (List.find (fun c -> c.Stats_io.cr_name = name) r.Stats_io.constraints)
      .Stats_io.cr_fired
  in
  Alcotest.(check int) "sequential count" 1 (fired full "d0_always");
  match Stats_io.merge (shard_results plan ~of_:4) with
  | Error msg -> Alcotest.fail msg
  | Ok merged ->
    Alcotest.(check int) "merged count" 1 (fired merged "d0_always");
    Alcotest.check result_testable "whole record" full merged

let test_merge_rejects_bad_sets () =
  let plan, _ = full_result (Support.triangle_space ()) in
  let shards = shard_results plan ~of_:3 in
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_error (Stats_io.merge []));
  Alcotest.(check bool) "missing shard" true
    (is_error (Stats_io.merge (List.tl shards)));
  Alcotest.(check bool) "duplicate shard" true
    (is_error (Stats_io.merge (List.hd shards :: shards)));
  let other_plan, _ = full_result (Support.mixed_space ()) in
  let foreign = shard_results other_plan ~of_:3 in
  Alcotest.(check bool) "mixed spaces" true
    (is_error (Stats_io.merge (List.hd foreign :: List.tl shards)));
  let resharded =
    List.map
      (fun s -> { s with Stats_io.shard = { s.Stats_io.shard with Stats_io.shard_of = 4 } })
      shards
  in
  Alcotest.(check bool) "mixed arity" true
    (is_error (Stats_io.merge (List.hd resharded :: List.tl shards)))

let test_of_json_rejects_garbage () =
  let is_error = function Error _ -> true | Ok _ -> false in
  List.iter
    (fun text ->
      Alcotest.(check bool) ("reject " ^ text) true
        (is_error (Stats_io.of_json text)))
    [
      "";
      "{";
      "[1, 2]";
      "{\"space\": \"x\"}";
      "{\"space\": 3, \"shard\": {\"index\": 0, \"of\": 1}, \"survivors\": 0, \
       \"loop_iterations\": 0, \"constraints\": []}";
    ]

let test_file_roundtrip () =
  let _, r = full_result (Support.triangle_space ()) in
  let path = Filename.temp_file "beast_stats" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Stats_io.write_file path r;
      match Stats_io.of_file path with
      | Error msg -> Alcotest.fail msg
      | Ok r' -> Alcotest.check result_testable "file roundtrip" r r')

let () =
  Alcotest.run "stats_io"
    [
      ( "encoding",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaped strings" `Quick
            test_json_roundtrip_escapes;
          Alcotest.test_case "garbage rejected" `Quick
            test_of_json_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        ] );
      ( "merging",
        [
          Alcotest.test_case "byte-identical to unsharded" `Quick
            test_merge_reproduces_unsharded_bytes;
          Alcotest.test_case "order independent" `Quick
            test_merge_order_independent;
          Alcotest.test_case "depth-0 dedup" `Quick test_merge_depth0_dedup;
          Alcotest.test_case "bad shard sets rejected" `Quick
            test_merge_rejects_bad_sets;
        ] );
    ]
