(* Live-introspection layer: run manifests, the heartbeat status file,
   the flight recorder and the fatal-fault crash path.

   The load-bearing properties: a status file is *always* a complete
   parseable document no matter when a reader samples it (atomic
   temp-then-rename under concurrent ticks), turning the heartbeat on
   never changes the sweep's statistics (byte-identical --stats-out),
   and a crashed run leaves a deterministic flight dump behind. *)

open Beast_core
open Beast_obs

let triangle_plan () = Plan.make_exn (Support.triangle_space ())

let tmp_path suffix = Filename.temp_file "beast_status" suffix

let rm path = try Sys.remove path with Sys_error _ -> ()

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect ~finally:(fun () -> rm path) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Run manifests                                                       *)
(* ------------------------------------------------------------------ *)

let with_tmp_dir f =
  let dir = Filename.temp_file "beast_runs" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> rm (Filename.concat dir f)) (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let test_run_meta_round_trip () =
  let m =
    Run_meta.make ~run_id:"deadbeef0123" ~space:"triangle" ~shard:(1, 3)
      ~engine:"parallel" ()
  in
  match Run_meta.of_json (Run_meta.to_json m) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok m' ->
    Alcotest.(check string) "byte-stable re-encoding" (Run_meta.to_json m)
      (Run_meta.to_json m');
    Alcotest.(check string) "status" "running"
      (Run_meta.status_name m'.Run_meta.status);
    Alcotest.(check bool) "no exit code while running" true
      (m'.Run_meta.exit_code = None)

let test_run_meta_save_finalize_list () =
  with_tmp_dir (fun dir ->
      let a =
        Run_meta.make ~run_id:"aaaaaaaaaaaa" ~space:"triangle"
          ~engine:"staged" ()
      in
      let b =
        Run_meta.make ~run_id:"bbbbbbbbbbbb" ~space:"triangle" ~shard:(0, 2)
          ~engine:"parallel" ()
      in
      Run_meta.save ~dir a;
      Run_meta.save ~dir b;
      let b' =
        Run_meta.finalize ~dir b ~status:Run_meta.Interrupted ~exit_code:3
          ~wall_s:1.5
      in
      Alcotest.(check bool) "finalize records the exit code" true
        (b'.Run_meta.exit_code = Some 3);
      match Run_meta.list ~dir with
      | [ x; y ] ->
        Alcotest.(check string) "sorted by run id" "aaaaaaaaaaaa"
          x.Run_meta.run_id;
        Alcotest.(check string) "finalized status read back" "interrupted"
          (Run_meta.status_name y.Run_meta.status);
        Alcotest.(check bool) "wall time read back" true
          (y.Run_meta.wall_s = Some 1.5)
      | l -> Alcotest.failf "expected 2 manifests, got %d" (List.length l))

let test_run_meta_list_skips_garbage () =
  with_tmp_dir (fun dir ->
      let m =
        Run_meta.make ~run_id:"cccccccccccc" ~space:"triangle" ~engine:"staged"
          ()
      in
      Run_meta.save ~dir m;
      let oc = open_out (Filename.concat dir "junk.json") in
      output_string oc "{ not json";
      close_out oc;
      Alcotest.(check int) "only the parseable manifest" 1
        (List.length (Run_meta.list ~dir));
      Alcotest.(check int) "absent directory is empty" 0
        (List.length (Run_meta.list ~dir:(dir ^ ".does-not-exist"))))

let test_fresh_id_shape () =
  let a = Run_meta.fresh_id ~seed:"s" () in
  let b = Run_meta.fresh_id ~seed:"s" () in
  Alcotest.(check int) "12 hex chars" 12 (String.length a);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    a;
  Alcotest.(check bool) "nonce makes same-seed ids distinct" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Heartbeat status file                                               *)
(* ------------------------------------------------------------------ *)

let test_status_snapshot_fields () =
  with_tmp ".status" (fun path ->
      let t =
        Status.create ~interval_s:0.0 ~run_id:"deadbeef0123" ~space:"triangle"
          ~shard:(1, 3) ~path ()
      in
      Status.chunk_tick t ~completed:0 ~total:8;
      Status.tick t ~dom:0 ~points:100 ~survivors:10 ~frac:0.5;
      Status.tick t ~dom:1 ~points:50 ~survivors:5 ~frac:0.25;
      Status.chunk_tick t ~completed:2 ~total:8;
      match Status.of_file path with
      | Error msg -> Alcotest.failf "cannot read status: %s" msg
      | Ok v ->
        Alcotest.(check string) "state" "running" v.Status.v_state;
        Alcotest.(check bool) "run id" true
          (v.Status.v_run_id = Some "deadbeef0123");
        Alcotest.(check bool) "shard" true (v.Status.v_shard = Some (1, 3));
        Alcotest.(check int) "chunks done" 2 v.Status.v_chunks_done;
        Alcotest.(check int) "chunks total" 8 v.Status.v_chunks_total;
        Alcotest.(check int) "points pooled" 150 v.Status.v_points;
        Alcotest.(check int) "survivors pooled" 15 v.Status.v_survivors;
        Alcotest.(check (list (triple int int int))) "per-domain rows sorted"
          [ (0, 100, 10); (1, 50, 5) ]
          v.Status.v_domains;
        Alcotest.(check bool) "no stray tmp file" false
          (Sys.file_exists
             (Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()))))

let test_status_always_parseable_concurrently () =
  (* Writers hammer the file with interval 0 (a rewrite per tick) while
     the main domain samples it: every successful read must be a
     complete, schema-valid document — the atomicity claim. *)
  with_tmp ".status" (fun path ->
      let t = Status.create ~interval_s:0.0 ~space:"triangle" ~path () in
      Status.chunk_tick t ~completed:0 ~total:64;
      let writers =
        List.init 2 (fun w ->
            Domain.spawn (fun () ->
                for i = 1 to 500 do
                  Status.tick t ~dom:w ~points:(i * 10) ~survivors:i
                    ~frac:(float_of_int i /. 500.0)
                done))
      in
      let reads = ref 0 in
      while !reads < 200 do
        match Status.of_file path with
        | Ok v ->
          incr reads;
          Alcotest.(check string) "state while running" "running"
            v.Status.v_state;
          Alcotest.(check int) "chunk total stable" 64 v.Status.v_chunks_total
        | Error msg -> Alcotest.failf "torn or invalid snapshot: %s" msg
      done;
      List.iter Domain.join writers;
      Status.finalize t ~state:"completed";
      match Status.of_file path with
      | Error msg -> Alcotest.failf "final snapshot unreadable: %s" msg
      | Ok v ->
        Alcotest.(check string) "final state" "completed" v.Status.v_state;
        Alcotest.(check int) "all ticks pooled" (2 * 500 * 10)
          v.Status.v_points)

let test_status_finalize_idempotent () =
  with_tmp ".status" (fun path ->
      let t = Status.create ~interval_s:0.0 ~space:"triangle" ~path () in
      Status.tick t ~dom:0 ~points:10 ~survivors:1 ~frac:0.1;
      Status.finalize t ~state:"interrupted";
      (* Late ticks and a second finalize must not resurrect the run. *)
      Status.tick t ~dom:0 ~points:999 ~survivors:99 ~frac:0.9;
      Status.finalize t ~state:"completed";
      match Status.of_file path with
      | Error msg -> Alcotest.failf "cannot read status: %s" msg
      | Ok v ->
        Alcotest.(check string) "first finalize wins" "interrupted"
          v.Status.v_state;
        Alcotest.(check int) "late tick ignored" 10 v.Status.v_points)

let test_status_negative_interval_rejected () =
  Alcotest.check_raises "negative interval"
    (Invalid_argument "Status.create: interval must be non-negative") (fun () ->
      ignore (Status.create ~interval_s:(-1.0) ~path:"unused" ()))

(* ------------------------------------------------------------------ *)
(* Stats byte-identity: the heartbeat must not perturb the sweep       *)
(* ------------------------------------------------------------------ *)

let stats_json ?shard plan stats =
  Stats_io.to_json (Stats_io.of_stats ~plan ?shard stats)

let run_with_introspection ~plan ~runner =
  with_tmp ".status" (fun status_path ->
      with_tmp ".flight" (fun flight_path ->
          let cfg =
            {
              Run_config.default with
              Run_config.status = Some status_path;
              status_every_s = 0.0;
              flight = Some flight_path;
            }
          in
          Run_config.with_instrumentation ~run_id:"feedc0ffee12"
            ~space:plan.Plan.space_name cfg (fun () -> runner ())))

let test_stats_identical_with_status_unsharded () =
  let plan = triangle_plan () in
  let plain = Engine_staged.run plan in
  let instrumented = run_with_introspection ~plan ~runner:(fun () ->
      Engine_staged.run plan)
  in
  Alcotest.(check string) "staged stats byte-identical"
    (stats_json plan plain)
    (stats_json plan instrumented)

let test_stats_identical_with_status_sharded () =
  let plan = triangle_plan () in
  let shard = { Stats_io.shard_index = 1; shard_of = 3 } in
  let sharded = Plan.chunk_outer plan ~index:1 ~of_:3 in
  let plain = Engine_parallel.run ~domains:2 sharded in
  let instrumented = run_with_introspection ~plan:sharded ~runner:(fun () ->
      Engine_parallel.run ~domains:2 sharded)
  in
  Alcotest.(check string) "sharded parallel stats byte-identical"
    (stats_json ~shard sharded plain)
    (stats_json ~shard sharded instrumented)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let mk_event ?(name = "ev") ?(ts = 0) ?(dom = 0) ?(args = []) () =
  {
    Obs.ev_name = name;
    ev_cat = "test";
    ev_ts_ns = ts;
    ev_dom = dom;
    ev_kind = Obs.Instant;
    ev_args = args;
  }

let test_flight_ring_wraps () =
  let fl = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.emit fl (mk_event ~name:(Printf.sprintf "ev%d" i) ~ts:i ())
  done;
  Alcotest.(check int) "bounded by capacity" 4 (Flight.event_count fl);
  Alcotest.(check (list string)) "keeps the most recent, oldest first"
    [ "ev7"; "ev8"; "ev9"; "ev10" ]
    (Array.to_list
       (Array.map (fun e -> e.Obs.ev_name) (Flight.events fl)))

let test_flight_capacity_validated () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Flight.create: capacity must be positive") (fun () ->
      ignore (Flight.create ~capacity:0 ()))

let test_flight_tee_forwards () =
  let fl = Flight.create ~capacity:2 () in
  let recorder = Recorder.create () in
  let sink = Flight.tee fl (Recorder.sink recorder) in
  for i = 1 to 5 do
    sink.Obs.emit (mk_event ~name:(Printf.sprintf "ev%d" i) ~ts:i ())
  done;
  Alcotest.(check int) "ring keeps the tail" 2 (Flight.event_count fl);
  Alcotest.(check int) "inner sink sees everything" 5
    (Recorder.event_count recorder)

let test_flight_dump_round_trips () =
  with_tmp ".flight" (fun path ->
      let fl = Flight.create ~capacity:8 () in
      Flight.emit fl (mk_event ~name:"a" ~ts:1 ~args:[ ("k", Obs.Int 7) ] ());
      Flight.emit fl (mk_event ~name:"b" ~ts:2 ());
      Alcotest.(check int) "dump count" 2 (Flight.dump fl path);
      match Sink_jsonl.read_file path with
      | Error msg -> Alcotest.failf "dump unreadable: %s" msg
      | Ok events ->
        Alcotest.(check (list string)) "events round trip" [ "a"; "b" ]
          (Array.to_list (Array.map (fun e -> e.Obs.ev_name) events)))

(* ------------------------------------------------------------------ *)
(* Fatal fault injection: the crash path                               *)
(* ------------------------------------------------------------------ *)

(* Shape of an event stream with timing and domain ids stripped: what
   must be deterministic across two identical crashed runs. (Domain
   ids are process-global and monotonic in OCaml, so a second run in
   the same process sees fresh ones.) *)
let shape events =
  Array.to_list
    (Array.map
       (fun e -> (e.Obs.ev_name, e.Obs.ev_cat, e.Obs.ev_args)) events)

let crashed_flight_dump plan =
  with_tmp ".status" (fun status_path ->
      with_tmp ".flight" (fun flight_path ->
          let cfg =
            {
              Run_config.default with
              Run_config.status = Some status_path;
              status_every_s = 0.0;
              flight = Some flight_path;
              fault = Some (Run_config.Chunk_fatal { chunk = 1 });
            }
          in
          (match
             Run_config.with_instrumentation ~run_id:"feedc0ffee12"
               ~space:plan.Plan.space_name cfg (fun () ->
                 Engine_parallel.run_resumable
                   ~fault:(Run_config.Chunk_fatal { chunk = 1 })
                   ~domains:1 plan)
           with
          | _ -> Alcotest.fail "fatal fault did not take the run down"
          | exception Failure _ -> ());
          (* The status file must record the crash... *)
          (match Status.of_file status_path with
          | Error msg -> Alcotest.failf "status unreadable: %s" msg
          | Ok v ->
            Alcotest.(check string) "status records the crash" "crashed"
              v.Status.v_state);
          (* ...and the flight dump must exist with the fatal event. *)
          match Sink_jsonl.read_file flight_path with
          | Error msg -> Alcotest.failf "flight dump unreadable: %s" msg
          | Ok events ->
            Alcotest.(check bool) "dump is non-empty" true
              (Array.length events > 0);
            Alcotest.(check bool) "chunk:fatal recorded" true
              (Array.exists (fun e -> e.Obs.ev_name = "chunk:fatal") events);
            shape events))

let test_fatal_fault_dumps_deterministic_flight () =
  let plan = triangle_plan () in
  let first = crashed_flight_dump plan in
  let second = crashed_flight_dump plan in
  Alcotest.(check int) "same event count" (List.length first)
    (List.length second);
  Alcotest.(check bool) "same event shapes in the same order" true
    (first = second)

let () =
  Alcotest.run "status"
    [
      ( "run_meta",
        [
          Alcotest.test_case "round trip" `Quick test_run_meta_round_trip;
          Alcotest.test_case "save, finalize, list" `Quick
            test_run_meta_save_finalize_list;
          Alcotest.test_case "list skips garbage" `Quick
            test_run_meta_list_skips_garbage;
          Alcotest.test_case "fresh id shape" `Quick test_fresh_id_shape;
        ] );
      ( "status",
        [
          Alcotest.test_case "snapshot fields" `Quick
            test_status_snapshot_fields;
          Alcotest.test_case "always parseable under concurrent ticks" `Quick
            test_status_always_parseable_concurrently;
          Alcotest.test_case "finalize idempotent" `Quick
            test_status_finalize_idempotent;
          Alcotest.test_case "negative interval rejected" `Quick
            test_status_negative_interval_rejected;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "unsharded staged stats" `Quick
            test_stats_identical_with_status_unsharded;
          Alcotest.test_case "sharded parallel stats" `Quick
            test_stats_identical_with_status_sharded;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraps" `Quick test_flight_ring_wraps;
          Alcotest.test_case "capacity validated" `Quick
            test_flight_capacity_validated;
          Alcotest.test_case "tee forwards" `Quick test_flight_tee_forwards;
          Alcotest.test_case "dump round trips" `Quick
            test_flight_dump_round_trips;
        ] );
      ( "crash",
        [
          Alcotest.test_case "fatal fault dumps deterministic flight" `Quick
            test_fatal_fault_dumps_deterministic_flight;
        ] );
    ]
