(* Run_config validation: the shard-bounds bugfix plus the new
   checkpoint/fault knobs. *)

open Beast_core

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let expect_error what cfg sub =
  match Run_config.validate cfg with
  | Ok () -> Alcotest.failf "%s was accepted" what
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s message mentions %S (got %S)" what sub msg)
      true (contains ~sub msg)

let expect_ok what cfg =
  match Run_config.validate cfg with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s rejected: %s" what msg

let test_default_validates () = expect_ok "default" Run_config.default

let test_shard_bounds () =
  let with_shard shard = { Run_config.default with Run_config.shard } in
  expect_ok "0/1" (with_shard (Some (0, 1)));
  expect_ok "2/3" (with_shard (Some (2, 3)));
  expect_error "index = count" (with_shard (Some (3, 3))) "below the shard count";
  expect_error "index > count" (with_shard (Some (7, 3))) "below the shard count";
  expect_error "negative index" (with_shard (Some (-1, 3))) "non-negative";
  expect_error "zero count" (with_shard (Some (0, 0))) "must be positive";
  expect_error "negative count" (with_shard (Some (0, -2))) "must be positive"

let test_checkpoint_interval () =
  let with_every checkpoint_every_s =
    {
      Run_config.default with
      Run_config.checkpoint = Some "ck.json";
      checkpoint_every_s;
    }
  in
  expect_ok "positive interval" (with_every 0.1);
  expect_error "zero interval" (with_every 0.0) "checkpoint";
  expect_error "negative interval" (with_every (-1.0)) "checkpoint"

let test_fault_probability () =
  let with_fault prob =
    {
      Run_config.default with
      Run_config.fault = Some (Run_config.Chunk_crash { prob; seed = 42 });
    }
  in
  expect_ok "prob 0" (with_fault 0.0);
  expect_ok "prob 0.5" (with_fault 0.5);
  expect_error "prob 1.0" (with_fault 1.0) "[0, 1)";
  expect_error "prob 1.5" (with_fault 1.5) "[0, 1)";
  expect_error "negative prob" (with_fault (-0.1)) "[0, 1)"

let test_metrics_enabled () =
  Alcotest.(check bool) "off by default" false
    (Run_config.metrics_enabled Run_config.default);
  Alcotest.(check bool) "on with --metrics" true
    (Run_config.metrics_enabled
       { Run_config.default with Run_config.metrics = true });
  Alcotest.(check bool) "implied by --metrics-out" true
    (Run_config.metrics_enabled
       { Run_config.default with Run_config.metrics_out = Some "m.prom" })

let () =
  Alcotest.run "run_config"
    [
      ( "validate",
        [
          Alcotest.test_case "default ok" `Quick test_default_validates;
          Alcotest.test_case "shard bounds" `Quick test_shard_bounds;
          Alcotest.test_case "checkpoint interval" `Quick
            test_checkpoint_interval;
          Alcotest.test_case "fault probability" `Quick test_fault_probability;
          Alcotest.test_case "metrics_enabled" `Quick test_metrics_enabled;
        ] );
    ]
