open Beast_core

let plan_of sp = Plan.make_exn sp

let test_loop_order_respects_deps () =
  let p = plan_of (Support.triangle_space ()) in
  Alcotest.(check (list string)) "x before y" [ "x"; "y" ] p.Plan.iter_order

let test_hoisting_depth () =
  (* In the triangle space, s and both constraints depend on x and y, so
     they sit at depth 2 — directly inside the y loop, before nothing
     deeper. With an extra constraint on x only, that constraint must sit
     at depth 1 (between the x and y loops). *)
  let open Expr.Infix in
  let sp = Support.triangle_space () in
  Space.constrain sp "x_only" (Expr.var "x" =: Expr.int 3);
  let p = plan_of sp in
  let rec find_depth steps depth name =
    List.fold_left
      (fun acc step ->
        match acc with
        | Some _ -> acc
        | None -> (
          match (step : Plan.step) with
          | Check { c_name; _ } when c_name = name -> Some depth
          | Loop { l_body; _ } -> find_depth l_body (depth + 1) name
          | _ -> None))
      None steps
  in
  Alcotest.(check (option int)) "x_only at depth 1" (Some 1)
    (find_depth p.Plan.steps 0 "x_only");
  Alcotest.(check (option int)) "odd_sum at depth 2" (Some 2)
    (find_depth p.Plan.steps 0 "odd_sum")

let test_no_hoisting () =
  let open Expr.Infix in
  let sp = Support.triangle_space () in
  Space.constrain sp "x_only" (Expr.var "x" =: Expr.int 3);
  let p = Plan.make_exn ~hoist:false sp in
  let rec innermost steps =
    List.fold_left
      (fun acc step ->
        match (step : Plan.step) with
        | Plan.Loop { l_body; _ } -> innermost l_body
        | Plan.Check { c_name; _ } -> c_name :: acc
        | _ -> acc)
      []
    steps
  in
  Alcotest.(check bool) "x_only forced innermost" true
    (List.mem "x_only" (innermost p.Plan.steps))

let test_settings_folded () =
  (* After planning, no expression mentions a setting: the triangle space
     bound n=8, so the x loop is range(0, 8). *)
  let p = plan_of (Support.triangle_space ()) in
  match p.Plan.steps with
  | Plan.Loop { l_iter = Plan.CRange (Plan.CLit 0, Plan.CLit 8, Plan.CLit 1); _ }
    :: _ ->
    ()
  | _ -> Alcotest.failf "unexpected plan head:@\n%a" Plan.pp p

let test_static_closure_tabulated () =
  (* A closure iterator depending only on settings becomes a CValues
     table — the rule that lets the C generator handle it. *)
  let sp = Space.create () in
  Space.setting_i sp "k" 3;
  Space.iterator sp "x"
    (Iter.closure ~deps:[ "k" ] (fun env ->
         let k = Value.to_int (env "k") in
         List.to_seq (List.init k (fun i -> Value.Int (i * i)))));
  let p = plan_of sp in
  match p.Plan.steps with
  | Plan.Loop { l_iter = Plan.CValues [| 0; 1; 4 |]; _ } :: _ -> ()
  | _ -> Alcotest.failf "closure not tabulated:@\n%a" Plan.pp p

let test_dynamic_closure_stays_dynamic () =
  let sp = Support.mixed_space () in
  let p = plan_of sp in
  let rec has_dyn steps =
    List.exists
      (fun (step : Plan.step) ->
        match step with
        | Plan.Loop { l_iter = Plan.CDyn _; _ } -> true
        | Plan.Loop { l_body; _ } -> has_dyn l_body
        | _ -> false)
      steps
  in
  Alcotest.(check bool) "b stays dynamic" true (has_dyn p.Plan.steps)

let test_order_override () =
  let sp = Support.triangle_space () in
  (* y depends on x, so ordering y first must fail... *)
  (match Plan.make ~order:[ "y"; "x" ] sp with
  | Error (Plan.Unsupported _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Plan.pp_error e
  | Ok _ -> Alcotest.fail "invalid order accepted");
  (* ...while the valid order is accepted. *)
  match Plan.make ~order:[ "x"; "y" ] sp with
  | Ok p -> Alcotest.(check (list string)) "order kept" [ "x"; "y" ] p.Plan.iter_order
  | Error e -> Alcotest.failf "valid order rejected: %a" Plan.pp_error e

let test_order_override_not_permutation () =
  let sp = Support.triangle_space () in
  match Plan.make ~order:[ "x" ] sp with
  | Error (Plan.Unsupported _) -> ()
  | _ -> Alcotest.fail "non-permutation accepted"

let test_independent_iterators_interchangeable () =
  (* Within a level set, loops may be interchanged (Section X-B). *)
  let sp = Space.create () in
  Space.iterator sp "a" (Iter.range_i 0 3);
  Space.iterator sp "b" (Iter.range_i 0 4);
  let p1 = Plan.make_exn ~order:[ "a"; "b" ] sp in
  let p2 = Plan.make_exn ~order:[ "b"; "a" ] sp in
  let s1 = Engine_staged.run p1 and s2 = Engine_staged.run p2 in
  Alcotest.(check int) "same survivors" s1.Engine.survivors s2.Engine.survivors;
  Alcotest.(check int) "12 points" 12 s1.Engine.survivors

let test_unsupported_float () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.values [ Value.Float 1.5 ]);
  match Plan.make sp with
  | Error (Plan.Unsupported _) -> ()
  | _ -> Alcotest.fail "float iterator accepted in enumeration path"

let test_slot_names () =
  let p = plan_of (Support.triangle_space ()) in
  Alcotest.(check int) "three slots" 3 p.Plan.n_slots;
  Alcotest.(check int) "x slot" 0 (Plan.slot_of p "x");
  Alcotest.(check int) "y slot" 1 (Plan.slot_of p "y");
  Alcotest.(check int) "s slot" 2 (Plan.slot_of p "s");
  Alcotest.check_raises "constraints have no slot" Not_found (fun () ->
      ignore (Plan.slot_of p "odd_sum"))

let test_lookup_of_slots () =
  let p = plan_of (Support.triangle_space ()) in
  let slots = [| 4; 5; 9 |] in
  let lookup = Plan.lookup_of_slots p slots in
  Alcotest.(check int) "iterator" 4 (Value.to_int (lookup "x"));
  Alcotest.(check int) "derived" 9 (Value.to_int (lookup "s"));
  Alcotest.(check int) "setting" 8 (Value.to_int (lookup "n"))

let test_eval_cexpr () =
  let slots = [| 7; 3 |] in
  let e =
    Plan.CBin
      ( Expr.Add,
        Plan.CSlot 0,
        Plan.CCall (Expr.Min, [ Plan.CSlot 1; Plan.CLit 10 ]) )
  in
  Alcotest.(check int) "7 + min(3,10)" 10 (Plan.eval_cexpr slots e);
  Alcotest.(check (list int)) "slots used" [ 0; 1 ] (Plan.cexpr_slots e)

let test_slice_outer_partition () =
  (* Slices must partition the original survivors. *)
  let p = plan_of (Support.triangle_space ()) in
  let full = (Engine_staged.run p).Engine.survivors in
  let parts =
    List.init 3 (fun index ->
        (Engine_staged.run (Plan.slice_outer p ~index ~of_:3)).Engine.survivors)
  in
  Alcotest.(check int) "partition" full (List.fold_left ( + ) 0 parts)

let test_slice_outer_values_and_dyn () =
  (* Slicing must partition when the outermost loop is a value table or
     a dynamic closure, not just a range. *)
  let check sp =
    let p = Plan.make_exn sp in
    let full = (Engine_staged.run p).Engine.survivors in
    let parts =
      List.init 3 (fun index ->
          (Engine_staged.run (Plan.slice_outer p ~index ~of_:3)).Engine.survivors)
    in
    Alcotest.(check int) "partition" full (List.fold_left ( + ) 0 parts)
  in
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.ints [ 3; 1; 4; 1; 5; 9; 2; 6 ]);
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  check sp;
  let sp = Space.create () in
  Space.setting_i sp "k" 7;
  Space.iterator sp "x"
    (Iter.filter (fun v -> Value.to_int v mod 2 = 1) (Iter.range_i 0 20));
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  check sp

let outer_values plan =
  (* Outer-loop values actually visited, in visit order. *)
  let seen = ref [] in
  let on_hit lookup =
    let v = Value.to_int (lookup (List.hd plan.Plan.iter_order)) in
    match !seen with
    | x :: _ when x = v -> ()
    | _ -> seen := v :: !seen
  in
  ignore (Engine_staged.run ~on_hit plan);
  List.rev !seen

let test_chunk_outer_partition () =
  (* Chunks must partition survivors and loop iterations for any of_,
     including of_ larger than the outer trip count (empty chunks). *)
  let p = plan_of (Support.triangle_space ()) in
  let full = Engine_staged.run p in
  List.iter
    (fun of_ ->
      let parts =
        List.init of_ (fun index ->
            Engine_staged.run (Plan.chunk_outer p ~index ~of_))
      in
      Alcotest.(check int)
        (Printf.sprintf "survivors, of_=%d" of_)
        full.Engine.survivors
        (List.fold_left (fun acc s -> acc + s.Engine.survivors) 0 parts);
      Alcotest.(check int)
        (Printf.sprintf "iterations, of_=%d" of_)
        full.Engine.loop_iterations
        (List.fold_left (fun acc s -> acc + s.Engine.loop_iterations) 0 parts))
    [ 2; 3; 5; 16 ]

let test_chunk_outer_contiguous () =
  (* Block decomposition, not stride: chunk 0 of 2 over x in 0..9 is
     exactly the first half, in order. *)
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  let p = Plan.make_exn sp in
  Alcotest.(check (list int)) "chunk 0 of 2" [ 0; 1; 2; 3; 4 ]
    (outer_values (Plan.chunk_outer p ~index:0 ~of_:2));
  Alcotest.(check (list int)) "chunk 1 of 2" [ 5; 6; 7; 8; 9 ]
    (outer_values (Plan.chunk_outer p ~index:1 ~of_:2));
  (* Uneven split: 10 values over 3 chunks -> 3, 4, 3. *)
  Alcotest.(check (list int)) "chunk 1 of 3" [ 3; 4; 5 ]
    (outer_values (Plan.chunk_outer p ~index:1 ~of_:3))

let test_chunk_outer_values_and_dyn () =
  (* Value tables and dynamic closures chunk into contiguous blocks. *)
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.ints [ 3; 1; 4; 1; 5; 9; 2; 6 ]);
  let p = Plan.make_exn sp in
  Alcotest.(check (list int)) "values block" [ 4; 1 ]
    (outer_values (Plan.chunk_outer p ~index:1 ~of_:4));
  let sp = Space.create () in
  Space.iterator sp "x"
    (Iter.filter (fun v -> Value.to_int v mod 2 = 1) (Iter.range_i 0 20));
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  let p = Plan.make_exn sp in
  let full = (Engine_staged.run p).Engine.survivors in
  let parts =
    List.init 3 (fun index ->
        (Engine_staged.run (Plan.chunk_outer p ~index ~of_:3)).Engine.survivors)
  in
  Alcotest.(check int) "dyn partition" full (List.fold_left ( + ) 0 parts)

let test_chunk_outer_negative_step () =
  let sp = Space.create () in
  Space.iterator sp "x"
    (Iter.range ~step:(Expr.int (-2)) (Expr.int 9) (Expr.int 0));
  let p = Plan.make_exn sp in
  Alcotest.(check (list int)) "full" [ 9; 7; 5; 3; 1 ] (outer_values p);
  Alcotest.(check (list int)) "chunk 0 of 2" [ 9; 7 ]
    (outer_values (Plan.chunk_outer p ~index:0 ~of_:2));
  Alcotest.(check (list int)) "chunk 1 of 2" [ 5; 3; 1 ]
    (outer_values (Plan.chunk_outer p ~index:1 ~of_:2))

let test_chunk_outer_dependent_bounds () =
  (* Outer bounds reading a depth-0 derived slot exercise the symbolic
     trip-count path. *)
  let sp = Space.create () in
  Space.setting_i sp "n" 11;
  Space.derived sp "m" Expr.Infix.(Expr.var "n" +: Expr.int 2);
  Space.iterator sp "x" (Iter.range (Expr.int 0) (Expr.var "m"));
  let p = Plan.make_exn sp in
  Alcotest.(check (list int)) "chunk 0 of 4" [ 0; 1; 2 ]
    (outer_values (Plan.chunk_outer p ~index:0 ~of_:4));
  Alcotest.(check (list int)) "chunk 3 of 4" [ 9; 10; 11; 12 ]
    (outer_values (Plan.chunk_outer p ~index:3 ~of_:4))

let test_depth0_constraints_mask () =
  let sp = Support.triangle_space () in
  Space.constrain sp "d0" Expr.(Infix.( <: ) (Expr.int 9) (Expr.int 8)) ~cls:Space.Soft;
  let p = Plan.make_exn sp in
  let mask = Plan.depth0_constraints p in
  let by_name name =
    let rec find i = function
      | [] -> Alcotest.fail ("no constraint " ^ name)
      | (n, _) :: _ when n = name -> mask.(i)
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (Array.to_list p.Plan.constraint_info)
  in
  Alcotest.(check bool) "setting-only constraint is depth 0" true (by_name "d0");
  Alcotest.(check bool) "iterator constraint is deeper" false (by_name "odd_sum")

let test_pp_smoke () =
  let p = plan_of (Support.triangle_space ()) in
  let s = Format.asprintf "%a" Plan.pp p in
  Alcotest.(check bool) "mentions loops" true (String.length s > 40)

let () =
  Alcotest.run "plan"
    [
      ( "structure",
        [
          Alcotest.test_case "loop order" `Quick test_loop_order_respects_deps;
          Alcotest.test_case "hoisting depth" `Quick test_hoisting_depth;
          Alcotest.test_case "no hoisting" `Quick test_no_hoisting;
          Alcotest.test_case "settings folded" `Quick test_settings_folded;
          Alcotest.test_case "static closure tabulated" `Quick
            test_static_closure_tabulated;
          Alcotest.test_case "dynamic closure" `Quick
            test_dynamic_closure_stays_dynamic;
          Alcotest.test_case "slot names" `Quick test_slot_names;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "order override" `Quick test_order_override;
          Alcotest.test_case "non-permutation rejected" `Quick
            test_order_override_not_permutation;
          Alcotest.test_case "interchange within level" `Quick
            test_independent_iterators_interchangeable;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "float rejected" `Quick test_unsupported_float;
          Alcotest.test_case "lookup_of_slots" `Quick test_lookup_of_slots;
          Alcotest.test_case "eval_cexpr" `Quick test_eval_cexpr;
          Alcotest.test_case "slice_outer partitions" `Quick
            test_slice_outer_partition;
          Alcotest.test_case "slice_outer values/dyn" `Quick
            test_slice_outer_values_and_dyn;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "chunk_outer partitions" `Quick
            test_chunk_outer_partition;
          Alcotest.test_case "chunk_outer contiguous blocks" `Quick
            test_chunk_outer_contiguous;
          Alcotest.test_case "chunk_outer values/dyn" `Quick
            test_chunk_outer_values_and_dyn;
          Alcotest.test_case "chunk_outer negative step" `Quick
            test_chunk_outer_negative_step;
          Alcotest.test_case "chunk_outer dependent bounds" `Quick
            test_chunk_outer_dependent_bounds;
          Alcotest.test_case "depth0 constraint mask" `Quick
            test_depth0_constraints_mask;
        ] );
    ]
