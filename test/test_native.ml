(* The native engine end to end: compile-cache behaviour, subprocess
   stats parsing (strict grammar, hostile inputs), byte-identity with
   the staged engine, on_hit round-trips, graceful degradation and
   crash hygiene (no stale temp binaries after an aborted run). *)

open Beast_core

let full_stats_equal a b =
  a.Engine.survivors = b.Engine.survivors
  && a.Engine.loop_iterations = b.Engine.loop_iterations
  && a.Engine.pruned = b.Engine.pruned

let check_stats msg a b =
  Alcotest.(check bool) msg true (full_stats_equal a b)

let in_workdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "beast_test_native_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let small_gemm () =
  let device =
    Beast_gpu.Device.scale ~max_dim:16 ~max_threads:64
      Beast_gpu.Device.tesla_k40c
  in
  let settings = { Beast_kernels.Gemm.default_settings with device } in
  Beast_kernels.Gemm.space ~settings ()

(* ------------------------------------------------------------------ *)
(* Byte-identity with the staged engine                                *)
(* ------------------------------------------------------------------ *)

let test_matches_staged_triangle () =
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (Support.triangle_space ()) in
      let expected = Engine_staged.run plan in
      check_stats "threads=1" expected (Engine_native.run ~workdir plan);
      check_stats "threads=3" expected
        (Engine_native.run ~workdir ~threads:3 plan))

let test_matches_staged_gemm () =
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (small_gemm ()) in
      let expected = Engine_staged.run plan in
      check_stats "threads=1" expected (Engine_native.run ~workdir plan);
      check_stats "threads=4" expected
        (Engine_native.run ~workdir ~threads:4 plan))

let test_depth0_constraint_threads () =
  (* A constraint evaluable before the first loop executes in every
     pthread slice but must be counted once — the slice-0 convention.
     With the space disabled it fires in all 3 slices; pruned must still
     read 1, survivors 0. *)
  let open Expr.Infix in
  let sp = Space.create ~name:"depth0" () in
  Space.setting_i sp "enabled" 0;
  Space.iterator sp "x" (Iter.range_i 0 50);
  Space.constrain sp "disabled_space" (Expr.var "enabled" =: Expr.int 0);
  in_workdir (fun workdir ->
      let plan = Plan.make_exn sp in
      let expected = Engine_staged.run plan in
      check_stats "threads=3" expected
        (Engine_native.run ~workdir ~threads:3 plan))

let test_loop_free_plan_threads () =
  (* No loops at all: the single point belongs to slice 0 alone, so a
     multithreaded binary must not count it once per thread. *)
  let sp = Space.create ~name:"pointlike" () in
  Space.setting_i sp "n" 3;
  in_workdir (fun workdir ->
      let plan = Plan.make_exn sp in
      let expected = Engine_staged.run plan in
      check_stats "threads=4" expected
        (Engine_native.run ~workdir ~threads:4 plan))

let test_sharded_matches_unsharded () =
  (* chunk_outer (the CLI's --shard) composed with the native engine:
     merged shard stats must reproduce the unsharded run exactly
     (depth-0 dedup is Stats_io.merge's job; these plans have none). *)
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (Support.triangle_space ()) in
      let whole = Engine_native.run ~workdir plan in
      let parts =
        List.init 3 (fun index ->
            Engine_native.run ~workdir (Plan.chunk_outer plan ~index ~of_:3))
      in
      let merged =
        List.fold_left Engine.merge (List.hd parts) (List.tl parts)
      in
      check_stats "3 shards merge to the whole" whole merged)

(* ------------------------------------------------------------------ *)
(* on_hit round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_on_hit_roundtrip () =
  (* Single-threaded hit order is the enumeration order, so the native
     replay must match the staged callback sequence exactly — including
     derived variables and settings resolved through the lookup. *)
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (Support.triangle_space ()) in
      let observe acc lookup =
        acc :=
          List.map Value.to_int [ lookup "x"; lookup "y"; lookup "s"; lookup "n" ]
          :: !acc
      in
      let staged_hits = ref [] in
      ignore (Engine_staged.run ~on_hit:(observe staged_hits) plan);
      let native_hits = ref [] in
      ignore (Engine_native.run ~on_hit:(observe native_hits) ~workdir plan);
      Alcotest.(check (list (list int)))
        "hit order and contents" (List.rev !staged_hits)
        (List.rev !native_hits))

(* ------------------------------------------------------------------ *)
(* The stats parser on hostile input                                   *)
(* ------------------------------------------------------------------ *)

let parse ?on_hit plan lines =
  Engine_native.stats_of_lines ?on_hit plan (List.to_seq lines)

let check_rejects msg plan lines fragment =
  match parse plan lines with
  | Ok _ -> Alcotest.failf "%s: garbled output parsed as statistics" msg
  | Error e ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: diagnostic %S mentions %S" msg e fragment)
      true (contains e fragment)

let test_parser_accepts_valid () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let expected = Engine_staged.run plan in
  match
    parse plan
      [
        Printf.sprintf "survivors %d" expected.Engine.survivors;
        Printf.sprintf "iterations %d" expected.Engine.loop_iterations;
        (let n, _, k = expected.Engine.pruned.(0) in
         Printf.sprintf "pruned %s %d" (Codegen_c.sanitize n) k);
        (let n, _, k = expected.Engine.pruned.(1) in
         Printf.sprintf "pruned %s %d" (Codegen_c.sanitize n) k);
      ]
  with
  | Ok stats -> check_stats "well-formed output parses" expected stats
  | Error e -> Alcotest.failf "valid output rejected: %s" e

let test_parser_rejects_malformed () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  check_rejects "truncated: empty" plan [] "no survivors line";
  check_rejects "truncated: missing pruned" plan
    [ "survivors 4"; "iterations 10" ]
    "pruned lines missing";
  check_rejects "truncated: missing iterations" plan [ "survivors 4" ]
    "no iterations line";
  check_rejects "unknown line" plan
    [ "garbage in the stream"; "survivors 4" ]
    "unrecognized line";
  check_rejects "non-integer survivors" plan [ "survivors lots" ]
    "not an integer";
  check_rejects "duplicate survivors" plan
    [ "survivors 4"; "survivors 4" ]
    "duplicate survivors";
  check_rejects "summary out of order" plan [ "iterations 10" ]
    "iterations before survivors";
  check_rejects "wrong constraint name" plan
    [ "survivors 4"; "iterations 10"; "pruned nonsense 1" ]
    "expected constraint";
  check_rejects "interleaved hit line" plan
    [ "hit 1 2 hit 3"; "survivors 1" ]
    "hit line has";
  check_rejects "truncated hit line" plan [ "hit 1"; "survivors 1" ]
    "hit line has";
  check_rejects "hit after summary" plan
    [ "survivors 1"; "hit 1 2" ]
    "after the summary";
  check_rejects "extra pruned line" plan
    [
      "survivors 0"; "iterations 0"; "pruned odd_sum 0"; "pruned big_x 0";
      "pruned big_x 0";
    ]
    "extra pruned"

let test_parser_hit_count_mismatch () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let lines =
    [
      "hit 0 1"; "survivors 3"; "iterations 10"; "pruned odd_sum 2";
      "pruned big_x 1";
    ]
  in
  match parse ~on_hit:(fun _ -> ()) plan lines with
  | Ok _ -> Alcotest.fail "survivor/hit mismatch parsed as statistics"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "diagnostic %S counts the hits" e)
      true
      (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* Degradation, caching and crash hygiene                              *)
(* ------------------------------------------------------------------ *)

let test_unsupported_is_one_line_error () =
  in_workdir (fun workdir ->
      match Engine_native.run ~workdir (Plan.make_exn (Support.mixed_space ()))
      with
      | _ -> Alcotest.fail "closure iterators accepted by the native engine"
      | exception Engine_native.Error msg ->
        Alcotest.(check bool) "message is one actionable line" true
          (not (String.contains msg '\n')
          && String.length msg > 0))

let test_missing_compiler_diagnostic () =
  in_workdir (fun workdir ->
      Unix.putenv "BEAST_CC" "/nonexistent/compiler-xyz";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "BEAST_CC" "")
        (fun () ->
          match
            Engine_native.run ~workdir (Plan.make_exn (Support.triangle_space ()))
          with
          | _ -> Alcotest.fail "missing compiler went unnoticed"
          | exception Engine_native.Error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "diagnostic %S names the compiler" msg)
              true
              (not (String.contains msg '\n'))))

let test_compile_cache_hit () =
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (Support.triangle_space ()) in
      let exe1 = Engine_native.compile ~workdir plan in
      let mtime = (Unix.stat exe1).Unix.st_mtime in
      (* A second compile of the same plan must short-circuit on the
         content hash: same path, binary untouched. *)
      let exe2 = Engine_native.compile ~workdir plan in
      Alcotest.(check string) "same cached binary" exe1 exe2;
      Alcotest.(check bool) "binary not rebuilt" true
        ((Unix.stat exe2).Unix.st_mtime = mtime);
      (* Even with the compiler broken the cache hit must succeed —
         proof no compiler is invoked. *)
      Unix.putenv "BEAST_CC" "/nonexistent/compiler-xyz";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "BEAST_CC" "")
        (fun () ->
          (* A different compiler changes the cache key, so pre-seed the
             lookup by restoring: the key includes $BEAST_CC. *)
          Unix.putenv "BEAST_CC" "";
          let exe3 = Engine_native.compile ~workdir plan in
          Alcotest.(check string) "cache hit without compiler" exe1 exe3))

let no_temp_files workdir =
  Array.for_all
    (fun f ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      not (contains f ".tmp"))
    (Sys.readdir workdir)

let test_kill_mid_run_leaves_no_temps () =
  in_workdir (fun workdir ->
      let plan = Plan.make_exn (Support.triangle_space ()) in
      let hits = ref 0 in
      let abort _ =
        incr hits;
        if !hits = 3 then raise Exit
      in
      (match Engine_native.run ~on_hit:abort ~workdir plan with
      | _ -> Alcotest.fail "aborting on_hit did not propagate"
      | exception Exit -> ());
      Alcotest.(check bool) "exactly 3 hits before the abort" true (!hits = 3);
      Alcotest.(check bool) "no stale temp files in the workdir" true
        (no_temp_files workdir);
      (* The cache must still be healthy: the next run reuses the binary
         and completes. *)
      let expected = Engine_staged.run plan in
      check_stats "post-abort run succeeds" expected
        (Engine_native.run ~workdir plan))

(* ------------------------------------------------------------------ *)
(* Registry integration                                                *)
(* ------------------------------------------------------------------ *)

let test_registry_specs () =
  (match Engine_registry.find "native" with
  | Ok (module E : Engine_intf.S) ->
    Alcotest.(check string) "bare spec" "native" E.name;
    (match Engine_registry.entry_of "native" with
    | Some e ->
      Alcotest.(check bool)
        "catalog: native cannot evaluate opaque closures" false
        e.Engine_registry.e_opaque
    | None -> Alcotest.fail "native has no catalog entry")
  | Error e -> Alcotest.failf "native spec rejected: %s" e);
  (match Engine_registry.find "native:3" with
  | Ok (module E : Engine_intf.S) ->
    Alcotest.(check string) "parameterized spec" "native-3" E.name
  | Error e -> Alcotest.failf "native:3 rejected: %s" e);
  (match Engine_registry.find "native:0" with
  | Ok _ -> Alcotest.fail "native:0 accepted"
  | Error _ -> ());
  (match Engine_registry.find "native:x" with
  | Ok _ -> Alcotest.fail "native:x accepted"
  | Error _ -> ());
  Alcotest.(check bool) "catalog lists the native spec" true
    (List.mem "native[:THREADS]" Engine_registry.names);
  Alcotest.(check bool) "names derive from the catalog" true
    (Engine_registry.names
    = List.map (fun e -> e.Engine_registry.e_spec) Engine_registry.catalog)

let test_registry_run () =
  in_workdir (fun _ ->
      match Engine_registry.find "native" with
      | Error e -> Alcotest.failf "native spec rejected: %s" e
      | Ok (module E : Engine_intf.S) ->
        let sp = Support.triangle_space () in
        let expected = Engine_staged.run_space sp in
        check_stats "registry-resolved native run" expected
          (E.run (Engine_intf.Space sp)))

let () =
  Random.self_init ();
  Alcotest.run "native"
    [
      ( "identity",
        [
          Alcotest.test_case "triangle matches staged" `Quick
            test_matches_staged_triangle;
          Alcotest.test_case "gemm matches staged" `Quick
            test_matches_staged_gemm;
          Alcotest.test_case "depth-0 constraint, 3 threads" `Quick
            test_depth0_constraint_threads;
          Alcotest.test_case "loop-free plan, 4 threads" `Quick
            test_loop_free_plan_threads;
          Alcotest.test_case "3-way shard merge" `Quick
            test_sharded_matches_unsharded;
          Alcotest.test_case "on_hit round-trip" `Quick test_on_hit_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "accepts valid output" `Quick
            test_parser_accepts_valid;
          Alcotest.test_case "rejects malformed output" `Quick
            test_parser_rejects_malformed;
          Alcotest.test_case "rejects survivor/hit mismatch" `Quick
            test_parser_hit_count_mismatch;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "unsupported plan is a one-line error" `Quick
            test_unsupported_is_one_line_error;
          Alcotest.test_case "missing compiler diagnostic" `Quick
            test_missing_compiler_diagnostic;
          Alcotest.test_case "compile cache hit" `Quick test_compile_cache_hit;
          Alcotest.test_case "kill mid-run leaves no temps" `Quick
            test_kill_mid_run_leaves_no_temps;
        ] );
      ( "registry",
        [
          Alcotest.test_case "spec parsing" `Quick test_registry_specs;
          Alcotest.test_case "resolved module runs" `Quick test_registry_run;
        ] );
    ]
