(* Checkpoint/resume robustness: file-format round trips, corrupt-file
   rejection, kill-and-resume equivalence on the GEMM space, and
   fault-injected crash recovery. *)

open Beast_core

let gemm_plan () =
  let device =
    Beast_gpu.Device.scale ~max_dim:32 ~max_threads:128
      Beast_gpu.Device.tesla_k40c
  in
  let settings = { Beast_kernels.Gemm.default_settings with device } in
  Plan.make_exn (Beast_kernels.Gemm.space ~settings ())

let triangle_plan () = Plan.make_exn (Support.triangle_space ())

let tmp_path () = Filename.temp_file "beast_ck" ".json"

(* Replace the first occurrence of [sub] in [s]; test-bug failure if
   [sub] is absent (the mangling tests rely on hitting real syntax). *)
let replace_once ~sub ~by s =
  let rec find i =
    if i + String.length sub > String.length s then None
    else if String.sub s i (String.length sub) = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "test bug: %S not in encoding" sub
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s
        (i + String.length sub)
        (String.length s - i - String.length sub)

let chunked_stats plan n_chunks =
  List.init n_chunks (fun index ->
      (index, Engine_staged.run (Plan.chunk_outer plan ~index ~of_:n_chunks)))

(* A checkpoint with a realistic partial ledger: every even chunk of an
   8-way split of the triangle plan. *)
let sample_checkpoint () =
  let plan = triangle_plan () in
  let completed =
    List.filter (fun (id, _) -> id mod 2 = 0) (chunked_stats plan 8)
  in
  (plan, Checkpoint.make ~plan ~shard:Stats_io.unsharded ~n_chunks:8 completed)

let test_round_trip () =
  let _, ck = sample_checkpoint () in
  match Checkpoint.of_json (Checkpoint.to_json ck) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok ck' ->
    Alcotest.(check string) "space" ck.Checkpoint.space ck'.Checkpoint.space;
    Alcotest.(check int) "n_chunks" ck.Checkpoint.n_chunks
      ck'.Checkpoint.n_chunks;
    Alcotest.(check (list int)) "completed ids" [ 0; 2; 4; 6 ]
      (Checkpoint.completed_ids ck');
    Alcotest.(check bool) "constraints" true
      (ck.Checkpoint.constraints = ck'.Checkpoint.constraints);
    Alcotest.(check bool) "ledger" true
      (Checkpoint.chunk_stats ck = Checkpoint.chunk_stats ck');
    Alcotest.(check string) "byte-stable re-encoding"
      (Checkpoint.to_json ck) (Checkpoint.to_json ck')

let test_save_is_atomic_and_readable () =
  let _, ck = sample_checkpoint () in
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Checkpoint.save path ck;
      Alcotest.(check bool) "no stray tmp file" false
        (Sys.file_exists (path ^ ".tmp"));
      match Checkpoint.of_file path with
      | Error msg -> Alcotest.failf "cannot read back: %s" msg
      | Ok ck' ->
        Alcotest.(check string) "identical encoding" (Checkpoint.to_json ck)
          (Checkpoint.to_json ck'))

let expect_rejects what text =
  match Checkpoint.of_json text with
  | Ok _ -> Alcotest.failf "%s was accepted" what
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s error is diagnosed (got %S)" what msg)
      true
      (String.length msg > String.length "checkpoint: "
      && String.sub msg 0 11 = "checkpoint:")

let test_corrupt_files_rejected () =
  let _, ck = sample_checkpoint () in
  let good = Checkpoint.to_json ck in
  expect_rejects "garbage" "not json at all";
  expect_rejects "truncated file"
    (String.sub good 0 (String.length good / 2));
  expect_rejects "empty object" "{}";
  (* A stats file is valid JSON but not a checkpoint. *)
  let stats_file =
    Stats_io.to_json
      (Stats_io.of_stats ~plan:(triangle_plan ())
         (Engine_staged.run (triangle_plan ())))
  in
  expect_rejects "stats file" stats_file;
  expect_rejects "future format version"
    (replace_once ~sub:"\"beast_checkpoint\": 1" ~by:"\"beast_checkpoint\": 99"
       good);
  expect_rejects "out-of-range chunk id"
    (replace_once ~sub:"\"id\": 6" ~by:"\"id\": 8" good);
  expect_rejects "duplicate chunk id"
    (replace_once ~sub:"\"id\": 6" ~by:"\"id\": 4" good);
  expect_rejects "bad chunk arity"
    (replace_once ~sub:"\"n_chunks\": 8" ~by:"\"n_chunks\": 0" good)

let test_fired_arity_rejected () =
  let plan = triangle_plan () in
  let stats = Engine_staged.run plan in
  let ck =
    Checkpoint.make ~plan ~shard:Stats_io.unsharded ~n_chunks:4 [ (0, stats) ]
  in
  (* Smuggle an extra fired count into the encoded chunk. *)
  let mangled =
    replace_once ~sub:"\"fired\": [" ~by:"\"fired\": [0, " (Checkpoint.to_json ck)
  in
  expect_rejects "fired arity mismatch" mangled

let test_validate_mismatches () =
  let plan, ck = sample_checkpoint () in
  (match Checkpoint.validate ~plan ~shard:Stats_io.unsharded ck with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "matching checkpoint rejected: %s" msg);
  (match Checkpoint.validate ~plan:(gemm_plan ()) ~shard:Stats_io.unsharded ck with
  | Ok () -> Alcotest.fail "wrong space accepted"
  | Error _ -> ());
  (match
     Checkpoint.validate ~plan
       ~shard:{ Stats_io.shard_index = 1; shard_of = 3 }
       ck
   with
  | Ok () -> Alcotest.fail "wrong shard accepted"
  | Error _ -> ());
  (* Same space name, different constraint list. *)
  let sp = Support.triangle_space () in
  let open Expr.Infix in
  Space.constrain sp "extra" (Expr.var "x" >: Expr.int 100);
  (match Checkpoint.validate ~plan:(Plan.make_exn sp) ~shard:Stats_io.unsharded ck with
  | Ok () -> Alcotest.fail "changed constraint list accepted"
  | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Resumable scheduler                                                 *)
(* ------------------------------------------------------------------ *)

let finished = function
  | Engine_intf.Finished stats -> stats
  | Engine_intf.Interrupted { completed; total } ->
    Alcotest.failf "unexpected interruption (%d/%d chunks)" completed total

let test_resumable_equals_plain_run () =
  let plan = gemm_plan () in
  let plain = Engine_parallel.run ~domains:2 plan in
  let resumed = finished (Engine_parallel.run_resumable ~domains:2 plan) in
  Alcotest.check Support.stats_testable "stats" plain resumed;
  Alcotest.(check int) "loop iterations" plain.Engine.loop_iterations
    resumed.Engine.loop_iterations

let test_interrupt_then_resume_byte_identical () =
  let plan = gemm_plan () in
  let reference = Engine_parallel.run ~domains:2 plan in
  let reference_json =
    Stats_io.to_json (Stats_io.of_stats ~plan reference)
  in
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink =
        {
          Engine_intf.ck_path = path;
          ck_every_s = 1e9;
          (* periodic writes never fire: only the forced final flush *)
          ck_run_id = None;
          ck_shard = Stats_io.unsharded;
          ck_base_metrics = None;
        }
      in
      (* Interrupt from inside the sweep after a handful of survivors,
         as a signal handler would. *)
      let hits = ref 0 in
      let on_hit _ =
        incr hits;
        if !hits = 10 then Engine_parallel.interrupt ()
      in
      let outcome =
        Engine_parallel.run_resumable ~on_hit ~checkpoint:sink ~domains:2 plan
      in
      let completed, total =
        match outcome with
        | Engine_intf.Interrupted { completed; total } -> (completed, total)
        | Engine_intf.Finished _ ->
          Alcotest.fail "sweep finished despite the interrupt"
      in
      Alcotest.(check bool) "drained chunks recorded" true (completed >= 1);
      Alcotest.(check bool) "interrupted before the end" true
        (completed < total);
      let ck =
        match Checkpoint.of_file path with
        | Ok ck -> ck
        | Error msg -> Alcotest.failf "final checkpoint unreadable: %s" msg
      in
      Alcotest.(check int) "ledger matches the reported progress" completed
        (List.length (Checkpoint.completed_ids ck));
      (match Checkpoint.validate ~plan ~shard:Stats_io.unsharded ck with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "checkpoint fails validation: %s" msg);
      (* Resume under a different domain count: the ledger's chunk split
         must be honored and the output must be byte-identical. *)
      let resumed =
        finished
          (Engine_parallel.run_resumable ~checkpoint:sink ~resume:ck ~domains:3
             plan)
      in
      Alcotest.(check string) "byte-identical stats JSON" reference_json
        (Stats_io.to_json (Stats_io.of_stats ~plan resumed)))

let test_resume_from_complete_checkpoint_runs_nothing () =
  let plan = triangle_plan () in
  let n_chunks = 6 in
  let ck =
    Checkpoint.make ~plan ~shard:Stats_io.unsharded ~n_chunks
      (chunked_stats plan n_chunks)
  in
  let hits = ref 0 in
  let resumed =
    finished
      (Engine_parallel.run_resumable
         ~on_hit:(fun _ -> incr hits)
         ~resume:ck ~domains:2 plan)
  in
  Alcotest.(check int) "no chunk re-swept" 0 !hits;
  Alcotest.check Support.stats_testable "stats from the ledger alone"
    (Engine_staged.run plan) resumed

let test_interrupt_without_checkpoint_loses_no_invariants () =
  let plan = gemm_plan () in
  let hits = ref 0 in
  let on_hit _ =
    incr hits;
    if !hits = 5 then Engine_parallel.interrupt ()
  in
  (match Engine_parallel.run_resumable ~on_hit ~domains:2 plan with
  | Engine_intf.Interrupted { completed; total } ->
    Alcotest.(check bool) "partial progress reported" true
      (completed < total)
  | Engine_intf.Finished _ -> Alcotest.fail "finished despite interrupt");
  (* The stop flag must not leak into the next run. *)
  let next = finished (Engine_parallel.run_resumable ~domains:2 plan) in
  Alcotest.check Support.stats_testable "next run unaffected"
    (Engine_parallel.run ~domains:2 plan) next

let test_fault_injected_crashes_recovered () =
  let plan = gemm_plan () in
  let reference = Engine_parallel.run ~domains:2 plan in
  List.iter
    (fun prob ->
      let hits = ref 0 in
      let stats =
        finished
          (Engine_parallel.run_resumable
             ~on_hit:(fun _ -> incr hits)
             ~fault:(Run_config.Chunk_crash { prob; seed = 7 })
             ~domains:2 plan)
      in
      Alcotest.check Support.stats_testable
        (Printf.sprintf "stats at crash probability %g" prob)
        reference stats;
      Alcotest.(check int)
        (Printf.sprintf "on_hit exactly once per survivor at %g" prob)
        reference.Engine.survivors !hits)
    [ 0.3; 0.9 ]

let test_fault_with_checkpoint_and_resume () =
  (* Crashes, an interruption and a resume in one run: the full
     degradation story on one space. *)
  let plan = gemm_plan () in
  let reference_json =
    Stats_io.to_json (Stats_io.of_stats ~plan (Engine_parallel.run ~domains:2 plan))
  in
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink =
        {
          Engine_intf.ck_path = path;
          ck_every_s = 0.001;
          (* checkpoint after virtually every chunk *)
          ck_run_id = None;
          ck_shard = Stats_io.unsharded;
          ck_base_metrics = None;
        }
      in
      let fault = Run_config.Chunk_crash { prob = 0.5; seed = 11 } in
      let hits = ref 0 in
      let on_hit _ =
        incr hits;
        if !hits = 200 then Engine_parallel.interrupt ()
      in
      (match
         Engine_parallel.run_resumable ~on_hit ~checkpoint:sink ~fault
           ~domains:2 plan
       with
      | Engine_intf.Interrupted _ -> ()
      | Engine_intf.Finished _ -> Alcotest.fail "finished despite interrupt");
      let ck =
        match Checkpoint.of_file path with
        | Ok ck -> ck
        | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg
      in
      let resumed =
        finished
          (Engine_parallel.run_resumable ~resume:ck ~fault ~domains:4 plan)
      in
      Alcotest.(check string) "byte-identical after crashes + resume"
        reference_json
        (Stats_io.to_json (Stats_io.of_stats ~plan resumed)))

let test_bad_fault_probability_rejected () =
  let plan = triangle_plan () in
  Alcotest.check_raises "prob 1.0"
    (Invalid_argument
       "Engine_parallel.run_resumable: crash probability not in [0, 1)")
    (fun () ->
      ignore
        (Engine_parallel.run_resumable
           ~fault:(Run_config.Chunk_crash { prob = 1.0; seed = 1 })
           ~domains:2 plan))

let () =
  Alcotest.run "checkpoint"
    [
      ( "format",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "atomic save" `Quick
            test_save_is_atomic_and_readable;
          Alcotest.test_case "corrupt files rejected" `Quick
            test_corrupt_files_rejected;
          Alcotest.test_case "fired arity rejected" `Quick
            test_fired_arity_rejected;
          Alcotest.test_case "validate mismatches" `Quick
            test_validate_mismatches;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resumable = plain run" `Quick
            test_resumable_equals_plain_run;
          Alcotest.test_case "interrupt then resume, byte-identical" `Quick
            test_interrupt_then_resume_byte_identical;
          Alcotest.test_case "complete checkpoint sweeps nothing" `Quick
            test_resume_from_complete_checkpoint_runs_nothing;
          Alcotest.test_case "interrupt without checkpoint" `Quick
            test_interrupt_without_checkpoint_loses_no_invariants;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crashes recovered" `Quick
            test_fault_injected_crashes_recovered;
          Alcotest.test_case "crashes + interrupt + resume" `Quick
            test_fault_with_checkpoint_and_resume;
          Alcotest.test_case "bad probability rejected" `Quick
            test_bad_fault_probability_rejected;
        ] );
    ]
