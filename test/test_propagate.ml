open Beast_core

(* ------------------------------------------------------------------ *)
(* Interval evaluator                                                  *)
(* ------------------------------------------------------------------ *)

let some_iv lo hi = Some { Propagate.lo; hi }

let check_iv msg expected got =
  let pp = function
    | None -> "unknown"
    | Some { Propagate.lo; hi } -> Printf.sprintf "[%d, %d]" lo hi
  in
  Alcotest.(check string) msg (pp expected) (pp got)

let test_interval_arith () =
  let box = [| some_iv 2 5; some_iv (-3) 4; None |] in
  let ev e = Propagate.interval_of_cexpr box e in
  check_iv "add"
    (some_iv (-1) 9)
    (ev (Plan.CBin (Expr.Add, Plan.CSlot 0, Plan.CSlot 1)));
  check_iv "mul"
    (some_iv (-15) 20)
    (ev (Plan.CBin (Expr.Mul, Plan.CSlot 0, Plan.CSlot 1)));
  check_iv "unknown slot poisons"
    None
    (ev (Plan.CBin (Expr.Add, Plan.CSlot 0, Plan.CSlot 2)));
  check_iv "div by interval containing zero"
    None
    (ev (Plan.CBin (Expr.Div, Plan.CSlot 0, Plan.CSlot 1)));
  check_iv "div by positive interval"
    (some_iv 1 2)
    (ev (Plan.CBin (Expr.Div, Plan.CSlot 0, Plan.CLit 2)));
  check_iv "comparison definite"
    (some_iv 1 1)
    (ev (Plan.CBin (Expr.Lt, Plan.CSlot 0, Plan.CLit 6)));
  check_iv "comparison indeterminate"
    (some_iv 0 1)
    (ev (Plan.CBin (Expr.Lt, Plan.CSlot 0, Plan.CLit 4)));
  check_iv "short-circuit and with false left"
    (some_iv 0 0)
    (ev
       (Plan.CBin
          ( Expr.And,
            Plan.CBin (Expr.Gt, Plan.CSlot 0, Plan.CLit 100),
            Plan.CBin (Expr.Div, Plan.CSlot 0, Plan.CSlot 1) )));
  check_iv "min" (some_iv (-3) 4)
    (ev (Plan.CCall (Expr.Min, [ Plan.CSlot 0; Plan.CSlot 1 ])));
  check_iv "abs" (some_iv 0 4)
    (ev (Plan.CCall (Expr.Abs, [ Plan.CSlot 1 ])))

(* ------------------------------------------------------------------ *)
(* The pass on a hand-built space                                      *)
(* ------------------------------------------------------------------ *)

(* x in 0..9 with even(x) required: propagation must fold the parity
   check into the iterator and record the 5 dead values. *)
let parity_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"parity" () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  Space.constrain sp "odd_x" (Expr.var "x" %: Expr.int 2 =: Expr.int 1);
  Space.iterator sp "y" (Iter.range_i 0 3);
  sp

let test_pass_removes_dead () =
  let plan = Plan.make_exn (parity_space ()) in
  let propagated = Propagate.pass plan in
  Alcotest.(check int) "5 dead values" 5 (Plan.static_pruned propagated);
  let rec outer_iter = function
    | Plan.Loop { l_iter; _ } :: _ -> l_iter
    | _ :: rest -> outer_iter rest
    | [] -> Alcotest.fail "no loop"
  in
  (match outer_iter propagated.Plan.steps with
  | Plan.CRange (Plan.CLit 0, Plan.CLit 10, Plan.CLit 2) -> ()
  | Plan.CValues [| 0; 2; 4; 6; 8 |] -> ()
  | _ -> Alcotest.fail "outer iterator not tightened to the even values");
  (* Idempotent: a second pass finds nothing more. *)
  let again = Propagate.pass propagated in
  Alcotest.(check int) "second pass stable" 5 (Plan.static_pruned again)

let test_pass_untouched_when_nothing_dead () =
  (* x + y > 6 never definitely fires for any single value of either
     iterator, so nothing may be removed. *)
  let open Expr.Infix in
  let sp = Space.create ~name:"coupled" () in
  Space.iterator sp "x" (Iter.range_i 0 4);
  Space.iterator sp "y" (Iter.range_i 0 4);
  Space.constrain sp "sum_cap" (Expr.var "x" +: Expr.var "y" >: Expr.int 6);
  let plan = Plan.make_exn sp in
  let propagated = Propagate.pass plan in
  Alcotest.(check int) "coupled constraint removes nothing" 0
    (Plan.static_pruned propagated)

(* ------------------------------------------------------------------ *)
(* Byte-identity of statistics, all plan engines                        *)
(* ------------------------------------------------------------------ *)

let full_stats_equal msg (a : Engine.stats) (b : Engine.stats) =
  Alcotest.(check int) (msg ^ ": survivors") a.Engine.survivors b.Engine.survivors;
  Alcotest.(check int)
    (msg ^ ": loop_iterations")
    a.Engine.loop_iterations b.Engine.loop_iterations;
  Alcotest.(check (array (triple string string int)))
    (msg ^ ": pruned")
    (Array.map
       (fun (n, c, k) -> (n, Space.constraint_class_name c, k))
       a.Engine.pruned)
    (Array.map
       (fun (n, c, k) -> (n, Space.constraint_class_name c, k))
       b.Engine.pruned)

let engines =
  [
    ("staged", fun plan -> Engine_staged.run plan);
    ("vm", fun plan -> Engine_vm.run_plan plan);
    ("interp", fun plan -> Engine_interp.run_plan plan);
  ]

let gemm_scaled () =
  let open Beast_kernels in
  Gemm.space
    ~settings:
      {
        Gemm.default_settings with
        Gemm.device =
          Beast_gpu.Device.scale ~max_dim:16 ~max_threads:64
            Beast_gpu.Device.tesla_k40c;
      }
    ()

let spaces () =
  [
    ("parity", parity_space ());
    ("triangle", Support.triangle_space ());
    ("mixed", Support.mixed_space ());
    ("gemm", gemm_scaled ());
    ("conv2d", Beast_kernels.Conv2d.space ());
  ]

let test_identity_all_engines () =
  List.iter
    (fun (sname, sp) ->
      let plan = Plan.make_exn sp in
      let propagated = Propagate.pass plan in
      List.iter
        (fun (ename, run) ->
          full_stats_equal
            (Printf.sprintf "%s/%s" sname ename)
            (run plan) (run propagated))
        engines)
    (spaces ())

(* Survivor decode order must also match: the pass keeps live values in
   trip order. *)
let test_on_hit_order () =
  let sp = parity_space () in
  let plan = Plan.make_exn sp in
  let propagated = Propagate.pass plan in
  let collect run_with =
    let acc = ref [] in
    ignore
      (run_with ~on_hit:(fun lookup ->
           match (lookup "x", lookup "y") with
           | Value.Int x, Value.Int y -> acc := (x, y) :: !acc
           | _ -> Alcotest.fail "non-int hit"));
    List.rev !acc
  in
  Alcotest.(check (list (pair int int)))
    "hit order preserved"
    (collect (fun ~on_hit -> Engine_staged.run ~on_hit plan))
    (collect (fun ~on_hit -> Engine_staged.run ~on_hit propagated))

(* Chunk-then-propagate: per-chunk statistics stay byte-identical, and
   the merged chunks equal the sequential unpropagated run. *)
let test_sharded_identity () =
  List.iter
    (fun (sname, sp) ->
      let plan = Plan.make_exn sp in
      let seq = Engine_staged.run plan in
      let n = 3 in
      let chunk_stats =
        List.init n (fun i ->
            let chunk = Plan.chunk_outer plan ~index:i ~of_:n in
            let propagated = Propagate.pass chunk in
            let got = Engine_staged.run propagated in
            full_stats_equal
              (Printf.sprintf "%s chunk %d" sname i)
              (Engine_staged.run chunk) got;
            got)
      in
      let dedup = Plan.depth0_constraints plan in
      let merged_survivors =
        List.fold_left (fun a s -> a + s.Engine.survivors) 0 chunk_stats
      in
      Alcotest.(check int)
        (sname ^ ": merged survivors")
        seq.Engine.survivors merged_survivors;
      Array.iteri
        (fun ci (cname, _, k) ->
          let merged =
            if dedup.(ci) then
              let _, _, k0 = (List.hd chunk_stats).Engine.pruned.(ci) in
              k0
            else
              List.fold_left
                (fun a s ->
                  let _, _, kc = s.Engine.pruned.(ci) in
                  a + kc)
                0 chunk_stats
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: merged %s" sname cname)
            k merged)
        seq.Engine.pruned)
    (spaces ())

(* ------------------------------------------------------------------ *)
(* Provenance: static firings surface without disturbing attribution   *)
(* ------------------------------------------------------------------ *)

let test_provenance_static () =
  let plan = Plan.make_exn (parity_space ()) in
  let propagated = Propagate.pass plan in
  let (_ : Engine.stats), base =
    Provenance.with_collector (fun () -> Engine_staged.run plan)
  in
  let (_ : Engine.stats), prop =
    Provenance.with_collector (fun () -> Engine_staged.run propagated)
  in
  Alcotest.(check int) "unpropagated pv_static" 0 base.Provenance.pv_static;
  (* 5 dead x values, each removing the 3-point y subtree. *)
  Alcotest.(check int) "propagated pv_static" 15 prop.Provenance.pv_static;
  Alcotest.(check bool)
    "same per-constraint removal" true
    (List.for_all2
       (fun (a : Provenance.crow) (b : Provenance.crow) ->
         a.Provenance.pc_name = b.Provenance.pc_name
         && a.Provenance.pc_removed = b.Provenance.pc_removed)
       base.Provenance.pv_constraints prop.Provenance.pv_constraints);
  Alcotest.(check (list int))
    "same depth entries" base.Provenance.pv_depth_entries
    prop.Provenance.pv_depth_entries;
  Alcotest.(check bool)
    "same density cells" true
    (base.Provenance.pv_cells = prop.Provenance.pv_cells)

let () =
  Alcotest.run "propagate"
    [
      ( "intervals",
        [ Alcotest.test_case "arithmetic" `Quick test_interval_arith ] );
      ( "pass",
        [
          Alcotest.test_case "removes dead values" `Quick
            test_pass_removes_dead;
          Alcotest.test_case "no-op without dead values" `Quick
            test_pass_untouched_when_nothing_dead;
        ] );
      ( "identity",
        [
          Alcotest.test_case "all engines, all spaces" `Quick
            test_identity_all_engines;
          Alcotest.test_case "on_hit order" `Quick test_on_hit_order;
          Alcotest.test_case "3-way shard + merge" `Quick
            test_sharded_identity;
        ] );
      ( "provenance",
        [ Alcotest.test_case "static firings" `Quick test_provenance_static ]
      );
    ]
