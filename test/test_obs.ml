(* Tests for the Beast_obs tracing layer: span balance, agreement
   between recorded aggregates and engine statistics across all four
   engines, trace-output well-formedness and the progress reporter. *)

open Beast_core
open Beast_obs

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (no external dependency) for validating the     *)
(* Chrome and JSONL writers. Handles the full value grammar emitted by *)
(* Trace_json: objects, arrays, strings with escapes, numbers, true,   *)
(* false, null.                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if peek () = c then advance ()
      else fail (Printf.sprintf "expected %c, got %c" c (peek ()))
    in
    let literal word value =
      String.iter expect word;
      value
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
            advance ();
            for _ = 1 to 4 do
              (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
              | _ -> fail "bad \\u escape")
            done;
            Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          go ()
        | '\255' -> fail "unterminated string"
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false
      do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((key, v) :: acc)
            | '}' ->
              advance ();
              List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements (v :: acc)
            | ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected %c" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let record f =
  let r = Recorder.create () in
  Obs.set_sink (Recorder.sink r);
  let x = Fun.protect ~finally:Obs.clear_sink f in
  (x, r)

let int_arg name ev =
  match List.assoc_opt name ev.Obs.ev_args with
  | Some (Obs.Int n) -> n
  | _ -> Alcotest.failf "event %s: missing int arg %s" ev.Obs.ev_name name

let engines : (string * (Space.t -> Engine.stats)) list =
  [
    ("interp", fun sp -> Engine_interp.run sp);
    ("interp-naive", fun sp -> Engine_interp.run ~variant:`Naive sp);
    ("vm", fun sp -> Engine_vm.run_space sp);
    ("staged", fun sp -> Engine_staged.run_space sp);
    ("parallel", fun sp -> Engine_parallel.run_space ~domains:3 sp);
  ]

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "positive" true (a > 0);
  Alcotest.(check bool) "monotonic" true (b >= a);
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_s ~since:a >= 0.0);
  Alcotest.(check (float 1e-9)) "unit conversion" 1.5 (Clock.ns_to_s 1_500_000_000)

(* ------------------------------------------------------------------ *)
(* Disabled-path behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_silent () =
  Alcotest.(check bool) "off by default" false (Obs.enabled ());
  Alcotest.(check bool) "not instrumenting" false (Obs.instrumenting ());
  (* Emission helpers must be no-ops, not crashes. *)
  Obs.instant "nobody-listens";
  Obs.counter "nothing" 1.0;
  Obs.with_span "quiet" (fun () -> ())

(* ------------------------------------------------------------------ *)
(* Span balance                                                        *)
(* ------------------------------------------------------------------ *)

let check_spans_balanced events =
  (* Per domain, Begin/End events must nest like parentheses. The global
     stream is time-sorted; per-domain order is preserved because each
     domain's timestamps are non-decreasing. *)
  let stacks = Hashtbl.create 4 in
  Array.iter
    (fun ev ->
      let stack =
        match Hashtbl.find_opt stacks ev.Obs.ev_dom with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace stacks ev.Obs.ev_dom s;
          s
      in
      match ev.Obs.ev_kind with
      | Obs.Begin -> stack := ev.Obs.ev_name :: !stack
      | Obs.End -> (
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "span end matches begin" top ev.Obs.ev_name;
          stack := rest
        | [] -> Alcotest.failf "unmatched end of %s" ev.Obs.ev_name)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun dom stack ->
      Alcotest.(check (list string))
        (Printf.sprintf "domain %d stack empty" dom)
        [] !stack)
    stacks

let test_span_balance () =
  let sp = Support.triangle_space () in
  List.iter
    (fun (name, run) ->
      let _, r = record (fun () -> run sp) in
      let events = Recorder.events r in
      Alcotest.(check bool)
        (name ^ " recorded something")
        true
        (Array.length events > 0);
      check_spans_balanced events)
    engines

let test_nested_spans () =
  let _, r =
    record (fun () ->
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner" (fun () -> Obs.instant "leaf")))
  in
  let events = Recorder.events r in
  check_spans_balanced events;
  Alcotest.(check (list string))
    "order" [ "outer"; "inner"; "leaf"; "inner"; "outer" ]
    (Array.to_list (Array.map (fun ev -> ev.Obs.ev_name) events));
  (* A raising computation still closes its span. *)
  let _, r =
    record (fun () ->
        try Obs.with_span "throws" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  check_spans_balanced (Recorder.events r)

(* ------------------------------------------------------------------ *)
(* Recorded aggregates agree with engine statistics                    *)
(* ------------------------------------------------------------------ *)

let test_aggregates_match_stats () =
  let sp = Support.triangle_space () in
  List.iter
    (fun (name, run) ->
      let stats, r = record (fun () -> run sp) in
      let events = Recorder.events r in
      (* Per-constraint Complete spans: summed firings = stats.pruned
         (triangle_space has no depth-0 constraints, so the parallel
         engine's per-domain aggregates sum cleanly). *)
      let fired = Hashtbl.create 4 in
      let level_entries = ref 0 in
      Array.iter
        (fun ev ->
          match ev.Obs.ev_kind with
          | Obs.Complete _ when ev.Obs.ev_cat = "constraint" ->
            let prev =
              Option.value ~default:0 (Hashtbl.find_opt fired ev.Obs.ev_name)
            in
            Hashtbl.replace fired ev.Obs.ev_name (prev + int_arg "fired" ev)
          | Obs.Complete _ when ev.Obs.ev_cat = "level" ->
            level_entries := !level_entries + int_arg "entries" ev
          | _ -> ())
        events;
      Array.iter
        (fun (cname, _, k) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s firings" name cname)
            k
            (Option.value ~default:(-1) (Hashtbl.find_opt fired cname)))
        stats.Engine.pruned;
      Alcotest.(check int)
        (Printf.sprintf "%s: level entries sum to loop iterations" name)
        stats.Engine.loop_iterations !level_entries)
    engines

let test_cross_engine_agreement_while_traced () =
  (* Instrumented code paths must compute the same statistics as the
     uninstrumented ones the rest of the suite exercises. *)
  let sp = Support.mixed_space () in
  let reference = Engine_staged.run_space sp in
  List.iter
    (fun (name, run) ->
      let stats, _ = record (fun () -> run sp) in
      Alcotest.(check int)
        (name ^ " survivors") reference.Engine.survivors stats.Engine.survivors)
    engines

(* ------------------------------------------------------------------ *)
(* Trace output formats                                                *)
(* ------------------------------------------------------------------ *)

let recorded_sweep () =
  let sp = Support.triangle_space () in
  let _, r = record (fun () -> Engine_parallel.run_space ~domains:2 sp) in
  r

let test_chrome_well_formed () =
  let r = recorded_sweep () in
  let events = Recorder.events r in
  let doc =
    match Json.parse (Sink_chrome.render ~start_ns:(Recorder.start_ns r) events) with
    | doc -> doc
    | exception Json.Bad msg -> Alcotest.failf "invalid JSON: %s" msg
  in
  let trace_events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  (* Every real event appears, plus one thread_name metadata row per
     domain and one process_name row. *)
  Alcotest.(check int) "event count"
    (Array.length events + List.length (Recorder.domains r) + 1)
    (List.length trace_events);
  (match
     List.find_opt
       (fun ev -> Json.member "name" ev = Some (Json.Str "process_name"))
       trace_events
   with
  | Some ev ->
    Alcotest.(check bool) "process_name is metadata" true
      (Json.member "ph" ev = Some (Json.Str "M"))
  | None -> Alcotest.fail "missing process_name metadata event");
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.Str ("B" | "E" | "X" | "i" | "C" | "M")) -> ()
      | _ -> Alcotest.fail "bad or missing ph");
      (match Json.member "name" ev with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "missing name");
      (match Json.member "pid" ev with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "missing pid");
      match Json.member "ts" ev with
      | Some (Json.Num ts) ->
        Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
      | None -> () (* metadata events carry no timestamp *)
      | Some _ -> Alcotest.fail "non-numeric ts")
    trace_events;
  (* Per-constraint aggregates survive the round trip. *)
  let names =
    List.filter_map
      (fun ev ->
        match Json.member "name" ev with
        | Some (Json.Str s) -> Some s
        | _ -> None)
      trace_events
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [ "odd_sum"; "big_x"; "sweep:parallel"; "plan:make" ]

let test_jsonl_well_formed () =
  let r = recorded_sweep () in
  let buf = Buffer.create 4096 in
  Array.iter (Sink_jsonl.write_event buf) (Recorder.events r);
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "one line per event" (Recorder.event_count r)
    (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ as obj ->
        (match Json.member "name" obj, Json.member "kind" obj with
        | Some (Json.Str _), Some (Json.Str _) -> ()
        | _ -> Alcotest.fail "line missing name/kind")
      | _ -> Alcotest.fail "line is not an object"
      | exception Json.Bad msg -> Alcotest.failf "invalid JSONL line: %s" msg)
    lines

let test_jsonl_parse_roundtrip () =
  (* Sink_jsonl.parse_line must reconstruct exactly what write_event
     emitted: same kind, timestamps, domain and args. This is what
     `beast merge --traces` relies on to stitch shard traces. *)
  let r = recorded_sweep () in
  Array.iter
    (fun ev ->
      let buf = Buffer.create 256 in
      Sink_jsonl.write_event buf ev;
      let line = String.trim (Buffer.contents buf) in
      match Sink_jsonl.parse_line line with
      | Error msg -> Alcotest.failf "parse_line failed: %s on %s" msg line
      | Ok ev' ->
        if ev <> ev' then
          Alcotest.failf "event did not round-trip: %s" line)
    (Recorder.events r);
  (match Sink_jsonl.parse_line "{\"kind\": \"wat\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted")

let test_summary_mentions_constraints () =
  let r = recorded_sweep () in
  let text = Sink_summary.to_string (Recorder.events r) in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " mentioned") true (contains sub))
    [ "odd_sum"; "big_x"; "sweep:parallel"; "loop levels"; "constraints" ]

(* ------------------------------------------------------------------ *)
(* Recorder merge ordering under concurrent emission                   *)
(* ------------------------------------------------------------------ *)

let test_recorder_merge_ordering () =
  (* Several domains emit concurrently; the merged stream must contain
     every event, be globally time-sorted, and preserve each domain's
     own emission order. *)
  let n_domains = 4 and per_domain = 250 in
  let (), r =
    record (fun () ->
        let workers =
          List.init n_domains (fun w ->
              Domain.spawn (fun () ->
                  for i = 0 to per_domain - 1 do
                    Obs.instant
                      ~args:[ ("seq", Obs.Int i); ("worker", Obs.Int w) ]
                      "tick"
                  done))
        in
        List.iter Domain.join workers)
  in
  let events = Recorder.events r in
  Alcotest.(check int) "no events dropped" (n_domains * per_domain)
    (Array.length events);
  let last_ts = ref min_int in
  let last_seq = Hashtbl.create 8 in
  Array.iter
    (fun ev ->
      Alcotest.(check bool) "globally time-sorted" true
        (ev.Obs.ev_ts_ns >= !last_ts);
      last_ts := ev.Obs.ev_ts_ns;
      let seq = int_arg "seq" ev in
      let prev =
        Option.value ~default:(-1) (Hashtbl.find_opt last_seq ev.Obs.ev_dom)
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d order preserved" ev.Obs.ev_dom)
        true (seq = prev + 1);
      Hashtbl.replace last_seq ev.Obs.ev_dom seq)
    events;
  Alcotest.(check int) "all domains present" n_domains
    (Hashtbl.length last_seq)

(* ------------------------------------------------------------------ *)
(* Progress reporting                                                  *)
(* ------------------------------------------------------------------ *)

let test_progress_hook () =
  let last = ref (0, 0, 0.0) in
  Obs.set_progress (fun ~dom:_ ~points ~survivors ~frac ->
      last := (points, survivors, frac));
  Alcotest.(check bool) "instrumenting via progress" true (Obs.instrumenting ());
  let stats =
    Fun.protect ~finally:Obs.clear_progress (fun () ->
        Engine_staged.run_space (Support.triangle_space ()))
  in
  let points, survivors, frac = !last in
  Alcotest.(check int) "final points" stats.Engine.loop_iterations points;
  Alcotest.(check int) "final survivors" stats.Engine.survivors survivors;
  Alcotest.(check (float 1e-9)) "final frac" 1.0 frac;
  Alcotest.(check bool) "hook cleared" false (Obs.progress_enabled ())

let test_progress_reporter_output () =
  let file = Filename.temp_file "beast_obs" ".progress" in
  let oc = open_out file in
  let p = Progress.create ~interval_s:0.0 ~out:oc () in
  Progress.install p;
  ignore
    (Fun.protect
       ~finally:(fun () -> Progress.finish p)
       (fun () -> Engine_staged.run_space (Support.triangle_space ())));
  close_out oc;
  let ic = open_in file in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  Alcotest.(check bool) "wrote a status line" true (len > 0);
  Alcotest.(check bool) "mentions points" true
    (let sub = "points" in
     let n = String.length content and m = String.length sub in
     let rec go i = i + m <= n && (String.sub content i m = sub || go (i + 1)) in
     go 0);
  Alcotest.(check bool) "terminated by newline" true
    (content.[String.length content - 1] = '\n');
  (* The channel is a regular file, not a tty: the reporter must emit
     plain newline-terminated lines with no carriage-return redraws. *)
  Alcotest.(check bool) "no CR redraws when not a tty" false
    (String.contains content '\r')

let test_progress_tty_redraw () =
  (* Forcing tty mode turns on in-place redraw: lines start with \r and
     only `finish` appends the final newline. *)
  let file = Filename.temp_file "beast_obs" ".progress" in
  let oc = open_out file in
  let p = Progress.create ~interval_s:0.0 ~out:oc ~tty:true () in
  Progress.install p;
  ignore
    (Fun.protect
       ~finally:(fun () -> Progress.finish p)
       (fun () -> Engine_staged.run_space (Support.triangle_space ())));
  close_out oc;
  let ic = open_in file in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  Alcotest.(check bool) "uses CR redraws" true (String.contains content '\r');
  Alcotest.(check bool) "finish adds trailing newline" true
    (content.[String.length content - 1] = '\n')

(* ------------------------------------------------------------------ *)
(* Jsonx \uXXXX decoding: escapes above 0x7f become UTF-8 bytes, with  *)
(* surrogate pairs combined into the astral code point.                *)
(* ------------------------------------------------------------------ *)

let jsonx_str what text =
  match Jsonx.parse text with
  | Ok (Jsonx.Str s) -> s
  | Ok _ -> Alcotest.failf "%s: parsed to a non-string" what
  | Error msg -> Alcotest.failf "%s: %s" what msg

let test_jsonx_unicode_escapes () =
  Alcotest.(check string) "ascii escape" "A" (jsonx_str "u0041" {|"A"|});
  Alcotest.(check string) "2-byte utf-8 (e acute)" "caf\xc3\xa9"
    (jsonx_str "u00e9" {|"caf\u00e9"|});
  Alcotest.(check string) "3-byte utf-8 (euro sign)" "\xe2\x82\xac"
    (jsonx_str "u20ac" {|"\u20ac"|});
  Alcotest.(check string) "4-byte utf-8 via surrogate pair"
    "\xf0\x9f\x98\x80"
    (jsonx_str "smiley" {|"\ud83d\ude00"|});
  Alcotest.(check string) "text around the pair survives" "a\xf0\x9f\x98\x80b"
    (jsonx_str "embedded" {|"a\ud83d\ude00b"|});
  (* Case-insensitive hex, as in the JSON grammar. *)
  Alcotest.(check string) "uppercase hex" "\xe2\x82\xac"
    (jsonx_str "u20AC" {|"\u20AC"|})

let test_jsonx_lone_surrogates_rejected () =
  let rejects what text =
    match Jsonx.parse text with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  rejects "lone high surrogate" {|"\ud83d"|};
  rejects "high surrogate chased by text" {|"\ud83dxy"|};
  rejects "high surrogate chased by non-low escape" {|"\ud83dA"|};
  rejects "lone low surrogate" {|"\ude00"|};
  rejects "truncated escape" {|"\u00"|};
  rejects "non-hex escape" {|"\uzzzz"|}

let test_jsonx_unicode_round_trips_jsonl () =
  (* An event label that needs every escape class must survive
     write_event → parse_line byte-for-byte. *)
  let name = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80" in
  let ev =
    {
      Obs.ev_name = name;
      ev_cat = "test";
      ev_ts_ns = 1;
      ev_dom = 0;
      ev_kind = Obs.Instant;
      ev_args = [];
    }
  in
  let buf = Buffer.create 64 in
  Sink_jsonl.write_event buf ev;
  match Sink_jsonl.parse_line (String.trim (Buffer.contents buf)) with
  | Error msg -> Alcotest.failf "parse_line: %s" msg
  | Ok ev' -> Alcotest.(check string) "name round trips" name ev'.Obs.ev_name

let test_jsonx_numeric_edges () =
  let value what text =
    match Jsonx.parse text with
    | Ok v -> v
    | Error msg -> Alcotest.failf "%s: %s" what msg
  in
  let rejects what text =
    match Jsonx.parse text with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  (* Exponent notation always reads as a float, even when integral. *)
  (match value "1e3" "1e3" with
  | Jsonx.Float f -> Alcotest.(check (float 0.0)) "1e3" 1000.0 f
  | _ -> Alcotest.fail "1e3: expected Float");
  (match value "0e3" "0e3" with
  | Jsonx.Float f -> Alcotest.(check (float 0.0)) "0e3" 0.0 f
  | _ -> Alcotest.fail "0e3: expected Float");
  (* A literal beyond OCaml's 63-bit int falls back to Float instead of
     erroring out (9223372036854775807 = Int64 max > OCaml max_int). *)
  (match value "int64 max" "9223372036854775807" with
  | Jsonx.Float f ->
    Alcotest.(check (float 0.0)) "int64 max" 9.223372036854775807e18 f
  | _ -> Alcotest.fail "int64 max: expected Float fallback");
  (* OCaml's own max_int still reads exactly as an Int. *)
  (match value "ocaml max_int" (string_of_int max_int) with
  | Jsonx.Int k -> Alcotest.(check int) "ocaml max_int" max_int k
  | _ -> Alcotest.fail "ocaml max_int: expected Int");
  (match value "-0" "-0" with
  | Jsonx.Int 0 -> ()
  | _ -> Alcotest.fail "-0: expected Int 0");
  (match value "0" "0" with
  | Jsonx.Int 0 -> ()
  | _ -> Alcotest.fail "0: expected Int 0");
  (match value "0.5" "0.5" with
  | Jsonx.Float f -> Alcotest.(check (float 0.0)) "0.5" 0.5 f
  | _ -> Alcotest.fail "0.5: expected Float");
  (* The JSON grammar forbids leading zeros and bare signs. *)
  rejects "01" "01";
  rejects "-012" "-012";
  rejects "00" "00";
  rejects "bare minus" "-";
  rejects "minus-dot" "-.5"

let test_jsonx_writer_fixed_point () =
  (* The writer must be a fixed point of the parser: re-parsing emitted
     text and writing it again reproduces the same bytes. This is what
     makes archive-record validation an exact comparison. *)
  let check_fp what v =
    let s = Jsonx.to_string v in
    match Jsonx.parse s with
    | Error msg -> Alcotest.failf "%s: reparse failed: %s" what msg
    | Ok v' -> Alcotest.(check string) what s (Jsonx.to_string v')
  in
  check_fp "mixed object"
    (Jsonx.Obj
       [
         ("a", Jsonx.Int 42);
         ("b", Jsonx.Float 0.1);
         ("c", Jsonx.Float 99.97);
         ("d", Jsonx.Float 1e20);
         ("e", Jsonx.Float (-0.0));
         ("f", Jsonx.Arr [ Jsonx.Bool true; Jsonx.Null; Jsonx.Str "x\n" ]);
       ]);
  check_fp "integral float" (Jsonx.Float 1000.0);
  check_fp "tiny float" (Jsonx.Float 1e-300);
  (* Non-finite values have no JSON spelling and normalize to null. *)
  Alcotest.(check string) "nan is null" "null" (Jsonx.to_string (Jsonx.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Jsonx.to_string (Jsonx.Float Float.infinity));
  Alcotest.(check string) "neg zero is 0" "0" (Jsonx.to_string (Jsonx.Float (-0.0)))

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic ns" `Quick test_clock ] );
      ( "spans",
        [
          Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
          Alcotest.test_case "balance across engines" `Quick test_span_balance;
          Alcotest.test_case "nesting" `Quick test_nested_spans;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "match engine stats" `Quick
            test_aggregates_match_stats;
          Alcotest.test_case "traced engines agree" `Quick
            test_cross_engine_agreement_while_traced;
        ] );
      ( "formats",
        [
          Alcotest.test_case "chrome JSON" `Quick test_chrome_well_formed;
          Alcotest.test_case "jsonl" `Quick test_jsonl_well_formed;
          Alcotest.test_case "jsonl parse roundtrip" `Quick
            test_jsonl_parse_roundtrip;
          Alcotest.test_case "summary" `Quick test_summary_mentions_constraints;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "multi-domain merge ordering" `Quick
            test_recorder_merge_ordering;
        ] );
      ( "progress",
        [
          Alcotest.test_case "hook totals" `Quick test_progress_hook;
          Alcotest.test_case "reporter output" `Quick
            test_progress_reporter_output;
          Alcotest.test_case "tty redraw mode" `Quick test_progress_tty_redraw;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "unicode escapes decode to utf-8" `Quick
            test_jsonx_unicode_escapes;
          Alcotest.test_case "lone surrogates rejected" `Quick
            test_jsonx_lone_surrogates_rejected;
          Alcotest.test_case "unicode survives a jsonl round trip" `Quick
            test_jsonx_unicode_round_trips_jsonl;
          Alcotest.test_case "numeric edge cases" `Quick
            test_jsonx_numeric_edges;
          Alcotest.test_case "writer is a parser fixed point" `Quick
            test_jsonx_writer_fixed_point;
        ] );
    ]
