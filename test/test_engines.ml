open Beast_core

let engines_on sp =
  let plan = Plan.make_exn sp in
  [
    ("interp-naive", (Engine_interp.run ~variant:`Naive sp).Engine.survivors);
    ("interp-hoisted", (Engine_interp.run ~variant:`Hoisted sp).Engine.survivors);
    ("vm", (Engine_vm.run_plan plan).Engine.survivors);
    ("staged", (Engine_staged.run plan).Engine.survivors);
    ("parallel-1", (Engine_parallel.run ~domains:1 plan).Engine.survivors);
    ("parallel-3", (Engine_parallel.run ~domains:3 plan).Engine.survivors);
  ]

let check_all_engines sp =
  let expected = Support.survivor_count sp in
  List.iter
    (fun (name, got) ->
      Alcotest.(check int) (name ^ " survivors") expected got)
    (engines_on sp)

let test_triangle_agreement () = check_all_engines (Support.triangle_space ())
let test_mixed_agreement () = check_all_engines (Support.mixed_space ())

let test_triangle_exact () =
  (* x in 0..7, y in x..7, prune odd x+y and x>5: count by hand. *)
  let count = ref 0 in
  for x = 0 to 7 do
    for y = x to 7 do
      if (x + y) mod 2 = 0 && x <= 5 then incr count
    done
  done;
  let s = Engine_staged.run_space (Support.triangle_space ()) in
  Alcotest.(check int) "hand count" !count s.Engine.survivors

let test_stats_pruned_counts () =
  (* big_x depends only on x, so hoisting lifts it to depth 1: it fires
     once per rejected x (2 times) and the y loop never opens there.
     odd_sum sits at depth 2 and fires per surviving (x, y) pair with an
     odd sum. *)
  let s = Engine_staged.run_space (Support.triangle_space ()) in
  let fired name =
    let _, _, k =
      List.find (fun (n, _, _) -> n = name) (Array.to_list s.Engine.pruned)
    in
    k
  in
  let odd = ref 0 in
  for x = 0 to 5 do
    for y = x to 7 do
      if (x + y) mod 2 = 1 then incr odd
    done
  done;
  Alcotest.(check int) "big_x fired once per pruned subtree" 2 (fired "big_x");
  Alcotest.(check int) "odd_sum fired" !odd (fired "odd_sum");
  (* x loop: 8 entries; y loop opens only for x <= 5: 8+7+6+5+4+3 = 33. *)
  Alcotest.(check int) "loop iterations" (8 + 33) s.Engine.loop_iterations

let test_vm_staged_stats_identical () =
  let plan = Plan.make_exn (Support.mixed_space ()) in
  Alcotest.check Support.stats_testable "vm = staged"
    (Engine_staged.run plan) (Engine_vm.run_plan plan)

let test_parallel_stats_match_sequential () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let seq = Engine_staged.run plan in
  let par = Engine_parallel.run ~domains:4 plan in
  Alcotest.(check int) "survivors" seq.Engine.survivors par.Engine.survivors;
  Alcotest.(check int) "pruned total" (Engine.total_pruned seq)
    (Engine.total_pruned par)

let test_work_stealing_matches_staged_on_gemm () =
  (* The acceptance bar for the chunked scheduler: identical totals and
     per-constraint pruned counts to the sequential staged sweep on the
     real GEMM space, not just on toy nests. *)
  let device =
    Beast_gpu.Device.scale ~max_dim:16 ~max_threads:64
      Beast_gpu.Device.tesla_k40c
  in
  let settings = { Beast_kernels.Gemm.default_settings with device } in
  let plan = Plan.make_exn (Beast_kernels.Gemm.space ~settings ()) in
  let seq = Engine_staged.run plan in
  List.iter
    (fun domains ->
      Alcotest.check Support.stats_testable
        (Printf.sprintf "stealing domains=%d" domains)
        seq
        (Engine_parallel.run ~domains plan))
    [ 2; 3; 4 ];
  Alcotest.check Support.stats_testable "static split" seq
    (Engine_parallel.run_static ~domains:4 plan)

let test_parallel_more_domains_than_trip_count () =
  (* 16 domains over an outer loop with 8 values: most static slices and
     most chunks are empty; stats must still match the sequential run,
     depth-0 counters included. *)
  let sp = Support.triangle_space () in
  let open Expr.Infix in
  Space.constrain sp ~cls:Space.Soft "d0_never" (Expr.int 9 <: Expr.int 8);
  let plan = Plan.make_exn sp in
  let seq = Engine_staged.run plan in
  Alcotest.check Support.stats_testable "stealing" seq
    (Engine_parallel.run ~domains:16 plan);
  Alcotest.check Support.stats_testable "static" seq
    (Engine_parallel.run_static ~domains:16 plan)

let test_parallel_firing_depth0_deduped () =
  (* A depth-0 constraint that fires runs once per chunk/slice; the
     merged count must stay 1, as sequentially. *)
  let sp = Support.triangle_space () in
  let open Expr.Infix in
  Space.constrain sp ~cls:Space.Hard "d0_always" (Expr.int 8 <: Expr.int 9);
  let plan = Plan.make_exn sp in
  let seq = Engine_staged.run plan in
  Alcotest.(check int) "sequential survivors" 0 seq.Engine.survivors;
  Alcotest.check Support.stats_testable "stealing" seq
    (Engine_parallel.run ~domains:4 plan);
  Alcotest.check Support.stats_testable "static" seq
    (Engine_parallel.run_static ~domains:4 plan)

let test_on_hit_receives_bindings () =
  let acc = ref [] in
  let on_hit lookup =
    acc := (Value.to_int (lookup "x"), Value.to_int (lookup "y"),
            Value.to_int (lookup "s")) :: !acc
  in
  ignore (Engine_staged.run_space ~on_hit (Support.triangle_space ()));
  Alcotest.(check bool) "every hit satisfies constraints" true
    (List.for_all (fun (x, y, s) -> s = x + y && s mod 2 = 0 && x <= 5) !acc);
  let expected = Support.survivor_count (Support.triangle_space ()) in
  Alcotest.(check int) "hit count" expected (List.length !acc)

let test_on_hit_matches_brute_force () =
  let sp = Support.mixed_space () in
  let expected =
    List.map
      (fun bindings -> List.map (fun (n, v) -> (n, Value.to_int v)) bindings)
      (Support.brute_force sp)
  in
  let plan = Plan.make_exn sp in
  let got = ref [] in
  let on_hit lookup =
    got :=
      List.map
        (fun n -> (n, Value.to_int (lookup n)))
        plan.Plan.iter_order
      :: !got
  in
  ignore (Engine_staged.run ~on_hit plan);
  let norm l = List.sort compare l in
  Alcotest.(check bool) "same survivor set" true
    (norm expected = norm (List.rev !got))

let test_empty_space () =
  (* A space with no iterators has exactly one (empty) point. *)
  let sp = Space.create () in
  let s = Engine_staged.run_space sp in
  Alcotest.(check int) "one point" 1 s.Engine.survivors;
  (* And a depth-0 constraint can prune it. *)
  let sp = Space.create () in
  Space.constrain sp "never" (Expr.bool true);
  let s = Engine_staged.run_space sp in
  Alcotest.(check int) "zero points" 0 s.Engine.survivors

let test_empty_iterator () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 5 5);
  Space.iterator sp "y" (Iter.range_i 0 10);
  let s = Engine_staged.run_space sp in
  Alcotest.(check int) "no points" 0 s.Engine.survivors;
  Alcotest.(check int) "outer loop never iterates" 0 s.Engine.loop_iterations

let test_division_by_zero_propagates () =
  let open Expr.Infix in
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 3);
  Space.derived sp "bad" (Expr.int 1 /: Expr.var "x");
  Alcotest.check_raises "staged raises" Division_by_zero (fun () ->
      ignore (Engine_staged.run_space sp));
  Alcotest.check_raises "vm raises" Division_by_zero (fun () ->
      ignore (Engine_vm.run_space sp))

let test_dynamic_algebra_iterators () =
  (* Union/intersection/filter with iterator-dependent operands exercise
     the CDyn lowering in every engine. *)
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 1 6);
  Space.iterator sp "u"
    (Iter.union (Iter.upto (Expr.var "x")) (Iter.ints [ 7; 9 ]));
  Space.iterator sp "f"
    (Iter.filter
       (fun v -> Value.to_int v mod 2 = 0)
       (Iter.concat (Iter.upto (Expr.var "u")) (Iter.ints [ 10 ])));
  check_all_engines sp

let test_negative_values_everywhere () =
  let open Expr.Infix in
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i (-5) 6);
  Space.iterator sp "y" (Iter.range ~step:(Expr.int (-2)) (Expr.int 5) (Expr.var "x"));
  Space.derived sp "d" (Expr.var "x" *: Expr.var "y");
  Space.constrain sp "negprod" (Expr.var "d" <: Expr.int 0);
  check_all_engines sp

let test_vm_disassembly () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let prog = Engine_vm.compile plan in
  let text = Engine_vm.disassemble prog in
  Alcotest.(check bool) "has instructions" true
    (Engine_vm.instruction_count prog > 10);
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prune instruction" true (contains "prune");
  Alcotest.(check bool) "hit instruction" true (contains "hit");
  Alcotest.(check bool) "trip instruction" true (contains "trip")

let test_deep_nest () =
  (* Eight nested dependent loops; checks engines handle depth. *)
  let sp = Space.create () in
  Space.iterator sp "x0" (Iter.range_i 1 3);
  for i = 1 to 7 do
    Space.iterator sp
      (Printf.sprintf "x%d" i)
      (Iter.range (Expr.int 0) (Expr.var (Printf.sprintf "x%d" (i - 1))))
  done;
  check_all_engines sp

(* Property: random small spaces agree across engines and match the
   brute-force reference. *)
let gen_space =
  let open QCheck.Gen in
  let gen_bound prev =
    match prev with
    | [] -> map (fun k -> Expr.int (1 + k)) (int_range 0 4)
    | _ ->
      oneof
        [
          map (fun k -> Expr.int (1 + k)) (int_range 0 4);
          map
            (fun i -> Expr.var (List.nth prev (i mod List.length prev)))
            (int_range 0 10);
        ]
  in
  let gen_expr_over names =
    let open Expr.Infix in
    oneofl names >>= fun a ->
    oneofl names >>= fun b ->
    oneofl
      [
        Expr.var a +: Expr.var b;
        Expr.var a *: Expr.int 2;
        Expr.max_ (Expr.var a) (Expr.var b);
        (Expr.var a %: Expr.int 3) =: Expr.int 0;
        Expr.var a <=: Expr.var b;
      ]
  in
  int_range 1 4 >>= fun n_iters ->
  let rec build_iters i prev acc =
    if i = n_iters then return (List.rev acc)
    else
      gen_bound prev >>= fun stop ->
      let name = Printf.sprintf "i%d" i in
      build_iters (i + 1) (name :: prev) ((name, stop) :: acc)
  in
  build_iters 0 [] [] >>= fun iters ->
  let names = List.map fst iters in
  gen_expr_over names >>= fun dv ->
  int_range 0 2 >>= fun n_cons ->
  list_repeat n_cons (gen_expr_over ("d0" :: names)) >>= fun cons ->
  return (iters, dv, cons)

let space_of (iters, dv, cons) =
  let sp = Space.create () in
  List.iter (fun (n, stop) -> Space.iterator sp n (Iter.range (Expr.int 0) stop)) iters;
  Space.derived sp "d0" dv;
  List.iteri
    (fun i e -> Space.constrain sp (Printf.sprintf "c%d" i) e)
    cons;
  sp

let arb_space =
  QCheck.make
    ~print:(fun (iters, dv, cons) ->
      let b = Buffer.create 128 in
      List.iter
        (fun (n, e) -> Buffer.add_string b (Printf.sprintf "%s in 0..%s; " n (Expr.to_string e)))
        iters;
      Buffer.add_string b ("d0 = " ^ Expr.to_string dv ^ "; ");
      List.iteri
        (fun i e ->
          Buffer.add_string b (Printf.sprintf "c%d: %s; " i (Expr.to_string e)))
        cons;
      Buffer.contents b)
    gen_space

let prop_engines_agree =
  QCheck.Test.make ~name:"all engines match brute force" ~count:200 arb_space
    (fun descr ->
      let expected = Support.survivor_count (space_of descr) in
      List.for_all (fun (_, got) -> got = expected) (engines_on (space_of descr)))

let prop_vm_staged_stats =
  QCheck.Test.make ~name:"vm and staged produce identical stats" ~count:200
    arb_space (fun descr ->
      let plan = Plan.make_exn (space_of descr) in
      let a = Engine_staged.run plan and b = Engine_vm.run_plan plan in
      a = b)

let prop_hoisting_preserves_semantics =
  QCheck.Test.make ~name:"hoisting never changes the survivor set" ~count:150
    arb_space (fun descr ->
      let sp = space_of descr in
      let hoisted = Engine_staged.run (Plan.make_exn ~hoist:true sp) in
      let flat = Engine_staged.run (Plan.make_exn ~hoist:false sp) in
      hoisted.Engine.survivors = flat.Engine.survivors)

let prop_constraint_subsets_monotone =
  QCheck.Test.make ~name:"removing constraints never removes survivors"
    ~count:150 arb_space (fun descr ->
      let sp = space_of descr in
      let all = (Engine_staged.run_space sp).Engine.survivors in
      let none =
        (Engine_staged.run_space (Space.filter_constraints sp ~keep:(fun _ -> false)))
          .Engine.survivors
      in
      none >= all)

let prop_slices_partition =
  QCheck.Test.make ~name:"parallel slices partition the space" ~count:100
    arb_space (fun descr ->
      let plan = Plan.make_exn (space_of descr) in
      let full = (Engine_staged.run plan).Engine.survivors in
      let parts =
        List.init 4 (fun index ->
            (Engine_staged.run (Plan.slice_outer plan ~index ~of_:4))
              .Engine.survivors)
      in
      full = List.fold_left ( + ) 0 parts)

let prop_chunks_partition =
  QCheck.Test.make ~name:"outer chunks partition the space" ~count:100
    arb_space (fun descr ->
      let plan = Plan.make_exn (space_of descr) in
      let full = (Engine_staged.run plan).Engine.survivors in
      let parts =
        List.init 5 (fun index ->
            (Engine_staged.run (Plan.chunk_outer plan ~index ~of_:5))
              .Engine.survivors)
      in
      full = List.fold_left ( + ) 0 parts)

let prop_work_stealing_matches_staged =
  QCheck.Test.make ~name:"work-stealing sweep reproduces staged stats"
    ~count:30 arb_space (fun descr ->
      let plan = Plan.make_exn (space_of descr) in
      Engine_staged.run plan = Engine_parallel.run ~domains:3 plan)

(* ---- Engine registry: name-keyed lookup behind Engine_intf.S ---- *)

let find_exn spec =
  match Engine_registry.find spec with
  | Ok m -> m
  | Error msg -> Alcotest.failf "find %S: %s" spec msg

let test_registry_resolves_all_names () =
  List.iter
    (fun (spec, expected_name) ->
      let (module E : Engine_intf.S) = find_exn spec in
      Alcotest.(check string) spec expected_name E.name)
    [
      ("interp-naive", "interp-naive");
      ("interp", "interp");
      ("vm", "vm");
      ("staged", "staged");
      ("parallel", Printf.sprintf "parallel-%d" Engine_registry.default_parallel_domains);
      ("parallel:7", "parallel-7");
    ]

let test_registry_rejects_bad_specs () =
  List.iter
    (fun spec ->
      match Engine_registry.find spec with
      | Ok (module E : Engine_intf.S) ->
        Alcotest.failf "%S resolved to %s" spec E.name
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error names the choices (got %S)" spec msg)
          true
          (String.length msg > 0))
    [ ""; "jit"; "parallel:0"; "parallel:-2"; "parallel:x"; "staged:2"; "interp:" ]

let test_registry_engines_agree () =
  let sp = Support.triangle_space () in
  let expected = Support.survivor_count sp in
  List.iter
    (fun spec ->
      let (module E : Engine_intf.S) = find_exn spec in
      Alcotest.(check int)
        (E.name ^ " survivors via registry")
        expected
        (E.run (Engine_intf.Space sp)).Engine.survivors)
    [ "interp-naive"; "interp"; "vm"; "staged"; "parallel:3" ]

let test_registry_catalog_capabilities () =
  let entry spec =
    match Engine_registry.entry_of spec with
    | Some e -> e
    | None -> Alcotest.failf "%S has no catalog entry" spec
  in
  let check spec ~propagate ~opaque ~resumable =
    let e = entry spec in
    Alcotest.(check bool)
      (spec ^ " propagate default")
      propagate e.Engine_registry.e_propagate_default;
    Alcotest.(check bool) (spec ^ " opaque") opaque e.Engine_registry.e_opaque;
    Alcotest.(check bool)
      (spec ^ " resumable")
      resumable e.Engine_registry.e_resumable
  in
  check "interp-naive" ~propagate:false ~opaque:true ~resumable:false;
  check "interp" ~propagate:true ~opaque:true ~resumable:false;
  check "vm" ~propagate:true ~opaque:true ~resumable:false;
  check "staged" ~propagate:true ~opaque:true ~resumable:false;
  check "parallel:8" ~propagate:true ~opaque:true ~resumable:true;
  check "parallel-8" ~propagate:true ~opaque:true ~resumable:true;
  check "native" ~propagate:true ~opaque:false ~resumable:false;
  Alcotest.(check bool) "unknown spec" true (Engine_registry.entry_of "jit" = None);
  (* names derives from the catalog, so listing and lookup can't drift *)
  Alcotest.(check (list string))
    "names = catalog specs"
    (List.map (fun e -> e.Engine_registry.e_spec) Engine_registry.catalog)
    Engine_registry.names

let test_registry_plan_target () =
  (* Every engine executes a handed-in plan as given — including
     interp-naive, whose naive cost model only applies to spaces it
     plans itself. *)
  let sp = Support.triangle_space () in
  let plan = Plan.make_exn sp in
  let expected = Engine_staged.run plan in
  List.iter
    (fun spec ->
      let (module E : Engine_intf.S) = find_exn spec in
      Alcotest.check Support.stats_testable
        (E.name ^ " plan target = staged")
        expected
        (E.run (Engine_intf.Plan plan)))
    [ "interp-naive"; "interp"; "vm"; "staged"; "parallel:2" ]

let test_registry_resumable_only_parallel () =
  List.iter
    (fun (spec, expected) ->
      let (module E : Engine_intf.S) = find_exn spec in
      Alcotest.(check bool) (spec ^ " resumable") expected
        (Option.is_some E.resumable))
    [
      ("interp-naive", false);
      ("interp", false);
      ("vm", false);
      ("staged", false);
      ("parallel:2", true);
    ]

let test_registry_resumable_runs () =
  let (module E : Engine_intf.S) = find_exn "parallel:3" in
  let resumable = Option.get E.resumable in
  let plan = Plan.make_exn (Support.triangle_space ()) in
  match resumable plan with
  | Engine_intf.Finished stats ->
    Alcotest.check Support.stats_testable "registry resumable = staged"
      (Engine_staged.run plan) stats
  | Engine_intf.Interrupted _ -> Alcotest.fail "spurious interruption"

let () =
  Alcotest.run "engines"
    [
      ( "agreement",
        [
          Alcotest.test_case "triangle space" `Quick test_triangle_agreement;
          Alcotest.test_case "mixed space" `Quick test_mixed_agreement;
          Alcotest.test_case "triangle exact count" `Quick test_triangle_exact;
          Alcotest.test_case "deep nest" `Quick test_deep_nest;
          Alcotest.test_case "dynamic iterator algebra" `Quick
            test_dynamic_algebra_iterators;
          Alcotest.test_case "negative values" `Quick
            test_negative_values_everywhere;
          Alcotest.test_case "vm disassembly" `Quick test_vm_disassembly;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "pruned counts" `Quick test_stats_pruned_counts;
          Alcotest.test_case "vm = staged stats" `Quick
            test_vm_staged_stats_identical;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_stats_match_sequential;
          Alcotest.test_case "work stealing = staged on GEMM" `Quick
            test_work_stealing_matches_staged_on_gemm;
          Alcotest.test_case "more domains than trip count" `Quick
            test_parallel_more_domains_than_trip_count;
          Alcotest.test_case "firing depth-0 constraint deduped" `Quick
            test_parallel_firing_depth0_deduped;
        ] );
      ( "callbacks",
        [
          Alcotest.test_case "on_hit bindings" `Quick test_on_hit_receives_bindings;
          Alcotest.test_case "on_hit matches brute force" `Quick
            test_on_hit_matches_brute_force;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty space" `Quick test_empty_space;
          Alcotest.test_case "empty iterator" `Quick test_empty_iterator;
          Alcotest.test_case "division by zero" `Quick
            test_division_by_zero_propagates;
        ] );
      ( "registry",
        [
          Alcotest.test_case "resolves all names" `Quick
            test_registry_resolves_all_names;
          Alcotest.test_case "rejects bad specs" `Quick
            test_registry_rejects_bad_specs;
          Alcotest.test_case "engines agree via registry" `Quick
            test_registry_engines_agree;
          Alcotest.test_case "catalog capabilities" `Quick
            test_registry_catalog_capabilities;
          Alcotest.test_case "plan target runs as given" `Quick
            test_registry_plan_target;
          Alcotest.test_case "only parallel is resumable" `Quick
            test_registry_resumable_only_parallel;
          Alcotest.test_case "resumable closure runs" `Quick
            test_registry_resumable_runs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engines_agree;
            prop_vm_staged_stats;
            prop_slices_partition;
            prop_chunks_partition;
            prop_work_stealing_matches_staged;
            prop_hoisting_preserves_semantics;
            prop_constraint_subsets_monotone;
          ] );
    ]
