open Beast_core

let test_funnel_exact () =
  let f = Stats.funnel (Support.triangle_space ()) in
  (* 8*9/2 = 36 unconstrained points. *)
  Alcotest.(check int) "total" 36 f.Stats.total_points;
  let expected_survivors = Support.survivor_count (Support.triangle_space ()) in
  Alcotest.(check int) "survivors" expected_survivors f.Stats.survivors;
  (* Removed counts must account for every pruned point. *)
  let removed_total =
    List.fold_left
      (fun acc (r : Stats.row) ->
        match r.Stats.removed with
        | Some k -> acc + k
        | None -> Alcotest.fail "exact funnel must attribute removals")
      0 f.Stats.rows
  in
  Alcotest.(check int) "removals sum to pruned points"
    (f.Stats.total_points - f.Stats.survivors)
    removed_total

let test_funnel_rates () =
  let f = Stats.funnel (Support.triangle_space ()) in
  let sr = Stats.survival_rate f and pf = Stats.pruned_fraction f in
  Alcotest.(check bool) "rates in [0,1]" true (0. <= sr && sr <= 1.);
  Alcotest.(check (float 1e-9)) "complementary" 1.0 (sr +. pf)

let test_funnel_order_is_evaluation_order () =
  let f = Stats.funnel (Support.triangle_space ()) in
  (* big_x (depth 1) is evaluated before odd_sum (depth 2). *)
  Alcotest.(check (list string))
    "row order" [ "big_x"; "odd_sum" ]
    (List.map (fun (r : Stats.row) -> r.Stats.constraint_name) f.Stats.rows)

let test_of_stats () =
  let sp = Support.triangle_space () in
  let stats = Engine_staged.run_space sp in
  let total =
    match Sweep.cardinality sp with
    | `Exact n -> n
    | `At_least _ -> Alcotest.fail "small space must be exact"
  in
  let f = Stats.of_stats sp stats ~total_points:total in
  Alcotest.(check int) "total" 36 f.Stats.total_points;
  List.iter
    (fun (r : Stats.row) ->
      Alcotest.(check bool) "no attribution" true (r.Stats.removed = None))
    f.Stats.rows

let test_csv () =
  let f = Stats.funnel (Support.triangle_space ()) in
  let csv = Stats.to_csv f in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "constraint,class,fired,removed"
    (List.hd lines);
  (* header + 2 constraints + TOTAL + trailing newline *)
  Alcotest.(check int) "line count" 5 (List.length lines)

(* The TOTAL row sums each column independently: fired counts firing
   events (one firing can remove a whole subtree), removed counts
   points. On the triangle space they differ, which guards against the
   old bug of printing points-removed in both columns. *)
let test_csv_total_row () =
  let f = Stats.funnel (Support.triangle_space ()) in
  let csv = Stats.to_csv f in
  let total_line =
    List.find
      (fun l -> String.length l >= 5 && String.sub l 0 5 = "TOTAL")
      (String.split_on_char '\n' csv)
  in
  match String.split_on_char ',' total_line with
  | [ _; _; fired; removed ] ->
    let expected_fired =
      List.fold_left (fun acc (r : Stats.row) -> acc + r.Stats.fired) 0 f.Stats.rows
    in
    Alcotest.(check int) "fired sums the rows" expected_fired
      (int_of_string fired);
    Alcotest.(check int) "removed is points pruned"
      (f.Stats.total_points - f.Stats.survivors)
      (int_of_string removed);
    Alcotest.(check bool) "columns differ on this space" true
      (expected_fired <> f.Stats.total_points - f.Stats.survivors)
  | _ -> Alcotest.fail "malformed TOTAL row"

let test_merge () =
  let sp = Support.triangle_space () in
  let s = Engine_staged.run_space sp in
  let m = Engine.merge s s in
  Alcotest.(check int) "survivors" (2 * s.Engine.survivors) m.Engine.survivors;
  Alcotest.(check int) "loop iterations"
    (2 * s.Engine.loop_iterations)
    m.Engine.loop_iterations;
  Array.iteri
    (fun i (n, c, k) ->
      let n', c', k' = s.Engine.pruned.(i) in
      Alcotest.(check string) "constraint name" n' n;
      Alcotest.(check bool) "constraint class" true (c = c');
      Alcotest.(check int) "fired doubles" (2 * k') k)
    m.Engine.pruned;
  let truncated = { s with Engine.pruned = Array.sub s.Engine.pruned 0 1 } in
  Alcotest.check_raises "plan mismatch"
    (Invalid_argument "Engine.merge: stats from different plans") (fun () ->
      ignore (Engine.merge s truncated))

let test_svg () =
  let f = Stats.funnel (Support.triangle_space ()) in
  let svg = Visualize.svg f in
  let contains sub =
    let n = String.length svg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub svg i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "is svg" true (contains "<svg");
  Alcotest.(check bool) "has rings" true (contains "<path");
  Alcotest.(check bool) "labels constraints" true (contains "odd_sum");
  Alcotest.(check bool) "closes" true (contains "</svg>")

let test_html_report () =
  let f = Stats.funnel (Support.triangle_space ()) in
  let html = Visualize.html_report f in
  Alcotest.(check bool) "has table" true
    (let sub = "<table" in
     let n = String.length html and m = String.length sub in
     let rec go i = i + m <= n && (String.sub html i m = sub || go (i + 1)) in
     go 0)

let test_sweep_engines_api () =
  let sp = Support.triangle_space () in
  let expected = Support.survivor_count sp in
  List.iter
    (fun engine ->
      let s = Sweep.run ~engine sp in
      Alcotest.(check int) (Sweep.engine_name engine) expected s.Engine.survivors)
    Sweep.all_engines

let test_sweep_survivors () =
  let sp = Support.triangle_space () in
  let points = Sweep.survivors sp in
  Alcotest.(check int) "count" (Support.survivor_count sp) (List.length points);
  List.iter
    (fun point ->
      let x = Value.to_int (List.assoc "x" point) in
      let y = Value.to_int (List.assoc "y" point) in
      Alcotest.(check bool) "satisfies constraints" true
        ((x + y) mod 2 = 0 && x <= 5 && x <= y))
    points;
  let limited = Sweep.survivors ~limit:3 sp in
  Alcotest.(check int) "limit" 3 (List.length limited)

let test_sweep_fold () =
  let sp = Support.triangle_space () in
  let sum, stats =
    Sweep.fold sp ~init:0 ~f:(fun acc lookup ->
        acc + Value.to_int (lookup "s"))
  in
  Alcotest.(check bool) "positive sum" true (sum > 0);
  Alcotest.(check int) "stats survivors" (Support.survivor_count sp)
    stats.Engine.survivors;
  Alcotest.check_raises "parallel rejected"
    (Invalid_argument "Sweep.fold: sequential engines only") (fun () ->
      ignore (Sweep.fold ~engine:(Sweep.Parallel 2) sp ~init:0 ~f:(fun a _ -> a)))

let test_cardinality_budget () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 1000);
  Space.iterator sp "y" (Iter.range_i 0 1000);
  (match Sweep.cardinality ~budget:500 sp with
  | `At_least n -> Alcotest.(check int) "budget hit" 500 n
  | `Exact _ -> Alcotest.fail "budget should trigger");
  match Sweep.cardinality sp with
  | `Exact n -> Alcotest.(check int) "exact" 1_000_000 n
  | `At_least _ -> Alcotest.fail "within default budget"

let test_cardinality_ignores_constraints () =
  let sp = Support.triangle_space () in
  match Sweep.cardinality sp with
  | `Exact n -> Alcotest.(check int) "unconstrained" 36 n
  | `At_least _ -> Alcotest.fail "small space"

let () =
  Alcotest.run "stats"
    [
      ( "funnel",
        [
          Alcotest.test_case "exact attribution" `Quick test_funnel_exact;
          Alcotest.test_case "rates" `Quick test_funnel_rates;
          Alcotest.test_case "evaluation order" `Quick
            test_funnel_order_is_evaluation_order;
          Alcotest.test_case "of_stats" `Quick test_of_stats;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "csv TOTAL row" `Quick test_csv_total_row;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "visualize",
        [
          Alcotest.test_case "svg" `Quick test_svg;
          Alcotest.test_case "html report" `Quick test_html_report;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "engine selection" `Quick test_sweep_engines_api;
          Alcotest.test_case "survivors" `Quick test_sweep_survivors;
          Alcotest.test_case "fold" `Quick test_sweep_fold;
          Alcotest.test_case "cardinality budget" `Quick test_cardinality_budget;
          Alcotest.test_case "cardinality unconstrained" `Quick
            test_cardinality_ignores_constraints;
        ] );
    ]
