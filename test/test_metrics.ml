(* Tests for the Beast_obs.Metrics registry: bucket-grid math, recording
   exactness, quantiles, lossless shard merging (bucket-for-bucket
   through the Stats_io JSON round-trip, per the acceptance criterion),
   multi-domain recording, serialization, and the report renderer. *)

open Beast_core
open Beast_obs

let contains text sub =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  go 0

let gemm_plan () =
  let device =
    Beast_gpu.Device.scale ~max_dim:12 ~max_threads:64
      Beast_gpu.Device.tesla_k40c
  in
  let settings = { Beast_kernels.Gemm.default_settings with device } in
  Plan.make_exn (Beast_kernels.Gemm.space ~settings ())

(* ------------------------------------------------------------------ *)
(* Bucket grid                                                         *)
(* ------------------------------------------------------------------ *)

let test_bucket_grid () =
  (* Every value lands in a bucket whose half-open bounds contain it,
     indices are monotone in the value, and the relative bucket width is
     bounded by 1/sub. *)
  let check_value v =
    let i = Metrics.bucket_of_value v in
    let lo, hi = Metrics.bucket_bounds i in
    if not (lo <= v && v < hi) then
      Alcotest.failf "value %d: bucket %d bounds [%d, %d) miss it" v i lo hi;
    if v >= 2 * Metrics.sub then begin
      let width = hi - lo in
      if float_of_int width > float_of_int lo /. float_of_int Metrics.sub then
        Alcotest.failf "value %d: bucket width %d too wide for lo %d" v width
          lo
    end
  in
  for v = 0 to 10_000 do
    check_value v
  done;
  List.iter check_value
    [ 1 lsl 20; (1 lsl 20) + 1; 123_456_789; 987_654_321; max_int / 2 ];
  let last = ref (-1) in
  for v = 0 to 10_000 do
    let i = Metrics.bucket_of_value v in
    Alcotest.(check bool) "monotone" true (i >= !last);
    last := i
  done;
  Alcotest.(check int) "negative clamps like zero" 0 (Metrics.bucket_of_value 0)

let test_record_exact_count_sum () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~unit_:"ns" ~name:"lat" ~labels:[] () in
  let samples = List.init 1000 (fun i -> (i * i) + 3) in
  List.iter (Metrics.record h) samples;
  Metrics.record h (-5);
  match Metrics.Snapshot.find (Metrics.snapshot r) ~name:"lat" ~labels:[] with
  | Some { Metrics.value = Metrics.Vhist hs; _ } ->
    Alcotest.(check int) "count exact" 1001 hs.Metrics.s_count;
    Alcotest.(check int) "sum exact (negative clamped to 0)"
      (List.fold_left ( + ) 0 samples)
      hs.Metrics.s_sum;
    Alcotest.(check int) "bucket counts total the count" hs.Metrics.s_count
      (List.fold_left (fun acc (_, k) -> acc + k) 0 hs.Metrics.s_buckets)
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_quantiles_bounded_error () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~name:"u" ~labels:[] () in
  for v = 0 to 999 do
    Metrics.record h v
  done;
  match Metrics.Snapshot.find (Metrics.snapshot r) ~name:"u" ~labels:[] with
  | Some { Metrics.value = Metrics.Vhist hs; _ } ->
    List.iter
      (fun (q, expected) ->
        let got = Metrics.Snapshot.quantile hs q in
        let err = Float.abs (got -. expected) /. expected in
        if err > 0.15 then
          Alcotest.failf "q%.2f: estimate %.1f vs %.1f (err %.3f)" q got
            expected err)
      [ (0.5, 500.0); (0.95, 950.0); (0.99, 990.0) ];
    Alcotest.(check (float 1e-9)) "mean exact" 499.5 (Metrics.Snapshot.mean hs);
    Alcotest.(check bool) "max bound covers the max" true
      (Metrics.Snapshot.max_bound hs >= 999)
  | _ -> Alcotest.fail "histogram missing"

(* ------------------------------------------------------------------ *)
(* Registry behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_keys_and_kinds () =
  let r = Metrics.create () in
  let h1 = Metrics.histogram r ~name:"x" ~labels:[ ("a", "1"); ("b", "2") ] () in
  let h2 = Metrics.histogram r ~name:"x" ~labels:[ ("b", "2"); ("a", "1") ] () in
  Metrics.record h1 10;
  Metrics.record h2 20;
  (match
     Metrics.Snapshot.find (Metrics.snapshot r) ~name:"x"
       ~labels:[ ("a", "1"); ("b", "2") ]
   with
  | Some { Metrics.value = Metrics.Vhist hs; _ } ->
    Alcotest.(check int) "label order irrelevant: same metric" 2
      hs.Metrics.s_count
  | _ -> Alcotest.fail "labelled histogram missing");
  (match Metrics.counter r ~name:"x" ~labels:[ ("a", "1"); ("b", "2") ] () with
  | _ -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  let g = Metrics.gauge r ~name:"g" ~labels:[] () in
  Metrics.set_gauge g 42.5;
  match Metrics.Snapshot.find (Metrics.snapshot r) ~name:"g" ~labels:[] with
  | Some { Metrics.value = Metrics.Vgauge v; _ } ->
    Alcotest.(check (float 1e-9)) "gauge value" 42.5 v
  | _ -> Alcotest.fail "gauge missing"

let test_multidomain_recording () =
  (* Four domains hammer the same histogram and counter; the snapshot
     must see every sample exactly once. *)
  let r = Metrics.create () in
  let h = Metrics.histogram r ~name:"mt" ~labels:[] () in
  let c = Metrics.counter r ~name:"mtc" ~labels:[] () in
  let per_domain = 5_000 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.record h i;
              Metrics.add c 2
            done))
  in
  List.iter Domain.join workers;
  let snap = Metrics.snapshot r in
  (match Metrics.Snapshot.find snap ~name:"mt" ~labels:[] with
  | Some { Metrics.value = Metrics.Vhist hs; _ } ->
    Alcotest.(check int) "hist count" (4 * per_domain) hs.Metrics.s_count
  | _ -> Alcotest.fail "histogram missing");
  match Metrics.Snapshot.find snap ~name:"mtc" ~labels:[] with
  | Some { Metrics.value = Metrics.Vcounter v; _ } ->
    Alcotest.(check int) "counter total" (8 * per_domain) v
  | _ -> Alcotest.fail "counter missing"

(* ------------------------------------------------------------------ *)
(* Lossless shard merge: bucket-for-bucket, through Stats_io JSON       *)
(* ------------------------------------------------------------------ *)

let synthetic_sample i j = ((i * 37) + (j * 101)) * ((i mod 13) + 1) mod 900_001

let record_all r names pick =
  (* Deterministic synthetic "eval latencies" per GEMM constraint; only
     samples with [pick i] true land in this registry. *)
  List.iteri
    (fun j name ->
      let h =
        Metrics.histogram r ~unit_:"ns" ~name:"constraint_eval_ns"
          ~labels:[ ("constraint", name) ] ()
      in
      let c = Metrics.counter r ~name:"points_total" ~labels:[] () in
      for i = 0 to 399 do
        if pick i then begin
          Metrics.record h (synthetic_sample i j);
          Metrics.incr c
        end
      done)
    names

let stats_record ~shard_index ~shard_of metrics =
  {
    Stats_io.space = "gemm_synth";
    run_id = None;
    shard = { Stats_io.shard_index; shard_of };
    survivors = 0;
    loop_iterations = 0;
    constraints = [];
    metrics = Some metrics;
    provenance = None;
  }

let test_merge_bucket_for_bucket () =
  (* The acceptance criterion: split the sample stream over the GEMM
     space's constraints N ways (N = 1 and 3), push each shard through
     the full Stats_io JSON round-trip, merge, and compare against the
     all-in-one registry bucket for bucket. *)
  let plan = gemm_plan () in
  let names =
    Array.to_list (Array.map fst plan.Plan.constraint_info)
  in
  Alcotest.(check bool) "gemm has constraints" true (names <> []);
  let reference = Metrics.create () in
  record_all reference names (fun _ -> true);
  let ref_snap = Metrics.snapshot reference in
  List.iter
    (fun n ->
      let shards =
        List.init n (fun s ->
            let r = Metrics.create () in
            record_all r names (fun i -> i mod n = s);
            stats_record ~shard_index:s ~shard_of:n (Metrics.snapshot r))
      in
      (* Round-trip every shard through its JSON encoding first, the way
         a real sharded fleet hands files to `beast merge`. *)
      let reread =
        List.map
          (fun sh ->
            match Stats_io.of_json (Stats_io.to_json sh) with
            | Ok sh' -> sh'
            | Error msg -> Alcotest.failf "shard JSON round-trip: %s" msg)
          shards
      in
      match Stats_io.merge reread with
      | Error msg -> Alcotest.failf "%d-way merge failed: %s" n msg
      | Ok merged -> (
        match merged.Stats_io.metrics with
        | None -> Alcotest.fail "merged record dropped metrics"
        | Some snap ->
          Alcotest.(check bool)
            (Printf.sprintf "%d-way merge bucket-for-bucket" n)
            true
            (Metrics.Snapshot.equal ref_snap snap)))
    [ 1; 3 ]

let test_merge_gauge_and_mixed () =
  let snap_with_gauge v =
    let r = Metrics.create () in
    Metrics.set_gauge (Metrics.gauge r ~name:"domains" ~labels:[] ()) v;
    Metrics.snapshot r
  in
  (match Metrics.Snapshot.merge [ snap_with_gauge 2.0; snap_with_gauge 6.0 ] with
  | Ok [ { Metrics.value = Metrics.Vgauge v; _ } ] ->
    Alcotest.(check (float 1e-9)) "gauges keep the max" 6.0 v
  | Ok _ -> Alcotest.fail "unexpected merged shape"
  | Error msg -> Alcotest.fail msg);
  (* A shard fleet in which only some shards carry metrics is a user
     error, not something to silently drop. *)
  let with_m = stats_record ~shard_index:0 ~shard_of:2 Metrics.Snapshot.empty in
  let without =
    { with_m with Stats_io.shard = { Stats_io.shard_index = 1; shard_of = 2 };
      metrics = None }
  in
  match Stats_io.merge [ with_m; without ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed metric presence accepted"

(* ------------------------------------------------------------------ *)
(* End-to-end: sharded instrumented sweeps over the real GEMM space     *)
(* ------------------------------------------------------------------ *)

let instrumented_run plan ~shards =
  List.init shards (fun index ->
      let r = Metrics.create () in
      Metrics.set_current r;
      let stats =
        Fun.protect ~finally:Metrics.clear_current (fun () ->
            Metrics.time_phase "sweep" (fun () ->
                Engine_staged.run
                  (if shards = 1 then plan
                   else Plan.chunk_outer plan ~index ~of_:shards)))
      in
      Stats_io.of_stats ~plan
        ~shard:{ Stats_io.shard_index = index; shard_of = shards }
        ~metrics:(Metrics.snapshot r) stats)

let test_e2e_sharded_counts_match () =
  (* Real instrumented staged runs: the merged 3-shard fleet must report
     the same per-constraint evaluation counts and the same counters as
     the unsharded run. Timings differ run to run, so only count fields
     are compared. Depth-0 constraints evaluate once per shard, so their
     merged counts pool to shards x the unsharded count. *)
  let plan = gemm_plan () in
  let full = List.hd (instrumented_run plan ~shards:1) in
  let shards = instrumented_run plan ~shards:3 in
  let merged =
    match Stats_io.merge shards with
    | Ok m -> m
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "survivors match" full.Stats_io.survivors
    merged.Stats_io.survivors;
  let full_snap = Option.get full.Stats_io.metrics in
  let merged_snap = Option.get merged.Stats_io.metrics in
  let depth0 name =
    (List.find (fun c -> c.Stats_io.cr_name = name) full.Stats_io.constraints)
      .Stats_io.cr_depth0
  in
  let evals snap name =
    match
      Metrics.Snapshot.find snap ~name:"constraint_eval_ns"
        ~labels:[ ("constraint", name) ]
    with
    | Some { Metrics.value = Metrics.Vhist h; _ } -> h.Metrics.s_count
    | _ -> Alcotest.failf "no eval histogram for %s" name
  in
  Array.iter
    (fun (name, _) ->
      let expect =
        if depth0 name then 3 * evals full_snap name else evals full_snap name
      in
      Alcotest.(check int)
        (Printf.sprintf "eval count for %s" name)
        expect (evals merged_snap name))
    plan.Plan.constraint_info;
  let counter snap name labels =
    match Metrics.Snapshot.find snap ~name ~labels with
    | Some { Metrics.value = Metrics.Vcounter v; _ } -> v
    | _ -> Alcotest.failf "no counter %s" name
  in
  Alcotest.(check int) "points_total matches"
    (counter full_snap "points_total" [])
    (counter merged_snap "points_total" []);
  List.iteri
    (fun d var ->
      Alcotest.(check int)
        (Printf.sprintf "loop entries at depth %d" d)
        (counter full_snap "loop_entries_total"
           [ ("depth", string_of_int d); ("var", var) ])
        (counter merged_snap "loop_entries_total"
           [ ("depth", string_of_int d); ("var", var) ]))
    plan.Plan.iter_order;
  (* The report renderer digests the merged snapshot into percentile
     tables. *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Report.write ~top:5 ppf merged_snap;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " in report") true (contains text sub))
    [ "p50"; "p95"; "p99"; "hot constraints"; "loop entries"; "phases" ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let rich_snapshot () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram r ~unit_:"ns" ~name:"lat"
      ~labels:[ ("stage", "a \"b\"\\c") ] ()
  in
  List.iter (Metrics.record h) [ 0; 1; 17; 300; 70_000; 12_345_678 ];
  Metrics.add (Metrics.counter r ~name:"hits" ~labels:[] ()) 9;
  Metrics.set_gauge (Metrics.gauge r ~name:"load" ~labels:[] ()) 0.75;
  Metrics.snapshot r

let test_json_roundtrip () =
  let snap = rich_snapshot () in
  (match Metrics.Snapshot.of_json (Metrics.Snapshot.to_json snap) with
  | Error msg -> Alcotest.fail msg
  | Ok snap' ->
    Alcotest.(check bool) "roundtrip equal" true
      (Metrics.Snapshot.equal snap snap'));
  List.iter
    (fun text ->
      match Metrics.Snapshot.of_json text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage %s" text)
    [ "{"; "[{\"name\": 3}]"; "[{\"name\": \"x\", \"type\": \"wat\"}]" ]

let test_prometheus_exposition () =
  let snap = rich_snapshot () in
  let text = Metrics.Snapshot.to_prometheus snap in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains text sub))
    [
      "# TYPE lat histogram";
      "# TYPE hits counter";
      "# TYPE load gauge";
      "lat_bucket{stage=\"a \\\"b\\\"\\\\c\",le=\"+Inf\"} 6";
      "lat_sum{stage=";
      "lat_count{stage=";
      "hits 9";
    ];
  (* Cumulative bucket counts must be non-decreasing. *)
  let last = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if contains line "lat_bucket" then begin
           match String.rindex_opt line ' ' with
           | Some i ->
             let v =
               int_of_string
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             Alcotest.(check bool) "cumulative" true (v >= !last);
             last := v
           | None -> Alcotest.fail "malformed bucket line"
         end)

(* ------------------------------------------------------------------ *)
(* Duration / SI formatting (Units)                                     *)
(* ------------------------------------------------------------------ *)

let test_duration_formatting () =
  List.iter
    (fun (ns, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "%d ns" ns)
        expected (Units.duration_ns ns))
    [
      (0, "0ns");
      (740, "740ns");
      (999, "999ns");
      (1_000, "1.00us");
      (42_300, "42.3us");
      (999_499, "999us");
      (1_500_000, "1.50ms");
      (250_000_000, "250ms");
      (12_000_000_000, "12.0s");
    ];
  Alcotest.(check string) "nan" "nan" (Units.duration_ns_f Float.nan);
  List.iter
    (fun (v, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "si %d" v)
        expected (Units.si_int v))
    [ (0, "0"); (9_500, "9500"); (10_500, "10.5k"); (1_250_000, "1.25M") ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "metrics"
    [
      ( "buckets",
        [
          Alcotest.test_case "grid invariants" `Quick test_bucket_grid;
          Alcotest.test_case "exact count and sum" `Quick
            test_record_exact_count_sum;
          Alcotest.test_case "quantile error bound" `Quick
            test_quantiles_bounded_error;
        ] );
      ( "registry",
        [
          Alcotest.test_case "keys and kinds" `Quick test_registry_keys_and_kinds;
          Alcotest.test_case "multi-domain recording" `Quick
            test_multidomain_recording;
        ] );
      ( "merging",
        [
          Alcotest.test_case "bucket-for-bucket via Stats_io" `Quick
            test_merge_bucket_for_bucket;
          Alcotest.test_case "gauges and mixed presence" `Quick
            test_merge_gauge_and_mixed;
          Alcotest.test_case "e2e sharded GEMM counts" `Quick
            test_e2e_sharded_counts_match;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
      ( "units",
        [
          Alcotest.test_case "duration and SI formatting" `Quick
            test_duration_formatting;
        ] );
    ]
