open Beast_core

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Attribution kinds on hand-built spaces                              *)
(* ------------------------------------------------------------------ *)

let rec find_loop_slot var = function
  | [] -> None
  | Plan.Loop { l_var; l_slot; l_body; _ } :: rest ->
    if l_var = var then Some l_slot
    else (
      match find_loop_slot var l_body with
      | Some s -> Some s
      | None -> find_loop_slot var rest)
  | _ :: rest -> find_loop_slot var rest

let c_index plan name =
  let found = ref (-1) in
  Array.iteri
    (fun i (n, _) -> if n = name then found := i)
    plan.Plan.constraint_info;
  if !found < 0 then Alcotest.failf "constraint %s not in plan" name;
  !found

(* Literal loop bounds below both checks: both subtree products are
   plan-time constants. *)
let test_attribution_static () =
  let open Expr.Infix in
  let sp = Space.create ~name:"static" () in
  Space.iterator sp "a" (Iter.range_i 0 4);
  Space.constrain sp "ca" (Expr.var "a" >: Expr.int 10);
  Space.iterator sp "b" (Iter.range_i 0 3);
  Space.constrain sp "cb" (Expr.var "b" >: Expr.int 10);
  let plan = Plan.make_exn sp in
  let at = Provenance.attribution plan in
  (match Provenance.removal_of at (c_index plan "ca") with
  | Provenance.Static 3 -> ()
  | _ -> Alcotest.fail "ca should remove a static 3-point subtree");
  match Provenance.removal_of at (c_index plan "cb") with
  | Provenance.Static 1 -> ()
  | _ -> Alcotest.fail "cb is innermost: static 1"

(* The inner loop's stop bound reads the outer variable, so the product
   must be evaluated from the slots live at each firing. *)
let test_attribution_dynamic () =
  let open Expr.Infix in
  let sp = Space.create ~name:"dyn" () in
  Space.iterator sp "a" (Iter.range_i 0 5);
  Space.constrain sp "ca" (Expr.var "a" >: Expr.int 10);
  Space.iterator sp "c" (Iter.range (Expr.int 0) (Expr.var "a"));
  let plan = Plan.make_exn sp in
  let at = Provenance.attribution plan in
  match Provenance.removal_of at (c_index plan "ca") with
  | Provenance.Dyn f ->
    let slot =
      match find_loop_slot "a" plan.Plan.steps with
      | Some s -> s
      | None -> Alcotest.fail "loop a has no slot"
    in
    let slots = Array.make plan.Plan.n_slots 0 in
    slots.(slot) <- 3;
    Alcotest.(check int) "subtree under a=3" 3 (f slots);
    slots.(slot) <- 0;
    Alcotest.(check int) "empty subtree under a=0" 0 (f slots)
  | _ -> Alcotest.fail "ca guards a data-dependent subtree: Dyn"

(* A closure iterator below the check is opaque: no exact count without
   sweeping. *)
let test_attribution_inexact () =
  let open Expr.Infix in
  let sp = Space.create ~name:"inexact" () in
  Space.iterator sp "a" (Iter.range_i 1 5);
  Space.constrain sp "ca" (Expr.var "a" >: Expr.int 10);
  Space.iterator sp "z"
    (Iter.closure ~deps:[ "a" ] (fun env ->
         let a = Value.to_int (env "a") in
         List.to_seq (List.init a (fun i -> Value.Int i))));
  let plan = Plan.make_exn sp in
  let at = Provenance.attribution plan in
  match Provenance.removal_of at (c_index plan "ca") with
  | Provenance.Inexact -> ()
  | _ -> Alcotest.fail "closure iterator below the check must be Inexact"

(* ------------------------------------------------------------------ *)
(* Single-pass funnel == n+1-sweep funnel                              *)
(* ------------------------------------------------------------------ *)

let check_funnels_agree label (a : Stats.funnel) (b : Stats.funnel) =
  Alcotest.(check string) (label ^ ": space") a.Stats.space b.Stats.space;
  Alcotest.(check int) (label ^ ": total") a.Stats.total_points
    b.Stats.total_points;
  Alcotest.(check int) (label ^ ": survivors") a.Stats.survivors
    b.Stats.survivors;
  Alcotest.(check int) (label ^ ": row count")
    (List.length a.Stats.rows)
    (List.length b.Stats.rows);
  List.iter2
    (fun (ra : Stats.row) (rb : Stats.row) ->
      Alcotest.(check string) (label ^ ": row name") ra.Stats.constraint_name
        rb.Stats.constraint_name;
      Alcotest.(check int)
        (label ^ ": fired " ^ ra.Stats.constraint_name)
        ra.Stats.fired rb.Stats.fired;
      Alcotest.(check (option int))
        (label ^ ": removed " ^ ra.Stats.constraint_name)
        ra.Stats.removed rb.Stats.removed)
    a.Stats.rows b.Stats.rows

let scaled_device = Beast_gpu.Device.scale ~max_dim:8 ~max_threads:64

let gemm_space () =
  let settings =
    {
      Beast_kernels.Gemm.default_settings with
      Beast_kernels.Gemm.device = scaled_device Beast_gpu.Device.tesla_k40c;
    }
  in
  Beast_kernels.Gemm.space ~settings ()

let conv2d_space () =
  let workload =
    {
      Beast_kernels.Conv2d.default_workload with
      Beast_kernels.Conv2d.device = scaled_device Beast_gpu.Device.tesla_k40c;
    }
  in
  Beast_kernels.Conv2d.space ~workload ()

let test_single_pass_triangle () =
  let sp () = Support.triangle_space () in
  check_funnels_agree "triangle" (Stats.funnel (sp ()))
    (Stats.funnel_single_pass (sp ()))

(* mixed_space has a closure iterator, so single-pass attribution is
   inexact and the fast path must fall back to the prefix sweeps — the
   funnels still agree exactly. *)
let test_single_pass_fallback () =
  let sp () = Support.mixed_space () in
  check_funnels_agree "mixed" (Stats.funnel (sp ()))
    (Stats.funnel_single_pass (sp ()))

let test_single_pass_gemm () =
  check_funnels_agree "gemm"
    (Stats.funnel (gemm_space ()))
    (Stats.funnel_single_pass (gemm_space ()))

let test_single_pass_conv2d () =
  check_funnels_agree "conv2d"
    (Stats.funnel (conv2d_space ()))
    (Stats.funnel_single_pass (conv2d_space ()))

(* ------------------------------------------------------------------ *)
(* Engine agreement                                                    *)
(* ------------------------------------------------------------------ *)

let collect_with engine sp =
  let plan = Plan.make_exn sp in
  let _, summary = Provenance.with_collector (fun () -> engine plan) in
  summary

let test_engines_agree () =
  let sp () = Support.triangle_space () in
  let staged = collect_with Engine_staged.run (sp ()) in
  let vm = collect_with Engine_vm.run_plan (sp ()) in
  let interp =
    let plan_sp = sp () in
    let _, summary =
      Provenance.with_collector (fun () -> Engine_interp.run plan_sp)
    in
    ignore plan_sp;
    summary
  in
  Alcotest.(check bool) "vm == staged" true (vm = staged);
  Alcotest.(check bool) "interp == staged" true (interp = staged)

(* ------------------------------------------------------------------ *)
(* Shard merge                                                         *)
(* ------------------------------------------------------------------ *)

let shard_stats sp n i =
  let plan = Plan.make_exn sp in
  let chunk = Plan.chunk_outer plan ~index:i ~of_:n in
  let stats, summary =
    Provenance.with_collector (fun () -> Engine_staged.run chunk)
  in
  Stats_io.of_stats ~plan
    ~shard:{ Stats_io.shard_index = i; shard_of = n }
    ~provenance:summary stats

let unsharded_stats sp =
  let plan = Plan.make_exn sp in
  let stats, summary =
    Provenance.with_collector (fun () -> Engine_staged.run plan)
  in
  Stats_io.of_stats ~plan ~provenance:summary stats

let test_shard_merge_byte_identical () =
  let sp () = Support.triangle_space () in
  let shards = List.init 3 (fun i -> shard_stats (sp ()) 3 i) in
  let merged =
    match Stats_io.merge shards with
    | Ok t -> t
    | Error e -> Alcotest.failf "merge failed: %s" e
  in
  Alcotest.(check string) "merged JSON == unsharded JSON"
    (Stats_io.to_json (unsharded_stats (sp ())))
    (Stats_io.to_json merged)

let test_shard_merge_gemm () =
  let sp = gemm_space in
  let shards = List.init 3 (fun i -> shard_stats (sp ()) 3 i) in
  let merged =
    match Stats_io.merge shards with
    | Ok t -> t
    | Error e -> Alcotest.failf "merge failed: %s" e
  in
  Alcotest.(check string) "merged JSON == unsharded JSON"
    (Stats_io.to_json (unsharded_stats (sp ())))
    (Stats_io.to_json merged)

let test_shard_merge_mixed_presence () =
  let sp () = Support.triangle_space () in
  let with_prov = shard_stats (sp ()) 2 0 in
  let without =
    let plan = Plan.make_exn (sp ()) in
    let chunk = Plan.chunk_outer plan ~index:1 ~of_:2 in
    Stats_io.of_stats ~plan
      ~shard:{ Stats_io.shard_index = 1; shard_of = 2 }
      (Engine_staged.run chunk)
  in
  match Stats_io.merge [ with_prov; without ] with
  | Ok _ -> Alcotest.fail "mixed provenance presence must not merge"
  | Error e ->
    Alcotest.(check bool) "diagnostic names provenance" true
      (contains e "provenance")

let test_merge_summaries_mismatch () =
  let s1 = collect_with Engine_staged.run (Support.triangle_space ()) in
  let s2 = collect_with Engine_staged.run (Support.mixed_space ()) in
  match Provenance.merge_summaries [ s1; s2 ] with
  | Ok _ -> Alcotest.fail "summaries of different spaces must not merge"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Disabled path                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_no_provenance () =
  Alcotest.(check bool) "no ambient collector" false (Provenance.enabled ());
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let io = Stats_io.of_stats ~plan (Engine_staged.run plan) in
  let json = Stats_io.to_json io in
  Alcotest.(check bool) "no provenance key when disabled" false
    (contains json "\"provenance\"")

let test_with_collector_restores () =
  Alcotest.(check bool) "off before" false (Provenance.enabled ());
  let (), _ =
    Provenance.with_collector (fun () ->
        Alcotest.(check bool) "on inside" true (Provenance.enabled ());
        ignore (Engine_staged.run_space (Support.triangle_space ())))
  in
  Alcotest.(check bool) "off after" false (Provenance.enabled ())

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let test_summary_json_roundtrip () =
  let summary = collect_with Engine_staged.run (Support.triangle_space ()) in
  let buf = Buffer.create 256 in
  Provenance.add_json buf ~indent:"" summary;
  let parsed = Beast_obs.Jsonx.parse_exn (Buffer.contents buf) in
  match Provenance.of_jsonx parsed with
  | Ok summary' ->
    Alcotest.(check bool) "roundtrip preserves the summary" true
      (summary = summary')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_stats_io_roundtrip () =
  let io = unsharded_stats (Support.triangle_space ()) in
  let json = Stats_io.to_json io in
  match Stats_io.of_json json with
  | Ok io' -> Alcotest.(check string) "byte-stable" json (Stats_io.to_json io')
  | Error e -> Alcotest.failf "of_json failed: %s" e

(* ------------------------------------------------------------------ *)
(* funnel_of_run and the explain renderer                               *)
(* ------------------------------------------------------------------ *)

let test_funnel_of_run () =
  let reference = Stats.funnel (Support.triangle_space ()) in
  match Stats.funnel_of_run (unsharded_stats (Support.triangle_space ())) with
  | Ok f -> check_funnels_agree "of_run" reference f
  | Error e -> Alcotest.failf "funnel_of_run failed: %s" e

let test_funnel_of_run_requires_provenance () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let io = Stats_io.of_stats ~plan (Engine_staged.run plan) in
  match Stats.funnel_of_run io with
  | Ok _ -> Alcotest.fail "must reject a run without provenance"
  | Error e ->
    Alcotest.(check bool) "diagnostic names provenance" true
      (contains e "provenance")

let render io =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let r = Explain.write ppf io in
  Format.pp_print_flush ppf ();
  (r, Buffer.contents buf)

let test_explain_sections () =
  match render (unsharded_stats (Support.triangle_space ())) with
  | Ok (), out ->
    List.iter
      (fun section ->
        Alcotest.(check bool) ("has " ^ section) true
          (contains out section))
      [
        "constraint waterfall (evaluation order)";
        "cost vs selectivity";
        "dead outer ranges";
        "survival funnel by depth";
      ]
  | Error e, _ -> Alcotest.failf "explain failed: %s" e

let test_explain_requires_provenance () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let io = Stats_io.of_stats ~plan (Engine_staged.run plan) in
  match render io with
  | Ok (), _ -> Alcotest.fail "must reject a run without provenance"
  | Error e, _ ->
    Alcotest.(check bool) "diagnostic names provenance" true
      (contains e "provenance")

let () =
  Alcotest.run "provenance"
    [
      ( "attribution",
        [
          Alcotest.test_case "static products" `Quick test_attribution_static;
          Alcotest.test_case "dynamic products" `Quick test_attribution_dynamic;
          Alcotest.test_case "inexact under closures" `Quick
            test_attribution_inexact;
        ] );
      ( "single-pass funnel",
        [
          Alcotest.test_case "triangle" `Quick test_single_pass_triangle;
          Alcotest.test_case "closure fallback" `Quick
            test_single_pass_fallback;
          Alcotest.test_case "gemm" `Quick test_single_pass_gemm;
          Alcotest.test_case "conv2d" `Quick test_single_pass_conv2d;
        ] );
      ( "engines",
        [ Alcotest.test_case "agree on summaries" `Quick test_engines_agree ] );
      ( "shards",
        [
          Alcotest.test_case "3-way byte-identical" `Quick
            test_shard_merge_byte_identical;
          Alcotest.test_case "3-way gemm" `Quick test_shard_merge_gemm;
          Alcotest.test_case "mixed presence rejected" `Quick
            test_shard_merge_mixed_presence;
          Alcotest.test_case "summary mismatch rejected" `Quick
            test_merge_summaries_mismatch;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "no provenance section" `Quick
            test_disabled_no_provenance;
          Alcotest.test_case "with_collector restores" `Quick
            test_with_collector_restores;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "summary roundtrip" `Quick
            test_summary_json_roundtrip;
          Alcotest.test_case "stats_io roundtrip" `Quick
            test_stats_io_roundtrip;
        ] );
      ( "explain",
        [
          Alcotest.test_case "funnel_of_run" `Quick test_funnel_of_run;
          Alcotest.test_case "funnel_of_run needs provenance" `Quick
            test_funnel_of_run_requires_provenance;
          Alcotest.test_case "renders all sections" `Quick
            test_explain_sections;
          Alcotest.test_case "explain needs provenance" `Quick
            test_explain_requires_provenance;
        ] );
    ]
