open Beast_core

let build_exn plan =
  match Feasible.build plan with
  | Ok t -> t
  | Error msg -> Alcotest.fail ("Feasible.build: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Exact counts vs the enumeration funnel                              *)
(* ------------------------------------------------------------------ *)

let parity_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"parity" () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  Space.constrain sp "odd_x" (Expr.var "x" %: Expr.int 2 =: Expr.int 1);
  Space.iterator sp "y" (Iter.range_i 0 3);
  sp

let gemm_scaled () =
  let open Beast_kernels in
  Gemm.space
    ~settings:
      {
        Gemm.default_settings with
        Gemm.device =
          Beast_gpu.Device.scale ~max_dim:16 ~max_threads:64
            Beast_gpu.Device.tesla_k40c;
      }
    ()

let count_spaces () =
  [
    ("parity", parity_space ());
    ("triangle", Support.triangle_space ());
    ("mixed", Support.mixed_space ());
    ("gemm", gemm_scaled ());
    ("conv2d", Beast_kernels.Conv2d.space ());
  ]

let test_count_equals_survivors () =
  List.iter
    (fun (name, sp) ->
      let plan = Plan.make_exn sp in
      Alcotest.(check int)
        (name ^ ": count = funnel survivors")
        (Engine_staged.run plan).Engine.survivors
        (Feasible.count (build_exn plan)))
    (count_spaces ())

(* The CI criterion: a >10^9-point constrained space counted exactly,
   with no enumeration anywhere near the point count. *)
let test_count_billion () =
  let plan = Plan.make_exn (Beast_kernels.Synth.space ()) in
  let t = build_exn plan in
  Alcotest.(check int)
    "synth chain space, closed form" 1_465_451_008 (Feasible.count t);
  Alcotest.(check int)
    "closed-form helper agrees"
    (Beast_kernels.Synth.expected_survivors ())
    (Feasible.count t)

(* Propagation folds the dead values out of the iterators but may not
   change the SET; the diagram must come out structurally identical
   (dead values produce Empty children, which are never stored). *)
let test_propagated_same_set () =
  List.iter
    (fun (name, sp) ->
      let plan = Plan.make_exn sp in
      let a = build_exn plan and b = build_exn (Propagate.pass plan) in
      Alcotest.(check int)
        (name ^ ": same count after propagation")
        (Feasible.count a) (Feasible.count b);
      Alcotest.(check string)
        (name ^ ": same serialized diagram")
        (Feasible.to_string a) (Feasible.to_string b))
    (count_spaces ())

(* ------------------------------------------------------------------ *)
(* nth / sample                                                        *)
(* ------------------------------------------------------------------ *)

let all_points t =
  List.init (Feasible.count t) (fun i -> Feasible.nth t i)

let engine_points plan =
  let acc = ref [] in
  let names = plan.Plan.iter_order in
  ignore
    (Engine_staged.run
       ~on_hit:(fun lookup ->
         acc :=
           List.map
             (fun n ->
               match lookup n with
               | Value.Int v -> (n, v)
               | _ -> Alcotest.fail "non-int iterator value")
             names
           :: !acc)
       plan);
  List.rev !acc

let test_nth_enumerates_the_set () =
  let plan = Plan.make_exn (Support.mixed_space ()) in
  let t = build_exn plan in
  let ours = all_points t in
  let theirs = engine_points plan in
  Alcotest.(check int) "same cardinality" (List.length theirs)
    (List.length ours);
  (* Same set; nth's canonical (sorted-per-layer) order need not match
     the engine's trip order. *)
  Alcotest.(check bool)
    "same point set" true
    (List.sort compare ours = List.sort compare theirs);
  Alcotest.(check bool)
    "nth order strictly increasing" true
    (let rec sorted = function
       | a :: (b :: _ as tl) -> compare a b < 0 && sorted tl
       | _ -> true
     in
     sorted (List.map (List.map snd) ours))

let test_nth_out_of_bounds () =
  let t = build_exn (Plan.make_exn (parity_space ())) in
  Alcotest.check_raises "past the end"
    (Invalid_argument "Feasible.nth: index 15 out of bounds [0, 15)")
    (fun () -> ignore (Feasible.nth t 15))

let test_sample () =
  let plan = Plan.make_exn (Support.mixed_space ()) in
  let t = build_exn plan in
  let members = List.sort compare (all_points t) in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    match Feasible.sample ~rng t with
    | None -> Alcotest.fail "sample of a non-empty set"
    | Some p ->
      if not (List.mem p members) then
        Alcotest.fail "sampled point not in the set"
  done;
  (* Empty set: a depth-0-false space. *)
  let open Expr.Infix in
  let dead = Space.create ~name:"dead" () in
  Space.iterator dead "x" (Iter.range_i 0 5);
  Space.constrain dead "always" (Expr.var "x" >=: Expr.int 0);
  let td = build_exn (Plan.make_exn dead) in
  Alcotest.(check int) "dead space count" 0 (Feasible.count td);
  Alcotest.(check bool) "dead space sample" true (Feasible.sample td = None)

(* ------------------------------------------------------------------ *)
(* of_propagation: upper bound, exact when propagation is complete     *)
(* ------------------------------------------------------------------ *)

let test_of_propagation () =
  (* Parity: the one constraint folds entirely into the iterator, so
     the bound is exact. *)
  let plan = Propagate.pass (Plan.make_exn (parity_space ())) in
  (match Feasible.of_propagation plan with
  | Error msg -> Alcotest.fail msg
  | Ok ub ->
    Alcotest.(check int) "parity: bound is exact" 15 (Feasible.count ub));
  (* Coupled constraint: propagation cannot touch it, the bound is the
     full product. *)
  let open Expr.Infix in
  let sp = Space.create ~name:"coupled" () in
  Space.iterator sp "x" (Iter.range_i 0 5);
  Space.iterator sp "y" (Iter.range_i 0 5);
  Space.constrain sp "sum_cap" (Expr.var "x" +: Expr.var "y" >: Expr.int 6);
  let plan = Propagate.pass (Plan.make_exn sp) in
  match Feasible.of_propagation plan with
  | Error msg -> Alcotest.fail msg
  | Ok ub ->
    let exact = Feasible.count (build_exn plan) in
    Alcotest.(check int) "coupled: product bound" 25 (Feasible.count ub);
    Alcotest.(check int) "coupled: exact below bound" 22 exact

(* ------------------------------------------------------------------ *)
(* Set algebra                                                         *)
(* ------------------------------------------------------------------ *)

let constrained_xy name expr =
  let sp = Space.create ~name () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  Space.constrain sp name expr;
  Space.iterator sp "y" (Iter.range_i 0 3);
  sp

let test_union_inter () =
  let open Expr.Infix in
  (* A: odd x pruned -> x in {0,2,4,6,8}; B: x >= 6 pruned -> x in 0..5. *)
  let ta =
    build_exn
      (Plan.make_exn (constrained_xy "odd" (Expr.var "x" %: Expr.int 2 =: Expr.int 1)))
  in
  let tb =
    build_exn (Plan.make_exn (constrained_xy "high" (Expr.var "x" >=: Expr.int 6)))
  in
  let ok = function
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "inter" (3 * 3) (Feasible.count (ok (Feasible.inter ta tb)));
  Alcotest.(check int) "union" (8 * 3) (Feasible.count (ok (Feasible.union ta tb)));
  Alcotest.(check int) "self union" (Feasible.count ta)
    (Feasible.count (ok (Feasible.union ta ta)));
  Alcotest.(check int) "self inter" (Feasible.count tb)
    (Feasible.count (ok (Feasible.inter tb tb)));
  (* Inter with the propagation upper bound recovers the exact set. *)
  let plan = Propagate.pass (Plan.make_exn (parity_space ())) in
  let exact = build_exn plan in
  (match Feasible.of_propagation plan with
  | Error msg -> Alcotest.fail msg
  | Ok ub ->
    Alcotest.(check string) "exact inter bound = exact"
      (Feasible.to_string exact)
      (Feasible.to_string (ok (Feasible.inter exact ub))));
  (* Mismatched layers refuse. *)
  let other = Space.create ~name:"other" () in
  Space.iterator other "a" (Iter.range_i 0 4);
  let tc = build_exn (Plan.make_exn other) in
  match Feasible.union ta tc with
  | Ok _ -> Alcotest.fail "layer mismatch accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_deterministic_serialization () =
  List.iter
    (fun (name, sp) ->
      let s1 = Feasible.to_string (build_exn (Plan.make_exn sp)) in
      let again =
        List.assoc name (count_spaces ())
      in
      let s2 = Feasible.to_string (build_exn (Plan.make_exn again)) in
      Alcotest.(check string) (name ^ ": independent builds agree") s1 s2)
    (count_spaces ())

(* ------------------------------------------------------------------ *)
(* Survivor-balanced sharding                                          *)
(* ------------------------------------------------------------------ *)

(* All survivors live under x = 0: equal-trip chunking puts all the
   work in chunk 0 of 2; balanced chunking must cut after the single
   heavy value. *)
let skewed_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"skewed" () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  Space.constrain sp "xpos" (Expr.var "x" >: Expr.int 0);
  Space.iterator sp "y" (Iter.range_i 0 10);
  sp

let outer_values plan =
  let rec go = function
    | Plan.Loop { l_iter = Plan.CValues vs; _ } :: _ -> vs
    | Plan.Loop _ :: _ -> Alcotest.fail "outer iterator not CValues"
    | _ :: rest -> go rest
    | [] -> Alcotest.fail "no loop"
  in
  go plan.Plan.steps

let test_balanced_chunks () =
  let plan = Plan.make_exn (skewed_space ()) in
  let feas = build_exn plan in
  let c0 = Feasible.chunk_outer_balanced feas plan ~index:0 ~of_:2 in
  let c1 = Feasible.chunk_outer_balanced feas plan ~index:1 ~of_:2 in
  Alcotest.(check (array int)) "heavy value isolated" [| 0 |] (outer_values c0);
  Alcotest.(check (array int))
    "light tail together"
    [| 1; 2; 3; 4; 5; 6; 7; 8; 9 |]
    (outer_values c1);
  (* The chunks still tile the space: merged statistics equal the
     sequential run's. *)
  let seq = Engine_staged.run plan in
  let s0 = Engine_staged.run c0 and s1 = Engine_staged.run c1 in
  Alcotest.(check int) "survivors tile" seq.Engine.survivors
    (s0.Engine.survivors + s1.Engine.survivors);
  Alcotest.(check int) "iterations tile" seq.Engine.loop_iterations
    (s0.Engine.loop_iterations + s1.Engine.loop_iterations);
  Array.iteri
    (fun ci (cname, _, k) ->
      let _, _, k0 = s0.Engine.pruned.(ci) and _, _, k1 = s1.Engine.pruned.(ci) in
      Alcotest.(check int) ("pruned tile: " ^ cname) k (k0 + k1))
    seq.Engine.pruned;
  (* Balanced chunks of a propagated plan keep the byte-identity rail:
     the propagated chunk's stats equal the unpropagated chunk's. *)
  let prop = Propagate.pass plan in
  let feas_p = build_exn prop in
  let p0 = Feasible.chunk_outer_balanced feas_p prop ~index:0 ~of_:2 in
  let sp0 = Engine_staged.run p0 in
  Alcotest.(check int) "propagated balanced chunk survivors"
    s0.Engine.survivors sp0.Engine.survivors

let () =
  Alcotest.run "feasible"
    [
      ( "count",
        [
          Alcotest.test_case "equals funnel survivors" `Quick
            test_count_equals_survivors;
          Alcotest.test_case "billion-point space, exact" `Quick
            test_count_billion;
          Alcotest.test_case "propagation preserves the set" `Quick
            test_propagated_same_set;
        ] );
      ( "index",
        [
          Alcotest.test_case "nth enumerates the set" `Quick
            test_nth_enumerates_the_set;
          Alcotest.test_case "nth bounds" `Quick test_nth_out_of_bounds;
          Alcotest.test_case "sample" `Quick test_sample;
        ] );
      ( "bound",
        [ Alcotest.test_case "of_propagation" `Quick test_of_propagation ] );
      ( "algebra",
        [ Alcotest.test_case "union and inter" `Quick test_union_inter ] );
      ( "determinism",
        [
          Alcotest.test_case "serialization" `Quick
            test_deterministic_serialization;
        ] );
      ( "sharding",
        [ Alcotest.test_case "balanced chunks" `Quick test_balanced_chunks ]
      );
    ]
