open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_autotune

let simple_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"quad" () in
  Space.iterator sp "x" (Iter.range_i 0 20);
  Space.iterator sp "y" (Iter.range_i 0 20);
  Space.constrain sp "diag" (Expr.var "x" <: Expr.var "y");
  sp

(* Objective with a unique known optimum: maximize -(x-7)^2 - (y-3)^2. *)
let objective lookup =
  let x = Value.to_int (lookup "x") and y = Value.to_int (lookup "y") in
  -.float_of_int (((x - 7) * (x - 7)) + ((y - 3) * (y - 3)))

let test_finds_optimum () =
  let r = Tuner.tune ~objective (simple_space ()) in
  match r.Tuner.best with
  | None -> Alcotest.fail "no best"
  | Some c ->
    Alcotest.(check (float 0.0)) "score 0" 0.0 c.Tuner.score;
    Alcotest.(check bool) "x=7,y=3" true
      (List.assoc "x" c.Tuner.bindings = Value.Int 7
      && List.assoc "y" c.Tuner.bindings = Value.Int 3)

let test_respects_constraints () =
  (* Prune everything with x >= y: the unconstrained optimum (7,3) is
     pruned, so the tuner must find the best feasible point instead. *)
  let r = Tuner.tune ~objective (simple_space ()) in
  ignore r;
  let open Expr.Infix in
  let sp = Space.create ~name:"quad2" () in
  Space.iterator sp "x" (Iter.range_i 0 20);
  Space.iterator sp "y" (Iter.range_i 0 20);
  Space.constrain sp "keep_x_lt_y" (Expr.var "x" >=: Expr.var "y");
  let r = Tuner.tune ~objective sp in
  match r.Tuner.best with
  | None -> Alcotest.fail "no best"
  | Some c ->
    (* best feasible: x < y near (7,3): candidates (7,8)? distance 25;
       or x=5,y=6: 4+9=13; x=6 y=7: 1+16=17; x=4,y=5: 9+4=13; x=5,y=6=13...
       compute expected via brute force below instead of by hand. *)
    let best = ref neg_infinity in
    for x = 0 to 19 do
      for y = 0 to 19 do
        if x < y then
          best :=
            Float.max !best
              (-.float_of_int (((x - 7) * (x - 7)) + ((y - 3) * (y - 3))))
      done
    done;
    Alcotest.(check (float 1e-9)) "best feasible" !best c.Tuner.score

let test_top_n_sorted_unique () =
  let r = Tuner.tune ~top_n:5 ~objective (simple_space ()) in
  Alcotest.(check int) "5 kept" 5 (List.length r.Tuner.top);
  let scores = List.map (fun c -> c.Tuner.score) r.Tuner.top in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (sorted scores);
  Alcotest.(check int) "evaluated = survivors" r.Tuner.evaluated
    r.Tuner.stats.Engine.survivors

let test_parallel_matches_sequential_best () =
  let seq = Tuner.tune ~objective (simple_space ()) in
  let par =
    Tuner.tune ~engine:(Engine_registry.parallel 3) ~objective (simple_space ())
  in
  match seq.Tuner.best, par.Tuner.best with
  | Some a, Some b ->
    Alcotest.(check (float 1e-12)) "same best score" a.Tuner.score b.Tuner.score
  | _ -> Alcotest.fail "missing best"

(* ---- Fault tolerance: raising/timing-out objectives ---- *)

let test_raising_objective_skipped () =
  (* Every third survivor raises on all attempts: the campaign must
     complete, count the failures and keep the best of the rest. *)
  let calls = ref 0 in
  let flaky lookup =
    incr calls;
    let x = Value.to_int (lookup "x") in
    if x mod 3 = 0 then failwith "benchmark crashed";
    objective lookup
  in
  let r = Tuner.tune ~retries:0 ~objective:flaky (simple_space ()) in
  Alcotest.(check bool) "some failed" true (r.Tuner.failed > 0);
  Alcotest.(check int) "evaluated + failed = survivors"
    r.Tuner.stats.Engine.survivors
    (r.Tuner.evaluated + r.Tuner.failed);
  match r.Tuner.best with
  | None -> Alcotest.fail "no best despite surviving configurations"
  | Some c ->
    Alcotest.(check bool) "best is from a non-crashing config" true
      (Value.to_int (List.assoc "x" c.Tuner.bindings) mod 3 <> 0)

let test_retry_recovers_transient_failure () =
  (* Each configuration fails on its first attempt and succeeds on the
     retry: with retries:1 nothing is lost. *)
  let seen = Hashtbl.create 64 in
  let transient lookup =
    let key =
      (Value.to_int (lookup "x") * 1000) + Value.to_int (lookup "y")
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      failwith "transient failure"
    end;
    objective lookup
  in
  let r =
    Tuner.tune ~retries:1 ~backoff_s:0.0 ~objective:transient (simple_space ())
  in
  Alcotest.(check int) "nothing failed" 0 r.Tuner.failed;
  Alcotest.(check int) "all survivors benchmarked"
    r.Tuner.stats.Engine.survivors r.Tuner.evaluated;
  match r.Tuner.best with
  | None -> Alcotest.fail "no best"
  | Some c -> Alcotest.(check (float 0.0)) "score 0" 0.0 c.Tuner.score

let test_timeout_unwedges_campaign () =
  (* One pathological configuration spins forever; the SIGALRM guard
     must abort it and the campaign must finish without it. *)
  let wedged lookup =
    let x = Value.to_int (lookup "x") and y = Value.to_int (lookup "y") in
    if x = 1 && y = 0 then begin
      let v = ref 0.0 in
      while !v >= 0.0 do
        (* allocation in the loop gives the runtime poll points to
           deliver the timeout exception at *)
        v := Sys.opaque_identity (!v +. 1e-9) *. 1.0
      done
    end;
    objective lookup
  in
  let r =
    Tuner.tune ~timeout_s:0.2 ~retries:0 ~objective:wedged (simple_space ())
  in
  Alcotest.(check int) "exactly the wedged config failed" 1 r.Tuner.failed;
  match r.Tuner.best with
  | None -> Alcotest.fail "no best"
  | Some c -> Alcotest.(check (float 0.0)) "score 0" 0.0 c.Tuner.score

let test_improvement () =
  let r = Tuner.tune ~objective:(fun _ -> 10.0) (simple_space ()) in
  (match Tuner.improvement r ~baseline:2.5 with
  | Some x -> Alcotest.(check (float 1e-9)) "4x" 4.0 x
  | None -> Alcotest.fail "no improvement");
  Alcotest.(check bool) "zero baseline" true
    (Tuner.improvement r ~baseline:0.0 = None)

let test_empty_space_tunes () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 5);
  Space.constrain sp "all" (Expr.bool true);
  let r = Tuner.tune ~objective:(fun _ -> 1.0) sp in
  Alcotest.(check bool) "no best" true (r.Tuner.best = None);
  Alcotest.(check int) "nothing evaluated" 0 r.Tuner.evaluated

(* ---- Table I calibration: locks the reproduction bands ---- *)

let test_table1_gemm_band () =
  let device = Device.scale ~max_dim:64 ~max_threads:256 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let r = Tuner.tune ~objective:(Gemm.objective settings) (Gemm.space ~settings ()) in
  let peak = Device.peak_gflops device Device.Double in
  match r.Tuner.best with
  | None -> Alcotest.fail "gemm tuner found nothing"
  | Some c ->
    let frac = c.Tuner.score /. peak in
    Alcotest.(check bool)
      (Printf.sprintf "DGEMM at %.1f%% of peak (paper: 80%%)" (100. *. frac))
      true
      (frac > 0.70 && frac < 0.88)

let test_table1_batched_small_band () =
  let w = Cholesky_batched.default_workload in
  let r =
    Tuner.tune ~objective:(Cholesky_batched.objective w)
      (Cholesky_batched.space ~workload:w ())
  in
  let baseline = Cholesky_batched.baseline_gflops w in
  match Tuner.improvement r ~baseline with
  | None -> Alcotest.fail "no result"
  | Some ratio ->
    Alcotest.(check bool)
      (Printf.sprintf "small batched ratio %.2fx (paper: 3x-10x)" ratio)
      true
      (ratio >= 3.0 && ratio <= 10.0)

let test_table1_batched_medium_band () =
  let w =
    { Cholesky_batched.default_workload with Cholesky_batched.n = 128; batch = 2000 }
  in
  let r =
    Tuner.tune ~objective:(Cholesky_batched.objective w)
      (Cholesky_batched.space ~workload:w ())
  in
  let baseline = Cholesky_batched.baseline_gflops w in
  match Tuner.improvement r ~baseline with
  | None -> Alcotest.fail "no result"
  | Some ratio ->
    Alcotest.(check bool)
      (Printf.sprintf "medium batched ratio %.2fx (paper: up to 3x)" ratio)
      true
      (ratio >= 1.5 && ratio <= 3.5)

let test_fft_tuner_picks_valid_plan () =
  let r = Tuner.tune ~objective:Fft.objective (Fft.space ~max_size:64 ()) in
  match r.Tuner.best with
  | None -> Alcotest.fail "no fft plan"
  | Some c ->
    let size = Value.to_int (List.assoc "size" c.Tuner.bindings) in
    Alcotest.(check bool) "prime size" true (size >= 3);
    Alcotest.(check bool) "positive score" true (c.Tuner.score > 0.0)

let () =
  Alcotest.run "tuner"
    [
      ( "pipeline",
        [
          Alcotest.test_case "finds optimum" `Quick test_finds_optimum;
          Alcotest.test_case "respects constraints" `Quick
            test_respects_constraints;
          Alcotest.test_case "top-n sorted" `Quick test_top_n_sorted_unique;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential_best;
          Alcotest.test_case "improvement" `Quick test_improvement;
          Alcotest.test_case "fully pruned space" `Quick test_empty_space_tunes;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "raising objective skipped" `Quick
            test_raising_objective_skipped;
          Alcotest.test_case "retry recovers transient failure" `Quick
            test_retry_recovers_transient_failure;
          Alcotest.test_case "timeout unwedges campaign" `Quick
            test_timeout_unwedges_campaign;
        ] );
      ( "table1 bands",
        [
          Alcotest.test_case "GEMM ~80% of peak" `Slow test_table1_gemm_band;
          Alcotest.test_case "batched small 3-10x" `Quick
            test_table1_batched_small_band;
          Alcotest.test_case "batched medium <=3.5x" `Quick
            test_table1_batched_medium_band;
          Alcotest.test_case "fft plan" `Quick test_fft_tuner_picks_valid_plan;
        ] );
    ]
