open Beast_core

let no_env : Expr.lookup = fun _ -> raise Not_found
let env_of bindings name = List.assoc name bindings

let ints_of arr = Array.to_list (Array.map Value.to_int arr)

let check_mat msg env it expected =
  Alcotest.(check (list int)) msg expected (ints_of (Iter.materialize env it))

let test_range_basic () =
  check_mat "range 0..5" no_env (Iter.range_i 0 5) [ 0; 1; 2; 3; 4 ];
  check_mat "range step 2" no_env (Iter.range_i ~step:2 1 8) [ 1; 3; 5; 7 ];
  check_mat "empty range" no_env (Iter.range_i 5 5) [];
  check_mat "backwards empty" no_env (Iter.range_i 5 2) []

let test_range_negative_step () =
  (* Figure 5 uses range(x, 0, -1). *)
  check_mat "descending" no_env (Iter.range_i ~step:(-1) 4 0) [ 4; 3; 2; 1 ];
  check_mat "descending step 2" no_env (Iter.range_i ~step:(-2) 7 0) [ 7; 5; 3; 1 ]

let test_range_zero_step () =
  Alcotest.check_raises "zero step"
    (Expr.Eval_error "range: zero step")
    (fun () -> ignore (Iter.materialize no_env (Iter.range_i ~step:0 0 5)))

let test_range_dependent () =
  (* The nested iterator of Figure 1: inner = range(outer). *)
  let it = Iter.upto (Expr.var "outer") in
  let env = env_of [ ("outer", Value.Int 3) ] in
  check_mat "depends on outer" env it [ 0; 1; 2 ];
  Alcotest.(check (list string)) "deps" [ "outer" ] (Iter.deps it)

let test_values () =
  (* The Fibonacci list iterator of Figure 1. *)
  check_mat "explicit list" no_env
    (Iter.ints [ 1; 1; 2; 3; 5; 8; 13 ])
    [ 1; 1; 2; 3; 5; 8; 13 ]

let test_single () =
  check_mat "single expression value" no_env (Iter.single (Expr.int 42)) [ 42 ]

let primes_upto max_n =
  (* The closure iterator of Figure 3. *)
  Iter.closure ~deps:[ "max" ] (fun env ->
      let maxv = Value.to_int (env "max") in
      ignore max_n;
      let rec next old_primes n () =
        if n > maxv then Seq.Nil
        else if List.exists (fun p -> n mod p = 0) old_primes then
          next old_primes (n + 2) ()
        else Seq.Cons (Value.Int n, next (n :: old_primes) (n + 2))
      in
      fun () -> Seq.Cons (Value.Int 1, fun () -> Seq.Cons (Value.Int 2, next [] 3)))

let test_closure_primes () =
  let env = env_of [ ("max", Value.Int 13) ] in
  check_mat "primes per Figure 3" env (primes_upto ()) [ 1; 2; 3; 5; 7; 11; 13 ];
  Alcotest.(check (list string)) "declared deps" [ "max" ] (Iter.deps (primes_upto ()))

let test_closure_fibonacci () =
  (* Figure 6: Fibonacci numbers up to and including MAX. *)
  let fib =
    Iter.closure ~deps:[ "max" ] (fun env ->
        let maxv = Value.to_int (env "max") in
        let rec go k n () =
          if n > maxv then Seq.Nil else Seq.Cons (Value.Int n, go n (n + k))
        in
        go 1 1)
  in
  let env = env_of [ ("max", Value.Int 21) ] in
  check_mat "fibonacci" env fib [ 1; 2; 3; 5; 8; 13; 21 ]

let test_union () =
  check_mat "union sorts and dedups" no_env
    (Iter.union (Iter.ints [ 3; 1; 5 ]) (Iter.ints [ 5; 2 ]))
    [ 1; 2; 3; 5 ]

let test_inter () =
  check_mat "intersection" no_env
    (Iter.inter (Iter.ints [ 1; 2; 3; 4 ]) (Iter.ints [ 3; 4; 5 ]))
    [ 3; 4 ];
  check_mat "disjoint" no_env
    (Iter.inter (Iter.ints [ 1 ]) (Iter.ints [ 2 ]))
    []

let test_concat () =
  check_mat "concat preserves order" no_env
    (Iter.concat (Iter.ints [ 3; 1 ]) (Iter.ints [ 2 ]))
    [ 3; 1; 2 ]

let test_map_filter () =
  let doubled = Iter.map (fun v -> Value.mul v (Value.Int 2)) (Iter.range_i 0 4) in
  check_mat "map" no_env doubled [ 0; 2; 4; 6 ];
  let evens =
    Iter.filter
      (fun v -> Value.to_int v mod 2 = 0)
      (Iter.range_i 0 10)
  in
  check_mat "filter" no_env evens [ 0; 2; 4; 6; 8 ]

let test_algebra_deps () =
  let it =
    Iter.union
      (Iter.upto (Expr.var "a"))
      (Iter.closure ~deps:[ "b" ] (fun _ -> Seq.empty))
  in
  Alcotest.(check (list string)) "union deps" [ "a"; "b" ] (Iter.deps it);
  Alcotest.(check bool) "static" true (Iter.is_static (Iter.range_i 0 3));
  Alcotest.(check bool) "not static" false (Iter.is_static it)

let test_cardinality () =
  let card it = Iter.cardinality no_env it in
  Alcotest.(check int) "range card" 5 (card (Iter.range_i 0 5));
  Alcotest.(check int) "stepped card" 4 (card (Iter.range_i ~step:2 1 8));
  Alcotest.(check int) "descending card" 4 (card (Iter.range_i ~step:(-1) 4 0));
  Alcotest.(check int) "values card" 3 (card (Iter.ints [ 1; 2; 3 ]));
  Alcotest.(check int) "union card" 4
    (card (Iter.union (Iter.ints [ 1; 2 ]) (Iter.ints [ 2; 3; 4 ])))

let prop_range_matches_python =
  QCheck.Test.make ~name:"range cardinality matches contents" ~count:500
    QCheck.(triple (int_range (-20) 20) (int_range (-20) 20)
              (oneofl [ -3; -2; -1; 1; 2; 3 ]))
    (fun (start, stop, step) ->
      let it = Iter.range_i ~step start stop in
      Iter.cardinality no_env it
      = Array.length (Iter.materialize no_env it))

let prop_range_monotone =
  QCheck.Test.make ~name:"positive-step range strictly increasing" ~count:500
    QCheck.(triple (int_range (-20) 20) (int_range (-20) 20) (int_range 1 4))
    (fun (start, stop, step) ->
      let vs = ints_of (Iter.materialize no_env (Iter.range_i ~step start stop)) in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      increasing vs && List.for_all (fun v -> v >= start && v < stop) vs)

let prop_union_commutative =
  let arb = QCheck.(pair (small_list small_nat) (small_list small_nat)) in
  QCheck.Test.make ~name:"union commutative" ~count:300 arb (fun (xs, ys) ->
      ints_of
        (Iter.materialize no_env (Iter.union (Iter.ints xs) (Iter.ints ys)))
      = ints_of
          (Iter.materialize no_env (Iter.union (Iter.ints ys) (Iter.ints xs))))

let prop_inter_subset =
  let arb = QCheck.(pair (small_list small_nat) (small_list small_nat)) in
  QCheck.Test.make ~name:"intersection is a subset of both" ~count:300 arb
    (fun (xs, ys) ->
      let inter =
        ints_of
          (Iter.materialize no_env (Iter.inter (Iter.ints xs) (Iter.ints ys)))
      in
      List.for_all (fun v -> List.mem v xs && List.mem v ys) inter)

let () =
  Alcotest.run "iter"
    [
      ( "ranges",
        [
          Alcotest.test_case "basic" `Quick test_range_basic;
          Alcotest.test_case "negative step" `Quick test_range_negative_step;
          Alcotest.test_case "zero step" `Quick test_range_zero_step;
          Alcotest.test_case "dependent bounds" `Quick test_range_dependent;
          Alcotest.test_case "cardinality" `Quick test_cardinality;
        ] );
      ( "kinds",
        [
          Alcotest.test_case "value list" `Quick test_values;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "closure primes (Fig. 3)" `Quick test_closure_primes;
          Alcotest.test_case "closure fibonacci (Fig. 6)" `Quick
            test_closure_fibonacci;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "intersection" `Quick test_inter;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "map/filter" `Quick test_map_filter;
          Alcotest.test_case "deps" `Quick test_algebra_deps;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_range_matches_python;
            prop_range_monotone;
            prop_union_commutative;
            prop_inter_subset;
          ] );
    ]
