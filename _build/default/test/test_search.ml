open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_autotune

let rng () = Random.State.make [| 7; 11; 13 |]

let simple_plan () =
  let open Expr.Infix in
  let sp = Space.create ~name:"simple" () in
  Space.iterator sp "x" (Iter.range_i 0 30);
  Space.iterator sp "y" (Iter.range (Expr.int 0) (Expr.var "x" +: Expr.int 1));
  Space.constrain sp "odd" ((Expr.var "x" +: Expr.var "y") %: Expr.int 2 <>: Expr.int 0);
  Plan.make_exn sp

let test_sample_valid () =
  let plan = simple_plan () in
  let r = rng () in
  for _ = 1 to 100 do
    match Search.sample ~rng:r plan with
    | None -> Alcotest.fail "dense space must sample"
    | Some slots ->
      let x = slots.(Plan.slot_of plan "x") and y = slots.(Plan.slot_of plan "y") in
      Alcotest.(check bool) "y <= x" true (y <= x);
      Alcotest.(check bool) "even sum" true ((x + y) mod 2 = 0)
  done

let test_sample_empty_space () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 10);
  Space.constrain sp "none" (Expr.bool true);
  let plan = Plan.make_exn sp in
  Alcotest.(check bool) "no sample" true (Search.sample ~rng:(rng ()) plan = None)

let test_sample_sparse_gemm () =
  (* The motivating case: GEMM's divisor constraints make uniform draws
     hopeless; backtracking must still sample quickly. *)
  let device = Device.scale ~max_dim:32 ~max_threads:128 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  let r = rng () in
  let ok = ref 0 in
  for _ = 1 to 20 do
    match Search.sample ~rng:r plan with
    | Some _ -> incr ok
    | None -> ()
  done;
  Alcotest.(check bool) "mostly succeeds" true (!ok >= 15)

let test_random_search_finds_good () =
  let plan = simple_plan () in
  let objective lookup =
    float_of_int (Value.to_int (lookup "x") + Value.to_int (lookup "y"))
  in
  match Search.random_search ~rng:(rng ()) ~budget:300 ~objective plan with
  | None -> Alcotest.fail "search failed"
  | Some c ->
    (* optimum is x=29, y=29 (even sum), score 58. *)
    Alcotest.(check bool) "near optimum" true (c.Search.score >= 50.0)

let test_hill_climb_improves () =
  let device = Device.scale ~max_dim:32 ~max_threads:128 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  let objective = Gemm.objective settings in
  Search.reset_counters ();
  match Search.hill_climb ~rng:(rng ()) ~restarts:4 ~steps:60 ~objective plan with
  | None -> Alcotest.fail "no start"
  | Some c ->
    Alcotest.(check bool) "positive score" true (c.Search.score > 0.0);
    Alcotest.(check bool) "evaluations counted" true (Search.evaluations () > 0);
    Alcotest.(check int) "bindings cover iterators" 15
      (List.length c.Search.bindings)

let test_search_candidates_satisfy_constraints () =
  let device = Device.scale ~max_dim:32 ~max_threads:128 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let plan = Plan.make_exn (Gemm.space ~settings ()) in
  match
    Search.random_search ~rng:(rng ()) ~budget:20
      ~objective:(Gemm.objective settings) plan
  with
  | None -> Alcotest.fail "search failed"
  | Some c ->
    let geti n = Value.to_int (List.assoc n c.Search.bindings) in
    let threads = geti "dim_m" * geti "dim_n" in
    Alcotest.(check int) "a-grid reshape holds"
      threads
      (geti "dim_m_a" * geti "dim_n_a");
    Alcotest.(check int) "full warps" 0 (threads mod 32)

(* ---- Pareto / energy ---- *)

let test_pareto_front_nondominated () =
  let open Expr.Infix in
  let sp = Space.create ~name:"pareto" () in
  Space.iterator sp "x" (Iter.range_i 0 21);
  Space.iterator sp "y" (Iter.range_i 0 21);
  ignore ( +: );
  (* objective 1 favours x, objective 2 favours y; front = maximal x+y
     combos that trade off. *)
  let f1 lookup = float_of_int (Value.to_int (lookup "x")) in
  let f2 lookup =
    float_of_int (Value.to_int (lookup "y")) -. (0.1 *. float_of_int (Value.to_int (lookup "x")))
  in
  let front = Tuner.pareto ~objectives:(f1, f2) sp in
  Alcotest.(check bool) "nonempty" true (front <> []);
  (* No member dominates another. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then begin
            let a1, a2 = a.Tuner.bi_scores and b1, b2 = b.Tuner.bi_scores in
            Alcotest.(check bool) "non-dominated" false
              (a1 >= b1 && a2 >= b2 && (a1 > b1 || a2 > b2))
          end)
        front)
    front;
  (* x=20 maximizes f1; y=20,x=0 maximizes f2; both extremes present. *)
  Alcotest.(check bool) "x extreme" true
    (List.exists (fun c -> fst c.Tuner.bi_scores = 20.0) front);
  Alcotest.(check bool) "y extreme" true
    (List.exists (fun c -> snd c.Tuner.bi_scores = 20.0) front)

let test_pareto_max_front () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 201);
  let f1 lookup = float_of_int (Value.to_int (lookup "x")) in
  let f2 lookup = -.float_of_int (Value.to_int (lookup "x")) in
  let front = Tuner.pareto ~max_front:10 ~objectives:(f1, f2) sp in
  Alcotest.(check int) "capped" 10 (List.length front);
  Alcotest.(check bool) "extremes kept" true
    (List.exists (fun c -> fst c.Tuner.bi_scores = 200.0) front
    && List.exists (fun c -> fst c.Tuner.bi_scores = 0.0) front)

let good_dgemm =
  {
    Perf_model.precision = Device.Double;
    arithmetic = Device.Real;
    trans_a = false;
    trans_b = false;
    dim_m = 16;
    dim_n = 16;
    blk_m = 96;
    blk_n = 96;
    blk_k = 16;
    dim_vec = 2;
    vec_mul = 1;
    dim_m_a = 16;
    dim_n_a = 16;
    dim_m_b = 8;
    dim_n_b = 32;
    tex_a = 0;
    tex_b = 0;
    shmem_l1 = 0;
    shmem_banks = 1;
  }

let test_energy_model () =
  match Perf_model.energy Device.tesla_k40c good_dgemm with
  | None -> Alcotest.fail "feasible config must have energy"
  | Some e ->
    let tdp = Device.tesla_k40c.Device.tdp_watts in
    Alcotest.(check bool) "power above idle floor" true
      (e.Perf_model.power_watts > 0.25 *. tdp);
    Alcotest.(check bool) "power below TDP" true (e.Perf_model.power_watts <= tdp);
    Alcotest.(check bool) "efficiency positive" true
      (e.Perf_model.gflops_per_watt > 0.0);
    (* energy/flop and flops/watt are reciprocal up to units *)
    Alcotest.(check (float 1e-9)) "consistency"
      (1.0 /. e.Perf_model.gflops_per_watt)
      e.Perf_model.energy_per_gflop_j

let test_energy_infeasible () =
  let broken = { good_dgemm with Perf_model.blk_m = 512; blk_n = 512 } in
  Alcotest.(check bool) "None" true
    (Perf_model.energy Device.tesla_k40c broken = None);
  Alcotest.(check (float 0.0)) "gflops_per_watt 0" 0.0
    (Perf_model.gflops_per_watt Device.tesla_k40c broken)

let test_energy_slower_kernel_draws_less_power () =
  let slow = { good_dgemm with Perf_model.blk_m = 16; blk_n = 16;
               dim_m = 8; dim_n = 8; blk_k = 8 } in
  match
    ( Perf_model.energy Device.tesla_k40c good_dgemm,
      Perf_model.energy Device.tesla_k40c slow )
  with
  | Some fast, Some slow ->
    Alcotest.(check bool) "fast kernel draws more power" true
      (fast.Perf_model.power_watts > slow.Perf_model.power_watts);
    Alcotest.(check bool) "fast kernel is more efficient here" true
      (fast.Perf_model.gflops_per_watt > slow.Perf_model.gflops_per_watt)
  | _ -> Alcotest.fail "both feasible"

let () =
  Alcotest.run "search"
    [
      ( "sampling",
        [
          Alcotest.test_case "valid samples" `Quick test_sample_valid;
          Alcotest.test_case "empty space" `Quick test_sample_empty_space;
          Alcotest.test_case "sparse gemm space" `Quick test_sample_sparse_gemm;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "random search" `Quick test_random_search_finds_good;
          Alcotest.test_case "hill climb" `Quick test_hill_climb_improves;
          Alcotest.test_case "constraints hold" `Quick
            test_search_candidates_satisfy_constraints;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "non-dominated front" `Quick
            test_pareto_front_nondominated;
          Alcotest.test_case "max_front cap" `Quick test_pareto_max_front;
        ] );
      ( "energy",
        [
          Alcotest.test_case "model" `Quick test_energy_model;
          Alcotest.test_case "infeasible" `Quick test_energy_infeasible;
          Alcotest.test_case "power scales with speed" `Quick
            test_energy_slower_kernel_draws_less_power;
        ] );
    ]
