open Beast_core

(* Validation of the non-C language backends (Section XI compares
   Python, Lua, C, Java, Fortran). Python and Java are executed with the
   container's interpreters; Lua and Fortran are checked structurally
   (no runtime available offline). *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_command cmd =
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> List.rev !lines
  | _ -> Alcotest.failf "command failed: %s" cmd

let parse_stats lines =
  let survivors = ref (-1) and iterations = ref (-1) in
  let pruned = ref [] in
  List.iter
    (fun line ->
      (* Lua's print uses a tab separator; normalize. *)
      let line = String.map (fun c -> if c = '\t' then ' ' else c) line in
      match
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      with
      | [ "survivors"; n ] -> survivors := int_of_string n
      | [ "iterations"; n ] -> iterations := int_of_string n
      | [ "pruned"; name; n ] -> pruned := (name, int_of_string n) :: !pruned
      | _ -> ())
    lines;
  (!survivors, !iterations, List.rev !pruned)

let temp_dir () =
  let dir = Filename.temp_file "beast_backend" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let reference_for sp =
  let plan = Plan.make_exn sp in
  (plan, Engine_staged.run plan)

let check_stats name reference (survivors, iterations, pruned) =
  Alcotest.(check int) (name ^ " survivors") reference.Engine.survivors survivors;
  Alcotest.(check int) (name ^ " iterations") reference.Engine.loop_iterations
    iterations;
  Array.iter
    (fun (cname, _, k) ->
      Alcotest.(check int)
        (Printf.sprintf "%s pruned %s" name cname)
        k
        (List.assoc (Codegen_c.sanitize cname) pruned))
    reference.Engine.pruned

let test_python_executes () =
  let sp = Support.triangle_space () in
  let plan, reference = reference_for sp in
  let source = Codegen.generate_exn Codegen.Python plan in
  let dir = temp_dir () in
  let file = Filename.concat dir "sweep.py" in
  write_file file source;
  let stats = parse_stats (run_command (Printf.sprintf "python3 %s" (Filename.quote file))) in
  check_stats "python" reference stats

let test_python_negative_division () =
  (* Backend division must truncate toward zero like the OCaml engines,
     not floor like native Python //. *)
  let open Expr.Infix in
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i (-7) 8);
  Space.derived sp "q" (Expr.var "x" /: Expr.int 3);
  Space.constrain sp "q_nonzero" (Expr.var "q" =: Expr.int 0);
  let plan, reference = reference_for sp in
  let source = Codegen.generate_exn Codegen.Python plan in
  let dir = temp_dir () in
  let file = Filename.concat dir "sweep.py" in
  write_file file source;
  let stats = parse_stats (run_command (Printf.sprintf "python3 %s" (Filename.quote file))) in
  check_stats "python negative div" reference stats

let test_java_executes () =
  let sp = Support.triangle_space () in
  let plan, reference = reference_for sp in
  let source = Codegen.generate_exn Codegen.Java plan in
  let dir = temp_dir () in
  let file = Filename.concat dir "BeastSweep.java" in
  write_file file source;
  let rc = Sys.command (Printf.sprintf "javac -d %s %s 2>&1" (Filename.quote dir) (Filename.quote file)) in
  if rc <> 0 then Alcotest.fail "javac failed";
  let stats =
    parse_stats
      (run_command (Printf.sprintf "java -cp %s BeastSweep" (Filename.quote dir)))
  in
  check_stats "java" reference stats

let test_java_negative_step () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i ~step:(-2) 9 0);
  Space.iterator sp "y" (Iter.range (Expr.var "x") (Expr.int 12));
  let plan, reference = reference_for sp in
  let source = Codegen.generate_exn Codegen.Java plan in
  let dir = temp_dir () in
  let file = Filename.concat dir "BeastSweep.java" in
  write_file file source;
  let rc = Sys.command (Printf.sprintf "javac -d %s %s 2>&1" (Filename.quote dir) (Filename.quote file)) in
  if rc <> 0 then Alcotest.fail "javac failed";
  let stats =
    parse_stats
      (run_command (Printf.sprintf "java -cp %s BeastSweep" (Filename.quote dir)))
  in
  check_stats "java negative step" reference stats

let test_lua_structure () =
  let plan, _ = reference_for (Support.triangle_space ()) in
  let source = Codegen.generate_exn Codegen.Lua plan in
  Alcotest.(check bool) "no goto (5.1 compatible)" false (contains source "goto");
  Alcotest.(check bool) "truncating division helper" true
    (contains source "beast_div");
  Alcotest.(check bool) "constraint comment" true (contains source "odd_sum");
  Alcotest.(check bool) "continuation else" true (contains source "else")

let test_fortran_structure () =
  let plan, _ = reference_for (Support.triangle_space ()) in
  let source = Codegen.generate_exn Codegen.Fortran plan in
  Alcotest.(check bool) "program header" true (contains source "program beast_sweep");
  Alcotest.(check bool) "do loops" true (contains source "do v_");
  Alcotest.(check bool) "cycle for pruning" true (contains source "cycle");
  Alcotest.(check bool) "8-byte integers" true (contains source "integer(kind=8)");
  (* Free-form line-length limit. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "line fits" true (String.length line <= 132))
    (String.split_on_char '\n' source)

let test_all_backends_generate_for_gemm_like () =
  (* A space with the structural features of the GEMM model: settings,
     conditionals, dependent ranges, derived chains, several constraint
     classes. All five backends must generate successfully. *)
  let open Expr.Infix in
  let sp = Space.create ~name:"gemm_like" () in
  Space.setting_s sp "precision" "double";
  Space.setting_i sp "max_dim" 8;
  Space.iterator sp "dim_m" (Iter.range (Expr.int 1) (Expr.var "max_dim" +: Expr.int 1));
  Space.iterator sp "blk_m"
    (Iter.range ~step:(Expr.var "dim_m") (Expr.var "dim_m")
       (Expr.var "max_dim" +: Expr.int 1));
  Space.derived sp "thr_m" (Expr.var "blk_m" /: Expr.var "dim_m");
  Space.derived sp "regs"
    (Expr.if_
       (Expr.var "precision" =: Expr.string "double")
       (Expr.var "thr_m" *: Expr.int 2)
       (Expr.var "thr_m"));
  Space.constrain sp ~cls:Space.Hard "over_regs" (Expr.var "regs" >: Expr.int 8);
  Space.constrain sp ~cls:Space.Soft "low_work" (Expr.var "thr_m" <: Expr.int 2);
  let plan = Plan.make_exn sp in
  List.iter
    (fun lang ->
      match Codegen.generate lang plan with
      | Ok source ->
        Alcotest.(check bool)
          (Codegen.lang_name lang ^ " nonempty")
          true
          (String.length source > 100)
      | Error e ->
        Alcotest.failf "%s failed: %a" (Codegen.lang_name lang) Codegen_c.pp_error
          e)
    Codegen.all_langs

let test_file_extensions () =
  Alcotest.(check (list string))
    "extensions" [ ".c"; ".py"; ".lua"; ".f90"; ".java" ]
    (List.map Codegen.file_extension Codegen.all_langs)

let () =
  Alcotest.run "backends"
    [
      ( "python",
        [
          Alcotest.test_case "executes and matches" `Quick test_python_executes;
          Alcotest.test_case "negative division" `Quick
            test_python_negative_division;
        ] );
      ( "java",
        [
          Alcotest.test_case "executes and matches" `Quick test_java_executes;
          Alcotest.test_case "negative step" `Quick test_java_negative_step;
        ] );
      ( "structural",
        [
          Alcotest.test_case "lua" `Quick test_lua_structure;
          Alcotest.test_case "fortran" `Quick test_fortran_structure;
          Alcotest.test_case "gemm-like space, all langs" `Quick
            test_all_backends_generate_for_gemm_like;
          Alcotest.test_case "extensions" `Quick test_file_extensions;
        ] );
    ]
