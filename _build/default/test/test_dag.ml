open Beast_core

let mk nodes edges =
  match Dag.create ~nodes ~edges with
  | Ok d -> d
  | Error e -> Alcotest.failf "unexpected DAG error: %a" Dag.pp_error e

(* The dependency structure of Figure 16, reduced to its shape. *)
let fig16 () =
  mk
    [
      "dim_m"; "dim_n"; "blk_k"; "blk_m"; "blk_n"; "max_threads";
      "partial_warps"; "fetch_a"; "fetch_b"; "blk_m_div"; "blk_n_div";
      "max_regs_thread"; "max_regs_block"; "low_regs"; "max_shmem";
      "low_shmem";
    ]
    [
      ("dim_m", "blk_m"); ("dim_n", "blk_n");
      ("dim_m", "max_threads"); ("dim_n", "max_threads");
      ("dim_m", "partial_warps"); ("dim_n", "partial_warps");
      ("blk_m", "fetch_a"); ("blk_k", "fetch_a");
      ("blk_n", "fetch_b"); ("blk_k", "fetch_b");
      ("blk_m", "blk_m_div"); ("dim_m", "blk_m_div");
      ("blk_n", "blk_n_div"); ("dim_n", "blk_n_div");
      ("blk_m", "max_regs_thread"); ("blk_n", "max_regs_thread");
      ("max_regs_thread", "max_regs_block");
      ("max_regs_block", "low_regs");
      ("blk_m", "max_shmem"); ("blk_n", "max_shmem"); ("blk_k", "max_shmem");
      ("max_shmem", "low_shmem");
    ]

let test_levels () =
  let d = fig16 () in
  Alcotest.(check int) "source level" 0 (Dag.level d "dim_m");
  Alcotest.(check int) "blk_k source" 0 (Dag.level d "blk_k");
  Alcotest.(check int) "blk_m level" 1 (Dag.level d "blk_m");
  Alcotest.(check int) "fetch_a level" 2 (Dag.level d "fetch_a");
  Alcotest.(check int) "max_regs_block level" 3 (Dag.level d "max_regs_block");
  Alcotest.(check int) "low_regs level" 4 (Dag.level d "low_regs")

let test_level_sets () =
  let d = fig16 () in
  let sets = Dag.level_sets d in
  Alcotest.(check int) "5 levels" 5 (List.length sets);
  Alcotest.(check (list string))
    "level 0 in declaration order"
    [ "dim_m"; "dim_n"; "blk_k" ]
    (List.nth sets 0);
  (* Every node sits in the set of its level. *)
  List.iteri
    (fun i set ->
      List.iter
        (fun n -> Alcotest.(check int) (n ^ " level") i (Dag.level d n))
        set)
    sets

let test_topo_order () =
  let d = fig16 () in
  let order = Dag.topo_order d in
  Alcotest.(check int) "all nodes" 16 (List.length order);
  let pos n =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing from topo order" n
      | x :: rest -> if x = n then i else go (i + 1) rest
    in
    go 0 order
  in
  List.iter
    (fun n ->
      List.iter
        (fun dep ->
          Alcotest.(check bool)
            (Printf.sprintf "%s after %s" n dep)
            true
            (pos dep < pos n))
        (Dag.deps_of d n))
    order

let test_cycle_detection () =
  match
    Dag.create ~nodes:[ "a"; "b"; "c" ]
      ~edges:[ ("a", "b"); ("b", "c"); ("c", "a") ]
  with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error (Dag.Cycle names) ->
    Alcotest.(check int) "cycle length" 4 (List.length names)
  | Error e -> Alcotest.failf "wrong error: %a" Dag.pp_error e

let test_self_cycle () =
  match Dag.create ~nodes:[ "a" ] ~edges:[ ("a", "a") ] with
  | Ok _ -> Alcotest.fail "self-cycle not detected"
  | Error (Dag.Cycle _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Dag.pp_error e

let test_unknown_node () =
  match Dag.create ~nodes:[ "a" ] ~edges:[ ("ghost", "a") ] with
  | Ok _ -> Alcotest.fail "unknown node not detected"
  | Error (Dag.Unknown_node (referrer, missing)) ->
    Alcotest.(check string) "referrer" "a" referrer;
    Alcotest.(check string) "missing" "ghost" missing
  | Error e -> Alcotest.failf "wrong error: %a" Dag.pp_error e

let test_neighbours () =
  let d = fig16 () in
  Alcotest.(check (list string))
    "deps of blk_m_div" [ "dim_m"; "blk_m" ]
    (Dag.deps_of d "blk_m_div");
  Alcotest.(check bool)
    "dim_m used by blk_m" true
    (List.mem "blk_m" (Dag.users_of d "dim_m"))

let test_transitive () =
  let d = fig16 () in
  Alcotest.(check (list string))
    "ancestors of low_regs"
    [ "blk_m"; "blk_n"; "dim_m"; "dim_n"; "max_regs_block"; "max_regs_thread" ]
    (Dag.transitive_deps d "low_regs");
  Alcotest.(check bool)
    "low_shmem descends from blk_k" true
    (List.mem "low_shmem" (Dag.transitive_users d "blk_k"))

let test_dot () =
  let d = fig16 () in
  let dot = Dag.to_dot ~name:"fig16" d in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 0 && String.sub dot 0 14 = "digraph fig16 ");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge rendered" true
    (contains dot "\"dim_m\" -> \"blk_m\";")

let test_duplicate_edges () =
  let d =
    mk [ "a"; "b" ] [ ("a", "b"); ("a", "b"); ("a", "b") ]
  in
  Alcotest.(check (list string)) "dedup" [ "a" ] (Dag.deps_of d "b")

(* Random DAG generator: edges only from lower to higher index, so
   always acyclic. *)
let arb_dag =
  let gen =
    let open QCheck.Gen in
    int_range 2 12 >>= fun n ->
    let nodes = List.init n (fun i -> Printf.sprintf "n%d" i) in
    list_size (int_range 0 (2 * n))
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun pairs ->
    let edges =
      List.filter_map
        (fun (i, j) ->
          if i < j then Some (Printf.sprintf "n%d" i, Printf.sprintf "n%d" j)
          else None)
        pairs
    in
    return (nodes, edges)
  in
  QCheck.make gen

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo order respects every edge" ~count:300 arb_dag
    (fun (nodes, edges) ->
      let d = mk nodes edges in
      let order = Dag.topo_order d in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.replace pos n i) order;
      List.for_all
        (fun (u, v) -> Hashtbl.find pos u < Hashtbl.find pos v)
        edges)

let prop_level_sets_partition =
  QCheck.Test.make ~name:"level sets partition the nodes" ~count:300 arb_dag
    (fun (nodes, edges) ->
      let d = mk nodes edges in
      let flat = List.concat (Dag.level_sets d) in
      List.sort String.compare flat = List.sort String.compare nodes)

let prop_level_exceeds_deps =
  QCheck.Test.make ~name:"node level exceeds dependency levels" ~count:300
    arb_dag (fun (nodes, edges) ->
      let d = mk nodes edges in
      List.for_all
        (fun n ->
          List.for_all (fun dep -> Dag.level d dep < Dag.level d n) (Dag.deps_of d n))
        nodes)

let () =
  Alcotest.run "dag"
    [
      ( "structure",
        [
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "level sets (Fig. 16)" `Quick test_level_sets;
          Alcotest.test_case "topological order" `Quick test_topo_order;
          Alcotest.test_case "neighbours" `Quick test_neighbours;
          Alcotest.test_case "transitive closure" `Quick test_transitive;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges;
        ] );
      ( "errors",
        [
          Alcotest.test_case "cycle" `Quick test_cycle_detection;
          Alcotest.test_case "self cycle" `Quick test_self_cycle;
          Alcotest.test_case "unknown node" `Quick test_unknown_node;
        ] );
      ("export", [ Alcotest.test_case "dot" `Quick test_dot ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_topo_respects_edges;
            prop_level_sets_partition;
            prop_level_exceeds_deps;
          ] );
    ]
