open Beast_lang

let test_make () =
  let n = Loopnest.make ~depth:2 ~total:100 in
  Alcotest.(check int) "sqrt 100" 10 n.Loopnest.length;
  let n = Loopnest.make ~depth:2 ~total:101 in
  Alcotest.(check int) "ceil sqrt 101" 11 n.Loopnest.length;
  let n = Loopnest.make ~depth:3 ~total:1000 in
  Alcotest.(check int) "cbrt 1000" 10 n.Loopnest.length;
  let n = Loopnest.make ~depth:1 ~total:7 in
  Alcotest.(check int) "depth 1" 7 n.Loopnest.length;
  Alcotest.(check int) "iterations" 49
    (Loopnest.iterations (Loopnest.make ~depth:2 ~total:45))

let test_make_invalid () =
  Alcotest.check_raises "depth 0" (Invalid_argument "Loopnest.make: depth in 1..4")
    (fun () -> ignore (Loopnest.make ~depth:0 ~total:10));
  Alcotest.check_raises "depth 5" (Invalid_argument "Loopnest.make: depth in 1..4")
    (fun () -> ignore (Loopnest.make ~depth:5 ~total:10))

let test_reference_checksum () =
  (* depth 1, length 4: sum (i+1) = 1+2+3+4 = 10. *)
  let o = Loopnest.reference { Loopnest.depth = 1; length = 4 } in
  Alcotest.(check int) "iterations" 4 o.Loopnest.body_iterations;
  Alcotest.(check int) "checksum" 10 o.Loopnest.checksum;
  (* depth 2, length 3: sum over i,j of (i+j+1) = 9*1 + 2*(sum i)*3 = 9+18=27. *)
  let o = Loopnest.reference { Loopnest.depth = 2; length = 3 } in
  Alcotest.(check int) "iterations" 9 o.Loopnest.body_iterations;
  Alcotest.(check int) "checksum" 27 o.Loopnest.checksum

let nests =
  List.concat_map
    (fun depth -> [ Loopnest.make ~depth ~total:2000; Loopnest.make ~depth ~total:50 ])
    [ 1; 2; 3; 4 ]

let check_tier name run =
  List.iter
    (fun nest ->
      let expected = Loopnest.reference nest in
      let got = run nest in
      Alcotest.(check int)
        (Printf.sprintf "%s d%d iterations" name nest.Loopnest.depth)
        expected.Loopnest.body_iterations got.Loopnest.body_iterations;
      Alcotest.(check int)
        (Printf.sprintf "%s d%d checksum" name nest.Loopnest.depth)
        expected.Loopnest.checksum got.Loopnest.checksum)
    nests

let test_python_variants () =
  List.iter
    (fun variant ->
      check_tier
        ("python-" ^ Interp_python.variant_name variant)
        (Interp_python.run variant))
    Interp_python.all_variants

let test_lua_variants () =
  List.iter
    (fun variant ->
      check_tier
        ("lua-" ^ Interp_lua.variant_name variant)
        (Interp_lua.run variant))
    Interp_lua.all_variants

let test_native_flavours () =
  List.iter
    (fun flavour ->
      check_tier ("native-" ^ Native.flavour_name flavour) (Native.run flavour))
    Native.all_flavours

let test_lua_for_is_smallest_program () =
  (* The fused FORLOOP makes the for variant's bytecode the shortest. *)
  let nest = Loopnest.make ~depth:3 ~total:1000 in
  let size v = Interp_lua.instruction_count v nest in
  Alcotest.(check bool) "for < repeat" true
    (size Interp_lua.Numeric_for < size Interp_lua.Repeat_until);
  Alcotest.(check bool) "repeat < while" true
    (size Interp_lua.Repeat_until < size Interp_lua.While_loop)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let test_tier_ordering () =
  (* The headline claim of Figures 17-19: compiled >> VM >> AST-walking,
     by comfortable margins even on a small workload. *)
  let nest = Loopnest.make ~depth:2 ~total:1_000_000 in
  let _, t_python = time (fun () -> Interp_python.run Interp_python.For_xrange nest) in
  let _, t_lua = time (fun () -> Interp_lua.run Interp_lua.Numeric_for nest) in
  let _, t_native = time (fun () -> Native.run Native.Fortran_style nest) in
  Alcotest.(check bool) "lua at least 2x python" true (t_python > 2.0 *. t_lua);
  Alcotest.(check bool) "native at least 5x lua" true (t_lua > 5.0 *. t_native)

let () =
  Alcotest.run "lang"
    [
      ( "loopnest",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "invalid depth" `Quick test_make_invalid;
          Alcotest.test_case "reference checksum" `Quick test_reference_checksum;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "python variants" `Quick test_python_variants;
          Alcotest.test_case "lua variants" `Quick test_lua_variants;
          Alcotest.test_case "native flavours" `Quick test_native_flavours;
          Alcotest.test_case "lua bytecode sizes" `Quick
            test_lua_for_is_smallest_program;
        ] );
      ( "performance shape",
        [ Alcotest.test_case "tier ordering" `Slow test_tier_ordering ] );
    ]
