open Beast_core

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Compile a generated C file with the system compiler, run it, and parse
   its statistics output. *)
let compile_and_run ?(cflags = [ "-O2"; "-std=c99" ]) source =
  let dir = Filename.temp_file "beast" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "sweep.c" in
  let exe = Filename.concat dir "sweep" in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "cc %s -o %s %s %s 2>&1"
      (String.concat " " cflags)
      (Filename.quote exe) (Filename.quote c_file)
      (if contains source "pthread.h" then "-lpthread" else "")
  in
  let rc = Sys.command cmd in
  if rc <> 0 then Alcotest.failf "cc failed (%d) for:\n%s" rc source;
  let ic = Unix.open_process_in (Filename.quote exe) in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "generated binary failed");
  List.rev !lines

let parse_stats lines =
  let survivors = ref (-1) and iterations = ref (-1) in
  let pruned = ref [] in
  let hits = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "survivors"; n ] -> survivors := int_of_string n
      | [ "iterations"; n ] -> iterations := int_of_string n
      | [ "pruned"; name; n ] -> pruned := (name, int_of_string n) :: !pruned
      | "hit" :: vs -> hits := List.map int_of_string vs :: !hits
      | _ -> ())
    lines;
  (!survivors, !iterations, List.rev !pruned, List.rev !hits)

let check_c_matches_staged ?(threads = 1) sp =
  let plan = Plan.make_exn sp in
  let reference = Engine_staged.run plan in
  let source = Codegen_c.generate_exn ~threads plan in
  let survivors, iterations, pruned, _ = parse_stats (compile_and_run source) in
  Alcotest.(check int) "survivors" reference.Engine.survivors survivors;
  Alcotest.(check int) "iterations" reference.Engine.loop_iterations iterations;
  Array.iter
    (fun (name, _, k) ->
      let k' = List.assoc name pruned in
      Alcotest.(check int) ("pruned " ^ name) k k')
    reference.Engine.pruned

let test_c_triangle () = check_c_matches_staged (Support.triangle_space ())

let test_c_triangle_threads () =
  check_c_matches_staged ~threads:3 (Support.triangle_space ())

let test_c_static_closure () =
  (* Closure iterators over settings only are tabulated into the C. *)
  let sp = Space.create () in
  Space.setting_i sp "k" 5;
  Space.iterator sp "x"
    (Iter.closure ~deps:[ "k" ] (fun env ->
         let k = Value.to_int (env "k") in
         List.to_seq (List.init k (fun i -> Value.Int ((i * i) + 1)))));
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  check_c_matches_staged sp

let test_c_negative_step () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i ~step:(-2) 9 0);
  Space.iterator sp "y" (Iter.range (Expr.var "x") (Expr.int 12));
  check_c_matches_staged sp

let test_c_depth0_constraint () =
  let open Expr.Infix in
  let sp = Space.create () in
  Space.setting_i sp "enabled" 0;
  Space.iterator sp "x" (Iter.range_i 0 100);
  Space.constrain sp "disabled_space" (Expr.var "enabled" =: Expr.int 0);
  check_c_matches_staged sp

let test_c_emit_survivors () =
  let plan = Plan.make_exn (Support.triangle_space ()) in
  let source = Codegen_c.generate_exn ~emit_survivors:true plan in
  let _, _, _, hits = parse_stats (compile_and_run source) in
  let expected =
    List.map
      (fun bindings -> List.map (fun (_, v) -> Value.to_int v) bindings)
      (Support.brute_force (Support.triangle_space ()))
  in
  Alcotest.(check bool) "hit tuples match brute force" true
    (List.sort compare hits = List.sort compare expected)

let test_c_empty_values_iterator () =
  (* An empty value-list iterator compiles to a no-point region. *)
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 4);
  Space.iterator sp "y" (Iter.values []);
  Space.iterator sp "z" (Iter.range_i 0 3);
  check_c_matches_staged sp

let test_c_gemm_with_threads () =
  (* The pthread variant on a realistic space. *)
  let sp = Support.triangle_space () in
  check_c_matches_staged ~threads:2 sp

let test_c_unsupported_opaque () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 3);
  Space.derived_f sp "d" ~deps:[ "x" ] (fun env -> env "x");
  match Codegen_c.generate (Plan.make_exn sp) with
  | Error (Codegen_c.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "opaque body accepted"

let test_c_unsupported_dynamic_closure () =
  match Codegen_c.generate (Plan.make_exn (Support.mixed_space ())) with
  | Error (Codegen_c.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "dynamic closure accepted"

let test_c_source_shape () =
  let source = Codegen_c.generate_exn (Plan.make_exn (Support.triangle_space ())) in
  Alcotest.(check bool) "names preserved in comments" true
    (contains source "v_dim" || contains source "v_x");
  Alcotest.(check bool) "constraint names in comments" true
    (contains source "odd_sum");
  Alcotest.(check bool) "standard C headers" true (contains source "<stdint.h>");
  Alcotest.(check bool) "no pthread when single-threaded" false
    (contains source "pthread")

let prop_c_matches_staged =
  (* Reuse the random space generator shape from the engine tests, in a
     reduced form: only translatable constructs. *)
  let gen =
    let open QCheck.Gen in
    int_range 1 3 >>= fun n ->
    let rec build i prev acc =
      if i = n then return (List.rev acc)
      else
        (match prev with
        | [] -> map (fun k -> `Const (1 + k)) (int_range 0 4)
        | _ ->
          oneof
            [
              map (fun k -> `Const (1 + k)) (int_range 0 4);
              map (fun j -> `Var (List.nth prev (j mod List.length prev)))
                (int_range 0 10);
            ])
        >>= fun stop -> build (i + 1) (Printf.sprintf "i%d" i :: prev)
                          ((Printf.sprintf "i%d" i, stop) :: acc)
    in
    build 0 [] [] >>= fun iters ->
    int_range 0 2 >>= fun n_cons -> return (iters, n_cons)
  in
  QCheck.Test.make ~name:"generated C matches staged engine" ~count:12
    (QCheck.make gen) (fun (iters, n_cons) ->
      let open Expr.Infix in
      let sp = Space.create () in
      List.iter
        (fun (name, stop) ->
          let stop =
            match stop with
            | `Const k -> Expr.int k
            | `Var v -> Expr.var v
          in
          Space.iterator sp name (Iter.range (Expr.int 0) stop))
        iters;
      let names = List.map fst iters in
      List.iteri
        (fun i name ->
          if i < n_cons then
            Space.constrain sp
              (Printf.sprintf "c%d" i)
              (Expr.var name %: Expr.int 2 =: Expr.int 0))
        names;
      let plan = Plan.make_exn sp in
      let reference = Engine_staged.run plan in
      let source = Codegen_c.generate_exn plan in
      let survivors, iterations, _, _ = parse_stats (compile_and_run source) in
      survivors = reference.Engine.survivors
      && iterations = reference.Engine.loop_iterations)

let () =
  Alcotest.run "codegen_c"
    [
      ( "integration",
        [
          Alcotest.test_case "triangle space" `Quick test_c_triangle;
          Alcotest.test_case "triangle with pthreads" `Quick
            test_c_triangle_threads;
          Alcotest.test_case "static closure tabulated" `Quick
            test_c_static_closure;
          Alcotest.test_case "negative step" `Quick test_c_negative_step;
          Alcotest.test_case "depth-0 constraint" `Quick test_c_depth0_constraint;
          Alcotest.test_case "survivor emission" `Quick test_c_emit_survivors;
          Alcotest.test_case "empty values iterator" `Quick
            test_c_empty_values_iterator;
          Alcotest.test_case "pthread variant again" `Quick
            test_c_gemm_with_threads;
        ] );
      ( "limits",
        [
          Alcotest.test_case "opaque body rejected" `Quick
            test_c_unsupported_opaque;
          Alcotest.test_case "dynamic closure rejected" `Quick
            test_c_unsupported_dynamic_closure;
        ] );
      ("source", [ Alcotest.test_case "shape" `Quick test_c_source_shape ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_c_matches_staged ] );
    ]
