open Beast_core
open Expr.Infix

let env_of bindings name = List.assoc name bindings

let check_eval msg env e expected =
  Alcotest.(check bool)
    msg true
    (Value.equal (Expr.eval env e) expected)

let test_literals_and_vars () =
  let env = env_of [ ("x", Value.Int 5) ] in
  check_eval "literal" env (Expr.int 3) (Value.Int 3);
  check_eval "variable" env (Expr.var "x") (Value.Int 5);
  Alcotest.check_raises "unbound"
    (Expr.Eval_error "unbound variable y")
    (fun () -> ignore (Expr.eval env (Expr.var "y")))

let test_arithmetic () =
  let env = env_of [ ("x", Value.Int 7); ("y", Value.Int 3) ] in
  check_eval "x+y" env (Expr.var "x" +: Expr.var "y") (Value.Int 10);
  check_eval "x/y truncates" env (Expr.var "x" /: Expr.var "y") (Value.Int 2);
  check_eval "x%y" env (Expr.var "x" %: Expr.var "y") (Value.Int 1);
  check_eval "nested" env
    ((Expr.var "x" +: Expr.int 1) *: Expr.var "y")
    (Value.Int 24)

let test_relations () =
  let env = env_of [ ("x", Value.Int 7) ] in
  check_eval "lt" env (Expr.var "x" <: Expr.int 8) (Value.Bool true);
  check_eval "ge" env (Expr.var "x" >=: Expr.int 8) (Value.Bool false);
  check_eval "eq str" env
    (Expr.string "double" =: Expr.string "double")
    (Value.Bool true)

let test_short_circuit () =
  (* The right operand would divide by zero; short-circuiting must
     protect it, as the paper highlights in Section VIII-A. *)
  let env = env_of [ ("d", Value.Int 0); ("x", Value.Int 4) ] in
  let divides = Expr.var "x" %: Expr.var "d" =: Expr.int 0 in
  check_eval "and short-circuits" env
    (Expr.var "d" <>: Expr.int 0 &&: divides)
    (Value.Bool false);
  check_eval "or short-circuits" env
    (Expr.var "d" =: Expr.int 0 ||: divides)
    (Value.Bool true);
  Alcotest.check_raises "strict eval raises" Division_by_zero (fun () ->
      ignore (Expr.eval env divides))

let test_if () =
  let env = env_of [ ("p", Value.Str "double") ] in
  let e =
    Expr.if_ (Expr.var "p" =: Expr.string "double") (Expr.int 2) (Expr.int 1)
  in
  check_eval "if true branch" env e (Value.Int 2);
  let env = env_of [ ("p", Value.Str "single") ] in
  check_eval "if false branch" env e (Value.Int 1)

let test_builtins () =
  let env = env_of [] in
  check_eval "min" env (Expr.min_ (Expr.int 3) (Expr.int 5)) (Value.Int 3);
  check_eval "max" env (Expr.max_ (Expr.int 3) (Expr.int 5)) (Value.Int 5);
  check_eval "abs" env (Expr.abs_ (Expr.int (-4))) (Value.Int 4);
  check_eval "ceil_div" env (Expr.ceil_div (Expr.int 7) (Expr.int 2)) (Value.Int 4)

let test_free_vars () =
  let e = (Expr.var "b" +: Expr.var "a") *: Expr.var "b" in
  Alcotest.(check (list string)) "sorted dedup" [ "a"; "b" ] (Expr.free_vars e);
  Alcotest.(check (list string)) "literal none" [] (Expr.free_vars (Expr.int 1));
  let e = Expr.if_ (Expr.var "c") (Expr.var "t") (Expr.var "f") in
  Alcotest.(check (list string)) "if collects all" [ "c"; "f"; "t" ]
    (Expr.free_vars e)

let test_subst_simplify () =
  let resolve = function
    | "precision" -> Some (Value.Str "double")
    | _ -> None
  in
  let e =
    Expr.if_
      (Expr.var "precision" =: Expr.string "double")
      (Expr.var "x" *: Expr.int 2)
      (Expr.var "x")
  in
  let folded = Expr.simplify (Expr.subst resolve e) in
  Alcotest.(check bool)
    "settings fold selects branch" true
    (Expr.equal folded (Expr.var "x" *: Expr.int 2));
  let const = Expr.simplify (Expr.int 2 +: (Expr.int 3 *: Expr.int 4)) in
  Alcotest.(check bool) "constant folding" true (Expr.equal const (Expr.int 14))

let test_simplify_short_circuit () =
  (* (false && anything) folds even when `anything` is not constant. *)
  let e = Expr.bool false &&: (Expr.var "x" /: Expr.int 0 =: Expr.int 1) in
  Alcotest.(check bool)
    "false && _ folds to false" true
    (Expr.equal (Expr.simplify e) (Expr.bool false));
  let e = Expr.bool true ||: Expr.var "x" in
  Alcotest.(check bool)
    "true || _ folds to true" true
    (Expr.equal (Expr.simplify e) (Expr.bool true))

let test_pp () =
  let e = (Expr.var "a" +: Expr.int 1) <=: Expr.var "b" in
  Alcotest.(check string) "render" "((a + 1) <= b)" (Expr.to_string e)

(* Random expression generator over a fixed set of variables; evaluation
   domain is kept positive and small to avoid division by zero. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Expr.int (1 + abs i)) small_signed_int;
        oneofl [ Expr.var "u"; Expr.var "v" ];
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> Expr.Binop (op, a, b))
              (oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Lt; Expr.Le; Expr.Eq ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map3
              (fun c t f -> Expr.if_ c t f)
              (go (depth - 1)) (go (depth - 1)) (go (depth - 1)) );
          (1, map2 Expr.min_ (go (depth - 1)) (go (depth - 1)));
          (1, map2 Expr.max_ (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 4

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:1000 arb_expr
    (fun e ->
      let env = env_of [ ("u", Value.Int 3); ("v", Value.Int 7) ] in
      Value.equal (Expr.eval env e) (Expr.eval env (Expr.simplify e)))

let prop_subst_closes =
  QCheck.Test.make ~name:"subst removes resolved vars" ~count:500 arb_expr
    (fun e ->
      let resolve = function
        | "u" -> Some (Value.Int 3)
        | _ -> None
      in
      not (List.mem "u" (Expr.free_vars (Expr.subst resolve e))))

let prop_free_vars_sorted =
  QCheck.Test.make ~name:"free_vars sorted and unique" ~count:500 arb_expr
    (fun e ->
      let fv = Expr.free_vars e in
      List.sort_uniq String.compare fv = fv)

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "literals and vars" `Quick test_literals_and_vars;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "relations" `Quick test_relations;
          Alcotest.test_case "short-circuit" `Quick test_short_circuit;
          Alcotest.test_case "if" `Quick test_if;
          Alcotest.test_case "builtins" `Quick test_builtins;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "free_vars" `Quick test_free_vars;
          Alcotest.test_case "subst+simplify" `Quick test_subst_simplify;
          Alcotest.test_case "simplify short-circuit" `Quick
            test_simplify_short_circuit;
          Alcotest.test_case "pretty-print" `Quick test_pp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_semantics;
            prop_subst_closes;
            prop_free_vars_sorted;
          ] );
    ]
