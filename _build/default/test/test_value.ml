open Beast_core

let check_v msg expected actual =
  Alcotest.(check bool) msg true (Value.equal expected actual)

let test_int_arithmetic () =
  check_v "add" (Value.Int 7) (Value.add (Value.Int 3) (Value.Int 4));
  check_v "sub" (Value.Int (-1)) (Value.sub (Value.Int 3) (Value.Int 4));
  check_v "mul" (Value.Int 12) (Value.mul (Value.Int 3) (Value.Int 4));
  check_v "div truncates" (Value.Int 2) (Value.div (Value.Int 7) (Value.Int 3));
  check_v "div negative truncates toward zero" (Value.Int (-2))
    (Value.div (Value.Int (-7)) (Value.Int 3));
  check_v "mod" (Value.Int 1) (Value.rem (Value.Int 7) (Value.Int 3));
  check_v "neg" (Value.Int (-3)) (Value.neg (Value.Int 3))

let test_bool_as_int () =
  (* Python semantics: booleans participate in arithmetic as 0/1. *)
  check_v "true + 1" (Value.Int 2) (Value.add (Value.Bool true) (Value.Int 1));
  check_v "false * 5" (Value.Int 0) (Value.mul (Value.Bool false) (Value.Int 5));
  Alcotest.(check int) "to_int true" 1 (Value.to_int (Value.Bool true));
  Alcotest.(check int) "to_int false" 0 (Value.to_int (Value.Bool false))

let test_float_promotion () =
  check_v "int + float" (Value.Float 3.5)
    (Value.add (Value.Int 3) (Value.Float 0.5));
  check_v "float div" (Value.Float 3.5)
    (Value.div (Value.Float 7.) (Value.Int 2))

let test_division_by_zero () =
  Alcotest.check_raises "int div by zero" Division_by_zero (fun () ->
      ignore (Value.div (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "mod by zero" Division_by_zero (fun () ->
      ignore (Value.rem (Value.Int 1) (Value.Int 0)));
  Alcotest.check_raises "ceil_div by zero" Division_by_zero (fun () ->
      ignore (Value.ceil_div (Value.Int 1) (Value.Int 0)))

let test_ceil_div () =
  check_v "exact" (Value.Int 2) (Value.ceil_div (Value.Int 6) (Value.Int 3));
  check_v "rounds up" (Value.Int 3) (Value.ceil_div (Value.Int 7) (Value.Int 3))

let test_type_errors () =
  let raises f =
    match f () with
    | exception Value.Type_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "str + int raises" true
    (raises (fun () -> Value.add (Value.Str "a") (Value.Int 1)));
  Alcotest.(check bool) "neg str raises" true
    (raises (fun () -> Value.neg (Value.Str "a")));
  Alcotest.(check bool) "compare str int raises" true
    (raises (fun () -> Value.compare (Value.Str "a") (Value.Int 1)))

let test_truthiness () =
  Alcotest.(check bool) "0 falsy" false (Value.truthy (Value.Int 0));
  Alcotest.(check bool) "1 truthy" true (Value.truthy (Value.Int 1));
  Alcotest.(check bool) "-1 truthy" true (Value.truthy (Value.Int (-1)));
  Alcotest.(check bool) "empty str falsy" false (Value.truthy (Value.Str ""));
  Alcotest.(check bool) "str truthy" true (Value.truthy (Value.Str "x"));
  Alcotest.(check bool) "0. falsy" false (Value.truthy (Value.Float 0.));
  Alcotest.(check bool) "false falsy" false (Value.truthy (Value.Bool false))

let test_comparisons () =
  Alcotest.(check bool) "2 < 3" true (Value.truthy (Value.lt (Value.Int 2) (Value.Int 3)));
  Alcotest.(check bool) "3 <= 3" true
    (Value.truthy (Value.le (Value.Int 3) (Value.Int 3)));
  Alcotest.(check bool) "int eq float" true
    (Value.truthy (Value.eq (Value.Int 2) (Value.Float 2.)));
  Alcotest.(check bool) "bool eq int" true
    (Value.truthy (Value.eq (Value.Bool true) (Value.Int 1)));
  Alcotest.(check bool) "str eq str" true
    (Value.truthy (Value.eq (Value.Str "double") (Value.Str "double")));
  Alcotest.(check bool) "str ne int (no raise)" true
    (Value.truthy (Value.ne (Value.Str "double") (Value.Int 1)))

let test_min_max_abs () =
  check_v "min" (Value.Int 2) (Value.min2 (Value.Int 5) (Value.Int 2));
  check_v "max" (Value.Int 5) (Value.max2 (Value.Int 5) (Value.Int 2));
  check_v "abs" (Value.Int 5) (Value.abs_v (Value.Int (-5)))

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative on ints" ~count:500
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      Value.equal
        (Value.add (Value.Int a) (Value.Int b))
        (Value.add (Value.Int b) (Value.Int a)))

let prop_div_mod_consistent =
  QCheck.Test.make ~name:"a = (a/b)*b + a mod b" ~count:500
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q = Value.to_int (Value.div (Value.Int a) (Value.Int b)) in
      let r = Value.to_int (Value.rem (Value.Int a) (Value.Int b)) in
      a = (q * b) + r)

let prop_ceil_div_bound =
  QCheck.Test.make ~name:"ceil_div within [div, div+1]" ~count:500
    QCheck.(pair (int_bound 10000) (int_range 1 100))
    (fun (a, b) ->
      let q = Value.to_int (Value.div (Value.Int a) (Value.Int b)) in
      let c = Value.to_int (Value.ceil_div (Value.Int a) (Value.Int b)) in
      c = q || c = q + 1)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric on numerics" ~count:500
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let c1 = Value.compare (Value.Int a) (Value.Int b) in
      let c2 = Value.compare (Value.Int b) (Value.Int a) in
      (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0) || (c1 = 0 && c2 = 0))

let () =
  Alcotest.run "value"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "integers" `Quick test_int_arithmetic;
          Alcotest.test_case "booleans as 0/1" `Quick test_bool_as_int;
          Alcotest.test_case "float promotion" `Quick test_float_promotion;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "min/max/abs" `Quick test_min_max_abs;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_commutative;
            prop_div_mod_consistent;
            prop_ceil_div_bound;
            prop_compare_total_order;
          ] );
    ]
