open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_dsl

let parse_ok text =
  match Parse.space_of_string text with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "parse failed: %a" Parse.pp_error e

let parse_err text =
  match Parse.space_of_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let expr text =
  match Parse.expr_of_string text with
  | Ok e -> e
  | Error e -> Alcotest.failf "expr parse failed: %a" Parse.pp_error e

let check_expr msg text expected =
  Alcotest.(check bool) msg true (Expr.equal (expr text) expected)

let test_expr_precedence () =
  let open Expr.Infix in
  check_expr "mul binds tighter" "1 + 2 * 3"
    (Expr.int 1 +: (Expr.int 2 *: Expr.int 3));
  check_expr "parens" "(1 + 2) * 3" ((Expr.int 1 +: Expr.int 2) *: Expr.int 3);
  check_expr "comparison" "a + 1 <= b" (Expr.var "a" +: Expr.int 1 <=: Expr.var "b");
  check_expr "logic" "a && b || c"
    ((Expr.var "a" &&: Expr.var "b") ||: Expr.var "c");
  check_expr "keywords" "a and not b or c"
    ((Expr.var "a" &&: not_ (Expr.var "b")) ||: Expr.var "c");
  check_expr "ternary" "c ? 1 : 2" (Expr.if_ (Expr.var "c") (Expr.int 1) (Expr.int 2));
  check_expr "unary minus" "-x + 1" (Expr.Unop (Expr.Neg, Expr.var "x") +: Expr.int 1);
  check_expr "builtins" "min(a, max(b, 3))"
    (Expr.min_ (Expr.var "a") (Expr.max_ (Expr.var "b") (Expr.int 3)));
  check_expr "modulo" "x % 32 != 0" (Expr.var "x" %: Expr.int 32 <>: Expr.int 0);
  check_expr "strings" "precision == \"double\""
    (Expr.var "precision" =: Expr.string "double")

let test_expr_errors () =
  let e = parse_err "derived x = 1 +" in
  Alcotest.(check bool) "line recorded" true (e.Parse.line = 1);
  ignore (parse_err "iter x = range(1, 2, 3, 4)");
  ignore (parse_err "derived y = foo(1)");
  ignore (parse_err "setting s = x + 1");
  ignore (parse_err "constraint hard c = (1 + 2")

let test_roundtrip_random_exprs () =
  (* Pretty-print library expressions and re-parse them: semantics must
     survive (Expr.pp prints fully parenthesized C-style syntax). *)
  let gen =
    let open QCheck.Gen in
    let leaf =
      oneof
        [ map (fun k -> Expr.int (abs k)) small_signed_int;
          oneofl [ Expr.var "u"; Expr.var "v" ] ]
    in
    let rec go depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 4,
              map3
                (fun op a b -> Expr.Binop (op, a, b))
                (oneofl
                   [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Lt; Expr.Le; Expr.Eq;
                     Expr.And; Expr.Or ])
                (go (depth - 1)) (go (depth - 1)) );
            (1, map3 Expr.if_ (go (depth - 1)) (go (depth - 1)) (go (depth - 1)));
            (1, map2 Expr.min_ (go (depth - 1)) (go (depth - 1)));
          ]
    in
    go 3
  in
  let arb = QCheck.make ~print:Expr.to_string gen in
  let prop =
    QCheck.Test.make ~name:"pp then parse preserves eval" ~count:500 arb
      (fun e ->
        let text = Expr.to_string e in
        match Parse.expr_of_string text with
        | Error _ -> false
        | Ok e' ->
          let env name =
            match name with
            | "u" -> Value.Int 3
            | "v" -> Value.Int 7
            | _ -> raise Not_found
          in
          Value.equal (Expr.eval env e) (Expr.eval env e'))
  in
  match QCheck.Test.check_exn prop with
  | () -> ()
  | exception QCheck.Test.Test_fail (_, _) -> Alcotest.fail "roundtrip failed"

let triangle_text =
  {|
# the triangle space from the test suite, in the textual notation
space triangle
setting n = 8
iter x = range(0, n)
iter y = range(x, n)
derived s = x + y
constraint hard odd_sum = s % 2 == 1
constraint soft big_x = x > 5
|}

let test_triangle_equivalent () =
  let sp = parse_ok triangle_text in
  let reference = Support.triangle_space () in
  let a = Engine_staged.run_space sp and b = Engine_staged.run_space reference in
  Alcotest.(check int) "same survivors" b.Engine.survivors a.Engine.survivors;
  Alcotest.(check int) "same iterations" b.Engine.loop_iterations
    a.Engine.loop_iterations;
  Alcotest.(check string) "space name" "triangle" (Space.name sp)

let test_declaration_order_free () =
  let sp =
    parse_ok
      {|
iter inner = range(0, outer)
iter outer = range(0, 5)
|}
  in
  let s = Engine_staged.run_space sp in
  Alcotest.(check int) "sum 0..4" 10 s.Engine.survivors

let test_conditional_iterator () =
  (* The paper's deferred-iterator dispatch as a ternary. *)
  let run precision =
    let sp =
      parse_ok
        (Printf.sprintf
           {|
setting precision = "%s"
iter vec = precision == "double" ? range(1, 3) : range(1, 5, 3)
|}
           precision)
    in
    List.map
      (fun point -> Value.to_int (List.assoc "vec" point))
      (Sweep.survivors sp)
  in
  Alcotest.(check (list int)) "double" [ 1; 2 ] (run "double");
  Alcotest.(check (list int)) "single" [ 1; 4 ] (run "single")

let test_values_union_single () =
  let sp =
    parse_ok
      {|
iter fib = values(1, 1, 2, 3, 5, 8, 13)
iter u = union(values(1, 2), values(2, 3))
iter s = single(4)
|}
  in
  let s = Engine_staged.run_space sp in
  (* 7 x 3 x 1 *)
  Alcotest.(check int) "cardinality" 21 s.Engine.survivors

let test_line_continuation_and_comments () =
  let sp =
    parse_ok
      {|
# comment line
iter x = range(0, \
               10)   # trailing comment
constraint hard none = x > 100
|}
  in
  let s = Engine_staged.run_space sp in
  Alcotest.(check int) "10 survivors" 10 s.Engine.survivors

let test_error_line_numbers () =
  let e =
    parse_err
      {|
iter x = range(0, 5)
iter y = range(0, 5
|}
  in
  Alcotest.(check int) "error on line 3" 3 e.Parse.line

let test_validation_errors_surface () =
  let e = parse_err "iter x = range(0, ghost)" in
  Alcotest.(check bool) "mentions ghost" true
    (let msg = e.Parse.message in
     let n = String.length msg and m = 5 in
     let rec go i = i + m <= n && (String.sub msg i m = "ghost" || go (i + 1)) in
     go 0)

(* The flagship test: the full GEMM model problem written in the textual
   notation, checked survivor-for-survivor against the library space. *)
let gemm_beast_text (d : Device.t) =
  let caps = Capability.lookup_exn d in
  Printf.sprintf
    {|
space gemm
# ---- Figure 10: global settings (double real, no transposition) ----
setting precision  = "double"
setting arithmetic = "real"
setting trans_a = 0
setting trans_b = 0
# ---- Figure 8: device query (%s) ----
setting max_threads_per_block = %d
setting max_threads_dim_x = %d
setting max_threads_dim_y = %d
setting max_shared_mem_per_block = %d
setting warp_size = %d
setting max_regs_per_block = %d
setting max_registers_per_multi_processor = %d
setting max_shmem_per_multi_processor = %d
setting float_size = %d
# ---- Figure 9: capability lookup ----
setting max_blocks_per_multi_processor = %d
setting max_warps_per_multi_processor = %d
setting max_registers_per_thread = %d
# ---- Figure 14 tunables ----
setting min_threads_per_multi_processor = 256
setting min_fmas_per_load = 2

# ---- Figure 11: the 15 iterators ----
iter dim_m = range(1, max_threads_dim_x + 1)
iter dim_n = range(1, max_threads_dim_y + 1)
iter blk_m = range(dim_m, max_threads_dim_x + 1, dim_m)
iter blk_n = range(dim_n, max_threads_dim_y + 1, dim_n)
iter blk_k = range(1, min(max_threads_dim_x, max_threads_dim_y) + 1)
iter dim_vec = precision == "double" ? \
    (arithmetic == "real" ? range(1, 3) : range(1, 2)) : \
    (arithmetic == "real" ? range(1, 5, 3) : range(1, 3))
iter vec_mul = range(0, dim_vec == 1 ? 1 : 2)
iter dim_m_a = trans_a != 0 ? range(1, blk_k / dim_vec + 1) \
                            : range(1, blk_m / dim_vec + 1)
iter dim_n_a = trans_a != 0 ? range(1, blk_m + 1) : range(1, blk_k + 1)
iter dim_m_b = trans_b != 0 ? range(1, blk_n / dim_vec + 1) \
                            : range(1, blk_k / dim_vec + 1)
iter dim_n_b = trans_b != 0 ? range(1, blk_k + 1) : range(1, blk_n + 1)
iter tex_a = range(0, 2)
iter tex_b = range(0, 2)
iter shmem_l1 = range(0, 2)
iter shmem_banks = range(0, 2)

# ---- Figure 12: derived variables ----
derived threads_per_block = dim_m * dim_n
derived thr_m = blk_m / dim_m
derived thr_n = blk_n / dim_n
derived regs_per_thread = arithmetic == "complex" ? \
    (precision == "double" ? thr_m * thr_n * 2 * 2 : thr_m * thr_n * 2) : \
    (precision == "double" ? thr_m * thr_n * 2 : thr_m * thr_n)
derived regs_per_block = regs_per_thread * threads_per_block
derived shmem_per_block = arithmetic == "complex" ? \
    (precision == "double" ? blk_k * (blk_m + blk_n) * float_size * 2 * 2 \
                           : blk_k * (blk_m + blk_n) * float_size * 2) : \
    (precision == "double" ? blk_k * (blk_m + blk_n) * float_size * 2 \
                           : blk_k * (blk_m + blk_n) * float_size)
derived max_blocks_by_regs = \
    min(max_registers_per_multi_processor / regs_per_block, max_blocks_per_multi_processor)
derived max_threads_by_regs = max_blocks_by_regs * threads_per_block
derived max_blocks_by_shmem = \
    min(max_shmem_per_multi_processor / shmem_per_block, max_blocks_per_multi_processor)
derived max_threads_by_shmem = max_blocks_by_shmem * threads_per_block
derived loads_per_thread = (thr_m + thr_n) * blk_k / dim_vec
derived loads_per_block = arithmetic == "complex" ? \
    loads_per_thread * threads_per_block * 2 : loads_per_thread * threads_per_block
derived fmas_per_thread = thr_m * thr_n * blk_k
derived fmas_per_block = arithmetic == "complex" ? \
    fmas_per_thread * threads_per_block * 4 : fmas_per_thread * threads_per_block

# ---- Figure 13: hard constraints ----
constraint hard over_max_threads = threads_per_block > max_threads_per_block
constraint hard over_max_regs_per_thread = regs_per_thread > max_registers_per_thread
constraint hard over_max_regs_per_block = regs_per_block > max_regs_per_block
constraint hard over_max_shmem = shmem_per_block > max_shared_mem_per_block

# ---- Figure 14: soft constraints ----
constraint soft low_occupancy_regs = max_threads_by_regs < min_threads_per_multi_processor
constraint soft low_occupancy_shmem = max_threads_by_shmem < min_threads_per_multi_processor
constraint soft low_fmas = fmas_per_block < min_fmas_per_load * loads_per_block
constraint soft partial_warps = threads_per_block %% warp_size != 0

# ---- Figure 15: correctness constraints ----
constraint correctness cant_reshape_a1 = dim_m_a * dim_n_a != threads_per_block
constraint correctness cant_reshape_b1 = dim_m_b * dim_n_b != threads_per_block
constraint correctness cant_reshape_a2 = trans_a != 0 ? \
    (blk_k %% (dim_m_a * dim_vec) != 0 || blk_m %% dim_n_a != 0) : \
    (blk_m %% (dim_m_a * dim_vec) != 0 || blk_k %% dim_n_a != 0)
constraint correctness cant_reshape_b2 = trans_b != 0 ? \
    (blk_n %% (dim_m_b * dim_vec) != 0 || blk_k %% dim_n_b != 0) : \
    (blk_k %% (dim_m_b * dim_vec) != 0 || blk_n %% dim_n_b != 0)
|}
    d.Device.name d.Device.max_threads_per_block d.Device.max_threads_dim_x
    d.Device.max_threads_dim_y d.Device.max_shared_mem_per_block
    d.Device.warp_size d.Device.max_regs_per_block
    d.Device.max_registers_per_multi_processor
    d.Device.max_shmem_per_multi_processor d.Device.float_size
    caps.Capability.max_blocks_per_mp caps.Capability.max_warps_per_mp
    caps.Capability.max_regs_per_thread

let test_gemm_from_text_matches_library () =
  let device = Device.scale ~max_dim:16 ~max_threads:64 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let text_space = parse_ok (gemm_beast_text device) in
  let lib_space = Gemm.space ~settings () in
  let collect sp =
    let acc = ref [] in
    let on_hit lookup =
      acc :=
        List.map (fun n -> Value.to_int (lookup n)) Gemm.iterator_names :: !acc
    in
    let stats = Engine_staged.run_space ~on_hit sp in
    (List.sort compare !acc, stats)
  in
  let text_survivors, text_stats = collect text_space in
  let lib_survivors, lib_stats = collect lib_space in
  Alcotest.(check int) "same survivor count" lib_stats.Engine.survivors
    text_stats.Engine.survivors;
  Alcotest.(check bool) "identical survivor tuples" true
    (text_survivors = lib_survivors);
  Alcotest.(check int) "same loop iterations" lib_stats.Engine.loop_iterations
    text_stats.Engine.loop_iterations

let test_print_roundtrip_triangle () =
  let sp = Support.triangle_space () in
  match Print.space_to_string sp with
  | Error e -> Alcotest.failf "print failed: %a" Print.pp_error e
  | Ok text ->
    let sp' = parse_ok text in
    let a = Engine_staged.run_space sp and b = Engine_staged.run_space sp' in
    Alcotest.(check int) "survivors" a.Engine.survivors b.Engine.survivors;
    Alcotest.(check int) "iterations" a.Engine.loop_iterations
      b.Engine.loop_iterations

let test_print_roundtrip_gemm () =
  (* The programmatically built GEMM space serializes to text and back
     without changing the enumeration. *)
  let device = Device.scale ~max_dim:12 ~max_threads:64 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  match Print.space_to_string sp with
  | Error e -> Alcotest.failf "print failed: %a" Print.pp_error e
  | Ok text ->
    let sp' = parse_ok text in
    let a = Engine_staged.run_space sp and b = Engine_staged.run_space sp' in
    Alcotest.(check int) "survivors" a.Engine.survivors b.Engine.survivors;
    Alcotest.(check int) "iterations" a.Engine.loop_iterations
      b.Engine.loop_iterations

let test_print_rejects_closures () =
  let sp = Support.mixed_space () in
  match Print.space_to_string sp with
  | Error (Print.Unprintable _) -> ()
  | Ok _ -> Alcotest.fail "closure iterator should not print"

let test_parser_never_crashes () =
  (* Fuzz: arbitrary text must come back Ok or Error, never an
     exception escaping the API. *)
  let arb = QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable) in
  let prop =
    QCheck.Test.make ~name:"parser totality" ~count:2000 arb (fun text ->
        match Parse.space_of_string text with
        | Ok _ | Error _ -> true)
  in
  QCheck.Test.check_exn prop

let test_parsed_space_translates_to_c () =
  let sp = parse_ok triangle_text in
  match Beast_core.Codegen_c.generate (Plan.make_exn sp) with
  | Ok source -> Alcotest.(check bool) "generates" true (String.length source > 100)
  | Error e -> Alcotest.failf "codegen failed: %a" Codegen_c.pp_error e

let () =
  Alcotest.run "dsl"
    [
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          Alcotest.test_case "pp/parse roundtrip" `Quick
            test_roundtrip_random_exprs;
        ] );
      ( "declarations",
        [
          Alcotest.test_case "triangle equivalence" `Quick
            test_triangle_equivalent;
          Alcotest.test_case "order free" `Quick test_declaration_order_free;
          Alcotest.test_case "conditional iterator" `Quick
            test_conditional_iterator;
          Alcotest.test_case "values/union/single" `Quick
            test_values_union_single;
          Alcotest.test_case "continuations and comments" `Quick
            test_line_continuation_and_comments;
          Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
          Alcotest.test_case "validation errors" `Quick
            test_validation_errors_surface;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "GEMM text = GEMM library" `Quick
            test_gemm_from_text_matches_library;
          Alcotest.test_case "parsed space to C" `Quick
            test_parsed_space_translates_to_c;
          Alcotest.test_case "print roundtrip (triangle)" `Quick
            test_print_roundtrip_triangle;
          Alcotest.test_case "print roundtrip (GEMM)" `Quick
            test_print_roundtrip_gemm;
          Alcotest.test_case "print rejects closures" `Quick
            test_print_rejects_closures;
          Alcotest.test_case "parser totality (fuzz)" `Quick
            test_parser_never_crashes;
        ] );
    ]
