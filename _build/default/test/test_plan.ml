open Beast_core

let plan_of sp = Plan.make_exn sp

let test_loop_order_respects_deps () =
  let p = plan_of (Support.triangle_space ()) in
  Alcotest.(check (list string)) "x before y" [ "x"; "y" ] p.Plan.iter_order

let test_hoisting_depth () =
  (* In the triangle space, s and both constraints depend on x and y, so
     they sit at depth 2 — directly inside the y loop, before nothing
     deeper. With an extra constraint on x only, that constraint must sit
     at depth 1 (between the x and y loops). *)
  let open Expr.Infix in
  let sp = Support.triangle_space () in
  Space.constrain sp "x_only" (Expr.var "x" =: Expr.int 3);
  let p = plan_of sp in
  let rec find_depth steps depth name =
    List.fold_left
      (fun acc step ->
        match acc with
        | Some _ -> acc
        | None -> (
          match (step : Plan.step) with
          | Check { c_name; _ } when c_name = name -> Some depth
          | Loop { l_body; _ } -> find_depth l_body (depth + 1) name
          | _ -> None))
      None steps
  in
  Alcotest.(check (option int)) "x_only at depth 1" (Some 1)
    (find_depth p.Plan.steps 0 "x_only");
  Alcotest.(check (option int)) "odd_sum at depth 2" (Some 2)
    (find_depth p.Plan.steps 0 "odd_sum")

let test_no_hoisting () =
  let open Expr.Infix in
  let sp = Support.triangle_space () in
  Space.constrain sp "x_only" (Expr.var "x" =: Expr.int 3);
  let p = Plan.make_exn ~hoist:false sp in
  let rec innermost steps =
    List.fold_left
      (fun acc step ->
        match (step : Plan.step) with
        | Plan.Loop { l_body; _ } -> innermost l_body
        | Plan.Check { c_name; _ } -> c_name :: acc
        | _ -> acc)
      []
    steps
  in
  Alcotest.(check bool) "x_only forced innermost" true
    (List.mem "x_only" (innermost p.Plan.steps))

let test_settings_folded () =
  (* After planning, no expression mentions a setting: the triangle space
     bound n=8, so the x loop is range(0, 8). *)
  let p = plan_of (Support.triangle_space ()) in
  match p.Plan.steps with
  | Plan.Loop { l_iter = Plan.CRange (Plan.CLit 0, Plan.CLit 8, Plan.CLit 1); _ }
    :: _ ->
    ()
  | _ -> Alcotest.failf "unexpected plan head:@\n%a" Plan.pp p

let test_static_closure_tabulated () =
  (* A closure iterator depending only on settings becomes a CValues
     table — the rule that lets the C generator handle it. *)
  let sp = Space.create () in
  Space.setting_i sp "k" 3;
  Space.iterator sp "x"
    (Iter.closure ~deps:[ "k" ] (fun env ->
         let k = Value.to_int (env "k") in
         List.to_seq (List.init k (fun i -> Value.Int (i * i)))));
  let p = plan_of sp in
  match p.Plan.steps with
  | Plan.Loop { l_iter = Plan.CValues [| 0; 1; 4 |]; _ } :: _ -> ()
  | _ -> Alcotest.failf "closure not tabulated:@\n%a" Plan.pp p

let test_dynamic_closure_stays_dynamic () =
  let sp = Support.mixed_space () in
  let p = plan_of sp in
  let rec has_dyn steps =
    List.exists
      (fun (step : Plan.step) ->
        match step with
        | Plan.Loop { l_iter = Plan.CDyn _; _ } -> true
        | Plan.Loop { l_body; _ } -> has_dyn l_body
        | _ -> false)
      steps
  in
  Alcotest.(check bool) "b stays dynamic" true (has_dyn p.Plan.steps)

let test_order_override () =
  let sp = Support.triangle_space () in
  (* y depends on x, so ordering y first must fail... *)
  (match Plan.make ~order:[ "y"; "x" ] sp with
  | Error (Plan.Unsupported _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Plan.pp_error e
  | Ok _ -> Alcotest.fail "invalid order accepted");
  (* ...while the valid order is accepted. *)
  match Plan.make ~order:[ "x"; "y" ] sp with
  | Ok p -> Alcotest.(check (list string)) "order kept" [ "x"; "y" ] p.Plan.iter_order
  | Error e -> Alcotest.failf "valid order rejected: %a" Plan.pp_error e

let test_order_override_not_permutation () =
  let sp = Support.triangle_space () in
  match Plan.make ~order:[ "x" ] sp with
  | Error (Plan.Unsupported _) -> ()
  | _ -> Alcotest.fail "non-permutation accepted"

let test_independent_iterators_interchangeable () =
  (* Within a level set, loops may be interchanged (Section X-B). *)
  let sp = Space.create () in
  Space.iterator sp "a" (Iter.range_i 0 3);
  Space.iterator sp "b" (Iter.range_i 0 4);
  let p1 = Plan.make_exn ~order:[ "a"; "b" ] sp in
  let p2 = Plan.make_exn ~order:[ "b"; "a" ] sp in
  let s1 = Engine_staged.run p1 and s2 = Engine_staged.run p2 in
  Alcotest.(check int) "same survivors" s1.Engine.survivors s2.Engine.survivors;
  Alcotest.(check int) "12 points" 12 s1.Engine.survivors

let test_unsupported_float () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.values [ Value.Float 1.5 ]);
  match Plan.make sp with
  | Error (Plan.Unsupported _) -> ()
  | _ -> Alcotest.fail "float iterator accepted in enumeration path"

let test_slot_names () =
  let p = plan_of (Support.triangle_space ()) in
  Alcotest.(check int) "three slots" 3 p.Plan.n_slots;
  Alcotest.(check int) "x slot" 0 (Plan.slot_of p "x");
  Alcotest.(check int) "y slot" 1 (Plan.slot_of p "y");
  Alcotest.(check int) "s slot" 2 (Plan.slot_of p "s");
  Alcotest.check_raises "constraints have no slot" Not_found (fun () ->
      ignore (Plan.slot_of p "odd_sum"))

let test_lookup_of_slots () =
  let p = plan_of (Support.triangle_space ()) in
  let slots = [| 4; 5; 9 |] in
  let lookup = Plan.lookup_of_slots p slots in
  Alcotest.(check int) "iterator" 4 (Value.to_int (lookup "x"));
  Alcotest.(check int) "derived" 9 (Value.to_int (lookup "s"));
  Alcotest.(check int) "setting" 8 (Value.to_int (lookup "n"))

let test_eval_cexpr () =
  let slots = [| 7; 3 |] in
  let e =
    Plan.CBin
      ( Expr.Add,
        Plan.CSlot 0,
        Plan.CCall (Expr.Min, [ Plan.CSlot 1; Plan.CLit 10 ]) )
  in
  Alcotest.(check int) "7 + min(3,10)" 10 (Plan.eval_cexpr slots e);
  Alcotest.(check (list int)) "slots used" [ 0; 1 ] (Plan.cexpr_slots e)

let test_slice_outer_partition () =
  (* Slices must partition the original survivors. *)
  let p = plan_of (Support.triangle_space ()) in
  let full = (Engine_staged.run p).Engine.survivors in
  let parts =
    List.init 3 (fun index ->
        (Engine_staged.run (Plan.slice_outer p ~index ~of_:3)).Engine.survivors)
  in
  Alcotest.(check int) "partition" full (List.fold_left ( + ) 0 parts)

let test_slice_outer_values_and_dyn () =
  (* Slicing must partition when the outermost loop is a value table or
     a dynamic closure, not just a range. *)
  let check sp =
    let p = Plan.make_exn sp in
    let full = (Engine_staged.run p).Engine.survivors in
    let parts =
      List.init 3 (fun index ->
          (Engine_staged.run (Plan.slice_outer p ~index ~of_:3)).Engine.survivors)
    in
    Alcotest.(check int) "partition" full (List.fold_left ( + ) 0 parts)
  in
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.ints [ 3; 1; 4; 1; 5; 9; 2; 6 ]);
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  check sp;
  let sp = Space.create () in
  Space.setting_i sp "k" 7;
  Space.iterator sp "x"
    (Iter.filter (fun v -> Value.to_int v mod 2 = 1) (Iter.range_i 0 20));
  Space.iterator sp "y" (Iter.upto (Expr.var "x"));
  check sp

let test_pp_smoke () =
  let p = plan_of (Support.triangle_space ()) in
  let s = Format.asprintf "%a" Plan.pp p in
  Alcotest.(check bool) "mentions loops" true (String.length s > 40)

let () =
  Alcotest.run "plan"
    [
      ( "structure",
        [
          Alcotest.test_case "loop order" `Quick test_loop_order_respects_deps;
          Alcotest.test_case "hoisting depth" `Quick test_hoisting_depth;
          Alcotest.test_case "no hoisting" `Quick test_no_hoisting;
          Alcotest.test_case "settings folded" `Quick test_settings_folded;
          Alcotest.test_case "static closure tabulated" `Quick
            test_static_closure_tabulated;
          Alcotest.test_case "dynamic closure" `Quick
            test_dynamic_closure_stays_dynamic;
          Alcotest.test_case "slot names" `Quick test_slot_names;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "order override" `Quick test_order_override;
          Alcotest.test_case "non-permutation rejected" `Quick
            test_order_override_not_permutation;
          Alcotest.test_case "interchange within level" `Quick
            test_independent_iterators_interchangeable;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "float rejected" `Quick test_unsupported_float;
          Alcotest.test_case "lookup_of_slots" `Quick test_lookup_of_slots;
          Alcotest.test_case "eval_cexpr" `Quick test_eval_cexpr;
          Alcotest.test_case "slice_outer partitions" `Quick
            test_slice_outer_partition;
          Alcotest.test_case "slice_outer values/dyn" `Quick
            test_slice_outer_values_and_dyn;
        ] );
    ]
