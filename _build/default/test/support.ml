(* Shared helpers for the test suites: reference enumeration and a few
   canonical spaces. *)

open Beast_core

(* Brute-force reference: enumerate a space by direct recursion over the
   declaration data, evaluating everything with plain Expr.eval — an
   independent implementation the engines are checked against. *)
let brute_force space =
  let env : (string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) (Space.settings space);
  let lookup n = Hashtbl.find env n in
  let eval_body = function
    | Space.E e -> Expr.eval lookup e
    | Space.F { fn; _ } -> fn lookup
  in
  (* Order iterators topologically; evaluate all deriveds+constraints at
     the innermost level, deriveds before the constraints that use them
     (topological order gives this). *)
  let dag =
    match Space.dag space with
    | Ok d -> d
    | Error e -> Alcotest.failf "space error: %a" Space.pp_error e
  in
  let topo = Dag.topo_order dag in
  let iter_names =
    List.filter
      (fun n -> List.exists (fun it -> it.Space.it_name = n) (Space.iterators space))
      topo
  in
  let inner_names = List.filter (fun n -> not (List.mem n iter_names)) topo in
  let survivors = ref [] in
  let iter_of n =
    (List.find (fun it -> it.Space.it_name = n) (Space.iterators space)).Space.it_iter
  in
  let body_of n =
    match List.find_opt (fun d -> d.Space.dv_name = n) (Space.deriveds space) with
    | Some d -> `Derived d.Space.dv_body
    | None ->
      `Constraint
        (List.find (fun c -> c.Space.cn_name = n) (Space.constraints space))
          .Space.cn_body
  in
  let rec loop = function
    | [] ->
      let ok =
        List.for_all
          (fun n ->
            match body_of n with
            | `Derived b ->
              Hashtbl.replace env n (eval_body b);
              true
            | `Constraint b -> not (Value.truthy (eval_body b)))
          inner_names
      in
      if ok then
        survivors :=
          List.map (fun n -> (n, Hashtbl.find env n)) iter_names :: !survivors
    | n :: rest ->
      let vs = Iter.materialize lookup (iter_of n) in
      Array.iter
        (fun v ->
          Hashtbl.replace env n v;
          loop rest)
        vs;
      Hashtbl.remove env n
  in
  loop iter_names;
  List.rev !survivors

let survivor_count space = List.length (brute_force space)

(* A small space with dependent iterators, a derived variable and
   constraints of different classes. *)
let triangle_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"triangle" () in
  Space.setting_i sp "n" 8;
  Space.iterator sp "x" (Iter.range (Expr.int 0) (Expr.var "n"));
  Space.iterator sp "y" (Iter.range (Expr.var "x") (Expr.var "n"));
  Space.derived sp "s" (Expr.var "x" +: Expr.var "y");
  Space.constrain sp "odd_sum" (Expr.var "s" %: Expr.int 2 =: Expr.int 1);
  Space.constrain sp ~cls:Space.Soft "big_x" (Expr.var "x" >: Expr.int 5);
  sp

(* A space exercising settings-dependent iterators, closures and algebra. *)
let mixed_space () =
  let open Expr.Infix in
  let sp = Space.create ~name:"mixed" () in
  Space.setting_s sp "mode" "wide";
  Space.setting_i sp "limit" 10;
  Space.iterator sp "a"
    (Iter.range (Expr.int 1)
       (Expr.if_ (Expr.var "mode" =: Expr.string "wide") (Expr.int 7) (Expr.int 3)));
  Space.iterator sp "b"
    (Iter.closure ~deps:[ "a" ] (fun env ->
         let a = Value.to_int (env "a") in
         List.to_seq (List.init a (fun i -> Value.Int (i + 1)))));
  Space.iterator sp "c"
    (Iter.union (Iter.ints [ 1; 2 ]) (Iter.ints [ 2; 3 ]));
  Space.derived sp "p" (Expr.var "a" *: Expr.var "b");
  Space.constrain sp "over_limit" (Expr.var "p" >: Expr.var "limit");
  Space.constrain_f sp ~cls:Space.Correctness "c_divides" ~deps:[ "p"; "c" ]
    (fun env ->
      let p = Value.to_int (env "p") and c = Value.to_int (env "c") in
      Value.Bool (p mod c <> 0));
  sp

let stats_testable =
  Alcotest.testable Engine.pp_stats (fun a b ->
      a.Engine.survivors = b.Engine.survivors
      && a.Engine.pruned = b.Engine.pruned)
