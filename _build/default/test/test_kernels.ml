open Beast_core
open Beast_gpu
open Beast_kernels

let scaled ?(max_dim = 16) ?(max_threads = 64) () =
  {
    Gemm.default_settings with
    Gemm.device = Device.scale ~max_dim ~max_threads Device.tesla_k40c;
  }

let test_gemm_shape () =
  let sp = Gemm.space ~settings:(scaled ()) () in
  Alcotest.(check int) "15 iterators (Fig. 11)" 15
    (List.length (Space.iterators sp));
  Alcotest.(check (list string)) "iterator names" Gemm.iterator_names
    (List.map (fun it -> it.Space.it_name) (Space.iterators sp));
  Alcotest.(check int) "12 constraints (Figs. 13-15)" 12
    (List.length (Space.constraints sp));
  Alcotest.(check (list string)) "constraint names"
    (List.map fst Gemm.constraint_names)
    (List.map (fun c -> c.Space.cn_name) (Space.constraints sp));
  (* 4 hard, 4 soft, 4 correctness. *)
  let count cls =
    List.length
      (List.filter (fun c -> c.Space.cn_class = cls) (Space.constraints sp))
  in
  Alcotest.(check int) "hard" 4 (count Space.Hard);
  Alcotest.(check int) "soft" 4 (count Space.Soft);
  Alcotest.(check int) "correctness" 4 (count Space.Correctness);
  match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gemm space invalid: %a" Space.pp_error e

let test_gemm_engines_agree () =
  (* The full engine battery on a very small GEMM instance. *)
  let sp =
    Gemm.space ~settings:(scaled ()) ()
  in
  let plan = Plan.make_exn sp in
  let staged = Engine_staged.run plan in
  let vm = Engine_vm.run_plan plan in
  let interp = Engine_interp.run ~variant:`Hoisted sp in
  (* The `Naive variant enumerates the unconstrained cross product
     (~10^8 points even at this scale) - exactly the pathology the
     paper's hoisting removes - so it is exercised on the small spaces of
     test_engines instead. *)
  let par = Engine_parallel.run ~domains:3 plan in
  Alcotest.(check bool) "nonempty" true (staged.Engine.survivors > 0);
  Alcotest.(check int) "vm" staged.Engine.survivors vm.Engine.survivors;
  Alcotest.(check int) "interp" staged.Engine.survivors interp.Engine.survivors;
  Alcotest.(check int) "parallel" staged.Engine.survivors par.Engine.survivors

let test_gemm_c_roundtrip () =
  (* The GEMM space is fully expression-based, so the C generator must
     accept it; compile and compare with the staged engine. *)
  let sp = Gemm.space ~settings:(scaled ()) () in
  let plan = Plan.make_exn sp in
  let source = Codegen_c.generate_exn plan in
  let dir = Filename.temp_file "beast_gemm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "gemm.c" in
  let exe = Filename.concat dir "gemm" in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf "cc -O2 -std=c99 -o %s %s" (Filename.quote exe)
         (Filename.quote c_file))
  in
  Alcotest.(check int) "compiles" 0 rc;
  let ic = Unix.open_process_in (Filename.quote exe) in
  let survivors = ref (-1) in
  (try
     while true do
       match String.split_on_char ' ' (input_line ic) with
       | [ "survivors"; n ] -> survivors := int_of_string n
       | _ -> ()
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let reference = Engine_staged.run plan in
  Alcotest.(check int) "C survivors" reference.Engine.survivors !survivors

let test_gemm_survivors_satisfy_figures () =
  (* Independently re-check every survivor against Figure 12/13/14/15
     formulas written directly in OCaml. *)
  let settings = scaled () in
  let d = settings.Gemm.device in
  let caps = Capability.lookup_exn d in
  let sp = Gemm.space ~settings () in
  let checked = ref 0 in
  let on_hit lookup =
    incr checked;
    let g n = Value.to_int (lookup n) in
    let dim_m = g "dim_m" and dim_n = g "dim_n" in
    let blk_m = g "blk_m" and blk_n = g "blk_n" and blk_k = g "blk_k" in
    let dim_vec = g "dim_vec" in
    let threads = dim_m * dim_n in
    let thr_m = blk_m / dim_m and thr_n = blk_n / dim_n in
    let regs_per_thread = thr_m * thr_n * 2 in
    (* double real *)
    let shmem = blk_k * (blk_m + blk_n) * 4 * 2 in
    assert (threads <= d.Device.max_threads_per_block);
    assert (regs_per_thread <= caps.Capability.max_regs_per_thread);
    assert (regs_per_thread * threads <= d.Device.max_regs_per_block);
    assert (shmem <= d.Device.max_shared_mem_per_block);
    assert (threads mod d.Device.warp_size = 0);
    let max_blocks_by_regs =
      min
        (d.Device.max_registers_per_multi_processor / (regs_per_thread * threads))
        caps.Capability.max_blocks_per_mp
    in
    assert (max_blocks_by_regs * threads >= 256);
    let max_blocks_by_shmem =
      min
        (d.Device.max_shmem_per_multi_processor / shmem)
        caps.Capability.max_blocks_per_mp
    in
    assert (max_blocks_by_shmem * threads >= 256);
    let loads = (thr_m + thr_n) * blk_k / dim_vec * threads in
    let fmas = thr_m * thr_n * blk_k * threads in
    assert (fmas >= 2 * loads);
    assert (g "dim_m_a" * g "dim_n_a" = threads);
    assert (g "dim_m_b" * g "dim_n_b" = threads);
    (* trans_a = trans_b = 0 *)
    assert (blk_m mod (g "dim_m_a" * dim_vec) = 0);
    assert (blk_k mod g "dim_n_a" = 0);
    assert (blk_k mod (g "dim_m_b" * dim_vec) = 0);
    assert (blk_n mod g "dim_n_b" = 0)
  in
  ignore (Engine_staged.run_space ~on_hit sp);
  Alcotest.(check bool) "checked some survivors" true (!checked > 100)

let test_gemm_known_good_config_survives () =
  (* A classic Kepler DGEMM shape must not be pruned. *)
  let settings =
    { Gemm.default_settings with
      Gemm.device = Device.scale ~max_dim:128 ~max_threads:256 Device.tesla_k40c }
  in
  let sp = Gemm.space ~settings () in
  (* Restrict the space to the single candidate via order-preserving
     constraint injection: simpler to check by pinning iterators. *)
  let pin name value =
    Space.constrain sp ("pin_" ^ name)
      Expr.Infix.(Expr.var name <>: Expr.int value)
  in
  pin "dim_m" 16;
  pin "dim_n" 16;
  pin "blk_m" 96;
  pin "blk_n" 96;
  pin "blk_k" 16;
  pin "dim_vec" 2;
  pin "vec_mul" 1;
  pin "dim_m_a" 16;
  pin "dim_n_a" 16;
  pin "dim_m_b" 8;
  pin "dim_n_b" 32;
  let s = Engine_staged.run_space sp in
  (* tex/l1/banks free: 16 variants of the pinned config survive. *)
  Alcotest.(check int) "pinned config survives" 16 s.Engine.survivors

let test_gemm_dim_vec_per_precision () =
  (* Figure 11's dim_vec depends on precision/arithmetic. *)
  let dim_vec_values precision arithmetic =
    let settings =
      {
        (scaled ()) with
        Gemm.precision; arithmetic;
      }
    in
    let sp = Gemm.space ~settings () in
    let plan = Plan.make_exn sp in
    let rec find steps =
      List.find_map
        (fun (step : Plan.step) ->
          match step with
          | Plan.Loop { l_var = "dim_vec"; l_iter; _ } -> Some l_iter
          | Plan.Loop { l_body; _ } -> find l_body
          | _ -> None)
        steps
    in
    match find plan.Plan.steps with
    | Some (Plan.CRange (a, b, c)) ->
      let ev e = Plan.eval_cexpr [||] e in
      let rec vals x = if x < ev b then x :: vals (x + ev c) else [] in
      vals (ev a)
    | _ -> Alcotest.fail "dim_vec loop not found"
  in
  Alcotest.(check (list int)) "double real" [ 1; 2 ]
    (dim_vec_values Device.Double Device.Real);
  Alcotest.(check (list int)) "double complex" [ 1 ]
    (dim_vec_values Device.Double Device.Complex);
  Alcotest.(check (list int)) "single real" [ 1; 4 ]
    (dim_vec_values Device.Single Device.Real);
  Alcotest.(check (list int)) "single complex" [ 1; 2 ]
    (dim_vec_values Device.Single Device.Complex)

let test_gemm_transpose_variants () =
  (* All four transposition cases build, plan and have survivors. *)
  List.iter
    (fun (ta, tb) ->
      let settings =
        { (scaled ()) with
          Gemm.trans_a = ta; trans_b = tb }
      in
      let s = Engine_staged.run_space (Gemm.space ~settings ()) in
      Alcotest.(check bool)
        (Printf.sprintf "trans %b %b survivors" ta tb)
        true
        (s.Engine.survivors > 0))
    [ (false, false); (true, false); (false, true); (true, true) ]

let test_gemm_divisor_opt_same_survivors () =
  (* The closure-iterator optimization must enumerate exactly the same
     surviving 15-tuples, with far fewer loop iterations. *)
  let settings = scaled () in
  let collect sp =
    let acc = ref [] in
    let on_hit lookup =
      acc :=
        List.map (fun n -> Value.to_int (lookup n)) Gemm.iterator_names :: !acc
    in
    let stats = Engine_staged.run_space ~on_hit sp in
    (List.sort compare !acc, stats)
  in
  let plain, plain_stats = collect (Gemm.space ~settings ()) in
  let opt, opt_stats = collect (Gemm.space_divisor_opt ~settings ()) in
  Alcotest.(check int) "same survivor count" (List.length plain)
    (List.length opt);
  Alcotest.(check bool) "same survivor tuples" true (plain = opt);
  (* The reduction factor grows with scale (3x at 32-dim, more beyond -
     the bench measures it); at this tiny test scale the 16 variant
     combinations below the read-grids dominate both spaces, so just
     require a strict reduction. *)
  Alcotest.(check bool) "strictly fewer loop iterations" true
    (opt_stats.Engine.loop_iterations < plain_stats.Engine.loop_iterations)

let test_gemm_divisor_opt_not_c_translatable () =
  let sp = Gemm.space_divisor_opt ~settings:(scaled ()) () in
  match Codegen_c.generate (Plan.make_exn sp) with
  | Error (Codegen_c.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "dynamic closures should not translate to C"

let test_gemm_dag_levels () =
  (* Figure 16's qualitative structure: dim_m/dim_n/blk_k at level 0,
     blk_m/blk_n at level 1. *)
  let sp = Gemm.space ~settings:(scaled ()) () in
  match Space.dag sp with
  | Error e -> Alcotest.failf "%a" Space.pp_error e
  | Ok dag ->
    Alcotest.(check int) "dim_m level 0" 0 (Dag.level dag "dim_m");
    Alcotest.(check int) "blk_k level 0" 0 (Dag.level dag "blk_k");
    Alcotest.(check int) "blk_m level 1" 1 (Dag.level dag "blk_m");
    Alcotest.(check bool) "threads_per_block above dims" true
      (Dag.level dag "threads_per_block" >= 1);
    Alcotest.(check bool) "low_occupancy deep" true
      (Dag.level dag "low_occupancy_regs" > Dag.level dag "regs_per_block")

(* ---- batched kernels ---- *)

let test_cholesky_space_valid () =
  let sp = Cholesky_batched.space () in
  match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Space.pp_error e

let test_cholesky_survivors_valid () =
  let w = Cholesky_batched.default_workload in
  let sp = Cholesky_batched.space ~workload:w () in
  let on_hit lookup =
    let c = Cholesky_batched.decode lookup in
    assert (w.Cholesky_batched.n mod c.Cholesky_batched.blk = 0);
    assert (c.Cholesky_batched.blk <= c.Cholesky_batched.dim_x);
    assert (
      c.Cholesky_batched.dim_x * c.Cholesky_batched.batch_per_block mod 32 = 0)
  in
  let s = Engine_staged.run_space ~on_hit sp in
  Alcotest.(check bool) "has survivors" true (s.Engine.survivors > 0)

let test_cholesky_model_sane () =
  let w = Cholesky_batched.default_workload in
  let good =
    {
      Cholesky_batched.dim_x = 16;
      batch_per_block = 8;
      blk = 4;
      use_shmem = true;
      unroll = 4;
    }
  in
  let g = Cholesky_batched.gflops w good in
  let peak = Device.peak_gflops w.Cholesky_batched.device Device.Double in
  Alcotest.(check bool) "positive" true (g > 0.0);
  Alcotest.(check bool) "below ceiling" true (g <= 0.62 *. peak);
  Alcotest.(check bool) "beats the baseline" true
    (g > Cholesky_batched.baseline_gflops w)

let test_cholesky_flops () =
  (* n^3/3 + n^2/2 + n/6 at n=4: 21.33+8+0.67 = 30. *)
  Alcotest.(check (float 1e-6)) "potrf flops" 30.0
    (Cholesky_batched.flops_per_matrix 4)

let test_trsm_space_and_model () =
  let w = Trsm_batched.default_workload in
  let sp = Trsm_batched.space ~workload:w () in
  let s = Engine_staged.run_space sp in
  Alcotest.(check bool) "survivors" true (s.Engine.survivors > 0);
  let good =
    { Trsm_batched.dim_x = 16; batch_per_block = 8; use_shmem = true; unroll = 4 }
  in
  Alcotest.(check bool) "tuned beats baseline" true
    (Trsm_batched.gflops w good > Trsm_batched.baseline_gflops w)

let test_lu_space_and_model () =
  let w = Lu_batched.default_workload in
  let sp = Lu_batched.space ~workload:w () in
  (match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Space.pp_error e);
  let seen_tree = ref false in
  let on_hit lookup =
    let c = Lu_batched.decode lookup in
    (* the pow2 correctness constraint *)
    if c.Lu_batched.pivot_tree then begin
      seen_tree := true;
      let x = c.Lu_batched.dim_x in
      assert (x land (x - 1) = 0)
    end;
    assert (w.Lu_batched.n mod c.Lu_batched.blk = 0)
  in
  let s = Engine_staged.run_space ~on_hit sp in
  Alcotest.(check bool) "survivors" true (s.Engine.survivors > 0);
  Alcotest.(check bool) "tree variants survive" true !seen_tree;
  let good =
    {
      Lu_batched.dim_x = 16;
      batch_per_block = 8;
      blk = 4;
      use_shmem = true;
      unroll = 4;
      pivot_tree = true;
    }
  in
  Alcotest.(check bool) "tuned beats baseline" true
    (Lu_batched.gflops w good > Lu_batched.baseline_gflops w)

let test_lu_flops () =
  (* getrf flops at n=4: 2*64/3 - 16/2 - 4/6 = 42.67 - 8 - 0.67 = 34. *)
  Alcotest.(check (float 1e-6)) "getrf flops" 34.0 (Lu_batched.flops_per_matrix 4)

let test_lu_pivot_tree_helps_latency () =
  (* At small dim_x the serial scan dominates; the tree reduction should
     win for the same configuration otherwise. *)
  let w = Lu_batched.default_workload in
  let base =
    {
      Lu_batched.dim_x = 16;
      batch_per_block = 8;
      blk = 4;
      use_shmem = true;
      unroll = 4;
      pivot_tree = false;
    }
  in
  let tree = { base with Lu_batched.pivot_tree = true } in
  Alcotest.(check bool) "tree at least as fast" true
    (Lu_batched.gflops w tree >= Lu_batched.gflops w base)

let test_als_space_and_model () =
  let w = Als.default_workload in
  let sp = Als.space ~workload:w () in
  (match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Space.pp_error e);
  let on_hit lookup =
    let c = Als.decode lookup in
    assert (w.Als.rank mod c.Als.tile_f = 0);
    assert (c.Als.tile_f <= c.Als.dim_x);
    assert (c.Als.dim_x * c.Als.users_per_block mod 32 = 0)
  in
  let s = Engine_staged.run_space ~on_hit sp in
  Alcotest.(check bool) "survivors" true (s.Engine.survivors > 0)

let test_als_flops () =
  (* rank 2, 3 ratings: gram 2*3*3=18, solve 8/3, rhs 4*3*2=24. *)
  let w = { Als.default_workload with Als.rank = 2; avg_ratings = 3 } in
  Alcotest.(check (float 1e-6)) "flops" (18.0 +. (8.0 /. 3.0) +. 24.0)
    (Als.flops_per_user w)

let test_als_beats_cpu () =
  (* The paper's claim: significant speedup over CPU implementations. *)
  let w = Als.default_workload in
  let good =
    {
      Als.dim_x = 64;
      users_per_block = 4;
      tile_f = 8;
      gram_in_shmem = true;
      unroll = 4;
    }
  in
  let gpu = Als.gflops w good and cpu = Als.cpu_baseline_gflops w in
  Alcotest.(check bool) "at least 2x over CPU" true (gpu > 2.0 *. cpu)

let test_conv2d_space_and_model () =
  let w = Conv2d.default_workload in
  let sp = Conv2d.space ~workload:w () in
  (match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Space.pp_error e);
  let d = w.Conv2d.device in
  let on_hit lookup =
    let c = Conv2d.decode lookup in
    assert (c.Conv2d.tile_h mod c.Conv2d.dim_y = 0);
    assert (c.Conv2d.tile_w mod c.Conv2d.dim_x = 0);
    assert (w.Conv2d.channels mod c.Conv2d.chans_per_iter = 0);
    assert (c.Conv2d.dim_x * c.Conv2d.dim_y mod 32 = 0);
    assert (
      Conv2d.shmem_per_block w c <= d.Beast_gpu.Device.max_shared_mem_per_block)
  in
  let s = Engine_staged.run_space ~on_hit sp in
  Alcotest.(check bool) "survivors" true (s.Engine.survivors > 0);
  (* The model scores staged full-warp tiles above tiny ragged ones. *)
  let good =
    {
      Conv2d.tile_h = 16; tile_w = 32; dim_x = 8; dim_y = 16;
      chans_per_iter = 4; stage_input = true; stage_weights = true;
      unroll_rs = true;
    }
  in
  let bad = { good with Conv2d.tile_h = 1; tile_w = 4; dim_x = 4; dim_y = 1;
              stage_input = false } in
  Alcotest.(check bool) "ordering" true
    (Conv2d.gflops w good > Conv2d.gflops w bad);
  Alcotest.(check bool) "below peak" true
    (Conv2d.gflops w good
    <= Beast_gpu.Device.peak_gflops d w.Conv2d.precision)

(* ---- prime FFT ---- *)

let no_env : Expr.lookup = fun _ -> raise Not_found

let test_fft_primes_iterator () =
  let env name = if name = "max_size" then Value.Int 30 else raise Not_found in
  let vs =
    Array.to_list (Array.map Value.to_int (Iter.materialize env Fft.primes_iter))
  in
  Alcotest.(check (list int)) "figure 3 primes"
    [ 1; 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ]
    vs

let test_fft_divisors () =
  let env name = if name = "conv_len" then Value.Int 12 else raise Not_found in
  let vs =
    Array.to_list
      (Array.map Value.to_int (Iter.materialize env (Fft.divisors_iter ~of_:"conv_len")))
  in
  Alcotest.(check (list int)) "divisors of 12" [ 1; 2; 3; 4; 6; 12 ] vs;
  ignore no_env

let test_fft_space () =
  let sp = Fft.space ~max_size:32 () in
  let seen = ref [] in
  let on_hit lookup =
    let c = Fft.decode lookup in
    seen := c :: !seen;
    (* Survivors obey the strategy/radix coupling. *)
    if c.Fft.strategy = 0 then assert (c.Fft.radix = 1)
    else begin
      assert (c.Fft.radix > 1 && c.Fft.radix < c.Fft.size - 1);
      assert ((c.Fft.size - 1) mod c.Fft.radix = 0)
    end
  in
  let s = Engine_staged.run_space ~on_hit sp in
  Alcotest.(check bool) "survivors" true (s.Engine.survivors > 0);
  Alcotest.(check int) "callback saw all" s.Engine.survivors (List.length !seen);
  (* Every prime size >= 3 up to 32 appears. *)
  let sizes = List.sort_uniq compare (List.map (fun c -> c.Fft.size) !seen) in
  Alcotest.(check (list int)) "prime sizes" [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31 ]
    sizes

let test_fft_cost_model () =
  (* For a prime with smooth p-1, the direct strategy should win
     somewhere; the padded strategy must at least be finite. *)
  let direct =
    Fft.modeled_time_us
      { Fft.size = 13; strategy = 1; radix = 4; twiddle_in_shmem = true }
  in
  let padded =
    Fft.modeled_time_us
      { Fft.size = 13; strategy = 0; radix = 1; twiddle_in_shmem = true }
  in
  Alcotest.(check bool) "both positive" true (direct > 0.0 && padded > 0.0);
  Alcotest.(check bool) "direct beats padding for smooth sizes" true
    (direct < padded)

let () =
  Alcotest.run "kernels"
    [
      ( "gemm space",
        [
          Alcotest.test_case "shape (Figs. 10-15)" `Quick test_gemm_shape;
          Alcotest.test_case "engines agree" `Quick test_gemm_engines_agree;
          Alcotest.test_case "C round-trip" `Quick test_gemm_c_roundtrip;
          Alcotest.test_case "survivors satisfy figures" `Quick
            test_gemm_survivors_satisfy_figures;
          Alcotest.test_case "known-good config survives" `Quick
            test_gemm_known_good_config_survives;
          Alcotest.test_case "dim_vec per precision" `Quick
            test_gemm_dim_vec_per_precision;
          Alcotest.test_case "transpose variants" `Quick
            test_gemm_transpose_variants;
          Alcotest.test_case "divisor-opt same survivors" `Quick
            test_gemm_divisor_opt_same_survivors;
          Alcotest.test_case "divisor-opt not C-translatable" `Quick
            test_gemm_divisor_opt_not_c_translatable;
          Alcotest.test_case "DAG levels (Fig. 16)" `Quick test_gemm_dag_levels;
        ] );
      ( "batched",
        [
          Alcotest.test_case "cholesky space valid" `Quick
            test_cholesky_space_valid;
          Alcotest.test_case "cholesky survivors valid" `Quick
            test_cholesky_survivors_valid;
          Alcotest.test_case "cholesky model sane" `Quick test_cholesky_model_sane;
          Alcotest.test_case "potrf flop count" `Quick test_cholesky_flops;
          Alcotest.test_case "trsm space and model" `Quick test_trsm_space_and_model;
          Alcotest.test_case "lu space and model" `Quick test_lu_space_and_model;
          Alcotest.test_case "getrf flop count" `Quick test_lu_flops;
          Alcotest.test_case "lu pivot tree" `Quick test_lu_pivot_tree_helps_latency;
          Alcotest.test_case "als space and model" `Quick test_als_space_and_model;
          Alcotest.test_case "als flop count" `Quick test_als_flops;
          Alcotest.test_case "als beats cpu" `Quick test_als_beats_cpu;
          Alcotest.test_case "conv2d space and model" `Quick
            test_conv2d_space_and_model;
        ] );
      ( "prime fft",
        [
          Alcotest.test_case "primes iterator (Fig. 3)" `Quick
            test_fft_primes_iterator;
          Alcotest.test_case "divisors iterator" `Quick test_fft_divisors;
          Alcotest.test_case "space" `Quick test_fft_space;
          Alcotest.test_case "cost model" `Quick test_fft_cost_model;
        ] );
    ]
