open Beast_gpu

(* Figure 8: every listed value for the Tesla K40c. *)
let test_figure8_values () =
  let d = Device.tesla_k40c in
  Alcotest.(check int) "max_threads_per_block" 1024 d.Device.max_threads_per_block;
  Alcotest.(check int) "max_threads_dim_x" 1024 d.Device.max_threads_dim_x;
  Alcotest.(check int) "max_threads_dim_y" 1024 d.Device.max_threads_dim_y;
  Alcotest.(check int) "max_shared_mem_per_block" 49152
    d.Device.max_shared_mem_per_block;
  Alcotest.(check int) "warp_size" 32 d.Device.warp_size;
  Alcotest.(check int) "max_regs_per_block" 65536 d.Device.max_regs_per_block;
  Alcotest.(check int) "max_threads_per_multi_processor" 2048
    d.Device.max_threads_per_multi_processor;
  Alcotest.(check int) "cudamajor" 3 d.Device.cuda_major;
  Alcotest.(check int) "cudaminor" 5 d.Device.cuda_minor;
  Alcotest.(check int) "max_registers_per_multi_processor" 65536
    d.Device.max_registers_per_multi_processor;
  Alcotest.(check int) "max_shmem_per_multi_processor" 49152
    d.Device.max_shmem_per_multi_processor;
  Alcotest.(check int) "float_size" 4 d.Device.float_size

(* Figure 9: the compute-capability lookups the paper performs. *)
let test_figure9_k40c_lookup () =
  let caps = Capability.lookup_exn Device.tesla_k40c in
  Alcotest.(check int) "max_blocks_per_multi_processor" 16
    caps.Capability.max_blocks_per_mp;
  Alcotest.(check int) "max_warps_per_multi_processor" 64
    caps.Capability.max_warps_per_mp;
  Alcotest.(check int) "max_registers_per_thread" 255
    caps.Capability.max_regs_per_thread

let test_figure9_table_entries () =
  let check_entry f major minor expected =
    match f ~major ~minor with
    | Ok v -> Alcotest.(check int) (Printf.sprintf "cc %d.%d" major minor) expected v
    | Error e -> Alcotest.failf "unexpected: %a" Capability.pp_error e
  in
  (* Fermi (2.0): 8 blocks, 48 warps, 63 regs. *)
  check_entry Capability.max_blocks_per_multi_processor 2 0 8;
  check_entry Capability.max_warps_per_multi_processor 2 0 48;
  check_entry Capability.max_registers_per_thread 2 0 63;
  (* Kepler 3.0: 16 blocks, 64 warps, 63 regs. *)
  check_entry Capability.max_blocks_per_multi_processor 3 0 16;
  check_entry Capability.max_warps_per_multi_processor 3 0 64;
  check_entry Capability.max_registers_per_thread 3 0 63;
  (* cc 1.2: 32 warps, 128 regs. *)
  check_entry Capability.max_warps_per_multi_processor 1 2 32;
  check_entry Capability.max_registers_per_thread 1 0 128

let test_figure9_holes () =
  (* -1 entries are errors, exactly as in the table. *)
  (match Capability.max_blocks_per_multi_processor ~major:3 ~minor:2 with
  | Error (Capability.Unknown_capability (3, 2)) -> ()
  | _ -> Alcotest.fail "cc 3.2 should be unknown");
  match Capability.max_warps_per_multi_processor ~major:0 ~minor:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cc 0.0 should be unknown"

let test_peak_gflops () =
  (* K40c: 15 SMX x 192 cores x 745 MHz x 2 = 4291 sp, /3 = 1430 dp. *)
  let sp = Device.peak_gflops Device.tesla_k40c Device.Single in
  let dp = Device.peak_gflops Device.tesla_k40c Device.Double in
  Alcotest.(check bool) "sp near 4291" true (abs_float (sp -. 4291.2) < 1.0);
  Alcotest.(check bool) "dp near 1430" true (abs_float (dp -. 1430.4) < 1.0)

let test_element_size () =
  let d = Device.tesla_k40c in
  Alcotest.(check int) "sreal" 4 (Device.element_size d Device.Single Device.Real);
  Alcotest.(check int) "dreal" 8 (Device.element_size d Device.Double Device.Real);
  Alcotest.(check int) "scomplex" 8
    (Device.element_size d Device.Single Device.Complex);
  Alcotest.(check int) "dcomplex" 16
    (Device.element_size d Device.Double Device.Complex)

let test_scale () =
  let s = Device.scale ~max_dim:64 ~max_threads:256 Device.tesla_k40c in
  Alcotest.(check int) "dim capped" 64 s.Device.max_threads_dim_x;
  Alcotest.(check int) "threads capped" 256 s.Device.max_threads_per_block;
  Alcotest.(check int) "perf untouched" 15 s.Device.n_multi_processors

let test_presets () =
  Alcotest.(check int) "4 presets" 4 (List.length Device.presets);
  Alcotest.(check bool) "find k40c" true (Device.find "k40c" <> None);
  Alcotest.(check bool) "find unknown" true (Device.find "h100" = None);
  (* Every preset has a valid capability entry. *)
  List.iter
    (fun (_, d) -> ignore (Capability.lookup_exn d))
    Device.presets

(* ---- occupancy calculator ---- *)

let usage threads regs shmem =
  {
    Occupancy.threads_per_block = threads;
    regs_per_thread = regs;
    shmem_per_block = shmem;
  }

let calc u = Occupancy.calculate_exn Device.tesla_k40c u

let test_occupancy_full () =
  (* 256 threads, 32 regs, 12KB shared: regs allow 8 blocks, shmem 4,
     warps 8, hw 16 -> 4 blocks, 32 warps, occupancy 0.5. *)
  let r = calc (usage 256 32 12288) in
  Alcotest.(check int) "warps per block" 8 r.Occupancy.warps_per_block;
  Alcotest.(check int) "blocks by warps" 8 r.Occupancy.blocks_by_warps;
  Alcotest.(check int) "blocks by regs" 8 r.Occupancy.blocks_by_regs;
  Alcotest.(check int) "blocks by shmem" 4 r.Occupancy.blocks_by_shmem;
  Alcotest.(check int) "active blocks" 4 r.Occupancy.active_blocks;
  Alcotest.(check (float 1e-9)) "occupancy" 0.5 r.Occupancy.occupancy;
  Alcotest.(check string) "limiter" "shared-memory" (Occupancy.limiting_factor r)

let test_occupancy_reg_limited () =
  (* 1024 threads at 64 regs = 65536 regs/block -> exactly 1 block. *)
  let r = calc (usage 1024 64 0) in
  Alcotest.(check int) "one block" 1 r.Occupancy.active_blocks;
  Alcotest.(check (float 1e-9)) "half occupancy" 0.5 r.Occupancy.occupancy

let test_occupancy_hw_limited () =
  (* Tiny blocks: the 16-block hardware limit binds. *)
  let r = calc (usage 32 8 0) in
  Alcotest.(check int) "hw blocks" 16 r.Occupancy.active_blocks;
  Alcotest.(check string) "limiter" "hardware" (Occupancy.limiting_factor r);
  Alcotest.(check (float 1e-9)) "quarter occupancy" 0.25 r.Occupancy.occupancy

let test_occupancy_infeasible () =
  let err u =
    match Occupancy.calculate Device.tesla_k40c u with
    | Error e -> Occupancy.infeasible_name e
    | Ok _ -> "ok"
  in
  Alcotest.(check string) "too many threads" "too many threads per block"
    (err (usage 2048 16 0));
  Alcotest.(check string) "too many regs/thread"
    "too many registers per thread" (err (usage 32 256 0));
  Alcotest.(check string) "too much shmem" "too much shared memory per block"
    (err (usage 32 16 65536));
  Alcotest.(check string) "empty block" "empty block" (err (usage 0 16 0));
  Alcotest.(check string) "too many regs/block"
    "too many registers per block" (err (usage 1024 65 0))

let test_occupancy_partial_warp_rounds_up () =
  let r = calc (usage 33 16 0) in
  Alcotest.(check int) "2 warps for 33 threads" 2 r.Occupancy.warps_per_block

let prop_occupancy_bounded =
  QCheck.Test.make ~name:"occupancy in (0, 1]" ~count:500
    QCheck.(triple (int_range 1 1024) (int_range 0 255) (int_range 0 49152))
    (fun (threads, regs, shmem) ->
      match Occupancy.calculate Device.tesla_k40c (usage threads regs shmem) with
      | Error _ -> true
      | Ok r -> r.Occupancy.occupancy > 0.0 && r.Occupancy.occupancy <= 1.0)

let prop_occupancy_monotone_regs =
  QCheck.Test.make ~name:"more registers never raise occupancy" ~count:300
    QCheck.(pair (int_range 1 512) (int_range 1 127))
    (fun (threads, regs) ->
      match
        ( Occupancy.calculate Device.tesla_k40c (usage threads regs 0),
          Occupancy.calculate Device.tesla_k40c (usage threads (regs * 2) 0) )
      with
      | Ok a, Ok b -> b.Occupancy.occupancy <= a.Occupancy.occupancy
      | _ -> true)

(* ---- perf model + sim ---- *)

let good_dgemm =
  {
    Perf_model.precision = Device.Double;
    arithmetic = Device.Real;
    trans_a = false;
    trans_b = false;
    dim_m = 16;
    dim_n = 16;
    blk_m = 96;
    blk_n = 96;
    blk_k = 16;
    dim_vec = 2;
    vec_mul = 1;
    dim_m_a = 16;
    dim_n_a = 16;
    dim_m_b = 8;
    dim_n_b = 32;
    tex_a = 0;
    tex_b = 0;
    shmem_l1 = 0;
    shmem_banks = 1;
  }

let test_perf_model_good_config () =
  let b = Perf_model.evaluate Device.tesla_k40c good_dgemm in
  let peak = Device.peak_gflops Device.tesla_k40c Device.Double in
  Alcotest.(check bool) "substantial fraction of peak" true
    (b.Perf_model.gflops > 0.5 *. peak && b.Perf_model.gflops <= peak)

let test_perf_model_degenerate_configs () =
  let tiny = { good_dgemm with Perf_model.blk_m = 8; blk_n = 8; blk_k = 8;
               dim_m = 8; dim_n = 8 } in
  let good = Perf_model.gflops Device.tesla_k40c good_dgemm in
  let small = Perf_model.gflops Device.tesla_k40c tiny in
  Alcotest.(check bool) "tiny tiles lose" true (small < 0.5 *. good);
  (* Non-dividing block shape scores zero. *)
  let broken = { good_dgemm with Perf_model.blk_m = 97 } in
  Alcotest.(check (float 0.0)) "broken scores 0" 0.0
    (Perf_model.gflops Device.tesla_k40c broken)

let test_perf_model_infeasible_zero () =
  (* Excessive shared memory demand -> occupancy rejects -> 0. *)
  let huge = { good_dgemm with Perf_model.blk_m = 512; blk_n = 512 } in
  Alcotest.(check (float 0.0)) "infeasible 0" 0.0
    (Perf_model.gflops Device.tesla_k40c huge)

let test_perf_model_memory_bound_small_tiles () =
  let thin = { good_dgemm with Perf_model.blk_m = 16; blk_n = 16;
               dim_m = 8; dim_n = 8; blk_k = 8 } in
  let b = Perf_model.evaluate Device.tesla_k40c thin in
  Alcotest.(check bool) "memory roofline binds" true
    (b.Perf_model.memory_gflops < b.Perf_model.compute_gflops)

let test_perf_model_figure12_formulas () =
  Alcotest.(check int) "shmem: blk_k*(blk_m+blk_n)*4*2 for double"
    (16 * (96 + 96) * 4 * 2)
    (Perf_model.shmem_per_block good_dgemm);
  (* thr 6x6 doubles -> 72 words + overhead. *)
  Alcotest.(check bool) "regs include accumulator" true
    (Perf_model.regs_per_thread good_dgemm >= 72)

let test_sim_runs () =
  match Sim.simulate Device.tesla_k40c good_dgemm with
  | None -> Alcotest.fail "good config must simulate"
  | Some r ->
    let peak = Device.peak_gflops Device.tesla_k40c Device.Double in
    Alcotest.(check bool) "positive" true (r.Sim.gflops > 0.0);
    Alcotest.(check bool) "below peak" true (r.Sim.gflops <= peak);
    Alcotest.(check int) "stripes" (4096 / 16) r.Sim.stripes;
    Alcotest.(check bool) "resident blocks" true (r.Sim.resident_blocks >= 1)

let test_sim_agrees_on_ordering () =
  (* The two estimators must agree that the good config beats the tiny
     one by a wide margin. *)
  let tiny = { good_dgemm with Perf_model.blk_m = 8; blk_n = 8; blk_k = 4;
               dim_m = 4; dim_n = 8 } in
  let pm_good = Perf_model.gflops Device.tesla_k40c good_dgemm in
  let pm_tiny = Perf_model.gflops Device.tesla_k40c tiny in
  let sim_good = Sim.gflops Device.tesla_k40c good_dgemm in
  let sim_tiny = Sim.gflops Device.tesla_k40c tiny in
  Alcotest.(check bool) "perf model orders" true (pm_good > 2.0 *. pm_tiny);
  Alcotest.(check bool) "sim orders" true (sim_good > 2.0 *. sim_tiny)

let test_sim_infeasible () =
  let huge = { good_dgemm with Perf_model.blk_m = 512; blk_n = 512 } in
  Alcotest.(check bool) "None" true (Sim.simulate Device.tesla_k40c huge = None)

let test_baseline_shapes () =
  let d = Device.tesla_k40c in
  let big = Baseline.gemm_gflops d Device.Double Device.Real ~n:8192 in
  let small = Baseline.gemm_gflops d Device.Double Device.Real ~n:128 in
  let peak = Device.peak_gflops d Device.Double in
  Alcotest.(check bool) "large-n solid fraction" true
    (big > 0.6 *. peak && big < 0.8 *. peak);
  Alcotest.(check bool) "small-n ramps down" true (small < 0.5 *. big);
  (* Batched baselines collapse for tiny matrices. *)
  let tiny_batched = Baseline.batched_cholesky_gflops d Device.Double ~n:16 ~batch:10000 in
  Alcotest.(check bool) "tiny batched is slow" true (tiny_batched < 0.02 *. peak)

let () =
  Alcotest.run "gpu"
    [
      ( "device (Fig. 8)",
        [
          Alcotest.test_case "K40c query values" `Quick test_figure8_values;
          Alcotest.test_case "peak gflops" `Quick test_peak_gflops;
          Alcotest.test_case "element size" `Quick test_element_size;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "presets" `Quick test_presets;
        ] );
      ( "capability (Fig. 9)",
        [
          Alcotest.test_case "K40c lookup" `Quick test_figure9_k40c_lookup;
          Alcotest.test_case "table entries" `Quick test_figure9_table_entries;
          Alcotest.test_case "holes are errors" `Quick test_figure9_holes;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "mixed limits" `Quick test_occupancy_full;
          Alcotest.test_case "register limited" `Quick test_occupancy_reg_limited;
          Alcotest.test_case "hardware limited" `Quick test_occupancy_hw_limited;
          Alcotest.test_case "infeasible" `Quick test_occupancy_infeasible;
          Alcotest.test_case "partial warp" `Quick
            test_occupancy_partial_warp_rounds_up;
        ] );
      ( "perf model",
        [
          Alcotest.test_case "good DGEMM config" `Quick test_perf_model_good_config;
          Alcotest.test_case "degenerate configs" `Quick
            test_perf_model_degenerate_configs;
          Alcotest.test_case "infeasible scores 0" `Quick
            test_perf_model_infeasible_zero;
          Alcotest.test_case "memory roofline" `Quick
            test_perf_model_memory_bound_small_tiles;
          Alcotest.test_case "Figure 12 formulas" `Quick
            test_perf_model_figure12_formulas;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "runs" `Quick test_sim_runs;
          Alcotest.test_case "agrees on ordering" `Quick test_sim_agrees_on_ordering;
          Alcotest.test_case "infeasible" `Quick test_sim_infeasible;
        ] );
      ( "baseline",
        [ Alcotest.test_case "cuBLAS-model shapes" `Quick test_baseline_shapes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_occupancy_bounded; prop_occupancy_monotone_regs ] );
    ]
