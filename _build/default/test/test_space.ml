open Beast_core

let test_declaration_order_free () =
  (* Deferred semantics (Figure 2): using an iterator before its
     definition must be fine. *)
  let sp = Space.create () in
  Space.iterator sp "inner" (Iter.upto (Expr.var "outer"));
  Space.iterator sp "outer" (Iter.range_i 0 5);
  match Space.validate sp with
  | Ok () -> ()
  | Error e -> Alcotest.failf "should validate: %a" Space.pp_error e

let test_duplicate_name () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.range_i 0 5);
  Alcotest.check_raises "duplicate"
    (Space.Error (Space.Duplicate_name "x"))
    (fun () -> Space.setting_i sp "x" 3)

let test_undefined_reference () =
  let sp = Space.create () in
  Space.iterator sp "x" (Iter.upto (Expr.var "ghost"));
  match Space.validate sp with
  | Error (Space.Undefined_reference ("x", "ghost")) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Space.pp_error e
  | Ok () -> Alcotest.fail "undefined reference not caught"

let test_cycle () =
  let sp = Space.create () in
  Space.iterator sp "a" (Iter.upto (Expr.var "b"));
  Space.iterator sp "b" (Iter.upto (Expr.var "a"));
  match Space.validate sp with
  | Error (Space.Cyclic _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Space.pp_error e
  | Ok () -> Alcotest.fail "cycle not caught"

let test_settings_are_constants () =
  (* Settings never appear in the DAG (they are constants, Figure 10). *)
  let sp = Space.create () in
  Space.setting_i sp "n" 10;
  Space.iterator sp "x" (Iter.upto (Expr.var "n"));
  match Space.dag sp with
  | Ok d -> Alcotest.(check (list string)) "only x" [ "x" ] (Dag.nodes d)
  | Error e -> Alcotest.failf "unexpected: %a" Space.pp_error e

let test_constraint_classes () =
  let sp = Support.triangle_space () in
  let classes =
    List.map (fun c -> c.Space.cn_class) (Space.constraints sp)
  in
  Alcotest.(check (list string))
    "classes recorded" [ "hard"; "soft" ]
    (List.map Space.constraint_class_name classes)

let test_inspection () =
  let sp = Support.mixed_space () in
  Alcotest.(check int) "settings" 2 (List.length (Space.settings sp));
  Alcotest.(check int) "iterators" 3 (List.length (Space.iterators sp));
  Alcotest.(check int) "deriveds" 1 (List.length (Space.deriveds sp));
  Alcotest.(check int) "constraints" 2 (List.length (Space.constraints sp));
  Alcotest.(check bool) "find_setting" true
    (match Space.find_setting sp "limit" with
    | Some (Value.Int 10) -> true
    | _ -> false)

let test_body_deps () =
  let open Expr.Infix in
  Alcotest.(check (list string))
    "expression body deps" [ "a"; "b" ]
    (Space.body_deps (Space.E (Expr.var "b" *: Expr.var "a")));
  Alcotest.(check (list string))
    "function body deps sorted" [ "p"; "q" ]
    (Space.body_deps
       (Space.F { fn_deps = [ "q"; "p"; "q" ]; fn = (fun _ -> Value.Int 0) }))

let test_dag_edges () =
  let sp = Support.triangle_space () in
  match Space.dag sp with
  | Error e -> Alcotest.failf "unexpected: %a" Space.pp_error e
  | Ok d ->
    Alcotest.(check (list string)) "s depends on x y" [ "x"; "y" ] (Dag.deps_of d "s");
    Alcotest.(check (list string)) "odd_sum depends on s" [ "s" ]
      (Dag.deps_of d "odd_sum");
    Alcotest.(check (list string)) "y depends on x" [ "x" ] (Dag.deps_of d "y")

let test_to_dot () =
  let dot = Space.to_dot (Support.triangle_space ()) in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "iterators styled as ellipses" true
    (contains "\"x\" [label=\"x\", shape=ellipse");
  Alcotest.(check bool) "constraints styled as octagons" true
    (contains "\"odd_sum\" [label=\"odd_sum\", shape=octagon");
  Alcotest.(check bool) "derived styled as box" true
    (contains "\"s\" [label=\"s\", shape=box")

let () =
  Alcotest.run "space"
    [
      ( "builder",
        [
          Alcotest.test_case "declaration order free" `Quick
            test_declaration_order_free;
          Alcotest.test_case "duplicate name" `Quick test_duplicate_name;
          Alcotest.test_case "constraint classes" `Quick test_constraint_classes;
          Alcotest.test_case "inspection" `Quick test_inspection;
          Alcotest.test_case "body deps" `Quick test_body_deps;
        ] );
      ( "validation",
        [
          Alcotest.test_case "undefined reference" `Quick test_undefined_reference;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "settings are constants" `Quick
            test_settings_are_constants;
        ] );
      ( "dag",
        [
          Alcotest.test_case "edges" `Quick test_dag_edges;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
    ]
