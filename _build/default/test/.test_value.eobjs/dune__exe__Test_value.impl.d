test/test_value.ml: Alcotest Beast_core List QCheck QCheck_alcotest Value
