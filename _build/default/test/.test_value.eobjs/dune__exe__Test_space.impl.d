test/test_space.ml: Alcotest Beast_core Dag Expr Iter List Space String Support Value
