test/test_gpu.ml: Alcotest Baseline Beast_gpu Capability Device List Occupancy Perf_model Printf QCheck QCheck_alcotest Sim
