test/support.ml: Alcotest Array Beast_core Dag Engine Expr Hashtbl Iter List Space Value
