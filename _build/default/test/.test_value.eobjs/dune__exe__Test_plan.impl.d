test/test_plan.ml: Alcotest Beast_core Engine Engine_staged Expr Format Iter List Plan Space String Support Value
