test/test_expr.ml: Alcotest Beast_core Expr List QCheck QCheck_alcotest String Value
