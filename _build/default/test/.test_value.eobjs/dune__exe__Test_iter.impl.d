test/test_iter.ml: Alcotest Array Beast_core Expr Iter List QCheck QCheck_alcotest Seq Value
