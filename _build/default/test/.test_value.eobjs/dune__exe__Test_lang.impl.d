test/test_lang.ml: Alcotest Beast_lang Interp_lua Interp_python List Loopnest Native Printf Unix
