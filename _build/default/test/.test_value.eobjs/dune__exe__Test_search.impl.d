test/test_search.ml: Alcotest Array Beast_autotune Beast_core Beast_gpu Beast_kernels Device Expr Gemm Iter List Perf_model Plan Random Search Space Tuner Value
