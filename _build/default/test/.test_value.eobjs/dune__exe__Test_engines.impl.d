test/test_engines.ml: Alcotest Array Beast_core Buffer Engine Engine_interp Engine_parallel Engine_staged Engine_vm Expr Iter List Plan Printf QCheck QCheck_alcotest Space String Support Value
