test/test_tuner.ml: Alcotest Beast_autotune Beast_core Beast_gpu Beast_kernels Cholesky_batched Device Engine Expr Fft Float Gemm Iter List Printf Space Sweep Tuner Value
