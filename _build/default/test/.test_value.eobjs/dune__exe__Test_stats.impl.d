test/test_stats.ml: Alcotest Beast_core Engine Engine_staged Iter List Space Stats String Support Sweep Value Visualize
