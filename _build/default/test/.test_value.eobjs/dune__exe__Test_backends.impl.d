test/test_backends.ml: Alcotest Array Beast_core Codegen Codegen_c Engine Engine_staged Expr Filename Iter List Plan Printf Space String Support Sys Unix
