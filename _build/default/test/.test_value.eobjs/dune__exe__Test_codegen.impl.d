test/test_codegen.ml: Alcotest Array Beast_core Codegen_c Engine Engine_staged Expr Filename Iter List Plan Printf QCheck QCheck_alcotest Space String Support Sys Unix Value
