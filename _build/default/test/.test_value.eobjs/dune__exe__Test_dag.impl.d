test/test_dag.ml: Alcotest Beast_core Dag Hashtbl List Printf QCheck QCheck_alcotest String
