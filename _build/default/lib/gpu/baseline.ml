let launch_overhead_us = 5.0

(* Large-n asymptotic fractions of peak for the cuBLAS model, per
   precision/arithmetic. Kepler-era cuBLAS DGEMM sustained ~70-75% of
   peak; complex cases run a little higher (more flops per byte). *)
let asymptote precision arithmetic =
  match (precision : Device.precision), (arithmetic : Device.arithmetic) with
  | Double, Real -> 0.72
  | Double, Complex -> 0.76
  | Single, Real -> 0.68
  | Single, Complex -> 0.74

let gemm_fraction_of_peak device precision arithmetic ~n =
  ignore device;
  let a = asymptote precision arithmetic in
  (* Ramp to the asymptote as the matrix fills the machine: half speed
     around n=512, saturated by a few thousand. *)
  let fn = float_of_int (max 1 n) in
  a *. (fn /. (fn +. 512.0))

let gemm_gflops device precision arithmetic ~n =
  Device.peak_gflops device precision *. gemm_fraction_of_peak device precision arithmetic ~n

let cholesky_flops n =
  (* n^3/3 + n^2/2 + n/6, standard potrf count. *)
  let fn = float_of_int n in
  (fn *. fn *. fn /. 3.0) +. (fn *. fn /. 2.0) +. (fn /. 6.0)

let batched_cholesky_gflops device precision ~n ~batch =
  (* Loop-over-potrf model: each matrix is one kernel launch that
     occupies a single block; tiny factorizations leave the device
     almost idle and pay full launch latency. *)
  let peak = Device.peak_gflops device precision in
  let fn = float_of_int (max 1 n) in
  (* Utilization of the whole device by one small factorization kernel:
     a single block on one SM, itself underutilized below n=64. *)
  let sm_fraction = 1.0 /. float_of_int device.Device.n_multi_processors in
  let intra_sm = min 1.0 (fn /. 128.0) in
  let kernel_gflops = peak *. sm_fraction *. intra_sm *. 0.5 in
  let flops = cholesky_flops n in
  let kernel_time_s = flops /. (kernel_gflops *. 1e9) in
  let time_per_matrix = kernel_time_s +. (launch_overhead_us *. 1e-6) in
  let total_time = float_of_int batch *. time_per_matrix in
  float_of_int batch *. flops /. total_time /. 1e9

let trsm_flops n nrhs = float_of_int n *. float_of_int n *. float_of_int nrhs

let batched_trsm_gflops device precision ~n ~nrhs ~batch =
  let peak = Device.peak_gflops device precision in
  let fn = float_of_int (max 1 n) in
  let sm_fraction = 1.0 /. float_of_int device.Device.n_multi_processors in
  let intra_sm = min 1.0 (fn /. 128.0) in
  let kernel_gflops = peak *. sm_fraction *. intra_sm *. 0.4 in
  let flops = trsm_flops n nrhs in
  let kernel_time_s = flops /. (kernel_gflops *. 1e9) in
  let time_per_matrix = kernel_time_s +. (launch_overhead_us *. 1e-6) in
  let total_time = float_of_int batch *. time_per_matrix in
  float_of_int batch *. flops /. total_time /. 1e9
