type gemm_config = {
  precision : Device.precision;
  arithmetic : Device.arithmetic;
  trans_a : bool;
  trans_b : bool;
  dim_m : int;
  dim_n : int;
  blk_m : int;
  blk_n : int;
  blk_k : int;
  dim_vec : int;
  vec_mul : int;
  dim_m_a : int;
  dim_n_a : int;
  dim_m_b : int;
  dim_n_b : int;
  tex_a : int;
  tex_b : int;
  shmem_l1 : int;
  shmem_banks : int;
}

let config_of_lookup ~precision ~arithmetic ~trans_a ~trans_b lookup =
  let geti name = Beast_core.Value.to_int (lookup name) in
  {
    precision;
    arithmetic;
    trans_a;
    trans_b;
    dim_m = geti "dim_m";
    dim_n = geti "dim_n";
    blk_m = geti "blk_m";
    blk_n = geti "blk_n";
    blk_k = geti "blk_k";
    dim_vec = geti "dim_vec";
    vec_mul = geti "vec_mul";
    dim_m_a = geti "dim_m_a";
    dim_n_a = geti "dim_n_a";
    dim_m_b = geti "dim_m_b";
    dim_n_b = geti "dim_n_b";
    tex_a = geti "tex_a";
    tex_b = geti "tex_b";
    shmem_l1 = geti "shmem_l1";
    shmem_banks = geti "shmem_banks";
  }

type breakdown = {
  occupancy : float;
  occupancy_eff : float;
  mix_eff : float;
  vec_eff : float;
  bank_eff : float;
  tex_eff : float;
  spill_eff : float;
  compute_gflops : float;
  memory_gflops : float;
  gflops : float;
}

let words_per_element c =
  let w =
    match c.precision with
    | Device.Double -> 2
    | Device.Single -> 1
  in
  match c.arithmetic with
  | Device.Complex -> w * 2
  | Device.Real -> w

(* Figure 12's C-accumulator registers plus a fixed overhead for address
   arithmetic, loop counters and double-buffered staging. *)
let index_overhead_regs = 22

let regs_per_thread c =
  let thr_m = c.blk_m / max 1 c.dim_m and thr_n = c.blk_n / max 1 c.dim_n in
  (thr_m * thr_n * words_per_element c) + index_overhead_regs

let shmem_per_block c =
  c.blk_k * (c.blk_m + c.blk_n) * 4 * words_per_element c

let zero_breakdown =
  {
    occupancy = 0.0;
    occupancy_eff = 0.0;
    mix_eff = 0.0;
    vec_eff = 0.0;
    bank_eff = 0.0;
    tex_eff = 0.0;
    spill_eff = 0.0;
    compute_gflops = 0.0;
    memory_gflops = 0.0;
    gflops = 0.0;
  }

let evaluate (device : Device.t) c =
  let threads = c.dim_m * c.dim_n in
  if
    threads < 1 || c.blk_m < 1 || c.blk_n < 1 || c.blk_k < 1 || c.dim_vec < 1
    || c.blk_m mod c.dim_m <> 0
    || c.blk_n mod c.dim_n <> 0
  then zero_breakdown
  else
    let usage =
      {
        Occupancy.threads_per_block = threads;
        regs_per_thread = regs_per_thread c;
        shmem_per_block = shmem_per_block c;
      }
    in
    match Occupancy.calculate device usage with
    | Error _ -> zero_breakdown
    | Ok occ ->
      let thr_m = c.blk_m / c.dim_m and thr_n = c.blk_n / c.dim_n in
      (* Latency hiding: performance ramps with occupancy and saturates
         once half the warp slots are filled; below that, stalls
         dominate (Section II's rationale for the occupancy threshold
         constraint). High per-thread ILP (large thr_m*thr_n) lowers the
         knee, after Volkov's "better performance at lower occupancy"
         (the paper's reference [17]). *)
      let ilp = float_of_int (thr_m * thr_n) in
      let knee = max 0.125 (0.5 -. (ilp /. 128.0)) in
      let occupancy_eff = min 1.0 (occ.Occupancy.occupancy /. knee) in
      (* Issue mix: the paper's low_fmas constraint bounds
         fmas_per_block / loads_per_block; the same ratio drives how well
         FMA issue hides shared-memory traffic. *)
      let fmas = float_of_int (thr_m * thr_n * c.blk_k) in
      let loads =
        float_of_int ((thr_m + thr_n) * c.blk_k) /. float_of_int c.dim_vec
      in
      let r = if loads > 0.0 then fmas /. loads else 0.0 in
      let mix_eff = r /. (r +. 1.0) in
      (* Vector loads widen the shared-memory path slightly beyond the
         mix ratio's account; vec_mul shifts vector use into the compute
         phase. *)
      let vec_eff =
        if c.dim_vec > 1 then if c.vec_mul = 1 then 1.03 else 1.01 else 1.0
      in
      (* Shared-memory bank width matching the element size avoids
         two-phase accesses on Kepler. *)
      let bank_eff =
        match c.precision, c.shmem_banks with
        | Device.Double, 1 | Device.Single, 0 -> 1.0
        | Device.Double, _ -> 0.92
        | Device.Single, _ -> 0.97
      in
      (* Texture reads help single precision on Kepler's read-only path;
         doubles gain nothing and pay a small fetch-split cost. *)
      let tex_eff =
        let one t =
          if t = 1 then
            match c.precision with
            | Device.Single -> 1.01
            | Device.Double -> 0.99
          else 1.0
        in
        one c.tex_a *. one c.tex_b
      in
      (* Register pressure: demand close to the architectural per-thread
         limit forces spills long before the hard constraint trips. *)
      let caps = Capability.lookup_exn device in
      let reg_limit = float_of_int caps.Capability.max_regs_per_thread in
      let demand = float_of_int usage.Occupancy.regs_per_thread in
      let spill_eff =
        if demand <= 0.55 *. reg_limit then 1.0
        else if demand <= 0.8 *. reg_limit then 0.9
        else 0.7
      in
      (* An asymptotic ceiling: instruction overheads (address updates,
         barriers, branches) keep even ideal kernels below ~88% of the
         raw FMA peak. *)
      let ceiling = 0.88 in
      let eff =
        ceiling *. occupancy_eff *. mix_eff *. vec_eff *. bank_eff *. tex_eff
        *. spill_eff
      in
      let peak = Device.peak_gflops device c.precision in
      let compute_gflops = peak *. eff in
      (* DRAM roofline: per block tile, 2*blk_m*blk_n*blk_k flops move
         (blk_m + blk_n)*blk_k elements, i.e. bytes/flop =
         es*(1/blk_m + 1/blk_n)/2. *)
      let es = float_of_int (4 * words_per_element c) in
      let flop_scale =
        match c.arithmetic with
        | Device.Complex -> 4.0
        | Device.Real -> 1.0
      in
      let bytes_per_flop =
        es
        *. ((1.0 /. float_of_int c.blk_m) +. (1.0 /. float_of_int c.blk_n))
        /. (2.0 *. flop_scale)
      in
      let memory_gflops = device.Device.mem_bandwidth_gbs /. bytes_per_flop in
      {
        occupancy = occ.Occupancy.occupancy;
        occupancy_eff;
        mix_eff;
        vec_eff;
        bank_eff;
        tex_eff;
        spill_eff;
        compute_gflops;
        memory_gflops;
        gflops = min compute_gflops memory_gflops;
      }

let gflops device c = (evaluate device c).gflops

type energy = {
  power_watts : float;
  time_per_gflop_ms : float;
  gflops_per_watt : float;
  energy_per_gflop_j : float;
}

(* Board power: an idle floor (~25% of TDP for a Kepler-class board under
   load-idle), plus dynamic compute power scaling with FMA-unit
   utilization, plus memory power scaling with DRAM utilization. Texture
   and shared-memory paths shift a little power between the terms. *)
let energy device c =
  let b = evaluate device c in
  if b.gflops <= 0.0 then None
  else begin
    let peak = Device.peak_gflops device c.precision in
    let compute_util = b.gflops /. peak in
    let es = float_of_int (4 * words_per_element c) in
    let flop_scale =
      match c.arithmetic with
      | Device.Complex -> 4.0
      | Device.Real -> 1.0
    in
    let bytes_per_flop =
      es
      *. ((1.0 /. float_of_int (max 1 c.blk_m))
         +. (1.0 /. float_of_int (max 1 c.blk_n)))
      /. (2.0 *. flop_scale)
    in
    let mem_util =
      Float.min 1.0
        (b.gflops *. bytes_per_flop /. device.Device.mem_bandwidth_gbs)
    in
    let tdp = device.Device.tdp_watts in
    let power_watts =
      (0.25 *. tdp) +. (0.50 *. tdp *. compute_util) +. (0.25 *. tdp *. mem_util)
    in
    let time_per_gflop_ms = 1000.0 /. b.gflops in
    let gflops_per_watt = b.gflops /. power_watts in
    Some
      {
        power_watts;
        time_per_gflop_ms;
        gflops_per_watt;
        energy_per_gflop_j = power_watts /. b.gflops;
      }
  end

let gflops_per_watt device c =
  match energy device c with
  | Some e -> e.gflops_per_watt
  | None -> 0.0

let pp_breakdown ppf b =
  Format.fprintf ppf
    "occ %.2f (eff %.2f) mix %.2f vec %.2f bank %.2f tex %.2f spill %.2f -> compute %.0f GF, memory %.0f GF => %.0f GF"
    b.occupancy b.occupancy_eff b.mix_eff b.vec_eff b.bank_eff b.tex_eff
    b.spill_eff b.compute_gflops b.memory_gflops b.gflops
