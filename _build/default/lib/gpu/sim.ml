type result = {
  cycles : float;
  time_ms : float;
  gflops : float;
  resident_blocks : int;
  stripes : int;
  bound : [ `Compute | `Memory | `Issue | `Latency ];
}

(* Machine constants of the simulated pipeline. *)
let schedulers_per_mp = 4  (* Kepler SMX: 4 warp schedulers *)
let dram_latency_cycles = 400.0
let shared_latency_cycles = 30.0
let shared_bytes_per_cycle = 128.0  (* 32 banks x 4 bytes *)

let simulate ?(matrix_m = 4096) ?(matrix_n = 4096) ?(matrix_k = 4096)
    (device : Device.t) (c : Perf_model.gemm_config) =
  let threads = c.Perf_model.dim_m * c.Perf_model.dim_n in
  if
    threads < 1 || c.Perf_model.blk_m < 1 || c.Perf_model.blk_n < 1
    || c.Perf_model.blk_k < 1
    || c.Perf_model.blk_m mod c.Perf_model.dim_m <> 0
    || c.Perf_model.blk_n mod c.Perf_model.dim_n <> 0
  then None
  else
    let usage =
      {
        Occupancy.threads_per_block = threads;
        regs_per_thread = Perf_model.regs_per_thread c;
        shmem_per_block = Perf_model.shmem_per_block c;
      }
    in
    match Occupancy.calculate device usage with
    | Error _ -> None
    | Ok occ ->
      let b = occ.Occupancy.active_blocks in
      if b = 0 then None
      else begin
        let words = Perf_model.words_per_element c in
        let es = float_of_int (4 * words) in
        let thr_m = c.Perf_model.blk_m / c.Perf_model.dim_m in
        let thr_n = c.Perf_model.blk_n / c.Perf_model.dim_n in
        let warps = float_of_int (occ.Occupancy.active_warps) in
        let fbk = float_of_int c.Perf_model.blk_k in
        (* Per-stripe instruction workload of ONE block. *)
        let flop_scale =
          match c.Perf_model.arithmetic with
          | Device.Complex -> 4.0
          | Device.Real -> 1.0
        in
        (* One FMA instruction per accumulator element per k step; complex
           arithmetic issues four real FMAs per element. *)
        let fmas_per_block =
          float_of_int (thr_m * thr_n * threads) *. fbk *. flop_scale
        in
        let shared_loads_bytes =
          float_of_int (thr_m + thr_n) *. fbk *. float_of_int threads *. es
        in
        let stripe_bytes =
          float_of_int (c.Perf_model.blk_m + c.Perf_model.blk_n) *. fbk *. es
        in
        (* Per-SM sustained rates, in units per cycle. *)
        let clock_hz = float_of_int device.Device.clock_mhz *. 1e6 in
        let fma_rate =
          (* FMA instructions retired per cycle per SM. *)
          float_of_int device.Device.cores_per_multi_processor
          *. (match c.Perf_model.precision with
             | Device.Double -> device.Device.fp64_ratio
             | Device.Single -> 1.0)
        in
        let dram_bytes_per_cycle =
          device.Device.mem_bandwidth_gbs *. 1e9
          /. float_of_int device.Device.n_multi_processors
          /. clock_hz
        in
        (* Kepler's schedulers dual-issue: 4 schedulers x 2 dispatch
           units x one warp-instruction each. *)
        let issue_rate =
          float_of_int (schedulers_per_mp * 2 * device.Device.warp_size)
        in
        let stripes =
          (matrix_k + c.Perf_model.blk_k - 1) / c.Perf_model.blk_k
        in
        (* Walk the k-loop, accumulating cycles per stripe for the B
           resident blocks together. Each phase's duration is its
           throughput cost; exposed latency shrinks with the number of
           warps available to switch to. *)
        let cycles = ref 0.0 in
        let acc_compute = ref 0.0
        and acc_memory = ref 0.0
        and acc_issue = ref 0.0
        and acc_latency = ref 0.0 in
        let fb = float_of_int b in
        for _stripe = 1 to stripes do
          (* Phase 1: fetch the A and B stripes of every resident block
             from DRAM into shared memory. *)
          let mem_cycles = fb *. stripe_bytes /. dram_bytes_per_cycle in
          let fetch_issue =
            fb *. stripe_bytes /. es /. issue_rate
          in
          let exposed_dram = dram_latency_cycles /. max 1.0 warps in
          (* Phase 2: barrier - charged as one scheduling round. *)
          let barrier = float_of_int schedulers_per_mp in
          (* Phase 3: the multiply phase streams shared memory into
             registers and issues FMAs; shared traffic and FMA issue
             overlap, the slower one dominates. *)
          let fma_cycles = fb *. fmas_per_block /. fma_rate in
          let shared_cycles =
            fb *. shared_loads_bytes /. shared_bytes_per_cycle
          in
          let compute_issue = fb *. fmas_per_block /. issue_rate in
          let exposed_shared = shared_latency_cycles /. max 1.0 warps in
          let phase1 = max mem_cycles fetch_issue +. exposed_dram in
          let phase3 =
            max (max fma_cycles shared_cycles) compute_issue +. exposed_shared
          in
          cycles := !cycles +. phase1 +. barrier +. phase3;
          acc_memory := !acc_memory +. mem_cycles;
          acc_compute := !acc_compute +. max fma_cycles shared_cycles;
          acc_issue := !acc_issue +. fetch_issue +. compute_issue;
          acc_latency := !acc_latency +. exposed_dram +. exposed_shared
        done;
        (* The B blocks simulated per SM represent the whole grid: scale
           flops to the full matrix via the grid/(B * n_mp) ratio. *)
        let blocks_total =
          float_of_int
            ((matrix_m + c.Perf_model.blk_m - 1)
            / c.Perf_model.blk_m
            * ((matrix_n + c.Perf_model.blk_n - 1) / c.Perf_model.blk_n))
        in
        let waves =
          blocks_total /. (fb *. float_of_int device.Device.n_multi_processors)
        in
        let total_cycles = !cycles *. max 1.0 waves in
        let time_s = total_cycles /. clock_hz in
        let flops =
          2.0 *. float_of_int matrix_m *. float_of_int matrix_n
          *. float_of_int matrix_k *. flop_scale
        in
        let bound =
          let m =
            max (max !acc_compute !acc_memory) (max !acc_issue !acc_latency)
          in
          if m = !acc_compute then `Compute
          else if m = !acc_memory then `Memory
          else if m = !acc_issue then `Issue
          else `Latency
        in
        Some
          {
            cycles = total_cycles;
            time_ms = time_s *. 1000.0;
            gflops = flops /. time_s /. 1e9;
            resident_blocks = b;
            stripes;
            bound;
          }
      end

let gflops device c =
  match simulate device c with
  | Some r -> r.gflops
  | None -> 0.0
