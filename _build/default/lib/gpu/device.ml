type t = {
  name : string;
  max_threads_per_block : int;
  max_threads_dim_x : int;
  max_threads_dim_y : int;
  max_shared_mem_per_block : int;
  warp_size : int;
  max_regs_per_block : int;
  max_threads_per_multi_processor : int;
  cuda_major : int;
  cuda_minor : int;
  max_registers_per_multi_processor : int;
  max_shmem_per_multi_processor : int;
  float_size : int;
  n_multi_processors : int;
  clock_mhz : int;
  cores_per_multi_processor : int;
  mem_bandwidth_gbs : float;
  fp64_ratio : float;
  tdp_watts : float;
}

type precision =
  | Single
  | Double

type arithmetic =
  | Real
  | Complex

let precision_name = function
  | Single -> "single"
  | Double -> "double"

let arithmetic_name = function
  | Real -> "real"
  | Complex -> "complex"

let element_size t precision arithmetic =
  let s = t.float_size in
  let s =
    match precision with
    | Double -> s * 2
    | Single -> s
  in
  match arithmetic with
  | Complex -> s * 2
  | Real -> s

let peak_gflops t precision =
  let sp =
    2.0
    *. float_of_int (t.n_multi_processors * t.cores_per_multi_processor)
    *. (float_of_int t.clock_mhz /. 1000.0)
  in
  match precision with
  | Single -> sp
  | Double -> sp *. t.fp64_ratio

(* Figure 8, verbatim. *)
let tesla_k40c =
  {
    name = "Tesla K40c";
    max_threads_per_block = 1024;
    max_threads_dim_x = 1024;
    max_threads_dim_y = 1024;
    max_shared_mem_per_block = 49152;
    warp_size = 32;
    max_regs_per_block = 65536;
    max_threads_per_multi_processor = 2048;
    cuda_major = 3;
    cuda_minor = 5;
    max_registers_per_multi_processor = 65536;
    max_shmem_per_multi_processor = 49152;
    float_size = 4;
    n_multi_processors = 15;
    clock_mhz = 745;
    cores_per_multi_processor = 192;
    mem_bandwidth_gbs = 288.0;
    fp64_ratio = 1.0 /. 3.0;
    tdp_watts = 235.0;
  }

let geforce_gtx680 =
  {
    name = "GeForce GTX 680";
    max_threads_per_block = 1024;
    max_threads_dim_x = 1024;
    max_threads_dim_y = 1024;
    max_shared_mem_per_block = 49152;
    warp_size = 32;
    max_regs_per_block = 65536;
    max_threads_per_multi_processor = 2048;
    cuda_major = 3;
    cuda_minor = 0;
    max_registers_per_multi_processor = 65536;
    max_shmem_per_multi_processor = 49152;
    float_size = 4;
    n_multi_processors = 8;
    clock_mhz = 1006;
    cores_per_multi_processor = 192;
    mem_bandwidth_gbs = 192.0;
    fp64_ratio = 1.0 /. 24.0;
    tdp_watts = 195.0;
  }

let tesla_c2050 =
  {
    name = "Tesla C2050";
    max_threads_per_block = 1024;
    max_threads_dim_x = 1024;
    max_threads_dim_y = 1024;
    max_shared_mem_per_block = 49152;
    warp_size = 32;
    max_regs_per_block = 32768;
    max_threads_per_multi_processor = 1536;
    cuda_major = 2;
    cuda_minor = 0;
    max_registers_per_multi_processor = 32768;
    max_shmem_per_multi_processor = 49152;
    float_size = 4;
    n_multi_processors = 14;
    clock_mhz = 1150;
    cores_per_multi_processor = 32;
    mem_bandwidth_gbs = 144.0;
    fp64_ratio = 1.0 /. 2.0;
    tdp_watts = 238.0;
  }

let geforce_gtx750ti =
  {
    name = "GeForce GTX 750 Ti";
    max_threads_per_block = 1024;
    max_threads_dim_x = 1024;
    max_threads_dim_y = 1024;
    max_shared_mem_per_block = 49152;
    warp_size = 32;
    max_regs_per_block = 65536;
    max_threads_per_multi_processor = 2048;
    cuda_major = 5;
    cuda_minor = 0;
    max_registers_per_multi_processor = 65536;
    max_shmem_per_multi_processor = 65536;
    float_size = 4;
    n_multi_processors = 5;
    clock_mhz = 1020;
    cores_per_multi_processor = 128;
    mem_bandwidth_gbs = 86.4;
    fp64_ratio = 1.0 /. 32.0;
    tdp_watts = 60.0;
  }

let presets =
  [
    ("k40c", tesla_k40c);
    ("gtx680", geforce_gtx680);
    ("c2050", tesla_c2050);
    ("gtx750ti", geforce_gtx750ti);
  ]

let find name = List.assoc_opt (String.lowercase_ascii name) presets

let scale ?max_dim ?max_threads t =
  let dim = Option.value max_dim ~default:t.max_threads_dim_x in
  let threads = Option.value max_threads ~default:t.max_threads_per_block in
  {
    t with
    name = Printf.sprintf "%s (scaled %dx%d/%d)" t.name dim dim threads;
    max_threads_dim_x = min dim t.max_threads_dim_x;
    max_threads_dim_y = min dim t.max_threads_dim_y;
    max_threads_per_block = min threads t.max_threads_per_block;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: cc %d.%d, %d MPs x %d cores @ %d MHz, %.0f GB/s, peak %.0f/%.0f GF (sp/dp)"
    t.name t.cuda_major t.cuda_minor t.n_multi_processors
    t.cores_per_multi_processor t.clock_mhz t.mem_bandwidth_gbs
    (peak_gflops t Single) (peak_gflops t Double)
