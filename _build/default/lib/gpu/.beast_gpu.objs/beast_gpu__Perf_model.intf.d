lib/gpu/perf_model.mli: Beast_core Device Format
