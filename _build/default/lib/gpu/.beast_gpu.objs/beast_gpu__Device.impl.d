lib/gpu/device.ml: Format List Option Printf String
