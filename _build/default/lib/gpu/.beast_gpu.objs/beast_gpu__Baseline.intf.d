lib/gpu/baseline.mli: Device
