lib/gpu/sim.mli: Device Perf_model
