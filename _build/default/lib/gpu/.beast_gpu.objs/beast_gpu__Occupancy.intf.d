lib/gpu/occupancy.mli: Device Stdlib
