lib/gpu/capability.ml: Array Device Format
