lib/gpu/occupancy.ml: Capability Device
