lib/gpu/perf_model.ml: Beast_core Capability Device Float Format Occupancy
