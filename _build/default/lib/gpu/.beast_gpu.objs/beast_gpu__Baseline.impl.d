lib/gpu/baseline.ml: Device
