lib/gpu/sim.ml: Device Occupancy Perf_model
