lib/gpu/capability.mli: Device Format
