type error = Unknown_capability of int * int

let pp_error ppf (Unknown_capability (major, minor)) =
  Format.fprintf ppf "unknown compute capability %d.%d" major minor

(* Figure 9, verbatim for majors 0-3; major 5 appended for Maxwell. *)
let max_blocks_table =
  [|
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 8; 8; 8; 8; -1; -1; -1; -1; -1; -1 |];
    [| 8; 8; 8; 8; 8; 8; 8; 8; 8; 8 |];
    [| 16; -1; -1; -1; -1; 16; -1; -1; -1; -1 |];
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 32; -1; 32; -1; -1; -1; -1; -1; -1; -1 |];
  |]

let max_warps_table =
  [|
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 24; 24; 32; 32; -1; -1; -1; -1; -1; -1 |];
    [| 48; 48; 48; 48; 48; 48; 48; 48; 48; 48 |];
    [| 64; -1; -1; -1; -1; 64; -1; -1; -1; -1 |];
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 64; -1; 64; -1; -1; -1; -1; -1; -1; -1 |];
  |]

let max_regs_table =
  [|
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 128; 128; 128; 128; -1; -1; -1; -1; -1; -1 |];
    [| 63; 63; 63; 63; 63; 63; 63; 63; 63; 63 |];
    [| 63; -1; -1; -1; -1; 255; -1; -1; -1; -1 |];
    [| -1; -1; -1; -1; -1; -1; -1; -1; -1; -1 |];
    [| 255; -1; 255; -1; -1; -1; -1; -1; -1; -1 |];
  |]

let lookup_table table ~major ~minor =
  if major < 0 || major >= Array.length table || minor < 0 || minor > 9 then
    Error (Unknown_capability (major, minor))
  else
    let v = table.(major).(minor) in
    if v < 0 then Error (Unknown_capability (major, minor)) else Ok v

let max_blocks_per_multi_processor = lookup_table max_blocks_table
let max_warps_per_multi_processor = lookup_table max_warps_table
let max_registers_per_thread = lookup_table max_regs_table

type caps = {
  max_blocks_per_mp : int;
  max_warps_per_mp : int;
  max_regs_per_thread : int;
}

let lookup (device : Device.t) =
  let major = device.Device.cuda_major and minor = device.Device.cuda_minor in
  match
    ( max_blocks_per_multi_processor ~major ~minor,
      max_warps_per_multi_processor ~major ~minor,
      max_registers_per_thread ~major ~minor )
  with
  | Ok b, Ok w, Ok r ->
    Ok { max_blocks_per_mp = b; max_warps_per_mp = w; max_regs_per_thread = r }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let lookup_exn device =
  match lookup device with
  | Ok caps -> caps
  | Error e -> invalid_arg (Format.asprintf "Capability.lookup: %a" pp_error e)
