(** Analytic GEMM performance model — the stand-in for benchmarking
    kernel variants on physical hardware.

    The paper compiles and times each surviving kernel on the GPU; this
    sealed container has no GPU, so scoring is done by a deterministic
    model combining the classical ingredients of GPU kernel performance
    analysis (occupancy for latency hiding, FMA-to-shared-load ratio for
    issue pressure — the same ratio the paper's [low_fmas] soft
    constraint bounds — a DRAM roofline over the block tile's arithmetic
    intensity, vector-width and bank-configuration effects). The model is
    calibrated so well-tuned DGEMM variants on the K40c preset land
    around 80% of peak, the figure the paper reports in Table I, and so
    the pruning constraints of Figures 13–15 carve away exactly the
    regions where the model collapses.

    Substitution note (DESIGN.md): results preserve {e shape} — which
    configurations win and by roughly what factor — not absolute
    hardware numbers. *)

type gemm_config = {
  precision : Device.precision;
  arithmetic : Device.arithmetic;
  trans_a : bool;
  trans_b : bool;
  (* the 15 search dimensions of Figure 11 *)
  dim_m : int;
  dim_n : int;
  blk_m : int;
  blk_n : int;
  blk_k : int;
  dim_vec : int;
  vec_mul : int;
  dim_m_a : int;
  dim_n_a : int;
  dim_m_b : int;
  dim_n_b : int;
  tex_a : int;
  tex_b : int;
  shmem_l1 : int;
  shmem_banks : int;
}

val config_of_lookup :
  precision:Device.precision ->
  arithmetic:Device.arithmetic ->
  trans_a:bool ->
  trans_b:bool ->
  Beast_core.Expr.lookup ->
  gemm_config
(** Decode a surviving point of the GEMM search space (iterator names as
    in Figure 11) into a configuration. *)

type breakdown = {
  occupancy : float;
  occupancy_eff : float;
  mix_eff : float;  (** from the FMA-per-shared-load ratio *)
  vec_eff : float;
  bank_eff : float;
  tex_eff : float;
  spill_eff : float;
  compute_gflops : float;  (** peak x product of efficiencies *)
  memory_gflops : float;  (** DRAM roofline at this tile's intensity *)
  gflops : float;  (** min of the two, 0 if infeasible *)
}

val evaluate : Device.t -> gemm_config -> breakdown
(** Deterministic; infeasible configurations (occupancy calculator
    rejects) score 0 rather than raising, so the model can be used as a
    tuner objective directly. *)

val gflops : Device.t -> gemm_config -> float
(** [ (evaluate d c).gflops ]. *)

val words_per_element : gemm_config -> int
(** 32-bit words per matrix element (1, 2 or 4). *)

val regs_per_thread : gemm_config -> int
(** The paper's Figure 12 register demand for the C accumulator plus a
    fixed overhead for indices and staging (the compiler's true usage is
    "up to the compiler", as Section IX-E notes). *)

val shmem_per_block : gemm_config -> int
(** Figure 12: blk_k * (blk_m + blk_n) * element size. *)

val pp_breakdown : Format.formatter -> breakdown -> unit

(** {1 Energy model}

    The paper's reference [4] used BEAST to tune GEMM "for energy
    minimization" and to study the performance/energy trade-off with two
    objective functions at once. This model reproduces that experiment's
    structure: board power is an idle floor plus dynamic terms that scale
    with compute-unit and memory utilization, so the fastest kernel is
    not automatically the most efficient one. *)

type energy = {
  power_watts : float;
  time_per_gflop_ms : float;
  gflops_per_watt : float;
  energy_per_gflop_j : float;
}

val energy : Device.t -> gemm_config -> energy option
(** [None] for infeasible configurations (score-0 in {!evaluate}). *)

val gflops_per_watt : Device.t -> gemm_config -> float
(** Energy-efficiency objective; 0 for infeasible configurations. *)
