(** The occupancy calculator.

    Section II presents GPU occupancy as the flagship example of a
    {e derived} pruning constraint: "a function of multiple variables,
    including: the number of threads in a block, the number of registers
    required by each thread and the amount of shared memory required by
    each block. Occupancy threshold is a very effective and safe pruning
    constraint". This module is that automated occupancy calculator. *)

type usage = {
  threads_per_block : int;
  regs_per_thread : int;
  shmem_per_block : int;  (** bytes *)
}

type infeasible =
  | Too_many_threads  (** threads_per_block > device limit *)
  | Too_many_regs_per_thread
  | Too_many_regs_per_block
  | Too_much_shmem
  | Empty_block  (** threads_per_block < 1 *)

val infeasible_name : infeasible -> string

type result = {
  warps_per_block : int;
  blocks_by_warps : int;
  blocks_by_regs : int;
  blocks_by_shmem : int;
  blocks_hw_limit : int;
  active_blocks : int;  (** min of the four limits *)
  active_warps : int;
  active_threads : int;
  occupancy : float;  (** active warps / max warps per multiprocessor *)
}

val limiting_factor : result -> string
(** Which of the four limits bounds [active_blocks] ("warps",
    "registers", "shared-memory" or "hardware"). *)

val calculate : Device.t -> usage -> (result, infeasible) Stdlib.result
(** Mirrors the paper's derived variables
    [max_blocks_by_regs]/[max_blocks_by_shmem] (Figure 12) plus the warp
    and hardware block limits of the capability tables. Zero register or
    shared-memory usage never limits. *)

val calculate_exn : Device.t -> usage -> result
