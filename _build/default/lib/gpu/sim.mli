(** A coarse discrete simulator of one streaming multiprocessor executing
    a GEMM thread block population — the second, independent estimator of
    kernel performance next to the closed-form {!Perf_model}.

    Where {!Perf_model} multiplies efficiency factors, this module
    actually walks the kernel's execution: for every [blk_k]-stripe of
    the k-loop it schedules the resident blocks' warps through three
    phases (global stripe fetch, barrier, multiply-accumulate from shared
    memory), charging issue slots, FMA-unit throughput, shared-memory
    bandwidth and DRAM bandwidth, and carrying latency that only
    simultaneous warps can hide. Disagreement between the two estimators
    on a configuration is a signal the analytic shortcut missed
    something — the examples print both.

    Like everything in this library, it is a deterministic substitute for
    the physical K40c the paper benchmarks on. *)

type result = {
  cycles : float;  (** per multiprocessor, for the whole k extent *)
  time_ms : float;
  gflops : float;
  resident_blocks : int;
  stripes : int;  (** k-loop trip count actually simulated *)
  bound : [ `Compute | `Memory | `Issue | `Latency ];
      (** which resource dominated the accumulated cycles *)
}

val simulate :
  ?matrix_m:int ->
  ?matrix_n:int ->
  ?matrix_k:int ->
  Device.t ->
  Perf_model.gemm_config ->
  result option
(** Simulate C(m,n) += A(m,k) B(k,n) (defaults 4096³). [None] when the
    configuration cannot launch (occupancy calculator rejects). *)

val gflops : Device.t -> Perf_model.gemm_config -> float
(** Convenience: simulated GFLOP/s, 0 for infeasible configurations. *)
