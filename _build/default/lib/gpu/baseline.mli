(** Deterministic stand-in for the closed-source comparators.

    The paper measures improvements against NVIDIA's cuBLAS, whose
    Kepler-era kernels "use assembly instructions and binary codes not
    available to a regular user" (Section IV) — unobtainable here both
    legally and physically. This module models its behaviour at the
    granularity Table I needs:

    - large square GEMM runs at a solid but sub-tuned fraction of peak;
    - batched factorizations of {e very small} matrices are crushed by
      per-matrix launch overhead and idle SMs (the regime where the
      paper's reference [5] reports 3x-10x BEAST wins);
    - medium batched sizes recover partially (the up-to-3x regime of
      references [34]-[36]). *)

val gemm_gflops :
  Device.t -> Device.precision -> Device.arithmetic -> n:int -> float
(** cuBLAS-model GEMM throughput for square size [n]. *)

val gemm_fraction_of_peak :
  Device.t -> Device.precision -> Device.arithmetic -> n:int -> float

val batched_cholesky_gflops :
  Device.t -> Device.precision -> n:int -> batch:int -> float
(** cuBLAS-style loop-over-[potrf] model: per-matrix kernel launches, one
    matrix per block, no batching fusion. *)

val batched_trsm_gflops :
  Device.t -> Device.precision -> n:int -> nrhs:int -> batch:int -> float

val launch_overhead_us : float
(** Kernel launch latency charged per matrix by the batched baselines. *)
