type usage = {
  threads_per_block : int;
  regs_per_thread : int;
  shmem_per_block : int;
}

type infeasible =
  | Too_many_threads
  | Too_many_regs_per_thread
  | Too_many_regs_per_block
  | Too_much_shmem
  | Empty_block

let infeasible_name = function
  | Too_many_threads -> "too many threads per block"
  | Too_many_regs_per_thread -> "too many registers per thread"
  | Too_many_regs_per_block -> "too many registers per block"
  | Too_much_shmem -> "too much shared memory per block"
  | Empty_block -> "empty block"

type result = {
  warps_per_block : int;
  blocks_by_warps : int;
  blocks_by_regs : int;
  blocks_by_shmem : int;
  blocks_hw_limit : int;
  active_blocks : int;
  active_warps : int;
  active_threads : int;
  occupancy : float;
}

let limiting_factor r =
  if r.active_blocks = r.blocks_hw_limit then "hardware"
  else if r.active_blocks = r.blocks_by_warps then "warps"
  else if r.active_blocks = r.blocks_by_regs then "registers"
  else "shared-memory"

let calculate (device : Device.t) usage =
  let caps = Capability.lookup_exn device in
  let open Device in
  if usage.threads_per_block < 1 then Error Empty_block
  else if usage.threads_per_block > device.max_threads_per_block then
    Error Too_many_threads
  else if usage.regs_per_thread > caps.Capability.max_regs_per_thread then
    Error Too_many_regs_per_thread
  else if
    usage.regs_per_thread * usage.threads_per_block > device.max_regs_per_block
  then Error Too_many_regs_per_block
  else if usage.shmem_per_block > device.max_shared_mem_per_block then
    Error Too_much_shmem
  else begin
    let warps_per_block =
      (usage.threads_per_block + device.warp_size - 1) / device.warp_size
    in
    let blocks_by_warps = caps.Capability.max_warps_per_mp / warps_per_block in
    let regs_per_block = usage.regs_per_thread * usage.threads_per_block in
    let blocks_by_regs =
      if regs_per_block = 0 then caps.Capability.max_blocks_per_mp
      else device.max_registers_per_multi_processor / regs_per_block
    in
    let blocks_by_shmem =
      if usage.shmem_per_block = 0 then caps.Capability.max_blocks_per_mp
      else device.max_shmem_per_multi_processor / usage.shmem_per_block
    in
    let blocks_hw_limit = caps.Capability.max_blocks_per_mp in
    let active_blocks =
      min (min blocks_by_warps blocks_by_regs) (min blocks_by_shmem blocks_hw_limit)
    in
    let active_warps = active_blocks * warps_per_block in
    let active_threads =
      min
        (active_blocks * usage.threads_per_block)
        device.max_threads_per_multi_processor
    in
    Ok
      {
        warps_per_block;
        blocks_by_warps;
        blocks_by_regs;
        blocks_by_shmem;
        blocks_hw_limit;
        active_blocks;
        active_warps;
        active_threads;
        occupancy =
          float_of_int active_warps /. float_of_int caps.Capability.max_warps_per_mp;
      }
  end

let calculate_exn device usage =
  match calculate device usage with
  | Ok r -> r
  | Error e -> invalid_arg ("Occupancy.calculate: " ^ infeasible_name e)
