(** GPU device model.

    The queryable half of this record is exactly the
    [cudaGetDeviceProperties] output the paper lists in Figure 8 (values
    shown there for a Tesla K40c). The performance half (multiprocessor
    count, clock, core counts, bandwidth) is the substrate our simulator
    uses in place of real hardware — the paper benchmarks kernels on the
    physical card; we substitute a deterministic device model
    (DESIGN.md, substitution table). *)

type t = {
  name : string;
  (* ---- Figure 8: device-query parameters ---- *)
  max_threads_per_block : int;
  max_threads_dim_x : int;
  max_threads_dim_y : int;
  max_shared_mem_per_block : int;
  warp_size : int;
  max_regs_per_block : int;
  max_threads_per_multi_processor : int;
  cuda_major : int;
  cuda_minor : int;
  max_registers_per_multi_processor : int;
  max_shmem_per_multi_processor : int;
  float_size : int;
  (* ---- performance substrate (beyond the device query) ---- *)
  n_multi_processors : int;
  clock_mhz : int;
  cores_per_multi_processor : int;
  mem_bandwidth_gbs : float;
  fp64_ratio : float;  (** double-precision throughput / single *)
  tdp_watts : float;
      (** board power limit, used by the energy model that reproduces the
          energy-tuning study of the paper's reference [4] *)
}

type precision =
  | Single
  | Double

type arithmetic =
  | Real
  | Complex

val precision_name : precision -> string
val arithmetic_name : arithmetic -> string

val element_size : t -> precision -> arithmetic -> int
(** Bytes per matrix element: [float_size], doubled per Figure 12's
    "if precision == double" / "if arithmetic == complex" rules. *)

val peak_gflops : t -> precision -> float
(** 2 (FMA) x cores x clock, scaled by [fp64_ratio] for {!Double}. *)

(** {1 Presets} *)

val tesla_k40c : t
(** The paper's device: every Figure 8 value verbatim. *)

val geforce_gtx680 : t
(** The first Kepler consumer card, tuned in the paper's reference [3]. *)

val tesla_c2050 : t
(** Fermi, the architecture of references [1], [2]. *)

val geforce_gtx750ti : t
(** Maxwell, mentioned in Figure 2's architecture dispatch. *)

val presets : (string * t) list
val find : string -> t option

val scale : ?max_dim:int -> ?max_threads:int -> t -> t
(** A reduced copy for tractable sweeps: caps the thread-grid dimensions
    at [max_dim] and threads per block at [max_threads], leaving the
    performance substrate untouched. Used by the benches so the full
    15-dimensional GEMM space fits in a bench run (the paper's full K40c
    sweep took 264 s of generated C; see EXPERIMENTS.md). *)

val pp : Format.formatter -> t -> unit
