(** Compute-capability tables — the device information that cannot be
    queried at runtime and must come from NVIDIA documentation, indexed
    by the major and minor numbers of the compute capability. The three
    tables of Figure 9 are reproduced verbatim for majors 0–3; the
    major-5 (Maxwell) row is an extension beyond the figure, filled from
    the CUDA programming guide, so the Maxwell preset of {!Device} works
    end-to-end. *)

type error = Unknown_capability of int * int

val pp_error : Format.formatter -> error -> unit

val max_blocks_per_multi_processor : major:int -> minor:int -> (int, error) result
val max_warps_per_multi_processor : major:int -> minor:int -> (int, error) result
val max_registers_per_thread : major:int -> minor:int -> (int, error) result

type caps = {
  max_blocks_per_mp : int;
  max_warps_per_mp : int;
  max_regs_per_thread : int;
}

val lookup : Device.t -> (caps, error) result
(** All three tables at the device's compute capability — the paper's
    Figure 9 lookup sequence. *)

val lookup_exn : Device.t -> caps
(** @raise Invalid_argument on an unknown capability. *)
