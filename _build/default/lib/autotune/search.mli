(** Statistical search over a pruned space — the paper's announced future
    work ("the plan is to incorporate statistical search methods to
    address the multidimensional search space growth", Section XII),
    implemented here as an extension.

    Instead of enumerating every surviving point, these methods draw
    candidate points directly through the loop-nest plan: outer
    dimensions are sampled first so that dependent iterator ranges and
    hoisted constraints apply exactly as in a full sweep — a sample is
    drawn from the {e pruned} space, never from the raw cross product. *)

open Beast_core

type candidate = {
  score : float;
  slots : int array;
  bindings : (string * Value.t) list;  (** iterators, in loop order *)
}

val sample :
  ?rng:Random.State.t -> ?max_tries:int -> Plan.t -> int array option
(** One random draw of a surviving point, by randomized backtracking
    DFS through the nest: loop values are visited in random order and
    hoisted constraints cut partial assignments, so even spaces whose
    survivors are ~1 in 10⁶ of the raw cross product (GEMM's exact
    reshape constraints) sample in microseconds. The draw is {e not}
    uniform over survivors — sparse subtrees are over-represented —
    which is fine for the heuristics below. [None] once a node budget
    derived from [max_tries] (default 1000) is exhausted. The returned
    array is the slot vector, iterators and derived variables filled. *)

val random_search :
  ?rng:Random.State.t ->
  ?max_tries:int ->
  budget:int ->
  objective:(Expr.lookup -> float) ->
  Plan.t ->
  candidate option
(** Best of [budget] valid samples. *)

val hill_climb :
  ?rng:Random.State.t ->
  ?restarts:int ->
  ?steps:int ->
  objective:(Expr.lookup -> float) ->
  Plan.t ->
  candidate option
(** Stochastic hill climbing: start from a random sample; repeatedly
    nudge one loop dimension to a neighbouring value of its (dependent)
    range, re-clamping the inner dimensions and re-checking every
    constraint; accept improvements. [restarts] (default 5) independent
    climbs of at most [steps] (default 200) accepted or rejected moves
    each; returns the best point seen. *)

val evaluations : unit -> int
(** Number of objective evaluations since the last {!reset_counters} —
    lets examples compare search cost against exhaustive sweeps. *)

val reset_counters : unit -> unit
