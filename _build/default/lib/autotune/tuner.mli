(** The autotuning pipeline of Section I: "the variants that pass the
    pruning process are compiled, run and benchmarked, and the best
    performers are identified". Enumeration and pruning run through the
    engines of {!Beast_core}; benchmarking is the caller's objective
    function (for GPU kernels, the {!Beast_gpu} performance model or
    simulator standing in for the physical card). *)

open Beast_core

type candidate = {
  score : float;
  bindings : (string * Value.t) list;  (** iterators, in loop order *)
}

type result = {
  best : candidate option;
  top : candidate list;  (** best-first, at most [top_n] *)
  evaluated : int;  (** survivors benchmarked *)
  stats : Engine.stats;  (** enumeration/pruning statistics *)
  elapsed_s : float;
}

val tune :
  ?engine:Sweep.engine ->
  ?top_n:int ->
  objective:(Expr.lookup -> float) ->
  Space.t ->
  result
(** Sweep the space, score every survivor, keep the [top_n] (default 10)
    best. The objective must be pure; with [Parallel _] engines it is
    called concurrently. @raise Plan.Error if the space does not plan. *)

val improvement : result -> baseline:float -> float option
(** best score / baseline, the "Improvement" column of Table I. *)

val pp_result : ?peak:float -> Format.formatter -> result -> unit
(** Human-readable report; [peak] adds a %-of-peak column (Table I's
    GEMM row reports "80% of peak"). *)

(** {1 Multi-objective tuning}

    The paper's reference [4] explored performance/energy trade-offs —
    "two objective functions at once". [pareto] sweeps once, scores every
    survivor under both objectives and keeps the non-dominated front. *)

type bi_candidate = {
  bi_scores : float * float;
  bi_bindings : (string * Value.t) list;
}

val pareto :
  ?engine:Sweep.engine ->
  ?max_front:int ->
  objectives:(Expr.lookup -> float) * (Expr.lookup -> float) ->
  Space.t ->
  bi_candidate list
(** The Pareto-optimal survivors, sorted by descending first objective.
    Both objectives are maximized. [max_front] (default 64) caps the
    retained front size (the extremes are always kept). *)
