lib/autotune/search.ml: Array Beast_core Expr List Plan Random Value
