lib/autotune/search.mli: Beast_core Expr Plan Random Value
