lib/autotune/tuner.ml: Array Beast_core Engine Format List Mutex Plan Sweep Unix Value
