lib/autotune/tuner.mli: Beast_core Engine Expr Format Space Sweep Value
