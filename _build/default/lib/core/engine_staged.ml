(* Staging: every expression is compiled once into a [unit -> int] closure
   reading the shared slot array; the step list is compiled into a single
   [unit -> unit] continuation chain. After compilation the sweep runs
   without looking at the plan again. *)

let run ?on_hit (plan : Plan.t) =
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  let rec compile_cexpr (e : Plan.cexpr) : unit -> int =
    match e with
    | CLit k -> fun () -> k
    | CSlot i -> fun () -> slots.(i)
    | CUn (Neg, a) ->
      let fa = compile_cexpr a in
      fun () -> -fa ()
    | CUn (Not, a) ->
      let fa = compile_cexpr a in
      fun () -> if fa () = 0 then 1 else 0
    | CBin (And, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () = 0 then 0 else if fb () = 0 then 0 else 1
    | CBin (Or, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <> 0 then 1 else if fb () <> 0 then 1 else 0
    | CBin (Add, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () + fb ()
    | CBin (Sub, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () - fb ()
    | CBin (Mul, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () * fb ()
    | CBin (Div, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () / fb ()
    | CBin (Mod, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () mod fb ()
    | CBin (Eq, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () = fb () then 1 else 0
    | CBin (Ne, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <> fb () then 1 else 0
    | CBin (Lt, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () < fb () then 1 else 0
    | CBin (Le, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <= fb () then 1 else 0
    | CBin (Gt, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () > fb () then 1 else 0
    | CBin (Ge, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () >= fb () then 1 else 0
    | CIf (c, t, f) ->
      let fc = compile_cexpr c and ft = compile_cexpr t and ff = compile_cexpr f in
      fun () -> if fc () <> 0 then ft () else ff ()
    | CCall (Min, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> min (fa ()) (fb ())
    | CCall (Max, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> max (fa ()) (fb ())
    | CCall (Abs, [ a ]) ->
      let fa = compile_cexpr a in
      fun () -> abs (fa ())
    | CCall (Ceil_div, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () ->
        let d = fb () in
        (fa () + d - 1) / d
    | CCall _ -> invalid_arg "Engine_staged: malformed builtin call"
  in
  let compile_compute = function
    | Plan.CE e -> compile_cexpr e
    | Plan.CF f -> fun () -> f slots
  in
  let hit =
    match on_hit with
    | None -> fun () -> incr survivors
    | Some f ->
      let lookup = Plan.lookup_of_slots plan slots in
      fun () ->
        incr survivors;
        f lookup
  in
  let rec compile_steps (steps : Plan.step list) : unit -> unit =
    match steps with
    | [] -> fun () -> ()
    | Yield :: rest ->
      let k = compile_steps rest in
      fun () ->
        hit ();
        k ()
    | Derive { d_slot; d_compute; _ } :: rest ->
      let f = compile_compute d_compute in
      let k = compile_steps rest in
      fun () ->
        slots.(d_slot) <- f ();
        k ()
    | Check { c_index; c_compute; _ } :: rest ->
      let f = compile_compute c_compute in
      let k = compile_steps rest in
      fun () ->
        if f () <> 0 then pruned.(c_index) <- pruned.(c_index) + 1 else k ()
    | Loop { l_var; l_slot; l_iter; l_body; _ } :: rest -> (
      let body = compile_steps l_body in
      let k = compile_steps rest in
      match l_iter with
      | CRange (a, b, c) ->
        let fa = compile_cexpr a and fb = compile_cexpr b and fc = compile_cexpr c in
        fun () ->
          let stop = fb () and step = fc () in
          if step = 0 then
            raise (Expr.Eval_error (Printf.sprintf "%s: zero range step" l_var));
          let i = ref (fa ()) in
          if step > 0 then
            while !i < stop do
              slots.(l_slot) <- !i;
              incr loop_iterations;
              body ();
              i := !i + step
            done
          else
            while !i > stop do
              slots.(l_slot) <- !i;
              incr loop_iterations;
              body ();
              i := !i + step
            done;
          k ()
      | CValues vs ->
        fun () ->
          for j = 0 to Array.length vs - 1 do
            slots.(l_slot) <- vs.(j);
            incr loop_iterations;
            body ()
          done;
          k ()
      | CDyn materialize ->
        fun () ->
          let vs = materialize slots in
          for j = 0 to Array.length vs - 1 do
            slots.(l_slot) <- vs.(j);
            incr loop_iterations;
            body ()
          done;
          k ())
  in
  let sweep = compile_steps plan.Plan.steps in
  sweep ();
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi
        (fun i (n, c) -> (n, c, pruned.(i)))
        plan.Plan.constraint_info;
  }

let run_space ?on_hit space = run ?on_hit (Plan.make_exn space)
