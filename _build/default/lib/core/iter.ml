type gen = {
  gen_deps : string list;
  generate : Expr.lookup -> Value.t Seq.t;
}

type t =
  | Range of Expr.t * Expr.t * Expr.t
  | Values of Value.t list
  | Closure of gen
  | Union of t * t
  | Inter of t * t
  | Concat of t * t
  | Map of (Value.t -> Value.t) * t
  | Filter of (Value.t -> bool) * t

let range ?(step = Expr.int 1) start stop = Range (start, stop, step)
let range_i ?(step = 1) start stop =
  Range (Expr.int start, Expr.int stop, Expr.int step)

let upto stop = range (Expr.int 0) stop
let values vs = Values vs
let ints is = Values (List.map Value.int is)
let single e = Range (e, Expr.Infix.( +: ) e (Expr.int 1), Expr.int 1)

let closure ~deps generate = Closure { gen_deps = deps; generate }

let of_list_fn ~deps f =
  Closure { gen_deps = deps; generate = (fun env -> List.to_seq (f env)) }

let union a b = Union (a, b)
let inter a b = Inter (a, b)
let concat a b = Concat (a, b)
let map f it = Map (f, it)
let filter p it = Filter (p, it)

module Sset = Set.Make (String)

let deps it =
  let rec go acc = function
    | Range (a, b, c) ->
      List.fold_left
        (fun acc e -> List.fold_left (fun acc x -> Sset.add x acc) acc (Expr.free_vars e))
        acc [ a; b; c ]
    | Values _ -> acc
    | Closure g -> List.fold_left (fun acc x -> Sset.add x acc) acc g.gen_deps
    | Union (x, y) | Inter (x, y) | Concat (x, y) -> go (go acc x) y
    | Map (_, x) | Filter (_, x) -> go acc x
  in
  Sset.elements (go Sset.empty it)

let is_static it = deps it = []

let range_values env start stop step =
  let s = Value.to_int (Expr.eval env start)
  and e = Value.to_int (Expr.eval env stop)
  and d = Value.to_int (Expr.eval env step) in
  if d = 0 then raise (Expr.Eval_error "range: zero step");
  let n = if d > 0 then max 0 ((e - s + d - 1) / d) else max 0 ((s - e + -d - 1) / -d) in
  Array.init n (fun i -> Value.Int (s + (i * d)))

let sort_dedup arr =
  let l = Array.to_list arr in
  let l = List.sort_uniq Value.compare l in
  Array.of_list l

let rec materialize env it =
  match it with
  | Range (a, b, c) -> range_values env a b c
  | Values vs -> Array.of_list vs
  | Closure g -> Array.of_seq (g.generate env)
  | Union (x, y) ->
    sort_dedup (Array.append (materialize env x) (materialize env y))
  | Inter (x, y) ->
    let ys = materialize env y in
    let member v = Array.exists (fun w -> Value.equal v w) ys in
    sort_dedup
      (Array.of_list (List.filter member (Array.to_list (materialize env x))))
  | Concat (x, y) -> Array.append (materialize env x) (materialize env y)
  | Map (f, x) -> Array.map f (materialize env x)
  | Filter (p, x) ->
    Array.of_list (List.filter p (Array.to_list (materialize env x)))

let cardinality env it =
  match it with
  | Range (a, b, c) ->
    let s = Value.to_int (Expr.eval env a)
    and e = Value.to_int (Expr.eval env b)
    and d = Value.to_int (Expr.eval env c) in
    if d = 0 then raise (Expr.Eval_error "range: zero step");
    if d > 0 then max 0 ((e - s + d - 1) / d) else max 0 ((s - e + -d - 1) / -d)
  | Values vs -> List.length vs
  | _ -> Array.length (materialize env it)

let rec pp ppf = function
  | Range (a, b, c) ->
    Format.fprintf ppf "range(%a, %a, %a)" Expr.pp a Expr.pp b Expr.pp c
  | Values vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Value.pp)
      vs
  | Closure g ->
    Format.fprintf ppf "<closure deps=[%s]>" (String.concat ", " g.gen_deps)
  | Union (x, y) -> Format.fprintf ppf "(%a | %a)" pp x pp y
  | Inter (x, y) -> Format.fprintf ppf "(%a & %a)" pp x pp y
  | Concat (x, y) -> Format.fprintf ppf "(%a ++ %a)" pp x pp y
  | Map (_, x) -> Format.fprintf ppf "map(_, %a)" pp x
  | Filter (_, x) -> Format.fprintf ppf "filter(_, %a)" pp x
