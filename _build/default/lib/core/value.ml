type t =
  | Int of int
  | Bool of bool
  | Float of float
  | Str of string

exception Type_error of string

let to_string = function
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | Float f -> string_of_float f
  | Str s -> Printf.sprintf "%S" s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let type_error op v =
  raise (Type_error (Printf.sprintf "%s: unsupported operand %s" op (to_string v)))

let type_error2 op a b =
  raise
    (Type_error
       (Printf.sprintf "%s: unsupported operands %s and %s" op (to_string a)
          (to_string b)))

let int i = Int i
let bool b = Bool b
let float f = Float f
let str s = Str s

let to_int = function
  | Int i -> i
  | Bool true -> 1
  | Bool false -> 0
  | (Float _ | Str _) as v -> type_error "to_int" v

let to_float = function
  | Int i -> float_of_int i
  | Bool true -> 1.
  | Bool false -> 0.
  | Float f -> f
  | Str _ as v -> type_error "to_float" v

let truthy = function
  | Int i -> i <> 0
  | Bool b -> b
  | Float f -> f <> 0.
  | Str s -> s <> ""

(* Numeric operations promote to float as soon as one operand is a float;
   booleans participate as 0/1, mirroring Python. *)
let num_op name int_op float_op a b =
  match a, b with
  | (Int _ | Bool _), (Int _ | Bool _) -> Int (int_op (to_int a) (to_int b))
  | (Int _ | Bool _ | Float _), (Int _ | Bool _ | Float _) ->
    Float (float_op (to_float a) (to_float b))
  | _ -> type_error2 name a b

let add = num_op "add" ( + ) ( +. )
let sub = num_op "sub" ( - ) ( -. )
let mul = num_op "mul" ( * ) ( *. )

let div a b =
  match a, b with
  | (Int _ | Bool _), (Int _ | Bool _) ->
    let d = to_int b in
    if d = 0 then raise Division_by_zero else Int (to_int a / d)
  | (Int _ | Bool _ | Float _), (Int _ | Bool _ | Float _) ->
    let d = to_float b in
    if d = 0. then raise Division_by_zero else Float (to_float a /. d)
  | _ -> type_error2 "div" a b

let rem a b =
  match a, b with
  | (Int _ | Bool _), (Int _ | Bool _) ->
    let d = to_int b in
    if d = 0 then raise Division_by_zero else Int (to_int a mod d)
  | (Int _ | Bool _ | Float _), (Int _ | Bool _ | Float _) ->
    let d = to_float b in
    if d = 0. then raise Division_by_zero
    else Float (Float.rem (to_float a) d)
  | _ -> type_error2 "rem" a b

let ceil_div a b =
  match a, b with
  | (Int _ | Bool _), (Int _ | Bool _) ->
    let n = to_int a and d = to_int b in
    if d = 0 then raise Division_by_zero
    else Int ((n + d - 1) / d)
  | _ -> type_error2 "ceil_div" a b

let neg = function
  | Int i -> Int (-i)
  | Bool b -> Int (if b then -1 else 0)
  | Float f -> Float (-.f)
  | Str _ as v -> type_error "neg" v

let compare a b =
  match a, b with
  | Str x, Str y -> String.compare x y
  | Str _, _ | _, Str _ -> type_error2 "compare" a b
  | (Int _ | Bool _), (Int _ | Bool _) -> Int.compare (to_int a) (to_int b)
  | _ -> Float.compare (to_float a) (to_float b)

let equal a b =
  match a, b with
  | Str x, Str y -> String.equal x y
  | Str _, _ | _, Str _ -> false
  | _ -> compare a b = 0

let hash = function
  | Str s -> Hashtbl.hash s
  | Float f when Float.is_integer f -> Hashtbl.hash (int_of_float f)
  | Float f -> Hashtbl.hash f
  | v -> Hashtbl.hash (to_int v)

let min2 a b = if compare a b <= 0 then a else b
let max2 a b = if compare a b >= 0 then a else b

let abs_v = function
  | Int i -> Int (abs i)
  | Bool b -> Int (to_int (Bool b))
  | Float f -> Float (Float.abs f)
  | Str _ as v -> type_error "abs" v

let not_v v = Bool (not (truthy v))
let lt a b = Bool (compare a b < 0)
let le a b = Bool (compare a b <= 0)
let gt a b = Bool (compare a b > 0)
let ge a b = Bool (compare a b >= 0)
let eq a b = Bool (equal a b)
let ne a b = Bool (not (equal a b))
