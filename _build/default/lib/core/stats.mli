(** Pruning statistics and funnel reports.

    Section VI observes that constraints prune the space "sometimes by as
    much as 99%"; this module turns engine statistics into the funnel the
    paper's visualization work (reference [7], VISSOFT'14) renders: how
    many candidate points each constraint removed and what fraction of
    the unconstrained space survives. *)

type row = {
  constraint_name : string;
  constraint_class : Space.constraint_class;
  fired : int;  (** times the constraint rejected (subtree abandoned) *)
  removed : int option;
      (** full points removed by those firings; [None] when the funnel
          was built from a single sweep and exact attribution is
          unavailable *)
}

type funnel = {
  space : string;
  total_points : int;  (** cardinality of the unconstrained space *)
  survivors : int;
  rows : row list;  (** in evaluation order *)
}

val survival_rate : funnel -> float
(** survivors / total_points (1.0 for an empty space). *)

val pruned_fraction : funnel -> float
(** 1 - {!survival_rate}: the paper's "as much as 99%". *)

val funnel :
  ?engine:(Plan.t -> Engine.stats) ->
  Space.t ->
  funnel
(** [funnel space] measures the funnel exactly by running one sweep per
    prefix of the constraint set (constraints in evaluation order, each
    run adding one more) with the given engine (default
    {!Engine_staged.run}): the drop in survivors between consecutive runs
    is the number of points each constraint removes. Cost: [n+1] sweeps
    over the {e unconstrained} space — use scaled-down spaces.
    @raise Plan.Error if the space does not plan. *)

val of_stats : Space.t -> Engine.stats -> total_points:int -> funnel
(** Cheap single-sweep variant: rows carry firing counts only
    ([removed = None]). [total_points] must be supplied by the caller
    (e.g. from {!Sweep.cardinality}). *)

val to_csv : funnel -> string
val pp : Format.formatter -> funnel -> unit
