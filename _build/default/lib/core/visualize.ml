(* Radial pruning chart: ring i (from the centre) shows the state of the
   space after constraint i has been applied. The coloured arc is the
   fraction of the original space still alive; the grey remainder has
   been pruned. *)

let pi = 4.0 *. atan 1.0

let class_color = function
  | Space.Hard -> "#c0392b"
  | Space.Soft -> "#e67e22"
  | Space.Correctness -> "#8e44ad"

let arc_path cx cy r0 r1 frac =
  (* Annular sector from angle -90deg spanning frac*360deg. *)
  if frac >= 0.999999 then
    (* Full ring: two half-circle arcs to avoid degenerate sweep flags. *)
    Printf.sprintf
      "M %f %f A %f %f 0 1 1 %f %f A %f %f 0 1 1 %f %f M %f %f A %f %f 0 1 0 %f %f A %f %f 0 1 0 %f %f Z"
      cx (cy -. r1) r1 r1 cx (cy +. r1) r1 r1 cx (cy -. r1) cx (cy -. r0) r0 r0
      cx (cy +. r0) r0 r0 cx (cy -. r0)
  else
    let a0 = -.pi /. 2.0 in
    let a1 = a0 +. (2.0 *. pi *. frac) in
    let large = if frac > 0.5 then 1 else 0 in
    let x0 = cx +. (r1 *. cos a0) and y0 = cy +. (r1 *. sin a0) in
    let x1 = cx +. (r1 *. cos a1) and y1 = cy +. (r1 *. sin a1) in
    let x2 = cx +. (r0 *. cos a1) and y2 = cy +. (r0 *. sin a1) in
    let x3 = cx +. (r0 *. cos a0) and y3 = cy +. (r0 *. sin a0) in
    Printf.sprintf "M %f %f A %f %f 0 %d 1 %f %f L %f %f A %f %f 0 %d 0 %f %f Z"
      x0 y0 r1 r1 large x1 y1 x2 y2 r0 r0 large x3 y3

let svg ?(size = 480) (f : Stats.funnel) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = List.length f.Stats.rows in
  let c = float_of_int size /. 2.0 in
  let r_inner = 0.12 *. c in
  let r_outer = 0.95 *. c in
  let ring_w = if n = 0 then 0.0 else (r_outer -. r_inner) /. float_of_int n in
  add "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n"
    size size;
  add "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" size size;
  add "<title>pruning funnel: %s</title>\n" f.Stats.space;
  (* Centre disc: the unconstrained space. *)
  add "<circle cx=\"%f\" cy=\"%f\" r=\"%f\" fill=\"#2980b9\"/>\n" c c r_inner;
  let total = max 1 f.Stats.total_points in
  let alive = ref (float_of_int f.Stats.total_points) in
  List.iteri
    (fun i (r : Stats.row) ->
      let r0 = r_inner +. (float_of_int i *. ring_w) in
      let r1 = r0 +. ring_w in
      (* Grey backdrop ring = pruned share. *)
      add "<path d=\"%s\" fill=\"#dddddd\"/>\n" (arc_path c c r0 r1 1.0);
      (match r.Stats.removed with
      | Some k -> alive := !alive -. float_of_int k
      | None -> ());
      let frac = max 0.0 (min 1.0 (!alive /. float_of_int total)) in
      if frac > 0.0 then
        add "<path d=\"%s\" fill=\"%s\" fill-opacity=\"0.85\"/>\n"
          (arc_path c c r0 r1 frac)
          (class_color r.Stats.constraint_class);
      add
        "<text x=\"%f\" y=\"%f\" font-size=\"%d\" font-family=\"sans-serif\" fill=\"#333\">%s</text>\n"
        4.0
        (14.0 +. (float_of_int i *. 14.0))
        11 r.Stats.constraint_name)
    f.Stats.rows;
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"13\" text-anchor=\"middle\" font-family=\"sans-serif\" fill=\"white\">%d</text>\n"
    c (c +. 4.0) f.Stats.survivors;
  add "</svg>\n";
  Buffer.contents buf

let scatter_svg ?(size = 480) ?(x_label = "x") ?(y_label = "y")
    ?(highlight = []) points =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fsize = float_of_int size in
  let margin = 44.0 in
  let all = points @ highlight in
  let xs = List.map fst all and ys = List.map snd all in
  let lo l = List.fold_left Float.min infinity l in
  let hi l = List.fold_left Float.max neg_infinity l in
  let x0 = lo xs and x1 = hi xs and y0 = lo ys and y1 = hi ys in
  let span a b = if b -. a <= 0.0 then 1.0 else b -. a in
  let px x = margin +. ((x -. x0) /. span x0 x1 *. (fsize -. (2.0 *. margin))) in
  let py y =
    fsize -. margin -. ((y -. y0) /. span y0 y1 *. (fsize -. (2.0 *. margin)))
  in
  add "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n"
    size size;
  add "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" size size;
  add
    "<line x1=\"%f\" y1=\"%f\" x2=\"%f\" y2=\"%f\" stroke=\"#444\" stroke-width=\"1\"/>\n"
    margin (fsize -. margin) (fsize -. margin) (fsize -. margin);
  add
    "<line x1=\"%f\" y1=\"%f\" x2=\"%f\" y2=\"%f\" stroke=\"#444\" stroke-width=\"1\"/>\n"
    margin margin margin (fsize -. margin);
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"12\" font-family=\"sans-serif\" text-anchor=\"middle\">%s</text>\n"
    (fsize /. 2.0) (fsize -. 8.0) x_label;
  add
    "<text x=\"14\" y=\"%f\" font-size=\"12\" font-family=\"sans-serif\" text-anchor=\"middle\" transform=\"rotate(-90 14 %f)\">%s</text>\n"
    (fsize /. 2.0) (fsize /. 2.0) y_label;
  List.iter
    (fun (x, y) ->
      add "<circle cx=\"%f\" cy=\"%f\" r=\"2.2\" fill=\"#9ab\" fill-opacity=\"0.55\"/>\n"
        (px x) (py y))
    points;
  List.iter
    (fun (x, y) ->
      add
        "<circle cx=\"%f\" cy=\"%f\" r=\"4.5\" fill=\"#c0392b\" stroke=\"white\" stroke-width=\"1\"/>\n"
        (px x) (py y))
    highlight;
  (* axis extremes *)
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"10\" font-family=\"sans-serif\">%.3g</text>\n"
    margin
    (fsize -. margin +. 14.0)
    x0;
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"10\" font-family=\"sans-serif\" text-anchor=\"end\">%.3g</text>\n"
    (fsize -. margin)
    (fsize -. margin +. 14.0)
    x1;
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"10\" font-family=\"sans-serif\" text-anchor=\"end\">%.3g</text>\n"
    (margin -. 4.0) (fsize -. margin) y0;
  add
    "<text x=\"%f\" y=\"%f\" font-size=\"10\" font-family=\"sans-serif\" text-anchor=\"end\">%.3g</text>\n"
    (margin -. 4.0) (margin +. 4.0) y1;
  add "</svg>\n";
  Buffer.contents buf

let html_report ?(title = "BEAST pruning funnel") f =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title></head>\n"
    title;
  add "<body style=\"font-family: sans-serif\">\n<h1>%s</h1>\n" title;
  add "<p>space <b>%s</b>: %d points, %d survivors (%.2f%%25 pruned)</p>\n"
    f.Stats.space f.Stats.total_points f.Stats.survivors
    (100.0 *. Stats.pruned_fraction f);
  Buffer.add_string buf (svg f);
  add "<table border=\"1\" cellpadding=\"4\">\n";
  add "<tr><th>constraint</th><th>class</th><th>fired</th><th>removed</th></tr>\n";
  List.iter
    (fun (r : Stats.row) ->
      add "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>\n"
        r.Stats.constraint_name
        (Space.constraint_class_name r.Stats.constraint_class)
        r.Stats.fired
        (match r.Stats.removed with
        | Some k -> string_of_int k
        | None -> "n/a"))
    f.Stats.rows;
  add "</table>\n</body></html>\n";
  Buffer.contents buf
