(** Dynamic values manipulated by the BEAST search-space language.

    The paper embeds its language in Python, where iterator values flow
    through dynamically typed expressions. We reproduce that value universe
    with a closed sum type: integers, booleans, floats and strings.
    Strings appear only in settings (e.g. [precision = "double"]) and are
    constant-folded away before any engine runs; the enumeration hot path
    deals exclusively with integers and booleans. *)

type t =
  | Int of int
  | Bool of bool
  | Float of float
  | Str of string

(** Raised by any operation applied to operands outside its domain, e.g.
    adding a string to an integer. The message names the operation and
    the offending values. *)
exception Type_error of string

val type_error : string -> t -> 'a
val type_error2 : string -> t -> t -> 'a

(** {1 Constructors} *)

val int : int -> t
val bool : bool -> t
val float : float -> t
val str : string -> t

(** {1 Projections} *)

val to_int : t -> int
(** [to_int v] returns the integer payload. Booleans convert as 0/1
    (Python semantics, needed by constraints such as [trans_a != 0]).
    @raise Type_error on floats and strings. *)

val to_float : t -> float
(** Ints and bools widen; @raise Type_error on strings. *)

val truthy : t -> bool
(** Python truthiness: [Int 0], [Bool false], [Float 0.] and [Str ""] are
    false; everything else is true. Constraint results are filtered through
    this, matching the paper's "evaluates (or is cast) to a boolean". *)

(** {1 Structural operations} *)

val equal : t -> t -> bool
(** Numeric values compare across representations ([Int 2] equals
    [Float 2.] and [Bool true] equals [Int 1]); strings only equal
    strings. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}: numerics by magnitude, strings
    lexicographically. @raise Type_error when comparing a string with a
    numeric value. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Arithmetic}

    Binary arithmetic follows Python 2 semantics on the subset we need:
    int op int stays integral, any float operand promotes to float, and
    booleans behave as 0/1. Division and modulus on integers truncate
    toward zero and raise [Division_by_zero] on a zero divisor. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val min2 : t -> t -> t
val max2 : t -> t -> t
val abs_v : t -> t

val ceil_div : t -> t -> t
(** [ceil_div a b] is ceiling division on integers, a convenience builtin
    used by kernel spaces for grid-size computations. *)

(** {1 Logic and relations} *)

val not_v : t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
