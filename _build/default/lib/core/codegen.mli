(** Multi-language code generation — contribution (4) of the paper is a
    "performance analysis of various language backends for our code
    generator"; Section XI compares Python, Lua, C, Java and Fortran.
    This module emits a complete enumeration program in each of those
    languages from the same plan.

    All backends print the same stable protocol as the C backend
    ([survivors N] / [iterations N] / [pruned <name> N] lines), so any of
    them can be validated against the in-process engines. The C backend
    is the production path (and supports pthreads); the others share its
    translatable-subset restrictions. Division truncates toward zero in
    every emitted program (the Python backend uses [int(a / b)] and Lua
    emits an explicit helper) so all backends agree with the OCaml
    engines on negative operands. *)

type lang =
  | C
  | Python
  | Lua
  | Fortran
  | Java

val lang_name : lang -> string
val all_langs : lang list

val file_extension : lang -> string

val generate : ?threads:int -> lang -> Plan.t -> (string, Codegen_c.error) result
(** [threads] only affects [C]; other backends are single-threaded, as in
    the paper's evaluation (Section XI-A presents sequential runs). *)

val generate_exn : ?threads:int -> lang -> Plan.t -> string
