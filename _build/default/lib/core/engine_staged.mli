(** The staged engine: the loop-nest plan compiled to nested OCaml
    closures ahead of the sweep, so the enumeration hot path executes no
    interpretive dispatch on names — the in-process equivalent of the
    paper's generated C backend (Section XI-D).

    Expressions become [unit -> int] closures over a shared slot array;
    loops become [while] closures; a firing constraint abandons the
    continuation for its subtree. [And]/[Or]/[If] keep short-circuit
    semantics (Section VIII-A). *)

val run : ?on_hit:Engine.on_hit -> Plan.t -> Engine.stats
(** One full sweep. Raises [Expr.Eval_error] on a zero-step range and
    [Division_by_zero] if a body divides by zero. *)

val run_space : ?on_hit:Engine.on_hit -> Space.t -> Engine.stats
(** Convenience: plan (with hoisting) and run.
    @raise Plan.Error if the space does not plan. *)
