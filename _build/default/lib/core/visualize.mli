(** Radial, space-filling visualization of the pruning process — an SVG
    reimplementation of the technique the BEAST project presented at
    VISSOFT'14 (paper reference [7]): each ring corresponds to one
    pruning constraint, in evaluation order from the centre outwards; the
    surviving fraction stays coloured while the arc each constraint
    removes is greyed out, so the reader "gains a better understanding of
    how the pruning constraints remove candidates from the search
    space". *)

val svg : ?size:int -> Stats.funnel -> string
(** Render the funnel as a standalone SVG document. Requires a funnel
    with exact attribution ({!Stats.funnel}); rings for rows with
    [removed = None] are rendered with a hatched legend note instead of
    an arc split. [size] is the image edge in pixels (default 480). *)

val html_report : ?title:string -> Stats.funnel -> string
(** The SVG embedded in a minimal HTML page with a legend table. *)

val scatter_svg :
  ?size:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?highlight:(float * float) list ->
  (float * float) list ->
  string
(** A scatter plot as a standalone SVG — used by the energy-trade-off
    study (paper reference [4]) to draw survivors in the
    performance/efficiency plane with the Pareto front highlighted. *)
