(* Depth-0 checks run in every slice; when merging we keep a single
   domain's counts for the constraints that appear before the first loop
   so totals match a sequential sweep. *)
let depth0_constraints (plan : Plan.t) =
  let rec go acc = function
    | [] | Plan.Loop _ :: _ -> acc
    | Plan.Check { c_index; _ } :: rest -> go (c_index :: acc) rest
    | (Plan.Derive _ | Plan.Yield) :: rest -> go acc rest
  in
  go [] plan.Plan.steps

let run ?on_hit ~domains (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run: domains < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    let slices =
      List.init domains (fun index -> Plan.slice_outer plan ~index ~of_:domains)
    in
    let spawned =
      List.map
        (fun slice -> Domain.spawn (fun () -> Engine_staged.run ?on_hit slice))
        slices
    in
    let results = List.map Domain.join spawned in
    match results with
    | [] -> assert false
    | first :: rest ->
      let merged = List.fold_left Engine.merge first rest in
      let dup = depth0_constraints plan in
      let pruned =
        Array.mapi
          (fun i (n, c, k) ->
            if List.mem i dup then
              let _, _, k0 = first.Engine.pruned.(i) in
              (n, c, k0)
            else (n, c, k))
          merged.Engine.pruned
      in
      { merged with Engine.pruned }
  end

let run_space ?on_hit ~domains space =
  run ?on_hit ~domains (Plan.make_exn space)
