type unop =
  | Neg
  | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type builtin =
  | Min
  | Max
  | Abs
  | Ceil_div

type t =
  | Lit of Value.t
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t
  | Call of builtin * t list

exception Eval_error of string

type lookup = string -> Value.t

let eval_error fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let apply_unop op v =
  match op with
  | Neg -> Value.neg v
  | Not -> Value.not_v v

(* Strict binops only; And/Or are handled by [eval] for short-circuiting. *)
let apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Mod -> Value.rem a b
  | Eq -> Value.eq a b
  | Ne -> Value.ne a b
  | Lt -> Value.lt a b
  | Le -> Value.le a b
  | Gt -> Value.gt a b
  | Ge -> Value.ge a b
  | And -> Value.bool (Value.truthy a && Value.truthy b)
  | Or -> Value.bool (Value.truthy a || Value.truthy b)

let apply_builtin b args =
  match b, args with
  | Min, [ x; y ] -> Value.min2 x y
  | Max, [ x; y ] -> Value.max2 x y
  | Abs, [ x ] -> Value.abs_v x
  | Ceil_div, [ x; y ] -> Value.ceil_div x y
  | (Min | Max | Ceil_div), _ ->
    eval_error "builtin expects 2 arguments, got %d" (List.length args)
  | Abs, _ -> eval_error "abs expects 1 argument, got %d" (List.length args)

let rec eval env e =
  match e with
  | Lit v -> v
  | Var x -> (
    try env x with Not_found -> eval_error "unbound variable %s" x)
  | Unop (op, a) -> apply_unop op (eval env a)
  | Binop (And, a, b) ->
    if Value.truthy (eval env a) then Value.bool (Value.truthy (eval env b))
    else Value.bool false
  | Binop (Or, a, b) ->
    if Value.truthy (eval env a) then Value.bool true
    else Value.bool (Value.truthy (eval env b))
  | Binop (op, a, b) -> apply_binop op (eval env a) (eval env b)
  | If (c, t, f) -> if Value.truthy (eval env c) then eval env t else eval env f
  | Call (b, args) -> apply_builtin b (List.map (eval env) args)

let eval_bool env e = Value.truthy (eval env e)

module Sset = Set.Make (String)

let free_vars e =
  let rec go acc = function
    | Lit _ -> acc
    | Var x -> Sset.add x acc
    | Unop (_, a) -> go acc a
    | Binop (_, a, b) -> go (go acc a) b
    | If (c, t, f) -> go (go (go acc c) t) f
    | Call (_, args) -> List.fold_left go acc args
  in
  Sset.elements (go Sset.empty e)

let rec subst resolve e =
  match e with
  | Lit _ -> e
  | Var x -> (
    match resolve x with
    | Some v -> Lit v
    | None -> e)
  | Unop (op, a) -> Unop (op, subst resolve a)
  | Binop (op, a, b) -> Binop (op, subst resolve a, subst resolve b)
  | If (c, t, f) -> If (subst resolve c, subst resolve t, subst resolve f)
  | Call (b, args) -> Call (b, List.map (subst resolve) args)

let rec simplify e =
  match e with
  | Lit _ | Var _ -> e
  | Unop (op, a) -> (
    match simplify a with
    | Lit v -> Lit (apply_unop op v)
    | a' -> Unop (op, a'))
  | Binop (op, a, b) -> (
    let a' = simplify a and b' = simplify b in
    match op, a', b' with
    (* Short-circuit folds: a decided left operand settles the result
       (the value is always a boolean, so [true && x] may only fold when
       [x] is itself a literal). *)
    | And, Lit v, _ when not (Value.truthy v) -> Lit (Value.bool false)
    | Or, Lit v, _ when Value.truthy v -> Lit (Value.bool true)
    | _, Lit va, Lit vb -> (
      (* Defer constant division by zero to evaluation time. *)
      match apply_binop op va vb with
      | v -> Lit v
      | exception Division_by_zero -> Binop (op, a', b'))
    | _ -> Binop (op, a', b'))
  | If (c, t, f) -> (
    match simplify c with
    | Lit v -> if Value.truthy v then simplify t else simplify f
    | c' -> If (c', simplify t, simplify f))
  | Call (b, args) ->
    let args' = List.map simplify args in
    let all_lit =
      List.for_all
        (function
          | Lit _ -> true
          | _ -> false)
        args'
    in
    if all_lit then
      let vals =
        List.map
          (function
            | Lit v -> v
            | _ -> assert false)
          args'
      in
      match apply_builtin b vals with
      | v -> Lit v
      | exception Division_by_zero -> Call (b, args')
    else Call (b, args')

let rec equal a b =
  match a, b with
  | Lit x, Lit y -> Value.equal x y && Value.compare x y = 0
  | Var x, Var y -> String.equal x y
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal x y
  | Binop (o1, x1, y1), Binop (o2, x2, y2) -> o1 = o2 && equal x1 x2 && equal y1 y2
  | If (c1, t1, f1), If (c2, t2, f2) -> equal c1 c2 && equal t1 t2 && equal f1 f2
  | Call (b1, a1), Call (b2, a2) ->
    b1 = b2 && List.length a1 = List.length a2 && List.for_all2 equal a1 a2
  | (Lit _ | Var _ | Unop _ | Binop _ | If _ | Call _), _ -> false

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let builtin_name = function
  | Min -> "min"
  | Max -> "max"
  | Abs -> "abs"
  | Ceil_div -> "ceil_div"

let rec pp ppf e =
  match e with
  | Lit v -> Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Unop (Not, a) -> Format.fprintf ppf "(!%a)" pp a
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | If (c, t, f) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp t pp f
  | Call (b, args) ->
    Format.fprintf ppf "%s(%a)" (builtin_name b)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
      args

let to_string e = Format.asprintf "%a" pp e
let int i = Lit (Value.Int i)
let bool b = Lit (Value.Bool b)
let string s = Lit (Value.Str s)
let var x = Var x
let min_ a b = Call (Min, [ a; b ])
let max_ a b = Call (Max, [ a; b ])
let abs_ a = Call (Abs, [ a ])
let ceil_div a b = Call (Ceil_div, [ a; b ])
let if_ c t f = If (c, t, f)

module Infix = struct
  let ( +: ) a b = Binop (Add, a, b)
  let ( -: ) a b = Binop (Sub, a, b)
  let ( *: ) a b = Binop (Mul, a, b)
  let ( /: ) a b = Binop (Div, a, b)
  let ( %: ) a b = Binop (Mod, a, b)
  let ( =: ) a b = Binop (Eq, a, b)
  let ( <>: ) a b = Binop (Ne, a, b)
  let ( <: ) a b = Binop (Lt, a, b)
  let ( <=: ) a b = Binop (Le, a, b)
  let ( >: ) a b = Binop (Gt, a, b)
  let ( >=: ) a b = Binop (Ge, a, b)
  let ( &&: ) a b = Binop (And, a, b)
  let ( ||: ) a b = Binop (Or, a, b)
  let not_ a = Unop (Not, a)
end
