lib/core/codegen_c.ml: Array Buffer Expr Format List Plan Printf Result String Value
