lib/core/value.ml: Float Format Hashtbl Int Printf String
