lib/core/dag.mli: Format
