lib/core/engine_staged.mli: Engine Plan Space
