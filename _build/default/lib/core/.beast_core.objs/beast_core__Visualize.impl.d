lib/core/visualize.ml: Buffer Float List Printf Space Stats
