lib/core/codegen.mli: Codegen_c Plan
