lib/core/codegen_c.mli: Format Plan
