lib/core/plan.ml: Array Dag Expr Format Hashtbl Int Iter List Map Printf Result Set Space String Value
