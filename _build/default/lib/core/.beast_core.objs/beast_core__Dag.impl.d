lib/core/dag.ml: Array Buffer Format Hashtbl Int List Printf Set String
