lib/core/engine_staged.ml: Array Engine Expr Plan Printf
