lib/core/iter.ml: Array Expr Format List Seq Set String Value
