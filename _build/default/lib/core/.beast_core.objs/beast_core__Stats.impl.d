lib/core/stats.ml: Array Buffer Engine Engine_staged Format List Plan Printf Space
