lib/core/engine.mli: Expr Format Plan Space
