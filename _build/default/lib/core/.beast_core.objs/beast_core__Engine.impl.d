lib/core/engine.ml: Array Expr Format Plan Space
