lib/core/engine_parallel.mli: Engine Plan Space
