lib/core/engine_interp.mli: Engine Space
