lib/core/engine_parallel.ml: Array Domain Engine Engine_staged List Plan
