lib/core/sweep.ml: Engine_interp Engine_parallel Engine_staged Engine_vm List Mutex Plan Printf Space
