lib/core/visualize.mli: Stats
