lib/core/sweep.mli: Engine Expr Space Value
