lib/core/engine_vm.ml: Array Buffer Engine Expr List Plan Printf
