lib/core/space.ml: Dag Expr Format Hashtbl Iter List String Value
