lib/core/engine_vm.mli: Engine Plan Space
