lib/core/plan.mli: Expr Format Hashtbl Space Value
