lib/core/stats.mli: Engine Format Plan Space
