lib/core/engine_interp.ml: Array Engine Expr Hashtbl Iter List Plan Space Value
