lib/core/expr.ml: Format List Printf Set String Value
