lib/core/codegen.ml: Array Buffer Codegen_c Expr List Plan Printf String
