lib/core/space.mli: Dag Expr Format Iter Value
