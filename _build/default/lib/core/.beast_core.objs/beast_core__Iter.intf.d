lib/core/iter.mli: Expr Format Seq Value
