type stats = {
  survivors : int;
  loop_iterations : int;
  pruned : (string * Space.constraint_class * int) array;
}

type on_hit = Expr.lookup -> unit

let empty_stats (plan : Plan.t) =
  {
    survivors = 0;
    loop_iterations = 0;
    pruned = Array.map (fun (n, c) -> (n, c, 0)) plan.Plan.constraint_info;
  }

let total_pruned s = Array.fold_left (fun acc (_, _, k) -> acc + k) 0 s.pruned

let merge a b =
  if Array.length a.pruned <> Array.length b.pruned then
    invalid_arg "Engine.merge: stats from different plans";
  {
    survivors = a.survivors + b.survivors;
    loop_iterations = a.loop_iterations + b.loop_iterations;
    pruned =
      Array.mapi
        (fun i (n, c, k) ->
          let _, _, k' = b.pruned.(i) in
          (n, c, k + k'))
        a.pruned;
  }

let pp_stats ppf s =
  Format.fprintf ppf "survivors: %d@\nloop iterations: %d@\n" s.survivors
    s.loop_iterations;
  Array.iter
    (fun (n, c, k) ->
      Format.fprintf ppf "  %-28s [%s] fired %d@\n" n
        (Space.constraint_class_name c)
        k)
    s.pruned
