(** Directed acyclic graph of iterators and constraints (paper Section X).

    Vertices are the user-defined iterators, derived variables and
    constraints; an edge [(v, w)] exists iff [v] is used to express [w].
    The level sets of the DAG induce the weak order used to generate loop
    nests, and within a level loops may be interchanged freely — e.g. to
    parallelize close to level 0 (Section X-B, Figure 16). *)

type t

type error =
  | Unknown_node of string * string
      (** [(referrer, missing)] — an edge mentions an undeclared node. *)
  | Cycle of string list  (** a dependency cycle, in order *)

val pp_error : Format.formatter -> error -> unit

val create :
  nodes:string list -> edges:(string * string) list -> (t, error) result
(** [create ~nodes ~edges] with edge [(u, v)] meaning "u is used to
    express v" (so v depends on u). Duplicate edges are tolerated. *)

val nodes : t -> string list
(** In declaration order. *)

val deps_of : t -> string -> string list
(** Direct dependencies (predecessors). *)

val users_of : t -> string -> string list
(** Direct dependents (successors). *)

val level : t -> string -> int
(** 0 for nodes with no dependencies, else 1 + max level of deps. *)

val level_sets : t -> string list list
(** Nodes grouped by {!level}, ascending; within a set, declaration
    order. The paper's L₀, L₁, … *)

val topo_order : t -> string list
(** A topological linearization: every node after all of its deps.
    Stable: ties break by declaration order (Kahn's algorithm with a
    priority on declaration index). *)

val transitive_deps : t -> string -> string list
(** All ancestors, sorted. *)

val transitive_users : t -> string -> string list
(** All descendants, sorted. *)

val to_dot :
  ?name:string ->
  ?attrs:(string -> string) ->
  t ->
  string
(** GraphViz rendering reproducing Figure 16's styling conventions when
    [attrs] classifies nodes (e.g. blue circles for iterators, red
    octagons for constraints). [attrs node] returns extra attribute text
    such as ["shape=octagon, color=red"]. *)
