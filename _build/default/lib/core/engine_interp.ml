(* The interpreter reuses the plan only for structure (loop order and step
   placement); all evaluation goes through the original named bodies and a
   string-keyed hash table, so each variable access costs an associative
   lookup — the scripting-tier cost model of Section XI-B. *)

let run ?on_hit ?(variant = `Hoisted) space =
  let hoist =
    match variant with
    | `Hoisted -> true
    | `Naive -> false
  in
  let plan = Plan.make_exn ~hoist space in
  let env : (string, Value.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) (Space.settings space);
  let lookup name = Hashtbl.find env name in
  let body_by_name = Hashtbl.create 64 in
  List.iter
    (fun dv -> Hashtbl.replace body_by_name dv.Space.dv_name dv.Space.dv_body)
    (Space.deriveds space);
  List.iter
    (fun cn -> Hashtbl.replace body_by_name cn.Space.cn_name cn.Space.cn_body)
    (Space.constraints space);
  let iter_by_name = Hashtbl.create 16 in
  List.iter
    (fun it -> Hashtbl.replace iter_by_name it.Space.it_name it.Space.it_iter)
    (Space.iterators space);
  let eval_body name =
    match Hashtbl.find body_by_name name with
    | Space.E e -> Expr.eval lookup e
    | Space.F { fn; _ } -> fn lookup
  in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  let rec exec_steps (steps : Plan.step list) =
    match steps with
    | [] -> ()
    | Yield :: rest ->
      incr survivors;
      (match on_hit with
      | None -> ()
      | Some f -> f lookup);
      exec_steps rest
    | Derive { d_name; _ } :: rest ->
      Hashtbl.replace env d_name (eval_body d_name);
      exec_steps rest
    | Check { c_name; c_index; _ } :: rest ->
      if Value.truthy (eval_body c_name) then
        pruned.(c_index) <- pruned.(c_index) + 1
      else exec_steps rest
    | Loop { l_var; l_body; _ } :: rest ->
      let it = Hashtbl.find iter_by_name l_var in
      (* Materializing the whole iterator before looping mirrors Python's
         range() building its value list (Section XI-B). *)
      let vs = Iter.materialize lookup it in
      Array.iter
        (fun v ->
          Hashtbl.replace env l_var v;
          incr loop_iterations;
          exec_steps l_body)
        vs;
      Hashtbl.remove env l_var;
      exec_steps rest
  in
  exec_steps plan.Plan.steps;
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi (fun i (n, c) -> (n, c, pruned.(i))) plan.Plan.constraint_info;
  }
