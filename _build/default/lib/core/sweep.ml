type engine =
  | Interp_naive
  | Interp
  | Vm
  | Staged
  | Parallel of int

let engine_name = function
  | Interp_naive -> "interp-naive"
  | Interp -> "interp"
  | Vm -> "vm"
  | Staged -> "staged"
  | Parallel n -> Printf.sprintf "parallel-%d" n

let all_engines = [ Interp_naive; Interp; Vm; Staged; Parallel 2 ]

let run ?(engine = Staged) ?on_hit space =
  match engine with
  | Interp_naive -> Engine_interp.run ?on_hit ~variant:`Naive space
  | Interp -> Engine_interp.run ?on_hit ~variant:`Hoisted space
  | Vm -> Engine_vm.run_space ?on_hit space
  | Staged -> Engine_staged.run_space ?on_hit space
  | Parallel n -> Engine_parallel.run_space ?on_hit ~domains:n space

let survivors ?engine ?limit space =
  let plan = Plan.make_exn space in
  let acc = ref [] in
  let count = ref 0 in
  let mutex = Mutex.create () in
  let record lookup =
    let point =
      List.map (fun n -> (n, lookup n)) plan.Plan.iter_order
    in
    Mutex.lock mutex;
    (match limit with
    | Some l when !count >= l -> ()
    | _ ->
      incr count;
      acc := point :: !acc);
    Mutex.unlock mutex
  in
  ignore (run ?engine ~on_hit:record space);
  List.rev !acc

let fold ?(engine = Staged) ~init ~f space =
  (match engine with
  | Parallel _ -> invalid_arg "Sweep.fold: sequential engines only"
  | _ -> ());
  let acc = ref init in
  let stats = run ~engine ~on_hit:(fun lookup -> acc := f !acc lookup) space in
  (!acc, stats)

exception Budget_reached

let cardinality ?(budget = 10_000_000) space =
  let unconstrained = Space.filter_constraints space ~keep:(fun _ -> false) in
  let count = ref 0 in
  let on_hit _ =
    incr count;
    if !count >= budget then raise Budget_reached
  in
  match Engine_staged.run_space ~on_hit unconstrained with
  | _ -> `Exact !count
  | exception Budget_reached -> `At_least !count
