(** First-order expressions over search-space parameters.

    This is the OCaml counterpart of the paper's "expression iterators" and
    "expression constraints" (Sections V, VI, VIII): the operators that
    Python overloads on iterator objects become constructors of a small
    AST. Keeping expressions first-order is what lets the system analyse
    dependencies (Section X), hoist evaluation, and translate to C. *)

type unop =
  | Neg
  | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncating on integers, as in the paper's derived variables *)
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** short-circuit, Section VIII-A *)
  | Or   (** short-circuit *)

type builtin =
  | Min
  | Max
  | Abs
  | Ceil_div

type t =
  | Lit of Value.t
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t  (** the ternary the paper adds for deferred iterators *)
  | Call of builtin * t list

(** Raised when evaluation meets an unbound variable or a malformed
    builtin application. *)
exception Eval_error of string

type lookup = string -> Value.t
(** Engines supply variable resolution; an unbound name must raise
    [Not_found], which {!eval} converts to {!Eval_error}. *)

val eval : lookup -> t -> Value.t
val eval_bool : lookup -> t -> bool
(** [eval_bool env e] applies Python truthiness to the result. *)

val free_vars : t -> string list
(** Sorted, duplicate-free. This is the dependency-extraction primitive
    feeding the DAG of Section X. *)

val subst : (string -> Value.t option) -> t -> t
(** Replace variables the function resolves by literals; used to fold
    global settings (Figure 10) into the space before planning. *)

val simplify : t -> t
(** Bottom-up constant folding. [If] with a literal condition drops a
    branch; [And]/[Or] with a decided left operand short-circuit. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val binop_symbol : binop -> string
(** C-style symbol, shared by the pretty-printer and the code generators. *)

val builtin_name : builtin -> string

(** {1 Construction helpers} *)

val int : int -> t
val bool : bool -> t
val string : string -> t
val var : string -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val abs_ : t -> t
val ceil_div : t -> t -> t
val if_ : t -> t -> t -> t

(** Infix operators for readable space definitions. All are suffixed with
    [:] to avoid shadowing the standard integer operators. *)
module Infix : sig
  val ( +: ) : t -> t -> t
  val ( -: ) : t -> t -> t
  val ( *: ) : t -> t -> t
  val ( /: ) : t -> t -> t
  val ( %: ) : t -> t -> t
  val ( =: ) : t -> t -> t
  val ( <>: ) : t -> t -> t
  val ( <: ) : t -> t -> t
  val ( <=: ) : t -> t -> t
  val ( >: ) : t -> t -> t
  val ( >=: ) : t -> t -> t
  val ( &&: ) : t -> t -> t
  val ( ||: ) : t -> t -> t
  val not_ : t -> t
end
