(** Parameter iterators — the core abstraction of the BEAST language
    (paper Section V).

    Three kinds map onto the paper's taxonomy:

    - {b expression / deferred iterators} are {!constructor-Range} with
      expression-valued bounds ([range(dim_m, max_threads+1, dim_m)] from
      Figure 4 becomes a [Range] whose bounds mention [dim_m]). The paper
      distinguishes "expression" from "deferred" only by Python's
      definition-order restrictions; our builder resolves order through the
      dependency DAG, so every iterator enjoys deferred semantics.
    - {b closure iterators} ({!constructor-Closure}) carry an arbitrary
      OCaml generator with an explicit dependency list — the analogue of
      Figure 3's prime generator, whose Python argument list names its
      dependencies.
    - the {b iterator algebra} of Section VIII (union, intersection,
      concatenation, map, filter) composes any of the above.

    Every iterator yields values smallest-structure-first exactly as the
    defining construct dictates; ranges honour negative steps
    (Figure 5 uses [range(x, 0, -1)]). *)

type gen = {
  gen_deps : string list;  (** names this generator reads via the lookup *)
  generate : Expr.lookup -> Value.t Seq.t;
}

type t =
  | Range of Expr.t * Expr.t * Expr.t
      (** [Range (start, stop, step)]; [stop] is exclusive, as in Python. *)
  | Values of Value.t list
  | Closure of gen
  | Union of t * t      (** sorted set union *)
  | Inter of t * t      (** sorted set intersection *)
  | Concat of t * t     (** left-to-right concatenation *)
  | Map of (Value.t -> Value.t) * t
  | Filter of (Value.t -> bool) * t

(** {1 Constructors} *)

val range : ?step:Expr.t -> Expr.t -> Expr.t -> t
(** [range ?step start stop] — default step 1. *)

val range_i : ?step:int -> int -> int -> t
(** Integer-literal convenience. *)

val upto : Expr.t -> t
(** [upto stop] = [range (int 0) stop] — Python's [range(n)]. *)

val values : Value.t list -> t
val ints : int list -> t
val single : Expr.t -> t
(** A one-value iterator: the paper's deferred iterators may [return 1]
    instead of a range (Figure 11, [dim_vec]). *)

val closure : deps:string list -> (Expr.lookup -> Value.t Seq.t) -> t
val of_list_fn : deps:string list -> (Expr.lookup -> Value.t list) -> t

(** {1 Algebra} *)

val union : t -> t -> t
val inter : t -> t -> t
val concat : t -> t -> t
val map : (Value.t -> Value.t) -> t -> t
val filter : (Value.t -> bool) -> t -> t

(** {1 Analysis and evaluation} *)

val deps : t -> string list
(** Sorted free names: expression variables of ranges plus declared
    generator deps, across the whole algebraic term. *)

val materialize : Expr.lookup -> t -> Value.t array
(** Evaluate the iterator under an environment binding all of its
    {!deps}. Ranges with a zero step raise [Expr.Eval_error]. Union and
    intersection sort and deduplicate; concat, map and filter preserve
    order. *)

val is_static : t -> bool
(** True when [deps] is empty once settings are folded — such iterators
    can be tabulated by the C generator even if closure-backed. *)

val cardinality : Expr.lookup -> t -> int
(** Length of {!materialize} without building the array when possible. *)

val pp : Format.formatter -> t -> unit
