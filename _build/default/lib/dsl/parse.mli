(** The declarative notation as a textual language.

    The paper embeds its notation in Python so that search spaces are
    "easy to assimilate by the user interested in tuning rather than
    learning a new programming language". This module provides the same
    experience without an OCaml toolchain in the loop: a line-oriented
    text format that parses into a {!Beast_core.Space.t}, after which
    every part of the system (planning, engines, code generation,
    tuning) applies unchanged.

    {2 Format}

    One declaration per line; [#] starts a comment; a trailing [\ ]
    continues a line. Declarations:

    {v
    space gemm                          # optional, names the space
    setting precision = "double"
    setting max_threads = 1024
    iter dim_m  = range(1, max_threads + 1)
    iter blk_m  = range(dim_m, max_threads + 1, dim_m)
    iter tex_a  = values(0, 1)
    iter fib    = values(1, 1, 2, 3, 5, 8, 13)
    iter vec    = precision == "double" ? range(1, 3) : range(1, 5, 3)
    derived thr_m = blk_m / dim_m
    constraint hard over_max = dim_m * dim_n > max_threads
    constraint soft partial_warps = (dim_m * dim_n) % 32 != 0
    constraint correctness cant_reshape = blk_m % dim_m != 0
    v}

    Expressions support [+ - * / %] (integer division truncates),
    comparisons, [&& || !] (also spelled [and or not]), the C ternary
    [c ? a : b], parentheses, integer and string literals, [true]/[false],
    and the builtins [min(a,b)], [max(a,b)], [abs(a)], [ceil_div(a,b)].
    Iterators: [range(start, stop[, step])], [values(v, ...)],
    [single(e)], [union(i1, i2)], [inter(i1, i2)], [concat(i1, i2)], and
    the conditional form [cond ? iter1 : iter2] (both arms must be
    ranges; the bounds are merged through the condition, which is how
    the paper's deferred if/elif iterators translate).

    Definition order is free, exactly as in the library (deferred
    semantics); constraints default to class [hard]. *)

type error = {
  line : int;  (** 1-based *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val space_of_string :
  ?name:string -> string -> (Beast_core.Space.t, error) result
(** Parse a whole space description. A [space <name>] declaration inside
    the text overrides [?name] (default ["space"]). *)

val space_of_file : string -> (Beast_core.Space.t, error) result
(** Reads the file; the default space name is the file's basename
    without extension. *)

val expr_of_string : string -> (Beast_core.Expr.t, error) result
(** Parse a single expression — exposed for tests and tools. *)
