(** Serialization of a space back to the textual notation — the inverse
    of {!Parse}, so programmatically built spaces (device parameters
    filled in from {!Beast_gpu.Device}, say) can be saved, diffed and
    shared as plain text.

    Only the expression-bodied subset round-trips: closure iterators and
    opaque ([Space.derived_f] / [Space.constrain_f]) bodies have no
    textual form and yield [Error]. Everything the paper's figures define
    is expression-bodied, so the GEMM model problem round-trips exactly
    (test-verified: parse (print sp) enumerates the same survivors). *)

type error = Unprintable of string  (** the offending parameter's name *)

val pp_error : Format.formatter -> error -> unit

val space_to_string : Beast_core.Space.t -> (string, error) result

val expr_to_string : Beast_core.Expr.t -> string
(** Expressions always print (fully parenthesized, re-parseable). *)
