open Beast_core

type error = Unprintable of string

let pp_error ppf (Unprintable name) =
  Format.fprintf ppf "%s has no textual form (closure or opaque body)" name

exception Error of error

(* Fully parenthesized rendering; ambiguity-free, so the parser's
   precedence never matters on the way back in. *)
let rec expr_to_string (e : Expr.t) =
  match e with
  | Lit (Value.Int k) -> if k < 0 then Printf.sprintf "(%d)" k else string_of_int k
  | Lit (Value.Bool b) -> if b then "true" else "false"
  | Lit (Value.Str s) -> Printf.sprintf "%S" s
  | Lit (Value.Float _) -> raise (Error (Unprintable "float literal"))
  | Var x -> x
  | Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Unop (Expr.Not, a) -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (Expr.binop_symbol op)
      (expr_to_string b)
  | If (c, t, f) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string t)
      (expr_to_string f)
  | Call (b, args) ->
    Printf.sprintf "%s(%s)" (Expr.builtin_name b)
      (String.concat ", " (List.map expr_to_string args))

let value_to_string name (v : Value.t) =
  match v with
  | Value.Int k -> string_of_int k
  | Value.Bool b -> if b then "true" else "false"
  | Value.Str s -> Printf.sprintf "%S" s
  | Value.Float _ -> raise (Error (Unprintable name))

let rec iter_to_string name (it : Iter.t) =
  match it with
  | Iter.Range (a, b, c) ->
    Printf.sprintf "range(%s, %s, %s)" (expr_to_string a) (expr_to_string b)
      (expr_to_string c)
  | Iter.Values vs ->
    Printf.sprintf "values(%s)"
      (String.concat ", " (List.map (value_to_string name) vs))
  | Iter.Union (x, y) ->
    Printf.sprintf "union(%s, %s)" (iter_to_string name x) (iter_to_string name y)
  | Iter.Inter (x, y) ->
    Printf.sprintf "inter(%s, %s)" (iter_to_string name x) (iter_to_string name y)
  | Iter.Concat (x, y) ->
    Printf.sprintf "concat(%s, %s)" (iter_to_string name x)
      (iter_to_string name y)
  | Iter.Closure _ | Iter.Map _ | Iter.Filter _ -> raise (Error (Unprintable name))

let space_to_string sp =
  try
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let name_ok n =
      n <> ""
      && (not (n.[0] >= '0' && n.[0] <= '9'))
      && String.for_all
           (fun c ->
             (c >= 'a' && c <= 'z')
             || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9')
             || c = '_')
           n
    in
    if name_ok (Space.name sp) then add "space %s\n" (Space.name sp);
    List.iter
      (fun (n, v) -> add "setting %s = %s\n" n (value_to_string n v))
      (Space.settings sp);
    List.iter
      (fun it ->
        add "iter %s = %s\n" it.Space.it_name
          (iter_to_string it.Space.it_name it.Space.it_iter))
      (Space.iterators sp);
    List.iter
      (fun dv ->
        match dv.Space.dv_body with
        | Space.E e -> add "derived %s = %s\n" dv.Space.dv_name (expr_to_string e)
        | Space.F _ -> raise (Error (Unprintable dv.Space.dv_name)))
      (Space.deriveds sp);
    List.iter
      (fun cn ->
        match cn.Space.cn_body with
        | Space.E e ->
          add "constraint %s %s = %s\n"
            (Space.constraint_class_name cn.Space.cn_class)
            cn.Space.cn_name (expr_to_string e)
        | Space.F _ -> raise (Error (Unprintable cn.Space.cn_name)))
      (Space.constraints sp);
    Ok (Buffer.contents buf)
  with Error e -> Result.Error e
