lib/dsl/parse.ml: Beast_core Expr Filename Format Iter List Option Printf Space String Value
