lib/dsl/print.ml: Beast_core Buffer Expr Format Iter List Printf Result Space String Value
