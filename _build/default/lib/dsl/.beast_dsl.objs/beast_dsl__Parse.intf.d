lib/dsl/parse.mli: Beast_core Format
