lib/dsl/print.mli: Beast_core Format
