open Beast_core
open Beast_gpu
open Expr.Infix

type workload = {
  device : Device.t;
  precision : Device.precision;
  rank : int;
  users : int;
  avg_ratings : int;
}

let default_workload =
  {
    device = Device.tesla_k40c;
    precision = Device.Single;
    rank = 64;
    users = 100_000;
    avg_ratings = 40;
  }

type config = {
  dim_x : int;
  users_per_block : int;
  tile_f : int;
  gram_in_shmem : bool;
  unroll : int;
}

let v = Expr.var
let i = Expr.int

let element_size w = Device.element_size w.device w.precision Device.Real

let space ?(workload = default_workload) () =
  let w = workload in
  let d = w.device in
  let sp = Space.create ~name:"als" () in
  Space.setting_i sp "rank" w.rank;
  Space.setting_i sp "element_size" (element_size w);
  Space.setting_i sp "max_threads_per_block" d.Device.max_threads_per_block;
  Space.setting_i sp "max_shared_mem_per_block" d.Device.max_shared_mem_per_block;
  Space.setting_i sp "warp_size" d.Device.warp_size;
  Space.iterator sp "dim_x" (Iter.range (i 1) (i 257));
  Space.iterator sp "users_per_block" (Iter.range (i 1) (i 17));
  Space.iterator sp "tile_f" (Iter.ints [ 1; 2; 4; 8; 16; 32 ]);
  Space.iterator sp "gram_in_shmem" (Iter.range_i 0 2);
  Space.iterator sp "unroll" (Iter.ints [ 1; 2; 4; 8 ]);
  Space.derived sp "threads_per_block" (v "dim_x" *: v "users_per_block");
  (* The f x f Gram matrix (symmetric half) per user in shared memory. *)
  Space.derived sp "shmem_per_block"
    (Expr.if_
       (v "gram_in_shmem" <>: i 0)
       (v "users_per_block" *: (v "rank" *: (v "rank" +: i 1) /: i 2)
       *: v "element_size")
       (i 0));
  Space.constrain sp ~cls:Space.Hard "over_max_threads"
    (v "threads_per_block" >: v "max_threads_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_shmem"
    (v "shmem_per_block" >: v "max_shared_mem_per_block");
  Space.constrain sp ~cls:Space.Soft "partial_warps"
    (v "threads_per_block" %: v "warp_size" <>: i 0);
  Space.constrain sp ~cls:Space.Soft "idle_threads" (v "dim_x" >: v "rank");
  Space.constrain sp ~cls:Space.Correctness "tile_divides_rank"
    (v "rank" %: v "tile_f" <>: i 0);
  Space.constrain sp ~cls:Space.Correctness "tile_over_threads"
    (v "tile_f" >: v "dim_x");
  sp

let decode lookup =
  let geti name = Value.to_int (lookup name) in
  {
    dim_x = geti "dim_x";
    users_per_block = geti "users_per_block";
    tile_f = geti "tile_f";
    gram_in_shmem = geti "gram_in_shmem" <> 0;
    unroll = geti "unroll";
  }

(* Gram accumulation: n_ratings rank-1 updates of the symmetric f x f
   half (f(f+1)/2 FMAs each, x2 flops), plus the f^3/3 Cholesky solve
   and two f x n_ratings products for the right-hand side. *)
let flops_per_user w =
  let f = float_of_int w.rank and r = float_of_int w.avg_ratings in
  (2.0 *. r *. (f *. (f +. 1.0) /. 2.0))
  +. (f *. f *. f /. 3.0)
  +. (4.0 *. r *. f)

let gflops w c =
  let d = w.device in
  let threads = c.dim_x * c.users_per_block in
  let regs = 24 + (2 * c.unroll) + (c.tile_f / 2) in
  let shmem =
    if c.gram_in_shmem then
      c.users_per_block * (w.rank * (w.rank + 1) / 2) * element_size w
    else 0
  in
  let usage =
    {
      Occupancy.threads_per_block = threads;
      regs_per_thread = regs;
      shmem_per_block = shmem;
    }
  in
  match Occupancy.calculate d usage with
  | Error _ -> 0.0
  | Ok occ ->
    let active = occ.Occupancy.active_blocks in
    if active = 0 then 0.0
    else begin
      let in_flight = active * c.users_per_block in
      let dp_cost =
        match w.precision with
        | Device.Double -> 1.0 /. d.Device.fp64_ratio
        | Device.Single -> 1.0
      in
      let fma_issue_cost = dp_cost *. (if c.gram_in_shmem then 1.0 else 3.0) in
      let fdim_x = float_of_int c.dim_x in
      let fr = float_of_int w.avg_ratings and ff = float_of_int w.rank in
      (* Tiling the Gram update amortizes the rating-vector loads across
         tile_f columns. *)
      let tile_amort = Float.min (float_of_int c.tile_f) 8.0 in
      let gram_issue =
        fr *. (ff *. (ff +. 1.0) /. 2.0) /. fdim_x *. fma_issue_cost
        +. (fr *. ff /. tile_amort /. fdim_x *. 2.0)
      in
      let solve_issue = ff *. ff *. ff /. 3.0 /. fdim_x *. fma_issue_cost in
      let solve_latency = ff *. (if c.gram_in_shmem then 90.0 else 400.0) in
      let rating_latency = fr *. 300.0 /. Float.min fdim_x 32.0 in
      let loop_overhead = fr *. ff /. float_of_int c.unroll /. fdim_x in
      let w_issue = gram_issue +. solve_issue +. loop_overhead in
      let w_latency = solve_latency +. rating_latency in
      let lane_time =
        w_issue *. fdim_x *. float_of_int in_flight
        /. float_of_int d.Device.cores_per_multi_processor
      in
      let round_cycles = Float.max lane_time (w_issue +. w_latency) in
      let rounds =
        (w.users + (in_flight * d.Device.n_multi_processors) - 1)
        / (in_flight * d.Device.n_multi_processors)
      in
      let clock_hz = float_of_int d.Device.clock_mhz *. 1e6 in
      let compute_time_s = float_of_int rounds *. round_cycles /. clock_hz in
      (* DRAM: every user streams its ratings (id + value) and writes its
         factor vector; the item-factor matrix reads mostly hit cache. *)
      let es = float_of_int (element_size w) in
      let bytes_per_user =
        (float_of_int w.avg_ratings *. (es +. 4.0))
        +. (float_of_int w.rank *. es *. 2.0)
      in
      let mem_time_s =
        float_of_int w.users *. bytes_per_user
        /. (d.Device.mem_bandwidth_gbs *. 1e9 *. 0.6)
      in
      let time_s = Float.max compute_time_s mem_time_s in
      let raw = float_of_int w.users *. flops_per_user w /. time_s /. 1e9 in
      Float.min raw (0.5 *. Device.peak_gflops d w.precision)
    end

let objective w lookup = gflops w (decode lookup)

(* The paper's comparator is a CPU implementation: model a 2013-class
   dual-socket Xeon (2 x 8 cores, AVX, ~2.7 GHz: ~691 sp GFLOP/s peak)
   running a well-optimized ALS at 25% of peak - memory-irregular Gram
   accumulations keep CPUs far from peak on this kernel. *)
let cpu_baseline_gflops w =
  let peak_sp = 2.0 *. 8.0 *. 2.0 *. 8.0 *. 2.7 in
  let peak =
    match w.precision with
    | Device.Single -> peak_sp
    | Device.Double -> peak_sp /. 2.0
  in
  0.25 *. peak
