(** Batched Cholesky factorization — the kernel behind Table I's
    "Batched factorizations" rows. The paper's reference [5] tuned
    batched [potrf] for "large sets of very small matrices" with BEAST
    and beat cuBLAS by 3x-10x; references [34]-[36] extend to medium
    sizes at up-to-3x.

    The search space models the tunable structure of such a kernel:
    how many threads cooperate on one matrix, how many matrices share a
    thread block, the panel blocking width, whether the matrix is staged
    in shared memory, and the update-loop unroll depth. The performance
    model charges per-column-step costs on the device model and is scored
    against the {!Beast_gpu.Baseline} loop-over-potrf model. *)

open Beast_gpu

type workload = {
  device : Device.t;
  precision : Device.precision;
  n : int;  (** matrix order *)
  batch : int;  (** number of matrices *)
}

val default_workload : workload
(** n = 16, batch 10000 doubles on the K40c — the "small size" regime. *)

val space : ?workload:workload -> unit -> Beast_core.Space.t
(** Iterators: [dim_x] (threads per matrix), [batch_per_block],
    [blk] (panel width), [use_shmem], [unroll]. Constraints: block
    shape/size hard limits, occupancy, divisibility of the panel
    blocking, full-warp blocks. *)

type config = {
  dim_x : int;
  batch_per_block : int;
  blk : int;
  use_shmem : bool;
  unroll : int;
}

val decode : Beast_core.Expr.lookup -> config
val flops_per_matrix : int -> float
val shmem_per_block : workload -> config -> int

val gflops : workload -> config -> float
(** Modeled throughput of the fused batched kernel for the whole batch. *)

val objective : workload -> Beast_core.Expr.lookup -> float
val baseline_gflops : workload -> float
(** The cuBLAS-model comparator ({!Baseline.batched_cholesky_gflops}). *)
