(** Batched LU factorization with partial pivoting — the third member of
    the batched-factorization family behind Table I's rows (the paper's
    references [34]–[36], "Batched matrix computations on hardware
    accelerators", cover LU alongside Cholesky).

    Compared with {!Cholesky_batched}, each column step additionally
    pays a pivot search (a reduction over the column) and a row swap;
    the search space gains a tunable for how the reduction is performed
    ([pivot_tree]: serial scan vs tree reduction) and loses the
    symmetric-triangle storage savings. *)

open Beast_gpu

type workload = {
  device : Device.t;
  precision : Device.precision;
  n : int;
  batch : int;
}

val default_workload : workload
(** n = 16, batch 10000 doubles on the K40c. *)

val space : ?workload:workload -> unit -> Beast_core.Space.t

type config = {
  dim_x : int;
  batch_per_block : int;
  blk : int;
  use_shmem : bool;
  unroll : int;
  pivot_tree : bool;  (** tree reduction instead of a serial scan *)
}

val decode : Beast_core.Expr.lookup -> config
val flops_per_matrix : int -> float
(** 2n³/3 + lower-order terms (getrf). *)

val gflops : workload -> config -> float
val objective : workload -> Beast_core.Expr.lookup -> float
val baseline_gflops : workload -> float
