(** Batched triangular solve — the companion kernel to
    {!Cholesky_batched} in the paper's reference [5] ("batched Cholesky
    factorization and triangular solve for large sets of very small
    matrices") and part of Table I's batched-factorization rows.

    Solves L X = B for [batch] independent lower-triangular systems of
    order [n] with [nrhs] right-hand sides. Tunables: threads along the
    right-hand sides ([dim_x]), systems per block ([batch_per_block]),
    whether L is staged in shared memory, and unroll depth of the
    forward-substitution loop. *)

open Beast_gpu

type workload = {
  device : Device.t;
  precision : Device.precision;
  n : int;
  nrhs : int;
  batch : int;
}

val default_workload : workload
(** n = 16, nrhs = 16, batch 10000 doubles on the K40c. *)

val space : ?workload:workload -> unit -> Beast_core.Space.t

type config = {
  dim_x : int;
  batch_per_block : int;
  use_shmem : bool;
  unroll : int;
}

val decode : Beast_core.Expr.lookup -> config
val flops_per_matrix : n:int -> nrhs:int -> float
val gflops : workload -> config -> float
val objective : workload -> Beast_core.Expr.lookup -> float
val baseline_gflops : workload -> float
