(** The paper's model autotuning problem: the GEMM kernel search space
    (Section IX), ported construct-for-construct from Figures 10–15.

    The space has the 15 iterators of Figure 11, the derived variables of
    Figure 12 and the twelve pruning constraints of Figures 13–15 (four
    hard, four soft, four correctness). Device parameters come from the
    {!Beast_gpu.Device} query record (Figure 8) and the
    {!Beast_gpu.Capability} tables (Figure 9); the global settings of
    Figure 10 (precision, arithmetic, transposition) parameterize the
    construction, since "the autotuning process is carried out separately
    for each precision and each case of transposition". *)

open Beast_gpu

type settings = {
  device : Device.t;
  precision : Device.precision;
  arithmetic : Device.arithmetic;
  trans_a : bool;
  trans_b : bool;
}

val default_settings : settings
(** Double real, no transposition, Tesla K40c — Figure 10's common case. *)

val space : ?settings:settings -> unit -> Beast_core.Space.t
(** The full search space. On the unscaled K40c this is astronomically
    large (the paper's generated-C sweep took 264 s on a Xeon); pass a
    device through {!Device.scale} for interactive work. *)

val space_divisor_opt : ?settings:settings -> unit -> Beast_core.Space.t
(** The same space with the dominant enumeration cost removed: instead of
    scanning the full [dim_m_a x dim_n_a] (and b) grids and letting
    [cant_reshape_a1]/[b1] reject all non-factorizations of
    threads-per-block (by far the most-fired constraints in the plain
    space), the read-grid dimensions iterate over a {e closure iterator
    of divisor pairs} and the partner dimension becomes a derived
    variable. Demonstrates the paper's closure iterators carrying
    search-space knowledge; produces exactly the same survivors (test- and
    bench-verified) with orders of magnitude fewer loop iterations. The
    price is C-translatability: the divisor iterators are dynamic
    closures, so {!Beast_core.Codegen_c} rejects this variant. *)

val iterator_names : string list
(** The 15 dimensions, in Figure 11's order. *)

val constraint_names : (string * Beast_core.Space.constraint_class) list
(** The 12 constraints with their classes (Figures 13–15). *)

val decode : settings -> Beast_core.Expr.lookup -> Perf_model.gemm_config
(** Decode a surviving point into a performance-model configuration. *)

val objective : settings -> Beast_core.Expr.lookup -> float
(** Tuner objective: modeled GFLOP/s of the surviving point
    ({!Perf_model.gflops} on the settings' device). *)

val objective_sim : settings -> Beast_core.Expr.lookup -> float
(** Same, scored by the {!Sim} warp-scheduling simulator instead. *)
