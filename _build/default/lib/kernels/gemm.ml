open Beast_core
open Beast_gpu
open Expr.Infix

type settings = {
  device : Device.t;
  precision : Device.precision;
  arithmetic : Device.arithmetic;
  trans_a : bool;
  trans_b : bool;
}

let default_settings =
  {
    device = Device.tesla_k40c;
    precision = Device.Double;
    arithmetic = Device.Real;
    trans_a = false;
    trans_b = false;
  }

let iterator_names =
  [
    "dim_m"; "dim_n"; "blk_m"; "blk_n"; "blk_k"; "dim_vec"; "vec_mul";
    "dim_m_a"; "dim_n_a"; "dim_m_b"; "dim_n_b"; "tex_a"; "tex_b";
    "shmem_l1"; "shmem_banks";
  ]

let constraint_names =
  [
    ("over_max_threads", Space.Hard);
    ("over_max_regs_per_thread", Space.Hard);
    ("over_max_regs_per_block", Space.Hard);
    ("over_max_shmem", Space.Hard);
    ("low_occupancy_regs", Space.Soft);
    ("low_occupancy_shmem", Space.Soft);
    ("low_fmas", Space.Soft);
    ("partial_warps", Space.Soft);
    ("cant_reshape_a1", Space.Correctness);
    ("cant_reshape_b1", Space.Correctness);
    ("cant_reshape_a2", Space.Correctness);
    ("cant_reshape_b2", Space.Correctness);
  ]

let v = Expr.var
let i = Expr.int

(* Closure iterator over the divisors d of threads_per_block admissible
   as the first read-grid dimension: d within its range bound and the
   cofactor within the partner bound. Replaces the full grid scan that
   cant_reshape_a1/b1 would otherwise reject point by point. *)
let divisor_pairs_iter ~bound_m ~bound_n =
  (* The divisor set only depends on (threads, bound_m, bound_n), which
     repeat across millions of loop entries: memoize per key. *)
  let memo : (int * int * int, Value.t list) Hashtbl.t = Hashtbl.create 256 in
  Iter.of_list_fn
    ~deps:[ "threads_per_block"; "blk_m"; "blk_k"; "dim_vec" ]
    (fun lookup ->
      let threads = Value.to_int (lookup "threads_per_block") in
      let bm = Value.to_int (bound_m lookup)
      and bn = Value.to_int (bound_n lookup) in
      let key = (threads, bm, bn) in
      match Hashtbl.find_opt memo key with
      | Some vs -> vs
      | None ->
        (* O(sqrt threads): collect both members of each divisor pair. *)
        let rec collect d acc =
          if d * d > threads then acc
          else if threads mod d = 0 then begin
            let acc = d :: acc in
            let acc =
              let e = threads / d in
              if e <> d then e :: acc else acc
            in
            collect (d + 1) acc
          end
          else collect (d + 1) acc
        in
        let vs =
          collect 1 []
          |> List.filter (fun d -> d <= bm && threads / d <= bn)
          |> List.sort Int.compare
          |> List.map Value.int
        in
        Hashtbl.replace memo key vs;
        vs)

let build_space ~divisor_opt ~settings () =
  let d = settings.device in
  let caps = Capability.lookup_exn d in
  let sp = Space.create ~name:"gemm" () in
  (* ---- Figure 10: global settings ---- *)
  Space.setting_s sp "precision" (Device.precision_name settings.precision);
  Space.setting_s sp "arithmetic" (Device.arithmetic_name settings.arithmetic);
  Space.setting_i sp "trans_a" (if settings.trans_a then 1 else 0);
  Space.setting_i sp "trans_b" (if settings.trans_b then 1 else 0);
  (* ---- Figure 8: device query ---- *)
  Space.setting_i sp "max_threads_per_block" d.Device.max_threads_per_block;
  Space.setting_i sp "max_threads_dim_x" d.Device.max_threads_dim_x;
  Space.setting_i sp "max_threads_dim_y" d.Device.max_threads_dim_y;
  Space.setting_i sp "max_shared_mem_per_block" d.Device.max_shared_mem_per_block;
  Space.setting_i sp "warp_size" d.Device.warp_size;
  Space.setting_i sp "max_regs_per_block" d.Device.max_regs_per_block;
  Space.setting_i sp "max_threads_per_multi_processor"
    d.Device.max_threads_per_multi_processor;
  Space.setting_i sp "max_registers_per_multi_processor"
    d.Device.max_registers_per_multi_processor;
  Space.setting_i sp "max_shmem_per_multi_processor"
    d.Device.max_shmem_per_multi_processor;
  Space.setting_i sp "float_size" d.Device.float_size;
  (* ---- Figure 9: compute-capability lookup ---- *)
  Space.setting_i sp "max_blocks_per_multi_processor" caps.Capability.max_blocks_per_mp;
  Space.setting_i sp "max_warps_per_multi_processor" caps.Capability.max_warps_per_mp;
  Space.setting_i sp "max_registers_per_thread" caps.Capability.max_regs_per_thread;
  (* ---- Figure 14's two tunables ---- *)
  Space.setting_i sp "min_threads_per_multi_processor" 256;
  Space.setting_i sp "min_fmas_per_load" 2;
  let dbl = v "precision" =: Expr.string "double" in
  let cplx = v "arithmetic" =: Expr.string "complex" in
  let ta = v "trans_a" <>: i 0 in
  let tb = v "trans_b" <>: i 0 in
  (* ---- Figure 11: the 15 iterators ---- *)
  Space.iterator sp "dim_m" (Iter.range (i 1) (v "max_threads_dim_x" +: i 1));
  Space.iterator sp "dim_n" (Iter.range (i 1) (v "max_threads_dim_y" +: i 1));
  Space.iterator sp "blk_m"
    (Iter.range ~step:(v "dim_m") (v "dim_m") (v "max_threads_dim_x" +: i 1));
  Space.iterator sp "blk_n"
    (Iter.range ~step:(v "dim_n") (v "dim_n") (v "max_threads_dim_y" +: i 1));
  Space.iterator sp "blk_k"
    (Iter.range (i 1)
       (Expr.min_ (v "max_threads_dim_x") (v "max_threads_dim_y") +: i 1));
  (* dim_vec per precision/arithmetic: double/real -> {1,2};
     double/complex -> {1}; single/real -> {1,4}; single/complex -> {1,2}.
     The settings are constants, so the conditionals fold at planning. *)
  Space.iterator sp "dim_vec"
    (Iter.range
       ~step:(Expr.if_ (not_ dbl &&: not_ cplx) (i 3) (i 1))
       (i 1)
       (Expr.if_ dbl (Expr.if_ cplx (i 2) (i 3)) (Expr.if_ cplx (i 3) (i 5))));
  Space.iterator sp "vec_mul"
    (Iter.range (i 0) (Expr.if_ (v "dim_vec" =: i 1) (i 1) (i 2)));
  let bound_m_a lookup =
    Value.div
      (if settings.trans_a then lookup "blk_k" else lookup "blk_m")
      (lookup "dim_vec")
  in
  let bound_n_a lookup =
    if settings.trans_a then lookup "blk_m" else lookup "blk_k"
  in
  let bound_m_b lookup =
    Value.div
      (if settings.trans_b then lookup "blk_n" else lookup "blk_k")
      (lookup "dim_vec")
  in
  let bound_n_b lookup =
    if settings.trans_b then lookup "blk_k" else lookup "blk_n"
  in
  if divisor_opt then begin
    Space.iterator sp "dim_m_a" (divisor_pairs_iter ~bound_m:bound_m_a ~bound_n:bound_n_a);
    Space.derived sp "dim_n_a" (v "threads_per_block" /: v "dim_m_a");
    Space.iterator sp "dim_m_b" (divisor_pairs_iter ~bound_m:bound_m_b ~bound_n:bound_n_b);
    Space.derived sp "dim_n_b" (v "threads_per_block" /: v "dim_m_b")
  end
  else begin
    Space.iterator sp "dim_m_a"
      (Iter.range (i 1)
         (Expr.if_ ta
            ((v "blk_k" /: v "dim_vec") +: i 1)
            ((v "blk_m" /: v "dim_vec") +: i 1)));
    Space.iterator sp "dim_n_a"
      (Iter.range (i 1)
         (Expr.if_ ta (v "blk_m" +: i 1) (v "blk_k" +: i 1)));
    Space.iterator sp "dim_m_b"
      (Iter.range (i 1)
         (Expr.if_ tb
            ((v "blk_n" /: v "dim_vec") +: i 1)
            ((v "blk_k" /: v "dim_vec") +: i 1)));
    Space.iterator sp "dim_n_b"
      (Iter.range (i 1)
         (Expr.if_ tb (v "blk_k" +: i 1) (v "blk_n" +: i 1)))
  end;
  Space.iterator sp "tex_a" (Iter.range_i 0 2);
  Space.iterator sp "tex_b" (Iter.range_i 0 2);
  Space.iterator sp "shmem_l1" (Iter.range_i 0 2);
  Space.iterator sp "shmem_banks" (Iter.range_i 0 2);
  (* ---- Figure 12: derived variables ---- *)
  let times_if cond k e = Expr.if_ cond (e *: i k) e in
  Space.derived sp "threads_per_block" (v "dim_m" *: v "dim_n");
  Space.derived sp "thr_m" (v "blk_m" /: v "dim_m");
  Space.derived sp "thr_n" (v "blk_n" /: v "dim_n");
  Space.derived sp "regs_per_thread"
    (times_if cplx 2 (times_if dbl 2 (v "thr_m" *: v "thr_n")));
  Space.derived sp "regs_per_block" (v "regs_per_thread" *: v "threads_per_block");
  Space.derived sp "shmem_per_block"
    (times_if cplx 2
       (times_if dbl 2 (v "blk_k" *: (v "blk_m" +: v "blk_n") *: v "float_size")));
  Space.derived sp "max_blocks_by_regs"
    (Expr.min_
       (v "max_registers_per_multi_processor" /: v "regs_per_block")
       (v "max_blocks_per_multi_processor"));
  Space.derived sp "max_threads_by_regs"
    (v "max_blocks_by_regs" *: v "threads_per_block");
  Space.derived sp "max_blocks_by_shmem"
    (Expr.min_
       (v "max_shmem_per_multi_processor" /: v "shmem_per_block")
       (v "max_blocks_per_multi_processor"));
  Space.derived sp "max_threads_by_shmem"
    (v "max_blocks_by_shmem" *: v "threads_per_block");
  Space.derived sp "loads_per_thread"
    ((v "thr_m" +: v "thr_n") *: v "blk_k" /: v "dim_vec");
  Space.derived sp "loads_per_block"
    (times_if cplx 2 (v "loads_per_thread" *: v "threads_per_block"));
  Space.derived sp "fmas_per_thread" (v "thr_m" *: v "thr_n" *: v "blk_k");
  Space.derived sp "fmas_per_block"
    (times_if cplx 4 (v "fmas_per_thread" *: v "threads_per_block"));
  (* ---- Figure 13: hard constraints ---- *)
  Space.constrain sp ~cls:Space.Hard "over_max_threads"
    (v "threads_per_block" >: v "max_threads_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_regs_per_thread"
    (v "regs_per_thread" >: v "max_registers_per_thread");
  Space.constrain sp ~cls:Space.Hard "over_max_regs_per_block"
    (v "regs_per_block" >: v "max_regs_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_shmem"
    (v "shmem_per_block" >: v "max_shared_mem_per_block");
  (* ---- Figure 14: soft constraints ---- *)
  Space.constrain sp ~cls:Space.Soft "low_occupancy_regs"
    (v "max_threads_by_regs" <: v "min_threads_per_multi_processor");
  Space.constrain sp ~cls:Space.Soft "low_occupancy_shmem"
    (v "max_threads_by_shmem" <: v "min_threads_per_multi_processor");
  (* Figure 14 writes fmas_per_block / loads_per_block < min_fmas_per_load;
     the multiplied form is equivalent for positive loads and also covers
     loads_per_block = 0 (possible when dim_vec exceeds the tiny tile's
     load count, where Python would raise ZeroDivisionError). *)
  Space.constrain sp ~cls:Space.Soft "low_fmas"
    (v "fmas_per_block" <: (v "min_fmas_per_load" *: v "loads_per_block"));
  Space.constrain sp ~cls:Space.Soft "partial_warps"
    (v "threads_per_block" %: v "warp_size" <>: i 0);
  (* ---- Figure 15: correctness constraints ---- *)
  if not divisor_opt then begin
    Space.constrain sp ~cls:Space.Correctness "cant_reshape_a1"
      (v "dim_m_a" *: v "dim_n_a" <>: v "threads_per_block");
    Space.constrain sp ~cls:Space.Correctness "cant_reshape_b1"
      (v "dim_m_b" *: v "dim_n_b" <>: v "threads_per_block")
  end;
  Space.constrain sp ~cls:Space.Correctness "cant_reshape_a2"
    (Expr.if_ ta
       ((v "blk_k" %: (v "dim_m_a" *: v "dim_vec") <>: i 0)
       ||: (v "blk_m" %: v "dim_n_a" <>: i 0))
       ((v "blk_m" %: (v "dim_m_a" *: v "dim_vec") <>: i 0)
       ||: (v "blk_k" %: v "dim_n_a" <>: i 0)));
  Space.constrain sp ~cls:Space.Correctness "cant_reshape_b2"
    (Expr.if_ tb
       ((v "blk_n" %: (v "dim_m_b" *: v "dim_vec") <>: i 0)
       ||: (v "blk_k" %: v "dim_n_b" <>: i 0))
       ((v "blk_k" %: (v "dim_m_b" *: v "dim_vec") <>: i 0)
       ||: (v "blk_n" %: v "dim_n_b" <>: i 0)));
  sp

let space ?(settings = default_settings) () =
  build_space ~divisor_opt:false ~settings ()

let space_divisor_opt ?(settings = default_settings) () =
  build_space ~divisor_opt:true ~settings ()

let decode settings lookup =
  Perf_model.config_of_lookup ~precision:settings.precision
    ~arithmetic:settings.arithmetic ~trans_a:settings.trans_a
    ~trans_b:settings.trans_b lookup

let objective settings lookup =
  Perf_model.gflops settings.device (decode settings lookup)

let objective_sim settings lookup =
  Sim.gflops settings.device (decode settings lookup)
