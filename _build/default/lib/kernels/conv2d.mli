(** A 2D direct-convolution tuning space — not one of the paper's
    kernels, but the worked example of doc/TUTORIAL.md showing how a
    downstream user builds a new space, model and tuner run with this
    library. It exercises the same ingredients as the GEMM model
    problem: a thread-grid shape, a block tile, staging choices, and
    constraints in all three classes. *)

open Beast_gpu

type workload = {
  device : Device.t;
  precision : Device.precision;
  height : int;
  width : int;
  channels : int;  (** input channels *)
  filters : int;  (** output channels *)
  kernel : int;  (** square filter size (R = S) *)
}

val default_workload : workload
(** 256x256, 64 -> 64 channels, 3x3, single precision on the K40c. *)

val space : ?workload:workload -> unit -> Beast_core.Space.t
(** Tunables: [tile_h] x [tile_w] (output tile per block),
    [dim_x] x [dim_y] (thread grid), [chans_per_iter] (input-channel
    blocking), [stage_input], [stage_weights], [unroll_rs]. *)

type config = {
  tile_h : int;
  tile_w : int;
  dim_x : int;
  dim_y : int;
  chans_per_iter : int;
  stage_input : bool;
  stage_weights : bool;
  unroll_rs : bool;
}

val decode : Beast_core.Expr.lookup -> config
val total_flops : workload -> float
val shmem_per_block : workload -> config -> int
val gflops : workload -> config -> float
val objective : workload -> Beast_core.Expr.lookup -> float
