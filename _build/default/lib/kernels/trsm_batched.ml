open Beast_core
open Beast_gpu
open Expr.Infix

type workload = {
  device : Device.t;
  precision : Device.precision;
  n : int;
  nrhs : int;
  batch : int;
}

let default_workload =
  {
    device = Device.tesla_k40c;
    precision = Device.Double;
    n = 16;
    nrhs = 16;
    batch = 10_000;
  }

type config = {
  dim_x : int;
  batch_per_block : int;
  use_shmem : bool;
  unroll : int;
}

let v = Expr.var
let i = Expr.int

let space ?(workload = default_workload) () =
  let w = workload in
  let d = w.device in
  let sp = Space.create ~name:"trsm_batched" () in
  Space.setting_i sp "n" w.n;
  Space.setting_i sp "nrhs" w.nrhs;
  Space.setting_i sp "element_size"
    (Device.element_size d w.precision Device.Real);
  Space.setting_i sp "max_threads_per_block" d.Device.max_threads_per_block;
  Space.setting_i sp "max_shared_mem_per_block" d.Device.max_shared_mem_per_block;
  Space.setting_i sp "warp_size" d.Device.warp_size;
  Space.iterator sp "dim_x" (Iter.range (i 1) (i 129));
  Space.iterator sp "batch_per_block" (Iter.range (i 1) (i 33));
  Space.iterator sp "use_shmem" (Iter.range_i 0 2);
  Space.iterator sp "unroll" (Iter.ints [ 1; 2; 4; 8 ]);
  Space.derived sp "threads_per_block" (v "dim_x" *: v "batch_per_block");
  (* Staging the whole triangle of L in shared memory. *)
  Space.derived sp "shmem_per_block"
    (Expr.if_
       (v "use_shmem" <>: i 0)
       (v "batch_per_block" *: v "n" *: (v "n" +: i 1) /: i 2 *: v "element_size")
       (i 0));
  Space.constrain sp ~cls:Space.Hard "over_max_threads"
    (v "threads_per_block" >: v "max_threads_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_shmem"
    (v "shmem_per_block" >: v "max_shared_mem_per_block");
  Space.constrain sp ~cls:Space.Soft "partial_warps"
    (v "threads_per_block" %: v "warp_size" <>: i 0);
  Space.constrain sp ~cls:Space.Soft "idle_threads" (v "dim_x" >: v "nrhs");
  sp

let decode lookup =
  let geti name = Value.to_int (lookup name) in
  {
    dim_x = geti "dim_x";
    batch_per_block = geti "batch_per_block";
    use_shmem = geti "use_shmem" <> 0;
    unroll = geti "unroll";
  }

let flops_per_matrix ~n ~nrhs = float_of_int (n * n * nrhs)

(* Forward substitution: n serial row steps; row j updates the remaining
   (n - j - 1) x nrhs block with one FMA per element, split across the
   dim_x threads that each own right-hand sides. *)
let gflops w c =
  let d = w.device in
  let threads = c.dim_x * c.batch_per_block in
  let regs = 18 + (2 * c.unroll) + (if c.use_shmem then 4 else 8) in
  let shmem =
    if c.use_shmem then
      c.batch_per_block * (w.n * (w.n + 1) / 2)
      * Device.element_size d w.precision Device.Real
    else 0
  in
  let usage =
    {
      Occupancy.threads_per_block = threads;
      regs_per_thread = regs;
      shmem_per_block = shmem;
    }
  in
  match Occupancy.calculate d usage with
  | Error _ -> 0.0
  | Ok occ ->
    let active = occ.Occupancy.active_blocks in
    if active = 0 then 0.0
    else begin
      let in_flight = active * c.batch_per_block in
      let dp_cost =
        match w.precision with
        | Device.Double -> 1.0 /. d.Device.fp64_ratio
        | Device.Single -> 1.0
      in
      let fma_issue_cost = dp_cost *. (if c.use_shmem then 1.0 else 2.0) in
      let row_latency = if c.use_shmem then 180.0 else 640.0 in
      let fdim_x = float_of_int c.dim_x in
      let issue = ref 0.0 in
      for j = 0 to w.n - 1 do
        let remaining = w.n - j - 1 in
        issue :=
          !issue
          +. Float.of_int ((w.nrhs + c.dim_x - 1) / c.dim_x)
          +. (float_of_int (remaining * w.nrhs) /. fdim_x *. fma_issue_cost)
      done;
      let loop_overhead = float_of_int w.n *. 3.0 /. float_of_int c.unroll in
      let w_issue = !issue +. loop_overhead in
      let w_latency = float_of_int w.n *. row_latency in
      let lane_time =
        w_issue *. fdim_x *. float_of_int in_flight
        /. float_of_int d.Device.cores_per_multi_processor
      in
      let round_cycles = Float.max lane_time (w_issue +. w_latency) in
      let rounds =
        (w.batch + (in_flight * d.Device.n_multi_processors) - 1)
        / (in_flight * d.Device.n_multi_processors)
      in
      let clock_hz = float_of_int d.Device.clock_mhz *. 1e6 in
      let compute_time_s = float_of_int rounds *. round_cycles /. clock_hz in
      (* DRAM roofline: L read once, B read and written. *)
      let es = float_of_int (Device.element_size d w.precision Device.Real) in
      let bytes_per_matrix =
        (float_of_int ((w.n * (w.n + 1) / 2) + (2 * w.n * w.nrhs)) *. es)
        +. 64.0
      in
      let coalesce_eff = Float.min 1.0 (float_of_int w.n /. 64.0) in
      let mem_time_s =
        float_of_int w.batch *. bytes_per_matrix
        /. (d.Device.mem_bandwidth_gbs *. 1e9 *. coalesce_eff)
      in
      let time_s = Float.max compute_time_s mem_time_s in
      let raw =
        float_of_int w.batch *. flops_per_matrix ~n:w.n ~nrhs:w.nrhs /. time_s
        /. 1e9
      in
      (* The solve's dependent rows cap utilization harder than the
         factorization's rank-1 updates. *)
      Float.min raw (0.5 *. Device.peak_gflops d w.precision)
    end

let objective w lookup = gflops w (decode lookup)

let baseline_gflops w =
  let c =
    {
      dim_x = min 64 (max 16 w.nrhs);
      batch_per_block = 1;
      use_shmem = false;
      unroll = 1;
    }
  in
  gflops w c *. 0.55
