open Beast_core
open Beast_gpu
open Expr.Infix

type workload = {
  device : Device.t;
  precision : Device.precision;
  height : int;
  width : int;
  channels : int;
  filters : int;
  kernel : int;
}

let default_workload =
  {
    device = Device.tesla_k40c;
    precision = Device.Single;
    height = 256;
    width = 256;
    channels = 64;
    filters = 64;
    kernel = 3;
  }

type config = {
  tile_h : int;
  tile_w : int;
  dim_x : int;
  dim_y : int;
  chans_per_iter : int;
  stage_input : bool;
  stage_weights : bool;
  unroll_rs : bool;
}

let v = Expr.var
let i = Expr.int

let element_size w = Device.element_size w.device w.precision Device.Real

let space ?(workload = default_workload) () =
  let w = workload in
  let d = w.device in
  let sp = Space.create ~name:"conv2d" () in
  Space.setting_i sp "kernel" w.kernel;
  Space.setting_i sp "channels" w.channels;
  Space.setting_i sp "element_size" (element_size w);
  Space.setting_i sp "max_threads_per_block" d.Device.max_threads_per_block;
  Space.setting_i sp "max_shared_mem_per_block" d.Device.max_shared_mem_per_block;
  Space.setting_i sp "warp_size" d.Device.warp_size;
  Space.iterator sp "tile_h" (Iter.ints [ 1; 2; 4; 8; 16; 32 ]);
  Space.iterator sp "tile_w" (Iter.ints [ 4; 8; 16; 32; 64 ]);
  Space.iterator sp "dim_x" (Iter.range ~step:(i 1) (i 1) (i 33));
  Space.iterator sp "dim_y" (Iter.range (i 1) (i 17));
  Space.iterator sp "chans_per_iter" (Iter.ints [ 1; 2; 4; 8; 16 ]);
  Space.iterator sp "stage_input" (Iter.range_i 0 2);
  Space.iterator sp "stage_weights" (Iter.range_i 0 2);
  Space.iterator sp "unroll_rs" (Iter.range_i 0 2);
  Space.derived sp "threads_per_block" (v "dim_x" *: v "dim_y");
  Space.derived sp "halo_h" (v "tile_h" +: v "kernel" -: i 1);
  Space.derived sp "halo_w" (v "tile_w" +: v "kernel" -: i 1);
  Space.derived sp "shmem_per_block"
    ((Expr.if_ (v "stage_input" <>: i 0)
        (v "halo_h" *: v "halo_w" *: v "chans_per_iter")
        (i 0)
     +: Expr.if_ (v "stage_weights" <>: i 0)
          (v "kernel" *: v "kernel" *: v "chans_per_iter")
          (i 0))
    *: v "element_size");
  Space.constrain sp ~cls:Space.Hard "over_max_threads"
    (v "threads_per_block" >: v "max_threads_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_shmem"
    (v "shmem_per_block" >: v "max_shared_mem_per_block");
  Space.constrain sp ~cls:Space.Soft "partial_warps"
    (v "threads_per_block" %: v "warp_size" <>: i 0);
  Space.constrain sp ~cls:Space.Soft "thin_work"
    (v "tile_h" *: v "tile_w" <: v "threads_per_block");
  Space.constrain sp ~cls:Space.Correctness "grid_tiles_h"
    (v "tile_h" %: v "dim_y" <>: i 0);
  Space.constrain sp ~cls:Space.Correctness "grid_tiles_w"
    (v "tile_w" %: v "dim_x" <>: i 0);
  Space.constrain sp ~cls:Space.Correctness "chans_divide"
    (v "channels" %: v "chans_per_iter" <>: i 0);
  sp

let decode lookup =
  let geti name = Value.to_int (lookup name) in
  {
    tile_h = geti "tile_h";
    tile_w = geti "tile_w";
    dim_x = geti "dim_x";
    dim_y = geti "dim_y";
    chans_per_iter = geti "chans_per_iter";
    stage_input = geti "stage_input" <> 0;
    stage_weights = geti "stage_weights" <> 0;
    unroll_rs = geti "unroll_rs" <> 0;
  }

let total_flops w =
  2.0
  *. float_of_int (w.height * w.width)
  *. float_of_int (w.channels * w.filters)
  *. float_of_int (w.kernel * w.kernel)

let shmem_per_block w c =
  let halo_h = c.tile_h + w.kernel - 1 and halo_w = c.tile_w + w.kernel - 1 in
  (((if c.stage_input then halo_h * halo_w * c.chans_per_iter else 0)
   + if c.stage_weights then w.kernel * w.kernel * c.chans_per_iter else 0)
  * element_size w)

(* Roofline + occupancy, in the style of the GEMM model: staged tiles
   amortize the halo reads, unstaged ones pay them per output point. *)
let gflops w c =
  let d = w.device in
  let threads = c.dim_x * c.dim_y in
  if threads < 1 || c.tile_h mod c.dim_y <> 0 || c.tile_w mod c.dim_x <> 0 then
    0.0
  else begin
    let regs =
      18
      + (c.tile_h / c.dim_y * (c.tile_w / c.dim_x))
      + (if c.unroll_rs then w.kernel * w.kernel / 2 else 2)
    in
    let usage =
      {
        Occupancy.threads_per_block = threads;
        regs_per_thread = regs;
        shmem_per_block = shmem_per_block w c;
      }
    in
    match Occupancy.calculate d usage with
    | Error _ -> 0.0
    | Ok occ ->
      let es = float_of_int (element_size w) in
      let halo_h = float_of_int (c.tile_h + w.kernel - 1) in
      let halo_w = float_of_int (c.tile_w + w.kernel - 1) in
      let tile = float_of_int (c.tile_h * c.tile_w) in
      (* Bytes of input traffic per output element. *)
      let input_bytes_per_out =
        if c.stage_input then halo_h *. halo_w /. tile *. es
        else float_of_int (w.kernel * w.kernel) *. es
      in
      let weight_bytes_per_out =
        if c.stage_weights then 0.05 *. es else 0.4 *. es
      in
      let flops_per_out =
        2.0 *. float_of_int (w.kernel * w.kernel * w.channels)
      in
      let bytes_per_flop =
        (((input_bytes_per_out +. weight_bytes_per_out)
         *. float_of_int w.channels)
        +. (2.0 *. es))
        /. flops_per_out
      in
      let memory = d.Device.mem_bandwidth_gbs /. bytes_per_flop in
      let knee = 0.45 in
      let occ_eff = Float.min 1.0 (occ.Occupancy.occupancy /. knee) in
      let unroll_eff = if c.unroll_rs then 1.0 else 0.8 in
      let cpi_eff =
        (* channel blocking amortizes addressing *)
        let f = float_of_int c.chans_per_iter in
        f /. (f +. 1.0) *. 2.0 |> Float.min 1.0
      in
      let peak = Device.peak_gflops d w.precision in
      let compute = peak *. 0.8 *. occ_eff *. unroll_eff *. cpi_eff in
      Float.min compute memory
  end

let objective w lookup = gflops w (decode lookup)
