open Beast_core
open Expr.Infix

(* Figure 3's prime generator, including its initial yields of 1 and 2. *)
let primes_iter =
  Iter.closure ~deps:[ "max_size" ] (fun env ->
      let max_v = Value.to_int (env "max_size") in
      let rec next old_primes n () =
        if n > max_v then Seq.Nil
        else if List.exists (fun p -> n mod p = 0) old_primes then
          next old_primes (n + 2) ()
        else Seq.Cons (Value.Int n, next (n :: old_primes) (n + 2))
      in
      if max_v < 1 then Seq.empty
      else if max_v < 2 then Seq.return (Value.Int 1)
      else fun () ->
        Seq.Cons (Value.Int 1, fun () -> Seq.Cons (Value.Int 2, next [] 3)))

let divisors_iter ~of_ =
  Iter.closure ~deps:[ of_ ] (fun env ->
      let n = Value.to_int (env of_) in
      let rec go d () =
        if d > n then Seq.Nil
        else if n mod d = 0 then Seq.Cons (Value.Int d, go (d + 1))
        else go (d + 1) ()
      in
      if n < 1 then Seq.empty else go 1)

let v = Expr.var
let i = Expr.int

let space ?(max_size = 64) () =
  let sp = Space.create ~name:"prime_fft" () in
  Space.setting_i sp "max_size" max_size;
  Space.iterator sp "size" (Iter.filter (fun p -> Value.to_int p >= 3) primes_iter);
  Space.iterator sp "strategy" (Iter.range_i 0 2);
  (* Rader reduces a prime-size DFT to a convolution of length size-1;
     the radix enumerates that length's divisors - a data-dependent
     iterator only a closure can express. *)
  Space.derived sp "conv_len" (v "size" -: i 1);
  Space.iterator sp "radix" (divisors_iter ~of_:"conv_len");
  Space.iterator sp "twiddle_in_shmem" (Iter.range_i 0 2);
  (* A radix of 1 or of the full length is a degenerate factorization;
     direct strategy needs a proper divisor. *)
  Space.constrain sp ~cls:Space.Correctness "degenerate_radix"
    (v "strategy" =: i 1
    &&: (v "radix" =: i 1 ||: (v "radix" =: v "conv_len")));
  (* Padded strategy ignores the radix: keep only radix=1 to avoid
     duplicate variants. *)
  Space.constrain sp ~cls:Space.Correctness "padded_ignores_radix"
    (v "strategy" =: i 0 &&: (v "radix" <>: i 1));
  sp

type config = {
  size : int;
  strategy : int;
  radix : int;
  twiddle_in_shmem : bool;
}

let decode lookup =
  let geti name = Value.to_int (lookup name) in
  {
    size = geti "size";
    strategy = geti "strategy";
    radix = geti "radix";
    twiddle_in_shmem = geti "twiddle_in_shmem" <> 0;
  }

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* Toy cost: padded Rader does three power-of-two FFTs of length
   >= 2(p-1)-1; direct strategy does a mixed-radix convolution whose cost
   degrades when p-1 / radix is rough. *)
let modeled_time_us c =
  let p = c.size in
  let conv = p - 1 in
  let shmem_factor = if c.twiddle_in_shmem then 0.85 else 1.0 in
  let cost =
    if c.strategy = 0 then begin
      let m = next_pow2 ((2 * conv) - 1) in
      3.0 *. float_of_int m *. log (float_of_int (max 2 m))
    end
    else begin
      let rest = conv / c.radix in
      let stage_cost r n = float_of_int (n * r) in
      (* radix-r first stage, then whatever remains as a generic DFT *)
      stage_cost c.radix conv +. stage_cost rest conv
    end
  in
  cost *. shmem_factor /. 100.0

let objective lookup = 1.0 /. modeled_time_us (decode lookup)
