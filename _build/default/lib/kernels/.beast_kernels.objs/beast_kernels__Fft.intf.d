lib/kernels/fft.mli: Beast_core
