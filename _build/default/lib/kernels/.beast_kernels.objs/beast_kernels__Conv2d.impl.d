lib/kernels/conv2d.ml: Beast_core Beast_gpu Device Expr Float Iter Occupancy Space Value
