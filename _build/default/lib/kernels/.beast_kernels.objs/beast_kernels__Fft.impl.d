lib/kernels/fft.ml: Beast_core Expr Iter List Seq Space Value
