lib/kernels/gemm.mli: Beast_core Beast_gpu Device Perf_model
