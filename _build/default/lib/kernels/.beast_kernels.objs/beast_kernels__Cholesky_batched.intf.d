lib/kernels/cholesky_batched.mli: Beast_core Beast_gpu Device
