lib/kernels/lu_batched.ml: Beast_core Beast_gpu Device Expr Float Iter Occupancy Space Value
