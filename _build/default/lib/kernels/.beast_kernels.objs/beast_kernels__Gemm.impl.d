lib/kernels/gemm.ml: Beast_core Beast_gpu Capability Device Expr Hashtbl Int Iter List Perf_model Sim Space Value
