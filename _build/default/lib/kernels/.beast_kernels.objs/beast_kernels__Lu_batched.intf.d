lib/kernels/lu_batched.mli: Beast_core Beast_gpu Device
