lib/kernels/conv2d.mli: Beast_core Beast_gpu Device
