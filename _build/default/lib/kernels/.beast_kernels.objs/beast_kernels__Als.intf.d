lib/kernels/als.mli: Beast_core Beast_gpu Device
