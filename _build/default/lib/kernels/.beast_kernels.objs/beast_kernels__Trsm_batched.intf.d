lib/kernels/trsm_batched.mli: Beast_core Beast_gpu Device
