open Beast_core
open Beast_gpu
open Expr.Infix

type workload = {
  device : Device.t;
  precision : Device.precision;
  n : int;
  batch : int;
}

let default_workload =
  {
    device = Device.tesla_k40c;
    precision = Device.Double;
    n = 16;
    batch = 10_000;
  }

type config = {
  dim_x : int;
  batch_per_block : int;
  blk : int;
  use_shmem : bool;
  unroll : int;
  pivot_tree : bool;
}

let v = Expr.var
let i = Expr.int

let element_size w = Device.element_size w.device w.precision Device.Real

let space ?(workload = default_workload) () =
  let w = workload in
  let d = w.device in
  let sp = Space.create ~name:"lu_batched" () in
  Space.setting_i sp "n" w.n;
  Space.setting_i sp "element_size" (element_size w);
  Space.setting_i sp "max_threads_per_block" d.Device.max_threads_per_block;
  Space.setting_i sp "max_shared_mem_per_block" d.Device.max_shared_mem_per_block;
  Space.setting_i sp "warp_size" d.Device.warp_size;
  Space.iterator sp "dim_x" (Iter.range (i 1) (i 129));
  Space.iterator sp "batch_per_block" (Iter.range (i 1) (i 33));
  Space.iterator sp "blk" (Iter.range (i 1) (v "n" +: i 1));
  Space.iterator sp "use_shmem" (Iter.range_i 0 2);
  Space.iterator sp "unroll" (Iter.ints [ 1; 2; 4; 8 ]);
  Space.iterator sp "pivot_tree" (Iter.range_i 0 2);
  Space.derived sp "threads_per_block" (v "dim_x" *: v "batch_per_block");
  (* LU stages the full square, not a triangle. *)
  Space.derived sp "shmem_per_block"
    (Expr.if_
       (v "use_shmem" <>: i 0)
       (v "batch_per_block" *: v "n" *: v "blk" *: v "element_size")
       (i 0));
  Space.constrain sp ~cls:Space.Hard "over_max_threads"
    (v "threads_per_block" >: v "max_threads_per_block");
  Space.constrain sp ~cls:Space.Hard "over_max_shmem"
    (v "shmem_per_block" >: v "max_shared_mem_per_block");
  Space.constrain sp ~cls:Space.Soft "partial_warps"
    (v "threads_per_block" %: v "warp_size" <>: i 0);
  Space.constrain sp ~cls:Space.Soft "idle_threads" (v "dim_x" >: v "n");
  (* A tree pivot reduction needs a power-of-two thread count along the
     column: x & (x-1) = 0, written without bit operators. *)
  Space.constrain_f sp ~cls:Space.Correctness "tree_needs_pow2"
    ~deps:[ "pivot_tree"; "dim_x" ]
    (fun lookup ->
      let tree = Value.to_int (lookup "pivot_tree") <> 0 in
      let x = Value.to_int (lookup "dim_x") in
      Value.Bool (tree && x land (x - 1) <> 0));
  Space.constrain sp ~cls:Space.Correctness "blk_divides"
    (v "n" %: v "blk" <>: i 0);
  Space.constrain sp ~cls:Space.Correctness "blk_over_dim_x"
    (v "blk" >: v "dim_x");
  sp

let decode lookup =
  let geti name = Value.to_int (lookup name) in
  {
    dim_x = geti "dim_x";
    batch_per_block = geti "batch_per_block";
    blk = geti "blk";
    use_shmem = geti "use_shmem" <> 0;
    unroll = geti "unroll";
    pivot_tree = geti "pivot_tree" <> 0;
  }

let flops_per_matrix n =
  let fn = float_of_int n in
  (2.0 *. fn *. fn *. fn /. 3.0) -. (fn *. fn /. 2.0) -. (fn /. 6.0)

(* Same execution model as the Cholesky kernel plus per-column pivoting:
   a max-reduction over the remaining column (serial scan or log-depth
   tree) and a row swap. *)
let gflops w c =
  let d = w.device in
  let threads = c.dim_x * c.batch_per_block in
  let regs =
    24 + (2 * c.unroll)
    + (if c.use_shmem then 4 else 8)
    + if c.pivot_tree then 4 else 0
  in
  let shmem =
    if c.use_shmem then c.batch_per_block * w.n * c.blk * element_size w else 0
  in
  let usage =
    {
      Occupancy.threads_per_block = threads;
      regs_per_thread = regs;
      shmem_per_block = shmem;
    }
  in
  match Occupancy.calculate d usage with
  | Error _ -> 0.0
  | Ok occ ->
    let active = occ.Occupancy.active_blocks in
    if active = 0 then 0.0
    else begin
      let in_flight = active * c.batch_per_block in
      let dp_cost =
        match w.precision with
        | Device.Double -> 1.0 /. d.Device.fp64_ratio
        | Device.Single -> 1.0
      in
      let fma_issue_cost = dp_cost *. (if c.use_shmem then 1.0 else 2.0) in
      let col_latency = if c.use_shmem then 320.0 else 1100.0 in
      let sync_cost = 60.0 in
      let fdim_x = float_of_int c.dim_x in
      let issue = ref 0.0 in
      for j = 0 to w.n - 1 do
        let col = w.n - j in
        (* pivot search over the remaining column *)
        let pivot =
          if c.pivot_tree then
            (* log-depth max-reduction across the dim_x threads *)
            4.0
            *. Float.of_int
                 (int_of_float (Float.log2 (float_of_int (max 2 col))) + 1)
          else
            (* one thread scans the column serially *)
            2.0 *. float_of_int col
        in
        (* row swap + scale + rank-1 update of the trailing square *)
        let trailing = float_of_int ((col - 1) * (col - 1)) in
        issue :=
          !issue +. pivot
          +. (2.0 *. Float.of_int ((w.n + c.dim_x - 1) / c.dim_x))
          +. (2.0 *. Float.of_int ((col + c.dim_x - 1) / c.dim_x))
          +. (trailing /. fdim_x *. fma_issue_cost)
      done;
      let loop_overhead = float_of_int w.n *. 4.0 /. float_of_int c.unroll in
      let w_issue = !issue +. loop_overhead in
      let n_panels = (w.n + c.blk - 1) / c.blk in
      let pivot_latency = if c.pivot_tree then 80.0 else 160.0 in
      let w_latency =
        float_of_int w.n *. (col_latency +. pivot_latency)
        +. (float_of_int n_panels *. sync_cost)
      in
      let lane_time =
        w_issue *. fdim_x *. float_of_int in_flight
        /. float_of_int d.Device.cores_per_multi_processor
      in
      let round_cycles = Float.max lane_time (w_issue +. w_latency) in
      let rounds =
        (w.batch + (in_flight * d.Device.n_multi_processors) - 1)
        / (in_flight * d.Device.n_multi_processors)
      in
      let clock_hz = float_of_int d.Device.clock_mhz *. 1e6 in
      let compute_time_s = float_of_int rounds *. round_cycles /. clock_hz in
      let es = float_of_int (element_size w) in
      let bytes_per_matrix =
        (float_of_int (w.n * w.n) *. es *. 2.0) +. 64.0
      in
      let coalesce_eff = Float.min 1.0 (float_of_int w.n /. 64.0) in
      let mem_time_s =
        float_of_int w.batch *. bytes_per_matrix
        /. (d.Device.mem_bandwidth_gbs *. 1e9 *. coalesce_eff)
      in
      let time_s = Float.max compute_time_s mem_time_s in
      let raw = float_of_int w.batch *. flops_per_matrix w.n /. time_s /. 1e9 in
      (* Pivoting serialization caps LU below the Cholesky ceiling. *)
      Float.min raw (0.55 *. Device.peak_gflops d w.precision)
    end

let objective w lookup = gflops w (decode lookup)

let baseline_gflops w =
  let c =
    {
      dim_x = min 64 (max 16 w.n);
      batch_per_block = 1;
      blk = 1;
      use_shmem = false;
      unroll = 1;
      pivot_tree = false;
    }
  in
  gflops w c *. 0.55
