(** Alternating least squares for collaborative filtering — the paper's
    "much more exotic kernel" (Section III, reference [6]: "Accelerating
    collaborative filtering using concepts from high performance
    computing"), where BEAST-tuned GPU kernels "achieved significant
    speedups over CPU implementations of the same operation".

    One ALS half-step updates every user's factor vector x_u of rank f by
    solving (AᵀA + λI) x_u = AᵀR_u built from that user's ratings: a
    rank-f Gram-matrix accumulation over the user's n_ratings items
    followed by an f x f Cholesky solve. The search space tunes how the
    Gram accumulation and solve are laid out on the GPU; the baseline is
    a model of a parallel CPU implementation, matching the paper's
    comparison target. *)

open Beast_gpu

type workload = {
  device : Device.t;
  precision : Device.precision;
  rank : int;  (** f, typically 16-128 *)
  users : int;
  avg_ratings : int;  (** average ratings per user *)
}

val default_workload : workload
(** rank 64, 100k users, 40 ratings/user, single precision (the common
    recommender configuration). *)

val space : ?workload:workload -> unit -> Beast_core.Space.t
(** Tunables: [dim_x] (threads per user), [users_per_block],
    [tile_f] (Gram-matrix tile width), [gram_in_shmem], [unroll].
    Constraints: launchability, occupancy, full warps, tile divides
    rank, tile within threads. *)

type config = {
  dim_x : int;
  users_per_block : int;
  tile_f : int;
  gram_in_shmem : bool;
  unroll : int;
}

val decode : Beast_core.Expr.lookup -> config
val flops_per_user : workload -> float
val gflops : workload -> config -> float
val objective : workload -> Beast_core.Expr.lookup -> float

val cpu_baseline_gflops : workload -> float
(** Model of an optimized multicore-CPU ALS (the paper's comparator):
    a 2013-class dual-socket Xeon at a solid fraction of its peak. *)
