(** Prime-size FFT tuning space — the use case the paper gives for
    closure iterators: "One example of when such a prime number generator
    would be useful is autotuning an FFT implementation for
    hard-to-optimize problem sizes" (Section V, citing Rader's
    algorithm, reference [30]).

    For a prime size p, Rader's algorithm maps the DFT to a cyclic
    convolution of length p-1, which is computed either zero-padded to a
    power of two or directly if p-1 is smooth. The space enumerates prime
    sizes with the closure iterator of Figure 3 and, per prime, the
    convolution strategy and its radix — a genuinely data-dependent inner
    iterator (the divisors of p-1), impossible to write as a static
    range. *)

val primes_iter : Beast_core.Iter.t
(** The prime generator of Figure 3 as a closure iterator; depends on
    the setting ["max_size"] (includes 1 and 2, as the figure yields). *)

val divisors_iter : of_:string -> Beast_core.Iter.t
(** Closure iterator over the divisors of the named parameter. *)

val space : ?max_size:int -> unit -> Beast_core.Space.t
(** Iterators: [size] (prime, via {!primes_iter}), [strategy]
    (0 = pad to power of two, 1 = direct factorization of p-1),
    [radix] (divisor of p-1), [twiddle_in_shmem]. *)

type config = {
  size : int;
  strategy : int;
  radix : int;
  twiddle_in_shmem : bool;
}

val decode : Beast_core.Expr.lookup -> config

val modeled_time_us : config -> float
(** Toy cost model: operation count of the chosen convolution plan. *)

val objective : Beast_core.Expr.lookup -> float
(** Tuner objective (higher is better): 1 / {!modeled_time_us}. *)
