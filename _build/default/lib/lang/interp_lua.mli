(** A Lua-style execution tier for the loop-nest study (Figure 18): the
    nest compiles to bytecode for a register VM (Lua's design), unboxed
    values in a register file, a dispatch loop per instruction.

    The three syntactic variants reproduce Figure 18's x-axis, with the
    cost differences the paper measures:

    - {!constructor-While_loop}: condition compiled as explicit
      compare + conditional jump at the top plus an unconditional jump
      back — the slowest (the paper: ~10% slower than repeat);
    - {!constructor-Repeat_until}: the test at the bottom saves the
      back-jump;
    - {!constructor-Numeric_for}: Lua's numeric [for] fuses increment,
      test and branch into one FORLOOP-style instruction — the fastest
      (the paper: ~30% faster). *)

type variant =
  | While_loop
  | Repeat_until
  | Numeric_for

val variant_name : variant -> string
val all_variants : variant list

val run : variant -> Loopnest.t -> Loopnest.outcome
val instruction_count : variant -> Loopnest.t -> int
(** Size of the compiled program, for inspection. *)
