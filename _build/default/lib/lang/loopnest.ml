type t = {
  depth : int;
  length : int;
}

let make ~depth ~total =
  if depth < 1 || depth > 4 then invalid_arg "Loopnest.make: depth in 1..4";
  if total < 1 then invalid_arg "Loopnest.make: total >= 1";
  let root = Float.of_int total ** (1.0 /. Float.of_int depth) in
  let length = int_of_float (Float.ceil (root -. 1e-9)) in
  { depth; length = max 1 length }

let rec pow base = function
  | 0 -> 1
  | k -> base * pow base (k - 1)

let iterations t = pow t.length t.depth

type outcome = {
  body_iterations : int;
  checksum : int;
}

let reference t =
  let n = t.length in
  let acc = ref 0 and count = ref 0 in
  (match t.depth with
  | 1 ->
    for i1 = 0 to n - 1 do
      incr count;
      acc := !acc + i1 + 1
    done
  | 2 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        incr count;
        acc := !acc + i1 + i2 + 1
      done
    done
  | 3 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          incr count;
          acc := !acc + i1 + i2 + i3 + 1
        done
      done
    done
  | 4 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          for i4 = 0 to n - 1 do
            incr count;
            acc := !acc + i1 + i2 + i3 + i4 + 1
          done
        done
      done
    done
  | _ -> assert false);
  { body_iterations = !count; checksum = !acc }
