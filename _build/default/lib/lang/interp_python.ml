type variant =
  | While
  | For_range
  | For_xrange

let variant_name = function
  | While -> "while"
  | For_range -> "range"
  | For_xrange -> "xrange"

let all_variants = [ While; For_range; For_xrange ]

(* Boxed integers: every arithmetic result is a fresh heap block, as in
   CPython (small-int caching aside). *)
type pv = Obj of int

type expr =
  | Const of int
  | Name of string
  | Add of expr * expr
  | Lt of expr * expr

type stmt =
  | Assign of string * expr
  | Tick  (** marks one innermost-body execution *)
  | While_st of expr * stmt list
  | For_list of string * pv list * stmt list
  | For_lazy of string * int * stmt list

let rec eval env e : pv =
  match e with
  | Const k -> Obj k
  | Name x -> Hashtbl.find env x
  | Add (a, b) ->
    let (Obj x) = eval env a and (Obj y) = eval env b in
    Obj (x + y)
  | Lt (a, b) ->
    let (Obj x) = eval env a and (Obj y) = eval env b in
    Obj (if x < y then 1 else 0)

let run variant (nest : Loopnest.t) =
  let env : (string, pv) Hashtbl.t = Hashtbl.create 16 in
  let ticks = ref 0 in
  let rec exec = function
    | Assign (x, e) -> Hashtbl.replace env x (eval env e)
    | Tick -> incr ticks
    | While_st (cond, body) ->
      let rec loop () =
        let (Obj c) = eval env cond in
        if c <> 0 then begin
          List.iter exec body;
          loop ()
        end
      in
      loop ()
    | For_list (x, values, body) ->
      List.iter
        (fun v ->
          Hashtbl.replace env x v;
          List.iter exec body)
        values
    | For_lazy (x, n, body) ->
      let rec loop i =
        if i < n then begin
          Hashtbl.replace env x (Obj i);
          List.iter exec body;
          loop (i + 1)
        end
      in
      loop 0
  in
  let n = nest.Loopnest.length in
  let var k = Printf.sprintf "i%d" k in
  let body_update =
    let rec sum k =
      if k > nest.Loopnest.depth then Const 1 else Add (Name (var k), sum (k + 1))
    in
    [ Tick; Assign ("acc", Add (Name "acc", sum 1)) ]
  in
  let rec wrap k inner =
    if k = 0 then inner
    else
      let loop =
        match variant with
        | While ->
          [
            Assign (var k, Const 0);
            While_st
              ( Lt (Name (var k), Const n),
                inner @ [ Assign (var k, Add (Name (var k), Const 1)) ] );
          ]
        | For_range ->
          [ For_list (var k, List.init n (fun i -> Obj i), inner) ]
        | For_xrange -> [ For_lazy (var k, n, inner) ]
      in
      wrap (k - 1) loop
  in
  let program = Assign ("acc", Const 0) :: wrap nest.Loopnest.depth body_update in
  List.iter exec program;
  let (Obj acc) = Hashtbl.find env "acc" in
  { Loopnest.body_iterations = !ticks; checksum = acc }
