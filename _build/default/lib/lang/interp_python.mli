(** A CPython-style execution tier for the loop-nest study (Figure 17).

    The interpreter walks a statement AST with every variable access
    going through an associative table (one per lexical scope) and every
    integer boxed — the two costs the paper identifies for CPython:
    "Python's access to variables is through associative array lookup
    (there is one array per lexical scope)". The three syntactic
    variants reproduce Figure 17's x-axis:

    - {!constructor-While}: explicit condition, increment and comparison
      through the environment — the slowest form (the paper measures
      ~30% slower than range);
    - {!constructor-For_range}: the loop is driven by the host runtime
      but the value list is {e materialized} first, like Python 2's
      [range] "instantiating in memory a list of 10^8 integers";
    - {!constructor-For_xrange}: the same driving loop over a lazy
      generator, like [xrange] — no materialization, the fastest. *)

type variant =
  | While
  | For_range
  | For_xrange

val variant_name : variant -> string
val all_variants : variant list

val run : variant -> Loopnest.t -> Loopnest.outcome
(** Execute the nest; must equal {!Loopnest.reference}. *)
