(** The synthetic loop-nest workload of the paper's performance study
    (Section XI, Figures 17–19): a nest of depth 1–4 totalling a fixed
    iteration count, whose innermost body performs "integer arithmetic on
    local variables – there are no memory accesses through mutable
    containers".

    All three execution tiers ({!Interp_python}, {!Interp_lua},
    {!Native}) run {e this} workload with {e identical semantics} — the
    checksum lets the tests prove it — so their iteration rates are
    comparable the way the paper compares CPython, Lua and compiled
    code. *)

type t = {
  depth : int;  (** 1 to 4 *)
  length : int;  (** trip count of each loop level *)
}

val make : depth:int -> total:int -> t
(** Loop length = ceil(total^(1/depth)), the paper's
    ceil(d-th-root of 10^8) construction. @raise Invalid_argument unless
    1 <= depth <= 4. *)

val iterations : t -> int
(** length^depth: innermost-body executions. *)

type outcome = {
  body_iterations : int;
  checksum : int;
}

val reference : t -> outcome
(** The semantics every tier must reproduce: nested loops with indices
    i1..id in [0, length), innermost body
    [acc <- acc + i1 + ... + id + 1] on a native-int accumulator. *)
