(** The compiled tier for the loop-nest study (Figure 19): the nest as
    directly compiled native loops, i.e. what the BEAST translator's C
    output executes. Three flavours model the paper's C / Java / Fortran
    comparison:

    - {!constructor-Fortran_style}: pure register arithmetic, the leanest
      loop the compiler can emit (Fortran wins Figure 19 "albeit by a
      negligibly small margin");
    - {!constructor-C_style}: the accumulator lives in memory (one
      unchecked store per iteration);
    - {!constructor-Java_style}: memory accumulator with a bounds check
      on every access, the cost a JIT'd JVM loop retains — the slowest
      in Figure 19. *)

type flavour =
  | C_style
  | Java_style
  | Fortran_style

val flavour_name : flavour -> string
val all_flavours : flavour list

val run : flavour -> Loopnest.t -> Loopnest.outcome
