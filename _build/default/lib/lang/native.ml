type flavour =
  | C_style
  | Java_style
  | Fortran_style

let flavour_name = function
  | C_style -> "c"
  | Java_style -> "java"
  | Fortran_style -> "fortran"

let all_flavours = [ C_style; Java_style; Fortran_style ]

(* Fortran flavour: accumulator in a register (ref is unboxed by the
   compiler within the loop). *)
let fortran (nest : Loopnest.t) =
  let n = nest.Loopnest.length in
  let acc = ref 0 and count = ref 0 in
  (match nest.Loopnest.depth with
  | 1 ->
    for i1 = 0 to n - 1 do
      incr count;
      acc := !acc + i1 + 1
    done
  | 2 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        incr count;
        acc := !acc + i1 + i2 + 1
      done
    done
  | 3 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          incr count;
          acc := !acc + i1 + i2 + i3 + 1
        done
      done
    done
  | _ ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          for i4 = 0 to n - 1 do
            incr count;
            acc := !acc + i1 + i2 + i3 + i4 + 1
          done
        done
      done
    done);
  { Loopnest.body_iterations = !count; checksum = !acc }

(* C flavour: the accumulator is a memory location, stores unchecked. *)
let c_style (nest : Loopnest.t) =
  let n = nest.Loopnest.length in
  let mem = Array.make 2 0 in
  (match nest.Loopnest.depth with
  | 1 ->
    for i1 = 0 to n - 1 do
      Array.unsafe_set mem 1 (Array.unsafe_get mem 1 + 1);
      Array.unsafe_set mem 0 (Array.unsafe_get mem 0 + i1 + 1)
    done
  | 2 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        Array.unsafe_set mem 1 (Array.unsafe_get mem 1 + 1);
        Array.unsafe_set mem 0 (Array.unsafe_get mem 0 + i1 + i2 + 1)
      done
    done
  | 3 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          Array.unsafe_set mem 1 (Array.unsafe_get mem 1 + 1);
          Array.unsafe_set mem 0 (Array.unsafe_get mem 0 + i1 + i2 + i3 + 1)
        done
      done
    done
  | _ ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          for i4 = 0 to n - 1 do
            Array.unsafe_set mem 1 (Array.unsafe_get mem 1 + 1);
            Array.unsafe_set mem 0 (Array.unsafe_get mem 0 + i1 + i2 + i3 + i4 + 1)
          done
        done
      done
    done);
  { Loopnest.body_iterations = mem.(1); checksum = mem.(0) }

(* Java flavour: memory accumulator with bounds-checked accesses, plus
   the safepoint poll a JIT'd loop retains (a volatile-style flag read
   and branch per iteration). *)
let safepoint = ref false

let java (nest : Loopnest.t) =
  let n = nest.Loopnest.length in
  let mem = Array.make 2 0 in
  let poll () = if !safepoint then mem.(1) <- mem.(1) in
  (match nest.Loopnest.depth with
  | 1 ->
    for i1 = 0 to n - 1 do
      poll ();
      mem.(1) <- mem.(1) + 1;
      mem.(0) <- mem.(0) + i1 + 1
    done
  | 2 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        poll ();
        mem.(1) <- mem.(1) + 1;
        mem.(0) <- mem.(0) + i1 + i2 + 1
      done
    done
  | 3 ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          poll ();
          mem.(1) <- mem.(1) + 1;
          mem.(0) <- mem.(0) + i1 + i2 + i3 + 1
        done
      done
    done
  | _ ->
    for i1 = 0 to n - 1 do
      for i2 = 0 to n - 1 do
        for i3 = 0 to n - 1 do
          for i4 = 0 to n - 1 do
            poll ();
            mem.(1) <- mem.(1) + 1;
            mem.(0) <- mem.(0) + i1 + i2 + i3 + i4 + 1
          done
        done
      done
    done);
  { Loopnest.body_iterations = mem.(1); checksum = mem.(0) }

let run flavour nest =
  match flavour with
  | C_style -> c_style nest
  | Java_style -> java nest
  | Fortran_style -> fortran nest
