type variant =
  | While_loop
  | Repeat_until
  | Numeric_for

let variant_name = function
  | While_loop -> "while"
  | Repeat_until -> "repeat-until"
  | Numeric_for -> "for"

let all_variants = [ While_loop; Repeat_until; Numeric_for ]

type instr =
  | Loadk of int * int  (* reg <- k *)
  | Add of int * int * int  (* dst <- a + b *)
  | Addk of int * int * int  (* dst <- a + k *)
  | Ltk of int * int * int  (* dst <- a < k *)
  | Jmp of int
  | Jz of int * int
  | Jnz of int * int
  | Forloop of int * int * int  (* var += 1; if var < limit k, jump *)
  | Tick
  | Halt

(* Register map: 0 = acc, 1 = scratch test, 2..2+depth-1 = loop vars. *)
let compile variant (nest : Loopnest.t) =
  let n = nest.Loopnest.length in
  let depth = nest.Loopnest.depth in
  let code = ref [] in
  let pc = ref 0 in
  let emit i =
    code := i :: !code;
    incr pc
  in
  let acc = 0 and t = 1 in
  let ivar k = 1 + k in
  let rec gen k =
    if k > depth then begin
      emit Tick;
      for j = 1 to depth do
        emit (Add (acc, acc, ivar j))
      done;
      emit (Addk (acc, acc, 1))
    end
    else begin
      emit (Loadk (ivar k, 0));
      match variant with
      | While_loop ->
        let test_pc = !pc in
        emit (Ltk (t, ivar k, n));
        let jz_pc = !pc in
        emit (Jz (t, -1));
        gen (k + 1);
        emit (Addk (ivar k, ivar k, 1));
        emit (Jmp test_pc);
        (* Backpatch the exit jump. *)
        let exit_pc = !pc in
        code :=
          List.mapi
            (fun i instr ->
              if !pc - 1 - i = jz_pc then Jz (t, exit_pc) else instr)
            !code
      | Repeat_until ->
        let top_pc = !pc in
        gen (k + 1);
        emit (Addk (ivar k, ivar k, 1));
        emit (Ltk (t, ivar k, n));
        emit (Jnz (t, top_pc))
      | Numeric_for ->
        let top_pc = !pc in
        gen (k + 1);
        emit (Forloop (ivar k, n, top_pc))
    end
  in
  emit (Loadk (acc, 0));
  gen 1;
  emit Halt;
  Array.of_list (List.rev !code)

let instruction_count variant nest = Array.length (compile variant nest)

let run variant nest =
  let code = compile variant nest in
  let regs = Array.make (2 + nest.Loopnest.depth + 1) 0 in
  let ticks = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    match code.(!pc) with
    | Loadk (r, k) ->
      regs.(r) <- k;
      incr pc
    | Add (d, a, b) ->
      regs.(d) <- regs.(a) + regs.(b);
      incr pc
    | Addk (d, a, k) ->
      regs.(d) <- regs.(a) + k;
      incr pc
    | Ltk (d, a, k) ->
      regs.(d) <- (if regs.(a) < k then 1 else 0);
      incr pc
    | Jmp t -> pc := t
    | Jz (r, t) -> if regs.(r) = 0 then pc := t else incr pc
    | Jnz (r, t) -> if regs.(r) <> 0 then pc := t else incr pc
    | Forloop (v, limit, t) ->
      regs.(v) <- regs.(v) + 1;
      if regs.(v) < limit then pc := t else incr pc
    | Tick ->
      incr ticks;
      incr pc
    | Halt -> running := false
  done;
  { Loopnest.body_iterations = !ticks; checksum = regs.(0) }
