lib/lang/interp_lua.mli: Loopnest
