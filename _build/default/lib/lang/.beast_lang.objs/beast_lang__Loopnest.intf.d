lib/lang/loopnest.mli:
