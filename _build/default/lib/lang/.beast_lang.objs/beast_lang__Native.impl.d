lib/lang/native.ml: Array Loopnest
