lib/lang/native.mli: Loopnest
