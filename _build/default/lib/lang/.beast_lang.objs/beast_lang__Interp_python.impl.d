lib/lang/interp_python.ml: Hashtbl List Loopnest Printf
