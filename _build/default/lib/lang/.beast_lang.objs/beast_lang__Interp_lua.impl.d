lib/lang/interp_lua.ml: Array List Loopnest
