lib/lang/loopnest.ml: Float
