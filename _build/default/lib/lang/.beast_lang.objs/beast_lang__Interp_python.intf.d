lib/lang/interp_python.mli: Loopnest
