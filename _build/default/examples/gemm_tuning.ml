(* The paper's model problem end to end: build the 15-dimensional GEMM
   search space (Figures 10-15), prune it with the 12 constraints, score
   every survivor on the device model, and report the best kernels -
   Table I's "GEMM: 80% of peak" experiment at laptop scale.

   Run with: dune exec examples/gemm_tuning.exe -- [max_dim] [max_threads] *)

open Beast_gpu
open Beast_kernels
open Beast_autotune

let () =
  let max_dim = try int_of_string Sys.argv.(1) with _ -> 48 in
  let max_threads = try int_of_string Sys.argv.(2) with _ -> 256 in
  let device = Device.scale ~max_dim ~max_threads Device.tesla_k40c in
  Format.printf "device: %a@." Device.pp device;
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  Format.printf "space: %d iterators, %d constraints@."
    (List.length (Beast_core.Space.iterators sp))
    (List.length (Beast_core.Space.constraints sp));
  let result = Tuner.tune ~top_n:5 ~objective:(Gemm.objective settings) sp in
  let peak = Device.peak_gflops device Device.Double in
  Format.printf "%a" (Tuner.pp_result ~peak) result;
  match result.Tuner.best with
  | None -> Format.printf "no feasible kernel!@."
  | Some best ->
    let lookup name = List.assoc name best.Tuner.bindings in
    let config = Gemm.decode settings lookup in
    Format.printf "@.model breakdown of the winner:@.  %a@."
      Perf_model.pp_breakdown
      (Perf_model.evaluate device config);
    (match Sim.simulate device config with
    | Some sim ->
      Format.printf
        "  warp-level simulator: %.0f GF (%d resident blocks, %s-bound)@."
        sim.Sim.gflops sim.Sim.resident_blocks
        (match sim.Sim.bound with
        | `Compute -> "compute"
        | `Memory -> "memory"
        | `Issue -> "issue"
        | `Latency -> "latency")
    | None -> ());
    Format.printf "  cuBLAS model at n=4096: %.0f GF@."
      (Baseline.gemm_gflops device Device.Double Device.Real ~n:4096);
    Format.printf "  paper's Table I row: 80%% of peak; we reach %.1f%%@."
      (100.0 *. best.Tuner.score /. peak)
