(* Closure iterators in anger: the prime-size FFT space of Section V.
   The prime generator of Figure 3 drives the outer dimension; the
   divisors of p-1 (a data-dependent set no static range can express)
   drive the Rader-convolution radix.

   Run with: dune exec examples/prime_fft.exe *)

open Beast_core
open Beast_kernels
open Beast_autotune

let () =
  (* The generator by itself, exactly as Figure 3 yields. *)
  let env name = if name = "max_size" then Value.Int 31 else raise Not_found in
  let primes =
    Iter.materialize env Fft.primes_iter
    |> Array.to_list
    |> List.map Value.to_string
  in
  Format.printf "figure 3 primes up to 31: %s@." (String.concat " " primes);

  let sp = Fft.space ~max_size:97 () in
  let stats = Sweep.run sp in
  Format.printf "space: %d survivors, %d pruned@." stats.Engine.survivors
    (Engine.total_pruned stats);

  (* Best plan per prime size. *)
  let best_per_size : (int, float * Fft.config) Hashtbl.t = Hashtbl.create 32 in
  let on_hit lookup =
    let c = Fft.decode lookup in
    let score = Fft.objective lookup in
    match Hashtbl.find_opt best_per_size c.Fft.size with
    | Some (s, _) when s >= score -> ()
    | _ -> Hashtbl.replace best_per_size c.Fft.size (score, c)
  in
  ignore (Sweep.run ~on_hit sp);
  let sizes =
    Hashtbl.fold (fun k _ acc -> k :: acc) best_per_size [] |> List.sort compare
  in
  List.iter
    (fun size ->
      let _, c = Hashtbl.find best_per_size size in
      Format.printf
        "p=%3d: best %s (radix %2d%s), %.2f us modeled@."
        size
        (if c.Fft.strategy = 0 then "pad-to-pow2" else "direct Rader")
        c.Fft.radix
        (if c.Fft.twiddle_in_shmem then ", twiddles in shmem" else "")
        (Fft.modeled_time_us c))
    sizes;

  (* And the single best size/plan overall via the tuner. *)
  let r = Tuner.tune ~objective:Fft.objective sp in
  match r.Tuner.best with
  | Some best ->
    Format.printf "@.overall winner:";
    List.iter
      (fun (n, v) -> Format.printf " %s=%s" n (Value.to_string v))
      best.Tuner.bindings;
    Format.printf "@."
  | None -> ()
