(* Section XI-E "Application Use Cases": the BEAST project's kernel
   portfolio, tuned end to end against the device model - GEMM (Table I
   row 1), the batched factorizations Cholesky / LU / TRSM (rows 2-3 and
   references [5], [34]-[36]) and the ALS collaborative-filtering kernel
   (reference [6], compared against a CPU baseline as in the paper).

   Run with: dune exec examples/application_kernels.exe *)

open Beast_gpu
open Beast_kernels
open Beast_autotune

let row name tuned baseline unit_ =
  Printf.printf "%-34s %10.1f %s  vs %8.1f %s  -> %5.2fx\n" name tuned unit_
    baseline unit_ (tuned /. baseline)

let () =
  print_endline "BEAST application kernels on the K40c device model";
  print_endline (String.make 76 '-');
  (* GEMM: % of peak, the paper's headline number. *)
  let device = Device.scale ~max_dim:64 ~max_threads:256 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let r = Tuner.tune ~objective:(Gemm.objective settings) (Gemm.space ~settings ()) in
  (match r.Tuner.best with
  | Some c ->
    let peak = Device.peak_gflops device Device.Double in
    Printf.printf "%-34s %10.1f GF   = %.1f%% of peak (paper: 80%%)\n"
      "DGEMM (nn)" c.Tuner.score
      (100.0 *. c.Tuner.score /. peak)
  | None -> ());
  (* Batched factorizations, small and medium. *)
  List.iter
    (fun (n, batch, label) ->
      let w = { Cholesky_batched.default_workload with Cholesky_batched.n; batch } in
      let r =
        Tuner.tune ~objective:(Cholesky_batched.objective w)
          (Cholesky_batched.space ~workload:w ())
      in
      match r.Tuner.best with
      | Some c ->
        row
          (Printf.sprintf "batched dpotrf %s (n=%d)" label n)
          c.Tuner.score
          (Cholesky_batched.baseline_gflops w)
          "GF"
      | None -> ())
    [ (16, 10_000, "small"); (128, 2_000, "medium") ];
  List.iter
    (fun (n, batch, label) ->
      let w = { Lu_batched.default_workload with Lu_batched.n; batch } in
      let r =
        Tuner.tune ~objective:(Lu_batched.objective w)
          (Lu_batched.space ~workload:w ())
      in
      match r.Tuner.best with
      | Some c ->
        row
          (Printf.sprintf "batched dgetrf %s (n=%d)" label n)
          c.Tuner.score
          (Lu_batched.baseline_gflops w)
          "GF"
      | None -> ())
    [ (16, 10_000, "small"); (128, 2_000, "medium") ];
  (let w = Trsm_batched.default_workload in
   let r =
     Tuner.tune ~objective:(Trsm_batched.objective w)
       (Trsm_batched.space ~workload:w ())
   in
   match r.Tuner.best with
   | Some c ->
     row "batched dtrsm small (n=16)" c.Tuner.score
       (Trsm_batched.baseline_gflops w) "GF"
   | None -> ());
  (* ALS vs the CPU baseline, as in reference [6]. *)
  let w = Als.default_workload in
  let r = Tuner.tune ~objective:(Als.objective w) (Als.space ~workload:w ()) in
  (match r.Tuner.best with
  | Some c ->
    row
      (Printf.sprintf "ALS update (rank %d, sp) vs CPU" w.Als.rank)
      c.Tuner.score (Als.cpu_baseline_gflops w) "GF"
  | None -> ());
  print_endline (String.make 76 '-');
  print_endline
    "paper Table I: GEMM 80% of peak; batched small up to 1000%; medium up\n\
     to 300%; ALS: 'significant speedups over CPU implementations'."
