(* The doc/TUTORIAL.md kernel end to end: a 2D direct convolution space
   built, inspected, pruned and tuned - the workflow a downstream user
   follows for a kernel the paper never saw.

   Run with: dune exec examples/convolution.exe *)

open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_autotune

let () =
  let w = Conv2d.default_workload in
  let sp = Conv2d.space ~workload:w () in
  Format.printf "conv2d %dx%d, %d->%d channels, %dx%d filters (%s)@."
    w.Conv2d.height w.Conv2d.width w.Conv2d.channels w.Conv2d.filters
    w.Conv2d.kernel w.Conv2d.kernel
    (Device.precision_name w.Conv2d.precision);
  (* Step 5 of the tutorial: inspect before running. *)
  (match Space.dag sp with
  | Ok dag ->
    List.iteri
      (fun level set ->
        Format.printf "  L%d: %s@." level (String.concat " " set))
      (Dag.level_sets dag)
  | Error e -> Format.printf "invalid space: %a@." Space.pp_error e);
  let stats = Sweep.run sp in
  Format.printf "%a" Engine.pp_stats stats;
  (* Step 6: tune on the device model. *)
  let objective = Conv2d.objective w in
  let r = Tuner.tune ~top_n:3 ~objective sp in
  let peak = Device.peak_gflops w.Conv2d.device w.Conv2d.precision in
  Format.printf "%a" (Tuner.pp_result ~peak) r;
  match r.Tuner.best with
  | None -> Format.printf "nothing feasible!@."
  | Some best ->
    let c = Conv2d.decode (fun n -> List.assoc n best.Tuner.bindings) in
    Format.printf
      "winner: tile %dx%d, threads %dx%d, %d chans/iter, staging input=%b weights=%b@."
      c.Conv2d.tile_h c.Conv2d.tile_w c.Conv2d.dim_y c.Conv2d.dim_x
      c.Conv2d.chans_per_iter c.Conv2d.stage_input c.Conv2d.stage_weights;
    Format.printf "modeled time for the full image: %.2f ms@."
      (Conv2d.total_flops w /. (best.Tuner.score *. 1e9) *. 1000.0)
