(* Quickstart: describe a small search space declaratively, prune it,
   sweep it with two engines, and emit the C enumerator.

   Run with: dune exec examples/quickstart.exe *)

open Beast_core
open Expr.Infix

let () =
  (* A toy tuning problem: tile a 1D stencil. Dimensions: tile size and
     unroll factor; derived: work per block; constraints: hardware-ish
     limits. Definition order is free (Section V: deferred semantics). *)
  let sp = Space.create ~name:"stencil" () in
  Space.setting_i sp "max_tile" 512;
  Space.setting_i sp "cache_bytes" 4096;
  (* unroll is defined before tile, which it depends on: fine. *)
  Space.iterator sp "unroll" (Iter.ints [ 1; 2; 4; 8 ]);
  Space.iterator sp "tile" (Iter.range (Expr.int 8) (Expr.var "max_tile" +: Expr.int 1));
  Space.derived sp "bytes" (Expr.var "tile" *: Expr.int 8);
  Space.constrain sp ~cls:Space.Hard "over_cache"
    (Expr.var "bytes" >: Expr.var "cache_bytes");
  Space.constrain sp ~cls:Space.Correctness "unroll_divides"
    (Expr.var "tile" %: Expr.var "unroll" <>: Expr.int 0);
  Space.constrain sp ~cls:Space.Soft "tiny_tile"
    (Expr.var "tile" <: Expr.var "unroll" *: Expr.int 4);

  (* The dependency DAG and its level sets (Section X). *)
  (match Space.dag sp with
  | Ok dag ->
    Format.printf "level sets: ";
    List.iteri
      (fun i set -> Format.printf "L%d={%s} " i (String.concat "," set))
      (Dag.level_sets dag);
    Format.printf "@."
  | Error e -> Format.printf "space error: %a@." Space.pp_error e);

  (* Sweep with the staged engine. *)
  let stats = Sweep.run sp in
  Format.printf "%a" Engine.pp_stats stats;

  (* Same result through the bytecode VM. *)
  let vm = Sweep.run ~engine:Sweep.Vm sp in
  Format.printf "vm agrees: %b@."
    (vm.Engine.survivors = stats.Engine.survivors);

  (* A few surviving points. *)
  let points = Sweep.survivors ~limit:5 sp in
  List.iter
    (fun point ->
      Format.printf "survivor:";
      List.iter
        (fun (n, v) -> Format.printf " %s=%s" n (Value.to_string v))
        point;
      Format.printf "@.")
    points;

  (* Translate to C (Section X-XI's code generation). *)
  let plan = Plan.make_exn sp in
  Format.printf "@.--- generated C (first lines) ---@.";
  let c = Codegen_c.generate_exn plan in
  String.split_on_char '\n' c
  |> List.filteri (fun i _ -> i < 18)
  |> List.iter print_endline
