(* Tuning the same declarative space across architectures - the BEAST
   project's history in one run: Fermi (references [1], [2]), the GTX 680
   Kepler (reference [3]), the K40c of this paper, and Maxwell (Figure
   2's architecture dispatch). One space definition; four devices; four
   different winning kernels - the argument for autotuning over
   hand-tuning.

   Run with: dune exec examples/cross_device.exe *)

open Beast_gpu
open Beast_kernels
open Beast_autotune

let () =
  Printf.printf "%-22s %-10s %10s %8s   %s\n" "device" "cc" "GFLOP/s"
    "% peak" "winning configuration";
  let winners =
    List.map
      (fun (_, device) ->
        let scaled = Device.scale ~max_dim:64 ~max_threads:256 device in
        let settings =
          { Gemm.default_settings with Gemm.device = scaled }
        in
        let r =
          Tuner.tune ~objective:(Gemm.objective settings)
            (Gemm.space ~settings ())
        in
        match r.Tuner.best with
        | Some best ->
          let peak = Device.peak_gflops scaled Device.Double in
          let lookup name = List.assoc name best.Tuner.bindings in
          let c = Gemm.decode settings lookup in
          Printf.printf "%-22s %d.%-8d %10.1f %7.1f%%   dim %dx%d blk %dx%dx%d vec %d banks %d\n"
            device.Device.name device.Device.cuda_major device.Device.cuda_minor
            best.Tuner.score
            (100.0 *. best.Tuner.score /. peak)
            c.Perf_model.dim_m c.Perf_model.dim_n c.Perf_model.blk_m
            c.Perf_model.blk_n c.Perf_model.blk_k c.Perf_model.dim_vec
            c.Perf_model.shmem_banks;
          Some (device.Device.name, c)
        | None ->
          Printf.printf "%-22s no feasible kernel\n" device.Device.name;
          None)
      Device.presets
  in
  let configs = List.filter_map (fun x -> x) winners in
  let distinct =
    List.sort_uniq compare (List.map (fun (_, c) -> c) configs)
  in
  Printf.printf
    "\n%d devices, %d distinct winning configurations - per-architecture\n\
     tuning matters, which is the BEAST project's reason to exist.\n"
    (List.length configs) (List.length distinct)
