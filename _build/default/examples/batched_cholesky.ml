(* Table I's batched-factorization rows: tune the batched Cholesky and
   triangular-solve kernels across matrix sizes and compare with the
   cuBLAS baseline model (paper references [5], [34]-[36]).

   Run with: dune exec examples/batched_cholesky.exe *)

open Beast_kernels
open Beast_autotune

let tune_size n batch =
  let w = { Cholesky_batched.default_workload with Cholesky_batched.n; batch } in
  let r =
    Tuner.tune ~objective:(Cholesky_batched.objective w)
      (Cholesky_batched.space ~workload:w ())
  in
  let baseline = Cholesky_batched.baseline_gflops w in
  match r.Tuner.best with
  | None -> Format.printf "n=%4d: no feasible kernel@." n
  | Some best ->
    let lookup name = List.assoc name best.Tuner.bindings in
    let c = Cholesky_batched.decode lookup in
    Format.printf
      "n=%4d batch=%6d  tuned %8.1f GF  cublas-model %7.1f GF  %5.2fx  (dim_x=%d bpb=%d blk=%d shmem=%b unroll=%d)@."
      n batch best.Tuner.score baseline
      (best.Tuner.score /. baseline)
      c.Cholesky_batched.dim_x c.Cholesky_batched.batch_per_block
      c.Cholesky_batched.blk c.Cholesky_batched.use_shmem
      c.Cholesky_batched.unroll

let () =
  Format.printf "--- batched Cholesky (dp, K40c model) ---@.";
  Format.printf "small sizes (paper: 3x-10x over cuBLAS):@.";
  List.iter (fun n -> tune_size n 10_000) [ 8; 16; 24; 32 ];
  Format.printf "medium sizes (paper: up to 3x):@.";
  List.iter (fun n -> tune_size n 2_000) [ 128; 192; 256 ];
  Format.printf "@.--- batched TRSM (dp, K40c model) ---@.";
  List.iter
    (fun (n, batch) ->
      let w = { Trsm_batched.default_workload with Trsm_batched.n; batch } in
      let r =
        Tuner.tune ~objective:(Trsm_batched.objective w)
          (Trsm_batched.space ~workload:w ())
      in
      let baseline = Trsm_batched.baseline_gflops w in
      match r.Tuner.best with
      | None -> Format.printf "n=%4d: no feasible kernel@." n
      | Some best ->
        Format.printf "n=%4d batch=%6d  tuned %8.1f GF  cublas-model %7.1f GF  %5.2fx@."
          n batch best.Tuner.score baseline
          (best.Tuner.score /. baseline))
    [ (16, 10_000); (32, 10_000); (128, 2_000) ]
