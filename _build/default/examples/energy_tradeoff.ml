(* The performance/energy trade-off study of the paper's reference [4]
   ("Experiences in autotuning matrix multiplication for energy
   minimization on GPUs"): tune the same GEMM space for speed and for
   energy efficiency at once and print the Pareto front.

   Run with: dune exec examples/energy_tradeoff.exe *)

open Beast_gpu
open Beast_kernels
open Beast_autotune

let () =
  let device = Device.scale ~max_dim:48 ~max_threads:256 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let perf lookup = Gemm.objective settings lookup in
  let efficiency lookup =
    Perf_model.gflops_per_watt device (Gemm.decode settings lookup)
  in
  Format.printf "device: %a (TDP %.0f W)@." Device.pp device
    device.Device.tdp_watts;
  let front = Tuner.pareto ~max_front:12 ~objectives:(perf, efficiency) sp in
  Format.printf
    "Pareto front (%d points): fastest kernels are not the most efficient@."
    (List.length front);
  Format.printf "%-12s %-14s %-10s %s@." "GFLOP/s" "GFLOP/s/W" "watts"
    "configuration";
  List.iter
    (fun c ->
      let gf, eff = c.Tuner.bi_scores in
      let lookup name = List.assoc name c.Tuner.bi_bindings in
      let cfg = Gemm.decode settings lookup in
      let watts =
        match Perf_model.energy device cfg with
        | Some e -> e.Perf_model.power_watts
        | None -> nan
      in
      Format.printf "%-12.1f %-14.3f %-10.1f dim %dx%d blk %dx%dx%d vec %d@."
        gf eff watts cfg.Perf_model.dim_m cfg.Perf_model.dim_n
        cfg.Perf_model.blk_m cfg.Perf_model.blk_n cfg.Perf_model.blk_k
        cfg.Perf_model.dim_vec)
    front;
  (* Scatter of every survivor with the front highlighted, as the
     paper's reference [4] plots the trade-off. *)
  let cloud = ref [] in
  ignore
    (Beast_core.Sweep.run
       ~on_hit:(fun lookup -> cloud := (perf lookup, efficiency lookup) :: !cloud)
       sp);
  let svg =
    Beast_core.Visualize.scatter_svg ~x_label:"GFLOP/s" ~y_label:"GFLOP/s per watt"
      ~highlight:(List.map (fun c -> c.Tuner.bi_scores) front)
      !cloud
  in
  let oc = open_out "energy_tradeoff.svg" in
  output_string oc svg;
  close_out oc;
  Format.printf "wrote energy_tradeoff.svg (%d survivors, front highlighted)@."
    (List.length !cloud);
  (* Single-objective extremes for contrast. *)
  let fastest = Tuner.tune ~objective:perf sp in
  let greenest = Tuner.tune ~objective:efficiency sp in
  match fastest.Tuner.best, greenest.Tuner.best with
  | Some f, Some g ->
    Format.printf
      "@.fastest: %.1f GF; most efficient: %.3f GF/W - distinct optima: %b@."
      f.Tuner.score g.Tuner.score
      (f.Tuner.bindings <> g.Tuner.bindings)
  | _ -> ()
