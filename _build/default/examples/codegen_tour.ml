(* The translation system across all five language backends (the paper's
   contribution 4): one small space, five generated enumerators, printed
   side by side. The C output is what Section XI-D times at a >250x
   speedup over the interpreted sweep.

   Run with: dune exec examples/codegen_tour.exe *)

open Beast_core
open Expr.Infix

let () =
  let sp = Space.create ~name:"tour" () in
  Space.setting_i sp "max" 32;
  Space.iterator sp "i" (Iter.range (Expr.int 1) (Expr.var "max"));
  Space.iterator sp "j" (Iter.range ~step:(Expr.var "i") (Expr.var "i") (Expr.var "max"));
  Space.derived sp "prod" (Expr.var "i" *: Expr.var "j");
  Space.constrain sp "odd_product" (Expr.var "prod" %: Expr.int 2 <>: Expr.int 0);
  let plan = Plan.make_exn sp in
  Format.printf "plan:@.%a@." Plan.pp plan;
  List.iter
    (fun lang ->
      Format.printf "=== %s backend (%s) ===@."
        (Codegen.lang_name lang)
        (Codegen.file_extension lang);
      (match Codegen.generate lang plan with
      | Ok source -> print_string source
      | Error e -> Format.printf "unsupported: %a@." Codegen_c.pp_error e);
      Format.printf "@.")
    Codegen.all_langs;
  (* The in-process tiers give the same statistics without a compiler. *)
  let staged = Engine_staged.run plan in
  let vm = Engine_vm.run_plan plan in
  Format.printf "staged engine: %d survivors; vm: %d survivors@."
    staged.Engine.survivors vm.Engine.survivors;
  Format.printf "bytecode for the VM tier:@.%s@."
    (Engine_vm.disassemble (Engine_vm.compile plan))
