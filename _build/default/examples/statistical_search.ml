(* The paper's announced future work (Section XII): "incorporate
   statistical search methods to address the multidimensional search
   space growth". This example compares exhaustive sweeping against
   random search and hill climbing on the GEMM space, counting objective
   evaluations.

   Run with: dune exec examples/statistical_search.exe *)

open Beast_core
open Beast_gpu
open Beast_kernels
open Beast_autotune

let () =
  let device = Device.scale ~max_dim:64 ~max_threads:256 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  let sp = Gemm.space ~settings () in
  let plan = Plan.make_exn sp in
  let objective = Gemm.objective settings in
  let peak = Device.peak_gflops device Device.Double in
  let pct x = 100.0 *. x /. peak in
  let rng = Random.State.make [| 42 |] in

  (* Exhaustive: the ground truth. *)
  let exhaustive = Tuner.tune ~objective sp in
  let best_exhaustive =
    match exhaustive.Tuner.best with
    | Some c -> c.Tuner.score
    | None -> 0.0
  in
  Format.printf
    "exhaustive:    best %7.1f GF (%4.1f%% of peak), %d evaluations@."
    best_exhaustive (pct best_exhaustive) exhaustive.Tuner.evaluated;

  (* Random search at a fraction of the budget. *)
  Search.reset_counters ();
  let budget = max 50 (exhaustive.Tuner.evaluated / 100) in
  (match Search.random_search ~rng ~budget ~objective plan with
  | Some c ->
    Format.printf
      "random search: best %7.1f GF (%4.1f%% of peak), %d evaluations (1%% of budget)@."
      c.Search.score (pct c.Search.score) (Search.evaluations ())
  | None -> Format.printf "random search: no feasible sample@.");

  (* Hill climbing. *)
  Search.reset_counters ();
  (match Search.hill_climb ~rng ~restarts:8 ~steps:150 ~objective plan with
  | Some c ->
    Format.printf
      "hill climb:    best %7.1f GF (%4.1f%% of peak), %d evaluations@."
      c.Search.score (pct c.Search.score) (Search.evaluations ());
    Format.printf "               config:";
    List.iter
      (fun (n, v) -> Format.printf " %s=%s" n (Value.to_string v))
      c.Search.bindings;
    Format.printf "@."
  | None -> Format.printf "hill climb: no feasible start@.")
