examples/pruning_funnel.mli:
