examples/gemm_tuning.ml: Array Baseline Beast_autotune Beast_core Beast_gpu Beast_kernels Device Format Gemm List Perf_model Sim Sys Tuner
