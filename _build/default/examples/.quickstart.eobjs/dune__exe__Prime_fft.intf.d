examples/prime_fft.mli:
