examples/application_kernels.ml: Als Beast_autotune Beast_gpu Beast_kernels Cholesky_batched Device Gemm List Lu_batched Printf String Trsm_batched Tuner
