examples/statistical_search.ml: Beast_autotune Beast_core Beast_gpu Beast_kernels Device Format Gemm List Plan Random Search Tuner Value
