examples/quickstart.mli:
