examples/codegen_tour.ml: Beast_core Codegen Codegen_c Engine Engine_staged Engine_vm Expr Format Iter List Plan Space
