examples/prime_fft.ml: Array Beast_autotune Beast_core Beast_kernels Engine Fft Format Hashtbl Iter List String Sweep Tuner Value
