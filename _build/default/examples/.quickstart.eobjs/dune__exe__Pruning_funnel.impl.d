examples/pruning_funnel.ml: Beast_core Beast_gpu Beast_kernels Device Format Gemm Space Stats Visualize
