examples/convolution.ml: Beast_autotune Beast_core Beast_gpu Beast_kernels Conv2d Dag Device Engine Format List Space String Sweep Tuner
