examples/convolution.mli:
