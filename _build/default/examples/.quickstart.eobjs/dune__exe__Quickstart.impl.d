examples/quickstart.ml: Beast_core Codegen_c Dag Engine Expr Format Iter List Plan Space String Sweep Value
