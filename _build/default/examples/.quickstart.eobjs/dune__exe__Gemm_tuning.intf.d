examples/gemm_tuning.mli:
