examples/cross_device.mli:
