examples/application_kernels.mli:
