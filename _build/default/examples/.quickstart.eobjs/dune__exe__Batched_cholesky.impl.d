examples/batched_cholesky.ml: Beast_autotune Beast_kernels Cholesky_batched Format List Trsm_batched Tuner
