examples/energy_tradeoff.ml: Beast_autotune Beast_core Beast_gpu Beast_kernels Device Format Gemm List Perf_model Tuner
