examples/batched_cholesky.mli:
