examples/statistical_search.mli:
