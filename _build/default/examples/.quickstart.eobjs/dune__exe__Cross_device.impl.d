examples/cross_device.ml: Beast_autotune Beast_gpu Beast_kernels Device Gemm List Perf_model Printf Tuner
