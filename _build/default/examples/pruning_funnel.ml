(* The pruning funnel and its radial visualization (paper Section VI and
   reference [7]): how much of the GEMM space each constraint removes.
   Writes gemm_funnel.svg and gemm_funnel.html next to the build.

   Run with: dune exec examples/pruning_funnel.exe *)

open Beast_core
open Beast_gpu
open Beast_kernels

let () =
  let device = Device.scale ~max_dim:16 ~max_threads:64 Device.tesla_k40c in
  let settings = { Gemm.default_settings with Gemm.device } in
  (* The divisor-iterator variant keeps the unconstrained space small
     enough for the exact per-prefix sweeps (the reshape constraints are
     absorbed into the read-grid iterators). *)
  let sp = Gemm.space_divisor_opt ~settings () in
  Format.printf "measuring the exact funnel (one sweep per constraint prefix)...@.";
  let f = Stats.funnel sp in
  Format.printf "%a" Stats.pp f;
  Format.printf "@.The paper (Section VI): constraints prune 'sometimes by as much as 99%%'.@.";
  Format.printf "Here: %.4f%% of the unconstrained space survives.@."
    (100.0 *. Stats.survival_rate f);
  let write name contents =
    let oc = open_out name in
    output_string oc contents;
    close_out oc;
    Format.printf "wrote %s@." name
  in
  write "gemm_funnel.svg" (Visualize.svg f);
  write "gemm_funnel.html" (Visualize.html_report ~title:"GEMM pruning funnel" f);
  write "gemm_funnel.csv" (Stats.to_csv f);
  (* The dependency DAG of Figure 16, for graphviz. *)
  write "gemm_dag.dot" (Space.to_dot sp)
