open Beast_core
open Expr.Infix

(* A synthetic chain space built to be enormous yet exactly countable:
   [chain] iterators over [0, width) constrained to be non-decreasing
   (each link prunes against only its predecessor), times a parity
   iterator. The ordered-chain structure is the adversarial case for
   nested-loop enumeration — survivors are a vanishing fraction of the
   product space — but factors perfectly for [Feasible.build]: each
   link's subtree reads only the previous link's value, so the
   memoized walk visits O(chain * width^2) contexts no matter how many
   points the space holds. The default shape exceeds 10^9 survivors
   inside a 4.5 * 10^11-point product space; CI pins its exact count. *)

let name k = Printf.sprintf "link%d" k

let space ?(width = 256) ?(chain = 4) () =
  if width < 1 || chain < 1 then invalid_arg "Synth.space";
  let sp = Space.create ~name:"synth" () in
  for k = 0 to chain - 1 do
    Space.iterator sp (name k) (Iter.range_i 0 width);
    if k > 0 then
      Space.constrain sp
        (Printf.sprintf "descending%d" k)
        (Expr.var (name k) <: Expr.var (name (k - 1)))
  done;
  Space.iterator sp "p" (Iter.range_i 0 16);
  Space.constrain sp "odd_p" (Expr.var "p" %: Expr.int 2 =: Expr.int 1);
  sp

(* C(width + chain - 1, chain) non-decreasing chains, times the 8 even
   parity values. Multiplication last keeps the binomial intermediate
   exact in 63-bit ints for any realistic shape. *)
let expected_survivors ?(width = 256) ?(chain = 4) () =
  let binom = ref 1 in
  for k = 1 to chain do
    binom := !binom * (width + chain - k) / k
  done;
  !binom * 8
