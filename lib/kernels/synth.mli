(** A synthetic chain space, enormous yet exactly countable — the CI
    fixture for counting without enumeration ({!Beast_core.Feasible}).

    [chain] iterators over [0, width) constrained to be non-decreasing
    (each link checked against only its predecessor), times a parity
    iterator [p] over [0, 16) with odd values pruned. The default
    shape (width 256, chain 4) holds
    [C(259, 4) * 8 = 1_465_451_008] survivors inside a
    4.5e11-point product space: hopeless to enumerate in a test, but
    the memoized feasible-set walk visits only O(chain * width^2)
    contexts because each link's subtree reads just the previous
    link. *)

val space : ?width:int -> ?chain:int -> unit -> Beast_core.Space.t
(** @raise Invalid_argument when [width] or [chain] is below 1. *)

val expected_survivors : ?width:int -> ?chain:int -> unit -> int
(** [C(width + chain - 1, chain) * 8], the closed form the space was
    designed around. *)
