open Beast_core

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tint of int
  | Tstring of string
  | Tident of string
  | Top of string  (* + - * / % == != < <= > >= && || ! ? : , ( ) = *)
  | Teof

let keywords_ops =
  [ "and", "&&"; "or", "||"; "not", "!" ]

let lex ~line src =
  let n = String.length src in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      push (Tint (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail line "unterminated string literal";
      push (Tstring (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let j = ref !i in
      let ident_char ch =
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '_'
      in
      while !j < n && ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      (match List.assoc_opt word keywords_ops with
      | Some op -> push (Top op)
      | None -> push (Tident word));
      i := !j
    end
    else begin
      let two =
        match peek 1 with
        | Some c2 -> String.init 2 (fun k -> if k = 0 then c else c2)
        | None -> String.make 1 c
      in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
        push (Top two);
        i := !i + 2
      | _ -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '?' | ':' | ','
        | '(' | ')' | '=' ->
          push (Top (String.make 1 c));
          incr i
        | _ -> fail line "unexpected character %C" c)
    end
  done;
  push Teof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Expression parser (recursive descent)                               *)
(* ------------------------------------------------------------------ *)

type stream = {
  mutable toks : token list;
  sline : int;
}

let peek_tok s =
  match s.toks with
  | t :: _ -> t
  | [] -> Teof

let advance s =
  match s.toks with
  | _ :: rest -> s.toks <- rest
  | [] -> ()

let eat_op s op =
  match peek_tok s with
  | Top o when o = op -> advance s
  | _ -> fail s.sline "expected %S" op

let accept_op s op =
  match peek_tok s with
  | Top o when o = op ->
    advance s;
    true
  | _ -> false

let token_descr = function
  | Tint k -> string_of_int k
  | Tstring str -> Printf.sprintf "%S" str
  | Tident id -> id
  | Top op -> Printf.sprintf "operator %S" op
  | Teof -> "end of line"

let builtin_of_name = function
  | "min" -> Some (Expr.Min, 2)
  | "max" -> Some (Expr.Max, 2)
  | "abs" -> Some (Expr.Abs, 1)
  | "ceil_div" -> Some (Expr.Ceil_div, 2)
  | _ -> None

let rec parse_expr s = parse_ternary s

and parse_ternary s =
  let cond = parse_or s in
  if accept_op s "?" then begin
    let t = parse_expr s in
    eat_op s ":";
    let f = parse_expr s in
    Expr.If (cond, t, f)
  end
  else cond

and parse_or s =
  let rec go acc =
    if accept_op s "||" then go (Expr.Binop (Expr.Or, acc, parse_and s))
    else acc
  in
  go (parse_and s)

and parse_and s =
  let rec go acc =
    if accept_op s "&&" then go (Expr.Binop (Expr.And, acc, parse_not s))
    else acc
  in
  go (parse_not s)

and parse_not s =
  if accept_op s "!" then Expr.Unop (Expr.Not, parse_not s)
  else parse_cmp s

and parse_cmp s =
  let lhs = parse_add s in
  let op =
    match peek_tok s with
    | Top "==" -> Some Expr.Eq
    | Top "!=" -> Some Expr.Ne
    | Top "<" -> Some Expr.Lt
    | Top "<=" -> Some Expr.Le
    | Top ">" -> Some Expr.Gt
    | Top ">=" -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance s;
    Expr.Binop (op, lhs, parse_add s)

and parse_add s =
  let rec go acc =
    if accept_op s "+" then go (Expr.Binop (Expr.Add, acc, parse_mul s))
    else if accept_op s "-" then go (Expr.Binop (Expr.Sub, acc, parse_mul s))
    else acc
  in
  go (parse_mul s)

and parse_mul s =
  let rec go acc =
    if accept_op s "*" then go (Expr.Binop (Expr.Mul, acc, parse_unary s))
    else if accept_op s "/" then go (Expr.Binop (Expr.Div, acc, parse_unary s))
    else if accept_op s "%" then go (Expr.Binop (Expr.Mod, acc, parse_unary s))
    else acc
  in
  go (parse_unary s)

and parse_unary s =
  if accept_op s "-" then Expr.Unop (Expr.Neg, parse_unary s)
  else parse_atom s

and parse_atom s =
  match peek_tok s with
  | Tint k ->
    advance s;
    Expr.int k
  | Tstring str ->
    advance s;
    Expr.string str
  | Top "(" ->
    advance s;
    let e = parse_expr s in
    eat_op s ")";
    e
  | Tident "true" ->
    advance s;
    Expr.bool true
  | Tident "false" ->
    advance s;
    Expr.bool false
  | Tident name -> (
    advance s;
    match builtin_of_name name with
    | Some (b, arity) ->
      eat_op s "(";
      let args = parse_args s in
      if List.length args <> arity then
        fail s.sline "%s expects %d argument(s), got %d" name arity
          (List.length args);
      Expr.Call (b, args)
    | None ->
      if peek_tok s = Top "(" then
        fail s.sline "unknown function %s" name
      else Expr.var name)
  | t -> fail s.sline "unexpected %s in expression" (token_descr t)

and parse_args s =
  (* after the opening parenthesis; consumes the closing one *)
  if accept_op s ")" then []
  else begin
    let rec go acc =
      let e = parse_expr s in
      if accept_op s "," then go (e :: acc)
      else begin
        eat_op s ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Iterator parser                                                     *)
(* ------------------------------------------------------------------ *)

type parsed_iter =
  | Prange of Expr.t * Expr.t * Expr.t
  | Pother of Iter.t

let to_iter = function
  | Prange (a, b, c) -> Iter.Range (a, b, c)
  | Pother it -> it

let literal_value s e =
  match (e : Expr.t) with
  | Lit v -> v
  | Unop (Expr.Neg, Lit (Value.Int k)) -> Value.Int (-k)
  | _ -> fail s.sline "values(...) takes literal values only"

let rec parse_iter s =
  (* iterator-level ternary: cond ? iter : iter, both arms ranges *)
  let save = s.toks in
  match parse_iter_atom s with
  | exception Parse_error _ ->
    (* Maybe an expression condition prefixes a ternary of iterators. *)
    s.toks <- save;
    parse_iter_ternary s
  | first ->
    if
      match peek_tok s with
      | Teof | Top ")" | Top "," | Top ":" -> true
      | _ -> false
    then first
    else begin
      (* Something follows a complete iterator: re-parse as a ternary
         whose condition is an expression. *)
      s.toks <- save;
      parse_iter_ternary s
    end

and parse_iter_ternary s =
  let cond = parse_or s in
  if not (accept_op s "?") then
    fail s.sline "expected an iterator (range/values/... or a conditional)";
  let a = parse_iter s in
  eat_op s ":";
  let b = parse_iter s in
  match a, b with
  | Prange (a1, a2, a3), Prange (b1, b2, b3) ->
    Prange
      ( Expr.If (cond, a1, b1),
        Expr.If (cond, a2, b2),
        Expr.If (cond, a3, b3) )
  | _ ->
    fail s.sline "both arms of a conditional iterator must be range(...)"

and parse_iter_atom s =
  match peek_tok s with
  | Top "(" ->
    (* A parenthesized iterator (e.g. a conditional arm). If the inner
       parse fails this raises, and the caller backtracks to try the
       whole thing as an expression condition instead. *)
    advance s;
    let it = parse_iter s in
    eat_op s ")";
    it
  | Tident "range" ->
    advance s;
    eat_op s "(";
    let args = parse_args s in
    (match args with
    | [ stop ] -> Prange (Expr.int 0, stop, Expr.int 1)
    | [ start; stop ] -> Prange (start, stop, Expr.int 1)
    | [ start; stop; step ] -> Prange (start, stop, step)
    | _ -> fail s.sline "range expects 1 to 3 arguments")
  | Tident "values" ->
    advance s;
    eat_op s "(";
    let args = parse_args s in
    if args = [] then fail s.sline "values(...) needs at least one value";
    Pother (Iter.values (List.map (literal_value s) args))
  | Tident "single" ->
    advance s;
    eat_op s "(";
    (match parse_args s with
    | [ e ] -> Pother (Iter.single e)
    | _ -> fail s.sline "single expects 1 argument")
  | Tident (("union" | "inter" | "concat") as kind) ->
    advance s;
    eat_op s "(";
    let a = parse_iter s in
    eat_op s ",";
    let b = parse_iter s in
    eat_op s ")";
    let combine =
      match kind with
      | "union" -> Iter.union
      | "inter" -> Iter.inter
      | _ -> Iter.concat
    in
    Pother (combine (to_iter a) (to_iter b))
  | t -> fail s.sline "expected an iterator, got %s" (token_descr t)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let expect_eof s =
  match peek_tok s with
  | Teof -> ()
  | t -> fail s.sline "trailing %s" (token_descr t)

(* Merge continuation lines (trailing backslash) keeping line numbers of
   the first physical line. *)
let logical_lines text =
  let physical = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> List.rev acc
    | l :: rest ->
      let rec absorb l consumed rest =
        let trimmed = String.trim l in
        if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
        then
          match rest with
          | [] -> (String.sub trimmed 0 (String.length trimmed - 1), consumed, [])
          | next :: rest' ->
            absorb
              (String.sub trimmed 0 (String.length trimmed - 1) ^ " " ^ next)
              (consumed + 1) rest'
        else (l, consumed, rest)
      in
      let merged, consumed, rest = absorb l 0 rest in
      go (lineno + consumed + 1) ((lineno, merged) :: acc) rest
  in
  go 1 [] physical

let parse_declaration sp seen_name (lineno, line) =
  let stripped = String.trim line in
  if stripped = "" || stripped.[0] = '#' then ()
  else begin
    let s = { toks = lex ~line:lineno stripped; sline = lineno } in
    match peek_tok s with
    | Tident "space" ->
      advance s;
      (match peek_tok s with
      | Tident n ->
        advance s;
        expect_eof s;
        seen_name := Some n
      | t -> fail lineno "space expects a name, got %s" (token_descr t))
    | Tident "setting" -> (
      advance s;
      match peek_tok s with
      | Tident name -> (
        advance s;
        eat_op s "=";
        let e = parse_expr s in
        expect_eof s;
        match Expr.simplify e with
        | Expr.Lit v -> Space.setting sp name v
        | _ -> fail lineno "setting %s must be a constant" name)
      | t -> fail lineno "setting expects a name, got %s" (token_descr t))
    | Tident "iter" -> (
      advance s;
      match peek_tok s with
      | Tident name ->
        advance s;
        eat_op s "=";
        let it = parse_iter s in
        expect_eof s;
        Space.iterator sp name (to_iter it)
      | t -> fail lineno "iter expects a name, got %s" (token_descr t))
    | Tident "derived" -> (
      advance s;
      match peek_tok s with
      | Tident name ->
        advance s;
        eat_op s "=";
        let e = parse_expr s in
        expect_eof s;
        Space.derived sp name e
      | t -> fail lineno "derived expects a name, got %s" (token_descr t))
    | Tident "constraint" -> (
      advance s;
      let cls =
        match peek_tok s with
        | Tident "hard" ->
          advance s;
          Space.Hard
        | Tident "soft" ->
          advance s;
          Space.Soft
        | Tident "correctness" ->
          advance s;
          Space.Correctness
        | _ -> Space.Hard
      in
      match peek_tok s with
      | Tident name ->
        advance s;
        eat_op s "=";
        let e = parse_expr s in
        expect_eof s;
        Space.constrain sp ~cls name e
      | t -> fail lineno "constraint expects a name, got %s" (token_descr t))
    | t ->
      fail lineno
        "expected space/setting/iter/derived/constraint, got %s"
        (token_descr t)
  end

let space_of_string ?(name = "space") text =
  try
    let sp_name = ref None in
    (* Two passes: the space name may appear anywhere, and Space.create
       fixes the name up front. *)
    let lines = logical_lines text in
    List.iter
      (fun (lineno, line) ->
        let stripped = String.trim line in
        if String.length stripped >= 6 && String.sub stripped 0 6 = "space " then begin
          let s = { toks = lex ~line:lineno stripped; sline = lineno } in
          advance s;
          match peek_tok s with
          | Tident n -> sp_name := Some n
          | _ -> ()
        end)
      lines;
    let seen_name = ref None in
    (* Space.build funnels declaration errors (Duplicate_name raised by
       the mutators) and validation errors (Undefined_reference, Cyclic)
       into one result, so the parser only translates the payload. *)
    match
      Space.build
        ~name:(Option.value !sp_name ~default:name)
        (fun sp -> List.iter (parse_declaration sp seen_name) lines)
    with
    | Ok sp -> Ok sp
    | Error e ->
      Error { line = 0; message = Format.asprintf "%a" Space.pp_error e }
  with Parse_error e -> Error e

let space_of_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  space_of_string ~name text

let expr_of_string text =
  try
    let s = { toks = lex ~line:1 (String.trim text); sline = 1 } in
    let e = parse_expr s in
    expect_eof s;
    Ok e
  with Parse_error e -> Error e
