(** The compiled tier, end to end: the paper's headline backend run as a
    real engine (Sections X–XI: "converted to a standard C code, …
    compiled with a C compiler, executed at high speed, and multithreaded
    for extra performance").

    [run] takes a {!Plan.t}, emits the C translation unit with
    {!Codegen_c.generate}, compiles it with a detected C compiler
    ([$BEAST_CC], default [cc], always [-O2 -std=c99]), caches the binary
    in a workdir keyed by a content hash of the generated source plus the
    compiler and flags — so repeated sweeps of the same space skip the
    compile entirely — runs it as a subprocess, and parses the
    [survivors]/[iterations]/[pruned] lines back into the exact
    {!Engine.stats} shape the in-process engines produce. When an
    [on_hit] callback is installed the program is generated with survivor
    emission and every [hit] line replays through the plan (iterator
    slots from the line, derived slots recomputed), so the callback sees
    the same {!Expr.lookup} the staged engine would give it, in the same
    order for a single-threaded run.

    Sharding composes for free: a plan restricted with
    {!Plan.chunk_outer} (what [beast sweep --shard I/N] does) generates a
    program for exactly that block, and the C program's own
    [slice_index/slice_count] round-robin decomposition carries the
    [THREADS] fan-out, with depth-0 statistics counted by slice 0 alone —
    so both [beast merge] over shard files and the in-binary pthread
    split reproduce the unsharded, single-threaded output byte for byte.

    Failures are values, not traces: an untranslatable plan (opaque OCaml
    constraint bodies, dependent closure iterators), a missing compiler,
    a failed compile and malformed subprocess output all raise {!Error}
    with a one-line actionable message. *)

exception Error of string
(** Everything that can go wrong between a plan and its parsed
    statistics; the message is a single actionable line (the CLI prints
    it and exits 2). *)

val cc : unit -> string
(** The compiler command: [$BEAST_CC] when set and non-empty, else
    ["cc"]. *)

val cflags : string list
(** [\["-O2"; "-std=c99"\]] — part of the binary cache key. *)

val default_cache_dir : unit -> string
(** [$BEAST_NATIVE_CACHE] when set, else [<tmpdir>/beast-native]. *)

val compile :
  ?workdir:string -> ?threads:int -> ?emit_survivors:bool -> Plan.t -> string
(** Generate, compile and cache; returns the binary's path inside
    [workdir] (default {!default_cache_dir}), named after the MD5 of
    (source, compiler, flags). A cache hit does no work — not even
    compiler detection. Compile artifacts are staged under
    pid-tagged [.tmp] names and renamed into place (or removed on
    failure), so a killed or crashed compile never leaves a stale
    binary a later run could pick up.
    @raise Error on untranslatable plans, a missing compiler, or a
    failing compile (with the compiler's first diagnostic lines). *)

val stats_of_lines :
  ?on_hit:Engine.on_hit ->
  Plan.t ->
  string Seq.t ->
  (Engine.stats, string) result
(** Parse the subprocess's stdout. The accepted grammar is strict —
    zero or more [hit v0 … vn] lines (arity = the plan's loop count),
    then exactly one [survivors N], one [iterations N], and one
    [pruned <name> N] per constraint in plan order — and every
    deviation (unknown line, non-integer field, wrong hit arity from
    interleaved writes, summary lines out of order, duplicated or
    missing lines, a survivor count disagreeing with the number of hit
    lines) is an [Error] naming the line. [on_hit] fires per hit line,
    in stream order, with a lookup resolving iterators, derived
    variables and settings. *)

val run :
  ?on_hit:Engine.on_hit -> ?workdir:string -> ?threads:int -> Plan.t ->
  Engine.stats
(** Compile (cached) and run the plan's program as a subprocess,
    streaming its stdout through {!stats_of_lines}. [threads] (default
    1) is the pthread fan-out compiled into the binary. If the parse
    callback raises (an [on_hit] aborting mid-stream), the subprocess
    is killed and reaped before the exception continues.
    @raise Error as {!compile}, or when the subprocess exits non-zero,
    dies on a signal, or prints output the parser rejects. *)

val run_space :
  ?on_hit:Engine.on_hit -> ?workdir:string -> ?threads:int -> Space.t ->
  Engine.stats
(** [run] on [Plan.make_exn space]. *)
