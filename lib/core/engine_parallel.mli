(** Multithreaded sweep: the staged engine fanned out over OCaml 5
    domains. The outermost loop — level 0 of the DAG, exactly where the
    paper says parallelization belongs (Section X-B) — is decomposed
    round-robin with {!Plan.slice_outer}; each domain runs an independent
    staged sweep and the statistics are merged.

    Steps placed before the first loop (depth-0 derived variables and
    constraints) execute once per domain; their prune counters are
    de-duplicated during the merge so the reported statistics match a
    sequential run. *)

val run : ?on_hit:Engine.on_hit -> domains:int -> Plan.t -> Engine.stats
(** [on_hit] may be invoked from any domain but invocations are
    serialized behind an internal mutex, so the callback need not be
    thread-safe (it must not call back into the sweep, or it will
    deadlock). @raise Invalid_argument if [domains < 1]. *)

val run_space :
  ?on_hit:Engine.on_hit -> domains:int -> Space.t -> Engine.stats
