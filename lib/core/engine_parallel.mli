(** Multithreaded sweep: the staged engine fanned out over OCaml 5
    domains. The outermost loop — level 0 of the DAG, exactly where the
    paper says parallelization belongs (Section X-B) — is decomposed
    into contiguous blocks with {!Plan.chunk_outer}; many more chunks
    than domains are produced and a shared atomic cursor hands them out,
    so a domain whose chunk was pruned empty immediately steals the next
    one instead of idling while a skewed sibling finishes. Each chunk
    run is traced as its own [sweep:chunk] span, making the load balance
    visible in a Chrome/Perfetto trace.

    Steps placed before the first loop (depth-0 derived variables and
    constraints) execute once per chunk; their prune counters are
    de-duplicated during the merge ({!Plan.depth0_constraints}) so the
    reported statistics match a sequential run exactly — totals,
    per-constraint fired counts and loop iterations are all identical to
    {!Engine_staged.run}. *)

val default_chunks_per_domain : int
(** 8: enough chunks that one skewed block cannot dominate a domain,
    few enough that per-chunk compilation stays invisible. *)

val run :
  ?on_hit:Engine.on_hit ->
  ?chunks_per_domain:int ->
  domains:int ->
  Plan.t ->
  Engine.stats
(** Chunked work-stealing sweep over [domains] domains using
    [domains * chunks_per_domain] chunks (default [chunks_per_domain]
    is 8; raise it for spaces with extreme outer-level skew). [on_hit]
    may be invoked from any domain but invocations are serialized behind
    an internal mutex, so the callback need not be thread-safe (it must
    not call back into the sweep, or it will deadlock).
    @raise Invalid_argument if [domains < 1] or [chunks_per_domain < 1]. *)

val interrupt : unit -> unit
(** Request a graceful stop of the {!run_resumable} sweep in flight:
    each worker finishes the chunk it is running (the ledger only ever
    holds complete chunks), a final checkpoint is flushed, and the run
    returns {!Engine_intf.Interrupted}. Async-signal-safe — this is
    what the CLI's SIGINT/SIGTERM handlers call. *)

val run_resumable :
  ?on_hit:Engine.on_hit ->
  ?chunks_per_domain:int ->
  ?checkpoint:Engine_intf.checkpoint_sink ->
  ?resume:Checkpoint.t ->
  ?fault:Run_config.fault ->
  domains:int ->
  Plan.t ->
  Engine_intf.outcome
(** {!run} with a persistent chunk ledger. [resume] seeds the ledger
    with the checkpoint's completed chunks (and fixes the chunk-split
    arity to the file's [n_chunks], so a resume may use a different
    domain count); only the missing chunks are swept. [checkpoint]
    snapshots the ledger atomically at most once per [ck_every_s]
    seconds, and once more on interruption. Because chunk merging is
    commutative and associative, an interrupted-then-resumed run
    produces stats equal to an uninterrupted one — byte-identical
    through {!Stats_io.to_json}. [fault] makes chunk attempts crash
    deterministically (drawn from the seed, chunk id and attempt number,
    decided {e before} the chunk runs so [on_hit] stays exactly-once);
    crashed chunks are retried until they complete.
    @raise Invalid_argument on bad [domains], [chunks_per_domain] or
    crash probability.
    @raise Failure if one chunk crashes 1000 attempts in a row. *)

val run_static :
  ?on_hit:Engine.on_hit -> domains:int -> Plan.t -> Engine.stats
(** The pre-chunking scheduler: exactly one static round-robin slice per
    domain ({!Plan.slice_outer}), no stealing. Kept as the baseline the
    [ablation-stealing] bench compares against; prefer {!run}. *)

val run_space :
  ?on_hit:Engine.on_hit -> domains:int -> Space.t -> Engine.stats
(** {!run} on [Plan.make_exn space]. *)
