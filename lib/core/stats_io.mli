(** Serialization and merging of sweep results for cross-process
    sharding.

    [beast sweep --shard I/N --stats-out FILE] runs the [I]-th
    {!Plan.chunk_outer} block of a space and writes the resulting
    {!Engine.stats} — survivor and loop-iteration totals plus the
    per-constraint pruned counts, tagged with each constraint's class
    and whether it sits at depth 0 — as deterministic JSON.
    [beast merge] reads the N files back and recombines them with the
    same depth-0 de-duplication the in-process scheduler uses, so the
    merged file is byte-for-byte the one an unsharded sweep writes. *)

type constraint_row = {
  cr_name : string;
  cr_class : Space.constraint_class;
  cr_depth0 : bool;
      (** placed before the first loop: executed once per shard, so
          merging keeps a single shard's count instead of summing *)
  cr_fired : int;
}

type shard = {
  shard_index : int;
  shard_of : int;
}

val unsharded : shard
(** [{shard_index = 0; shard_of = 1}] — a whole-space run. *)

type t = {
  space : string;
  run_id : string option;
      (** the writing run's id, present only when the run was given an
          explicit [--run-id] (a minted id would break the byte-identity
          of instrumented vs uninstrumented stats files); dropped by
          {!merge} *)
  shard : shard;
  survivors : int;
  loop_iterations : int;
  constraints : constraint_row list;
  metrics : Beast_obs.Metrics.snapshot option;
      (** recorded metrics (histograms/counters/gauges) when the run had
          a registry installed; omitted from the JSON when [None] *)
  provenance : Provenance.summary option;
      (** single-pass pruning provenance when the run had a collector
          installed ([--explain-out]); omitted from the JSON when
          [None] *)
}

val of_stats :
  plan:Plan.t -> ?run_id:string -> ?shard:shard ->
  ?metrics:Beast_obs.Metrics.snapshot ->
  ?provenance:Provenance.summary ->
  Engine.stats -> t
(** Tag engine statistics with the plan's constraint metadata. [plan]
    must be the {e unchunked} plan (a chunked plan with no loops may
    have dropped its depth-0 steps). [shard] defaults to {!unsharded}. *)

val to_stats : t -> Engine.stats
(** Back to engine statistics, e.g. for {!Engine.pp_stats}. *)

val to_json : t -> string
(** Deterministic encoding: fixed key order, two-space indent, one
    constraint per line, trailing newline. Equal values encode to equal
    bytes. *)

val to_jsonx : t -> Beast_obs.Jsonx.t
(** The parsed form of {!to_json} — the payload shape
    {!Beast_obs.Archive.ingest} consumes when a sweep archives
    itself. *)

val of_json : string -> (t, string) result
val of_file : string -> (t, string) result
val write_file : string -> t -> unit

val constraint_class_of_name : string -> Space.constraint_class
(** Inverse of {!Space.constraint_class_name}; raises
    [Beast_obs.Jsonx.Error] on an unknown name. Shared with the
    {!Checkpoint} decoder. *)

val merge : t list -> (t, string) result
(** Recombine a complete shard set: every input must describe the same
    space, constraint list and split arity [N], and the indices must
    cover [0..N-1] exactly once. Totals and non-depth-0 fired counts
    sum; depth-0 fired counts keep a single shard's value. The result is
    an {!unsharded} record, so [to_json (merge shards)] equals the
    unsharded sweep's file byte-for-byte.

    Metric snapshots merge by bucket-wise pooling (lossless for the
    log-bucketed histograms), giving exact fleet-level percentiles; it
    is an error if only some shards carry metrics.

    Provenance summaries merge with {!Provenance.merge_summaries}
    (removal counts and depth entries sum, survivor-density cells union
    by outer value), so merged shard provenance is byte-identical to an
    unsharded instrumented run's; it is an error if only some shards
    carry provenance. *)
