(* The interpreter reuses the plan only for structure (loop order and step
   placement); all evaluation goes through the original named bodies and a
   string-keyed hash table, so each variable access costs an associative
   lookup — the scripting-tier cost model of Section XI-B. *)

open Beast_obs

let run ?on_hit ?(variant = `Hoisted) space =
  let hoist =
    match variant with
    | `Hoisted -> true
    | `Naive -> false
  in
  let plan = Plan.make_exn ~hoist space in
  (* The interpreter's environment is string-keyed, so provenance (which
     evaluates trip bounds over the slot machine) keeps an integer slot
     mirror, updated on loop entry and derivation in the instrumented
     path. With [`Naive] every constraint sits at the innermost depth
     and each firing removes exactly one point (empty subtree product),
     so attribution is trivially exact. *)
  let prov = Provenance.current () in
  let plocal =
    Option.map (fun _ -> Provenance.local_of (Provenance.attribution plan)) prov
  in
  let instrument = Obs.instrumenting () || plocal <> None in
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let mirror slot (v : Value.t) =
    match v with
    | Int i -> slots.(slot) <- i
    | Bool b -> slots.(slot) <- (if b then 1 else 0)
    | Float _ | Str _ -> ()
  in
  let prov_fire, prov_hit =
    match plocal with
    | None -> ((fun _ -> ()), fun () -> ())
    | Some pl ->
      ( (fun c -> Provenance.fire pl slots c),
        fun () -> Provenance.hit pl slots )
  in
  let env : (string, Value.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) (Space.settings space);
  let lookup name = Hashtbl.find env name in
  let body_by_name = Hashtbl.create 64 in
  List.iter
    (fun dv -> Hashtbl.replace body_by_name dv.Space.dv_name dv.Space.dv_body)
    (Space.deriveds space);
  List.iter
    (fun cn -> Hashtbl.replace body_by_name cn.Space.cn_name cn.Space.cn_body)
    (Space.constraints space);
  let iter_by_name = Hashtbl.create 16 in
  List.iter
    (fun it -> Hashtbl.replace iter_by_name it.Space.it_name it.Space.it_iter)
    (Space.iterators space);
  let eval_body name =
    match Hashtbl.find body_by_name name with
    | Space.E e -> Expr.eval lookup e
    | Space.F { fn; _ } -> fn lookup
  in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let n_loops = List.length plan.Plan.iter_order in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  let check_time = Array.make (max 1 n_constraints) 0 in
  let depth_entries = Array.make (max 1 n_loops) 0 in
  let level_time = Array.make (max 1 n_loops) 0 in
  let outer_total = ref 0 in
  let outer_done = ref 0 in
  let sampler = Engine.make_sampler () in
  let tick () =
    if !loop_iterations land Engine.sample_mask = 0 then
      Engine.sample sampler ~points:!loop_iterations ~survivors:!survivors
        ~frac:
          (if !outer_total > 0 then
             float_of_int !outer_done /. float_of_int !outer_total
           else -1.0)
  in
  let rec exec_steps ~depth (steps : Plan.step list) =
    match steps with
    | [] -> ()
    | Yield :: rest ->
      incr survivors;
      prov_hit ();
      (match on_hit with
      | None -> ()
      | Some f -> f lookup);
      exec_steps ~depth rest
    | Derive { d_name; d_slot; _ } :: rest ->
      let v = eval_body d_name in
      Hashtbl.replace env d_name v;
      if instrument then mirror d_slot v;
      exec_steps ~depth rest
    | Check { c_name; c_index; _ } :: rest ->
      let fired =
        if instrument then begin
          let t0 = Clock.now_ns () in
          let v = Value.truthy (eval_body c_name) in
          check_time.(c_index) <- check_time.(c_index) + (Clock.now_ns () - t0);
          v
        end
        else Value.truthy (eval_body c_name)
      in
      if fired then begin
        pruned.(c_index) <- pruned.(c_index) + 1;
        prov_fire c_index
      end
      else exec_steps ~depth rest
    | Static_prune { sp_slot; sp_dead; _ } :: rest ->
      let n = Array.length sp_dead in
      loop_iterations := !loop_iterations + n;
      if instrument then depth_entries.(depth) <- depth_entries.(depth) + n;
      (match plocal with
      | None -> Array.iter (fun (_, c) -> pruned.(c) <- pruned.(c) + 1) sp_dead
      | Some pl ->
        Array.iter
          (fun (v, c) ->
            pruned.(c) <- pruned.(c) + 1;
            Provenance.static_fire pl slots ~slot:sp_slot ~value:v c)
          sp_dead);
      exec_steps ~depth rest
    | Loop { l_var; l_slot; l_body; _ } :: rest ->
      let it = Hashtbl.find iter_by_name l_var in
      (* Materializing the whole iterator before looping mirrors Python's
         range() building its value list (Section XI-B). *)
      let vs = Iter.materialize lookup it in
      if instrument then begin
        let t0 = Clock.now_ns () in
        if depth = 0 then outer_total := Array.length vs;
        Array.iteri
          (fun j v ->
            Hashtbl.replace env l_var v;
            mirror l_slot v;
            incr loop_iterations;
            depth_entries.(depth) <- depth_entries.(depth) + 1;
            if depth = 0 then outer_done := j + 1;
            tick ();
            exec_steps ~depth:(depth + 1) l_body)
          vs;
        level_time.(depth) <- level_time.(depth) + (Clock.now_ns () - t0)
      end
      else
        Array.iter
          (fun v ->
            Hashtbl.replace env l_var v;
            incr loop_iterations;
            exec_steps ~depth:(depth + 1) l_body)
          vs;
      Hashtbl.remove env l_var;
      exec_steps ~depth rest
  in
  let t0 = Clock.now_ns () in
  Obs.with_span ~cat:"engine"
    ~args:
      [
        ("space", Obs.Str plan.Plan.space_name);
        ( "variant",
          Obs.Str
            (match variant with
            | `Hoisted -> "hoisted"
            | `Naive -> "naive") );
      ]
    "sweep:interp"
    (fun () -> exec_steps ~depth:0 plan.Plan.steps);
  if instrument then
    Engine.emit_run_aggregates ~t0 plan ~pruned ~check_time ~depth_entries
      ~level_time;
  Obs.progress_tick ~points:!loop_iterations ~survivors:!survivors ~frac:1.0;
  (match (prov, plocal) with
  | Some collector, Some pl -> Provenance.publish collector ~depth_entries pl
  | _ -> ());
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi (fun i (n, c) -> (n, c, pruned.(i))) plan.Plan.constraint_info;
  }

(* Tree-walking evaluation of an existing plan — the Plan-target path of
   the engine API. No staging: every expression is re-walked through
   [Plan.eval_cexpr] per visit, keeping the interpreter's cost model
   while accepting plans the Space path cannot reconstruct (chunked,
   sliced or propagated ones). *)
let run_plan ?on_hit (plan : Plan.t) =
  let prov = Provenance.current () in
  let plocal =
    Option.map (fun _ -> Provenance.local_of (Provenance.attribution plan)) prov
  in
  let instrument = Obs.instrumenting () || plocal <> None in
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let prov_fire, prov_hit =
    match plocal with
    | None -> ((fun _ -> ()), fun () -> ())
    | Some pl ->
      ( (fun c -> Provenance.fire pl slots c),
        fun () -> Provenance.hit pl slots )
  in
  let lookup = Plan.lookup_of_slots plan slots in
  let eval_compute = function
    | Plan.CE e -> Plan.eval_cexpr slots e
    | Plan.CF f -> f slots
  in
  let materialize_citer = function
    | Plan.CRange (a, b, c) ->
      let start = Plan.eval_cexpr slots a
      and stop = Plan.eval_cexpr slots b
      and step = Plan.eval_cexpr slots c in
      if step = 0 then raise (Expr.Eval_error "Engine_interp: zero range step");
      Array.init (Plan.trip_count ~start ~stop ~step) (fun i ->
          start + (i * step))
    | Plan.CValues vs -> vs
    | Plan.CDyn f -> f slots
  in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let n_loops = List.length plan.Plan.iter_order in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  let check_time = Array.make (max 1 n_constraints) 0 in
  let depth_entries = Array.make (max 1 n_loops) 0 in
  let level_time = Array.make (max 1 n_loops) 0 in
  let outer_total = ref 0 in
  let outer_done = ref 0 in
  let sampler = Engine.make_sampler () in
  let tick () =
    if !loop_iterations land Engine.sample_mask = 0 then
      Engine.sample sampler ~points:!loop_iterations ~survivors:!survivors
        ~frac:
          (if !outer_total > 0 then
             float_of_int !outer_done /. float_of_int !outer_total
           else -1.0)
  in
  let rec exec_steps ~depth (steps : Plan.step list) =
    match steps with
    | [] -> ()
    | Yield :: rest ->
      incr survivors;
      prov_hit ();
      (match on_hit with
      | None -> ()
      | Some f -> f lookup);
      exec_steps ~depth rest
    | Derive { d_slot; d_compute; _ } :: rest ->
      slots.(d_slot) <- eval_compute d_compute;
      exec_steps ~depth rest
    | Check { c_index; c_compute; _ } :: rest ->
      let fired =
        if instrument then begin
          let t0 = Clock.now_ns () in
          let v = eval_compute c_compute <> 0 in
          check_time.(c_index) <- check_time.(c_index) + (Clock.now_ns () - t0);
          v
        end
        else eval_compute c_compute <> 0
      in
      if fired then begin
        pruned.(c_index) <- pruned.(c_index) + 1;
        prov_fire c_index
      end
      else exec_steps ~depth rest
    | Static_prune { sp_slot; sp_dead; _ } :: rest ->
      let n = Array.length sp_dead in
      loop_iterations := !loop_iterations + n;
      if instrument then depth_entries.(depth) <- depth_entries.(depth) + n;
      (match plocal with
      | None -> Array.iter (fun (_, c) -> pruned.(c) <- pruned.(c) + 1) sp_dead
      | Some pl ->
        Array.iter
          (fun (v, c) ->
            pruned.(c) <- pruned.(c) + 1;
            Provenance.static_fire pl slots ~slot:sp_slot ~value:v c)
          sp_dead);
      exec_steps ~depth rest
    | Loop { l_slot; l_iter; l_body; _ } :: rest ->
      let vs = materialize_citer l_iter in
      if instrument then begin
        let t0 = Clock.now_ns () in
        if depth = 0 then outer_total := Array.length vs;
        Array.iteri
          (fun j v ->
            slots.(l_slot) <- v;
            incr loop_iterations;
            depth_entries.(depth) <- depth_entries.(depth) + 1;
            if depth = 0 then outer_done := j + 1;
            tick ();
            exec_steps ~depth:(depth + 1) l_body)
          vs;
        level_time.(depth) <- level_time.(depth) + (Clock.now_ns () - t0)
      end
      else
        Array.iter
          (fun v ->
            slots.(l_slot) <- v;
            incr loop_iterations;
            exec_steps ~depth:(depth + 1) l_body)
          vs;
      exec_steps ~depth rest
  in
  let t0 = Clock.now_ns () in
  Obs.with_span ~cat:"engine"
    ~args:[ ("space", Obs.Str plan.Plan.space_name) ]
    "sweep:interp-plan"
    (fun () -> exec_steps ~depth:0 plan.Plan.steps);
  if instrument then
    Engine.emit_run_aggregates ~t0 plan ~pruned ~check_time ~depth_entries
      ~level_time;
  Obs.progress_tick ~points:!loop_iterations ~survivors:!survivors ~frac:1.0;
  (match (prov, plocal) with
  | Some collector, Some pl -> Provenance.publish collector ~depth_entries pl
  | _ -> ());
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi (fun i (n, c) -> (n, c, pruned.(i))) plan.Plan.constraint_info;
  }
