(** The tree-walking engine: names resolved through an associative table
    at every access and expression ASTs re-walked on every evaluation —
    deliberately reproducing the cost structure the paper measures for
    Python in Section XI-B ("Python's access to variables is through
    associative array lookup"). This is the baseline the generated-code
    engines are compared against.

    Two variants:
    - [`Naive] evaluates every derived variable and constraint at the
      innermost loop level, like a hand-written scripting enumerator with
      no dependency analysis;
    - [`Hoisted] uses the plan's DAG placement, isolating the benefit of
      hoisting from the benefit of compilation (the ablation of
      DESIGN.md §4). *)

val run :
  ?on_hit:Engine.on_hit ->
  ?variant:[ `Naive | `Hoisted ] ->
  Space.t ->
  Engine.stats
(** Default variant [`Hoisted]. @raise Plan.Error if planning fails. *)

val run_plan : ?on_hit:Engine.on_hit -> Plan.t -> Engine.stats
(** Tree-walk an existing plan (chunked, sliced or propagated — shapes
    the Space path cannot reconstruct), re-evaluating every expression
    through {!Plan.eval_cexpr} per visit. The Plan-target path of the
    engine API; the cost model stays interpretive, but without the
    string-keyed environment the Space path reproduces. *)
