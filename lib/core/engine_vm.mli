(** The bytecode engine: the plan is compiled to a flat instruction
    sequence over an integer register file and executed by a dispatch
    loop — the cost model of a register-based scripting VM such as Lua's,
    whose iteration rates the paper reports in Figure 18.

    Loops compile to trip-count form with explicit test/increment/jump
    instructions; [And]/[Or]/[If] compile to conditional jumps (preserving
    short-circuit evaluation); a firing constraint executes a fused
    count-and-jump instruction targeting the continuation of the loop at
    its hoisting depth. *)

type program
(** A compiled program; reusable across runs. *)

(** [instrument] (default false) interleaves Beast_obs bookkeeping
    instructions — per-depth entry counts, per-constraint and per-level
    stopwatches, throughput sampling. An uninstrumented program contains
    no such instructions, so tracing that is off costs nothing.
    [run_plan] and [run_space] pick the flag from
    [Beast_obs.Obs.instrumenting] automatically. *)
val compile : ?instrument:bool -> Plan.t -> program
val disassemble : program -> string
val instruction_count : program -> int

val run : ?on_hit:Engine.on_hit -> program -> Engine.stats
val run_plan : ?on_hit:Engine.on_hit -> Plan.t -> Engine.stats
val run_space : ?on_hit:Engine.on_hit -> Space.t -> Engine.stats
