(** Compact feasible sets (ROADMAP item 2, second half).

    A layered decision diagram over a plan's loop order: one layer per
    iterator, each node mapping the values feasible in its context to a
    shared child one layer down, value maps compressed into sorted
    arithmetic-progression runs and nodes hash-consed so identical
    sub-spaces share structure. The representation makes the survivor
    set a first-class value: exact {!count} without enumeration,
    {!nth}/{!sample} indexing, {!union}/{!inter} algebra, a
    deterministic {!to_string} serialization, and survivor-balanced
    shard planning ({!chunk_outer_balanced}).

    Two constructors: {!build} walks the plan (memoized on each
    subtree's free slots) and is exact; {!of_propagation} reads only
    the (already-tightened) iterator domains and is an upper bound —
    exact precisely when [Propagate.pass] folded every constraint into
    the iterators. *)

type t

val build : ?max_states:int -> Plan.t -> (t, string) result
(** Exact feasible set of the plan. The walk evaluates each loop
    subtree once per distinct context — the projection of the slot
    state onto the subtree's free slots — so cost is the number of
    distinct contexts times domain width, not the space size. Opaque
    computes and [CDyn] iterators are executed concretely but widen
    the memo key to the full slot state. [Error] (never an exception)
    on: context explosion past [max_states] (default 2M), an iterator
    visiting a value twice, a zero range step, division by zero, or a
    non-canonical nest shape. *)

val of_propagation : Plan.t -> (t, string) result
(** Product of the static iterator domains: every check assumed to
    pass. An upper bound on {!build}; [Error] when an iterator has
    symbolic bounds or is dynamic. *)

val count : t -> int
(** Exact number of feasible points. O(1): totals are stored on the
    nodes at construction. *)

val space_name : t -> string

val iterators : t -> string list
(** Layer order, outermost first (the plan's [iter_order]). *)

val nth : t -> int -> (string * int) list
(** The [i]-th feasible point, 0-indexed, in the canonical order —
    lexicographic by value per layer, outermost first, independent of
    the plan's trip order. One run scan per layer.
    @raise Invalid_argument when [i] is out of bounds. *)

val sample : ?rng:Random.State.t -> t -> (string * int) list option
(** A uniformly random feasible point ([None] for an empty set). The
    default generator is a fixed-seed state shared across calls, so an
    unseeded sequence is reproducible run to run. *)

val union : t -> t -> (t, string) result
val inter : t -> t -> (t, string) result
(** Set algebra over identical layer lists. [Error] on a layer-list
    mismatch or when a single layer is too wide to merge (a run
    compressing millions of values would have to be expanded). *)

val to_string : t -> string
(** Deterministic text form: children-first depth-first numbering from
    the root, runs in sorted value order — structure-equal diagrams
    serialize identically regardless of construction order, so
    separate processes can agree on shard plans by comparing digests. *)

val chunk_outer_balanced : t -> Plan.t -> index:int -> of_:int -> Plan.t
(** [Plan.chunk_outer] with the cut positions chosen by cumulative
    feasible count: each chunk is a contiguous block of the outer trip
    sequence holding as close to [count t / of_] survivors as block
    boundaries allow, instead of an equal share of raw trip positions.
    [t] must describe [plan] (built from it or its propagated form).
    Falls back to [Plan.chunk_outer] when the outer iterator is not
    static. Depth-0 [Static_prune] bookkeeping splits by block
    position, so merged statistics still sum to the sequential run's.
    @raise Invalid_argument for [of_ <= 0] or [index] out of range. *)
