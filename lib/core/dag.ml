type t = {
  order : string array;  (* declaration order *)
  index : (string, int) Hashtbl.t;
  preds : int list array;  (* deps, by index, ascending *)
  succs : int list array;
  levels : int array;
}

type error =
  | Unknown_node of string * string
  | Cycle of string list

let pp_error ppf = function
  | Unknown_node (referrer, missing) ->
    Format.fprintf ppf "%s references unknown node %s" referrer missing
  | Cycle names ->
    Format.fprintf ppf "dependency cycle: %s" (String.concat " -> " names)

let create_untraced ~nodes ~edges =
  let order = Array.of_list nodes in
  let n = Array.length order in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i name -> Hashtbl.replace index name i) order;
  let preds = Array.make n [] and succs = Array.make n [] in
  let exception Bad of error in
  try
    let resolve referrer name =
      match Hashtbl.find_opt index name with
      | Some i -> i
      | None -> raise (Bad (Unknown_node (referrer, name)))
    in
    List.iter
      (fun (u, v) ->
        let ui = resolve v u and vi = resolve u v in
        if not (List.mem ui preds.(vi)) then begin
          preds.(vi) <- ui :: preds.(vi);
          succs.(ui) <- vi :: succs.(ui)
        end)
      edges;
    Array.iteri (fun i l -> preds.(i) <- List.sort Int.compare l) preds;
    Array.iteri (fun i l -> succs.(i) <- List.sort Int.compare l) succs;
    (* Longest-path levels via DFS; 0=white 1=grey 2=black. Grey hit = cycle. *)
    let levels = Array.make n (-1) in
    let color = Array.make n 0 in
    let rec visit path i =
      match color.(i) with
      | 2 -> levels.(i)
      | 1 ->
        let cycle =
          let rec take = function
            | [] -> []
            | j :: rest -> if j = i then [ j ] else j :: take rest
          in
          List.rev_map (fun j -> order.(j)) (take path)
        in
        raise (Bad (Cycle (cycle @ [ order.(i) ])))
      | _ ->
        color.(i) <- 1;
        let lvl =
          List.fold_left (fun acc p -> max acc (1 + visit (i :: path) p)) 0 preds.(i)
        in
        color.(i) <- 2;
        levels.(i) <- lvl;
        lvl
    in
    Array.iteri (fun i _ -> ignore (visit [] i)) order;
    Ok { order; index; preds; succs; levels }
  with Bad e -> Error e

let create ~nodes ~edges =
  let module Obs = Beast_obs.Obs in
  Beast_obs.Metrics.time_phase "dag:build" @@ fun () ->
  Obs.with_span ~cat:"plan"
    ~args:
      [
        ("nodes", Obs.Int (List.length nodes));
        ("edges", Obs.Int (List.length edges));
      ]
    "dag:build"
    (fun () ->
      let r = create_untraced ~nodes ~edges in
      (match r with
      | Ok t ->
        let max_level = Array.fold_left max (-1) t.levels in
        Obs.instant ~cat:"plan"
          ~args:[ ("levels", Obs.Int (max_level + 1)) ]
          "dag:levels"
      | Error _ -> ());
      r)

let idx t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Dag: unknown node " ^ name)

let nodes t = Array.to_list t.order
let deps_of t name = List.map (fun i -> t.order.(i)) t.preds.(idx t name)
let users_of t name = List.map (fun i -> t.order.(i)) t.succs.(idx t name)
let level t name = t.levels.(idx t name)

let level_sets t =
  let max_level = Array.fold_left max 0 t.levels in
  let buckets = Array.make (max_level + 1) [] in
  (* Traverse in reverse declaration order so each bucket ends up in
     declaration order. *)
  for i = Array.length t.order - 1 downto 0 do
    buckets.(t.levels.(i)) <- t.order.(i) :: buckets.(t.levels.(i))
  done;
  Array.to_list buckets

let topo_order t =
  let n = Array.length t.order in
  let in_deg = Array.make n 0 in
  Array.iteri (fun i preds -> in_deg.(i) <- List.length preds) t.preds;
  let module Pq = Set.Make (Int) in
  let ready = ref Pq.empty in
  Array.iteri (fun i d -> if d = 0 then ready := Pq.add i !ready) in_deg;
  let out = ref [] in
  while not (Pq.is_empty !ready) do
    let i = Pq.min_elt !ready in
    ready := Pq.remove i !ready;
    out := i :: !out;
    List.iter
      (fun s ->
        in_deg.(s) <- in_deg.(s) - 1;
        if in_deg.(s) = 0 then ready := Pq.add s !ready)
      t.succs.(i)
  done;
  List.rev_map (fun i -> t.order.(i)) !out

let closure step t name =
  let seen = Hashtbl.create 16 in
  let rec go i =
    List.iter
      (fun j ->
        if not (Hashtbl.mem seen j) then begin
          Hashtbl.replace seen j ();
          go j
        end)
      (step t i)
  in
  go (idx t name);
  Hashtbl.fold (fun i () acc -> t.order.(i) :: acc) seen []
  |> List.sort String.compare

let transitive_deps = closure (fun t i -> t.preds.(i))
let transitive_users = closure (fun t i -> t.succs.(i))

let to_dot ?(name = "beast") ?(attrs = fun _ -> "") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Array.iter
    (fun node ->
      let extra = attrs node in
      let extra = if extra = "" then "" else ", " ^ extra in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\"%s];\n" node node extra))
    t.order;
  Array.iteri
    (fun i succs ->
      List.iter
        (fun j ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" t.order.(i) t.order.(j)))
        succs)
    t.succs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
