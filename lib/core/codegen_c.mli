(** Translation of a plan to standard C — the paper's headline backend
    (Sections X–XI): "a translation system that converts that description
    to a standard C code, which can then be compiled with a C compiler,
    executed at high speed, and multithreaded for extra performance."

    The emitted translation unit contains:
    - [beast_sweep_slice(slice_index, slice_count, prune_counts,
      loop_iterations, survivor_hook)] enumerating a round-robin slice of
      the outermost loop (slice 0 of 1 is the whole space). Steps before
      the first loop execute in every slice, but only slice 0 counts
      their statistics (depth-0 constraint firings, the yield of a
      loop-free plan), so per-slice totals sum to exactly the
      sequential run's — the invariant {!Engine_native} relies on for
      byte-identical multithreaded stats;
    - [beast_sweep(...)] — the single-threaded entry;
    - a [main] that runs the sweep (across [threads] POSIX threads when
      [threads > 1]) and prints the statistics in a stable, parseable
      format: one [survivors N] line, one [iterations N] line and one
      [pruned <name> N] line per constraint.

    Restrictions (mirroring the translatable subset of the paper's
    Python): opaque OCaml bodies ([Space.derived_f] / [Space.constrain_f])
    and closure iterators that depend on other iterators cannot be
    translated and yield [Unsupported]. Closure iterators over settings
    only have already been tabulated by the planner and translate as
    static arrays. *)

type error = Unsupported of string

val sanitize : string -> string
(** Map a parameter name to a valid C identifier fragment (shared with
    the other language backends in {!Codegen}). *)

val pp_error : Format.formatter -> error -> unit

val generate :
  ?threads:int -> ?emit_survivors:bool -> Plan.t -> (string, error) result
(** [generate plan] returns the C source. [threads] (default 1) selects
    the pthread fan-out compiled into [main]. [emit_survivors] (default
    false) additionally prints one [hit <v0> <v1> ...] line per survivor
    (iterator values in loop order). *)

val generate_exn : ?threads:int -> ?emit_survivors:bool -> Plan.t -> string

exception Error of error
