(* Shard results as JSON: what [beast sweep --stats-out] writes and
   [beast merge] reads back. The encoding is fully deterministic (fixed
   key order, no timestamps), so merging the N shard files of any split
   reproduces the unsharded file byte-for-byte. *)

type constraint_row = {
  cr_name : string;
  cr_class : Space.constraint_class;
  cr_depth0 : bool;
  cr_fired : int;
}

type shard = {
  shard_index : int;
  shard_of : int;
}

let unsharded = { shard_index = 0; shard_of = 1 }

type t = {
  space : string;
  shard : shard;
  survivors : int;
  loop_iterations : int;
  constraints : constraint_row list;
}

let of_stats ~(plan : Plan.t) ?(shard = unsharded) (stats : Engine.stats) =
  let depth0 = Plan.depth0_constraints plan in
  {
    space = plan.Plan.space_name;
    shard;
    survivors = stats.Engine.survivors;
    loop_iterations = stats.Engine.loop_iterations;
    constraints =
      Array.to_list
        (Array.mapi
           (fun i (n, c, k) ->
             { cr_name = n; cr_class = c; cr_depth0 = depth0.(i); cr_fired = k })
           stats.Engine.pruned);
  }

let to_stats t =
  {
    Engine.survivors = t.survivors;
    loop_iterations = t.loop_iterations;
    pruned =
      Array.of_list
        (List.map (fun r -> (r.cr_name, r.cr_class, r.cr_fired)) t.constraints);
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"space\": \"%s\",\n" (escape_string t.space);
  add "  \"shard\": { \"index\": %d, \"of\": %d },\n" t.shard.shard_index
    t.shard.shard_of;
  add "  \"survivors\": %d,\n" t.survivors;
  add "  \"loop_iterations\": %d,\n" t.loop_iterations;
  add "  \"constraints\": [";
  List.iteri
    (fun i r ->
      add "%s\n    { \"name\": \"%s\", \"class\": \"%s\", \"depth0\": %b, \"fired\": %d }"
        (if i = 0 then "" else ",")
        (escape_string r.cr_name)
        (Space.constraint_class_name r.cr_class)
        r.cr_depth0 r.cr_fired)
    t.constraints;
  if t.constraints <> [] then add "\n  ";
  add "]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding: a minimal JSON reader, enough for the files we emit       *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of int
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, got %c" c c'
    | None -> fail "expected %c, got end of input" c
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "invalid \\u escape %s" hex
            in
            if code > 0x7f then fail "non-ASCII \\u escape unsupported";
            Buffer.add_char buf (Char.chr code)
          | c -> fail "invalid escape \\%c" c);
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected a number";
    int_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_int ())
    | Some c -> fail "unexpected character %c" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj members -> (
    match List.assoc_opt name members with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Parse_error (Printf.sprintf "expected an object with %S" name))

let as_int name = function
  | Num k -> k
  | _ -> raise (Parse_error (Printf.sprintf "%s: expected an integer" name))

let as_str name = function
  | Str s -> s
  | _ -> raise (Parse_error (Printf.sprintf "%s: expected a string" name))

let as_bool name = function
  | Bool b -> b
  | _ -> raise (Parse_error (Printf.sprintf "%s: expected a boolean" name))

let constraint_class_of_name = function
  | "hard" -> Space.Hard
  | "soft" -> Space.Soft
  | "correctness" -> Space.Correctness
  | other ->
    raise (Parse_error (Printf.sprintf "unknown constraint class %S" other))

let of_json text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | json -> (
    try
      let shard_json = field "shard" json in
      let constraints =
        match field "constraints" json with
        | Arr rows ->
          List.map
            (fun row ->
              {
                cr_name = as_str "name" (field "name" row);
                cr_class =
                  constraint_class_of_name (as_str "class" (field "class" row));
                cr_depth0 = as_bool "depth0" (field "depth0" row);
                cr_fired = as_int "fired" (field "fired" row);
              })
            rows
        | _ -> raise (Parse_error "constraints: expected an array")
      in
      Ok
        {
          space = as_str "space" (field "space" json);
          shard =
            {
              shard_index = as_int "index" (field "index" shard_json);
              shard_of = as_int "of" (field "of" shard_json);
            };
          survivors = as_int "survivors" (field "survivors" json);
          loop_iterations =
            as_int "loop_iterations" (field "loop_iterations" json);
          constraints;
        }
    with Parse_error msg -> Error msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t))

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let constraints_compatible a b =
  List.length a.constraints = List.length b.constraints
  && List.for_all2
       (fun x y ->
         x.cr_name = y.cr_name && x.cr_class = y.cr_class
         && x.cr_depth0 = y.cr_depth0)
       a.constraints b.constraints

let merge = function
  | [] -> Error "no shard files given"
  | first :: rest as shards -> (
    match
      List.find_opt (fun s -> s.space <> first.space) rest
    with
    | Some s ->
      Error
        (Printf.sprintf "shards mix spaces %S and %S" first.space s.space)
    | None ->
      if List.exists (fun s -> s.shard.shard_of <> first.shard.shard_of) rest
      then Error "shards come from splits of different arity"
      else if List.exists (fun s -> not (constraints_compatible first s)) rest
      then Error "shards disagree on the constraint list"
      else begin
        let of_ = first.shard.shard_of in
        let indices =
          List.sort compare (List.map (fun s -> s.shard.shard_index) shards)
        in
        if indices <> List.init of_ Fun.id then
          Error
            (Printf.sprintf
               "need each of shards 0..%d exactly once, got {%s}" (of_ - 1)
               (String.concat ", " (List.map string_of_int indices)))
        else
          let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
          let constraints =
            List.mapi
              (fun i r ->
                let fired_of s = (List.nth s.constraints i).cr_fired in
                let fired =
                  if r.cr_depth0 then
                    (* depth-0 checks ran once per shard with identical
                       results (loop-free plans excepted, where only
                       shard 0 carries them): keep a single shard's
                       count via max, which is order-independent. *)
                    List.fold_left (fun acc s -> max acc (fired_of s)) 0 shards
                  else sum fired_of
                in
                { r with cr_fired = fired })
              first.constraints
          in
          Ok
            {
              space = first.space;
              shard = unsharded;
              survivors = sum (fun s -> s.survivors);
              loop_iterations = sum (fun s -> s.loop_iterations);
              constraints;
            }
      end)
