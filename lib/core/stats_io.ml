(* Shard results as JSON: what [beast sweep --stats-out] writes and
   [beast merge] reads back. The encoding is fully deterministic (fixed
   key order, no timestamps), so merging the N shard files of any split
   reproduces the unsharded file byte-for-byte.

   When a run had a metrics registry installed, its snapshot rides along
   under a "metrics" key (omitted entirely otherwise, keeping old files
   and byte-compare harnesses unchanged). Histogram state is mergeable
   without loss — bucket-wise addition is exactly the pooled-sample
   histogram — so [beast merge] recombines shard metrics into fleet-level
   percentiles. *)

module Jsonx = Beast_obs.Jsonx
module Metrics = Beast_obs.Metrics

type constraint_row = {
  cr_name : string;
  cr_class : Space.constraint_class;
  cr_depth0 : bool;
  cr_fired : int;
}

type shard = {
  shard_index : int;
  shard_of : int;
}

let unsharded = { shard_index = 0; shard_of = 1 }

type t = {
  space : string;
  run_id : string option;
  shard : shard;
  survivors : int;
  loop_iterations : int;
  constraints : constraint_row list;
  metrics : Metrics.snapshot option;
  provenance : Provenance.summary option;
}

let of_stats ~(plan : Plan.t) ?run_id ?(shard = unsharded) ?metrics ?provenance
    (stats : Engine.stats) =
  let depth0 = Plan.depth0_constraints plan in
  {
    space = plan.Plan.space_name;
    run_id;
    shard;
    survivors = stats.Engine.survivors;
    loop_iterations = stats.Engine.loop_iterations;
    constraints =
      Array.to_list
        (Array.mapi
           (fun i (n, c, k) ->
             { cr_name = n; cr_class = c; cr_depth0 = depth0.(i); cr_fired = k })
           stats.Engine.pruned);
    metrics;
    provenance;
  }

let to_stats t =
  {
    Engine.survivors = t.survivors;
    loop_iterations = t.loop_iterations;
    pruned =
      Array.of_list
        (List.map (fun r -> (r.cr_name, r.cr_class, r.cr_fired)) t.constraints);
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"space\": \"%s\",\n" (escape_string t.space);
  (* Only present on request (an explicit --run-id): a minted id would
     break the byte-identity of instrumented vs plain stats files. *)
  (match t.run_id with
  | None -> ()
  | Some id -> add "  \"run_id\": \"%s\",\n" (escape_string id));
  add "  \"shard\": { \"index\": %d, \"of\": %d },\n" t.shard.shard_index
    t.shard.shard_of;
  add "  \"survivors\": %d,\n" t.survivors;
  add "  \"loop_iterations\": %d,\n" t.loop_iterations;
  add "  \"constraints\": [";
  List.iteri
    (fun i r ->
      add "%s\n    { \"name\": \"%s\", \"class\": \"%s\", \"depth0\": %b, \"fired\": %d }"
        (if i = 0 then "" else ",")
        (escape_string r.cr_name)
        (Space.constraint_class_name r.cr_class)
        r.cr_depth0 r.cr_fired)
    t.constraints;
  if t.constraints <> [] then add "\n  ";
  add "]";
  (match t.metrics with
  | None -> ()
  | Some snap ->
    add ",\n  \"metrics\": ";
    Metrics.Snapshot.add_json buf ~indent:"  " snap);
  (match t.provenance with
  | None -> ()
  | Some s ->
    add ",\n  \"provenance\": ";
    Provenance.add_json buf ~indent:"  " s);
  add "\n}\n";
  Buffer.contents buf

(* Going through the serialized text keeps exactly one encoding of a
   stats record in the tree; the cost is one parse of a small file. *)
let to_jsonx t = Jsonx.parse_exn (to_json t)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let constraint_class_of_name = function
  | "hard" -> Space.Hard
  | "soft" -> Space.Soft
  | "correctness" -> Space.Correctness
  | other ->
    raise (Jsonx.Error (Printf.sprintf "unknown constraint class %S" other))

let of_json text =
  match Jsonx.parse text with
  | Error msg -> Error msg
  | Ok json -> (
    try
      let shard_json = Jsonx.member "shard" json in
      let constraints =
        List.map
          (fun row ->
            {
              cr_name = Jsonx.to_str "name" (Jsonx.member "name" row);
              cr_class =
                constraint_class_of_name
                  (Jsonx.to_str "class" (Jsonx.member "class" row));
              cr_depth0 = Jsonx.to_bool "depth0" (Jsonx.member "depth0" row);
              cr_fired = Jsonx.to_int "fired" (Jsonx.member "fired" row);
            })
          (Jsonx.to_list "constraints" (Jsonx.member "constraints" json))
      in
      let metrics =
        match Jsonx.member_opt "metrics" json with
        | None -> None
        | Some m -> (
          match Metrics.Snapshot.of_jsonx m with
          | Ok snap -> Some snap
          | Error msg -> raise (Jsonx.Error (Printf.sprintf "metrics: %s" msg)))
      in
      let provenance =
        match Jsonx.member_opt "provenance" json with
        | None -> None
        | Some p -> (
          match Provenance.of_jsonx p with
          | Ok s -> Some s
          | Error msg ->
            raise (Jsonx.Error (Printf.sprintf "provenance: %s" msg)))
      in
      Ok
        {
          space = Jsonx.to_str "space" (Jsonx.member "space" json);
          run_id =
            Option.map (Jsonx.to_str "run_id") (Jsonx.member_opt "run_id" json);
          shard =
            {
              shard_index = Jsonx.to_int "index" (Jsonx.member "index" shard_json);
              shard_of = Jsonx.to_int "of" (Jsonx.member "of" shard_json);
            };
          survivors = Jsonx.to_int "survivors" (Jsonx.member "survivors" json);
          loop_iterations =
            Jsonx.to_int "loop_iterations" (Jsonx.member "loop_iterations" json);
          constraints;
          metrics;
          provenance;
        }
    with Jsonx.Error msg -> Error msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

let write_file path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t))

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let constraints_compatible a b =
  List.length a.constraints = List.length b.constraints
  && List.for_all2
       (fun x y ->
         x.cr_name = y.cr_name && x.cr_class = y.cr_class
         && x.cr_depth0 = y.cr_depth0)
       a.constraints b.constraints

(* Metric snapshots pool bucket-wise (each shard's samples genuinely
   happened, including the per-shard depth-0 evaluations), so the merged
   percentiles describe the fleet. All shards must agree on whether
   metrics were recorded. *)
let merge_metrics shards =
  match List.partition (fun s -> s.metrics <> None) shards with
  | [], _ -> Ok None
  | _, [] ->
    Result.map
      (fun m -> Some m)
      (Metrics.Snapshot.merge
         (List.filter_map (fun s -> s.metrics) shards))
  | _, _ -> Error "some shards carry metrics and some do not"

(* Provenance merges exactly: removal counts and depth entries sum,
   survivor-density cells union by outer value. Depth-0 firings carry
   chunk-sized removal closures, so even those sum (unlike the fired
   counts above, which max-dedupe). Mixed presence is an error, like
   metrics. *)
let merge_provenance shards =
  match List.partition (fun s -> s.provenance <> None) shards with
  | [], _ -> Ok None
  | _, [] ->
    Result.map
      (fun p -> Some p)
      (Provenance.merge_summaries
         (List.filter_map (fun s -> s.provenance) shards))
  | _, _ -> Error "some shards carry provenance and some do not"

let merge = function
  | [] -> Error "no shard files given"
  | first :: rest as shards -> (
    match
      List.find_opt (fun s -> s.space <> first.space) rest
    with
    | Some s ->
      Error
        (Printf.sprintf "shards mix spaces %S and %S" first.space s.space)
    | None ->
      if List.exists (fun s -> s.shard.shard_of <> first.shard.shard_of) rest
      then Error "shards come from splits of different arity"
      else if List.exists (fun s -> not (constraints_compatible first s)) rest
      then Error "shards disagree on the constraint list"
      else begin
        let of_ = first.shard.shard_of in
        let indices =
          List.sort compare (List.map (fun s -> s.shard.shard_index) shards)
        in
        if indices <> List.init of_ Fun.id then
          Error
            (Printf.sprintf
               "need each of shards 0..%d exactly once, got {%s}" (of_ - 1)
               (String.concat ", " (List.map string_of_int indices)))
        else
          match merge_metrics shards with
          | Error msg -> Error msg
          | Ok metrics -> (
            match merge_provenance shards with
            | Error msg -> Error msg
            | Ok provenance ->
            let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
            let constraints =
              List.mapi
                (fun i r ->
                  let fired_of s = (List.nth s.constraints i).cr_fired in
                  let fired =
                    if r.cr_depth0 then
                      (* depth-0 checks ran once per shard with identical
                         results (loop-free plans excepted, where only
                         shard 0 carries them): keep a single shard's
                         count via max, which is order-independent. *)
                      List.fold_left (fun acc s -> max acc (fired_of s)) 0 shards
                    else sum fired_of
                  in
                  { r with cr_fired = fired })
                first.constraints
            in
            Ok
              {
                space = first.space;
                (* Each shard ran as its own process with its own id;
                   the merged file describes no single run. *)
                run_id = None;
                shard = unsharded;
                survivors = sum (fun s -> s.survivors);
                loop_iterations = sum (fun s -> s.loop_iterations);
                constraints;
                metrics;
                provenance;
              })
      end)
