(* The compiled tier: translate the plan to C (Codegen_c), compile it
   with the system compiler, run the binary as a subprocess and parse
   its stats lines back into Engine.stats. The binary is cached under a
   content hash of (source, compiler, flags), so only the first sweep of
   a space pays the compile; everything after is fork+exec.

   All failures — untranslatable plan, missing compiler, failed compile,
   crashed or garbled subprocess — are [Error of string] with a one-line
   message, never a raw exception trace: the CLI maps them to exit 2. *)

open Beast_obs

exception Error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Error ("native: " ^ s))) fmt

(* ------------------------------------------------------------------ *)
(* Compiler detection and the binary cache                             *)
(* ------------------------------------------------------------------ *)

let cc () =
  match Sys.getenv_opt "BEAST_CC" with
  | Some s when s <> "" -> s
  | _ -> "cc"

let cflags = [ "-O2"; "-std=c99" ]

let default_cache_dir () =
  match Sys.getenv_opt "BEAST_NATIVE_CACHE" with
  | Some s when s <> "" -> s
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "beast-native"

let compiler_available compiler =
  if Filename.is_implicit compiler then
    (* Resolve through $PATH the way execvp would. *)
    String.split_on_char ':' (Option.value ~default:"" (Sys.getenv_opt "PATH"))
    |> List.exists (fun dir ->
           dir <> "" && Sys.file_exists (Filename.concat dir compiler))
  else Sys.file_exists compiler

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Run [argv] with stderr sent to [err_file]; return the exit status. *)
let run_quiet argv err_file =
  let err_fd =
    Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close err_fd)
      (fun () ->
        Unix.create_process argv.(0) argv Unix.stdin Unix.stdout err_fd)
  in
  let _, status = Unix.waitpid [] pid in
  status

let first_lines ?(n = 5) file =
  match In_channel.with_open_text file In_channel.input_all with
  | "" -> "(no diagnostics)"
  | s ->
    let lines = String.split_on_char '\n' s in
    let kept = List.filteri (fun i _ -> i < n) lines in
    String.concat " | " (List.filter (fun l -> l <> "") kept)
  | exception Sys_error _ -> "(no diagnostics)"

let source_of_plan ?threads ?emit_survivors plan =
  match Codegen_c.generate ?threads ?emit_survivors plan with
  | Ok src -> src
  | Result.Error (Codegen_c.Unsupported msg) ->
    errorf
      "space %s cannot run on the native engine (%s); use staged or parallel"
      plan.Plan.space_name msg

let compile ?workdir ?threads ?emit_survivors (plan : Plan.t) =
  let source = source_of_plan ?threads ?emit_survivors plan in
  let compiler = cc () in
  let key =
    Digest.to_hex
      (Digest.string (String.concat "\x00" (source :: compiler :: cflags)))
  in
  let workdir =
    match workdir with Some d -> d | None -> default_cache_dir ()
  in
  let exe = Filename.concat workdir ("beast_" ^ key) in
  if Sys.file_exists exe then exe
  else begin
    if not (compiler_available compiler) then
      errorf "no C compiler: %S not found (set $BEAST_CC or install cc)"
        compiler;
    mkdir_p workdir;
    (* Stage under pid-tagged .tmp names and rename into place, so a
       killed or failing compile never leaves a half-written binary a
       later run could mistake for a cache hit. *)
    let tag = Printf.sprintf ".tmp.%d" (Unix.getpid ()) in
    (* The staged source must keep its .c suffix or the compiler treats
       it as a linker script. *)
    let src_tmp = exe ^ tag ^ ".c" in
    let exe_tmp = exe ^ tag in
    let err_tmp = exe ^ ".err" ^ tag in
    let cleanup f = try Sys.remove f with Sys_error _ -> () in
    Fun.protect
      ~finally:(fun () -> List.iter cleanup [ src_tmp; exe_tmp; err_tmp ])
      (fun () ->
        Out_channel.with_open_text src_tmp (fun oc ->
            Out_channel.output_string oc source);
        let argv =
          Array.of_list
            ((compiler :: cflags) @ [ "-pthread"; src_tmp; "-o"; exe_tmp ])
        in
        let status =
          try run_quiet argv err_tmp
          with Unix.Unix_error (e, _, _) ->
            errorf "could not run %s: %s" compiler (Unix.error_message e)
        in
        (match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED n ->
          errorf "%s exited with status %d compiling %s: %s" compiler n
            plan.Plan.space_name (first_lines err_tmp)
        | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          errorf "%s killed by signal %d compiling %s" compiler s
            plan.Plan.space_name);
        (* Keep the source next to the binary for debugging cache
           entries; both renames are atomic within the workdir. *)
        Sys.rename src_tmp (exe ^ ".c");
        Sys.rename exe_tmp exe);
    exe
  end

(* ------------------------------------------------------------------ *)
(* Parsing the subprocess's stats lines                                *)
(* ------------------------------------------------------------------ *)

(* Derive steps flattened in nest order: replaying them against the
   iterator values of a [hit] line rebuilds every slot, so the [on_hit]
   callback sees the same lookup the in-process engines provide. *)
let derive_sequence (plan : Plan.t) =
  let rec go acc steps =
    List.fold_left
      (fun acc (step : Plan.step) ->
        match step with
        | Plan.Derive { d_slot; d_compute; _ } -> (d_slot, d_compute) :: acc
        | Plan.Loop { l_body; _ } -> go acc l_body
        | Plan.Check _ | Plan.Yield | Plan.Static_prune _ -> acc)
      acc steps
  in
  List.rev (go [] plan.Plan.steps)

let stats_of_lines ?on_hit (plan : Plan.t) (lines : string Seq.t) :
    (Engine.stats, string) result =
  let n_iters = List.length plan.Plan.iter_order in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let derives = derive_sequence plan in
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let replay_hit values =
    match on_hit with
    | None -> ()
    | Some f ->
      Array.iteri (fun i v -> slots.(plan.Plan.iter_slots.(i)) <- v) values;
      List.iter
        (fun (slot, compute) ->
          match (compute : Plan.compute) with
          | Plan.CE e -> slots.(slot) <- Plan.eval_cexpr slots e
          | Plan.CF f -> slots.(slot) <- f slots)
        derives;
      f (Plan.lookup_of_slots plan slots)
  in
  (* Grammar: hit* , survivors N , iterations N , pruned <name> N per
     constraint in plan order. Anything else is a hard error naming the
     line — garbled output must never parse as plausible statistics. *)
  let hits = ref 0 in
  let survivors = ref None in
  let iterations = ref None in
  let pruned = Array.make (max 1 n_constraints) 0 in
  let next_constraint = ref 0 in
  let fail = ref None in
  let reject lineno fmt =
    Printf.ksprintf
      (fun s ->
        if !fail = None then
          fail := Some (Printf.sprintf "native: output line %d: %s" lineno s))
      fmt
  in
  let int_field lineno what s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> reject lineno "%s is not an integer: %S" what s
  in
  let lineno = ref 0 in
  let handle line =
    incr lineno;
    let lineno = !lineno in
    match String.split_on_char ' ' line with
    | "hit" :: values ->
      if !survivors <> None then
        reject lineno "hit line after the summary started"
      else if List.length values <> n_iters then
        reject lineno
          "hit line has %d values, expected %d (interleaved or truncated \
           output?)"
          (List.length values) n_iters
      else begin
        let parsed = Array.make n_iters 0 in
        List.iteri
          (fun i s ->
            int_field lineno (Printf.sprintf "hit value %d" i) s (fun v ->
                parsed.(i) <- v))
          values;
        if !fail = None then begin
          incr hits;
          replay_hit parsed
        end
      end
    | [ "survivors"; n ] ->
      if !survivors <> None then reject lineno "duplicate survivors line"
      else int_field lineno "survivors" n (fun v -> survivors := Some v)
    | [ "iterations"; n ] ->
      if !survivors = None then reject lineno "iterations before survivors"
      else if !iterations <> None then
        reject lineno "duplicate iterations line"
      else int_field lineno "iterations" n (fun v -> iterations := Some v)
    | [ "pruned"; name; n ] ->
      if !iterations = None then
        reject lineno "pruned line before iterations"
      else if !next_constraint >= n_constraints then
        reject lineno "unexpected extra pruned line for %S" name
      else begin
        let expected, _ = plan.Plan.constraint_info.(!next_constraint) in
        if name <> Codegen_c.sanitize expected then
          reject lineno "pruned line for %S, expected constraint %S" name
            expected
        else
          int_field lineno "pruned count" n (fun v ->
              pruned.(!next_constraint) <- v;
              incr next_constraint)
      end
    | _ -> reject lineno "unrecognized line %S" line
  in
  Seq.iter (fun line -> if !fail = None then handle line) lines;
  match !fail with
  | Some msg -> Result.Error msg
  | None -> (
    match (!survivors, !iterations) with
    | None, _ -> Result.Error "native: truncated output: no survivors line"
    | _, None -> Result.Error "native: truncated output: no iterations line"
    | Some sv, Some it ->
      if !next_constraint < n_constraints then
        Result.Error
          (Printf.sprintf
             "native: truncated output: %d of %d pruned lines missing"
             (n_constraints - !next_constraint)
             n_constraints)
      else if (on_hit <> None || !hits > 0) && !hits <> sv then
        Result.Error
          (Printf.sprintf
             "native: survivors line says %d but %d hit lines seen" sv !hits)
      else
        Ok
          {
            Engine.survivors = sv;
            loop_iterations = it;
            pruned =
              Array.mapi
                (fun i (n, c) -> (n, c, pruned.(i)))
                plan.Plan.constraint_info;
          })

(* ------------------------------------------------------------------ *)
(* Running the binary                                                  *)
(* ------------------------------------------------------------------ *)

let run ?on_hit ?workdir ?(threads = 1) (plan : Plan.t) =
  let emit_survivors = on_hit <> None in
  let exe = compile ?workdir ~threads ~emit_survivors plan in
  let stats =
    Obs.with_span ~cat:"engine"
      ~args:
        [
          ("space", Obs.Str plan.Plan.space_name);
          ("threads", Obs.Int threads);
        ]
      "sweep:native"
      (fun () ->
        let r, w = Unix.pipe ~cloexec:false () in
        let pid =
          try Unix.create_process exe [| exe |] Unix.stdin w Unix.stderr
          with Unix.Unix_error (e, _, _) ->
            Unix.close r;
            Unix.close w;
            errorf "could not run %s: %s" exe (Unix.error_message e)
        in
        Unix.close w;
        let ic = Unix.in_channel_of_descr r in
        let reaped = ref false in
        (* If parsing (or an [on_hit] callback) aborts mid-stream, the
           child must not be left running or as a zombie: kill and reap
           before the exception continues. *)
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            if not !reaped then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
            end)
          (fun () ->
            let lines = Seq.of_dispenser (fun () -> In_channel.input_line ic) in
            let parsed = stats_of_lines ?on_hit plan lines in
            let _, status = Unix.waitpid [] pid in
            reaped := true;
            match status with
            | Unix.WEXITED 0 -> (
              match parsed with
              | Ok stats -> stats
              | Result.Error msg -> raise (Error msg))
            | Unix.WEXITED n -> errorf "%s exited with status %d" exe n
            | Unix.WSIGNALED s -> errorf "%s killed by signal %d" exe s
            | Unix.WSTOPPED s -> errorf "%s stopped by signal %d" exe s))
  in
  Obs.progress_tick ~points:stats.Engine.loop_iterations
    ~survivors:stats.Engine.survivors ~frac:1.0;
  stats

let run_space ?on_hit ?workdir ?threads space =
  run ?on_hit ?workdir ?threads (Plan.make_exn space)
