(** Resumable-sweep snapshots.

    A checkpoint is the work-stealing scheduler's chunk ledger as a
    file: which chunks of an [n_chunks]-way split have completed, each
    one's stats partial, and the metrics histograms accumulated so far
    (bucket for bucket). Chunk merging is commutative and associative,
    so a resumed run that replays the ledger and sweeps only the missing
    chunks writes byte-identical [--stats-out] output to an
    uninterrupted run.

    Files are written atomically (write-temp-then-rename): a kill during
    {!save} leaves the previous complete checkpoint, never a truncated
    one. The JSON carries a [beast_checkpoint] version tag so future
    format changes are rejected with a diagnostic instead of parsed as
    garbage. *)

type chunk = {
  c_id : int;
  c_survivors : int;
  c_loop_iterations : int;
  c_fired : int array;  (** per-constraint fired counts, plan order *)
}

type t = {
  space : string;
  run_id : string option;
      (** id of the run that wrote the snapshot, when it had one; purely
          informational — {!validate} ignores it, since a resume is by
          definition a different run *)
  shard : Stats_io.shard;  (** the split this run was a shard of *)
  n_chunks : int;  (** arity of the chunk split being checkpointed *)
  constraints : (string * Space.constraint_class * bool) array;
      (** name, class, depth-0 flag — must match the plan on resume *)
  chunks : chunk list;  (** completed chunks, sorted by [c_id] *)
  metrics : Beast_obs.Metrics.snapshot option;
}

val make :
  plan:Plan.t ->
  ?run_id:string ->
  shard:Stats_io.shard ->
  n_chunks:int ->
  ?metrics:Beast_obs.Metrics.snapshot ->
  (int * Engine.stats) list ->
  t
(** Snapshot a ledger of [(chunk id, per-chunk stats)] pairs. [plan]
    must be the plan the chunk split was derived from (its constraint
    metadata is what {!validate} checks on resume). *)

val completed_ids : t -> int list
(** Ids of the completed chunks, ascending. *)

val chunk_stats : t -> (int * Engine.stats) list
(** The ledger back as per-chunk engine statistics, ascending by id. *)

val to_json : t -> string
(** Deterministic encoding: fixed key order, two-space indent, trailing
    newline. *)

val of_json : string -> (t, string) result
(** Parse and structurally validate: version tag, [n_chunks >= 1],
    unique in-range chunk ids, fired-count arity. Errors are prefixed
    ["checkpoint: "]. *)

val of_file : string -> (t, string) result

val save : string -> t -> unit
(** Atomic write: the JSON goes to [path ^ ".tmp"], then a rename
    replaces [path] in one step. *)

val validate : plan:Plan.t -> shard:Stats_io.shard -> t -> (unit, string) result
(** Check that a loaded checkpoint belongs to this run: same space name,
    same shard of the same split, same constraint list (names, classes
    and depth-0 placement). *)
