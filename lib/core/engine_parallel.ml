open Beast_obs

(* Serialize survivor callbacks behind a mutex so user callbacks (Stats
   accumulation, CSV emission, ...) need not be thread-safe. The lookup
   passed to the callback reads the calling domain's own slot array, so
   it stays valid under the lock. *)
let serialized_on_hit on_hit =
  Option.map
    (fun f ->
      let m = Mutex.create () in
      fun lookup ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f lookup))
    on_hit

(* Depth-0 checks run once per executed chunk/slice; their counts are
   identical across non-empty chunks (they depend only on settings and
   depth-0 derived variables), so a merge keeps a single execution's
   value. Taking the per-index maximum is order-independent and also
   correct for the loop-free plan, where only chunk 0 carries the
   steps. *)
let dedup_depth0 ~depth0 ~(single : Engine.stats) (merged : Engine.stats) =
  let pruned =
    Array.mapi
      (fun i (n, c, k) ->
        if depth0.(i) then
          let _, _, k0 = single.Engine.pruned.(i) in
          (n, c, k0)
        else (n, c, k))
      merged.Engine.pruned
  in
  { merged with Engine.pruned }

let pruned_max (a : Engine.stats) (b : Engine.stats) =
  {
    a with
    Engine.pruned =
      Array.mapi
        (fun i (n, c, k) ->
          let _, _, k' = b.Engine.pruned.(i) in
          (n, c, max k k'))
        a.Engine.pruned;
  }

let default_chunks_per_domain = 8

let run ?on_hit ?(chunks_per_domain = default_chunks_per_domain) ~domains
    (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run: domains < 1";
  if chunks_per_domain < 1 then
    invalid_arg "Engine_parallel.run: chunks_per_domain < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    let on_hit = serialized_on_hit on_hit in
    let n_chunks = domains * chunks_per_domain in
    let chunks =
      Array.init n_chunks (fun index -> Plan.chunk_outer plan ~index ~of_:n_chunks)
    in
    (* Work stealing: a shared cursor hands out chunk indices; a domain
       that exhausts a pruned-empty chunk immediately grabs the next
       one, so skew in the constraint funnel cannot idle a domain for
       longer than one chunk. Each worker folds its chunk results
       locally (sum + per-constraint max for the depth-0 dedup). *)
    let cursor = Atomic.make 0 in
    let done_count = Atomic.make 0 in
    (* One handle resolved up front; recording is per-domain inside. *)
    let chunk_hist =
      Option.map
        (fun r ->
          Metrics.histogram r ~unit_:"ns" ~name:"chunk_duration_ns"
            ~labels:[ ("space", plan.Plan.space_name) ]
            ())
        (Metrics.current ())
    in
    let worker dom () =
      let acc = ref None in
      let rec steal () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n_chunks then begin
          let t0 = Clock.now_ns () in
          let s =
            Obs.with_span ~cat:"engine"
              ~args:
                [
                  ("chunk", Obs.Int i);
                  ("of", Obs.Int n_chunks);
                  ("domain", Obs.Int dom);
                ]
              "sweep:chunk"
              (fun () -> Engine_staged.run ?on_hit chunks.(i))
          in
          Option.iter
            (fun h -> Metrics.record h (Clock.now_ns () - t0))
            chunk_hist;
          Obs.chunk_tick
            ~completed:(1 + Atomic.fetch_and_add done_count 1)
            ~total:n_chunks;
          (acc :=
             match !acc with
             | None -> Some (s, s)
             | Some (sum, mx) -> Some (Engine.merge sum s, pruned_max mx s));
          steal ()
        end
      in
      steal ();
      !acc
    in
    let sweep () =
      (* Anchor the reporter's throughput base before any chunk lands. *)
      Obs.chunk_tick ~completed:0 ~total:n_chunks;
      let spawned =
        List.init domains (fun dom -> Domain.spawn (worker dom))
      in
      List.filter_map Domain.join spawned
    in
    let results =
      Obs.with_span ~cat:"engine"
        ~args:
          [
            ("space", Obs.Str plan.Plan.space_name);
            ("domains", Obs.Int domains);
            ("chunks", Obs.Int n_chunks);
          ]
        "sweep:parallel" sweep
    in
    match results with
    | [] -> assert false (* n_chunks >= domains >= 2: someone ran a chunk *)
    | (first_sum, first_max) :: rest ->
      let sum, mx =
        List.fold_left
          (fun (sum, mx) (s, m) -> (Engine.merge sum s, pruned_max mx m))
          (first_sum, first_max) rest
      in
      dedup_depth0 ~depth0:(Plan.depth0_constraints plan) ~single:mx sum
  end

(* ------------------------------------------------------------------ *)
(* Checkpointable, interruptible scheduler                             *)
(* ------------------------------------------------------------------ *)

(* Signal handlers may only do async-signal-safe work, so the handler
   installed by the CLI just flips this flag; workers poll it between
   chunks. A worker that sees the flag finishes the chunk it is running
   (the ledger only ever holds complete chunks) and stops stealing. *)
let stop_requested = Atomic.make false
let interrupt () = Atomic.set stop_requested true

(* The crash decision is drawn deterministically from (seed, chunk id,
   attempt) BEFORE the chunk runs, so a crashed attempt never invoked
   the survivor callback: retries keep on_hit exactly-once per
   surviving point. *)
let crashes ~prob ~seed ~chunk ~attempt =
  prob > 0.0
  && Random.State.float (Random.State.make [| seed; chunk; attempt |]) 1.0
     < prob

let max_crash_attempts = 1000

let run_resumable ?on_hit ?(chunks_per_domain = default_chunks_per_domain)
    ?checkpoint ?resume ?fault ~domains (plan : Plan.t) : Engine_intf.outcome =
  if domains < 1 then invalid_arg "Engine_parallel.run_resumable: domains < 1";
  if chunks_per_domain < 1 then
    invalid_arg "Engine_parallel.run_resumable: chunks_per_domain < 1";
  (match fault with
  | Some (Run_config.Chunk_crash { prob; _ })
    when prob < 0.0 || prob >= 1.0 ->
    invalid_arg "Engine_parallel.run_resumable: crash probability not in [0, 1)"
  | _ -> ());
  (* Reset the flag so a resumed run in the same process (tests, or a
     driver loop) does not inherit the interruption that produced the
     checkpoint it is resuming from. *)
  Atomic.set stop_requested false;
  let on_hit = serialized_on_hit on_hit in
  (* The chunk split arity is part of the checkpoint: a resume must
     reuse the file's split so chunk ids keep meaning the same blocks,
     even under a different domain count. *)
  let n_chunks =
    match resume with
    | Some (ck : Checkpoint.t) -> ck.Checkpoint.n_chunks
    | None -> domains * chunks_per_domain
  in
  let ledger = Array.make n_chunks None in
  (match resume with
  | None -> ()
  | Some ck ->
    List.iter
      (fun (id, stats) -> ledger.(id) <- Some stats)
      (Checkpoint.chunk_stats ck));
  let pending =
    Array.of_list
      (List.filter
         (fun id -> ledger.(id) = None)
         (List.init n_chunks Fun.id))
  in
  let cursor = Atomic.make 0 in
  let ledger_mutex = Mutex.create () in
  let completed =
    ref (n_chunks - Array.length pending) (* chunks carried in by resume *)
  in
  let registry = Metrics.current () in
  let chunk_hist =
    Option.map
      (fun r ->
        Metrics.histogram r ~unit_:"ns" ~name:"chunk_duration_ns"
          ~labels:[ ("space", plan.Plan.space_name) ]
          ())
      registry
  in
  let ck_writes =
    Option.map
      (fun r ->
        Metrics.counter r ~name:"checkpoint_writes_total"
          ~labels:[ ("space", plan.Plan.space_name) ]
          ())
      registry
  in
  let crash_count =
    Option.map
      (fun r ->
        Metrics.counter r ~name:"chunk_crashes_total"
          ~labels:[ ("space", plan.Plan.space_name) ]
          ())
      registry
  in
  let checkpoint_metrics () =
    let live = Option.map Metrics.snapshot registry in
    match (checkpoint, live) with
    | None, _ -> None
    | Some sink, None -> sink.Engine_intf.ck_base_metrics
    | Some { Engine_intf.ck_base_metrics = None; _ }, Some snap -> Some snap
    | Some { Engine_intf.ck_base_metrics = Some base; _ }, Some snap ->
      (* Bucket-wise pooling of the pre-interruption histograms with the
         live registry; the grids always match (same build), so the
         merge cannot fail in practice. *)
      Some (Result.value ~default:snap (Metrics.Snapshot.merge [ base; snap ]))
  in
  (* Callers hold [ledger_mutex]. *)
  let write_checkpoint sink =
    let entries = ref [] in
    Array.iteri
      (fun id s ->
        match s with None -> () | Some s -> entries := (id, s) :: !entries)
      ledger;
    Obs.with_span ~cat:"engine"
      ~args:[ ("completed", Obs.Int !completed); ("of", Obs.Int n_chunks) ]
      "checkpoint:write"
      (fun () ->
        Checkpoint.save sink.Engine_intf.ck_path
          (Checkpoint.make ~plan ?run_id:sink.Engine_intf.ck_run_id
             ~shard:sink.Engine_intf.ck_shard ~n_chunks
             ?metrics:(checkpoint_metrics ()) !entries));
    Option.iter Metrics.incr ck_writes
  in
  let last_ck_ns = ref (Clock.now_ns ()) in
  let record_chunk id stats =
    Mutex.lock ledger_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock ledger_mutex)
      (fun () ->
        ledger.(id) <- Some stats;
        incr completed;
        Obs.chunk_tick ~completed:!completed ~total:n_chunks;
        match checkpoint with
        | Some sink
          when Clock.ns_to_s (Clock.now_ns () - !last_ck_ns)
               >= sink.Engine_intf.ck_every_s ->
          write_checkpoint sink;
          last_ck_ns := Clock.now_ns ()
        | _ -> ())
  in
  let run_chunk id =
    let chunk = Plan.chunk_outer plan ~index:id ~of_:n_chunks in
    let rec attempt k =
      if k > max_crash_attempts then
        failwith
          (Printf.sprintf
             "Engine_parallel: chunk %d crashed %d times in a row; giving up"
             id max_crash_attempts);
      match fault with
      | Some (Run_config.Chunk_crash { prob; seed })
        when crashes ~prob ~seed ~chunk:id ~attempt:k ->
        Obs.instant ~cat:"engine"
          ~args:[ ("chunk", Obs.Int id); ("attempt", Obs.Int k) ]
          "chunk:crash";
        Option.iter Metrics.incr crash_count;
        attempt (k + 1)
      | Some (Run_config.Chunk_fatal { chunk = fatal }) when fatal = id ->
        (* Unrecoverable by design: the event lands in the flight ring
           before the exception unwinds through Domain.join, so a
           post-mortem dump names the chunk that took the run down. *)
        Obs.instant ~cat:"engine"
          ~args:[ ("chunk", Obs.Int id) ]
          "chunk:fatal";
        Atomic.set stop_requested true;
        failwith
          (Printf.sprintf
             "Engine_parallel: injected fatal fault on chunk %d" id)
      | _ -> Engine_staged.run ?on_hit chunk
    in
    attempt 0
  in
  let worker dom () =
    let rec steal () =
      if not (Atomic.get stop_requested) then begin
        let i = Atomic.fetch_and_add cursor 1 in
        if i < Array.length pending then begin
          let id = pending.(i) in
          let t0 = Clock.now_ns () in
          let s =
            Obs.with_span ~cat:"engine"
              ~args:
                [
                  ("chunk", Obs.Int id);
                  ("of", Obs.Int n_chunks);
                  ("domain", Obs.Int dom);
                ]
              "sweep:chunk"
              (fun () -> run_chunk id)
          in
          Option.iter
            (fun h -> Metrics.record h (Clock.now_ns () - t0))
            chunk_hist;
          record_chunk id s;
          steal ()
        end
      end
    in
    steal ()
  in
  let sweep () =
    (* The resumed count is reported up front so the reporter treats it
       as the base, not as throughput observed this run. *)
    Obs.chunk_tick ~completed:!completed ~total:n_chunks;
    let spawned = List.init domains (fun dom -> Domain.spawn (worker dom)) in
    List.iter Domain.join spawned
  in
  Obs.with_span ~cat:"engine"
    ~args:
      [
        ("space", Obs.Str plan.Plan.space_name);
        ("domains", Obs.Int domains);
        ("chunks", Obs.Int n_chunks);
        ("resumed", Obs.Int (n_chunks - Array.length pending));
      ]
    "sweep:parallel" sweep;
  if !completed < n_chunks then begin
    (* Interrupted: flush a final checkpoint so nothing drained is
       lost, even if the periodic timer never fired. *)
    (match checkpoint with
    | Some sink ->
      Mutex.lock ledger_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock ledger_mutex)
        (fun () -> write_checkpoint sink)
    | None -> ());
    Engine_intf.Interrupted { completed = !completed; total = n_chunks }
  end
  else begin
    (* Fold the ledger in id order: merging is commutative and
       associative, so this equals the worker-order fold of a live run
       and the resumed output is byte-identical to an uninterrupted
       one. *)
    let acc = ref None in
    Array.iter
      (fun s ->
        match s with
        | None -> assert false
        | Some s ->
          acc :=
            (match !acc with
            | None -> Some (s, s)
            | Some (sum, mx) -> Some (Engine.merge sum s, pruned_max mx s)))
      ledger;
    match !acc with
    | None -> assert false (* n_chunks >= 1 *)
    | Some (sum, mx) ->
      Engine_intf.Finished
        (dedup_depth0 ~depth0:(Plan.depth0_constraints plan) ~single:mx sum)
  end

(* The pre-chunking scheduler: one static round-robin slice per domain
   ({!Plan.slice_outer}). Kept as the baseline for the ablation bench —
   with skewed pruning most domains finish early and wait on the
   slowest slice. *)
let run_static ?on_hit ~domains (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run_static: domains < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    let on_hit = serialized_on_hit on_hit in
    let sweep () =
      let slices =
        List.init domains (fun index -> Plan.slice_outer plan ~index ~of_:domains)
      in
      let spawned =
        List.map
          (fun slice -> Domain.spawn (fun () -> Engine_staged.run ?on_hit slice))
          slices
      in
      List.map Domain.join spawned
    in
    let results =
      Obs.with_span ~cat:"engine"
        ~args:
          [
            ("space", Obs.Str plan.Plan.space_name);
            ("domains", Obs.Int domains);
          ]
        "sweep:parallel-static" sweep
    in
    match results with
    | [] -> assert false
    | first :: rest ->
      let merged = List.fold_left Engine.merge first rest in
      dedup_depth0 ~depth0:(Plan.depth0_constraints plan) ~single:first merged
  end

let run_space ?on_hit ~domains space = run ?on_hit ~domains (Plan.make_exn space)
