open Beast_obs

(* Depth-0 checks run in every slice; when merging we keep a single
   domain's counts for the constraints that appear before the first loop
   so totals match a sequential sweep. *)
let depth0_constraints (plan : Plan.t) =
  let rec go acc = function
    | [] | Plan.Loop _ :: _ -> acc
    | Plan.Check { c_index; _ } :: rest -> go (c_index :: acc) rest
    | (Plan.Derive _ | Plan.Yield) :: rest -> go acc rest
  in
  go [] plan.Plan.steps

let run ?on_hit ~domains (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run: domains < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    (* Survivor callbacks fire concurrently from every domain; serialize
       them behind a mutex so user callbacks (Stats accumulation, CSV
       emission, ...) need not be thread-safe. The lookup passed to the
       callback reads the calling domain's own slot array, so it stays
       valid under the lock. *)
    let on_hit =
      Option.map
        (fun f ->
          let m = Mutex.create () in
          fun lookup ->
            Mutex.lock m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock m)
              (fun () -> f lookup))
        on_hit
    in
    let sweep () =
      let slices =
        List.init domains (fun index ->
            Plan.slice_outer plan ~index ~of_:domains)
      in
      let spawned =
        List.map
          (fun slice ->
            Domain.spawn (fun () -> Engine_staged.run ?on_hit slice))
          slices
      in
      List.map Domain.join spawned
    in
    let results =
      Obs.with_span ~cat:"engine"
        ~args:
          [
            ("space", Obs.Str plan.Plan.space_name);
            ("domains", Obs.Int domains);
          ]
        "sweep:parallel" sweep
    in
    match results with
    | [] -> assert false
    | first :: rest ->
      let merged = List.fold_left Engine.merge first rest in
      let dup = depth0_constraints plan in
      let pruned =
        Array.mapi
          (fun i (n, c, k) ->
            if List.mem i dup then
              let _, _, k0 = first.Engine.pruned.(i) in
              (n, c, k0)
            else (n, c, k))
          merged.Engine.pruned
      in
      { merged with Engine.pruned }
  end

let run_space ?on_hit ~domains space =
  run ?on_hit ~domains (Plan.make_exn space)
