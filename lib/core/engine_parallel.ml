open Beast_obs

(* Serialize survivor callbacks behind a mutex so user callbacks (Stats
   accumulation, CSV emission, ...) need not be thread-safe. The lookup
   passed to the callback reads the calling domain's own slot array, so
   it stays valid under the lock. *)
let serialized_on_hit on_hit =
  Option.map
    (fun f ->
      let m = Mutex.create () in
      fun lookup ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f lookup))
    on_hit

(* Depth-0 checks run once per executed chunk/slice; their counts are
   identical across non-empty chunks (they depend only on settings and
   depth-0 derived variables), so a merge keeps a single execution's
   value. Taking the per-index maximum is order-independent and also
   correct for the loop-free plan, where only chunk 0 carries the
   steps. *)
let dedup_depth0 ~depth0 ~(single : Engine.stats) (merged : Engine.stats) =
  let pruned =
    Array.mapi
      (fun i (n, c, k) ->
        if depth0.(i) then
          let _, _, k0 = single.Engine.pruned.(i) in
          (n, c, k0)
        else (n, c, k))
      merged.Engine.pruned
  in
  { merged with Engine.pruned }

let pruned_max (a : Engine.stats) (b : Engine.stats) =
  {
    a with
    Engine.pruned =
      Array.mapi
        (fun i (n, c, k) ->
          let _, _, k' = b.Engine.pruned.(i) in
          (n, c, max k k'))
        a.Engine.pruned;
  }

let default_chunks_per_domain = 8

let run ?on_hit ?(chunks_per_domain = default_chunks_per_domain) ~domains
    (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run: domains < 1";
  if chunks_per_domain < 1 then
    invalid_arg "Engine_parallel.run: chunks_per_domain < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    let on_hit = serialized_on_hit on_hit in
    let n_chunks = domains * chunks_per_domain in
    let chunks =
      Array.init n_chunks (fun index -> Plan.chunk_outer plan ~index ~of_:n_chunks)
    in
    (* Work stealing: a shared cursor hands out chunk indices; a domain
       that exhausts a pruned-empty chunk immediately grabs the next
       one, so skew in the constraint funnel cannot idle a domain for
       longer than one chunk. Each worker folds its chunk results
       locally (sum + per-constraint max for the depth-0 dedup). *)
    let cursor = Atomic.make 0 in
    (* One handle resolved up front; recording is per-domain inside. *)
    let chunk_hist =
      Option.map
        (fun r ->
          Metrics.histogram r ~unit_:"ns" ~name:"chunk_duration_ns"
            ~labels:[ ("space", plan.Plan.space_name) ]
            ())
        (Metrics.current ())
    in
    let worker dom () =
      let acc = ref None in
      let rec steal () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n_chunks then begin
          let t0 = Clock.now_ns () in
          let s =
            Obs.with_span ~cat:"engine"
              ~args:
                [
                  ("chunk", Obs.Int i);
                  ("of", Obs.Int n_chunks);
                  ("domain", Obs.Int dom);
                ]
              "sweep:chunk"
              (fun () -> Engine_staged.run ?on_hit chunks.(i))
          in
          Option.iter
            (fun h -> Metrics.record h (Clock.now_ns () - t0))
            chunk_hist;
          (acc :=
             match !acc with
             | None -> Some (s, s)
             | Some (sum, mx) -> Some (Engine.merge sum s, pruned_max mx s));
          steal ()
        end
      in
      steal ();
      !acc
    in
    let sweep () =
      let spawned =
        List.init domains (fun dom -> Domain.spawn (worker dom))
      in
      List.filter_map Domain.join spawned
    in
    let results =
      Obs.with_span ~cat:"engine"
        ~args:
          [
            ("space", Obs.Str plan.Plan.space_name);
            ("domains", Obs.Int domains);
            ("chunks", Obs.Int n_chunks);
          ]
        "sweep:parallel" sweep
    in
    match results with
    | [] -> assert false (* n_chunks >= domains >= 2: someone ran a chunk *)
    | (first_sum, first_max) :: rest ->
      let sum, mx =
        List.fold_left
          (fun (sum, mx) (s, m) -> (Engine.merge sum s, pruned_max mx m))
          (first_sum, first_max) rest
      in
      dedup_depth0 ~depth0:(Plan.depth0_constraints plan) ~single:mx sum
  end

(* The pre-chunking scheduler: one static round-robin slice per domain
   ({!Plan.slice_outer}). Kept as the baseline for the ablation bench —
   with skewed pruning most domains finish early and wait on the
   slowest slice. *)
let run_static ?on_hit ~domains (plan : Plan.t) =
  if domains < 1 then invalid_arg "Engine_parallel.run_static: domains < 1";
  if domains = 1 then Engine_staged.run ?on_hit plan
  else begin
    let on_hit = serialized_on_hit on_hit in
    let sweep () =
      let slices =
        List.init domains (fun index -> Plan.slice_outer plan ~index ~of_:domains)
      in
      let spawned =
        List.map
          (fun slice -> Domain.spawn (fun () -> Engine_staged.run ?on_hit slice))
          slices
      in
      List.map Domain.join spawned
    in
    let results =
      Obs.with_span ~cat:"engine"
        ~args:
          [
            ("space", Obs.Str plan.Plan.space_name);
            ("domains", Obs.Int domains);
          ]
        "sweep:parallel-static" sweep
    in
    match results with
    | [] -> assert false
    | first :: rest ->
      let merged = List.fold_left Engine.merge first rest in
      dedup_depth0 ~depth0:(Plan.depth0_constraints plan) ~single:first merged
  end

let run_space ?on_hit ~domains space = run ?on_hit ~domains (Plan.make_exn space)
