(** Name-keyed engine selection.

    The one place that knows which engine modules exist: the CLI, the
    tuner and the bench all resolve engines through {!find}, so adding
    an engine is one registry entry instead of four hand-written match
    arms. *)

module Interp_naive : Engine_intf.S
module Interp : Engine_intf.S
module Vm : Engine_intf.S
module Staged : Engine_intf.S
module Native : Engine_intf.S

val default_parallel_domains : int
(** 4 — what bare ["parallel"] resolves to. *)

val parallel : int -> (module Engine_intf.S)
(** The work-stealing scheduler over the given number of domains; the
    only engine whose [resumable] is populated.
    @raise Invalid_argument if [domains < 1]. *)

val default_native_threads : int
(** 1 — what bare ["native"] resolves to. *)

val native : int -> (module Engine_intf.S)
(** The compiled tier ({!Engine_native}) with the given pthread fan-out
    baked into the generated [main].
    @raise Invalid_argument if [threads < 1]. *)

val catalog : (string * string) list
(** Accepted specs with their one-line descriptions — what
    [beast engines] prints. {!names} derives from it, so the listing,
    the help text and {!find} can never drift apart. *)

val names : string list
(** Accepted specs ([List.map fst catalog]), for help text and error
    messages. *)

val find : string -> ((module Engine_intf.S), string) result
(** Resolve an engine spec: a bare name (["staged"], ["parallel"]) or a
    parameterized one (["parallel:8"]). Errors on unknown names, on a
    parameter given to a non-parametric engine, and on a domain count
    below 1. *)
