(** Name-keyed engine selection.

    The one place that knows which engine modules exist: the CLI, the
    tuner and the bench all resolve engines through {!find}, so adding
    an engine is one registry entry instead of four hand-written match
    arms. Every engine answers the single {!Engine_intf.S.run} entry
    point over an {!Engine_intf.target} — interpreters plan a [Space]
    themselves and execute a handed-in [Plan] as given. *)

module Interp_naive : Engine_intf.S
module Interp : Engine_intf.S
module Vm : Engine_intf.S
module Staged : Engine_intf.S
module Native : Engine_intf.S

val default_parallel_domains : int
(** 4 — what bare ["parallel"] resolves to. *)

val parallel : int -> (module Engine_intf.S)
(** The work-stealing scheduler over the given number of domains; the
    only engine whose [resumable] is populated.
    @raise Invalid_argument if [domains < 1]. *)

val default_native_threads : int
(** 1 — what bare ["native"] resolves to. *)

val native : int -> (module Engine_intf.S)
(** The compiled tier ({!Engine_native}) with the given pthread fan-out
    baked into the generated [main].
    @raise Invalid_argument if [threads < 1]. *)

(** One catalog row per engine: the accepted spec, its [beast engines]
    description, and the capability facts the CLI derives its behavior
    from instead of keeping name lists — whether propagation is on by
    default ([e_propagate_default], off only for the
    deliberately-unoptimized baseline), whether the engine can evaluate
    opaque OCaml closures ([e_opaque], false for the generated-C tier),
    and whether it keeps a resumable chunk ledger ([e_resumable]). *)
type entry = {
  e_spec : string;
  e_descr : string;
  e_propagate_default : bool;
  e_opaque : bool;
  e_resumable : bool;
}

val catalog : entry list
(** Accepted specs with their descriptions and capabilities — what
    [beast engines] prints. {!names} and {!entry_of} derive from it, so
    the listing, the help text, the CLI defaults and {!find} can never
    drift apart. *)

val names : string list
(** Accepted specs ([e_spec] of each catalog row), for help text and
    error messages. *)

val entry_of : string -> entry option
(** The catalog row an engine spec resolves against: parameters are
    stripped (["parallel:8"] matches ["parallel[:DOMAINS]"]). [None]
    for unknown names. *)

val find : string -> ((module Engine_intf.S), string) result
(** Resolve an engine spec: a bare name (["staged"], ["parallel"]) or a
    parameterized one (["parallel:8"]). Errors on unknown names, on a
    parameter given to a non-parametric engine, and on a domain count
    below 1. *)
