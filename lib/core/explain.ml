(* The `beast explain` report: turn one instrumented sweep's provenance
   (plus, when present, its metrics) into an account of *why* the space
   shrank — which constraint removed what, whether the evaluation order
   is paying for it, and where whole outer-coordinate ranges died. *)

module Metrics = Beast_obs.Metrics
module Units = Beast_obs.Units

type crow = {
  name : string;
  cls : Space.constraint_class;
  depth : int;
  fired : int;
  removed : int option;
}

(* The canonical nest is linear (one loop per level), so evaluation
   order — the pre-order walk Stats.evaluation_order computes from the
   plan — is exactly a stable sort of the c_index rows by rejection
   depth. That lets the report work from the serialized file alone. *)
let rows_in_eval_order (t : Stats_io.t) (p : Provenance.summary) =
  if List.length t.Stats_io.constraints <> List.length p.Provenance.pv_constraints
  then Error "the stats and provenance constraint lists differ in length"
  else begin
    let paired = List.combine t.Stats_io.constraints p.Provenance.pv_constraints in
    match
      List.find_opt
        (fun ((cr : Stats_io.constraint_row), (pc : Provenance.crow)) ->
          cr.Stats_io.cr_name <> pc.Provenance.pc_name)
        paired
    with
    | Some ((cr : Stats_io.constraint_row), (pc : Provenance.crow)) ->
      Error
        (Printf.sprintf
           "stats row %S does not match provenance row %S (files from \
            different sweeps?)"
           cr.Stats_io.cr_name pc.Provenance.pc_name)
    | None ->
      Ok
        (List.stable_sort
           (fun a b -> compare a.depth b.depth)
           (List.map
              (fun ((cr : Stats_io.constraint_row), (pc : Provenance.crow)) ->
                {
                  name = cr.Stats_io.cr_name;
                  cls = cr.Stats_io.cr_class;
                  depth = pc.Provenance.pc_depth;
                  fired = cr.Stats_io.cr_fired;
                  removed = pc.Provenance.pc_removed;
                })
              paired))
  end

let opt_int = function
  | Some k -> Units.si_int k
  | None -> "?"

(* ---- constraint waterfall ---------------------------------------- *)

let waterfall ppf ~survivors rows =
  let total =
    List.fold_left
      (fun acc r ->
        match (acc, r.removed) with
        | Some a, Some k -> Some (a + k)
        | _ -> None)
      (Some survivors) rows
  in
  Format.fprintf ppf "constraint waterfall (evaluation order)@.";
  (match total with
  | Some total ->
    Format.fprintf ppf "  %s points enter; %s survive (%.2f%% pruned)@."
      (Units.si_int total) (Units.si_int survivors)
      (if total = 0 then 0.0
       else 100.0 *. float_of_int (total - survivors) /. float_of_int total)
  | None ->
    Format.fprintf ppf
      "  (a constraint guards a data-dependent subtree: exact removal \
       counts are partial)@.");
  Format.fprintf ppf "  %-30s %5s %10s %10s %10s@." "" "depth" "fired"
    "removed" "left";
  let remaining = ref total in
  List.iter
    (fun r ->
      (remaining :=
         match (!remaining, r.removed) with
         | Some rem, Some k -> Some (rem - k)
         | _ -> None);
      Format.fprintf ppf "  %-30s %5d %10s %10s %10s@." r.name r.depth
        (Units.si_int r.fired) (opt_int r.removed) (opt_int !remaining))
    rows;
  Format.fprintf ppf "@."

(* ---- cost vs selectivity ----------------------------------------- *)

(* The classic predicate-ordering rule: with independent filters, total
   work is minimized by evaluating in decreasing removals-per-unit-cost.
   We only flag *adjacent* inversions — those are the pairs where a
   plain swap (at equal depth) or a hoist is guaranteed to help. *)
let cost_table ppf (t : Stats_io.t) rows =
  Format.fprintf ppf "cost vs selectivity@.";
  match t.Stats_io.metrics with
  | None ->
    Format.fprintf ppf
      "  no \"metrics\" section: sweep with --metrics --explain-out to \
       rank evaluation cost against removals@.@."
  | Some snap ->
    let hists = Metrics.Snapshot.histograms snap ~name:"constraint_eval_ns" in
    let eval_ns name =
      List.find_map
        (fun ((labels, h) : _ * Metrics.hist_snapshot) ->
          if List.assoc_opt "constraint" labels = Some name then
            Some (h.Metrics.s_sum, h.Metrics.s_count)
          else None)
        hists
    in
    let scored =
      List.map
        (fun r ->
          let cost = eval_ns r.name in
          let score =
            match (r.removed, cost) with
            | Some k, Some (ns, _) when ns > 0 ->
              (* removed points per microsecond of evaluation time *)
              Some (1000.0 *. float_of_int k /. float_of_int ns)
            | _ -> None
          in
          (r, cost, score))
        rows
    in
    let misplaced =
      (* r_i is misplaced when the constraint evaluated right after it
         removes strictly more per unit cost. *)
      let rec mark = function
        | (r, _, Some a) :: (((_, _, Some b) :: _) as rest) ->
          (if a < b then [ r.name ] else []) @ mark rest
        | _ :: rest -> mark rest
        | [] -> []
      in
      mark scored
    in
    Format.fprintf ppf "  %-30s %10s %10s %12s %s@." "" "evals"
      "eval time" "removed/us" "";
    List.iter
      (fun (r, cost, score) ->
        Format.fprintf ppf "  %-30s %10s %10s %12s %s@." r.name
          (match cost with
          | Some (_, n) -> Units.si_int n
          | None -> "?")
          (match cost with
          | Some (ns, _) -> Units.duration_ns ns
          | None -> "?")
          (match score with
          | Some s -> Printf.sprintf "%.1f" s
          | None -> "?")
          (if List.mem r.name misplaced then "<- misplaced" else ""))
      scored;
    if misplaced <> [] then
      Format.fprintf ppf
        "  misplaced: the next constraint removes more points per unit \
         of evaluation time; evaluating it first would do less work@.";
    Format.fprintf ppf "@."

(* ---- dead outer-coordinate ranges -------------------------------- *)

type range = {
  r_lo : int;
  r_hi : int;
  r_cells : int;
  r_removed : int;
}

(* Maximal runs of consecutive *observed* outer values (cells are sorted
   and deduplicated by value) with zero survivors. *)
let dead_ranges cells =
  let close acc = function
    | Some r -> r :: acc
    | None -> acc
  in
  let acc, open_ =
    List.fold_left
      (fun (acc, open_) (c : Provenance.cell) ->
        if c.Provenance.cell_survivors > 0 then (close acc open_, None)
        else
          match open_ with
          | None ->
            ( acc,
              Some
                {
                  r_lo = c.Provenance.cell_value;
                  r_hi = c.Provenance.cell_value;
                  r_cells = 1;
                  r_removed = c.Provenance.cell_removed;
                } )
          | Some r ->
            ( acc,
              Some
                {
                  r with
                  r_hi = c.Provenance.cell_value;
                  r_cells = r.r_cells + 1;
                  r_removed = r.r_removed + c.Provenance.cell_removed;
                } ))
      ([], None) cells
  in
  close acc open_
  |> List.sort (fun a b -> compare (b.r_removed, b.r_cells) (a.r_removed, a.r_cells))

let dead_table ppf ~top (p : Provenance.summary) =
  match p.Provenance.pv_iters with
  | [] -> ()
  | outer :: _ ->
    let ranges = dead_ranges p.Provenance.pv_cells in
    let total_cells = List.length p.Provenance.pv_cells in
    let dead_cells = List.fold_left (fun acc r -> acc + r.r_cells) 0 ranges in
    Format.fprintf ppf "dead outer ranges (%s: %d of %d values yield no survivor)@."
      outer dead_cells total_cells;
    if ranges = [] then
      Format.fprintf ppf "  every %s value keeps at least one survivor@."
        outer
    else begin
      let shown = List.filteri (fun i _ -> i < top) ranges in
      List.iter
        (fun r ->
          Format.fprintf ppf "  %s in [%d..%d]: %d value%s, %s points removed@."
            outer r.r_lo r.r_hi r.r_cells
            (if r.r_cells = 1 then "" else "s")
            (Units.si_int r.r_removed))
        shown;
      if List.length ranges > List.length shown then
        Format.fprintf ppf "  ... and %d more range%s@."
          (List.length ranges - List.length shown)
          (if List.length ranges - List.length shown = 1 then "" else "s")
    end;
    Format.fprintf ppf "@."

(* ---- per-depth survival funnel ----------------------------------- *)

let bar width v vmax =
  if vmax <= 0 || v <= 0 then ""
  else
    let n = max 1 (v * width / vmax) in
    String.make (min width n) '#'

let funnel_bars ppf ~survivors (p : Provenance.summary) =
  let entries = p.Provenance.pv_depth_entries in
  if entries <> [] then begin
    Format.fprintf ppf "survival funnel by depth@.";
    let vmax = List.fold_left max survivors entries in
    List.iteri
      (fun d n ->
        let var =
          match List.nth_opt p.Provenance.pv_iters d with
          | Some v -> v
          | None -> "?"
        in
        Format.fprintf ppf "  depth %-2d %-12s %12s %s@." d var
          (Units.si_int n) (bar 30 n vmax))
      entries;
    Format.fprintf ppf "  %-21s %12s %s@." "survivors" (Units.si_int survivors)
      (bar 30 survivors vmax)
  end

(* ------------------------------------------------------------------ *)

let write ?(top = 5) ppf (t : Stats_io.t) =
  match t.Stats_io.provenance with
  | None ->
    Error
      "no \"provenance\" section: sweep with --explain-out FILE and \
       explain that file"
  | Some p -> (
    match rows_in_eval_order t p with
    | Error _ as e -> e
    | Ok rows ->
      Format.fprintf ppf "explain %s: %s survivors@." t.Stats_io.space
        (Units.si_int t.Stats_io.survivors);
      Format.fprintf ppf "@.";
      waterfall ppf ~survivors:t.Stats_io.survivors rows;
      cost_table ppf t rows;
      dead_table ppf ~top p;
      funnel_bars ppf ~survivors:t.Stats_io.survivors p;
      Ok ())
