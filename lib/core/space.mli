(** Declarative search-space descriptions.

    A space gathers, in any order (the deferred semantics of Section V):
    - {b settings}: named constants such as [precision = "double"]
      (Figure 10) and device parameters (Figures 8–9);
    - {b iterators}: the dimensions of the search space (Figure 11);
    - {b derived variables}: named expressions over iterators and settings
      (Figure 12);
    - {b constraints}: rejection predicates in the paper's three classes —
      hard, soft, correctness (Figures 13–15). A constraint evaluating to
      a {e true} value prunes the point.

    Names share one namespace and must be unique. Definition order is
    irrelevant; the planner orders everything by the dependency DAG. *)

type constraint_class =
  | Hard         (** would fail to compile or launch (Figure 13) *)
  | Soft         (** correct but guaranteed slow (Figure 14) *)
  | Correctness  (** violates algorithmic assumptions (Figure 15) *)

val constraint_class_name : constraint_class -> string

(** The body of a derived variable or constraint: either a first-order
    expression (analysable, translatable to C) or an opaque OCaml function
    with declared dependencies (the paper's deferred/closure forms). *)
type body =
  | E of Expr.t
  | F of {
      fn_deps : string list;
      fn : Expr.lookup -> Value.t;
    }

type iterator = {
  it_name : string;
  it_iter : Iter.t;
}

type derived = {
  dv_name : string;
  dv_body : body;
}

type constraint_ = {
  cn_name : string;
  cn_class : constraint_class;
  cn_body : body;
}

type t

type error =
  | Duplicate_name of string
  | Undefined_reference of string * string  (** (referrer, missing name) *)
  | Cyclic of string list

val pp_error : Format.formatter -> error -> unit

exception Error of error

(** {1 Building} *)

val create : ?name:string -> unit -> t
val name : t -> string

val build : ?name:string -> (t -> unit) -> (t, error) result
(** [build ?name f] creates a space, runs [f] to populate it, and
    validates the result — the one construction path that turns every
    declaration error ([Duplicate_name], raised mid-[f]) and every
    validation error ([Undefined_reference], [Cyclic]) into a [result]
    instead of an exception. The DSL parser and the CLI route through
    it, so a malformed space is a one-line diagnostic, never a
    backtrace. *)

val setting : t -> string -> Value.t -> unit
val setting_i : t -> string -> int -> unit
val setting_s : t -> string -> string -> unit
val iterator : t -> string -> Iter.t -> unit
val derived : t -> string -> Expr.t -> unit

val derived_f : t -> string -> deps:string list -> (Expr.lookup -> Value.t) -> unit
(** A deferred derived variable backed by an OCaml function; [deps] must
    name every parameter the function reads, exactly as the paper's
    deferred functions name theirs in the argument list. *)

val constrain : t -> ?cls:constraint_class -> string -> Expr.t -> unit
(** [constrain sp name e]: prune the point whenever [e] is truthy.
    Default class {!constructor-Hard}. *)

val constrain_f :
  t ->
  ?cls:constraint_class ->
  string ->
  deps:string list ->
  (Expr.lookup -> Value.t) ->
  unit

(** All [setting]/[iterator]/[derived]/[constrain] calls raise
    {!exception-Error} [(Duplicate_name _)] on name reuse. *)

(** {1 Inspection} *)

val settings : t -> (string * Value.t) list
val iterators : t -> iterator list
val deriveds : t -> derived list
val constraints : t -> constraint_ list
val find_setting : t -> string -> Value.t option
val body_deps : body -> string list

val filter_constraints : t -> keep:(constraint_ -> bool) -> t
(** A copy of the space retaining only the constraints [keep] accepts
    (settings, iterators and derived variables are all kept). Used to
    build pruning funnels and to measure unconstrained cardinality. *)

val validate : t -> (unit, error) result
(** Checks that every referenced name is declared and that the dependency
    graph is acyclic. *)

val dag : t -> (Dag.t, error) result
(** The dependency DAG over iterators, derived variables and constraints
    (settings are constants and do not appear). Edge (u, v) iff u is used
    to express v — the graph of Figure 16. *)

val to_dot : t -> string
(** Figure 16 rendering: iterators as blue ellipses, derived variables as
    grey boxes, constraints as red octagons.
    @raise Error if the space does not validate. *)
