(* Resumable-sweep snapshots: the work-stealing scheduler's chunk ledger
   as a file. A checkpoint records which chunks of an [n_chunks]-way
   split have completed and each one's stats partial (survivors, loop
   iterations, per-constraint fired counts), plus the metrics histograms
   accumulated so far, bucket for bucket. Because chunk merging is
   commutative and associative (sums, with a per-index max for the
   depth-0 dedup), replaying the ledger in id order and sweeping only
   the missing chunks reproduces the uninterrupted run's output
   byte-for-byte.

   The encoding follows Stats_io: fixed key order, no timestamps, a
   version tag so future format changes fail loudly instead of parsing
   garbage. *)

module Jsonx = Beast_obs.Jsonx
module Metrics = Beast_obs.Metrics

let format_version = 1

type chunk = {
  c_id : int;
  c_survivors : int;
  c_loop_iterations : int;
  c_fired : int array;
}

type t = {
  space : string;
  run_id : string option;
  shard : Stats_io.shard;
  n_chunks : int;
  constraints : (string * Space.constraint_class * bool) array;
  chunks : chunk list;  (* sorted by c_id, each id present at most once *)
  metrics : Metrics.snapshot option;
}

let constraint_meta (plan : Plan.t) =
  let depth0 = Plan.depth0_constraints plan in
  Array.mapi (fun i (n, c) -> (n, c, depth0.(i))) plan.Plan.constraint_info

let make ~(plan : Plan.t) ?run_id ~shard ~n_chunks ?metrics completed =
  let chunks =
    List.sort
      (fun a b -> compare a.c_id b.c_id)
      (List.map
         (fun (id, (s : Engine.stats)) ->
           {
             c_id = id;
             c_survivors = s.Engine.survivors;
             c_loop_iterations = s.Engine.loop_iterations;
             c_fired = Array.map (fun (_, _, k) -> k) s.Engine.pruned;
           })
         completed)
  in
  {
    space = plan.Plan.space_name;
    run_id;
    shard;
    n_chunks;
    constraints = constraint_meta plan;
    chunks;
    metrics;
  }

let completed_ids t = List.map (fun c -> c.c_id) t.chunks

let chunk_stats t =
  List.map
    (fun c ->
      ( c.c_id,
        {
          Engine.survivors = c.c_survivors;
          loop_iterations = c.c_loop_iterations;
          pruned =
            Array.mapi (fun i (n, cls, _) -> (n, cls, c.c_fired.(i))) t.constraints;
        } ))
    t.chunks

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str s = Beast_obs.Trace_json.escape buf s in
  add "{\n";
  add "  \"beast_checkpoint\": %d,\n" format_version;
  add "  \"space\": ";
  str t.space;
  add ",\n";
  (match t.run_id with
  | None -> ()
  | Some id ->
    add "  \"run_id\": ";
    str id;
    add ",\n");
  add "  \"shard\": { \"index\": %d, \"of\": %d },\n" t.shard.Stats_io.shard_index
    t.shard.Stats_io.shard_of;
  add "  \"n_chunks\": %d,\n" t.n_chunks;
  add "  \"constraints\": [";
  Array.iteri
    (fun i (n, c, d0) ->
      add "%s\n    { \"name\": " (if i = 0 then "" else ",");
      str n;
      add ", \"class\": \"%s\", \"depth0\": %b }"
        (Space.constraint_class_name c)
        d0)
    t.constraints;
  if Array.length t.constraints > 0 then add "\n  ";
  add "],\n";
  add "  \"chunks\": [";
  List.iteri
    (fun i c ->
      add "%s\n    { \"id\": %d, \"survivors\": %d, \"loop_iterations\": %d, \"fired\": [%s] }"
        (if i = 0 then "" else ",")
        c.c_id c.c_survivors c.c_loop_iterations
        (String.concat ", "
           (Array.to_list (Array.map string_of_int c.c_fired))))
    t.chunks;
  if t.chunks <> [] then add "\n  ";
  add "]";
  (match t.metrics with
  | None -> ()
  | Some snap ->
    add ",\n  \"metrics\": ";
    Metrics.Snapshot.add_json buf ~indent:"  " snap);
  add "\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf (fun msg -> raise (Jsonx.Error msg)) fmt

let decode json =
  (match Jsonx.member_opt "beast_checkpoint" json with
  | None -> fail "not a checkpoint file (missing \"beast_checkpoint\" tag)"
  | Some v ->
    let version = Jsonx.to_int "beast_checkpoint" v in
    if version <> format_version then
      fail "unsupported checkpoint format version %d (this build reads %d)"
        version format_version);
  let shard_json = Jsonx.member "shard" json in
  let shard =
    {
      Stats_io.shard_index = Jsonx.to_int "index" (Jsonx.member "index" shard_json);
      shard_of = Jsonx.to_int "of" (Jsonx.member "of" shard_json);
    }
  in
  let n_chunks = Jsonx.to_int "n_chunks" (Jsonx.member "n_chunks" json) in
  if n_chunks < 1 then fail "n_chunks must be at least 1 (got %d)" n_chunks;
  let constraints =
    Array.of_list
      (List.map
         (fun row ->
           ( Jsonx.to_str "name" (Jsonx.member "name" row),
             Stats_io.constraint_class_of_name
               (Jsonx.to_str "class" (Jsonx.member "class" row)),
             Jsonx.to_bool "depth0" (Jsonx.member "depth0" row) ))
         (Jsonx.to_list "constraints" (Jsonx.member "constraints" json)))
  in
  let n_constraints = Array.length constraints in
  let chunks =
    List.map
      (fun row ->
        let c =
          {
            c_id = Jsonx.to_int "id" (Jsonx.member "id" row);
            c_survivors = Jsonx.to_int "survivors" (Jsonx.member "survivors" row);
            c_loop_iterations =
              Jsonx.to_int "loop_iterations" (Jsonx.member "loop_iterations" row);
            c_fired =
              Array.of_list
                (List.map
                   (Jsonx.to_int "fired")
                   (Jsonx.to_list "fired" (Jsonx.member "fired" row)));
          }
        in
        if c.c_id < 0 || c.c_id >= n_chunks then
          fail "chunk id %d out of range for an %d-chunk split" c.c_id n_chunks;
        if c.c_survivors < 0 || c.c_loop_iterations < 0 then
          fail "chunk %d carries negative counts" c.c_id;
        if Array.length c.c_fired <> n_constraints then
          fail "chunk %d has %d fired counts but the file lists %d constraints"
            c.c_id (Array.length c.c_fired) n_constraints;
        c)
      (Jsonx.to_list "chunks" (Jsonx.member "chunks" json))
  in
  let chunks = List.sort (fun a b -> compare a.c_id b.c_id) chunks in
  let rec check_unique = function
    | a :: (b :: _ as rest) ->
      if a.c_id = b.c_id then fail "chunk id %d appears twice" a.c_id;
      check_unique rest
    | _ -> ()
  in
  check_unique chunks;
  let metrics =
    match Jsonx.member_opt "metrics" json with
    | None -> None
    | Some m -> (
      match Metrics.Snapshot.of_jsonx m with
      | Ok snap -> Some snap
      | Error msg -> fail "metrics: %s" msg)
  in
  {
    space = Jsonx.to_str "space" (Jsonx.member "space" json);
    run_id = Option.map (Jsonx.to_str "run_id") (Jsonx.member_opt "run_id" json);
    shard;
    n_chunks;
    constraints;
    chunks;
    metrics;
  }

let of_json text =
  match Jsonx.parse text with
  | Error msg -> Error (Printf.sprintf "checkpoint: %s" msg)
  | Ok json -> (
    try Ok (decode json)
    with Jsonx.Error msg -> Error (Printf.sprintf "checkpoint: %s" msg))

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Printf.sprintf "checkpoint: %s" msg)
  | text -> of_json text

(* Write-temp-then-rename: a crash (or kill signal) during the write
   leaves either the previous complete checkpoint or a stray .tmp file,
   never a truncated checkpoint under the real name. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (to_json t);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Resume validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate ~(plan : Plan.t) ~(shard : Stats_io.shard) t =
  if t.space <> plan.Plan.space_name then
    Error
      (Printf.sprintf "checkpoint: file describes space %S, this run sweeps %S"
         t.space plan.Plan.space_name)
  else if t.shard <> shard then
    Error
      (Printf.sprintf
         "checkpoint: file was written by shard %d/%d, this run is shard %d/%d"
         t.shard.Stats_io.shard_index t.shard.Stats_io.shard_of
         shard.Stats_io.shard_index shard.Stats_io.shard_of)
  else if t.constraints <> constraint_meta plan then
    Error
      "checkpoint: the file's constraint list does not match this space \
       (the space definition changed since the checkpoint was written)"
  else Ok ()
