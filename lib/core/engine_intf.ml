(* The common face of the evaluation engines. Each engine module packs
   its entry points behind one signature so the CLI, the tuner and the
   bench select engines by name through {!Engine_registry} instead of
   each keeping a hand-written match over the engine variant. *)

(* What an engine is asked to enumerate. A [Space] leaves planning to
   the engine (the interpreters build their own — naive or hoisted —
   plan; the compiled tiers call [Plan.make]); a [Plan] hands it an
   exact nest to execute, which is how chunked, sharded and propagated
   sweeps reach every engine through one entry point. *)
type target =
  | Space of Space.t
  | Plan of Plan.t

type outcome =
  | Finished of Engine.stats
  | Interrupted of { completed : int; total : int }
      (* stopped by {!Engine_parallel.interrupt} after draining the
         in-flight chunks; [completed] of [total] chunks are in the
         checkpoint (when one was requested) *)

(* Where and how often a resumable run snapshots its chunk ledger. *)
type checkpoint_sink = {
  ck_path : string;
  ck_every_s : float;
  ck_run_id : string option;
      (* stamped into the snapshot so resumed artifacts correlate with
         the run that wrote them *)
  ck_shard : Stats_io.shard;  (* recorded in the file for resume checks *)
  ck_base_metrics : Beast_obs.Metrics.snapshot option;
      (* metrics carried over from the checkpoint being resumed; pooled
         with the live registry's snapshot at every write *)
}

type resumable =
  ?on_hit:Engine.on_hit ->
  ?checkpoint:checkpoint_sink ->
  ?resume:Checkpoint.t ->
  ?fault:Run_config.fault ->
  Plan.t ->
  outcome

module type S = sig
  val name : string

  val run : ?on_hit:Engine.on_hit -> target -> Engine.stats
  (* one entry point for both target shapes; what each engine does with
     a [Space] (which plan it builds) is the engine's own cost model *)

  val resumable : resumable option
  (* checkpoint/resume/fault-injection entry point; only the parallel
     scheduler keeps a chunk ledger, so only it offers one *)
end
