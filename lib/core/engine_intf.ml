(* The common face of the evaluation engines. Each engine module packs
   its entry points behind one signature so the CLI, the tuner and the
   bench select engines by name through {!Engine_registry} instead of
   each keeping a hand-written match over the engine variant. *)

type outcome =
  | Finished of Engine.stats
  | Interrupted of { completed : int; total : int }
      (* stopped by {!Engine_parallel.interrupt} after draining the
         in-flight chunks; [completed] of [total] chunks are in the
         checkpoint (when one was requested) *)

(* Where and how often a resumable run snapshots its chunk ledger. *)
type checkpoint_sink = {
  ck_path : string;
  ck_every_s : float;
  ck_run_id : string option;
      (* stamped into the snapshot so resumed artifacts correlate with
         the run that wrote them *)
  ck_shard : Stats_io.shard;  (* recorded in the file for resume checks *)
  ck_base_metrics : Beast_obs.Metrics.snapshot option;
      (* metrics carried over from the checkpoint being resumed; pooled
         with the live registry's snapshot at every write *)
}

type resumable =
  ?on_hit:Engine.on_hit ->
  ?checkpoint:checkpoint_sink ->
  ?resume:Checkpoint.t ->
  ?fault:Run_config.fault ->
  Plan.t ->
  outcome

module type S = sig
  val name : string

  val plan_based : bool
  (* whether [run_plan] works; interpreter engines walk the space
     directly and cannot take a chunked/sharded plan *)

  val run_space : ?on_hit:Engine.on_hit -> Space.t -> Engine.stats

  val run_plan : ?on_hit:Engine.on_hit -> Plan.t -> Engine.stats
  (* raises [Invalid_argument] when [not plan_based] *)

  val resumable : resumable option
  (* checkpoint/resume/fault-injection entry point; only the parallel
     scheduler keeps a chunk ledger, so only it offers one *)
end
