type row = {
  constraint_name : string;
  constraint_class : Space.constraint_class;
  fired : int;
  removed : int option;
}

type funnel = {
  space : string;
  total_points : int;
  survivors : int;
  rows : row list;
}

let survival_rate f =
  if f.total_points = 0 then 1.0
  else float_of_int f.survivors /. float_of_int f.total_points

let pruned_fraction f = 1.0 -. survival_rate f

let space_with_constraints src names =
  Space.filter_constraints src ~keep:(fun cn ->
      List.mem cn.Space.cn_name names)

(* Constraints in actual evaluation order: a pre-order walk of the nest
   (hoisted constraints at shallow depths run first). *)
let evaluation_order (plan : Plan.t) =
  let rec walk acc steps =
    List.fold_left
      (fun acc (step : Plan.step) ->
        match step with
        | Plan.Check { c_name; c_class; _ } -> (c_name, c_class) :: acc
        | Plan.Loop { l_body; _ } -> walk acc l_body
        | Plan.Derive _ | Plan.Yield -> acc)
      acc steps
  in
  List.rev (walk [] plan.Plan.steps)

let funnel ?(engine = fun plan -> Engine_staged.run plan) space =
  let module Obs = Beast_obs.Obs in
  Obs.with_span ~cat:"stats"
    ~args:[ ("space", Obs.Str (Space.name space)) ]
    "funnel"
    (fun () ->
      let plan = Plan.make_exn space in
      let order = evaluation_order plan in
      let survivors_with names =
        (engine (Plan.make_exn (space_with_constraints space names)))
          .Engine.survivors
      in
      let full_stats = engine plan in
      let fired_of name =
        let _, _, k =
          Array.to_list full_stats.Engine.pruned
          |> List.find (fun (n, _, _) -> n = name)
        in
        k
      in
      let total = survivors_with [] in
      let rec build prev_survivors prefix = function
        | [] -> []
        | (name, cls) :: rest ->
          let prefix = name :: prefix in
          let s = survivors_with prefix in
          let removed = prev_survivors - s in
          Obs.instant ~cat:"funnel"
            ~args:
              [ ("fired", Obs.Int (fired_of name)); ("removed", Obs.Int removed) ]
            name;
          {
            constraint_name = name;
            constraint_class = cls;
            fired = fired_of name;
            removed = Some removed;
          }
          :: build s prefix rest
      in
      let rows = build total [] order in
      {
        space = Space.name space;
        total_points = total;
        survivors = full_stats.Engine.survivors;
        rows;
      })

let of_stats space (stats : Engine.stats) ~total_points =
  {
    space = Space.name space;
    total_points;
    survivors = stats.Engine.survivors;
    rows =
      Array.to_list stats.Engine.pruned
      |> List.map (fun (n, c, k) ->
             {
               constraint_name = n;
               constraint_class = c;
               fired = k;
               removed = None;
             });
  }

let to_csv f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "constraint,class,fired,removed\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%s\n" r.constraint_name
           (Space.constraint_class_name r.constraint_class)
           r.fired
           (match r.removed with
           | Some k -> string_of_int k
           | None -> "")))
    f.rows;
  (* fired counts events (one firing can remove a whole subtree), removed
     counts points; they are different quantities, so the TOTAL row sums
     each column independently. *)
  let total_fired = List.fold_left (fun acc r -> acc + r.fired) 0 f.rows in
  Buffer.add_string buf
    (Printf.sprintf "TOTAL,,%d,%d\n" total_fired (f.total_points - f.survivors));
  Buffer.contents buf

let pp ppf f =
  Format.fprintf ppf "funnel for %s: %d points -> %d survivors (%.2f%% pruned)@\n"
    f.space f.total_points f.survivors
    (100. *. pruned_fraction f);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-30s %-11s fired %-10d removed %s@\n"
        r.constraint_name
        (Space.constraint_class_name r.constraint_class)
        r.fired
        (match r.removed with
        | Some k -> string_of_int k
        | None -> "?"))
    f.rows
