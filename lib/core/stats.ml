type row = {
  constraint_name : string;
  constraint_class : Space.constraint_class;
  fired : int;
  removed : int option;
}

type funnel = {
  space : string;
  total_points : int;
  survivors : int;
  rows : row list;
}

let survival_rate f =
  if f.total_points = 0 then 1.0
  else float_of_int f.survivors /. float_of_int f.total_points

let pruned_fraction f = 1.0 -. survival_rate f

let space_with_constraints src names =
  Space.filter_constraints src ~keep:(fun cn ->
      List.mem cn.Space.cn_name names)

(* Constraints in actual evaluation order: a pre-order walk of the nest
   (hoisted constraints at shallow depths run first). *)
let evaluation_order (plan : Plan.t) =
  let rec walk acc steps =
    List.fold_left
      (fun acc (step : Plan.step) ->
        match step with
        | Plan.Check { c_name; c_class; _ } -> (c_name, c_class) :: acc
        | Plan.Loop { l_body; _ } -> walk acc l_body
        | Plan.Derive _ | Plan.Yield | Plan.Static_prune _ -> acc)
      acc steps
  in
  List.rev (walk [] plan.Plan.steps)

let funnel ?(engine = fun plan -> Engine_staged.run plan) space =
  let module Obs = Beast_obs.Obs in
  Obs.with_span ~cat:"stats"
    ~args:[ ("space", Obs.Str (Space.name space)) ]
    "funnel"
    (fun () ->
      let plan = Plan.make_exn space in
      let order = evaluation_order plan in
      let survivors_with names =
        (engine (Plan.make_exn (space_with_constraints space names)))
          .Engine.survivors
      in
      let full_stats = engine plan in
      let fired_of name =
        let _, _, k =
          Array.to_list full_stats.Engine.pruned
          |> List.find (fun (n, _, _) -> n = name)
        in
        k
      in
      let total = survivors_with [] in
      let rec build prev_survivors prefix = function
        | [] -> []
        | (name, cls) :: rest ->
          let prefix = name :: prefix in
          let s = survivors_with prefix in
          let removed = prev_survivors - s in
          Obs.instant ~cat:"funnel"
            ~args:
              [ ("fired", Obs.Int (fired_of name)); ("removed", Obs.Int removed) ]
            name;
          {
            constraint_name = name;
            constraint_class = cls;
            fired = fired_of name;
            removed = Some removed;
          }
          :: build s prefix rest
      in
      let rows = build total [] order in
      {
        space = Space.name space;
        total_points = total;
        survivors = full_stats.Engine.survivors;
        rows;
      })

(* Exact funnel from ONE sweep: run the space once with a provenance
   collector installed; each constraint's removal count is its summed
   subtree cardinality at rejection (see Provenance). On spaces where
   attribution is exact — all inner loop bounds static or bound before
   the check — this equals the n+1-sweep funnel above; otherwise fall
   back to the prefix sweeps rather than return partial counts. *)
let funnel_single_pass ?(engine = fun plan -> Engine_staged.run plan) space =
  let module Obs = Beast_obs.Obs in
  Obs.with_span ~cat:"stats"
    ~args:[ ("space", Obs.Str (Space.name space)) ]
    "funnel_single_pass"
    (fun () ->
      let plan = Plan.make_exn space in
      let stats, summary =
        Provenance.with_collector (fun () -> engine plan)
      in
      match Provenance.total_removed summary with
      | None -> funnel ~engine space
      | Some removed_total ->
        let removed_by_name =
          List.map
            (fun (r : Provenance.crow) ->
              (r.Provenance.pc_name, r.Provenance.pc_removed))
            summary.Provenance.pv_constraints
        in
        let fired_of name =
          match
            Array.to_list stats.Engine.pruned
            |> List.find_opt (fun (n, _, _) -> n = name)
          with
          | Some (_, _, k) -> k
          | None -> 0
        in
        let rows =
          List.map
            (fun (name, cls) ->
              {
                constraint_name = name;
                constraint_class = cls;
                fired = fired_of name;
                removed =
                  (match List.assoc_opt name removed_by_name with
                  | Some r -> r
                  | None -> None);
              })
            (evaluation_order plan)
        in
        {
          space = Space.name space;
          total_points = stats.Engine.survivors + removed_total;
          survivors = stats.Engine.survivors;
          rows;
        })

(* Rebuild a funnel from a serialized instrumented run (or a merged
   shard set) without re-sweeping anything. The canonical nest is
   linear, so evaluation order is a stable sort of the rows by
   rejection depth. *)
let funnel_of_run (t : Stats_io.t) =
  match t.Stats_io.provenance with
  | None ->
    Error "no \"provenance\" section (sweep with --explain-out FILE)"
  | Some p ->
    if
      List.length t.Stats_io.constraints
      <> List.length p.Provenance.pv_constraints
    then Error "the stats and provenance constraint lists differ in length"
    else begin
      let paired =
        List.combine t.Stats_io.constraints p.Provenance.pv_constraints
      in
      match
        List.find_opt
          (fun ((cr : Stats_io.constraint_row), (pc : Provenance.crow)) ->
            cr.Stats_io.cr_name <> pc.Provenance.pc_name)
          paired
      with
      | Some (cr, pc) ->
        Error
          (Printf.sprintf
             "stats row %S does not match provenance row %S"
             cr.Stats_io.cr_name pc.Provenance.pc_name)
      | None ->
        let ordered =
          List.stable_sort
            (fun (_, (a : Provenance.crow)) (_, (b : Provenance.crow)) ->
              compare a.Provenance.pc_depth b.Provenance.pc_depth)
            paired
        in
        let rows =
          List.map
            (fun ((cr : Stats_io.constraint_row), (pc : Provenance.crow)) ->
              {
                constraint_name = cr.Stats_io.cr_name;
                constraint_class = cr.Stats_io.cr_class;
                fired = cr.Stats_io.cr_fired;
                removed = pc.Provenance.pc_removed;
              })
            ordered
        in
        let exact_removed =
          List.fold_left
            (fun acc r ->
              match r.removed with
              | Some k -> acc + k
              | None -> acc)
            0 rows
        in
        Ok
          {
            space = t.Stats_io.space;
            total_points = t.Stats_io.survivors + exact_removed;
            survivors = t.Stats_io.survivors;
            rows;
          }
    end

let of_stats space (stats : Engine.stats) ~total_points =
  {
    space = Space.name space;
    total_points;
    survivors = stats.Engine.survivors;
    rows =
      Array.to_list stats.Engine.pruned
      |> List.map (fun (n, c, k) ->
             {
               constraint_name = n;
               constraint_class = c;
               fired = k;
               removed = None;
             });
  }

let to_csv f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "constraint,class,fired,removed\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%s\n" r.constraint_name
           (Space.constraint_class_name r.constraint_class)
           r.fired
           (match r.removed with
           | Some k -> string_of_int k
           | None -> "")))
    f.rows;
  (* fired counts events (one firing can remove a whole subtree), removed
     counts points; they are different quantities, so the TOTAL row sums
     each column independently. *)
  let total_fired = List.fold_left (fun acc r -> acc + r.fired) 0 f.rows in
  Buffer.add_string buf
    (Printf.sprintf "TOTAL,,%d,%d\n" total_fired (f.total_points - f.survivors));
  Buffer.contents buf

let pp ppf f =
  Format.fprintf ppf "funnel for %s: %d points -> %d survivors (%.2f%% pruned)@\n"
    f.space f.total_points f.survivors
    (100. *. pruned_fraction f);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-30s %-11s fired %-10d removed %s@\n"
        r.constraint_name
        (Space.constraint_class_name r.constraint_class)
        r.fired
        (match r.removed with
        | Some k -> string_of_int k
        | None -> "?"))
    f.rows
