(** Types shared by the evaluation engines.

    The paper's translation system targets several backends; we provide
    four in-process engines with deliberately different cost models plus
    the C code generator (see {!Codegen_c}):

    - {!Engine_interp} — tree-walking over named environments, the
      scripting-language tier of Figure 17;
    - {!Engine_vm} — flat bytecode on an integer register file, the
      Lua-like tier of Figure 18;
    - {!Engine_staged} — the plan compiled to nested OCaml closures, the
      compiled tier of Figure 19;
    - {!Engine_parallel} — the staged engine fanned out over OCaml 5
      domains (the paper's "multithreaded for extra performance"). *)

type stats = {
  survivors : int;  (** points that passed every constraint *)
  loop_iterations : int;
      (** loop-body entries summed over every nesting depth — the
          iteration count whose rate Figures 17–19 report *)
  pruned : (string * Space.constraint_class * int) array;
      (** per constraint: how many times it fired (each firing abandons
          the entire subtree below its hoisting depth) *)
}

type on_hit = Expr.lookup -> unit
(** Survivor callback. The lookup resolves every iterator, derived
    variable and setting of the space at the surviving point. It is only
    valid for the duration of the call. *)

val empty_stats : Plan.t -> stats
val total_pruned : stats -> int

val merge : stats -> stats -> stats
(** Pointwise sum; the constraint arrays must describe the same plan. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Instrumentation plumbing}

    Shared by the engine implementations; not intended for end users.
    Engines consult [Beast_obs.Obs.instrumenting] once per run and, when
    it holds, switch to a code path that counts per-depth loop entries,
    accumulates per-constraint evaluation time, and samples progress /
    points-per-second every [sample_mask + 1] loop entries. With tracing
    and progress both disabled the hot loops are exactly the
    uninstrumented ones. *)

val sample_mask : int

type sampler

val make_sampler : unit -> sampler

val sample : sampler -> points:int -> survivors:int -> frac:float -> unit
(** Emit a points/sec counter (when tracing) and a progress tick. *)

val emit_run_aggregates :
  t0:int ->
  Plan.t ->
  pruned:int array ->
  check_time:int array ->
  depth_entries:int array ->
  level_time:int array ->
  unit
(** Emit per-constraint and per-level Complete spans anchored at [t0]
    (the run's start, from [Beast_obs.Clock.now_ns]). No-op unless
    tracing is enabled. *)
