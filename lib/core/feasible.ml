(* Compact feasible sets (ROADMAP item 2, second half).

   A built plan defines a set of feasible points — the assignments that
   reach [Yield]. Enumerating them is what engines do; this module
   instead REPRESENTS the set, as a layered decision diagram over the
   plan's loop order: one layer per iterator, each node mapping the
   feasible values at that layer (given the outer context the node
   stands for) to a child node one layer down. Nodes are hash-consed,
   so identical sub-spaces share structure, and each node's value map
   is compressed into sorted arithmetic-progression runs — a GEMM-like
   space whose inner feasibility depends only on a couple of outer
   parameters collapses to a DAG a few hundred nodes wide no matter
   how many points it holds.

   Construction is a memoized depth-first walk of the nest: at each
   loop the walk keys on the projection of the slot state onto the
   slots the subtree actually reads (its free slots, computed once per
   plan), so a subtree is evaluated once per DISTINCT outer context
   rather than once per outer assignment. Opaque computes ([CF]) and
   dynamic iterators ([CDyn]) are executed concretely — they are plain
   int functions — but their reads are unknown, so they widen the memo
   key to the whole slot state; correct, merely less shared.

   The payoff: [count] is exact without enumeration (the CI criterion
   pins a billion-point space), [nth]/[sample] index the set directly,
   [union]/[inter] combine sets, and the serialized form is
   deterministic, so shard planners on different machines agree on
   equal-cardinality slices ([chunk_outer_balanced]). *)

type node =
  | Empty
  | Accept
  | Node of { nid : int; runs : run array; total : int }

and run = {
  r_lo : int;  (** first value of the run *)
  r_step : int;  (** stride between consecutive values (1 for singletons) *)
  r_len : int;  (** number of values *)
  r_child : node;  (** sub-diagram shared by every value of the run *)
}

type t = {
  f_space : string;
  f_iters : string array;  (** loop order, outermost first *)
  f_root : node;
}

let node_count = function
  | Empty -> 0
  | Accept -> 1
  | Node { total; _ } -> total

let count t = node_count t.f_root
let space_name t = t.f_space
let iterators t = Array.to_list t.f_iters

(* ------------------------------------------------------------------ *)
(* Node arena: hash-consing + run compression                          *)
(* ------------------------------------------------------------------ *)

let nid_of = function
  | Empty -> -1
  | Accept -> -2
  | Node { nid; _ } -> nid

type arena = {
  mutable next_nid : int;
  cons : ((int * int * int * int) list, node) Hashtbl.t;
      (** (lo, step, len, child nid) per run -> node *)
}

let arena () = { next_nid = 0; cons = Hashtbl.create 256 }

(* Greedy left-to-right run compression of a sorted, duplicate-free
   (value, child) list. Greedy is canonical here: a run extends exactly
   while the child stays the same node and the stride stays constant,
   so equal maps always compress identically — the property the
   deterministic serialization and the hash-consing key rely on. *)
let compress pairs =
  let close (lo, _last, step, len, child) =
    if len = 1 then { r_lo = lo; r_step = 1; r_len = 1; r_child = child }
    else { r_lo = lo; r_step = step; r_len = len; r_child = child }
  in
  let rec go acc cur = function
    | [] -> List.rev (close cur :: acc)
    | (v, c) :: tl ->
      let lo, last, step, len, child = cur in
      if nid_of c = nid_of child && (len = 1 || v - last = step) then
        go acc (lo, v, (if len = 1 then v - last else step), len + 1, child) tl
      else go (close cur :: acc) (v, v, 1, 1, c) tl
  in
  match pairs with
  | [] -> [||]
  | (v, c) :: tl -> Array.of_list (go [] (v, v, 1, 1, c) tl)

(* Build (or reuse) the node for a sorted (value, child) map. Values
   must be strictly increasing; Empty children must already have been
   filtered out. *)
let cons_node a pairs =
  match pairs with
  | [] -> Empty
  | _ ->
    let runs = compress pairs in
    let key =
      Array.to_list
        (Array.map
           (fun r -> (r.r_lo, r.r_step, r.r_len, nid_of r.r_child))
           runs)
    in
    (match Hashtbl.find_opt a.cons key with
    | Some n -> n
    | None ->
      let total =
        Array.fold_left
          (fun acc r -> acc + (r.r_len * node_count r.r_child))
          0 runs
      in
      let n = Node { nid = a.next_nid; runs; total } in
      a.next_nid <- a.next_nid + 1;
      Hashtbl.add a.cons key n;
      n)

(* ------------------------------------------------------------------ *)
(* Free-slot analysis (the memo projection)                            *)
(* ------------------------------------------------------------------ *)

(* Slots a program fragment reads from its surrounding context. [All]
   is the poison for opaque computes/iterators, whose reads cannot be
   inspected. *)
type slotset = All | Only of int list (* sorted, distinct *)

let sunion a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Only xs, Only ys ->
    let rec merge xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | x :: xt, y :: yt ->
        if x < y then x :: merge xt ys
        else if x > y then y :: merge xs yt
        else x :: merge xt yt
    in
    Only (merge xs ys)

let sremove s = function
  | All -> All
  | Only xs -> Only (List.filter (fun x -> x <> s) xs)

let compute_reads = function
  | Plan.CE e -> Only (Plan.cexpr_slots e)
  | Plan.CF _ -> All

let citer_reads = function
  | Plan.CRange (a, b, c) ->
    sunion
      (Only (Plan.cexpr_slots a))
      (sunion (Only (Plan.cexpr_slots b)) (Only (Plan.cexpr_slots c)))
  | Plan.CValues _ -> Only []
  | Plan.CDyn _ -> All

(* ------------------------------------------------------------------ *)
(* Annotated program                                                   *)
(* ------------------------------------------------------------------ *)

(* The canonical nest re-expressed for the walk: [Static_prune] steps
   vanish (they are statistics, not feasibility), and each loop carries
   a memo id plus its subtree's free slots. *)
type aprog =
  | ADone  (** Yield: the assignment is feasible *)
  | ANone  (** no Yield below (an emptied chunk): nothing feasible *)
  | ADerive of int * Plan.compute * aprog
  | ACheck of Plan.compute * aprog
  | ALoop of {
      uid : int;
      slot : int;
      iter : Plan.citer;
      key : slotset;  (** free slots of the whole loop step *)
      body : aprog;
    }

exception Unsupported of string

let annotate (steps : Plan.step list) =
  let uid = ref 0 in
  let rec go steps =
    match (steps : Plan.step list) with
    | [] -> (ANone, Only [])
    | Plan.Yield :: _ -> (ADone, Only [])
    | Plan.Static_prune _ :: rest -> go rest
    | Plan.Derive { d_slot; d_compute; _ } :: rest ->
      let a, fs = go rest in
      (ADerive (d_slot, d_compute, a),
       sunion (compute_reads d_compute) (sremove d_slot fs))
    | Plan.Check { c_compute; _ } :: rest ->
      let a, fs = go rest in
      (ACheck (c_compute, a), sunion (compute_reads c_compute) fs)
    | Plan.Loop { l_slot; l_iter; l_body; _ } :: rest ->
      (match go rest with
      | ANone, _ -> ()
      | _ ->
        (* Canonical nests put nothing after a loop; points are defined
           by the path to Yield, so trailing steps would be ambiguous. *)
        raise (Unsupported "steps after a loop"));
      let body, bfs = go l_body in
      let key = sunion (citer_reads l_iter) (sremove l_slot bfs) in
      let id = !uid in
      incr uid;
      (ALoop { uid = id; slot = l_slot; iter = l_iter; key; body }, key)
  in
  fst (go steps)

(* ------------------------------------------------------------------ *)
(* Building from a plan (exact)                                        *)
(* ------------------------------------------------------------------ *)

exception Too_many_states of int
exception Duplicate_value of int

let default_max_states = 2_000_000

let build ?(max_states = default_max_states) (plan : Plan.t) :
    (t, string) result =
  try
    let prog = annotate plan.Plan.steps in
    let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
    let a = arena () in
    let memo : (int * int list, node) Hashtbl.t = Hashtbl.create 1024 in
    let states = ref 0 in
    let eval_compute = function
      | Plan.CE e -> Plan.eval_cexpr slots e
      | Plan.CF f -> f slots
    in
    let materialize = function
      | Plan.CRange (sa, sb, sc) ->
        let start = Plan.eval_cexpr slots sa
        and stop = Plan.eval_cexpr slots sb
        and step = Plan.eval_cexpr slots sc in
        if step = 0 then
          raise (Expr.Eval_error "Feasible: zero range step");
        Array.init (Plan.trip_count ~start ~stop ~step) (fun i ->
            start + (i * step))
      | Plan.CValues vs -> vs
      | Plan.CDyn f -> f slots
    in
    let project = function
      | All -> Array.to_list slots
      | Only xs -> List.map (fun s -> slots.(s)) xs
    in
    let rec exec = function
      | ADone -> Accept
      | ANone -> Empty
      | ADerive (slot, comp, rest) ->
        slots.(slot) <- eval_compute comp;
        exec rest
      | ACheck (comp, rest) -> if eval_compute comp <> 0 then Empty else exec rest
      | ALoop { uid; slot; iter; key; body } -> (
        let k = (uid, project key) in
        match Hashtbl.find_opt memo k with
        | Some n -> n
        | None ->
          incr states;
          if !states > max_states then raise (Too_many_states max_states);
          let vs = materialize iter in
          let pairs =
            Array.to_list
              (Array.map
                 (fun v ->
                   slots.(slot) <- v;
                   (v, exec body))
                 vs)
          in
          let pairs =
            List.sort (fun (x, _) (y, _) -> compare x y) pairs
          in
          let rec dedup = function
            | (x, _) :: ((y, _) :: _ as tl) ->
              if x = y then raise (Duplicate_value x) else dedup tl
            | _ -> ()
          in
          dedup pairs;
          let n =
            cons_node a (List.filter (fun (_, c) -> c <> Empty) pairs)
          in
          Hashtbl.add memo k n;
          n)
    in
    Ok
      {
        f_space = plan.Plan.space_name;
        f_iters = Array.of_list plan.Plan.iter_order;
        f_root = exec prog;
      }
  with
  | Unsupported msg -> Error ("unsupported plan shape: " ^ msg)
  | Too_many_states cap ->
    Error
      (Printf.sprintf
         "state explosion: more than %d distinct loop contexts (the plan's \
          constraints could not be factored; raise ?max_states or count by \
          enumeration)"
         cap)
  | Duplicate_value v ->
    Error (Printf.sprintf "iterator visits value %d twice" v)
  | Division_by_zero -> Error "division by zero while evaluating the plan"
  | Expr.Eval_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Upper bound from propagation alone                                  *)
(* ------------------------------------------------------------------ *)

(* The product of the (propagated) iterator domains: every check is
   assumed to pass, so this is exact precisely when propagation folded
   every constraint into the iterators, and an upper bound otherwise.
   Needs every iterator static — symbolic bounds have no fixed domain. *)
let of_propagation (plan : Plan.t) : (t, string) result =
  let rec loops acc = function
    | [] -> List.rev acc
    | Plan.Loop { l_var; l_iter; l_body; _ } :: _ ->
      loops ((l_var, l_iter) :: acc) l_body
    | (Plan.Derive _ | Plan.Check _ | Plan.Static_prune _ | Plan.Yield) :: rest
      ->
      loops acc rest
  in
  let static = function
    | Plan.CValues vs -> Some vs
    | Plan.CRange (sa, sb, sc) -> (
      match (Plan.static_cexpr sa, Plan.static_cexpr sb, Plan.static_cexpr sc)
      with
      | Some start, Some stop, Some step when step <> 0 ->
        Some
          (Array.init (Plan.trip_count ~start ~stop ~step) (fun i ->
               start + (i * step)))
      | _ -> None)
    | Plan.CDyn _ -> None
  in
  let a = arena () in
  let rec chain = function
    | [] -> Ok Accept
    | (var, iter) :: deeper -> (
      match static iter with
      | None -> Error (Printf.sprintf "iterator %s is not static" var)
      | Some vs -> (
        match chain deeper with
        | Error _ as e -> e
        | Ok child ->
          let pairs =
            List.sort_uniq compare (Array.to_list vs)
            |> List.map (fun v -> (v, child))
          in
          Ok (cons_node a pairs)))
  in
  match chain (loops [] plan.Plan.steps) with
  | Error msg -> Error msg
  | Ok root ->
    Ok
      {
        f_space = plan.Plan.space_name;
        f_iters = Array.of_list plan.Plan.iter_order;
        f_root = root;
      }

(* ------------------------------------------------------------------ *)
(* Indexing: nth and uniform sampling                                  *)
(* ------------------------------------------------------------------ *)

(* Points are totally ordered lexicographically by (sorted) value at
   each layer, outermost first — a canonical order independent of the
   plan's trip order, so every consumer of the same set agrees on what
   "point [i]" means. Cost: one run scan per layer. *)
let nth t i =
  if i < 0 || i >= count t then
    invalid_arg
      (Printf.sprintf "Feasible.nth: index %d out of bounds [0, %d)" i
         (count t));
  let rec go node i acc =
    match node with
    | Empty -> assert false
    | Accept -> List.rev acc
    | Node { runs; _ } ->
      let rec scan ri i =
        let r = runs.(ri) in
        let per = node_count r.r_child in
        let here = r.r_len * per in
        if i < here then begin
          let k = i / per in
          let v = r.r_lo + (k * r.r_step) in
          go r.r_child (i mod per) (v :: acc)
        end
        else scan (ri + 1) (i - here)
      in
      scan 0 i
  in
  List.combine (Array.to_list t.f_iters) (go t.f_root i [])

let default_rng = lazy (Random.State.make [| 0xbea57 |])

let sample ?rng t =
  let n = count t in
  if n = 0 then None
  else
    let rng =
      match rng with
      | Some r -> r
      | None -> Lazy.force default_rng
    in
    let i =
      if n <= 0x3FFFFFFF then Random.State.int rng n
      else Int64.to_int (Random.State.int64 rng (Int64.of_int n))
    in
    Some (nth t i)

(* ------------------------------------------------------------------ *)
(* Set algebra                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-node value maps are re-expanded for merging; runs compress huge
   DOMAINS only when a single layer really holds that many distinct
   values, so cap the expansion rather than attempt progression
   intersection algebra. *)
let expand_cap = 1 lsl 21

exception Run_too_wide of int

let expand_node runs =
  let total = Array.fold_left (fun acc r -> acc + r.r_len) 0 runs in
  if total > expand_cap then raise (Run_too_wide total);
  let out = ref [] in
  for ri = Array.length runs - 1 downto 0 do
    let r = runs.(ri) in
    for k = r.r_len - 1 downto 0 do
      out := (r.r_lo + (k * r.r_step), r.r_child) :: !out
    done
  done;
  !out

type set_op = Union | Inter

let combine op ta tb : (t, string) result =
  if ta.f_iters <> tb.f_iters then
    Error
      (Printf.sprintf "layer mismatch: [%s] vs [%s]"
         (String.concat " " (Array.to_list ta.f_iters))
         (String.concat " " (Array.to_list tb.f_iters)))
  else
    try
      let a = arena () in
      (* Rebuild a one-sided subtree inside the result arena (union
         branches present in only one operand). One memo per side: the
         two operands' node ids come from independent arenas and may
         collide. *)
      let importer () =
        let imported = Hashtbl.create 64 in
        let rec import node =
          match node with
          | Empty -> Empty
          | Accept -> Accept
          | Node { nid; runs; _ } -> (
            match Hashtbl.find_opt imported nid with
            | Some n -> n
            | None ->
              let pairs =
                List.map (fun (v, c) -> (v, import c)) (expand_node runs)
              in
              let n = cons_node a pairs in
              Hashtbl.add imported nid n;
              n)
        in
        import
      in
      let import_a = importer () and import_b = importer () in
      let memo = Hashtbl.create 256 in
      let rec go na nb =
        match (na, nb, op) with
        | Empty, x, Union -> import_b x
        | x, Empty, Union -> import_a x
        | Empty, _, Inter | _, Empty, Inter -> Empty
        | Accept, Accept, _ -> Accept
        | (Accept, Node _, _ | Node _, Accept, _) ->
          (* Equal layer lists put Accept at equal depth everywhere. *)
          assert false
        | Node ra, Node rb, _ -> (
          let k = (ra.nid, rb.nid) in
          match Hashtbl.find_opt memo k with
          | Some n -> n
          | None ->
            let pa = expand_node ra.runs and pb = expand_node rb.runs in
            let rec merge pa pb =
              match (pa, pb) with
              | [], rest -> begin
                match op with
                | Inter -> []
                | Union -> List.map (fun (v, c) -> (v, import_b c)) rest
              end
              | rest, [] -> begin
                match op with
                | Inter -> []
                | Union -> List.map (fun (v, c) -> (v, import_a c)) rest
              end
              | (va, ca) :: ta, (vb, cb) :: tb ->
                if va < vb then begin
                  match op with
                  | Inter -> merge ta pb
                  | Union -> (va, import_a ca) :: merge ta pb
                end
                else if va > vb then begin
                  match op with
                  | Inter -> merge pa tb
                  | Union -> (vb, import_b cb) :: merge pa tb
                end
                else (va, go ca cb) :: merge ta tb
            in
            let pairs =
              List.filter (fun (_, c) -> c <> Empty) (merge pa pb)
            in
            let n = cons_node a pairs in
            Hashtbl.add memo k n;
            n)
      in
      Ok
        {
          f_space =
            (if ta.f_space = tb.f_space then ta.f_space
             else ta.f_space ^ "+" ^ tb.f_space);
          f_iters = ta.f_iters;
          f_root = go ta.f_root tb.f_root;
        }
    with Run_too_wide n ->
      Error
        (Printf.sprintf
           "a layer holds %d distinct values (cap %d): too wide to merge"
           n expand_cap)

let union = combine Union
let inter = combine Inter

(* ------------------------------------------------------------------ *)
(* Deterministic serialization                                         *)
(* ------------------------------------------------------------------ *)

(* Children-first depth-first numbering from the root, runs in sorted
   value order: structure-equal diagrams print identically no matter
   what order construction consed their nodes in. *)
let to_string t =
  let ids = Hashtbl.create 64 in
  let order = ref [] in
  let next = ref 0 in
  let rec visit node =
    match node with
    | Empty | Accept -> ()
    | Node { nid; runs; _ } ->
      if not (Hashtbl.mem ids nid) then begin
        (* Reserve depth-first: children appear before their parent. *)
        Hashtbl.add ids nid (-1);
        Array.iter (fun r -> visit r.r_child) runs;
        Hashtbl.replace ids nid !next;
        incr next;
        order := node :: !order
      end
  in
  visit t.f_root;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "beast-feasible 1\n";
  Buffer.add_string buf ("space " ^ t.f_space ^ "\n");
  Buffer.add_string buf
    ("iters " ^ String.concat " " (Array.to_list t.f_iters) ^ "\n");
  Buffer.add_string buf (Printf.sprintf "count %d\n" (count t));
  let ref_of = function
    | Empty -> "E"
    | Accept -> "A"
    | Node { nid; _ } -> string_of_int (Hashtbl.find ids nid)
  in
  List.iter
    (fun node ->
      match node with
      | Empty | Accept -> ()
      | Node { runs; _ } ->
        Buffer.add_string buf (Printf.sprintf "node %s" (ref_of node));
        Array.iter
          (fun r ->
            Buffer.add_string buf
              (Printf.sprintf " %d:%d:%d:%s" r.r_lo r.r_step r.r_len
                 (ref_of r.r_child)))
          runs;
        Buffer.add_char buf '\n')
    (List.rev !order);
  Buffer.add_string buf ("root " ^ ref_of t.f_root ^ "\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Feasible-balanced sharding                                          *)
(* ------------------------------------------------------------------ *)

(* Survivor count below each value of the outermost layer, in iterator
   trip order (0 for values propagation or the checks already killed). *)
let outer_counts t values =
  let lookup v =
    match t.f_root with
    | Empty -> 0
    | Accept -> 0
    | Node { runs; _ } ->
      let rec scan ri =
        if ri >= Array.length runs then 0
        else
          let r = runs.(ri) in
          let off = v - r.r_lo in
          if
            off >= 0
            && off mod r.r_step = 0
            && off / r.r_step < r.r_len
          then node_count r.r_child
          else scan (ri + 1)
      in
      scan 0
  in
  Array.map lookup values

(* [chunk_outer_balanced feas plan ~index ~of_] is [Plan.chunk_outer]
   with the cut positions placed by cumulative FEASIBLE count instead
   of trip count: each chunk covers a contiguous block of the outer
   trip sequence holding as close to [count/of_] survivors as block
   boundaries allow. [feas] must describe [plan] (same space, built
   from it or its propagated form). Falls back to [Plan.chunk_outer]
   when the outer iterator is not static — the balance information
   cannot be applied without knowing the trip sequence. *)
let chunk_outer_balanced feas (plan : Plan.t) ~index ~of_ =
  if of_ <= 0 then invalid_arg "Feasible.chunk_outer_balanced: of_ must be > 0";
  if index < 0 || index >= of_ then
    invalid_arg "Feasible.chunk_outer_balanced: index out of range";
  let static = function
    | Plan.CValues vs -> Some vs
    | Plan.CRange (sa, sb, sc) -> (
      match (Plan.static_cexpr sa, Plan.static_cexpr sb, Plan.static_cexpr sc)
      with
      | Some start, Some stop, Some step when step <> 0 ->
        Some
          (Array.init (Plan.trip_count ~start ~stop ~step) (fun i ->
               start + (i * step)))
      | _ -> None)
    | Plan.CDyn _ -> None
  in
  let rec outer_iter = function
    | Plan.Loop { l_iter; _ } :: _ -> Some l_iter
    | _ :: rest -> outer_iter rest
    | [] -> None
  in
  match Option.bind (outer_iter plan.Plan.steps) static with
  | None -> Plan.chunk_outer plan ~index ~of_
  | Some values ->
    let n = Array.length values in
    let weights = outer_counts feas values in
    let total = Array.fold_left ( + ) 0 weights in
    (* prefix.(p) = survivors under the first p values. *)
    let prefix = Array.make (n + 1) 0 in
    for p = 0 to n - 1 do
      prefix.(p + 1) <- prefix.(p) + weights.(p)
    done;
    (* Smallest position whose prefix reaches the i-th equal share;
       monotone by construction, so blocks tile [0, n). *)
    let cut i =
      if i = 0 then 0
      else if i = of_ then n
      else begin
        let target = total * i / of_ in
        let pos = ref 0 in
        while !pos < n && prefix.(!pos) < target do
          incr pos
        done;
        !pos
      end
    in
    let lo = cut index and hi = cut (index + 1) in
    let sub = Array.sub values lo (hi - lo) in
    (* Dead-value bookkeeping splits by plain block position, exactly
       like [Plan.chunk_outer]: merged statistics must still sum to the
       sequential run's. *)
    let split_dead (dead : (int * int) array) =
      let nd = Array.length dead in
      let dlo = nd * index / of_ and dhi = nd * (index + 1) / of_ in
      Array.sub dead dlo (dhi - dlo)
    in
    let rec rebuild = function
      | Plan.Static_prune { sp_var; sp_slot; sp_dead } :: rest ->
        Plan.Static_prune { sp_var; sp_slot; sp_dead = split_dead sp_dead }
        :: rebuild rest
      | Plan.Loop { l_var; l_slot; l_iter = _; l_body } :: rest ->
        Plan.Loop { l_var; l_slot; l_iter = Plan.CValues sub; l_body } :: rest
      | s :: rest -> s :: rebuild rest
      | [] -> []
    in
    { plan with Plan.steps = rebuild plan.Plan.steps }
