(* One record for everything a `beast` run can be configured with beyond
   the space itself: observability (trace/progress/metrics), sharding,
   and the checkpoint/resume/fault-injection settings of long-running
   sweeps. The CLI builds the record once per invocation and threads it
   through sweep/tune/funnel/search instead of growing each subcommand a
   private pile of optional arguments. *)

open Beast_obs

type trace_format =
  | Jsonl
  | Chrome
  | Summary

type fault = Chunk_crash of { prob : float; seed : int }

type t = {
  trace : string option;
  trace_format : trace_format;
  progress : bool;
  metrics : bool;
  metrics_out : string option;
  shard : (int * int) option;
  checkpoint : string option;
  checkpoint_every_s : float;
  resume : string option;
  fault : fault option;
  explain_out : string option;
}

let default =
  {
    trace = None;
    trace_format = Chrome;
    progress = false;
    metrics = false;
    metrics_out = None;
    shard = None;
    checkpoint = None;
    checkpoint_every_s = 5.0;
    resume = None;
    fault = None;
    explain_out = None;
  }

let metrics_enabled t = t.metrics || t.metrics_out <> None

(* The shard bounds used to be checked only by the CLI argument parser;
   a config built programmatically (or a future config file) could slip
   an out-of-range shard through and silently sweep an empty space.
   Everything funnels through here now. *)
let validate_shard = function
  | None -> Ok ()
  | Some (_, n) when n <= 0 ->
    Error (Printf.sprintf "shard: the shard count N must be positive (got N = %d)" n)
  | Some (i, n) when i < 0 ->
    Error
      (Printf.sprintf
         "shard %d/%d: the shard index must be non-negative" i n)
  | Some (i, n) when i >= n ->
    Error
      (Printf.sprintf
         "shard %d/%d: the shard index must be below the shard count \
          (need 0 <= I < N)"
         i n)
  | Some _ -> Ok ()

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () = validate_shard t.shard in
  let* () =
    if t.checkpoint_every_s <= 0.0 then
      Error
        (Printf.sprintf "checkpoint-every: need a positive period (got %g)"
           t.checkpoint_every_s)
    else Ok ()
  in
  let* () =
    match t.fault with
    | Some (Chunk_crash { prob; _ }) when prob < 0.0 || prob >= 1.0 ->
      Error
        (Printf.sprintf
           "fault-inject: the crash probability must lie in [0, 1) (got %g); \
            at 1 no chunk could ever complete"
           prob)
    | _ -> Ok ()
  in
  (* A resumed run skips the chunks the checkpoint already completed, so
     its provenance would describe only the tail of the sweep — silently
     wrong attribution. Re-run without --resume to explain a space. *)
  if t.explain_out <> None && t.resume <> None then
    Error
      "explain-out: provenance needs a full sweep; it cannot be combined \
       with --resume (the checkpointed chunks would be missing from the \
       attribution)"
  else Ok ()

(* Install the event recorder, the progress reporter and/or the metrics
   registry around [f]; when [f] finishes (or raises) the collected
   events are written to the trace file in the requested format and the
   metrics to the Prometheus file. Output files are opened before any
   work happens so a bad path raises [Sys_error] up front instead of
   discarding a completed run at the end. *)
let with_instrumentation t f =
  let open_out_or_fail what file =
    try open_out file
    with Sys_error msg -> raise (Sys_error (Printf.sprintf "cannot open %s file: %s" what msg))
  in
  let recorder =
    match t.trace with
    | None -> None
    | Some file ->
      let oc = open_out_or_fail "trace" file in
      let r = Recorder.create () in
      Obs.set_sink (Recorder.sink r);
      Some (file, oc, r)
  in
  let metrics_sink =
    Option.map (fun file -> (file, open_out_or_fail "metrics" file)) t.metrics_out
  in
  let registry =
    if metrics_enabled t then begin
      let r = Metrics.create () in
      Metrics.set_current r;
      Some r
    end
    else None
  in
  let reporter =
    if t.progress then begin
      let p = Progress.create () in
      Progress.install p;
      Some p
    end
    else None
  in
  (* The collector is ambient like the metrics registry; the caller
     reads its summary (Provenance.current) inside [f], before this
     wrapper clears it. Serialization stays with the caller because the
     explain file needs the plan and shard tag. *)
  let collector =
    if t.explain_out <> None then begin
      let c = Provenance.create () in
      Provenance.set_current c;
      Some c
    end
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      if collector <> None then Provenance.clear_current ();
      Option.iter Progress.finish reporter;
      (match registry with
      | None -> ()
      | Some r ->
        Metrics.clear_current ();
        (match metrics_sink with
        | None -> ()
        | Some (file, oc) ->
          output_string oc (Metrics.Snapshot.to_prometheus (Metrics.snapshot r));
          close_out oc;
          Format.eprintf "wrote metrics to %s@." file));
      match recorder with
      | None -> ()
      | Some (file, oc, r) ->
        Obs.clear_sink ();
        let events = Recorder.events r in
        (match t.trace_format with
        | Jsonl -> Sink_jsonl.write oc events
        | Chrome -> Sink_chrome.write ~start_ns:(Recorder.start_ns r) oc events
        | Summary ->
          let ppf = Format.formatter_of_out_channel oc in
          Sink_summary.write ppf events;
          Format.pp_print_flush ppf ());
        close_out oc;
        Format.eprintf "wrote %d trace events to %s@." (Array.length events)
          file)
    f
