(* One record for everything a `beast` run can be configured with beyond
   the space itself: observability (trace/progress/metrics/status/
   flight), sharding, and the checkpoint/resume/fault-injection settings
   of long-running sweeps. The CLI builds the record once per invocation
   and threads it through sweep/tune/funnel/search instead of growing
   each subcommand a private pile of optional arguments. *)

open Beast_obs

type trace_format =
  | Jsonl
  | Chrome
  | Summary

type fault =
  | Chunk_crash of { prob : float; seed : int }
  | Chunk_fatal of { chunk : int }

type t = {
  trace : string option;
  trace_format : trace_format;
  progress : bool;
  progress_every_s : float option;
  metrics : bool;
  metrics_out : string option;
  shard : (int * int) option;
  propagate : bool option;
  checkpoint : string option;
  checkpoint_every_s : float;
  resume : string option;
  fault : fault option;
  explain_out : string option;
  run_id : string option;
  runs_dir : string option;
  status : string option;
  status_every_s : float;
  flight : string option;
  flight_capacity : int;
  archive : bool;
  archive_dir : string option;
}

let default =
  {
    trace = None;
    trace_format = Chrome;
    progress = false;
    progress_every_s = None;
    metrics = false;
    metrics_out = None;
    shard = None;
    propagate = None;
    checkpoint = None;
    checkpoint_every_s = 5.0;
    resume = None;
    fault = None;
    explain_out = None;
    run_id = None;
    runs_dir = None;
    status = None;
    status_every_s = 1.0;
    flight = None;
    flight_capacity = Flight.default_capacity;
    archive = false;
    archive_dir = None;
  }

let metrics_enabled t = t.metrics || t.metrics_out <> None

let introspected t =
  t.runs_dir <> None || t.status <> None || t.flight <> None
  || t.trace <> None || t.run_id <> None || t.archive

(* The shard bounds used to be checked only by the CLI argument parser;
   a config built programmatically (or a future config file) could slip
   an out-of-range shard through and silently sweep an empty space.
   Everything funnels through here now. *)
let validate_shard = function
  | None -> Ok ()
  | Some (_, n) when n <= 0 ->
    Error (Printf.sprintf "shard: the shard count N must be positive (got N = %d)" n)
  | Some (i, n) when i < 0 ->
    Error
      (Printf.sprintf
         "shard %d/%d: the shard index must be non-negative" i n)
  | Some (i, n) when i >= n ->
    Error
      (Printf.sprintf
         "shard %d/%d: the shard index must be below the shard count \
          (need 0 <= I < N)"
         i n)
  | Some _ -> Ok ()

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () = validate_shard t.shard in
  let* () =
    if t.checkpoint_every_s <= 0.0 then
      Error
        (Printf.sprintf "checkpoint-every: need a positive period (got %g)"
           t.checkpoint_every_s)
    else Ok ()
  in
  let* () =
    if t.status_every_s < 0.0 then
      Error
        (Printf.sprintf "status-every: need a non-negative period (got %g)"
           t.status_every_s)
    else Ok ()
  in
  let* () =
    match t.progress_every_s with
    | Some s when s <= 0.0 ->
      Error (Printf.sprintf "progress-every: need a positive period (got %g)" s)
    | _ -> Ok ()
  in
  let* () =
    if t.flight_capacity < 1 then
      Error
        (Printf.sprintf "flight-size: need at least one event (got %d)"
           t.flight_capacity)
    else Ok ()
  in
  let* () =
    match t.fault with
    | Some (Chunk_crash { prob; _ }) when prob < 0.0 || prob >= 1.0 ->
      Error
        (Printf.sprintf
           "fault-inject: the crash probability must lie in [0, 1) (got %g); \
            at 1 no chunk could ever complete"
           prob)
    | Some (Chunk_fatal { chunk }) when chunk < 0 ->
      Error
        (Printf.sprintf
           "fault-inject: the fatal chunk id must be non-negative (got %d)"
           chunk)
    | _ -> Ok ()
  in
  (* A resumed run skips the chunks the checkpoint already completed, so
     its provenance would describe only the tail of the sweep — silently
     wrong attribution. Re-run without --resume to explain a space. *)
  if t.explain_out <> None && t.resume <> None then
    Error
      "explain-out: provenance needs a full sweep; it cannot be combined \
       with --resume (the checkpointed chunks would be missing from the \
       attribution)"
  else Ok ()

(* How the run ended, for the status file's final snapshot. The default
   is "completed"; the CLI flips it to "interrupted" before returning
   exit code 3, and the crash wrapper below flips it to "crashed" when
   the callback raises. A plain ref suffices: it is written from the
   main thread only, between the sweep and the finalizers. *)
let exit_state = ref "completed"
let set_exit_state s = exit_state := s

(* Install the event recorder, flight recorder, progress reporter,
   status heartbeat and/or the metrics registry around [f]; when [f]
   finishes (or raises) the collected events are written to the trace
   file in the requested format, the flight rings are dumped, the status
   file is finalized and the metrics go to the Prometheus file. Output
   files are opened before any work happens so a bad path raises
   [Sys_error] up front instead of discarding a completed run at the
   end. *)
let with_instrumentation ?run_id ?space t f =
  exit_state := "completed";
  let open_out_or_fail what file =
    try open_out file
    with Sys_error msg -> raise (Sys_error (Printf.sprintf "cannot open %s file: %s" what msg))
  in
  let recorder =
    match t.trace with
    | None -> None
    | Some file ->
      let oc = open_out_or_fail "trace" file in
      let r = Recorder.create () in
      Some (file, oc, r)
  in
  let flight =
    Option.map
      (fun file -> (file, Flight.create ~capacity:t.flight_capacity ()))
      t.flight
  in
  (* One global sink slot: the flight recorder tees into the trace
     recorder when both are requested. *)
  (match (recorder, flight) with
  | None, None -> ()
  | Some (_, _, r), None -> Obs.set_sink (Recorder.sink r)
  | None, Some (_, fl) ->
    (* Coarse: the ring wants the run's final moments (chunk spans,
       faults, run:meta), not full tracing — a flight recorder must
       not slow the plane down. *)
    Obs.set_sink ~fine:false (Flight.sink fl)
  | Some (_, _, r), Some (_, fl) -> Obs.set_sink (Flight.tee fl (Recorder.sink r)));
  (* Stamp the run's identity into the event stream itself, so traces
     and flight dumps stay attributable after files are renamed — and so
     [beast merge --traces] can recover real shard coordinates instead
     of trusting argument order. *)
  if Obs.enabled () then begin
    let args =
      (match run_id with None -> [] | Some id -> [ ("run_id", Obs.Str id) ])
      @ (match space with None -> [] | Some sp -> [ ("space", Obs.Str sp) ])
      @
      match t.shard with
      | None -> []
      | Some (i, n) -> [ ("shard_index", Obs.Int i); ("shard_of", Obs.Int n) ]
    in
    Obs.instant ~cat:"run" ~args "run:meta"
  end;
  let metrics_sink =
    Option.map (fun file -> (file, open_out_or_fail "metrics" file)) t.metrics_out
  in
  let registry =
    if metrics_enabled t then begin
      let r = Metrics.create () in
      Metrics.set_current r;
      Some r
    end
    else None
  in
  let reporter =
    if t.progress then Some (Progress.create ?interval_s:t.progress_every_s ())
    else None
  in
  let status =
    Option.map
      (fun path ->
        let checkpoint_path =
          match (t.checkpoint, t.resume) with
          | Some p, _ | None, Some p -> Some p
          | None, None -> None
        in
        Status.create ~interval_s:t.status_every_s ?run_id ?space
          ?shard:t.shard ?checkpoint_path ~path ())
      t.status
  in
  (* The Obs progress/chunk hooks are single-slot; when both the
     terminal reporter and the status heartbeat are live, fan one
     closure out to both. *)
  (match (reporter, status) with
  | None, None -> ()
  | Some p, None -> Progress.install p
  | None, Some st -> Status.install st
  | Some p, Some st ->
    Obs.set_progress (fun ~dom ~points ~survivors ~frac ->
        Progress.tick p ~dom ~points ~survivors ~frac;
        Status.tick st ~dom ~points ~survivors ~frac);
    Obs.set_chunk_progress (fun ~completed ~total ->
        Progress.chunk_tick p ~completed ~total;
        Status.chunk_tick st ~completed ~total));
  (* The collector is ambient like the metrics registry; the caller
     reads its summary (Provenance.current) inside [f], before this
     wrapper clears it. Serialization stays with the caller because the
     explain file needs the plan and shard tag. *)
  let collector =
    if t.explain_out <> None then begin
      let c = Provenance.create () in
      Provenance.set_current c;
      Some c
    end
    else None
  in
  let run_f () =
    match f () with
    | v -> v
    | exception e ->
      exit_state := "crashed";
      raise e
  in
  Fun.protect
    ~finally:(fun () ->
      if collector <> None then Provenance.clear_current ();
      (match (reporter, status) with
      | None, None -> ()
      | Some p, None -> Progress.finish p
      | None, Some st ->
        Obs.clear_progress ();
        Obs.clear_chunk_progress ();
        Status.finalize st ~state:!exit_state
      | Some p, Some st ->
        Progress.finish p;
        Status.finalize st ~state:!exit_state);
      (match registry with
      | None -> ()
      | Some r ->
        Metrics.clear_current ();
        (match metrics_sink with
        | None -> ()
        | Some (file, oc) ->
          output_string oc (Metrics.Snapshot.to_prometheus (Metrics.snapshot r));
          close_out oc;
          Format.eprintf "wrote metrics to %s@." file));
      if recorder <> None || flight <> None then Obs.clear_sink ();
      (match flight with
      | None -> ()
      | Some (file, fl) ->
        let n = Flight.dump fl file in
        Format.eprintf "wrote flight recording (%d events) to %s@." n file);
      match recorder with
      | None -> ()
      | Some (file, oc, r) ->
        let events = Recorder.events r in
        (match t.trace_format with
        | Jsonl -> Sink_jsonl.write oc events
        | Chrome -> Sink_chrome.write ~start_ns:(Recorder.start_ns r) oc events
        | Summary ->
          let ppf = Format.formatter_of_out_channel oc in
          Sink_summary.write ppf events;
          Format.pp_print_flush ppf ());
        close_out oc;
        Format.eprintf "wrote %d trace events to %s@." (Array.length events)
          file)
    run_f
