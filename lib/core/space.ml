type constraint_class =
  | Hard
  | Soft
  | Correctness

let constraint_class_name = function
  | Hard -> "hard"
  | Soft -> "soft"
  | Correctness -> "correctness"

type body =
  | E of Expr.t
  | F of {
      fn_deps : string list;
      fn : Expr.lookup -> Value.t;
    }

type iterator = {
  it_name : string;
  it_iter : Iter.t;
}

type derived = {
  dv_name : string;
  dv_body : body;
}

type constraint_ = {
  cn_name : string;
  cn_class : constraint_class;
  cn_body : body;
}

type t = {
  sp_name : string;
  mutable rev_settings : (string * Value.t) list;
  mutable rev_iterators : iterator list;
  mutable rev_deriveds : derived list;
  mutable rev_constraints : constraint_ list;
  names : (string, unit) Hashtbl.t;
}

type error =
  | Duplicate_name of string
  | Undefined_reference of string * string
  | Cyclic of string list

let pp_error ppf = function
  | Duplicate_name n -> Format.fprintf ppf "duplicate name %s" n
  | Undefined_reference (referrer, missing) ->
    Format.fprintf ppf "%s references undefined name %s" referrer missing
  | Cyclic names ->
    Format.fprintf ppf "cyclic dependency: %s" (String.concat " -> " names)

exception Error of error

let create ?(name = "space") () =
  {
    sp_name = name;
    rev_settings = [];
    rev_iterators = [];
    rev_deriveds = [];
    rev_constraints = [];
    names = Hashtbl.create 64;
  }

let name t = t.sp_name

let declare t n =
  if Hashtbl.mem t.names n then raise (Error (Duplicate_name n));
  Hashtbl.replace t.names n ()

let setting t n v =
  declare t n;
  t.rev_settings <- (n, v) :: t.rev_settings

let setting_i t n i = setting t n (Value.Int i)
let setting_s t n s = setting t n (Value.Str s)

let iterator t n it =
  declare t n;
  t.rev_iterators <- { it_name = n; it_iter = it } :: t.rev_iterators

let derived t n e =
  declare t n;
  t.rev_deriveds <- { dv_name = n; dv_body = E e } :: t.rev_deriveds

let derived_f t n ~deps fn =
  declare t n;
  t.rev_deriveds <- { dv_name = n; dv_body = F { fn_deps = deps; fn } } :: t.rev_deriveds

let constrain t ?(cls = Hard) n e =
  declare t n;
  t.rev_constraints <-
    { cn_name = n; cn_class = cls; cn_body = E e } :: t.rev_constraints

let constrain_f t ?(cls = Hard) n ~deps fn =
  declare t n;
  t.rev_constraints <-
    { cn_name = n; cn_class = cls; cn_body = F { fn_deps = deps; fn } }
    :: t.rev_constraints

let settings t = List.rev t.rev_settings
let iterators t = List.rev t.rev_iterators
let deriveds t = List.rev t.rev_deriveds
let constraints t = List.rev t.rev_constraints
let find_setting t n = List.assoc_opt n (settings t)

let body_deps = function
  | E e -> Expr.free_vars e
  | F { fn_deps; _ } -> List.sort_uniq String.compare fn_deps

(* Dependencies excluding settings (constants): the DAG of Section X. *)
let node_edges t =
  let is_setting n = List.mem_assoc n t.rev_settings in
  let dep_edges target deps =
    List.filter_map
      (fun d -> if is_setting d then None else Some (d, target))
      deps
  in
  let it_edges =
    List.concat_map
      (fun it -> dep_edges it.it_name (Iter.deps it.it_iter))
      (iterators t)
  in
  let dv_edges =
    List.concat_map (fun dv -> dep_edges dv.dv_name (body_deps dv.dv_body)) (deriveds t)
  in
  let cn_edges =
    List.concat_map
      (fun cn -> dep_edges cn.cn_name (body_deps cn.cn_body))
      (constraints t)
  in
  it_edges @ dv_edges @ cn_edges

let filter_constraints t ~keep =
  let copy = create ~name:t.sp_name () in
  List.iter (fun (n, v) -> setting copy n v) (settings t);
  List.iter (fun it -> iterator copy it.it_name it.it_iter) (iterators t);
  List.iter
    (fun dv ->
      match dv.dv_body with
      | E e -> derived copy dv.dv_name e
      | F { fn_deps; fn } -> derived_f copy dv.dv_name ~deps:fn_deps fn)
    (deriveds t);
  List.iter
    (fun cn ->
      if keep cn then
        match cn.cn_body with
        | E e -> constrain copy ~cls:cn.cn_class cn.cn_name e
        | F { fn_deps; fn } ->
          constrain_f copy ~cls:cn.cn_class cn.cn_name ~deps:fn_deps fn)
    (constraints t);
  copy

let dag t =
  let nodes =
    List.map (fun it -> it.it_name) (iterators t)
    @ List.map (fun dv -> dv.dv_name) (deriveds t)
    @ List.map (fun cn -> cn.cn_name) (constraints t)
  in
  match Dag.create ~nodes ~edges:(node_edges t) with
  | Ok d -> Ok d
  | Error (Dag.Unknown_node (referrer, missing)) ->
    Error (Undefined_reference (referrer, missing))
  | Error (Dag.Cycle names) -> Error (Cyclic names)

let validate t =
  match dag t with
  | Ok _ -> Ok ()
  | Error e -> Error e

let build ?name f =
  let t = create ?name () in
  match f t with
  | () -> ( match validate t with Ok () -> Ok t | Error e -> Error e)
  | exception Error e -> Error e

let to_dot t =
  match dag t with
  | Error e -> raise (Error e)
  | Ok d ->
    let iterator_names =
      List.map (fun it -> it.it_name) (iterators t)
    in
    let derived_names = List.map (fun dv -> dv.dv_name) (deriveds t) in
    let attrs n =
      if List.mem n iterator_names then
        "shape=ellipse, style=filled, fillcolor=lightblue"
      else if List.mem n derived_names then
        "shape=box, style=filled, fillcolor=lightgrey"
      else "shape=octagon, style=filled, fillcolor=lightcoral"
    in
    Dag.to_dot ~name:t.sp_name ~attrs d
