(** One record for everything a run can be configured with beyond the
    space itself: observability (trace, progress, metrics, heartbeat
    status, flight recorder), sharding and the checkpoint/resume/
    fault-injection settings of long-running sweeps. [bin/beast.ml]
    builds the record once per invocation and threads it through
    sweep/tune/funnel/search instead of passing a growing pile of
    per-function optional arguments. *)

type trace_format =
  | Jsonl  (** one event per line *)
  | Chrome  (** trace-event JSON, loadable in Perfetto *)
  | Summary  (** human-readable aggregates *)

type fault =
  | Chunk_crash of { prob : float; seed : int }
      (** test hook: each chunk attempt crashes with probability [prob],
          drawn deterministically from [seed], the chunk id and the
          attempt number; the scheduler must retry it to completion *)
  | Chunk_fatal of { chunk : int }
      (** test hook: the first attempt at chunk [chunk] raises an
          unrecoverable exception, taking the whole run down — exercises
          the crash path (flight-recorder dump, manifest status) *)

type t = {
  trace : string option;  (** write a trace of the run to this file *)
  trace_format : trace_format;
  progress : bool;  (** live progress reporting on stderr *)
  progress_every_s : float option;
      (** progress redraw period; defaults to the reporter's own
          (0.2s tty / 2s plain) — raise it so non-tty CI logs aren't
          flooded on long sweeps *)
  metrics : bool;  (** install a metrics registry around the run *)
  metrics_out : string option;
      (** write Prometheus text exposition here (implies [metrics]) *)
  shard : (int * int) option;  (** [(i, n)]: run block [i] of an n-way split *)
  propagate : bool option;
      (** force the constraint-propagation pre-pass on ([Some true]) or
          off ([Some false]); [None] defers to the engine's catalog
          default ({!Engine_registry.entry}) *)
  checkpoint : string option;  (** periodically snapshot progress here *)
  checkpoint_every_s : float;  (** seconds between checkpoint writes *)
  resume : string option;  (** checkpoint file to resume from *)
  fault : fault option;
  explain_out : string option;
      (** collect single-pass pruning provenance and write it (with the
          run's stats) here, for [beast explain] *)
  run_id : string option;
      (** explicit run id; also stamped into the stats file (a minted id
          never is, keeping --stats-out byte-identical across
          instrumentation settings) *)
  runs_dir : string option;
      (** write a {!Beast_obs.Run_meta} manifest into this directory *)
  status : string option;
      (** atomically rewrite a heartbeat status snapshot here, for
          [beast top] *)
  status_every_s : float;  (** seconds between status rewrites; 0 = every tick *)
  flight : string option;
      (** keep a flight-recorder ring of recent events and dump it here
          as JSONL at exit (clean, interrupted or crashed) *)
  flight_capacity : int;  (** ring capacity per domain *)
  archive : bool;
      (** ingest the run's stats record into the cross-run archive on
          clean completion *)
  archive_dir : string option;
      (** archive directory; defaults to
          {!Beast_obs.Archive.default_dir} *)
}

val default : t
(** No instrumentation, no shard, no checkpointing,
    [checkpoint_every_s = 5.0], [status_every_s = 1.0],
    [flight_capacity = Flight.default_capacity]. *)

val metrics_enabled : t -> bool
(** [metrics || metrics_out <> None]. *)

val introspected : t -> bool
(** Whether the run wants a run id minted: any of [runs_dir], [status],
    [flight], [trace], [archive] or an explicit [run_id] is set. *)

val validate : t -> (unit, string) result
(** Reject configurations that would otherwise fail silently: shard
    bounds ([n <= 0], [i < 0] or [i >= n] would sweep an empty space),
    non-positive checkpoint/progress periods, negative status periods,
    a flight ring below one event, crash probabilities outside
    [\[0, 1)], negative fatal chunk ids, and [explain_out] combined
    with [resume] (a resumed run skips completed chunks, so its
    provenance would describe only the tail of the sweep). *)

val set_exit_state : string -> unit
(** How the run ended, for the status file's final snapshot:
    ["completed"] (the default, reset by each
    {!with_instrumentation}), ["interrupted"] or ["crashed"]. The CLI
    sets it before returning a non-zero exit code; a callback that
    raises is marked ["crashed"] automatically. *)

val with_instrumentation :
  ?run_id:string -> ?space:string -> t -> (unit -> 'a) -> 'a
(** Install the event recorder, flight recorder, progress reporter,
    status heartbeat, metrics registry and/or provenance collector
    described by the config around the callback; when it returns (or
    raises) the collected events are written to the trace file in the
    requested format, the flight rings are dumped (whatever the exit
    path — that is the point of a flight recorder), the status file is
    finalized with the {!set_exit_state} state and the metrics go to
    the Prometheus file. Output files are opened before the callback
    runs, so a bad path raises [Sys_error] up front instead of
    discarding a completed run at the end.

    [run_id] and [space] are stamped into the status file and into a
    ["run:meta"] instant event at the head of the event stream (when
    any sink is live), which is how stitched traces recover real shard
    coordinates.

    When both [progress] and [status] are requested the single-slot
    [Obs] hooks are fanned out to both reporters.

    When [explain_out] is set a {!Provenance} collector is ambient for
    the callback's duration; the callback must read
    [Provenance.current ()]'s summary itself (serialization needs the
    plan and shard tag, which only the caller has). *)
