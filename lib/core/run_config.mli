(** One record for everything a run can be configured with beyond the
    space itself: observability (trace, progress, metrics), sharding and
    the checkpoint/resume/fault-injection settings of long-running
    sweeps. [bin/beast.ml] builds the record once per invocation and
    threads it through sweep/tune/funnel/search instead of passing a
    growing pile of per-function optional arguments. *)

type trace_format =
  | Jsonl  (** one event per line *)
  | Chrome  (** trace-event JSON, loadable in Perfetto *)
  | Summary  (** human-readable aggregates *)

type fault =
  | Chunk_crash of { prob : float; seed : int }
      (** test hook: each chunk attempt crashes with probability [prob],
          drawn deterministically from [seed], the chunk id and the
          attempt number; the scheduler must retry it to completion *)

type t = {
  trace : string option;  (** write a trace of the run to this file *)
  trace_format : trace_format;
  progress : bool;  (** live progress reporting on stderr *)
  metrics : bool;  (** install a metrics registry around the run *)
  metrics_out : string option;
      (** write Prometheus text exposition here (implies [metrics]) *)
  shard : (int * int) option;  (** [(i, n)]: run block [i] of an n-way split *)
  checkpoint : string option;  (** periodically snapshot progress here *)
  checkpoint_every_s : float;  (** seconds between checkpoint writes *)
  resume : string option;  (** checkpoint file to resume from *)
  fault : fault option;
  explain_out : string option;
      (** collect single-pass pruning provenance and write it (with the
          run's stats) here, for [beast explain] *)
}

val default : t
(** No instrumentation, no shard, no checkpointing,
    [checkpoint_every_s = 5.0]. *)

val metrics_enabled : t -> bool
(** [metrics || metrics_out <> None]. *)

val validate : t -> (unit, string) result
(** Reject configurations that would otherwise fail silently: shard
    bounds ([n <= 0], [i < 0] or [i >= n] would sweep an empty space),
    non-positive checkpoint periods, crash probabilities outside
    [\[0, 1)], and [explain_out] combined with [resume] (a resumed run
    skips completed chunks, so its provenance would describe only the
    tail of the sweep). *)

val with_instrumentation : t -> (unit -> 'a) -> 'a
(** Install the event recorder, progress reporter, metrics registry
    and/or provenance collector described by the config around the
    callback; when it returns (or raises) the collected events are
    written to the trace file in the requested format and the metrics to
    the Prometheus file. Output files are opened before the callback
    runs, so a bad path raises [Sys_error] up front instead of
    discarding a completed run at the end.

    When [explain_out] is set a {!Provenance} collector is ambient for
    the callback's duration; the callback must read
    [Provenance.current ()]'s summary itself (serialization needs the
    plan and shard tag, which only the caller has). *)
