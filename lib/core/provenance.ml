(* Single-pass pruning provenance: exact per-constraint removal counts,
   per-depth loop entries and an outer-value survivor-density map from
   one sweep.

   Exactness argument. The canonical nest evaluates constraints in
   pre-order; a constraint hoisted to depth d reads only slots bound at
   depths <= d (or derived earlier in its own group). When it fires, the
   engine abandons a subtree whose cardinality is the product of the
   trip counts of the loops at depths d+1..n. Every abandoned point is
   charged to the FIRST constraint (in evaluation order) that rejects
   its prefix — the same exclusive attribution the n+1-prefix-sweep
   Stats.funnel measures — because deeper/later constraints were never
   reached for those points. The subtree cardinality is computed by a
   per-check compiled COUNTING PROGRAM over the tail of the (linear)
   nest: loops whose slot no deeper bound reads contribute a trip-count
   factor (constant-folded when static, re-evaluated from the live slot
   array otherwise); loops whose slot feeds a deeper bound (dim_vec
   feeding vec_mul's range in GEMM) are enumerated value by value, with
   intervening derived slots recomputed, so data-dependent subtrees
   count exactly too. Enumeration visits only loop-bound nodes of the
   REMOVED subtree, so its total cost is bounded by the number of
   points removed — one sweep's worth, against the n+1 sweeps it
   replaces. Only opaque closures below the check (CDyn iterators, or
   deferred derive bodies whose slot a deeper bound reads) defeat the
   analysis and yield Inexact.

   The density map is keyed by the VALUE of the outermost iterator, not
   by chunk index: Plan.chunk_outer blocks partition the outer trip
   sequence, so per-value cells sum across any chunk/shard split and
   re-sort deterministically — the property that makes merged shard
   provenance byte-identical to an unsharded run's. *)

module Jsonx = Beast_obs.Jsonx

type removal =
  | Static of int
  | Dyn of (int array -> int)
  | Inexact

type attribution = {
  at_names : string array;  (* constraint names by c_index *)
  at_depth : int array;  (* rejection depth by c_index *)
  at_removal : removal array;
  at_iters : string list;
  at_n_loops : int;
  at_outer_slot : int;  (* -1 when the plan has no loops *)
}

(* One pre-order item of a counting program: what runs below a check in
   the linear nest, with the checks themselves (irrelevant to subtree
   cardinality — every point under a firing passed all earlier checks)
   and Yield dropped. *)
type titem =
  | TDerive of int * Plan.cexpr  (* slot, body *)
  | TDerive_opaque of int  (* deferred/closure body: reads unknown *)
  | TLoop of int * Plan.citer

(* A tail defeats exact counting (opaque closure in a load-bearing
   position); the whole constraint degrades to Inexact. *)
exception Opaque

let union a b = List.sort_uniq compare (List.rev_append a b)
let remove s l = List.filter (fun x -> x <> s) l

let citer_reads = function
  | Plan.CValues _ | Plan.CDyn _ -> []
  | Plan.CRange (a, b, c) ->
    union (Plan.cexpr_slots a) (union (Plan.cexpr_slots b) (Plan.cexpr_slots c))

(* Compile a counting program bottom-up. Returns the counter, the slots
   it reads from OUTSIDE the tail (reads satisfied by an earlier tail
   item are discharged) and whether it ever WRITES a slot (it does only
   when something is enumerated or recomputed — the common all-hoisted
   program is read-only and may run directly on the engine's live slot
   array, saving a scratch copy per firing). A loop whose slot nothing
   deeper reads hoists to a trip-count factor; one that feeds a deeper
   bound is enumerated, rebinding its slot per value — likewise
   derives, which are executed only when some deeper bound needs their
   slot. *)
(* Memoise a compiled sub-program on the values of its free slots. An
   enumerated loop runs its body once per value per firing; across the
   tens of thousands of firings of a hot constraint the body sees only
   as many distinct free valuations as the product of its read slots'
   value ranges, so the table collapses the enumeration's inner work to
   lookups. Skipping a cached body also skips its writes, which is
   sound: a body only writes slots bound inside itself, which nothing
   outside it reads. *)
let memoize (f, reads, _writes) =
  match reads with
  | [] -> f
  | [ s ] ->
    let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
    fun slots ->
      let key = slots.(s) in
      (match Hashtbl.find_opt memo key with
      | Some k -> k
      | None ->
        let k = f slots in
        Hashtbl.add memo key k;
        k)
  | _ ->
    let memo : (int list, int) Hashtbl.t = Hashtbl.create 64 in
    fun slots ->
      let key = List.map (fun s -> slots.(s)) reads in
      (match Hashtbl.find_opt memo key with
      | Some k -> k
      | None ->
        let k = f slots in
        Hashtbl.add memo key k;
        k)

let compile_tail tail =
  List.fold_right
    (fun item ((f, reads, writes) as acc) ->
      match item with
      | TDerive (s, e) ->
        if List.mem s reads then
          let ereads = Plan.cexpr_slots e in
          let e = Plan.compile_cexpr e in
          ( (fun slots ->
              slots.(s) <- e slots;
              f slots),
            union ereads (remove s reads),
            true )
        else acc
      | TDerive_opaque s -> if List.mem s reads then raise Opaque else acc
      | TLoop (s, it) -> (
        match it with
        | Plan.CDyn _ -> raise Opaque
        | Plan.CValues vs ->
          if List.mem s reads then
            let f = memoize (f, reads, writes) in
            ( (fun slots ->
                let acc = ref 0 in
                Array.iter
                  (fun v ->
                    slots.(s) <- v;
                    acc := !acc + f slots)
                  vs;
                !acc),
              remove s reads,
              true )
          else
            let n = Array.length vs in
            ((fun slots -> n * f slots), reads, writes)
        | Plan.CRange (a, b, c) ->
          let breads = citer_reads it in
          let a = Plan.compile_cexpr a
          and b = Plan.compile_cexpr b
          and c = Plan.compile_cexpr c in
          if List.mem s reads then
            let f = memoize (f, reads, writes) in
            ( (fun slots ->
                let start = a slots and stop = b slots and step = c slots in
                if step = 0 then 0
                else begin
                  let acc = ref 0 in
                  let v = ref start in
                  while if step > 0 then !v < stop else !v > stop do
                    slots.(s) <- !v;
                    acc := !acc + f slots;
                    v := !v + step
                  done;
                  !acc
                end),
              union breads (remove s reads),
              true )
          else
            ( (fun slots ->
                Plan.trip_count ~start:(a slots) ~stop:(b slots)
                  ~step:(c slots)
                * f slots),
              union breads reads,
              writes )))
    tail
    ((fun _ -> 1), [], false)

let attribution (plan : Plan.t) =
  let n_c = Array.length plan.Plan.constraint_info in
  let n_loops = List.length plan.Plan.iter_order in
  (* Pre-order walk: when is each slot bound, when does each check run,
     and what does the tail after each check look like? A slot
     (iterator or derived) is live at a check iff its binding step
     precedes the check in pre-order. *)
  let bind_seq = Array.make (max 1 plan.Plan.n_slots) max_int in
  let check_seq = Array.make (max 1 n_c) 0 in
  let check_depth = Array.make (max 1 n_c) 0 in
  let items = ref [] in
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let rec walk depth steps =
    List.iter
      (fun (step : Plan.step) ->
        match step with
        | Plan.Derive { d_slot; d_compute; _ } ->
          bind_seq.(d_slot) <- next ();
          items :=
            (!seq,
             match d_compute with
             | Plan.CE e -> TDerive (d_slot, e)
             | Plan.CF _ -> TDerive_opaque d_slot)
            :: !items
        | Plan.Check { c_index; _ } ->
          check_seq.(c_index) <- next ();
          check_depth.(c_index) <- depth
        | Plan.Yield -> ()
        | Plan.Static_prune _ ->
          (* Dead values are replayed as statistics, not executed: they
             are not part of the live nest the counting programs model. *)
          ()
        | Plan.Loop { l_slot; l_iter; l_body; _ } ->
          bind_seq.(l_slot) <- next ();
          items := (!seq, TLoop (l_slot, l_iter)) :: !items;
          walk (depth + 1) l_body)
      steps
  in
  walk 0 plan.Plan.steps;
  let items = List.rev !items in
  let removal_for c =
    (* The nest is linear, so the pre-order tail after the check IS the
       subtree's program. *)
    let tail =
      List.filter_map
        (fun (s, it) -> if s > check_seq.(c) then Some it else None)
        items
    in
    match compile_tail tail with
    | exception Opaque -> Inexact
    | f, reads, writes ->
      if not (List.for_all (fun s -> bind_seq.(s) < check_seq.(c)) reads)
      then Inexact (* defensive: a well-formed plan never gets here *)
      else if reads = [] then (
        (* No outside reads: the count is a plan-time constant (the
           program only reads slots it binds itself). *)
        match f (Array.make (max 1 plan.Plan.n_slots) 0) with
        | k -> Static k
        | exception _ -> Inexact)
      else if writes then
        (* The counter rebinds enumerated slots as it runs; give it a
           scratch copy so a firing never perturbs the engine's live
           slot array. Inner enumerations are memoised on their free
           slots by [compile_tail], so repeat firings under the same
           outer valuation cost table lookups, not re-enumeration. *)
        Dyn (fun slots -> f (Array.copy slots))
      else
        (* Read-only program: safe on the live array, no per-firing
           allocation. *)
        Dyn f
  in
  {
    at_names = Array.map fst plan.Plan.constraint_info;
    at_depth = Array.sub check_depth 0 n_c;
    at_removal = Array.init n_c removal_for;
    at_iters = plan.Plan.iter_order;
    at_n_loops = n_loops;
    at_outer_slot =
      (if n_loops > 0 then plan.Plan.iter_slots.(0) else -1);
  }

let removal_of at c = at.at_removal.(c)

(* ------------------------------------------------------------------ *)
(* Per-run accumulator                                                 *)
(* ------------------------------------------------------------------ *)

type cell_acc = {
  mutable ca_survivors : int;
  mutable ca_removed : int;
}

type local = {
  lat : attribution;
  l_removed : int array;
  l_exact : bool array;
  l_cells : (int, cell_acc) Hashtbl.t;
  mutable l_static : int;
      (* points removed via Static_prune replay rather than a live
         firing: a subset of l_removed, surfaced as the "static
         propagation" waterfall row *)
}

let local_of at =
  let n_c = Array.length at.at_names in
  {
    lat = at;
    l_removed = Array.make (max 1 n_c) 0;
    l_exact = Array.make (max 1 n_c) true;
    l_cells = Hashtbl.create 64;
    l_static = 0;
  }

let cell_of tbl v =
  match Hashtbl.find_opt tbl v with
  | Some c -> c
  | None ->
    let c = { ca_survivors = 0; ca_removed = 0 } in
    Hashtbl.replace tbl v c;
    c

let fire local slots c =
  let at = local.lat in
  match at.at_removal.(c) with
  | Static k ->
    local.l_removed.(c) <- local.l_removed.(c) + k;
    if at.at_depth.(c) > 0 && at.at_outer_slot >= 0 then begin
      let cell = cell_of local.l_cells slots.(at.at_outer_slot) in
      cell.ca_removed <- cell.ca_removed + k
    end
  | Dyn f -> (
    match f slots with
    | k ->
      local.l_removed.(c) <- local.l_removed.(c) + k;
      if at.at_depth.(c) > 0 && at.at_outer_slot >= 0 then begin
        let cell = cell_of local.l_cells slots.(at.at_outer_slot) in
        cell.ca_removed <- cell.ca_removed + k
      end
    (* A bound expression that divides by a not-yet-meaningful value:
       the exact count is lost for this constraint, not for the run. *)
    | exception _ -> local.l_exact.(c) <- false)
  | Inexact -> local.l_exact.(c) <- false

(* Replay one Static_prune dead value: the engine never binds it, so
   substitute it into the live slot array for the duration of the
   firing (the removal program and the density cell both read it),
   then restore. The removal delta also accumulates into [l_static] —
   the "static propagation" share of the waterfall. *)
let static_fire local slots ~slot ~value c =
  let saved = slots.(slot) in
  slots.(slot) <- value;
  let before = local.l_removed.(c) in
  fire local slots c;
  local.l_static <- local.l_static + (local.l_removed.(c) - before);
  slots.(slot) <- saved

let hit local slots =
  let at = local.lat in
  if at.at_outer_slot >= 0 then begin
    let cell = cell_of local.l_cells slots.(at.at_outer_slot) in
    cell.ca_survivors <- cell.ca_survivors + 1
  end

(* ------------------------------------------------------------------ *)
(* Ambient collector                                                   *)
(* ------------------------------------------------------------------ *)

type schema = {
  s_names : string array;
  s_depths : int array;
  s_iters : string list;
  s_n_loops : int;
}

type t = {
  mutex : Mutex.t;
  mutable schema : schema option;
  mutable g_removed : int array;
  mutable g_exact : bool array;
  mutable g_depth_entries : int array;
  mutable g_static : int;
  g_cells : (int, cell_acc) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    schema = None;
    g_removed = [||];
    g_exact = [||];
    g_depth_entries = [||];
    g_static = 0;
    g_cells = Hashtbl.create 64;
  }

(* Same discipline as Metrics.current: a plain shared ref, read once per
   run before any domain spawns, so the engines' disabled path is one
   load-and-branch. *)
let current_ref : t option ref = ref None
let set_current c = current_ref := Some c
let clear_current () = current_ref := None
let current () = !current_ref
let enabled () = !current_ref <> None

let publish t ~depth_entries local =
  let at = local.lat in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (match t.schema with
      | None ->
        t.schema <-
          Some
            {
              s_names = at.at_names;
              s_depths = at.at_depth;
              s_iters = at.at_iters;
              s_n_loops = at.at_n_loops;
            };
        t.g_removed <- Array.make (Array.length at.at_names) 0;
        t.g_exact <- Array.make (Array.length at.at_names) true;
        t.g_depth_entries <- Array.make at.at_n_loops 0
      | Some s ->
        if Array.length s.s_names <> Array.length at.at_names then
          invalid_arg "Provenance.publish: runs disagree on the constraint list");
      Array.iteri
        (fun i _ ->
          t.g_removed.(i) <- t.g_removed.(i) + local.l_removed.(i);
          t.g_exact.(i) <- t.g_exact.(i) && local.l_exact.(i))
        t.g_removed;
      let n = min (Array.length t.g_depth_entries) (Array.length depth_entries) in
      for d = 0 to n - 1 do
        t.g_depth_entries.(d) <- t.g_depth_entries.(d) + depth_entries.(d)
      done;
      t.g_static <- t.g_static + local.l_static;
      Hashtbl.iter
        (fun v (c : cell_acc) ->
          let g = cell_of t.g_cells v in
          g.ca_survivors <- g.ca_survivors + c.ca_survivors;
          g.ca_removed <- g.ca_removed + c.ca_removed)
        local.l_cells)

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type crow = {
  pc_name : string;
  pc_depth : int;
  pc_removed : int option;
}

type cell = {
  cell_value : int;
  cell_survivors : int;
  cell_removed : int;
}

type summary = {
  pv_iters : string list;
  pv_constraints : crow list;
  pv_depth_entries : int list;
  pv_static : int;
      (* points removed by Static_prune replay; 0 for unpropagated runs
         and for summaries read from files that predate propagation *)
  pv_cells : cell list;
}

let cells_sorted tbl =
  Hashtbl.fold
    (fun v (c : cell_acc) acc ->
      { cell_value = v; cell_survivors = c.ca_survivors;
        cell_removed = c.ca_removed }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.cell_value b.cell_value)

let summary t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.schema with
      | None -> invalid_arg "Provenance.summary: nothing was published"
      | Some s ->
        {
          pv_iters = s.s_iters;
          pv_constraints =
            List.init (Array.length s.s_names) (fun i ->
                {
                  pc_name = s.s_names.(i);
                  pc_depth = s.s_depths.(i);
                  pc_removed =
                    (if t.g_exact.(i) then Some t.g_removed.(i) else None);
                });
          pv_depth_entries = Array.to_list t.g_depth_entries;
          pv_static = t.g_static;
          pv_cells = cells_sorted t.g_cells;
        })

let total_removed s =
  List.fold_left
    (fun acc r ->
      match (acc, r.pc_removed) with
      | Some a, Some k -> Some (a + k)
      | _ -> None)
    (Some 0) s.pv_constraints

let with_collector f =
  let prev = !current_ref in
  let c = create () in
  current_ref := Some c;
  let x = Fun.protect ~finally:(fun () -> current_ref := prev) f in
  (x, summary c)

let merge_summaries = function
  | [] -> Error "no provenance sections given"
  | first :: rest as all ->
    if List.exists (fun s -> s.pv_iters <> first.pv_iters) rest then
      Error "provenance: shards disagree on the loop order"
    else if
      List.exists
        (fun s ->
          List.length s.pv_constraints <> List.length first.pv_constraints
          || not
               (List.for_all2
                  (fun a b -> a.pc_name = b.pc_name && a.pc_depth = b.pc_depth)
                  s.pv_constraints first.pv_constraints))
        rest
    then Error "provenance: shards disagree on the constraint list"
    else if
      List.exists
        (fun s ->
          List.length s.pv_depth_entries <> List.length first.pv_depth_entries)
        rest
    then Error "provenance: shards disagree on the loop depth count"
    else begin
      let constraints =
        List.mapi
          (fun i r ->
            let removed =
              List.fold_left
                (fun acc s ->
                  match (acc, (List.nth s.pv_constraints i).pc_removed) with
                  | Some a, Some k -> Some (a + k)
                  | _ -> None)
                (Some 0) all
            in
            { r with pc_removed = removed })
          first.pv_constraints
      in
      let depth_entries =
        List.fold_left
          (fun acc s -> List.map2 ( + ) acc s.pv_depth_entries)
          (List.map (fun _ -> 0) first.pv_depth_entries)
          all
      in
      let tbl : (int, cell_acc) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun s ->
          List.iter
            (fun c ->
              let g = cell_of tbl c.cell_value in
              g.ca_survivors <- g.ca_survivors + c.cell_survivors;
              g.ca_removed <- g.ca_removed + c.cell_removed)
            s.pv_cells)
        all;
      Ok
        {
          pv_iters = first.pv_iters;
          pv_constraints = constraints;
          pv_depth_entries = depth_entries;
          pv_static =
            List.fold_left (fun acc s -> acc + s.pv_static) 0 all;
          pv_cells = cells_sorted tbl;
        }
    end

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_json buf ~indent s =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inner = indent ^ "  " in
  add "{\n";
  add "%s\"iters\": [" inner;
  List.iteri
    (fun i v ->
      add "%s\"%s\"" (if i = 0 then "" else ", ") (escape_string v))
    s.pv_iters;
  add "],\n";
  (* Key emitted only when propagation removed something, so files from
     unpropagated runs stay byte-identical to pre-propagation builds. *)
  if s.pv_static > 0 then add "%s\"static_removed\": %d,\n" inner s.pv_static;
  add "%s\"constraints\": [" inner;
  List.iteri
    (fun i r ->
      add "%s\n%s  { \"name\": \"%s\", \"depth\": %d, \"removed\": %s }"
        (if i = 0 then "" else ",")
        inner (escape_string r.pc_name) r.pc_depth
        (match r.pc_removed with
        | Some k -> string_of_int k
        | None -> "null"))
    s.pv_constraints;
  if s.pv_constraints <> [] then add "\n%s" inner;
  add "],\n";
  add "%s\"depth_entries\": [" inner;
  List.iteri
    (fun i k -> add "%s%d" (if i = 0 then "" else ", ") k)
    s.pv_depth_entries;
  add "],\n";
  add "%s\"cells\": [" inner;
  List.iteri
    (fun i c ->
      add "%s\n%s  { \"value\": %d, \"survivors\": %d, \"removed\": %d }"
        (if i = 0 then "" else ",")
        inner c.cell_value c.cell_survivors c.cell_removed)
    s.pv_cells;
  if s.pv_cells <> [] then add "\n%s" inner;
  add "]\n";
  add "%s}" indent

let of_jsonx (json : Jsonx.t) : (summary, string) result =
  try
    let iters =
      List.map
        (fun v -> Jsonx.to_str "iters" v)
        (Jsonx.to_list "iters" (Jsonx.member "iters" json))
    in
    let constraints =
      List.map
        (fun row ->
          {
            pc_name = Jsonx.to_str "name" (Jsonx.member "name" row);
            pc_depth = Jsonx.to_int "depth" (Jsonx.member "depth" row);
            pc_removed =
              (match Jsonx.member "removed" row with
              | Jsonx.Null -> None
              | v -> Some (Jsonx.to_int "removed" v));
          })
        (Jsonx.to_list "constraints" (Jsonx.member "constraints" json))
    in
    let depth_entries =
      List.map
        (fun v -> Jsonx.to_int "depth_entries" v)
        (Jsonx.to_list "depth_entries" (Jsonx.member "depth_entries" json))
    in
    let cells =
      List.map
        (fun row ->
          {
            cell_value = Jsonx.to_int "value" (Jsonx.member "value" row);
            cell_survivors =
              Jsonx.to_int "survivors" (Jsonx.member "survivors" row);
            cell_removed = Jsonx.to_int "removed" (Jsonx.member "removed" row);
          })
        (Jsonx.to_list "cells" (Jsonx.member "cells" json))
    in
    let static =
      match Jsonx.member_opt "static_removed" json with
      | None -> 0
      | Some v -> Jsonx.to_int "static_removed" v
    in
    Ok
      {
        pv_iters = iters;
        pv_constraints = constraints;
        pv_depth_entries = depth_entries;
        pv_static = static;
        pv_cells = cells;
      }
  with Jsonx.Error msg -> Error msg
