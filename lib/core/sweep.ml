type engine =
  | Interp_naive
  | Interp
  | Vm
  | Staged
  | Parallel of int

let engine_name = function
  | Interp_naive -> "interp-naive"
  | Interp -> "interp"
  | Vm -> "vm"
  | Staged -> "staged"
  | Parallel n -> Printf.sprintf "parallel-%d" n

let all_engines = [ Interp_naive; Interp; Vm; Staged; Parallel 2 ]

let module_of : engine -> (module Engine_intf.S) = function
  | Interp_naive -> (module Engine_registry.Interp_naive)
  | Interp -> (module Engine_registry.Interp)
  | Vm -> (module Engine_registry.Vm)
  | Staged -> (module Engine_registry.Staged)
  | Parallel n -> Engine_registry.parallel n

let run ?(engine = Staged) ?on_hit space =
  let (module E : Engine_intf.S) = module_of engine in
  E.run ?on_hit (Engine_intf.Space space)

let survivors ?engine ?limit space =
  let plan = Plan.make_exn space in
  let acc = ref [] in
  let count = ref 0 in
  let mutex = Mutex.create () in
  let record lookup =
    let point =
      List.map (fun n -> (n, lookup n)) plan.Plan.iter_order
    in
    Mutex.lock mutex;
    (match limit with
    | Some l when !count >= l -> ()
    | _ ->
      incr count;
      acc := point :: !acc);
    Mutex.unlock mutex
  in
  ignore (run ?engine ~on_hit:record space);
  List.rev !acc

let fold ?(engine = Staged) ~init ~f space =
  (match engine with
  | Parallel _ -> invalid_arg "Sweep.fold: sequential engines only"
  | _ -> ());
  let acc = ref init in
  let stats = run ~engine ~on_hit:(fun lookup -> acc := f !acc lookup) space in
  (!acc, stats)

exception Budget_reached

let cardinality ?(budget = 10_000_000) space =
  let unconstrained = Space.filter_constraints space ~keep:(fun _ -> false) in
  let count = ref 0 in
  let on_hit _ =
    incr count;
    if !count >= budget then raise Budget_reached
  in
  match Engine_staged.run_space ~on_hit unconstrained with
  | _ -> `Exact !count
  | exception Budget_reached -> `At_least !count
