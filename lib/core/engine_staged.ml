(* Staging: every expression is compiled once into a [unit -> int] closure
   reading the shared slot array; the step list is compiled into a single
   [unit -> unit] continuation chain. After compilation the sweep runs
   without looking at the plan again.

   When tracing or progress reporting is active (Obs.instrumenting) the
   steps are compiled by a second, instrumented compiler that also
   counts per-depth loop entries, accumulates per-constraint evaluation
   time and samples throughput; the choice is made once per run, at
   compile time, so the uninstrumented closures are exactly the ones the
   seed build produced.

   An installed Metrics registry selects the same instrumented compiler
   and additionally feeds each constraint evaluation into a per-domain
   latency histogram; histogram handles are resolved here, once per run,
   so the hot closure does an array read and a constant-time record. *)

open Beast_obs

let run ?on_hit (plan : Plan.t) =
  let metrics = Metrics.current () in
  let prov = Provenance.current () in
  (* Provenance accumulates into a run-private local (no synchronization
     in the hot path) published into the ambient collector at run end,
     so parallel chunk runs compose by summation. *)
  let plocal =
    Option.map (fun _ -> Provenance.local_of (Provenance.attribution plan)) prov
  in
  (* Per-constraint evaluation-latency histograms ([None] = metrics off). *)
  let eval_hists =
    Option.map
      (fun r ->
        Array.map
          (fun (name, _) ->
            Metrics.histogram r ~unit_:"ns" ~name:"constraint_eval_ns"
              ~labels:[ ("constraint", name) ]
              ())
          plan.Plan.constraint_info)
      metrics
  in
  let slots = Array.make (max 1 plan.Plan.n_slots) 0 in
  let n_constraints = Array.length plan.Plan.constraint_info in
  let pruned = Array.make n_constraints 0 in
  let survivors = ref 0 in
  let loop_iterations = ref 0 in
  let rec compile_cexpr (e : Plan.cexpr) : unit -> int =
    match e with
    | CLit k -> fun () -> k
    | CSlot i -> fun () -> slots.(i)
    | CUn (Neg, a) ->
      let fa = compile_cexpr a in
      fun () -> -fa ()
    | CUn (Not, a) ->
      let fa = compile_cexpr a in
      fun () -> if fa () = 0 then 1 else 0
    | CBin (And, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () = 0 then 0 else if fb () = 0 then 0 else 1
    | CBin (Or, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <> 0 then 1 else if fb () <> 0 then 1 else 0
    | CBin (Add, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () + fb ()
    | CBin (Sub, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () - fb ()
    | CBin (Mul, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () * fb ()
    | CBin (Div, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () / fb ()
    | CBin (Mod, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> fa () mod fb ()
    | CBin (Eq, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () = fb () then 1 else 0
    | CBin (Ne, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <> fb () then 1 else 0
    | CBin (Lt, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () < fb () then 1 else 0
    | CBin (Le, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () <= fb () then 1 else 0
    | CBin (Gt, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () > fb () then 1 else 0
    | CBin (Ge, a, b) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> if fa () >= fb () then 1 else 0
    | CIf (c, t, f) ->
      let fc = compile_cexpr c and ft = compile_cexpr t and ff = compile_cexpr f in
      fun () -> if fc () <> 0 then ft () else ff ()
    | CCall (Min, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> min (fa ()) (fb ())
    | CCall (Max, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () -> max (fa ()) (fb ())
    | CCall (Abs, [ a ]) ->
      let fa = compile_cexpr a in
      fun () -> abs (fa ())
    | CCall (Ceil_div, [ a; b ]) ->
      let fa = compile_cexpr a and fb = compile_cexpr b in
      fun () ->
        let d = fb () in
        (fa () + d - 1) / d
    | CCall _ -> invalid_arg "Engine_staged: malformed builtin call"
  in
  let compile_compute = function
    | Plan.CE e -> compile_cexpr e
    | Plan.CF f -> fun () -> f slots
  in
  let hit =
    match on_hit with
    | None -> fun () -> incr survivors
    | Some f ->
      let lookup = Plan.lookup_of_slots plan slots in
      fun () ->
        incr survivors;
        f lookup
  in
  let rec compile_steps (steps : Plan.step list) : unit -> unit =
    match steps with
    | [] -> fun () -> ()
    | Yield :: rest ->
      let k = compile_steps rest in
      fun () ->
        hit ();
        k ()
    | Derive { d_slot; d_compute; _ } :: rest ->
      let f = compile_compute d_compute in
      let k = compile_steps rest in
      fun () ->
        slots.(d_slot) <- f ();
        k ()
    | Check { c_index; c_compute; _ } :: rest ->
      let f = compile_compute c_compute in
      let k = compile_steps rest in
      fun () ->
        if f () <> 0 then pruned.(c_index) <- pruned.(c_index) + 1 else k ()
    | Static_prune { sp_dead; _ } :: rest ->
      (* Statistics compensation for statically-removed loop entries:
         the following loop never visits the dead values, but the stats
         must read as if it had entered each one and the attributed
         constraint had fired. *)
      let k = compile_steps rest in
      let n = Array.length sp_dead in
      let counts = Plan.static_prune_counts sp_dead in
      fun () ->
        loop_iterations := !loop_iterations + n;
        Array.iter (fun (c, m) -> pruned.(c) <- pruned.(c) + m) counts;
        k ()
    | Loop { l_var; l_slot; l_iter; l_body; _ } :: rest -> (
      let body = compile_steps l_body in
      let k = compile_steps rest in
      match l_iter with
      | CRange (a, b, c) ->
        let fa = compile_cexpr a and fb = compile_cexpr b and fc = compile_cexpr c in
        fun () ->
          let stop = fb () and step = fc () in
          if step = 0 then
            raise (Expr.Eval_error (Printf.sprintf "%s: zero range step" l_var));
          let i = ref (fa ()) in
          if step > 0 then
            while !i < stop do
              slots.(l_slot) <- !i;
              incr loop_iterations;
              body ();
              i := !i + step
            done
          else
            while !i > stop do
              slots.(l_slot) <- !i;
              incr loop_iterations;
              body ();
              i := !i + step
            done;
          k ()
      | CValues vs ->
        fun () ->
          for j = 0 to Array.length vs - 1 do
            slots.(l_slot) <- vs.(j);
            incr loop_iterations;
            body ()
          done;
          k ()
      | CDyn materialize ->
        fun () ->
          let vs = materialize slots in
          for j = 0 to Array.length vs - 1 do
            slots.(l_slot) <- vs.(j);
            incr loop_iterations;
            body ()
          done;
          k ())
  in
  (* Instrumented compiler: same continuation chain, with per-depth
     entry counts, per-level cumulative time, per-constraint evaluation
     time and periodic sampling folded into the closures. *)
  let n_loops = List.length plan.Plan.iter_order in
  let check_time = Array.make (max 1 n_constraints) 0 in
  let depth_entries = Array.make (max 1 n_loops) 0 in
  let level_time = Array.make (max 1 n_loops) 0 in
  let outer_total = ref 0 in
  let outer_done = ref 0 in
  let sampler = Engine.make_sampler () in
  let frac () =
    if !outer_total > 0 then
      float_of_int !outer_done /. float_of_int !outer_total
    else -1.0
  in
  let tick () =
    if !loop_iterations land Engine.sample_mask = 0 then
      Engine.sample sampler ~points:!loop_iterations ~survivors:!survivors
        ~frac:(frac ())
  in
  (* Resolved once per run: no-ops unless a provenance collector is
     installed, so the instrumented-for-metrics path pays one indirect
     call per firing/survivor at most. *)
  let prov_fire, prov_hit =
    match plocal with
    | None -> ((fun _ -> ()), fun () -> ())
    | Some pl ->
      ( (fun c -> Provenance.fire pl slots c),
        fun () -> Provenance.hit pl slots )
  in
  (* Shared by both instrumented compilers: replay a Static_prune's dead
     values into the statistics (and, when a provenance collector is
     installed, into the per-constraint removal/cell accounting, with
     the dead value substituted into the loop's slot). *)
  let compile_static_prune ~depth sp_slot (sp_dead : (int * int) array) =
    let n = Array.length sp_dead in
    match plocal with
    | None ->
      let counts = Plan.static_prune_counts sp_dead in
      fun () ->
        loop_iterations := !loop_iterations + n;
        depth_entries.(depth) <- depth_entries.(depth) + n;
        Array.iter (fun (c, m) -> pruned.(c) <- pruned.(c) + m) counts
    | Some pl ->
      fun () ->
        loop_iterations := !loop_iterations + n;
        depth_entries.(depth) <- depth_entries.(depth) + n;
        Array.iter
          (fun (v, c) ->
            pruned.(c) <- pruned.(c) + 1;
            Provenance.static_fire pl slots ~slot:sp_slot ~value:v c)
          sp_dead
  in
  let rec compile_steps_instr ~depth (steps : Plan.step list) : unit -> unit =
    match steps with
    | [] -> fun () -> ()
    | Yield :: rest ->
      let k = compile_steps_instr ~depth rest in
      fun () ->
        hit ();
        prov_hit ();
        k ()
    | Derive { d_slot; d_compute; _ } :: rest ->
      let f = compile_compute d_compute in
      let k = compile_steps_instr ~depth rest in
      fun () ->
        slots.(d_slot) <- f ();
        k ()
    | Check { c_index; c_compute; _ } :: rest -> (
      let f = compile_compute c_compute in
      let k = compile_steps_instr ~depth rest in
      match eval_hists with
      | None ->
        fun () ->
          let t0 = Clock.now_ns () in
          let v = f () in
          check_time.(c_index) <- check_time.(c_index) + (Clock.now_ns () - t0);
          if v <> 0 then begin
            pruned.(c_index) <- pruned.(c_index) + 1;
            prov_fire c_index
          end
          else k ()
      | Some hists ->
        let h = hists.(c_index) in
        fun () ->
          let t0 = Clock.now_ns () in
          let v = f () in
          let dt = Clock.now_ns () - t0 in
          check_time.(c_index) <- check_time.(c_index) + dt;
          Metrics.record h dt;
          if v <> 0 then begin
            pruned.(c_index) <- pruned.(c_index) + 1;
            prov_fire c_index
          end
          else k ())
    | Static_prune { sp_slot; sp_dead; _ } :: rest ->
      let replay = compile_static_prune ~depth sp_slot sp_dead in
      let k = compile_steps_instr ~depth rest in
      fun () ->
        replay ();
        k ()
    | Loop { l_var; l_slot; l_iter; l_body; _ } :: rest -> (
      let body = compile_steps_instr ~depth:(depth + 1) l_body in
      let k = compile_steps_instr ~depth rest in
      let enter v =
        slots.(l_slot) <- v;
        incr loop_iterations;
        depth_entries.(depth) <- depth_entries.(depth) + 1;
        if depth = 0 then incr outer_done;
        tick ();
        body ()
      in
      match l_iter with
      | CRange (a, b, c) ->
        let fa = compile_cexpr a and fb = compile_cexpr b and fc = compile_cexpr c in
        fun () ->
          let t0 = Clock.now_ns () in
          let start = fa () and stop = fb () and step = fc () in
          if step = 0 then
            raise (Expr.Eval_error (Printf.sprintf "%s: zero range step" l_var));
          if depth = 0 then
            outer_total := Plan.trip_count ~start ~stop ~step;
          let i = ref start in
          if step > 0 then
            while !i < stop do
              enter !i;
              i := !i + step
            done
          else
            while !i > stop do
              enter !i;
              i := !i + step
            done;
          level_time.(depth) <- level_time.(depth) + (Clock.now_ns () - t0);
          k ()
      | CValues vs ->
        fun () ->
          let t0 = Clock.now_ns () in
          if depth = 0 then outer_total := Array.length vs;
          for j = 0 to Array.length vs - 1 do
            enter vs.(j)
          done;
          level_time.(depth) <- level_time.(depth) + (Clock.now_ns () - t0);
          k ()
      | CDyn materialize ->
        fun () ->
          let t0 = Clock.now_ns () in
          let vs = materialize slots in
          if depth = 0 then outer_total := Array.length vs;
          for j = 0 to Array.length vs - 1 do
            enter vs.(j)
          done;
          level_time.(depth) <- level_time.(depth) + (Clock.now_ns () - t0);
          k ())
  in
  (* Provenance-only compiler: the plain continuation chain plus the
     fire/hit hooks and per-depth entry counts provenance publishes —
     none of the clock reads or sampling of the fully instrumented
     path, which would otherwise dominate a provenance-enabled sweep
     (two timestamps per constraint evaluation). *)
  let rec compile_steps_prov ~depth (steps : Plan.step list) : unit -> unit =
    match steps with
    | [] -> fun () -> ()
    | Yield :: rest ->
      let k = compile_steps_prov ~depth rest in
      fun () ->
        hit ();
        prov_hit ();
        k ()
    | Derive { d_slot; d_compute; _ } :: rest ->
      let f = compile_compute d_compute in
      let k = compile_steps_prov ~depth rest in
      fun () ->
        slots.(d_slot) <- f ();
        k ()
    | Check { c_index; c_compute; _ } :: rest ->
      let f = compile_compute c_compute in
      let k = compile_steps_prov ~depth rest in
      fun () ->
        if f () <> 0 then begin
          pruned.(c_index) <- pruned.(c_index) + 1;
          prov_fire c_index
        end
        else k ()
    | Static_prune { sp_slot; sp_dead; _ } :: rest ->
      let replay = compile_static_prune ~depth sp_slot sp_dead in
      let k = compile_steps_prov ~depth rest in
      fun () ->
        replay ();
        k ()
    | Loop { l_var; l_slot; l_iter; l_body; _ } :: rest -> (
      let body = compile_steps_prov ~depth:(depth + 1) l_body in
      let k = compile_steps_prov ~depth rest in
      let enter v =
        slots.(l_slot) <- v;
        incr loop_iterations;
        depth_entries.(depth) <- depth_entries.(depth) + 1;
        body ()
      in
      match l_iter with
      | CRange (a, b, c) ->
        let fa = compile_cexpr a and fb = compile_cexpr b and fc = compile_cexpr c in
        fun () ->
          let stop = fb () and step = fc () in
          if step = 0 then
            raise (Expr.Eval_error (Printf.sprintf "%s: zero range step" l_var));
          let i = ref (fa ()) in
          if step > 0 then
            while !i < stop do
              enter !i;
              i := !i + step
            done
          else
            while !i > stop do
              enter !i;
              i := !i + step
            done;
          k ()
      | CValues vs ->
        fun () ->
          for j = 0 to Array.length vs - 1 do
            enter vs.(j)
          done;
          k ()
      | CDyn materialize ->
        fun () ->
          let vs = materialize slots in
          for j = 0 to Array.length vs - 1 do
            enter vs.(j)
          done;
          k ())
  in
  let full_instr = Obs.instrumenting () || metrics <> None in
  let sweep =
    if full_instr then compile_steps_instr ~depth:0 plan.Plan.steps
    else if plocal <> None then compile_steps_prov ~depth:0 plan.Plan.steps
    else compile_steps plan.Plan.steps
  in
  let t0 = Clock.now_ns () in
  Obs.with_span ~cat:"engine"
    ~args:[ ("space", Obs.Str plan.Plan.space_name) ]
    "sweep:staged" sweep;
  if full_instr then
    Engine.emit_run_aggregates ~t0 plan ~pruned ~check_time ~depth_entries
      ~level_time;
  (* Unconditional: one hook check per run, and the cheap way a coarse
     status heartbeat learns per-chunk point totals. *)
  Obs.progress_tick ~points:!loop_iterations ~survivors:!survivors ~frac:1.0;
  (match (prov, plocal) with
  | Some collector, Some pl -> Provenance.publish collector ~depth_entries pl
  | _ -> ());
  (* Counters add across chunks and shards, so per-run adds compose. *)
  Option.iter
    (fun r ->
      List.iteri
        (fun d var ->
          Metrics.add
            (Metrics.counter r ~name:"loop_entries_total"
               ~labels:[ ("depth", string_of_int d); ("var", var) ]
               ())
            depth_entries.(d))
        plan.Plan.iter_order;
      Metrics.add (Metrics.counter r ~name:"points_total" ~labels:[] ())
        !loop_iterations;
      Metrics.add (Metrics.counter r ~name:"survivors_total" ~labels:[] ())
        !survivors)
    metrics;
  {
    Engine.survivors = !survivors;
    loop_iterations = !loop_iterations;
    pruned =
      Array.mapi
        (fun i (n, c) -> (n, c, pruned.(i)))
        plan.Plan.constraint_info;
  }

let run_space ?on_hit space = run ?on_hit (Plan.make_exn space)
