(** High-level sweep API tying the pieces together: pick an engine, run
    a space, collect survivors or fold over them. *)

type engine =
  | Interp_naive  (** tree-walking, everything evaluated innermost *)
  | Interp  (** tree-walking with DAG hoisting *)
  | Vm  (** bytecode *)
  | Staged  (** closure-compiled (default) *)
  | Parallel of int  (** staged across N domains *)

val engine_name : engine -> string
val all_engines : engine list

val module_of : engine -> (module Engine_intf.S)
(** The {!Engine_registry} module behind each variant; {!run} and the
    tuner dispatch through it. *)

val run : ?engine:engine -> ?on_hit:Engine.on_hit -> Space.t -> Engine.stats
(** @raise Plan.Error if the space does not plan. *)

val survivors :
  ?engine:engine -> ?limit:int -> Space.t -> (string * Value.t) list list
(** Collect surviving points as (iterator, value) bindings in loop
    order; stops recording after [limit] points (default unlimited) but
    completes the sweep. Not meaningful with [Parallel _] order-wise;
    the list order follows each domain's completion. *)

val fold :
  ?engine:engine ->
  init:'a ->
  f:('a -> Expr.lookup -> 'a) ->
  Space.t ->
  'a * Engine.stats
(** Sequential fold over survivors (rejects [Parallel _]). *)

val cardinality : ?budget:int -> Space.t -> [ `Exact of int | `At_least of int ]
(** Size of the {e unconstrained} space (every iterator combination, no
    pruning), counted by sweeping a constraint-free copy with the staged
    engine. Stops and returns [`At_least] once [budget] points have been
    counted (default budget [10_000_000]). *)
