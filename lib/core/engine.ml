open Beast_obs

type stats = {
  survivors : int;
  loop_iterations : int;
  pruned : (string * Space.constraint_class * int) array;
}

type on_hit = Expr.lookup -> unit

let empty_stats (plan : Plan.t) =
  {
    survivors = 0;
    loop_iterations = 0;
    pruned = Array.map (fun (n, c) -> (n, c, 0)) plan.Plan.constraint_info;
  }

let total_pruned s = Array.fold_left (fun acc (_, _, k) -> acc + k) 0 s.pruned

let merge a b =
  if Array.length a.pruned <> Array.length b.pruned then
    invalid_arg "Engine.merge: stats from different plans";
  {
    survivors = a.survivors + b.survivors;
    loop_iterations = a.loop_iterations + b.loop_iterations;
    pruned =
      Array.mapi
        (fun i (n, c, k) ->
          let _, _, k' = b.pruned.(i) in
          (n, c, k + k'))
        a.pruned;
  }

(* ------------------------------------------------------------------ *)
(* Instrumentation plumbing shared by the engines                      *)
(* ------------------------------------------------------------------ *)

(* Engines pick an instrumented code path once per run when
   [Obs.instrumenting ()] holds; with tracing and progress both off the
   hot loops are byte-identical to the uninstrumented build. Sampling
   happens every [sample_mask + 1] loop entries. *)

let sample_mask = 0x7FFF

type sampler = {
  mutable s_last_ns : int;
  mutable s_last_points : int;
}

let make_sampler () = { s_last_ns = Clock.now_ns (); s_last_points = 0 }

let sample s ~points ~survivors ~frac =
  let now = Clock.now_ns () in
  let dt = now - s.s_last_ns in
  if dt > 0 && Obs.enabled () then
    Obs.counter ~cat:"engine" "points_per_sec"
      (float_of_int (points - s.s_last_points) /. Clock.ns_to_s dt);
  s.s_last_ns <- now;
  s.s_last_points <- points;
  Obs.progress_tick ~points ~survivors ~frac

(* Post-run aggregates: one Complete span per constraint (cumulative
   evaluation time, firing count) and per loop level (cumulative time
   inside the level, entry count), all anchored at the run's start
   timestamp so they stack as tracks in a Chrome trace. *)
let emit_run_aggregates ~t0 (plan : Plan.t) ~pruned ~check_time ~depth_entries
    ~level_time =
  if Obs.enabled () then begin
    Array.iteri
      (fun i (name, cls) ->
        Obs.complete ~cat:"constraint" ~ts:t0 ~dur_ns:check_time.(i)
          ~args:
            [
              ("fired", Obs.Int pruned.(i));
              ("class", Obs.Str (Space.constraint_class_name cls));
            ]
          name)
      plan.Plan.constraint_info;
    List.iteri
      (fun d var ->
        Obs.complete ~cat:"level" ~ts:t0 ~dur_ns:level_time.(d)
          ~args:[ ("depth", Obs.Int d); ("entries", Obs.Int depth_entries.(d)) ]
          var)
      plan.Plan.iter_order
  end

let pp_stats ppf s =
  Format.fprintf ppf "survivors: %d@\nloop iterations: %d@\n" s.survivors
    s.loop_iterations;
  Array.iter
    (fun (n, c, k) ->
      Format.fprintf ppf "  %-28s [%s] fired %d@\n" n
        (Space.constraint_class_name c)
        k)
    s.pruned
