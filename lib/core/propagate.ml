(* Constraint-propagation pre-pass (ROADMAP item 2).

   The planner hoists every constraint to its shallowest evaluable
   depth, but the nest still SPINS over statically-dead iterator
   values: a hoisted check rejects them one entry at a time, every
   time the enclosing loops re-enter. This pass runs after [Plan.make]
   and removes such values from the loop iterators themselves, so the
   dead region is never entered at all — Willemsen & van Nieuwpoort's
   observation that constraint propagation builds constrained spaces
   orders of magnitude faster than rejection sampling over nested
   loops.

   Soundness contract (the safety rail every engine test pins): a
   propagated plan's statistics are BYTE-IDENTICAL to the original
   plan's. Each removed value therefore carries an attribution — the
   constraint that would have rejected it — recorded in a
   [Plan.Static_prune] step placed immediately before the loop;
   engines replay the step as one loop iteration plus one firing of
   the attributed constraint per dead value, per enclosing-body entry,
   exactly what the unpruned nest would have counted.

   A value [v] of loop [l] may be removed, attributed to check [c],
   only when for EVERY assignment of the surrounding loops:
   - every Derive in l's group prefix before [c] evaluates without
     raising;
   - every Check before [c] in the group does not fire;
   - [c] fires.
   All three are decided in monotone interval arithmetic over [cexpr]
   ([ieval]): surrounding slots carry the interval hull of their
   (possibly already-tightened) iterators, the candidate slot is a
   singleton, and any operation whose result interval cannot be
   bounded — an opaque [CF] body, a divisor interval containing zero,
   arithmetic that might overflow — poisons the evaluation to
   "unknown", which keeps the value alive. Conservative, never wrong.

   The pass sweeps to a fixpoint (outer hulls tighten inner scans)
   with a sweep cap; in the canonical nest one sweep almost always
   converges because checks only ever read slots bound at shallower
   depths. *)

type interval = { lo : int; hi : int }

let singleton v = { lo = v; hi = v }
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Definite truthiness of an expression's value interval (a check
   fires on nonzero). *)
let definitely_true i = i.lo > 0 || i.hi < 0
let definitely_false i = i.lo = 0 && i.hi = 0

(* Overflow-guarded scalar arithmetic: a corner that would wrap
   returns None and poisons the whole interval, so an interval is
   never narrower than the concrete (wrapping) evaluation. *)
let add_checked a b =
  let s = a + b in
  if a >= 0 = (b >= 0) && s >= 0 <> (a >= 0) then None else Some s

let neg_checked a = if a = min_int then None else Some (-a)

let mul_checked a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / a <> b then None else Some p

let div_checked a b =
  if b = 0 || (a = min_int && b = -1) then None else Some (a / b)

let ceil_div_checked a b =
  match add_checked a (b - 1) with
  | Some n -> div_checked n b
  | None -> None

(* Corner combination for operations monotone (in either direction) in
   each argument over the box — Add, Sub, Mul, and Div/Ceil_div once
   the divisor interval excludes zero and has a single sign. *)
let corners f a b =
  let ( let* ) = Option.bind in
  let* x1 = f a.lo b.lo in
  let* x2 = f a.lo b.hi in
  let* x3 = f a.hi b.lo in
  let* x4 = f a.hi b.hi in
  Some
    {
      lo = min (min x1 x2) (min x3 x4);
      hi = max (max x1 x2) (max x3 x4);
    }

let excludes_zero b = b.lo > 0 || b.hi < 0

(* [ieval box e] returns the value interval (None = unknown) and
   whether evaluation is provably raise-free over the box. And/Or/CIf
   mirror [Plan.eval_cexpr]'s short-circuiting: an unsafe right
   operand is harmless when the left one decides the result. *)
let rec ieval (box : interval option array) (e : Plan.cexpr) :
    interval option * bool =
  match e with
  | CLit k -> (Some (singleton k), true)
  | CSlot s -> (box.(s), true)
  | CUn (Neg, a) ->
    let ia, sa = ieval box a in
    let i =
      match ia with
      | Some { lo; hi } -> (
        match (neg_checked hi, neg_checked lo) with
        | Some lo', Some hi' -> Some { lo = lo'; hi = hi' }
        | _ -> None)
      | None -> None
    in
    (i, sa)
  | CUn (Not, a) ->
    let ia, sa = ieval box a in
    let i =
      match ia with
      | Some v ->
        if definitely_true v then Some (singleton 0)
        else if definitely_false v then Some (singleton 1)
        else Some { lo = 0; hi = 1 }
      | None -> None
    in
    (i, sa)
  | CBin (And, a, b) -> (
    let ia, sa = ieval box a in
    match ia with
    | Some v when definitely_false v ->
      (Some (singleton 0), sa) (* b never evaluated *)
    | _ ->
      let ib, sb = ieval box b in
      let i =
        match (ia, ib) with
        | Some va, Some vb ->
          if definitely_false va || definitely_false vb then
            Some (singleton 0)
          else if definitely_true va && definitely_true vb then
            Some (singleton 1)
          else Some { lo = 0; hi = 1 }
        | _ -> None
      in
      (i, sa && sb))
  | CBin (Or, a, b) -> (
    let ia, sa = ieval box a in
    match ia with
    | Some v when definitely_true v -> (Some (singleton 1), sa)
    | _ ->
      let ib, sb = ieval box b in
      let i =
        match (ia, ib) with
        | Some va, Some vb ->
          if definitely_true va || definitely_true vb then
            Some (singleton 1)
          else if definitely_false va && definitely_false vb then
            Some (singleton 0)
          else Some { lo = 0; hi = 1 }
        | _ -> None
      in
      (i, sa && sb))
  | CBin (op, a, b) ->
    let ia, sa = ieval box a in
    let ib, sb = ieval box b in
    let safe = sa && sb in
    let i =
      match (ia, ib) with
      | Some va, Some vb -> binop_interval op va vb
      | _ -> None
    in
    let safe =
      match op with
      | Div | Mod -> (
        (* Division by zero raises at runtime: only provably-nonzero
           divisor intervals are safe. *)
        safe
        &&
        match ib with
        | Some vb -> excludes_zero vb
        | None -> false)
      | _ -> safe
    in
    (i, safe)
  | CIf (c, t, f) -> (
    let ic, sc = ieval box c in
    match ic with
    | Some v when definitely_true v ->
      let it, st = ieval box t in
      (it, sc && st)
    | Some v when definitely_false v ->
      let if_, sf = ieval box f in
      (if_, sc && sf)
    | _ ->
      (* Either branch may run: value is the hull, safety needs both. *)
      let it, st = ieval box t in
      let if_, sf = ieval box f in
      let i =
        match (it, if_) with
        | Some a, Some b -> Some (hull a b)
        | _ -> None
      in
      (i, sc && st && sf && ic <> None))
  | CCall (Min, [ a; b ]) ->
    let ia, sa = ieval box a in
    let ib, sb = ieval box b in
    let i =
      match (ia, ib) with
      | Some va, Some vb ->
        Some { lo = min va.lo vb.lo; hi = min va.hi vb.hi }
      | _ -> None
    in
    (i, sa && sb)
  | CCall (Max, [ a; b ]) ->
    let ia, sa = ieval box a in
    let ib, sb = ieval box b in
    let i =
      match (ia, ib) with
      | Some va, Some vb ->
        Some { lo = max va.lo vb.lo; hi = max va.hi vb.hi }
      | _ -> None
    in
    (i, sa && sb)
  | CCall (Abs, [ a ]) ->
    let ia, sa = ieval box a in
    let i =
      match ia with
      | Some v ->
        if v.lo >= 0 then Some v
        else if v.hi <= 0 then
          (match (neg_checked v.hi, neg_checked v.lo) with
          | Some lo', Some hi' -> Some { lo = lo'; hi = hi' }
          | _ -> None)
        else (
          match (neg_checked v.lo, Some v.hi) with
          | Some nl, Some h -> Some { lo = 0; hi = max nl h }
          | _ -> None)
      | None -> None
    in
    (i, sa)
  | CCall (Ceil_div, [ a; b ]) ->
    let ia, sa = ieval box a in
    let ib, sb = ieval box b in
    let safe =
      sa && sb
      &&
      match ib with
      | Some vb -> excludes_zero vb
      | None -> false
    in
    let i =
      match (ia, ib) with
      (* Corner monotonicity of ceil-div is only established for
         all-positive divisors; anything else stays unknown. *)
      | Some va, Some vb when vb.lo > 0 -> corners ceil_div_checked va vb
      | _ -> None
    in
    (i, safe)
  | CCall _ -> (None, false)

and binop_interval (op : Expr.binop) a b =
  match op with
  | Add -> corners add_checked a b
  | Sub ->
    let sub x y = Option.bind (neg_checked y) (add_checked x) in
    corners sub a b
  | Mul -> corners mul_checked a b
  | Div -> if excludes_zero b then corners div_checked a b else None
  | Mod ->
    if not (excludes_zero b) then None
    else if a.lo = a.hi && b.lo = b.hi then
      Some (singleton (a.lo mod b.lo))
    else
      (* OCaml's mod takes the dividend's sign; |result| < max |b|. *)
      let m = max (abs b.lo) (abs b.hi) - 1 in
      if a.lo >= 0 then Some { lo = 0; hi = min a.hi m }
      else if a.hi <= 0 then Some { lo = max a.lo (-m); hi = 0 }
      else Some { lo = -m; hi = m }
  | Eq ->
    if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some (singleton 1)
    else if a.hi < b.lo || b.hi < a.lo then Some (singleton 0)
    else Some { lo = 0; hi = 1 }
  | Ne ->
    if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some (singleton 0)
    else if a.hi < b.lo || b.hi < a.lo then Some (singleton 1)
    else Some { lo = 0; hi = 1 }
  | Lt ->
    if a.hi < b.lo then Some (singleton 1)
    else if a.lo >= b.hi then Some (singleton 0)
    else Some { lo = 0; hi = 1 }
  | Le ->
    if a.hi <= b.lo then Some (singleton 1)
    else if a.lo > b.hi then Some (singleton 0)
    else Some { lo = 0; hi = 1 }
  | Gt ->
    if a.lo > b.hi then Some (singleton 1)
    else if a.hi <= b.lo then Some (singleton 0)
    else Some { lo = 0; hi = 1 }
  | Ge ->
    if a.lo >= b.hi then Some (singleton 1)
    else if a.hi < b.lo then Some (singleton 0)
    else Some { lo = 0; hi = 1 }
  | And | Or -> assert false (* short-circuited in ieval *)

let interval_of_cexpr box e = fst (ieval box e)

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

(* Largest static iterator the dead-value scan will enumerate; bigger
   loops keep their (interval-hulled) bounds and are skipped. *)
let scan_cap = 4_000_000

let materialize_static (it : Plan.citer) : int array option =
  match it with
  | Plan.CValues vs ->
    if Array.length vs <= scan_cap then Some vs else None
  | Plan.CRange (a, b, c) -> (
    match (Plan.static_cexpr a, Plan.static_cexpr b, Plan.static_cexpr c) with
    | Some start, Some stop, Some step when step <> 0 ->
      let n = Plan.trip_count ~start ~stop ~step in
      if n <= scan_cap then
        Some (Array.init n (fun i -> start + (i * step)))
      else None
    | _ -> None)
  | Plan.CDyn _ -> None

let interval_of_values vs =
  if Array.length vs = 0 then None
  else
    Some
      {
        lo = Array.fold_left min max_int vs;
        hi = Array.fold_left max min_int vs;
      }

(* Value hull of a symbolic iterator under the box: for a range with a
   static step every visited value lies strictly inside [start, stop)
   (or (stop, start] for negative steps). *)
let citer_interval box (it : Plan.citer) =
  match it with
  | Plan.CValues vs -> interval_of_values vs
  | Plan.CRange (a, b, c) -> (
    match Plan.static_cexpr c with
    | Some step when step <> 0 -> (
      match (interval_of_cexpr box a, interval_of_cexpr box b) with
      | Some ia, Some ib ->
        if step > 0 then
          if ib.hi = min_int then None
          else Some { lo = ia.lo; hi = ib.hi - 1 }
        else if ib.lo = max_int then None
        else Some { lo = ib.lo + 1; hi = ia.hi }
      | _ -> None)
    | _ -> None)
  | Plan.CDyn _ -> None

(* Scan one static loop's candidates against its group prefix (the
   Derive/Check run before the first nested loop). Returns the dead
   (value, c_index) pairs and the surviving values, both in original
   trip order, or None when nothing could be removed. *)
let scan_loop box l_slot body candidates =
  let rec prefix acc = function
    | ((Plan.Derive _ | Plan.Check _) as s) :: rest -> prefix (s :: acc) rest
    | _ -> List.rev acc
  in
  let group = prefix [] body in
  let has_check =
    List.exists
      (function
        | Plan.Check _ -> true
        | _ -> false)
      group
  in
  if not has_check then None
  else begin
    let dead = ref [] and n_dead = ref 0 in
    let live = ref [] in
    let scratch = Array.copy box in
    Array.iter
      (fun v ->
        Array.blit box 0 scratch 0 (Array.length box);
        scratch.(l_slot) <- Some (singleton v);
        let rec go = function
          | [] -> live := v :: !live
          | Plan.Derive { d_slot; d_compute; _ } :: rest -> (
            match d_compute with
            | Plan.CF _ ->
              (* Opaque body: value unknown but evaluation may also
                 raise — past this point nothing can be attributed. *)
              live := v :: !live
            | Plan.CE e ->
              let i, safe = ieval scratch e in
              if not safe then live := v :: !live
              else begin
                scratch.(d_slot) <- i;
                go rest
              end)
          | Plan.Check { c_index; c_compute; _ } :: rest -> (
            match c_compute with
            | Plan.CF _ -> live := v :: !live
            | Plan.CE e -> (
              match ieval scratch e with
              | Some i, true when definitely_true i ->
                incr n_dead;
                dead := (v, c_index) :: !dead
              | Some i, true when definitely_false i -> go rest
              | _ -> live := v :: !live))
          | (Plan.Loop _ | Plan.Yield | Plan.Static_prune _) :: _ ->
            assert false
        in
        go group)
      candidates;
    if !n_dead = 0 then None
    else
      Some
        ( Array.of_list (List.rev !dead),
          Array.of_list (List.rev !live) )
  end

(* Re-encode the surviving values: an arithmetic progression becomes a
   literal range (what Codegen_c turns into a plain for loop), anything
   irregular a value table. Trip order is preserved either way, so
   on_hit callback order matches the unpropagated run. *)
let rebuild_iter live =
  let n = Array.length live in
  if n < 2 then Plan.CValues live
  else begin
    let d = live.(1) - live.(0) in
    let progression = ref (d <> 0) in
    for i = 1 to n - 2 do
      if live.(i + 1) - live.(i) <> d then progression := false
    done;
    if !progression then
      Plan.CRange
        (Plan.CLit live.(0), Plan.CLit (live.(n - 1) + d), Plan.CLit d)
    else Plan.CValues live
  end

let sweep (plan : Plan.t) =
  let changed = ref false in
  let box = Array.make (max 1 plan.Plan.n_slots) None in
  let rec go steps =
    match (steps : Plan.step list) with
    | [] -> []
    | (Plan.Derive { d_slot; d_compute; _ } as s) :: rest ->
      (match d_compute with
      | Plan.CE e -> box.(d_slot) <- interval_of_cexpr box e
      | Plan.CF _ -> box.(d_slot) <- None);
      s :: go rest
    | ((Plan.Check _ | Plan.Static_prune _ | Plan.Yield) as s) :: rest ->
      s :: go rest
    | Plan.Loop ({ l_var; l_slot; l_iter; l_body } as l) :: rest -> (
      let static = materialize_static l_iter in
      let scanned =
        match static with
        | Some candidates when Array.length candidates > 0 ->
          scan_loop box l_slot l_body candidates
        | _ -> None
      in
      match scanned with
      | Some (dead, live) ->
        changed := true;
        box.(l_slot) <- interval_of_values live;
        let body' = go l_body in
        box.(l_slot) <- None;
        Plan.Static_prune { sp_var = l_var; sp_slot = l_slot; sp_dead = dead }
        :: Plan.Loop { l with l_iter = rebuild_iter live; l_body = body' }
        :: go rest
      | None ->
        box.(l_slot) <-
          (match static with
          | Some vs -> interval_of_values vs
          | None -> citer_interval box l_iter);
        let body' = go l_body in
        box.(l_slot) <- None;
        Plan.Loop { l with l_body = body' } :: go rest)
  in
  let steps = go plan.Plan.steps in
  if !changed then Some { plan with Plan.steps } else None

let default_sweeps = 4

let pass ?(sweeps = default_sweeps) plan =
  let rec fix k plan =
    if k <= 0 then plan
    else
      match sweep plan with
      | Some plan' -> fix (k - 1) plan'
      | None -> plan
  in
  fix sweeps plan
