(** Pruning statistics and funnel reports.

    Section VI observes that constraints prune the space "sometimes by as
    much as 99%"; this module turns engine statistics into the funnel the
    paper's visualization work (reference [7], VISSOFT'14) renders: how
    many candidate points each constraint removed and what fraction of
    the unconstrained space survives. *)

type row = {
  constraint_name : string;
  constraint_class : Space.constraint_class;
  fired : int;  (** times the constraint rejected (subtree abandoned) *)
  removed : int option;
      (** full points removed by those firings; [None] when the funnel
          was built from a single sweep and exact attribution is
          unavailable *)
}

type funnel = {
  space : string;
  total_points : int;  (** cardinality of the unconstrained space *)
  survivors : int;
  rows : row list;  (** in evaluation order *)
}

val survival_rate : funnel -> float
(** survivors / total_points (1.0 for an empty space). *)

val pruned_fraction : funnel -> float
(** 1 - {!survival_rate}: the paper's "as much as 99%". *)

val funnel :
  ?engine:(Plan.t -> Engine.stats) ->
  Space.t ->
  funnel
(** The reference prefix-sweep method: one sweep per prefix of the
    constraint set (constraints in evaluation order, each run adding
    one more) with the given engine (default {!Engine_staged.run}); the
    drop in survivors between consecutive runs is the number of points
    each constraint removes. Cost: [n+1] sweeps over the
    {e unconstrained} space — prefer {!funnel_single_pass}, which gets
    the same numbers from one sweep, and keep this as the independent
    cross-check it serves as in the test suite.
    @raise Plan.Error if the space does not plan. *)

val funnel_single_pass :
  ?engine:(Plan.t -> Engine.stats) ->
  Space.t ->
  funnel
(** The fast path: one provenance-instrumented sweep of the full space.
    A constraint firing at depth [d] abandons a subtree whose
    cardinality is the product of the inner loops' trip counts, and
    constraints earlier in evaluation order reject first, so summing
    those products per constraint reproduces {!funnel}'s exclusive
    removal counts exactly (see {!Provenance}). When the space defeats
    exact attribution (closure iterators or bounds read from
    later-bound variables below a check) this falls back to the
    [n+1]-sweep {!funnel} instead of returning partial counts.
    @raise Plan.Error if the space does not plan. *)

val funnel_of_run : Stats_io.t -> (funnel, string) result
(** Rebuild the funnel from a serialized instrumented run
    ([sweep --explain-out], or a [beast merge] of a complete shard set)
    without re-sweeping anything. Rows come back in evaluation order.
    [Error] when the file carries no provenance section or its rows
    disagree with the stats rows. Constraints with inexact attribution
    keep [removed = None] and do not contribute to [total_points]
    (which is then a lower bound). *)

val of_stats : Space.t -> Engine.stats -> total_points:int -> funnel
(** Cheap single-sweep variant: rows carry firing counts only
    ([removed = None]). [total_points] must be supplied by the caller
    (e.g. from {!Sweep.cardinality}). *)

val to_csv : funnel -> string
val pp : Format.formatter -> funnel -> unit
