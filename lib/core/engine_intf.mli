(** The common face of the evaluation engines.

    Each engine packs its entry points behind {!module-type-S} so the
    CLI, the tuner and the bench select engines by name through
    {!Engine_registry} — one code path instead of four hand-written
    match arms. *)

(** What an engine is asked to enumerate. A [Space] leaves planning to
    the engine — the interpreters build their own (naive or hoisted)
    plan, reproducing their cost model end to end, and the compiled
    tiers call [Plan.make]. A [Plan] hands the engine an exact nest to
    execute as given: chunked, sharded and propagated sweeps all reach
    every engine through this one shape. *)
type target =
  | Space of Space.t
  | Plan of Plan.t

type outcome =
  | Finished of Engine.stats
  | Interrupted of { completed : int; total : int }
      (** stopped by {!Engine_parallel.interrupt} after draining the
          in-flight chunks; [completed] of [total] chunks made it into
          the checkpoint (when one was requested) *)

type checkpoint_sink = {
  ck_path : string;  (** checkpoint file, written atomically *)
  ck_every_s : float;  (** minimum seconds between periodic writes *)
  ck_run_id : string option;
      (** stamped into the snapshot so resumed artifacts correlate with
          the run that wrote them *)
  ck_shard : Stats_io.shard;
      (** recorded in the file so resume can reject a shard mismatch *)
  ck_base_metrics : Beast_obs.Metrics.snapshot option;
      (** metrics carried over from the checkpoint being resumed; pooled
          with the live registry's snapshot at every write *)
}

type resumable =
  ?on_hit:Engine.on_hit ->
  ?checkpoint:checkpoint_sink ->
  ?resume:Checkpoint.t ->
  ?fault:Run_config.fault ->
  Plan.t ->
  outcome
(** A checkpointing sweep: skips the chunks [resume] records as
    complete, periodically snapshots the ledger to [checkpoint], and —
    under [fault] injection — retries crashed chunks with the survivor
    callback still invoked exactly once per surviving point. *)

module type S = sig
  val name : string

  val run : ?on_hit:Engine.on_hit -> target -> Engine.stats
  (** The one entry point, over both target shapes. Engines never
      re-plan a handed-in [Plan]. *)

  val resumable : resumable option
  (** checkpoint/resume/fault-injection entry point; only the parallel
      scheduler keeps a chunk ledger, so only it offers one *)
end
