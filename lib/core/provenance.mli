(** Single-pass pruning provenance.

    {!Stats.funnel} measures exact per-constraint attribution with [n+1]
    full sweeps; this module gets the same numbers from {e one} sweep by
    exploiting the plan's structure: a constraint firing at depth [d]
    abandons the whole subtree below it, and the cardinality of that
    subtree is the product of the trip counts of the loops deeper than
    [d]. In the canonical nest constraints earlier in evaluation order
    (the pre-order walk) read only slots bound at depths [<= d], so the
    per-firing subtree products are {e exclusive} removal counts — each
    removed point is charged to exactly the first constraint that would
    have rejected it, which is what the prefix-sweep funnel measures.

    Subtree cardinality comes from a per-check counting program
    compiled over the tail of the (linear) nest ({!attribution}): loops
    whose slot no deeper bound reads hoist to a trip-count factor;
    loops feeding a deeper bound (GEMM's [dim_vec] feeding [vec_mul]'s
    range) are enumerated value by value with intervening derived slots
    recomputed, so data-dependent subtrees count exactly too.
    Enumeration only ever visits loop-bound nodes of the {e removed}
    subtree, bounding its total cost by the points removed. Three
    flavours result:
    - {e static} — the program reads nothing outside the tail: the
      count is a plan-time constant;
    - {e dynamic} — it reads slots live at the firing: evaluated (on a
      scratch copy of the slot array) per firing;
    - {e inexact} — an opaque closure sits in a load-bearing position
      below the check (a [CDyn] iterator, or a deferred derive body
      whose slot a deeper bound reads): the exact count is unknowable
      without sweeping, and the summary reports [None].

    Alongside the per-constraint counts a run records per-depth loop
    entries (the survival funnel) and a survivor-density map keyed by
    the {e value} of the outermost iterator. Values — not chunk
    indices — because {!Plan.chunk_outer} blocks partition the outer
    trip sequence: per-value cells sum across any chunk/shard split and
    re-sort deterministically, which is what makes merged shard
    provenance byte-identical to an unsharded run's.

    Collection follows the [Metrics.current] discipline: engines check
    {!current} once per run, accumulate into a private {!local} with no
    synchronization, and {!publish} it under the collector's mutex at
    run end. With no collector installed the engines' uninstrumented
    paths are compiled, so the disabled cost is zero. *)

(** {2 Attribution (per plan)} *)

type removal =
  | Static of int  (** subtree product is a compile-time constant *)
  | Dyn of (int array -> int)  (** evaluated from bound slots per firing *)
  | Inexact  (** closure iterators / later-bound slots below this depth *)

type attribution
(** Per-plan compiled attribution: rejection depth and {!removal}
    evaluator per [c_index], plus the outer iterator's slot for the
    density map. *)

val attribution : Plan.t -> attribution
val removal_of : attribution -> int -> removal
(** The removal evaluator for constraint [c_index] (for tests). *)

(** {2 Per-run accumulator} *)

type local

val local_of : attribution -> local
val fire : local -> int array -> int -> unit
(** [fire local slots c_index]: constraint [c_index] rejected with the
    given slot bindings; accumulate its subtree product and charge the
    current outer-value cell (when the firing is below depth 0). *)

val static_fire : local -> int array -> slot:int -> value:int -> int -> unit
(** [static_fire local slots ~slot ~value c_index]: replay one
    {!Plan.Static_prune} dead value — the engine never binds it, so the
    rejected loop value is substituted into [slots] at [slot] for the
    duration of the firing and restored afterwards. Removal counts and
    density cells accumulate exactly as if the constraint had fired
    live; the removal delta is additionally tracked as statically
    removed ({!summary}'s [pv_static]). *)

val hit : local -> int array -> unit
(** A point survived: credit the current outer-value cell. *)

(** {2 Ambient collector} *)

type t

val create : unit -> t
val set_current : t -> unit
val clear_current : unit -> unit
val current : unit -> t option
val enabled : unit -> bool

val publish : t -> depth_entries:int array -> local -> unit
(** Fold a run's accumulator into the collector (thread-safe; parallel
    chunk runs publish independently and the sums compose).
    [depth_entries] is the engine's per-depth loop-entry array; entries
    beyond the plan's loop count are ignored. *)

(** {2 Summaries (what {!Stats_io} serializes)} *)

type crow = {
  pc_name : string;
  pc_depth : int;  (** rejection depth: 0 = before the first loop *)
  pc_removed : int option;  (** [None] when attribution is inexact *)
}

type cell = {
  cell_value : int;  (** outermost-iterator value *)
  cell_survivors : int;
  cell_removed : int;  (** exactly-attributed removals under this value *)
}

type summary = {
  pv_iters : string list;  (** loop variables, outermost first *)
  pv_constraints : crow list;  (** by [c_index] *)
  pv_depth_entries : int list;  (** loop entries per depth *)
  pv_static : int;
      (** points removed via {!Plan.Static_prune} replay (a subset of
          the per-constraint totals); 0 for unpropagated runs and for
          files written before propagation existed *)
  pv_cells : cell list;  (** sorted by [cell_value] *)
}

val summary : t -> summary
(** Raises [Invalid_argument] if nothing was ever published. *)

val total_removed : summary -> int option
(** Sum of the per-constraint removal counts; [None] when any
    constraint's attribution is inexact. *)

val merge_summaries : summary list -> (summary, string) result
(** Shard merge: constraint names/depths and the loop order must agree;
    removal counts and depth entries sum ([None] is contagious), cells
    union by value, summing fields, and re-sort. [merge_summaries]
    of per-shard summaries equals the summary an unsharded run
    collects, bucket for bucket. *)

val with_collector : (unit -> 'a) -> 'a * summary
(** Install a fresh collector around [f] (restoring any previous one),
    returning [f]'s result and the collected summary — how
    {!Stats.funnel_single_pass} runs one provenance-enabled sweep. *)

(** {2 Serialization} *)

val add_json : Buffer.t -> indent:string -> summary -> unit
(** Deterministic encoding (fixed key order, two-space steps relative to
    [indent], no trailing newline) — same discipline as
    [Metrics.Snapshot.add_json], so equal summaries encode to equal
    bytes. *)

val of_jsonx : Beast_obs.Jsonx.t -> (summary, string) result
