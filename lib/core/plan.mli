(** Loop-nest plans: the compilation target shared by every engine and
    code generator (paper Section X).

    Planning performs, in order:
    + constant-fold the global settings (Figure 10) into every expression;
    + build the dependency DAG and derive the loop order from a stable
      topological linearization (respecting the level sets of Sec. X-B);
    + assign each derived variable and constraint the {e shallowest} loop
      depth at which its dependencies are bound — the hoisting that makes
      aggressive pruning cheap;
    + lower expressions to integer slot machines ([cexpr]) suitable for
      bytecode compilation, closure staging and C emission.

    The result is the canonical nest
    [group₀; loop₁ (group₁; loop₂ (…; loopₙ (groupₙ; yield)))] where
    group_d holds the derived variables and constraints evaluable once
    depth d is bound. A constraint firing at depth d abandons the whole
    subtree below it — the source of the paper's orders-of-magnitude
    pruning savings. *)

(** Lowered expressions: variables resolved to slot indices, booleans
    represented as 0/1 integers. *)
type cexpr =
  | CLit of int
  | CSlot of int
  | CUn of Expr.unop * cexpr
  | CBin of Expr.binop * cexpr * cexpr
  | CIf of cexpr * cexpr * cexpr
  | CCall of Expr.builtin * cexpr list

type compute =
  | CE of cexpr
  | CF of (int array -> int)
      (** opaque (deferred / closure) body, reading bound slots *)

(** Lowered iterators. *)
type citer =
  | CRange of cexpr * cexpr * cexpr  (** start, stop exclusive, step *)
  | CValues of int array
  | CDyn of (int array -> int array)
      (** closure/algebra iterators: materialized at loop entry *)

type step =
  | Derive of {
      d_name : string;
      d_slot : int;
      d_compute : compute;
    }
  | Check of {
      c_name : string;
      c_class : Space.constraint_class;
      c_index : int;  (** index into per-constraint statistics *)
      c_compute : compute;  (** nonzero result prunes the point *)
    }
  | Loop of {
      l_var : string;
      l_slot : int;
      l_iter : citer;
      l_body : step list;
    }
  | Static_prune of {
      sp_var : string;  (** the loop variable whose dead values these are *)
      sp_slot : int;
      sp_dead : (int * int) array;
          (** [(value, c_index)] pairs: values the following loop would
              have visited but that a statically-evaluable constraint
              rejects for every surrounding assignment. Engines replay
              them as statistics only — one loop iteration plus one
              firing of the attributed constraint each — so a propagated
              plan's stats stay byte-identical to the unpropagated
              run's. Emitted by [Propagate.pass], never by {!make}. *)
    }
  | Yield  (** a full assignment survived every constraint *)

type t = {
  space_name : string;
  steps : step list;
  n_slots : int;
  slot_names : string array;  (** slot -> parameter name *)
  iter_order : string list;  (** loop order, outermost first *)
  iter_slots : int array;  (** slots of [iter_order], for survivor decoding *)
  constraint_info : (string * Space.constraint_class) array;
      (** by [c_index] *)
  settings : (string * Value.t) list;
  slot_index : (string, int) Hashtbl.t;
      (** name -> slot, for {!slot_of} and {!lookup_of_slots} *)
}

type error =
  | Space_error of Space.error
  | Unsupported of string
      (** non-integer literal survived folding, or invalid [order] *)

val pp_error : Format.formatter -> error -> unit

exception Error of error

val make : ?hoist:bool -> ?order:string list -> Space.t -> (t, error) result
(** [make space] builds the plan. [hoist] (default [true]) controls
    whether derived variables and constraints float to their minimal
    depth; with [hoist:false] everything evaluates at the innermost level,
    reproducing an un-optimized (scripting-style) enumeration for the
    ablation study. [order] overrides the loop order; it must be a
    permutation of the iterator names compatible with the DAG. *)

val make_exn : ?hoist:bool -> ?order:string list -> Space.t -> t

val optimize : ?passes:(t -> t) list -> t -> t
(** [optimize ~passes t] folds the given plan-to-plan passes over [t] in
    order. The pipeline stage the CLI and engines share; passes (such as
    [Propagate.pass]) live above [Plan] in the dependency order and are
    supplied by the caller. With no passes this is the identity. *)

val static_prune_counts : (int * int) array -> (int * int) array
(** Aggregate a {!Static_prune} dead list into sorted
    [(c_index, fired)] totals — the statistics delta engines apply when
    they do not replay the dead values one by one. *)

val static_pruned : t -> int
(** Total dead values recorded by {!Static_prune} steps anywhere in the
    nest — how many loop entries propagation proved statically
    infeasible. 0 for plans straight out of {!make}. *)

val slice_outer : t -> index:int -> of_:int -> t
(** [slice_outer t ~index ~of_] restricts the outermost loop to every
    [of_]-th value starting at position [index] (round-robin
    decomposition). The union of the [of_] slices visits exactly the
    original space; this is how {!Engine_parallel} shards work across
    domains — the paper's parallelization "at the outermost loop nests,
    close to level 0" (Section X-B). Steps before the first loop are kept
    in every slice, so statistics for depth-0 constraints are replicated
    per slice. A plan with no loops is returned unchanged for [index] 0
    and emptied otherwise. *)

val chunk_outer : t -> index:int -> of_:int -> t
(** [chunk_outer t ~index ~of_] restricts the outermost loop to the
    [index]-th of [of_] {e contiguous} blocks of its trip sequence
    (block decomposition: positions [[i*n/of_, (i+1)*n/of_)] of a trip
    count [n]). The blocks tile the original sequence exactly, so the
    union of the [of_] chunks visits the original space and per-chunk
    statistics sum to the sequential ones (depth-0 steps excepted, see
    below). Unlike {!slice_outer}'s round-robin stride, a chunk of a
    [CValues]/[CDyn] iterator is a contiguous sub-array — the
    decomposition both the work-stealing scheduler
    ({!Engine_parallel.run}) and cross-process sharding
    ([beast sweep --shard I/N]) are built on. With [of_] larger than the
    outer trip count the trailing chunks are empty; they still execute
    the depth-0 steps.

    Steps before the first loop are kept in every chunk, so statistics
    for depth-0 constraints are replicated per chunk and must be
    de-duplicated when merging ({!depth0_constraints}). A plan with no
    loops is returned unchanged for [index] 0 and emptied otherwise. *)

val depth0_constraints : t -> bool array
(** Indexed by [c_index]: [true] for the constraints placed before the
    first loop. These execute once per {!chunk_outer}/{!slice_outer}
    chunk, so merges keep a single chunk's counts for them. *)

val slot_of : t -> string -> int
(** @raise Not_found for names that are not iterators/derived variables *)

val lookup_of_slots : t -> int array -> Expr.lookup
(** A lookup resolving iterators and derived variables from a slot array
    and settings from the folded table — what closure bodies receive. *)

val eval_int_binop : Expr.binop -> int -> int -> int
(** Strict integer semantics of a binary operator (booleans as 0/1);
    shared with the bytecode VM. *)

val eval_cexpr : int array -> cexpr -> int
(** Reference evaluator, also used by the tree-walking engine. Division
    truncates; division or modulus by zero raises [Division_by_zero]. *)

val compile_cexpr : cexpr -> int array -> int
(** Staged twin of {!eval_cexpr}: the AST is walked once at compile
    time, yielding a closure chain with the same semantics. Use where
    one bound is evaluated many times against different slot states. *)

val cexpr_slots : cexpr -> int list
(** Sorted slot indices read by the expression. *)

val static_cexpr : cexpr -> int option
(** The expression's value when it reads no slots (settings were folded
    during lowering, so such expressions are compile-time constants);
    [None] for slot-dependent or non-evaluating expressions. *)

val trip_count : start:int -> stop:int -> step:int -> int
(** Number of values [range(start, stop, step)] visits (0 when
    [step = 0] — engines reject zero steps separately). The one formula
    shared by the engines, {!chunk_outer} and the provenance
    attribution, so subtree cardinalities agree everywhere. *)

val pp : Format.formatter -> t -> unit
(** Pseudo-code dump of the nest, for inspection and golden tests. *)
